(* The finepar command-line interface.

   Subcommands:
     list       kernels and their Section IV classification
     run        compile one kernel and simulate it
     verify     static queue-protocol verification (kernels, corpus, smoke)
     show       dump compiler stages for one kernel
     trace      simulate and export a Chrome trace_event timeline
     report     per-core / per-queue / per-fiber cycle attribution
     sweep      transfer-latency sweep for one kernel
     autotune   compile several code versions, keep the fastest
     classify   the 51-loop characterization funnel
     fuzz       differential fuzzing with shrinking and a corpus *)

open Cmdliner
open Finepar
open Finepar_kernels

let find_entry name =
  match Registry.find name with
  | Some e -> e
  | None ->
    Fmt.epr "unknown kernel %s; try `finepar list`@." name;
    exit 1

let kernel_arg =
  let doc = "Kernel name (see `finepar list`)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc)

let cores_arg =
  let doc = "Number of hardware cores (1, 2 or 4 in the paper)." in
  Arg.(value & opt int 4 & info [ "c"; "cores" ] ~doc)

let latency_arg =
  let doc = "Queue transfer latency in cycles." in
  Arg.(value & opt int 5 & info [ "latency" ] ~doc)

let queue_len_arg =
  let doc = "Queue length in slots." in
  Arg.(value & opt int 20 & info [ "queue-len" ] ~doc)

let speculation_arg =
  let doc = "Enable control-flow speculation (Section III-H)." in
  Arg.(value & flag & info [ "speculation" ] ~doc)

let throughput_arg =
  let doc = "Enable the throughput (unidirectional) merge heuristic." in
  Arg.(value & flag & info [ "throughput" ] ~doc)

let issue_width_arg =
  let doc = "Instructions each core may issue per cycle (1 = the paper's \
             machine, 2 = dual-issue)." in
  Arg.(value & opt int 1 & info [ "issue-width" ] ~doc)

let comm_conv =
  let parse s =
    match Finepar_transform.Comm.mode_of_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg (Printf.sprintf "unknown comm mode %s (expected queues or shared_cache)" s))
  in
  Arg.conv
    (parse, fun ppf m -> Fmt.string ppf (Finepar_transform.Comm.mode_name m))

let comm_arg =
  let doc =
    "How cross-core transfers are realized: $(b,queues) (the paper's \
     dedicated hardware queues) or $(b,shared_cache) (valid-flag \
     handshakes through the ordinary cache hierarchy)."
  in
  Arg.(
    value
    & opt comm_conv Finepar_transform.Comm.Queues
    & info [ "comm" ] ~doc)

let engine_conv =
  let parse str =
    match Finepar_machine.Engine.of_string str with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown engine %s (expected %s)" str
             (String.concat ", "
                (List.map Finepar_machine.Engine.to_string
                   Finepar_machine.Engine.all))))
  in
  let print ppf e = Fmt.string ppf (Finepar_machine.Engine.to_string e) in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Simulation engine: $(b,cycle) (the reference stepper), $(b,event) \
     (event-driven fast-forward) or $(b,compiled) (per-core programs \
     pre-specialized to closure arrays, driven by the same fast-forward).  \
     All three are cycle-exact to each other; $(b,event) is faster on \
     latency-dominated runs and $(b,compiled) is fastest overall."
  in
  Arg.(
    value
    & opt engine_conv Finepar_machine.Engine.default
    & info [ "engine" ] ~doc)

let machine_of ?(issue_width = 1) ~latency ~queue_len () =
  {
    Finepar_machine.Config.default with
    Finepar_machine.Config.transfer_latency = latency;
    queue_len;
    issue_width;
  }

(* ------------------------------------------------------------------ *)
(* Service routing: sweep/autotune/report/fuzz-replay can send their
   compile+run work through the content-addressed result cache, either
   in-process over a disk store or to a running `finepar serve`. *)

module Wire = Finepar_service.Wire
module Svc_cache = Finepar_service.Cache
module Svc_server = Finepar_service.Server
module Svc_client = Finepar_service.Client

let via_conv =
  let parse s =
    match Svc_client.via_of_string s with
    | Ok v -> Ok v
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Svc_client.via_to_string v))

let via_arg =
  let doc =
    "Route compile/run work through the persistent result cache: \
     $(b,store:DIR) opens the on-disk store in-process (no server \
     needed), $(b,socket:PATH) sends batches to a running `finepar \
     serve`.  Results are byte-identical to the direct path (cached or \
     not); repeated invocations are answered from the store."
  in
  Arg.(value & opt (some via_conv) None & info [ "via" ] ~doc ~docv:"VIA")

(* A session: one exec function whose cache handle (store:) or socket
   connection persists across batches of the same CLI invocation, plus
   that handle's hit/miss counters (invocation-lifetime for store:,
   server-lifetime for socket:).  [pool] parallelizes the in-process
   store path's miss computation. *)
let with_via ?pool via f =
  match
    Svc_client.with_session ?pool via (fun session ->
        f
          ~exec:(Svc_client.session_exec session)
          ~counters:(fun () -> Svc_client.session_counters session))
  with
  | v -> v
  | exception Finepar_tune.Service_eval.Service_error msg ->
    Fmt.epr "service error: %s@." msg;
    exit 1
  | exception Failure msg ->
    Fmt.epr "%s@." msg;
    exit 1

let pp_cache_counters counters =
  let get name = Option.value ~default:0 (List.assoc_opt name counters) in
  let hits = get "hits" and misses = get "misses" in
  let total = hits + misses in
  Fmt.epr "cache: %d hits, %d misses (%.1f%% hit rate), %d entries@." hits
    misses
    (if total = 0 then 0. else 100. *. float_of_int hits /. float_of_int total)
    (get "entries")

let run_payload_exn = function
  | Wire.Run_result p -> p
  | Wire.Error msg ->
    Fmt.epr "service error: %s@." msg;
    exit 1
  | _ ->
    Fmt.epr "service: unexpected response kind@.";
    exit 1

let registry_job ~config ?(sequential = false) (e : Registry.entry) =
  {
    Wire.kernel = e.Registry.kernel;
    config;
    sequential;
    placement = Finepar_fuzz.Gen.Identity;
    workload = Wire.Explicit e.Registry.workload;
    profile_counters = [];
  }

(* The service-side replica of {!Runner.speedup}'s profile-feedback
   chain: a sequential-baseline run request per latency point, then the
   parallel requests carrying the measured load counters.  The chain is
   what the direct path computes, so the printed numbers match it
   byte-for-byte. *)
let speedup_via ~exec ~machine ~config ~engine ~cores (e : Registry.entry) =
  let config = { config with Compiler.machine; cores } in
  let seq_job = registry_job ~config ~sequential:true e in
  let seq =
    run_payload_exn (List.hd (exec [ Wire.Run { job = seq_job; engine } ]))
  in
  let par_job =
    { seq_job with Wire.sequential = false;
      profile_counters = seq.Wire.load_counters }
  in
  let par =
    run_payload_exn (List.hd (exec [ Wire.Run { job = par_job; engine } ]))
  in
  ( seq,
    par,
    float_of_int seq.Wire.cycles /. float_of_int par.Wire.cycles )

(* ------------------------------------------------------------------ *)
(* Unified host-side tracing: every heavyweight subcommand accepts the
   same --trace-out/--profile pair.  With neither given no tracer is
   installed and every span site stays a single atomic load. *)

let trace_out_arg =
  let doc =
    "Write a Chrome trace_event timeline of the host pipeline (compiler \
     passes, simulator runs, fuzz cases; one thread row per domain) to \
     $(docv).  Open in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let profile_arg =
  let doc =
    "Print a self-time/total-time profile tree of the host pipeline on \
     exit.  With $(docv), write it as JSON there instead ($(b,-) keeps \
     the text form on stdout)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "profile" ] ~doc ~docv:"FILE")

let write_chrome_trace tracer file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Finepar_telemetry.Chrome_trace.to_channel oc
        (Finepar_telemetry.Tracer.to_chrome tracer));
  Fmt.epr "wrote %s@." file

let emit_profile tracer dest =
  let tree =
    Finepar_telemetry.Profile_tree.of_spans
      (Finepar_telemetry.Tracer.spans tracer)
  in
  if String.equal dest "-" then
    Fmt.pr "@[%a@]@."
      (fun ppf t -> Finepar_telemetry.Profile_tree.pp ppf t)
      tree
  else begin
    let oc = open_out dest in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Finepar_telemetry.Json.to_channel oc
          (Finepar_telemetry.Profile_tree.to_json tree);
        output_char oc '\n');
    Fmt.epr "wrote %s@." dest
  end

(* Run [f] under an installed tracer when either flag was given, then
   export.  The export is also registered with [at_exit] (guarded to
   run once) because failing subcommands leave through [exit 1], which
   skips [Fun.protect] finalizers — a failing run still leaves its
   trace behind. *)
let with_tracing ~trace_out ~profile f =
  match (trace_out, profile) with
  | None, None -> f ()
  | _ ->
    let tracer = Finepar_telemetry.Tracer.create () in
    Finepar_telemetry.Tracer.install tracer;
    let exported = ref false in
    let export () =
      if not !exported then begin
        exported := true;
        Finepar_telemetry.Tracer.uninstall ();
        Option.iter (write_chrome_trace tracer) trace_out;
        Option.iter (emit_profile tracer) profile
      end
    in
    at_exit export;
    Fun.protect ~finally:export f

let tracing_enabled ~trace_out ~profile =
  trace_out <> None || profile <> None

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Fmt.pr "%-10s %-8s %6s %-50s@." "kernel" "app" "%time" "location";
    List.iter
      (fun (e : Registry.entry) ->
        Fmt.pr "%-10s %-8s %6.1f %-50s@." e.Registry.kernel.Finepar_ir.Kernel.name
          e.Registry.app e.Registry.pct_time e.Registry.location)
      Registry.all;
    Fmt.pr "@.%d additional corpus loops (use `finepar classify`).@."
      (List.length Corpus.excluded)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the evaluation kernels")
    Term.(const run $ const ())

let run_cmd =
  let run name cores latency queue_len speculation throughput issue_width comm
      engine trace_out profile =
    with_tracing ~trace_out ~profile @@ fun () ->
    let e = find_entry name in
    let machine = machine_of ~issue_width ~latency ~queue_len () in
    let config =
      {
        (Compiler.default_config ~cores ()) with
        Compiler.speculation;
        throughput;
        comm_mode = comm;
        machine;
      }
    in
    let seq, par, s =
      Runner.speedup ~machine ~config ~engine ~workload:e.Registry.workload
        ~cores e.Registry.kernel
    in
    let c = Compiler.compile config e.Registry.kernel in
    Fmt.pr "kernel      %s@." name;
    Fmt.pr "sequential  %d cycles@." seq.Runner.cycles;
    Fmt.pr "parallel    %d cycles on %d cores@." par.Runner.cycles
      c.Compiler.stats.Compiler.n_partitions;
    Fmt.pr "speedup     %.2f@." s;
    Fmt.pr "stats       %a@." Compiler.pp_stats c.Compiler.stats;
    Fmt.pr "result      verified bit-exact against the reference evaluator@."
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate one kernel")
    Term.(
      const run $ kernel_arg $ cores_arg $ latency_arg $ queue_len_arg
      $ speculation_arg $ throughput_arg $ issue_width_arg $ comm_arg
      $ engine_arg $ trace_out_arg $ profile_arg)

let show_cmd =
  let stage_arg =
    let doc = "Stage to dump: kernel, region, fibers, graph, partition, asm, timeline." in
    Arg.(value & opt string "partition" & info [ "stage" ] ~doc)
  in
  let run name cores stage =
    let e = find_entry name in
    let config = Compiler.default_config ~cores () in
    let c = Compiler.compile config e.Registry.kernel in
    match stage with
    | "kernel" -> Fmt.pr "%a@." Finepar_ir.Kernel.pp e.Registry.kernel
    | "region" ->
      Fmt.pr "%a@." Finepar_ir.Region.pp
        (Finepar_ir.Region.of_kernel e.Registry.kernel)
    | "fibers" -> Fmt.pr "%a@." Finepar_ir.Region.pp c.Compiler.region
    | "graph" -> Fmt.pr "%a@." Finepar_analysis.Deps.pp c.Compiler.deps
    | "partition" ->
      List.iter
        (fun (s : Finepar_ir.Region.sstmt) ->
          Fmt.pr "core %d | %a@."
            c.Compiler.cluster_of.(s.Finepar_ir.Region.id)
            Finepar_ir.Region.pp_sstmt s)
        c.Compiler.region.Finepar_ir.Region.stmts
    | "asm" ->
      Fmt.pr "%a@." Finepar_machine.Program.pp
        c.Compiler.code.Finepar_codegen.Lower.program
    | "timeline" ->
      (* Per-core activity for the first cycles of the run: one column
         per cycle; '#' = instruction issued, 'E'/'D' = enqueue/dequeue
         issued, '~' = stalled on a queue, '.' = other (operand stall or
         idle). *)
      let sim =
        Finepar_machine.Sim.create ~tracing:true
          ~config:c.Compiler.config.Compiler.machine
          ~initial:e.Registry.workload
          c.Compiler.code.Finepar_codegen.Lower.program
      in
      ignore (Finepar_machine.Sim.run sim);
      let cores_n =
        Array.length c.Compiler.code.Finepar_codegen.Lower.program.Finepar_machine.Program.cores
      in
      let width = 72 and rows = 4 in
      let span = width * rows in
      (* The trace ring keeps the most recent events; on long runs the
         start of the run is gone, so show the oldest window we have. *)
      let events = Finepar_machine.Sim.events sim in
      let base =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Finepar_machine.Sim.Ev_issue { cycle; _ }
            | Finepar_machine.Sim.Ev_stall { cycle; _ } ->
              min acc cycle)
          max_int events
      in
      let base = if base = max_int then 0 else base in
      let grid = Array.init cores_n (fun _ -> Bytes.make span '.') in
      List.iter
        (fun ev ->
          match ev with
          | Finepar_machine.Sim.Ev_issue { core; cycle; instr; _ }
            when cycle - base < span ->
            let cycle = cycle - base in
            let ch =
              match instr with
              | Finepar_machine.Isa.Enq _ -> 'E'
              | Finepar_machine.Isa.Deq _ -> 'D'
              | _ -> '#'
            in
            Bytes.set grid.(core) cycle ch
          | Finepar_machine.Sim.Ev_stall { core; cycle; reason; _ }
            when cycle - base < span ->
            let cycle = cycle - base in
            if Bytes.get grid.(core) cycle = '.' then
              Bytes.set grid.(core) cycle
                (match reason with
                | Finepar_telemetry.Stall.Operand -> 'o'
                | Finepar_telemetry.Stall.Queue_full _
                | Finepar_telemetry.Stall.Queue_empty _ -> '~')
          | Finepar_machine.Sim.Ev_issue _ | Finepar_machine.Sim.Ev_stall _ ->
            ())
        events;
      if base > 0 then
        Fmt.pr
          "(the trace ring kept the last %d events; showing the oldest \
           retained window)@.@."
          (List.length events);
      for row = 0 to rows - 1 do
        Fmt.pr "cycles %4d..%4d@."
          (base + (row * width))
          (base + (((row + 1) * width) - 1));
        for core = 0 to cores_n - 1 do
          Fmt.pr "  core %d |%s|@." core
            (Bytes.to_string (Bytes.sub grid.(core) (row * width) width))
        done;
        Fmt.pr "@."
      done;
      Fmt.pr
        "legend: '#' issue, 'E' enqueue, 'D' dequeue, '~' queue stall, 'o' \
         operand stall, '.' wait/idle@."
    | other ->
      Fmt.epr "unknown stage %s@." other;
      exit 1
  in
  Cmd.v (Cmd.info "show" ~doc:"Dump compiler stages for one kernel")
    Term.(const run $ kernel_arg $ cores_arg $ stage_arg)

let output_arg =
  let doc = "Output file ('-' for stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc)

let with_output file f =
  if String.equal file "-" then f stdout
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc);
    Fmt.pr "wrote %s@." file
  end

let compile_and_sim ?(issue_width = 1) ?(comm = Finepar_transform.Comm.Queues)
    ~name ~cores ~latency ~queue_len ~speculation ~throughput ~tracing ~engine
    () =
  let e = find_entry name in
  let machine = machine_of ~issue_width ~latency ~queue_len () in
  let config =
    {
      (Compiler.default_config ~cores ()) with
      Compiler.speculation;
      throughput;
      comm_mode = comm;
      machine;
    }
  in
  let c = Compiler.compile config e.Registry.kernel in
  let run, sim =
    Runner.run_with_sim ~tracing ~engine ~workload:e.Registry.workload c
  in
  (c, run, sim)

let trace_cmd =
  let run name cores latency queue_len speculation throughput issue_width comm
      engine output =
    let c, _, sim =
      compile_and_sim ~issue_width ~comm ~name ~cores ~latency ~queue_len
        ~speculation ~throughput ~tracing:true ~engine ()
    in
    let events =
      Report.chrome_trace ~pass_times:c.Compiler.pass_times sim
    in
    with_output output (fun oc ->
        Finepar_telemetry.Chrome_trace.to_channel oc events);
    let dropped = Finepar_machine.Sim.dropped_events sim in
    if dropped > 0 then
      Fmt.epr
        "warning: trace ring dropped %d early events; raise the capacity \
         to keep them@."
        dropped
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate one kernel and export a Chrome trace_event timeline \
          (open in chrome://tracing or Perfetto): one lane per core, an \
          occupancy counter per queue, and a compiler-pass lane")
    Term.(
      const run $ kernel_arg $ cores_arg $ latency_arg $ queue_len_arg
      $ speculation_arg $ throughput_arg $ issue_width_arg $ comm_arg
      $ engine_arg $ output_arg)

let report_cmd =
  let format_arg =
    let doc = "Output format: text, json or csv." in
    Arg.(value & opt string "text" & info [ "format" ] ~doc)
  in
  let run name cores latency queue_len speculation throughput issue_width comm
      engine via format output =
    let t =
      match via with
      | None ->
        let _, r, _ =
          compile_and_sim ~issue_width ~comm ~name ~cores ~latency ~queue_len
            ~speculation ~throughput ~tracing:false ~engine ()
        in
        r.Runner.telemetry
      | Some via ->
        (* Through the cache.  The report is bit-identical except that
           pass_times never crosses the wire (wall-clock noise), so the
           csv format — which only covers deterministic metrics — byte-
           matches the direct path; CI relies on that. *)
        let e = find_entry name in
        let machine = machine_of ~issue_width ~latency ~queue_len () in
        let config =
          {
            (Compiler.default_config ~cores ()) with
            Compiler.speculation;
            throughput;
            comm_mode = comm;
            machine;
          }
        in
        with_via via @@ fun ~exec ~counters:_ ->
        let p =
          run_payload_exn
            (List.hd
               (exec [ Wire.Run { job = registry_job ~config e; engine } ]))
        in
        p.Wire.report
    in
    match format with
    | "text" ->
      with_output output (fun oc ->
          Fmt.pf (Format.formatter_of_out_channel oc) "%a@." Report.pp t)
    | "json" ->
      with_output output (fun oc ->
          Finepar_telemetry.Json.to_channel oc (Report.to_json t);
          output_char oc '\n')
    | "csv" ->
      with_output output (fun oc -> output_string oc (Report.to_csv t))
    | other ->
      Fmt.epr "unknown format %s (expected text, json or csv)@." other;
      exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Per-core, per-queue and per-fiber cycle attribution for one \
          simulated kernel, plus compiler pass times")
    Term.(
      const run $ kernel_arg $ cores_arg $ latency_arg $ queue_len_arg
      $ speculation_arg $ throughput_arg $ issue_width_arg $ comm_arg
      $ engine_arg $ via_arg $ format_arg $ output_arg)

let sweep_cmd =
  let run name cores queue_len engine via trace_out profile =
    with_tracing ~trace_out ~profile @@ fun () ->
    let e = find_entry name in
    let latencies = [ 5; 10; 20; 50; 100 ] in
    Fmt.pr "%-10s %8s@." "latency" "speedup";
    match via with
    | None ->
      List.iter
        (fun latency ->
          let machine = machine_of ~latency ~queue_len () in
          let _, _, s =
            Runner.speedup ~machine ~engine ~workload:e.Registry.workload
              ~cores e.Registry.kernel
          in
          Fmt.pr "%-10d %8.2f@." latency s)
        latencies
    | Some via ->
      with_via via @@ fun ~exec ~counters ->
      List.iter
        (fun latency ->
          let machine = machine_of ~latency ~queue_len () in
          let _, _, s =
            speedup_via ~exec ~machine ~config:(Compiler.default_config ())
              ~engine ~cores e
          in
          Fmt.pr "%-10d %8.2f@." latency s)
        latencies;
      pp_cache_counters (counters ())
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Transfer-latency sweep for one kernel (Fig. 13)")
    Term.(
      const run $ kernel_arg $ cores_arg $ queue_len_arg $ engine_arg
      $ via_arg $ trace_out_arg $ profile_arg)

module Tune_search = Finepar_tune.Search
module Tune_eval = Finepar_tune.Service_eval

let autotune_cmd =
  let kernel_opt_arg =
    let doc =
      "Kernel name (see `finepar list`).  Required without --search; \
       with --search, restricts the search to that one target."
    in
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~doc)
  in
  let search_arg =
    let doc =
      "Generational beam search over merge algorithm, affinity weights, \
       speculation/throughput, core count, queue length and transfer \
       latency, instead of the fixed six-candidate list.  Output is \
       byte-identical at every -j and cached-vs-fresh through --via."
    in
    Arg.(value & flag & info [ "search" ] ~doc)
  in
  let scope_arg =
    let doc =
      "Search targets: $(b,registry) (the 18 evaluation kernels), \
       $(b,loops) (the 33 excluded characterization loops) or $(b,all) \
       (both)."
    in
    Arg.(value & opt string "all" & info [ "scope" ] ~doc)
  in
  let fuzz_corpus_arg =
    let doc =
      "Also tune every promoted fuzz reproducer in this corpus \
       directory (targets named fuzz:<basename>)."
    in
    Arg.(value & opt (some string) None & info [ "fuzz-corpus" ] ~doc)
  in
  let beam_arg =
    let doc = "Elite configurations expanded each generation." in
    Arg.(value & opt int 2 & info [ "beam" ] ~doc)
  in
  let generations_arg =
    let doc = "Neighbor-expansion generations after the seed generation." in
    Arg.(value & opt int 3 & info [ "generations" ] ~doc)
  in
  let budget_arg =
    let doc =
      "Maximum candidate evaluations per kernel (the sequential \
       reference is not counted)."
    in
    Arg.(value & opt int 40 & info [ "budget" ] ~doc)
  in
  let format_arg =
    let doc = "Search output format: text or json." in
    Arg.(value & opt string "text" & info [ "format" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Evaluate candidates on this many domains in parallel (default: \
       the FINEPAR_DOMAINS environment variable, else the machine's \
       core count minus one; 1 is fully sequential).  Results are \
       byte-identical at every -j."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)
  in
  let search ~name ~scope ~fuzz_corpus ~params ~engine ~via ~jobs ~format
      ~output =
    let targets =
      (match scope with
      | "registry" -> Tune_search.registry_targets ()
      | "loops" -> Tune_search.corpus_targets ()
      | "all" ->
        Tune_search.registry_targets () @ Tune_search.corpus_targets ()
      | other ->
        Fmt.epr "unknown scope %s (expected registry, loops or all)@." other;
        exit 1)
      @
      match fuzz_corpus with
      | None -> []
      | Some dir -> Tune_search.fuzz_targets ~dir
    in
    let targets =
      match name with
      | None -> targets
      | Some n -> (
        match
          List.filter
            (fun (t : Tune_search.target) -> String.equal t.Tune_search.t_name n)
            targets
        with
        | [] ->
          Fmt.epr "no search target named %s in scope %s@." n scope;
          exit 1
        | ts -> ts)
    in
    let t0 = Unix.gettimeofday () in
    let rows =
      match via with
      | None ->
        let pool = Finepar_exec.Pool.create ?domains:jobs () in
        Tune_search.run params (Tune_search.direct ~pool ~engine ()) targets
      | Some via ->
        let pool = Finepar_exec.Pool.create ?domains:jobs () in
        with_via ~pool via @@ fun ~exec ~counters ->
        let rows =
          Tune_search.run params (Tune_eval.evaluator ~exec ~engine) targets
        in
        pp_cache_counters (counters ());
        rows
    in
    let dt = Unix.gettimeofday () -. t0 in
    let evaluated =
      List.fold_left
        (fun a (r : Tune_search.row) -> a + r.Tune_search.r_evaluated)
        0 rows
    in
    (* Wall-clock throughput is machine-dependent: stderr only, so the
       stdout table/JSON stays byte-comparable across runs. *)
    Fmt.epr "search: %d configurations in %.2fs%s@." evaluated dt
      (if dt > 0. then
         Fmt.str " (%.1f configs/sec)" (float_of_int evaluated /. dt)
       else "");
    match format with
    | "text" ->
      with_output output (fun oc ->
          Fmt.pf
            (Format.formatter_of_out_channel oc)
            "%a@?" Tune_search.pp_table rows)
    | "json" ->
      with_output output (fun oc ->
          Finepar_telemetry.Json.to_channel oc
            (Tune_search.to_json ~params rows);
          output_char oc '\n')
    | other ->
      Fmt.epr "unknown format %s (expected text or json)@." other;
      exit 1
  in
  let classic ~name ~machine ~cores ~engine ~via =
    let e = find_entry name in
    let best_name, best_cycles, candidates =
      match via with
      | None ->
        let t =
          Runner.autotune ~machine ~cores ~engine
            ~workload:e.Registry.workload e.Registry.kernel
        in
        (t.Runner.best_name, t.Runner.best_cycles, t.Runner.candidates)
      | Some via ->
        with_via via @@ fun ~exec ~counters ->
        let r =
          Tune_eval.autotune ~exec ~machine ~engine ~cores
            ~workload:e.Registry.workload e.Registry.kernel
        in
        pp_cache_counters (counters ());
        r
    in
    Fmt.pr "%a" Tune_search.pp_autotune (best_name, best_cycles, candidates)
  in
  let run name do_search scope fuzz_corpus beam generations budget format
      jobs cores latency queue_len engine via trace_out profile output =
    with_tracing ~trace_out ~profile @@ fun () ->
    let machine = machine_of ~latency ~queue_len () in
    if do_search then
      let params =
        { Tune_search.cores; machine; beam; generations; budget }
      in
      search ~name ~scope ~fuzz_corpus ~params ~engine ~via ~jobs ~format
        ~output
    else
      match name with
      | Some name -> classic ~name ~machine ~cores ~engine ~via
      | None ->
        Fmt.epr "pass -k KERNEL (or --search)@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Compile multiple code versions and keep the fastest (Section \
          III-I); with --search, a generational beam search over the \
          full configuration space across the kernel corpus")
    Term.(
      const run $ kernel_opt_arg $ search_arg $ scope_arg $ fuzz_corpus_arg
      $ beam_arg $ generations_arg $ budget_arg $ format_arg $ jobs_arg
      $ cores_arg $ latency_arg $ queue_len_arg $ engine_arg $ via_arg
      $ trace_out_arg $ profile_arg $ output_arg)

let fuzz_cmd =
  let cases_arg =
    let doc = "Number of random cases to generate and check." in
    Arg.(value & opt int 200 & info [ "cases" ] ~doc)
  in
  let seconds_arg =
    let doc =
      "Wall-clock budget in seconds; generation stops at whichever of \
       --cases and --seconds is hit first."
    in
    Arg.(value & opt (some float) None & info [ "seconds" ] ~doc)
  in
  let seed_arg =
    let doc =
      "Root seed.  Case $(i,i) uses the derived seed printed on failure, \
       so any failure reproduces from its seed alone."
    in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let out_dir_arg =
    let doc = "Directory to write shrunk reproducers into (created)." in
    Arg.(value & opt (some string) None & info [ "out-dir" ] ~doc)
  in
  let summary_arg =
    let doc = "Write a JSON campaign summary to this file ('-' for stdout)." in
    Arg.(value & opt (some string) None & info [ "summary" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Replay every reproducer in this corpus directory instead of \
       generating new cases."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Check cases on this many domains in parallel (default: the \
       FINEPAR_DOMAINS environment variable, else the machine's core \
       count minus one; 1 is fully sequential).  The summary is \
       byte-identical at every -j for a fixed --cases count."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)
  in
  let replay_via ~engine via dir =
    (* Cache-backed replay: each reproducer becomes one run request, so
       a cross-engine replay of the same corpus reuses the compile half
       of the pipeline (one group per (kernel, config) serves every
       engine), and a repeated replay is answered entirely from the
       store.  Bit-exactness vs the reference evaluator is checked on
       every fresh computation; this path does not re-run the other
       oracles (determinism, telemetry invariants) — the default replay
       does. *)
    with_via via @@ fun ~exec ~counters ->
    let files = Finepar_fuzz.Corpus.files dir in
    let jobs =
      List.map
        (fun path ->
          match Finepar_fuzz.Corpus.load_file path with
          | entry ->
            let case = entry.Finepar_fuzz.Corpus.case in
            ( path,
              Ok
                {
                  Wire.kernel = case.Finepar_fuzz.Gen.kernel;
                  config = case.Finepar_fuzz.Gen.config;
                  sequential = false;
                  placement = case.Finepar_fuzz.Gen.placement;
                  workload =
                    Wire.Seeded case.Finepar_fuzz.Gen.workload_seed;
                  profile_counters = [];
                } )
          | exception e -> (path, Error (Printexc.to_string e)))
        files
    in
    let requests =
      List.filter_map
        (function
          | _, Ok job -> Some (Wire.Run { job; engine })
          | _, Error _ -> None)
        jobs
    in
    let responses = ref (exec requests) in
    let next_response () =
      match !responses with
      | r :: rest ->
        responses := rest;
        r
      | [] -> Wire.Error "missing response"
    in
    let failed = ref 0 in
    List.iter
      (fun (path, job) ->
        match job with
        | Error msg ->
          incr failed;
          Fmt.pr "FAIL %s: unreadable reproducer: %s@." path msg
        | Ok _ -> (
          match next_response () with
          | Wire.Run_result _ -> Fmt.pr "PASS %s@." path
          | Wire.Error msg ->
            incr failed;
            Fmt.pr "FAIL %s: %s@." path msg
          | _ ->
            incr failed;
            Fmt.pr "FAIL %s: unexpected response kind@." path))
      jobs;
    Fmt.pr "replayed %d reproducers, %d failing@." (List.length jobs) !failed;
    pp_cache_counters (counters ());
    if !failed > 0 then exit 1
  in
  let run cases seconds seed out_dir summary replay via jobs engine trace_out
      profile =
    with_tracing ~trace_out ~profile @@ fun () ->
    match replay with
    | Some dir when via <> None -> replay_via ~engine (Option.get via) dir
    | Some dir ->
      let replays = Finepar_fuzz.Corpus.replay_dir ~engine dir in
      let failed = ref 0 in
      List.iter
        (fun (r : Finepar_fuzz.Corpus.replay) ->
          match r.Finepar_fuzz.Corpus.outcome with
          | Ok (Finepar_fuzz.Oracle.Pass _) ->
            Fmt.pr "PASS %s@." r.Finepar_fuzz.Corpus.entry.Finepar_fuzz.Corpus.path
          | Ok (Finepar_fuzz.Oracle.Fail f) ->
            incr failed;
            Fmt.pr "FAIL %s: %a@."
              r.Finepar_fuzz.Corpus.entry.Finepar_fuzz.Corpus.path
              Finepar_fuzz.Oracle.pp_failure f
          | Error msg ->
            incr failed;
            Fmt.pr "FAIL %s: unreadable reproducer: %s@."
              r.Finepar_fuzz.Corpus.entry.Finepar_fuzz.Corpus.path msg)
        replays;
      Fmt.pr "replayed %d reproducers, %d failing@." (List.length replays)
        !failed;
      if !failed > 0 then exit 1
    | None ->
      if via <> None then
        Fmt.epr "--via only applies to --replay; running a direct campaign@.";
      let pool = Finepar_exec.Pool.create ?domains:jobs () in
      let s =
        Finepar_fuzz.Driver.run ~engine ?out_dir ?seconds ~pool ~cases ~seed ()
      in
      List.iter
        (fun (f : Finepar_fuzz.Driver.failure_report) ->
          Fmt.pr "FAIL seed %d: %a@." f.Finepar_fuzz.Driver.case_seed
            Finepar_fuzz.Oracle.pp_failure f.Finepar_fuzz.Driver.failure;
          Fmt.pr "  shrunk to %d statements%a@."
            (Finepar_fuzz.Shrink.stmt_count
               f.Finepar_fuzz.Driver.shrunk.Finepar_fuzz.Gen.kernel)
            Fmt.(option (fun ppf p -> Fmt.pf ppf ", reproducer %s" p))
            f.Finepar_fuzz.Driver.repro_path)
        s.Finepar_fuzz.Driver.failures;
      Fmt.pr
        "fuzz: %d cases (seed %d), %d passed, %d failed, %.1fs@."
        s.Finepar_fuzz.Driver.cases_run s.Finepar_fuzz.Driver.root_seed
        s.Finepar_fuzz.Driver.passed s.Finepar_fuzz.Driver.failed
        s.Finepar_fuzz.Driver.elapsed;
      (* Wall-clock throughput stays out of the JSON summary (which is
         deterministic); the nightly workflow scrapes this line. *)
      Fmt.pr "throughput: %.1f cases/sec on %d domain(s)@."
        (float_of_int s.Finepar_fuzz.Driver.cases_run
        /. Float.max 1e-9 s.Finepar_fuzz.Driver.elapsed)
        (Finepar_exec.Pool.domains pool);
      (* Scheduling-dependent pool stats are opt-in (profiling flags)
         so the default output — and the JSON the CI diffs across -j —
         stays deterministic. *)
      let pool_stats =
        if tracing_enabled ~trace_out ~profile then
          Some (Finepar_exec.Pool.stats pool)
        else None
      in
      Option.iter
        (fun (p : Finepar_exec.Pool.stats) ->
          Fmt.pr
            "pool: %d domains, %d tasks, %d steals (%d failed), busy \
             %.3fs, idle %.3fs, imbalance %.2f@."
            p.Finepar_exec.Pool.domains p.Finepar_exec.Pool.tasks
            p.Finepar_exec.Pool.steals p.Finepar_exec.Pool.steal_failures
            p.Finepar_exec.Pool.busy_seconds p.Finepar_exec.Pool.idle_seconds
            p.Finepar_exec.Pool.imbalance)
        pool_stats;
      Fmt.pr
        "coverage: %d with ifs, %d indirect, %d int-ops; %d speculated, %d \
         multi-core, %d smt@."
        s.Finepar_fuzz.Driver.kernels_with_ifs
        s.Finepar_fuzz.Driver.kernels_with_indirect
        s.Finepar_fuzz.Driver.kernels_with_int_ops
        s.Finepar_fuzz.Driver.speculated s.Finepar_fuzz.Driver.multi_core
        s.Finepar_fuzz.Driver.smt_cases;
      (match summary with
      | None -> ()
      | Some file ->
        let json = Finepar_fuzz.Driver.summary_to_json ?pool:pool_stats s in
        if String.equal file "-" then print_endline json
        else begin
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc json;
              output_char oc '\n');
          Fmt.pr "wrote %s@." file
        end);
      if s.Finepar_fuzz.Driver.failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random well-typed kernels and \
          configurations checked for bit-exactness, determinism, \
          telemetry invariants and cross-core agreement; failures are \
          shrunk to minimal reproducers")
    Term.(
      const run $ cases_arg $ seconds_arg $ seed_arg $ out_dir_arg
      $ summary_arg $ replay_arg $ via_arg $ jobs_arg $ engine_arg
      $ trace_out_arg $ profile_arg)

let verify_cmd =
  let module Verify = Finepar_verify.Verify in
  let module Mutate = Finepar_fuzz.Mutate in
  let kernel_opt_arg =
    let doc = "Verify this kernel (see `finepar list`)." in
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~doc)
  in
  let all_arg =
    let doc = "Verify every registry kernel at 1, 2 and 4 cores." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let corpus_arg =
    let doc =
      "Compile and verify every fuzz reproducer in this corpus \
       directory, each under its own recorded configuration."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~doc)
  in
  let smoke_arg =
    let doc =
      "Mutation smoke test: apply each comm-corruption rule to every \
       registry kernel and require the verifier to reject every \
       corrupted program statically."
    in
    Arg.(value & flag & info [ "mutation-smoke" ] ~doc)
  in
  let failed = ref 0 in
  let report_ok what (r : Verify.result) =
    Fmt.pr "OK   %-28s %d queues, %d comm ops@." what r.Verify.queues_checked
      r.Verify.ops_checked
  in
  let report_fail what violations =
    incr failed;
    Fmt.pr "FAIL %s@." what;
    List.iter (fun v -> Fmt.pr "     %a@." Verify.pp_violation v) violations
  in
  (* Compile (which runs the verifier as a pass) and re-run the verifier
     standalone for its statistics. *)
  let verify_kernel what config (k : Finepar_ir.Kernel.t) =
    match Compiler.compile config k with
    | c ->
      let r =
        Verify.run ~plan:c.Compiler.comm ~mode:config.Compiler.comm_mode
          ~queue_len:config.Compiler.machine.Finepar_machine.Config.queue_len
          c.Compiler.code.Finepar_codegen.Lower.program
      in
      if Verify.ok r then report_ok what r
      else report_fail what r.Verify.violations
    | exception Verify.Rejected (_, violations) -> report_fail what violations
  in
  let verify_registry ~latency ~queue_len ~speculation ~throughput name =
    let e = find_entry name in
    List.iter
      (fun cores ->
        let config =
          {
            (Compiler.default_config ~cores ()) with
            Compiler.speculation;
            throughput;
            machine = machine_of ~latency ~queue_len ();
          }
        in
        verify_kernel
          (Fmt.str "%s cores=%d" name cores)
          config e.Registry.kernel)
      [ 1; 2; 4 ]
  in
  let verify_corpus ~engine dir =
    let files = Finepar_fuzz.Corpus.files dir in
    if files = [] then begin
      incr failed;
      Fmt.pr "FAIL corpus %s: no reproducers found@." dir
    end;
    List.iter
      (fun path ->
        match Finepar_fuzz.Corpus.load_file path with
        | entry ->
          let case = entry.Finepar_fuzz.Corpus.case in
          verify_kernel path case.Finepar_fuzz.Gen.config
            case.Finepar_fuzz.Gen.kernel;
          (* Dynamic cross-check: the reproducer must still pass the
             full oracle set under the selected simulation engine. *)
          (match Finepar_fuzz.Oracle.check ~engine case with
          | Finepar_fuzz.Oracle.Pass _ ->
            Fmt.pr "OK   %-28s dynamic replay (%s engine)@." path
              (Finepar_machine.Engine.to_string engine)
          | Finepar_fuzz.Oracle.Fail f ->
            incr failed;
            Fmt.pr "FAIL %s: dynamic replay (%s engine): %a@." path
              (Finepar_machine.Engine.to_string engine)
              Finepar_fuzz.Oracle.pp_failure f)
        | exception e ->
          incr failed;
          Fmt.pr "FAIL %s: unreadable reproducer: %s@." path
            (Printexc.to_string e))
      files
  in
  let mutation_smoke ~latency ~queue_len () =
    (* Single-core compiles have no queues, so probe at 2 and 4 cores.
       Every rule must find at least one applicable site, and the
       verifier must reject every corrupted program. *)
    List.iter
      (fun rule ->
        let name = Mutate.comm_rule_name rule in
        let applied = ref 0 and caught = ref 0 in
        List.iter
          (fun (e : Registry.entry) ->
            List.iter
              (fun cores ->
                let config =
                  {
                    (Compiler.default_config ~cores ()) with
                    Compiler.machine = machine_of ~latency ~queue_len ();
                  }
                in
                let c = Compiler.compile config e.Registry.kernel in
                match Mutate.corrupt rule c with
                | None -> ()
                | Some c' ->
                  incr applied;
                  let r =
                    Verify.run ~plan:c'.Compiler.comm ~queue_len
                      c'.Compiler.code.Finepar_codegen.Lower.program
                  in
                  if not (Verify.ok r) then incr caught
                  else begin
                    incr failed;
                    Fmt.pr "FAIL smoke %s: %s cores=%d corrupted but accepted@."
                      name e.Registry.kernel.Finepar_ir.Kernel.name cores
                  end)
              [ 2; 4 ])
          Registry.all;
        if !applied = 0 then begin
          incr failed;
          Fmt.pr "FAIL smoke %s: rule never found an applicable site@." name
        end
        else
          Fmt.pr "%s %-28s caught %d/%d corruptions@."
            (if !caught = !applied then "OK  " else "FAIL")
            (Fmt.str "smoke %s" name) !caught !applied)
      [ Mutate.Drop_dequeue; Mutate.Swap_endpoints; Mutate.Reorder_enqueue ]
  in
  let run kernel all corpus smoke cores latency queue_len speculation
      throughput engine trace_out profile =
    with_tracing ~trace_out ~profile @@ fun () ->
    failed := 0;
    let selected = ref false in
    (match kernel with
    | Some name ->
      selected := true;
      let e = find_entry name in
      let config =
        {
          (Compiler.default_config ~cores ()) with
          Compiler.speculation;
          throughput;
          machine = machine_of ~latency ~queue_len ();
        }
      in
      verify_kernel (Fmt.str "%s cores=%d" name cores) config e.Registry.kernel
    | None -> ());
    if all then begin
      selected := true;
      List.iter
        (fun (e : Registry.entry) ->
          verify_registry ~latency ~queue_len ~speculation ~throughput
            e.Registry.kernel.Finepar_ir.Kernel.name)
        Registry.all
    end;
    (match corpus with
    | Some dir ->
      selected := true;
      verify_corpus ~engine dir
    | None -> ());
    if smoke then begin
      selected := true;
      mutation_smoke ~latency ~queue_len ()
    end;
    if not !selected then begin
      Fmt.epr "nothing to verify: pass -k, --all, --corpus or --mutation-smoke@.";
      exit 2
    end;
    if !failed > 0 then begin
      Fmt.pr "@.verify: %d failure(s)@." !failed;
      exit 1
    end
    else Fmt.pr "@.verify: all checks passed@."
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Static queue-protocol verification: per-queue balance and \
          typing, endpoint agreement, capacity-bounded deadlock \
          freedom, and plan conformance — over kernels, a fuzz corpus, \
          or deliberately corrupted programs (--mutation-smoke)")
    Term.(
      const run $ kernel_opt_arg $ all_arg $ corpus_arg $ smoke_arg
      $ cores_arg $ latency_arg $ queue_len_arg $ speculation_arg
      $ throughput_arg $ engine_arg $ trace_out_arg $ profile_arg)

let profile_cmd =
  let format_arg =
    let doc = "Output format: text (profile tree + hot list) or json." in
    Arg.(value & opt string "text" & info [ "format" ] ~doc)
  in
  let run name cores latency queue_len speculation throughput engine format
      output trace_out =
    let tracer = Finepar_telemetry.Tracer.create () in
    Finepar_telemetry.Tracer.install tracer;
    let _, r, _ =
      Fun.protect
        ~finally:(fun () -> Finepar_telemetry.Tracer.uninstall ())
        (fun () ->
          compile_and_sim ~name ~cores ~latency ~queue_len ~speculation
            ~throughput ~tracing:false ~engine ())
    in
    let tree =
      Finepar_telemetry.Profile_tree.of_spans
        (Finepar_telemetry.Tracer.spans tracer)
    in
    Option.iter (write_chrome_trace tracer) trace_out;
    match format with
    | "text" ->
      with_output output (fun oc ->
          let ppf = Format.formatter_of_out_channel oc in
          Fmt.pf ppf "kernel %s: %d cycles on %d cores (%s engine)@.@." name
            r.Runner.cycles cores
            (Finepar_machine.Engine.to_string engine);
          Fmt.pf ppf "%a@."
            (fun ppf t -> Finepar_telemetry.Profile_tree.pp ppf t)
            tree)
    | "json" ->
      with_output output (fun oc ->
          Finepar_telemetry.Json.to_channel oc
            (Finepar_telemetry.Profile_tree.to_json tree);
          output_char oc '\n')
    | other ->
      Fmt.epr "unknown format %s (expected text or json)@." other;
      exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and simulate one kernel under the host tracer and \
          print where the host time went: a self-time/total-time span \
          tree (compiler passes under their compile, the simulator run) \
          plus the hottest spans")
    Term.(
      const run $ kernel_arg $ cores_arg $ latency_arg $ queue_len_arg
      $ speculation_arg $ throughput_arg $ engine_arg $ format_arg
      $ output_arg $ trace_out_arg)

let perf_report_cmd =
  let module History = Finepar_telemetry.History in
  let module Json = Finepar_telemetry.Json in
  let history_arg =
    let doc = "Bench history file (JSON Lines; one object per bench run)." in
    Arg.(
      value & opt string "bench/history.jsonl" & info [ "history" ] ~doc)
  in
  let window_arg =
    let doc = "Rolling window: judge the latest run against the mean of \
               up to this many preceding runs."
    in
    Arg.(value & opt int 5 & info [ "window" ] ~doc)
  in
  let tolerance_arg =
    let doc = "Fractional drift allowed before a metric is flagged (0.10 \
               = 10%)."
    in
    Arg.(value & opt float 0.10 & info [ "tolerance" ] ~doc)
  in
  let format_arg =
    let doc = "Output format: text or json." in
    Arg.(value & opt string "text" & info [ "format" ] ~doc)
  in
  let check_arg =
    let doc = "Exit 1 when any metric regressed past the tolerance." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run history window tolerance format check =
    match History.load ~path:history with
    | Error e ->
      Fmt.epr "perf-report: cannot read %s: %s@." history e;
      exit 2
    | Ok [] ->
      Fmt.epr "perf-report: %s has no runs@." history;
      exit 2
    | Ok entries ->
      let ts =
        History.trends ~window ~tolerance (List.map History.metrics_of entries)
      in
      (match format with
      | "json" ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("history", Json.String history);
                  ("runs", Json.Int (List.length entries));
                  ("window", Json.Int window);
                  ("tolerance", Json.Float tolerance);
                  ( "trends",
                    Json.List (List.map History.trend_to_json ts) );
                  ( "regressions",
                    Json.Int
                      (List.length
                         (List.filter
                            (fun (t : History.trend) ->
                              t.History.verdict = History.Regression)
                            ts)) );
                ]))
      | "text" ->
        Fmt.pr "%s: %d run(s), window %d, tolerance %.0f%%@.@." history
          (List.length entries) window (tolerance *. 100.);
        Fmt.pr "%-40s %4s %12s %12s %8s  %s@." "metric" "runs" "last"
          "window-mean" "delta" "verdict";
        List.iter
          (fun (t : History.trend) ->
            Fmt.pr "%-40s %4d %12.6g %12s %8s  %s@." t.History.metric
              t.History.n t.History.last
              (match t.History.window_mean with
              | None -> "-"
              | Some m -> Fmt.str "%.6g" m)
              (match t.History.delta_pct with
              | None -> "-"
              | Some d -> Fmt.str "%+.1f%%" d)
              (History.verdict_string t.History.verdict))
          ts
      | other ->
        Fmt.epr "unknown format %s (expected text or json)@." other;
        exit 1);
      if check && History.any_regression ts then begin
        Fmt.epr "@.perf-report: regression(s) past %.0f%% tolerance@."
          (tolerance *. 100.);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "perf-report"
       ~doc:
         "Render per-metric trends from the append-only bench history \
          (bench/history.jsonl): the latest run judged against a \
          rolling window of its predecessors, with a regression verdict \
          per metric")
    Term.(
      const run $ history_arg $ window_arg $ tolerance_arg $ format_arg
      $ check_arg)

(* ------------------------------------------------------------------ *)
(* The compile-and-simulate service. *)

let serve_cmd =
  let socket_arg =
    let doc = "Serve a length-prefixed frame protocol on this Unix domain \
               socket (created; a stale file is replaced)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")
  in
  let stdio_arg =
    let doc = "Serve frames on stdin/stdout instead of a socket — the CI \
               pipeline fallback."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let store_arg =
    let doc = "Directory of the persistent content-addressed result store \
               (created)."
    in
    Arg.(
      required & opt (some string) None & info [ "store" ] ~doc ~docv:"DIR")
  in
  let jobs_arg =
    let doc = "Fan cache misses out over this many domains (default: the \
               FINEPAR_DOMAINS environment variable, else the machine's \
               core count minus one).  Responses are byte-identical at \
               every -j."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)
  in
  let max_entries_arg =
    let doc = "Evict the oldest store entries (by mtime) past this count." in
    Arg.(value & opt (some int) None & info [ "max-entries" ] ~doc)
  in
  let run socket stdio store jobs max_entries =
    let cache = Svc_cache.create ?max_entries store in
    let pool = Finepar_exec.Pool.create ?domains:jobs () in
    let server = Svc_server.create ~pool ~cache () in
    (match (socket, stdio) with
    | Some path, false ->
      Fmt.epr "finepar serve: socket %s, store %s, %d domain(s)@." path store
        (Finepar_exec.Pool.domains pool);
      Svc_server.serve_socket server path
    | None, true -> Svc_server.serve_channels server stdin stdout
    | _ ->
      Fmt.epr "pass exactly one of --socket PATH or --stdio@.";
      exit 2);
    Fmt.epr "cache stats: %s@."
      (Finepar_telemetry.Json.to_string (Svc_cache.stats_json cache))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running compile-and-simulate server: batched \
          compile/run/verify requests over a Unix domain socket (or \
          stdin/stdout), fanned out over a domain pool and answered \
          from a persistent content-addressed result cache")
    Term.(
      const run $ socket_arg $ stdio_arg $ store_arg $ jobs_arg
      $ max_entries_arg)

let request_cmd =
  let file_arg =
    let doc = "Batch request file ('-' for stdin)." in
    Arg.(value & pos 0 string "-" & info [] ~doc ~docv:"FILE")
  in
  let emit_arg =
    let doc =
      "Instead of executing, write a batch request file covering the \
       kernel registry (and, with --corpus, the fuzz corpus) crossed \
       with --engines, and exit."
    in
    Arg.(value & flag & info [ "emit" ] ~doc)
  in
  let engines_arg =
    let doc = "Comma-separated engines for --emit (default: all three)." in
    Arg.(
      value
      & opt (list engine_conv) Finepar_machine.Engine.all
      & info [ "engines" ] ~doc)
  in
  let corpus_arg =
    let doc = "Also emit one run request per fuzz reproducer in this \
               directory (crossed with --engines)."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~doc ~docv:"DIR")
  in
  let jobs_arg =
    let doc = "Domains for the in-process store: path (socket servers \
               control their own -j)."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)
  in
  let stats_arg =
    let doc = "Print cache hit/miss counters to stderr after executing." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let emit ~engines ~cores ~latency ~queue_len ~corpus output =
    let machine = machine_of ~latency ~queue_len () in
    let config = { (Compiler.default_config ~cores ()) with Compiler.machine } in
    let registry_reqs =
      List.concat_map
        (fun (e : Registry.entry) ->
          List.map
            (fun engine -> Wire.Run { job = registry_job ~config e; engine })
            engines)
        Registry.all
    in
    let corpus_reqs =
      match corpus with
      | None -> []
      | Some dir ->
        List.concat_map
          (fun path ->
            let entry = Finepar_fuzz.Corpus.load_file path in
            let case = entry.Finepar_fuzz.Corpus.case in
            let job =
              {
                Wire.kernel = case.Finepar_fuzz.Gen.kernel;
                config = case.Finepar_fuzz.Gen.config;
                sequential = false;
                placement = case.Finepar_fuzz.Gen.placement;
                workload = Wire.Seeded case.Finepar_fuzz.Gen.workload_seed;
                profile_counters = [];
              }
            in
            List.map (fun engine -> Wire.Run { job; engine }) engines)
          (Finepar_fuzz.Corpus.files dir)
    in
    let batch = Wire.batch_to_string (registry_reqs @ corpus_reqs) in
    with_output output (fun oc ->
        output_string oc batch;
        output_char oc '\n')
  in
  let read_all ic =
    let buf = Buffer.create 65536 in
    (try
       while true do
         Buffer.add_channel buf ic 65536
       done
     with End_of_file -> ());
    Buffer.contents buf
  in
  let execute ~via ~jobs ~stats file output =
    let payload =
      String.trim
        (if String.equal file "-" then read_all stdin
         else begin
           let ic = open_in_bin file in
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> read_all ic)
         end)
    in
    let response, counters =
      match via with
      | Svc_client.Store dir ->
        let cache = Svc_cache.create dir in
        let pool = Finepar_exec.Pool.create ?domains:jobs () in
        let server = Svc_server.create ~pool ~cache () in
        (Svc_server.handle_frame server payload, fun () -> Svc_cache.counters cache)
      | Svc_client.Socket _ ->
        ( Svc_client.exec_frame via payload,
          fun () ->
            match Svc_client.exec via [ Wire.Stats ] with
            | [ Wire.Stats_result cs ] -> cs
            | _ ->
              Fmt.epr "service: bad stats response@.";
              exit 1 )
    in
    with_output output (fun oc ->
        output_string oc response;
        output_char oc '\n');
    if stats then pp_cache_counters (counters ())
  in
  let run file emit_flag engines corpus via jobs stats cores latency queue_len
      output =
    if emit_flag then emit ~engines ~cores ~latency ~queue_len ~corpus output
    else
      match via with
      | Some via -> execute ~via ~jobs ~stats file output
      | None ->
        Fmt.epr "pass --via=store:DIR or --via=socket:PATH (or --emit)@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Submit a batch request file to the compile-and-simulate \
          service (one frame out, one frame in; the response payload is \
          written verbatim, so identical batches produce byte-identical \
          files, cached or not) — or generate such a file with --emit")
    Term.(
      const run $ file_arg $ emit_arg $ engines_arg $ corpus_arg $ via_arg
      $ jobs_arg $ stats_arg $ cores_arg $ latency_arg $ queue_len_arg
      $ output_arg)

let classify_cmd =
  let run () =
    List.iter
      (fun (k : Finepar_ir.Kernel.t) ->
        Fmt.pr "%-18s %s@." k.Finepar_ir.Kernel.name
          (Finepar_characterize.Classify.category_name
             (Finepar_characterize.Classify.classify k)))
      Corpus.all_hot_loops;
    Fmt.pr "@.%a@." Finepar_characterize.Classify.pp_funnel
      (Finepar_characterize.Classify.funnel Corpus.all_hot_loops)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Characterize all 51 hot loops (Section IV)")
    Term.(const run $ const ())

let () =
  let doc =
    "fine-grained parallelization of sequential loops with hardware queues"
  in
  let info = Cmd.info "finepar" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; verify_cmd; show_cmd; trace_cmd; report_cmd;
            sweep_cmd; autotune_cmd; classify_cmd; fuzz_cmd; profile_cmd;
            perf_report_cmd; serve_cmd; request_cmd;
          ]))
