(** Post-run telemetry: per-core, per-queue and per-fiber attribution
    tables derived from one simulation, with exporters to JSON, CSV
    (via the metrics registry) and the Chrome [trace_event] format
    (loadable in [chrome://tracing] or Perfetto). *)

(** One simulated core's cycle accounting.  The integer fields
    partition the run's cycles exactly:
    [instrs - dual_issued + stalls + branch_wait + smt_wait +
     idle_after_halt = run cycles] (an instruction issued in an extra
    bundle slot shares its cycle with the bundle's first issue). *)
type core_row = {
  core : int;
  instrs : int;
  stall_operand : int;
  stall_queue_full : int;
  stall_queue_empty : int;
  branch_wait : int;
  smt_wait : int;
  idle_after_halt : int;
  dual_issued : int;  (** instructions issued in bundle slots >= 2 *)
  stall_episodes : Finepar_telemetry.Histogram.t;
      (** durations of contiguous stall episodes *)
}

type queue_row = {
  queue : int;
  src : int;
  dst : int;
  transfers : int;
  max_occupancy : int;
  occupancy : Finepar_telemetry.Histogram.t;
      (** occupancy sampled after each enqueue; bucket total =
          [transfers] *)
}

(** Cycle attribution for one source fiber (one statement of the
    fiber-split region). *)
type fiber_row = {
  fiber : int;  (** {!Finepar_machine.Program.no_fiber} = runtime glue *)
  partition : int;  (** core the fiber's code was placed on, or -1 *)
  line : int;  (** source line of the fiber's statement, or -1 *)
  issue : int;  (** cycles spent issuing this fiber's instructions *)
  stall : int;  (** cycles stalled on this fiber's instructions *)
}

type t = {
  kernel : string;
  cycles : int;
  n_cores : int;
  total_core_cycles : int;  (** [cycles * n_cores] *)
  wait_cycles : int;  (** branch-penalty + SMT-loss + post-halt idle *)
  instrs : int;
  cores : core_row list;
  queues : queue_row list;
  fibers : fiber_row list;
      (** sum of [issue + stall] over rows, plus [wait_cycles], equals
          [total_core_cycles] *)
  pass_times : (string * float) list;
  dropped_events : int;  (** trace-ring truncation *)
}

(** Build the report from a finished simulation.  With [?compiled], fiber
    rows carry source lines and the report carries kernel name and
    compiler pass times. *)
val of_sim : ?compiled:Compiler.compiled -> Finepar_machine.Sim.t -> t

(** The report as a typed metrics registry (counters, gauges,
    histograms) — the CSV exporter's source of truth. *)
val metrics : t -> Finepar_telemetry.Metrics.t

val to_json : t -> Finepar_telemetry.Json.t
val to_csv : t -> string
val pp : Format.formatter -> t -> unit

(** Chrome [trace_event] timeline of a traced simulation: one lane per
    core (contiguous same-fiber / same-stall cycles merged into spans),
    an occupancy counter track per queue, and — when [pass_times] is
    given — a compiler-pipeline lane.  1 simulated cycle = 1 us. *)
val chrome_trace :
  ?pass_times:(string * float) list ->
  Finepar_machine.Sim.t ->
  Finepar_telemetry.Chrome_trace.event list
