(** The end-to-end compiler pipeline (Section III).

    [compile config kernel] runs, in order: control-flow speculation
    (III-H, optional), expression flattening and predicate extraction
    (III-A pre-processing / III-E), fiber partitioning (III-A), dependence
    analysis, code-graph construction and heuristic merging (III-B), global
    scheduling with send-early/receive-late priorities (III-B), outlining
    with communication insertion, conditional-structure replication and
    live-variable copies (III-C..F), and machine-code generation including
    the runtime driver protocol (III-G). *)

type config = {
  cores : int;  (** hardware cores (threads) available to the region *)
  max_height : int;
      (** expression-tree height bound before splitting (the III-A
          pre-processing granularity knob) *)
  algorithm : Finepar_partition.Merge.algorithm;
      (** [`Greedy] single-pair merging, or the faster [`Multi_pair] *)
  throughput : bool;
      (** the unidirectional-dependence ("throughput") heuristic, III-B *)
  max_queue_pairs : int option;
      (** constrain partitioning to at most this many point-to-point
          queues (Section II) *)
  speculation : bool;  (** rollback-free control-flow speculation, III-H *)
  weights : Finepar_partition.Affinity.weights;
      (** relative strengths of the three merge-affinity heuristics *)
  profile : Finepar_analysis.Profile.t;
      (** memory-latency feedback for the static cost model *)
  machine : Finepar_machine.Config.t;  (** target machine parameters *)
  comm_mode : Finepar_transform.Comm.mode;
      (** how cross-core transfers are realized: dedicated hardware
          queues (the paper's model, the default) or a valid-flag
          handshake through the shared cache *)
}

(** The paper's evaluation configuration: greedy merging, no speculation,
    default machine, no profile feedback. *)
val default_config : ?cores:int -> unit -> config

(** Static characteristics of one compilation — the columns of Table III
    (the speedup column comes from {!Runner}). *)
type stats = {
  initial_fibers : int;  (** fibers found before merging, Table III *)
  data_deps : int;  (** data-dependence edges between fibers, Table III *)
  load_balance : float;  (** max ops / min ops over partitions, Table III *)
  com_ops : int;  (** enqueue + dequeue operations inserted, Table III *)
  queue_pairs_static : int;  (** distinct (src, dst) pairs used, Table III *)
  n_partitions : int;  (** final partitions (may be fewer than cores) *)
  merge_steps : int;  (** union operations performed by the merge *)
  speculated_ifs : int;  (** conditionals converted by speculation *)
}

(** A fully compiled kernel, carrying every intermediate stage for
    inspection (the CLI's [show] subcommand prints them). *)
type compiled = {
  kernel : Finepar_ir.Kernel.t;  (** post-speculation kernel *)
  source : Finepar_ir.Kernel.t;  (** the kernel as written *)
  config : config;
  region : Finepar_ir.Region.t;  (** fiber-split region (one stmt/fiber) *)
  deps : Finepar_analysis.Deps.t;
  cluster_of : int array;  (** fiber id -> partition (core) *)
  order : int list;  (** the global fiber schedule *)
  comm : Finepar_transform.Comm.t;
      (** the transfer plan the static verifier checks against *)
  code : Finepar_codegen.Lower.t;  (** machine program + metadata *)
  stats : stats;
  pass_times : (string * float) list;
      (** per-pass wall-clock seconds, in pipeline order *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Run the whole pipeline, ending with the static queue-protocol
    verifier (pass "verify") over the lowered program and the comm plan.
    Raises {!Finepar_ir.Kernel.Invalid},
    {!Finepar_analysis.Deps.Unsupported} or
    {!Finepar_codegen.Lower.Codegen_error} on malformed input, and
    {!Finepar_verify.Verify.Rejected} when the generated code violates
    the queue protocol (a compiler bug, surfaced as a structured error
    with the offending queue/core/pc). *)
val compile : config -> Finepar_ir.Kernel.t -> compiled

(** Compile for sequential execution on one core — the baseline of every
    speedup in the paper. *)
val compile_sequential :
  ?machine:Finepar_machine.Config.t -> Finepar_ir.Kernel.t -> compiled
