(** Drivers for every table and figure in the paper's evaluation
    (Section IV and V).  Each function returns plain data; the benchmark
    harness ([bench/main.ml]) and the CLI render it. *)

open Finepar_ir
open Finepar_machine
open Finepar_kernels
module Pool = Finepar_exec.Pool

(* Every driver below fans out over independent (kernel, config)
   simulations; [pmap] distributes them over the optional domain pool.
   Results are merged by task index (see {!Finepar_exec.Pool.map}), so a
   run with a pool is byte-identical to a sequential one. *)
let pmap pool f xs = Pool.map_opt pool ~f xs

type kernel_run = {
  name : string;
  app : string;
  seq_cycles : int;
  par_cycles : int;
  speedup : float;
}

let run_entry ?config ?machine ~cores (e : Registry.entry) =
  let seq, par, s =
    Runner.speedup ?machine ?config ~workload:e.Registry.workload ~cores
      e.Registry.kernel
  in
  ( {
      name = e.Registry.kernel.Kernel.name;
      app = e.Registry.app;
      seq_cycles = seq.Runner.cycles;
      par_cycles = par.Runner.cycles;
      speedup = s;
    },
    par )

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)

(** Table I: the kernel inventory — names, source locations and the share
    of application time each loop accounts for. *)
type table1_row = {
  t1_name : string;
  t1_location : string;
  t1_pct : float;
  t1_measured_ops : int;  (** compute ops per iteration in our kernel *)
  t1_trip : int;
}

let table1 () =
  List.map
    (fun (e : Registry.entry) ->
      {
        t1_name = e.Registry.kernel.Kernel.name;
        t1_location = e.Registry.location;
        t1_pct = e.Registry.pct_time;
        t1_measured_ops = Stmt.op_count e.Registry.kernel.Kernel.body;
        t1_trip = Kernel.trip_count e.Registry.kernel;
      })
    Registry.all

(* ------------------------------------------------------------------ *)

(** Fig. 12: per-kernel speedups on 2 and 4 cores. *)
type fig12_row = { f12_name : string; f12_app : string; s2 : float; s4 : float }

let fig12 ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let r2, _ = run_entry ?machine ~cores:2 e in
      let r4, _ = run_entry ?machine ~cores:4 e in
      {
        f12_name = r2.name;
        f12_app = e.Registry.app;
        s2 = r2.speedup;
        s4 = r4.speedup;
      })
    Registry.all

let fig12_averages rows =
  (mean (List.map (fun r -> r.s2) rows), mean (List.map (fun r -> r.s4) rows))

(* ------------------------------------------------------------------ *)

(** Table II: expected whole-application speedups, combining the Table I
    time fractions with the measured kernel speedups through Amdahl's
    law: S_app = 1 / ((1 - sum f_i) + sum (f_i / s_i)). *)
type table2_row = {
  t2_app : string;
  t2_s2 : float;
  t2_s4 : float;
  t2_paper_s2 : float;
  t2_paper_s4 : float;
}

let table2 ?pool ?(fig12_rows = []) () =
  let rows = if fig12_rows = [] then fig12 ?pool () else fig12_rows in
  let app_speedup app pick =
    let entries = Registry.by_app app in
    let covered =
      List.fold_left (fun acc e -> acc +. (e.Registry.pct_time /. 100.0)) 0.0
        entries
    in
    let slowed =
      List.fold_left
        (fun acc (e : Registry.entry) ->
          let r =
            List.find
              (fun r -> String.equal r.f12_name e.Registry.kernel.Kernel.name)
              rows
          in
          acc +. (e.Registry.pct_time /. 100.0 /. pick r))
        0.0 entries
    in
    1.0 /. (1.0 -. covered +. slowed)
  in
  let per_app =
    List.map
      (fun app ->
        let p2, p4 =
          match
            List.find_opt (fun (a, _, _) -> String.equal a app)
              Registry.paper_table2
          with
          | Some (_, p2, p4) -> (p2, p4)
          | None -> (0.0, 0.0)
        in
        {
          t2_app = app;
          t2_s2 = app_speedup app (fun r -> r.s2);
          t2_s4 = app_speedup app (fun r -> r.s4);
          t2_paper_s2 = p2;
          t2_paper_s4 = p4;
        })
      Registry.apps
  in
  per_app
  @ [
      {
        t2_app = "average";
        t2_s2 = mean (List.map (fun r -> r.t2_s2) per_app);
        t2_s4 = mean (List.map (fun r -> r.t2_s4) per_app);
        t2_paper_s2 = 1.18;
        t2_paper_s4 = 1.73;
      };
    ]

(* ------------------------------------------------------------------ *)

(** Table III: static and dynamic characteristics of the 4-core
    compilation of each kernel, alongside the paper's values. *)
type table3_row = {
  t3_name : string;
  fibers : int;
  deps : int;
  balance : float;
  com_ops : int;
  queues : int;
  t3_speedup : float;
  paper : Registry.paper_row;
}

let table3 ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let r4, _ = run_entry ?machine ~cores:4 e in
      let c =
        Compiler.compile
          (Compiler.default_config ~cores:4 ())
          e.Registry.kernel
      in
      {
        t3_name = r4.name;
        fibers = c.Compiler.stats.Compiler.initial_fibers;
        deps = c.Compiler.stats.Compiler.data_deps;
        balance = c.Compiler.stats.Compiler.load_balance;
        com_ops = c.Compiler.stats.Compiler.com_ops;
        queues = c.Compiler.stats.Compiler.queue_pairs_static;
        t3_speedup = r4.speedup;
        paper = e.Registry.paper;
      })
    Registry.all

(* ------------------------------------------------------------------ *)

(** Fig. 13: speedup degradation as the queue transfer latency grows
    from 5 to 20, 50 and 100 cycles (4 cores). *)
type fig13_point = {
  latency : int;
  per_kernel : (string * float) list;
  f13_avg : float;
  no_speedup : int;  (** kernels at or below 1.0x *)
}

let fig13 ?pool ?(latencies = [ 5; 20; 50; 100 ]) ?(queue_len = 20) () =
  (* Flatten the latency × kernel grid into one task list so the pool
     balances across all of it, then regroup per latency. *)
  let tasks =
    List.concat_map
      (fun latency -> List.map (fun e -> (latency, e)) Registry.all)
      latencies
  in
  let runs =
    pmap pool
      (fun (latency, e) ->
        let machine =
          { Config.default with Config.transfer_latency = latency; queue_len }
        in
        let r, _ = run_entry ~machine ~cores:4 e in
        (latency, (r.name, r.speedup)))
      tasks
  in
  List.map
    (fun latency ->
      let per_kernel =
        List.filter_map
          (fun (l, kv) -> if l = latency then Some kv else None)
          runs
      in
      let speeds = List.map snd per_kernel in
      {
        latency;
        per_kernel;
        f13_avg = mean speeds;
        no_speedup = List.length (List.filter (fun s -> s <= 1.02) speeds);
      })
    latencies

(* ------------------------------------------------------------------ *)

(** Fig. 14: effect of control-flow speculation (Section III-H).  The
    paper enables speculation per region through source directives
    (Section III-I), so the "with speculation" configuration keeps the
    transformation only where it does not lose performance. *)
type fig14_row = {
  f14_name : string;
  base : float;
  speculated : float;  (** raw effect of always speculating *)
  chosen : float;  (** directive-guided: best of the two versions *)
  converted_ifs : int;
}

let fig14 ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let base, _ = run_entry ?machine ~cores:4 e in
      let config =
        { (Compiler.default_config ~cores:4 ()) with Compiler.speculation = true }
      in
      let spec, _ = run_entry ~config ?machine ~cores:4 e in
      let c = Compiler.compile config e.Registry.kernel in
      {
        f14_name = base.name;
        base = base.speedup;
        speculated = spec.speedup;
        chosen = Float.max base.speedup spec.speedup;
        converted_ifs = c.Compiler.stats.Compiler.speculated_ifs;
      })
    Registry.all

(* ------------------------------------------------------------------ *)

(** Section III-B ablation: the throughput heuristic (merge all cycles so
    partitions have only unidirectional dependences).  The paper measured
    3 kernels improving, 6 degrading, ~11% average slowdown. *)
type ablation_row = { ab_name : string; ab_base : float; ab_variant : float }

let throughput_ablation ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let base, _ = run_entry ?machine ~cores:4 e in
      let config =
        { (Compiler.default_config ~cores:4 ()) with Compiler.throughput = true }
      in
      let variant, _ = run_entry ~config ?machine ~cores:4 e in
      { ab_name = base.name; ab_base = base.speedup; ab_variant = variant.speedup })
    Registry.all

(** Section III-B: the multi-pair merge variant ("allows faster
    compilation") — quality comparison against single-pair greedy. *)
let multipair_ablation ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let base, _ = run_entry ?machine ~cores:4 e in
      let config =
        {
          (Compiler.default_config ~cores:4 ()) with
          Compiler.algorithm = `Multi_pair;
        }
      in
      let variant, _ = run_entry ~config ?machine ~cores:4 e in
      { ab_name = base.name; ab_base = base.speedup; ab_variant = variant.speedup })
    Registry.all

(** Section II ablation: hardware queues vs plain shared-cache coupling.
    The paper's queues are the special hardware it proposes; the variant
    lowers every cross-core transfer to a spin-wait valid-flag handshake
    through the ordinary cache hierarchy, quantifying how much of the
    speedup the dedicated queues buy. *)
let comm_mode_ablation ?pool ?machine () =
  pmap pool
    (fun (e : Registry.entry) ->
      let base, _ = run_entry ?machine ~cores:4 e in
      let config =
        {
          (Compiler.default_config ~cores:4 ()) with
          Compiler.comm_mode = Finepar_transform.Comm.Shared_cache;
        }
      in
      let variant, _ = run_entry ~config ?machine ~cores:4 e in
      { ab_name = base.name; ab_base = base.speedup; ab_variant = variant.speedup })
    Registry.all

(** Dual-issue ablation: does fine-grained threading still pay when the
    baseline core is twice as wide?  Both columns are 4-core speedups
    over a sequential baseline on the {e same} machine, so the variant
    pits 4 dual-issue cores against 1 dual-issue core — the paper-era
    question of thread-level vs instruction-level parallelism. *)
let issue_width_ablation ?pool ?machine () =
  let machine = Option.value ~default:Config.default machine in
  pmap pool
    (fun (e : Registry.entry) ->
      let base, _ = run_entry ~machine ~cores:4 e in
      let wide = { machine with Config.issue_width = 2 } in
      let variant, _ = run_entry ~machine:wide ~cores:4 e in
      { ab_name = base.name; ab_base = base.speedup; ab_variant = variant.speedup })
    Registry.all

(* ------------------------------------------------------------------ *)

(** Section III-G: start-up overhead amortization.  The paper argues the
    spawn/barrier overhead is negligible because the loops run many
    iterations; we measure 4-core speedup as the trip count shrinks. *)
let overhead_study ?pool ?machine
    ?(trips = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]) () =
  let e = Option.get (Registry.find "lammps-1") in
  (* Steady-state cost per iteration, from a long run. *)
  let run_par trip =
    let k = { e.Registry.kernel with Kernel.hi = trip } in
    let config =
      match machine with
      | Some m -> { (Compiler.default_config ~cores:4 ()) with Compiler.machine = m }
      | None -> Compiler.default_config ~cores:4 ()
    in
    let c = Compiler.compile config k in
    (Runner.run ~workload:e.Registry.workload c).Runner.cycles
  in
  let c_big, c_small =
    match pmap pool run_par [ 256; 128 ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let steady = float_of_int (c_big - c_small) /. 128.0 in
  pmap pool
    (fun trip ->
      let cycles = run_par trip in
      let per_iter = float_of_int cycles /. float_of_int trip in
      let overhead = float_of_int cycles -. (steady *. float_of_int trip) in
      (trip, per_iter, Float.max 0.0 overhead))
    trips

(** Queue-capacity ablation: how queue length interacts with transfer
    latency (explains why decoupled pipelines tolerate latency). *)
let queue_capacity_ablation ?pool ?(queue_lens = [ 2; 4; 20 ])
    ?(latencies = [ 5; 50 ]) () =
  let configs =
    List.concat_map
      (fun queue_len -> List.map (fun l -> (queue_len, l)) latencies)
      queue_lens
  in
  let tasks =
    List.concat_map
      (fun cfg -> List.map (fun e -> (cfg, e)) Registry.all)
      configs
  in
  let runs =
    pmap pool
      (fun ((queue_len, latency), e) ->
        let machine =
          { Config.default with Config.queue_len; transfer_latency = latency }
        in
        let r, _ = run_entry ~machine ~cores:4 e in
        ((queue_len, latency), r.speedup))
      tasks
  in
  List.map
    (fun (queue_len, latency) ->
      let speeds =
        List.filter_map
          (fun (cfg, s) -> if cfg = (queue_len, latency) then Some s else None)
          runs
      in
      (queue_len, latency, mean speeds))
    configs

(* ------------------------------------------------------------------ *)

(** Section IV: the characterization funnel over all 51 hot loops. *)
let characterization () =
  Finepar_characterize.Classify.funnel Corpus.all_hot_loops

(* ------------------------------------------------------------------ *)

(** Fig. 11: transfer-latency semantics demo.  Returns, for an early and
    a late dequeue relative to the enqueue, the cycle at which the
    dequeue completed — the early dequeue stalls until
    [enqueue time + transfer latency]. *)
let fig11_demo ?(transfer_latency = 5) () =
  let open Finepar_machine in
  (* Hand-built two-core program: core 0 busy-waits then enqueues; core 1
     dequeues immediately (early) and again after a long delay (late). *)
  let build_core0 () =
    let b = Program.Builder.create () in
    let r = Program.Builder.fresh_reg b in
    let acc = Program.Builder.fresh_reg b in
    Program.Builder.emit b (Isa.Li (r, Types.VInt 42));
    Program.Builder.emit b (Isa.Li (acc, Types.VInt 0));
    (* ~30 cycles of integer work before each enqueue. *)
    for _ = 1 to 30 do
      Program.Builder.emit b (Isa.Bin (Types.Add, acc, acc, r))
    done;
    Program.Builder.emit b (Isa.Enq (0, r));
    for _ = 1 to 30 do
      Program.Builder.emit b (Isa.Bin (Types.Add, acc, acc, r))
    done;
    Program.Builder.emit b (Isa.Enq (0, r));
    Program.Builder.emit b Isa.Halt;
    Program.Builder.finish b
  in
  let build_core1 () =
    let b = Program.Builder.create () in
    let d = Program.Builder.fresh_reg b in
    let acc = Program.Builder.fresh_reg b in
    Program.Builder.emit b (Isa.Li (acc, Types.VInt 0));
    (* Early dequeue: issued before the first enqueue completes. *)
    Program.Builder.emit b (Isa.Deq (d, 0));
    (* Burn far more cycles than core 0 so the second dequeue is late. *)
    for _ = 1 to 120 do
      Program.Builder.emit b (Isa.Bin (Types.Add, acc, acc, d))
    done;
    Program.Builder.emit b (Isa.Deq (d, 0));
    Program.Builder.emit b Isa.Halt;
    Program.Builder.finish b
  in
  let program =
    {
      Program.cores = [| build_core0 (); build_core1 () |];
      queues = [| { Isa.src = 0; dst = 1; cls = Isa.Qint } |];
      arrays = [||];
    }
  in
  let config = { Config.default with Config.transfer_latency } in
  let sim = Sim.create ~tracing:true ~config ~initial:[] program in
  ignore (Sim.run sim);
  let events = Sim.events sim in
  let issue_times core pred =
    List.filter_map
      (function
        | Sim.Ev_issue { core = c; cycle; instr; _ } when c = core && pred instr ->
          Some cycle
        | Sim.Ev_issue _ | Sim.Ev_stall _ -> None)
      events
  in
  let enqs = issue_times 0 (function Isa.Enq _ -> true | _ -> false) in
  let deqs = issue_times 1 (function Isa.Deq _ -> true | _ -> false) in
  (transfer_latency, List.combine enqs deqs)

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's measurements (its stated future work  *)
(* and scaling discussion, Sections II and VI).                        *)

(** SMT study (Section II: "Our technique can also be applied to multiple
    hardware threads on the same core, but we have not experimented with
    this option yet").  The same 4-partition code runs on three physical
    configurations: 4 threads on 1 core, 2+2 on 2 cores, and 1 thread per
    core.  Returns per-kernel speedups over the sequential baseline. *)
type smt_row = {
  smt_name : string;
  smt_1core : float;  (** 4 hardware threads sharing one core *)
  smt_2cores : float;  (** 2 threads on each of 2 cores *)
  smt_4cores : float;  (** the paper's configuration *)
}

let smt_study ?pool ?machine () =
  let machine = Option.value ~default:Config.default machine in
  pmap pool
    (fun (e : Registry.entry) ->
      let k = e.Registry.kernel and workload = e.Registry.workload in
      let seq = Compiler.compile_sequential ~machine k in
      let seq_cycles = (Runner.run ~workload seq).Runner.cycles in
      let par =
        Compiler.compile
          { (Compiler.default_config ~cores:4 ()) with Compiler.machine }
          k
      in
      let threads = par.Compiler.stats.Compiler.n_partitions in
      let speed core_map =
        let r = Runner.run ~workload ~core_map par in
        float_of_int seq_cycles /. float_of_int r.Runner.cycles
      in
      {
        smt_name = k.Kernel.name;
        smt_1core = speed (Array.make threads 0);
        smt_2cores = speed (Array.init threads (fun t -> t mod 2));
        smt_4cores = speed (Array.init threads Fun.id);
      })
    Registry.all

(** Queue-count constraint (Section II): mean 4-core speedup as the
    number of usable point-to-point queue pairs shrinks. *)
let queue_limit_study ?pool ?machine ?(limits = [ 12; 6; 4; 2 ]) () =
  let tasks =
    List.concat_map
      (fun limit -> List.map (fun e -> (limit, e)) Registry.all)
      limits
  in
  let runs =
    pmap pool
      (fun (limit, (e : Registry.entry)) ->
        let config =
          {
            (Compiler.default_config ~cores:4 ()) with
            Compiler.max_queue_pairs = Some limit;
          }
        in
        let _, _, s =
          Runner.speedup ?machine ~config ~workload:e.Registry.workload
            ~cores:4 e.Registry.kernel
        in
        (limit, s))
      tasks
  in
  List.map
    (fun limit ->
      let speeds =
        List.filter_map (fun (l, s) -> if l = limit then Some s else None) runs
      in
      (limit, mean speeds))
    limits

(** Scaling beyond 4 cores (Section II's grouping discussion): per-kernel
    speedups at 2, 4 and 8 cores. *)
let cores_sweep ?pool ?machine ?(cores = [ 2; 4; 8 ]) () =
  let tasks =
    List.concat_map
      (fun (e : Registry.entry) -> List.map (fun c -> (e, c)) cores)
      Registry.all
  in
  let runs =
    pmap pool
      (fun ((e : Registry.entry), c) ->
        let _, _, s =
          Runner.speedup ?machine ~workload:e.Registry.workload ~cores:c
            e.Registry.kernel
        in
        (e.Registry.kernel.Kernel.name, (c, s)))
      tasks
  in
  List.map
    (fun (e : Registry.entry) ->
      let name = e.Registry.kernel.Kernel.name in
      ( name,
        List.filter_map
          (fun (n, cs) -> if String.equal n name then Some cs else None)
          runs ))
    Registry.all

(** The Section IV SIMD aside: static 4-way SIMD speedup estimates per
    kernel (the paper reports 1.17 for irs-1 and 1.90 for umt2k-4, and
    that lammps and sphot are unsuitable). *)
let simd_estimates () =
  List.map
    (fun (e : Registry.entry) ->
      ( e.Registry.kernel.Kernel.name,
        Finepar_characterize.Simd.estimate e.Registry.kernel ))
    Registry.all
