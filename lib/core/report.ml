(** Post-run telemetry: per-core, per-queue and per-fiber attribution
    tables derived from one simulation, with JSON / CSV / Chrome
    [trace_event] exporters. *)

module T = Finepar_telemetry
module Sim = Finepar_machine.Sim
module Program = Finepar_machine.Program
module Isa = Finepar_machine.Isa

type core_row = {
  core : int;
  instrs : int;
  stall_operand : int;
  stall_queue_full : int;
  stall_queue_empty : int;
  branch_wait : int;
  smt_wait : int;
  idle_after_halt : int;
  dual_issued : int;  (** instructions issued in bundle slots >= 2 *)
  stall_episodes : T.Histogram.t;  (** durations of contiguous stalls *)
}

type queue_row = {
  queue : int;
  src : int;
  dst : int;
  transfers : int;
  max_occupancy : int;
  occupancy : T.Histogram.t;  (** occupancy sampled after each enqueue *)
}

type fiber_row = {
  fiber : int;  (** {!Finepar_machine.Program.no_fiber} = runtime glue *)
  partition : int;  (** core the fiber's code was placed on, or -1 *)
  line : int;  (** source line of the fiber's statement, or -1 *)
  issue : int;  (** cycles spent issuing this fiber's instructions *)
  stall : int;  (** cycles stalled on this fiber's instructions *)
}

type t = {
  kernel : string;
  cycles : int;
  n_cores : int;
  total_core_cycles : int;  (** [cycles * n_cores] *)
  wait_cycles : int;  (** branch-penalty + SMT-loss + post-halt idle *)
  instrs : int;
  cores : core_row list;
  queues : queue_row list;
  fibers : fiber_row list;  (** issue + stall + wait = total_core_cycles *)
  pass_times : (string * float) list;
  dropped_events : int;
}

let of_sim ?compiled (sim : Sim.t) =
  let program = sim.Sim.program in
  let n_cores = Array.length sim.Sim.stats in
  let cycles = sim.Sim.cycles in
  let cores =
    List.init n_cores (fun i ->
        let s = sim.Sim.stats.(i) in
        {
          core = i;
          instrs = s.Sim.instrs;
          stall_operand = s.Sim.stall_operand;
          stall_queue_full = s.Sim.stall_queue_full;
          stall_queue_empty = s.Sim.stall_queue_empty;
          branch_wait = s.Sim.branch_wait;
          smt_wait = s.Sim.smt_wait;
          idle_after_halt = s.Sim.idle_after_halt;
          dual_issued = s.Sim.dual_issued;
          stall_episodes = sim.Sim.stall_hist.(i);
        })
  in
  let queues =
    List.init
      (Array.length sim.Sim.queues)
      (fun i ->
        let q = sim.Sim.queues.(i) in
        {
          queue = i;
          src = q.Sim.spec.Isa.src;
          dst = q.Sim.spec.Isa.dst;
          transfers = q.Sim.transfers;
          max_occupancy = q.Sim.max_occupancy;
          occupancy = q.Sim.occupancy;
        })
  in
  (* Fiber placement from the program's own provenance, so the report
     works on bare simulations too. *)
  let max_fiber = Program.max_fiber program in
  let partition_of = Array.make (max 0 (max_fiber + 1)) (-1) in
  Array.iteri
    (fun c (cp : Program.core_program) ->
      Array.iter
        (fun f -> if f >= 0 then partition_of.(f) <- c)
        cp.Program.fiber_of)
    program.Program.cores;
  let line_of f =
    match compiled with
    | None -> -1
    | Some (c : Compiler.compiled) -> (
      match
        List.find_opt
          (fun (s : Finepar_ir.Region.sstmt) -> s.Finepar_ir.Region.id = f)
          c.Compiler.region.Finepar_ir.Region.stmts
      with
      | Some s -> s.Finepar_ir.Region.line
      | None -> -1)
  in
  let fibers =
    List.map
      (fun (f, issue, stall) ->
        {
          fiber = f;
          partition = (if f >= 0 then partition_of.(f) else -1);
          line = (if f >= 0 then line_of f else -1);
          issue;
          stall;
        })
      (Sim.fiber_counters sim)
  in
  {
    kernel =
      (match compiled with
      | Some c -> c.Compiler.source.Finepar_ir.Kernel.name
      | None -> "");
    cycles;
    n_cores;
    total_core_cycles = cycles * n_cores;
    wait_cycles = Sim.wait_cycles sim;
    instrs =
      Array.fold_left (fun acc s -> acc + s.Sim.instrs) 0 sim.Sim.stats;
    cores;
    queues;
    fibers;
    pass_times =
      (match compiled with
      | Some c -> c.Compiler.pass_times
      | None -> []);
    dropped_events = Sim.dropped_events sim;
  }

(* ------------------------------------------------------------------ *)
(* Metrics registry view *)

let bounds_of h =
  T.Histogram.buckets h
  |> List.filter_map (fun (le, _) -> if le = max_int then None else Some le)
  |> Array.of_list

let metrics t =
  let m = T.Metrics.create () in
  T.Metrics.incr ~by:t.cycles (T.Metrics.counter m "sim_cycles_total");
  T.Metrics.incr ~by:t.instrs (T.Metrics.counter m "sim_instructions_total");
  T.Metrics.incr ~by:t.wait_cycles (T.Metrics.counter m "sim_wait_cycles_total");
  T.Metrics.incr ~by:t.dropped_events
    (T.Metrics.counter m "trace_events_dropped_total");
  List.iter
    (fun r ->
      let core = [ ("core", string_of_int r.core) ] in
      let cnt name v =
        T.Metrics.incr ~by:v (T.Metrics.counter m ~labels:core name)
      in
      cnt "core_instructions_total" r.instrs;
      let stall cls v =
        T.Metrics.incr ~by:v
          (T.Metrics.counter m
             ~labels:(core @ [ ("class", cls) ])
             "core_stall_cycles_total")
      in
      stall "operand" r.stall_operand;
      stall "queue_full" r.stall_queue_full;
      stall "queue_empty" r.stall_queue_empty;
      let wait kind v =
        T.Metrics.incr ~by:v
          (T.Metrics.counter m
             ~labels:(core @ [ ("kind", kind) ])
             "core_wait_cycles_total")
      in
      wait "branch" r.branch_wait;
      wait "smt" r.smt_wait;
      wait "halted" r.idle_after_halt;
      cnt "core_dual_issued_total" r.dual_issued;
      T.Histogram.merge_into
        ~into:
          (T.Metrics.histogram m ~labels:core
             ~bounds:(bounds_of r.stall_episodes)
             "core_stall_episode_cycles")
        r.stall_episodes)
    t.cores;
  List.iter
    (fun q ->
      let labels =
        [
          ("queue", string_of_int q.queue);
          ("src", string_of_int q.src);
          ("dst", string_of_int q.dst);
        ]
      in
      T.Metrics.incr ~by:q.transfers
        (T.Metrics.counter m ~labels "queue_transfers_total");
      T.Metrics.set
        (T.Metrics.gauge m ~labels "queue_max_occupancy")
        (float_of_int q.max_occupancy);
      T.Histogram.merge_into
        ~into:
          (T.Metrics.histogram m ~labels
             ~bounds:(bounds_of q.occupancy)
             "queue_occupancy")
        q.occupancy)
    t.queues;
  List.iter
    (fun f ->
      let fiber =
        [ ("fiber", if f.fiber >= 0 then string_of_int f.fiber else "glue") ]
      in
      let cnt kind v =
        T.Metrics.incr ~by:v
          (T.Metrics.counter m
             ~labels:(fiber @ [ ("kind", kind) ])
             "fiber_cycles_total")
      in
      cnt "issue" f.issue;
      cnt "stall" f.stall)
    t.fibers;
  m

(* ------------------------------------------------------------------ *)
(* JSON / CSV *)

let to_json t =
  let open T.Json in
  Obj
    [
      ("kernel", String t.kernel);
      ("cycles", Int t.cycles);
      ("n_cores", Int t.n_cores);
      ("total_core_cycles", Int t.total_core_cycles);
      ("wait_cycles", Int t.wait_cycles);
      ("instrs", Int t.instrs);
      ("dropped_events", Int t.dropped_events);
      ( "cores",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("core", Int r.core);
                   ("instrs", Int r.instrs);
                   ("stall_operand", Int r.stall_operand);
                   ("stall_queue_full", Int r.stall_queue_full);
                   ("stall_queue_empty", Int r.stall_queue_empty);
                   ("branch_wait", Int r.branch_wait);
                   ("smt_wait", Int r.smt_wait);
                   ("idle_after_halt", Int r.idle_after_halt);
                   ("dual_issued", Int r.dual_issued);
                   ("stall_episodes", T.Histogram.to_json r.stall_episodes);
                 ])
             t.cores) );
      ( "queues",
        List
          (List.map
             (fun q ->
               Obj
                 [
                   ("queue", Int q.queue);
                   ("src", Int q.src);
                   ("dst", Int q.dst);
                   ("transfers", Int q.transfers);
                   ("max_occupancy", Int q.max_occupancy);
                   ("occupancy", T.Histogram.to_json q.occupancy);
                 ])
             t.queues) );
      ( "fibers",
        List
          (List.map
             (fun f ->
               Obj
                 [
                   ("fiber", Int f.fiber);
                   ("partition", Int f.partition);
                   ("line", Int f.line);
                   ("issue", Int f.issue);
                   ("stall", Int f.stall);
                 ])
             t.fibers) );
      ( "passes",
        List
          (List.map
             (fun (name, secs) ->
               Obj [ ("name", String name); ("seconds", Float secs) ])
             t.pass_times) );
    ]

let to_csv t = T.Metrics.to_csv (metrics t)

(* ------------------------------------------------------------------ *)
(* Human-readable report *)

let pp ppf t =
  let pct v =
    if t.total_core_cycles = 0 then 0.
    else 100. *. float_of_int v /. float_of_int t.total_core_cycles
  in
  Fmt.pf ppf "kernel %s: %d cycles on %d cores, %d instructions@." t.kernel
    t.cycles t.n_cores t.instrs;
  Fmt.pf ppf "@.%-5s %9s %9s %9s %9s %9s %9s %9s %9s@." "core" "instrs"
    "operand" "q-full" "q-empty" "branch" "smt" "halted" "dual";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-5d %9d %9d %9d %9d %9d %9d %9d %9d@." r.core r.instrs
        r.stall_operand r.stall_queue_full r.stall_queue_empty r.branch_wait
        r.smt_wait r.idle_after_halt r.dual_issued)
    t.cores;
  if t.queues <> [] then begin
    Fmt.pf ppf "@.%-5s %9s %9s %9s@." "queue" "src->dst" "transfers" "max-occ";
    List.iter
      (fun q ->
        Fmt.pf ppf "%-5d %4d->%-4d %9d %9d@." q.queue q.src q.dst q.transfers
          q.max_occupancy)
      t.queues
  end;
  Fmt.pf ppf "@.%-6s %9s %5s %9s %9s %7s@." "fiber" "partition" "line" "issue"
    "stall" "%cycles";
  List.iter
    (fun f ->
      Fmt.pf ppf "%-6s %9d %5d %9d %9d %6.1f%%@."
        (if f.fiber >= 0 then string_of_int f.fiber else "glue")
        f.partition f.line f.issue f.stall
        (pct (f.issue + f.stall)))
    t.fibers;
  Fmt.pf ppf "%-6s %9s %5s %9s %9s %6.1f%%@." "wait" "-" "-" "-" "-"
    (pct t.wait_cycles);
  let attributed =
    List.fold_left (fun acc f -> acc + f.issue + f.stall) 0 t.fibers
  in
  let dual = List.fold_left (fun acc r -> acc + r.dual_issued) 0 t.cores in
  Fmt.pf ppf "@.accounting: %d attributed + %d wait = %d = %d cycles x %d \
              cores + %d dual-issued@."
    attributed t.wait_cycles
    (attributed + t.wait_cycles)
    t.cycles t.n_cores dual;
  if t.pass_times <> [] then begin
    Fmt.pf ppf "@.%-12s %12s@." "pass" "seconds";
    List.iter
      (fun (name, secs) -> Fmt.pf ppf "%-12s %12.6f@." name secs)
      t.pass_times
  end;
  if t.dropped_events > 0 then
    Fmt.pf ppf "@.(trace ring dropped %d events)@." t.dropped_events

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export: one lane per core (pid 0), occupancy
   counters per queue (pid 1), compiler passes (pid 2); 1 cycle = 1 us. *)

let chrome_trace ?(pass_times = []) (sim : Sim.t) =
  let open T.Chrome_trace in
  let program = sim.Sim.program in
  let n_cores = Array.length program.Program.cores in
  let events = Sim.events sim in
  let meta =
    [ Process_name { pid = 0; name = "cores" } ]
    @ List.concat
        (List.init n_cores (fun c ->
             [
               Thread_name { pid = 0; tid = c; name = "core " ^ string_of_int c };
               Thread_sort { pid = 0; tid = c; index = c };
             ]))
    @ (if Array.length program.Program.queues = 0 then []
       else [ Process_name { pid = 1; name = "queues" } ])
    @
    if pass_times = [] then []
    else
      [
        Process_name { pid = 2; name = "compiler" };
        Thread_name { pid = 2; tid = 0; name = "pipeline" };
      ]
  in
  (* Core lanes: merge per-cycle events into spans while the attribution
     (fiber or stall reason) stays the same over contiguous cycles. *)
  let name_of = function
    | Sim.Ev_issue { core; pc; _ } ->
      let f = program.Program.cores.(core).Program.fiber_of.(pc) in
      if f = Program.no_fiber then "glue" else "fiber " ^ string_of_int f
    | Sim.Ev_stall { reason; _ } -> T.Stall.to_string reason
  in
  let cat_of = function
    | Sim.Ev_issue _ -> "issue"
    | Sim.Ev_stall _ -> "stall"
  in
  let spans = ref [] in
  let cur = Array.make n_cores None in
  let flush c =
    match cur.(c) with
    | None -> ()
    | Some (name, cat, start, last) ->
      spans :=
        Complete
          { name; cat; pid = 0; tid = c; ts = start; dur = last - start + 1;
            args = [] }
        :: !spans;
      cur.(c) <- None
  in
  List.iter
    (fun ev ->
      let core, cycle =
        match ev with
        | Sim.Ev_issue { core; cycle; _ } | Sim.Ev_stall { core; cycle; _ } ->
          (core, cycle)
      in
      let name = name_of ev and cat = cat_of ev in
      match cur.(core) with
      | Some (n, ct, start, last)
        when String.equal n name && String.equal ct cat && cycle = last + 1 ->
        cur.(core) <- Some (n, ct, start, cycle)
      | _ ->
        flush core;
        cur.(core) <- Some (name, cat, cycle, cycle))
    events;
  for c = 0 to n_cores - 1 do
    flush c
  done;
  (* Queue occupancy counters, replayed from enqueue/dequeue issues.
     Clamped at zero: with a truncated trace the replay can start
     mid-stream. *)
  let n_queues = Array.length program.Program.queues in
  let occ = Array.make n_queues 0 in
  let qname q =
    let s = program.Program.queues.(q) in
    Fmt.str "q%d %d->%d" q s.Isa.src s.Isa.dst
  in
  let counters = ref [] in
  let sample q cycle =
    counters :=
      Counter
        { name = qname q; pid = 1; ts = cycle;
          values = [ ("occupancy", occ.(q)) ] }
      :: !counters
  in
  List.iter
    (function
      | Sim.Ev_issue { cycle; instr = Isa.Enq (q, _); _ } ->
        occ.(q) <- occ.(q) + 1;
        sample q cycle
      | Sim.Ev_issue { cycle; instr = Isa.Deq (_, q); _ } ->
        occ.(q) <- max 0 (occ.(q) - 1);
        sample q cycle
      | Sim.Ev_issue _ | Sim.Ev_stall _ -> ())
    events;
  (* Compiler pass lane: wall-clock seconds scaled to microseconds,
     laid end to end. *)
  let _, passes =
    List.fold_left
      (fun (ts, acc) (name, secs) ->
        let dur = max 1 (int_of_float (secs *. 1e6)) in
        ( ts + dur,
          Complete { name; cat = "compile"; pid = 2; tid = 0; ts; dur; args = [] }
          :: acc ))
      (0, []) pass_times
  in
  meta @ List.rev !spans @ List.rev !counters @ List.rev passes
