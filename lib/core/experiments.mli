(** Drivers for every table and figure in the paper's evaluation
    (Section IV and V).  Each function returns plain data; the benchmark
    harness ([bench/main.ml]) and the CLI render it.

    Every kernel × configuration simulation is independent, so the
    drivers accept an optional {!Finepar_exec.Pool.t} and fan their rows
    out over it.  Results are merged by task index, making pooled runs
    byte-identical to sequential ones (the CI diffs them). *)

type kernel_run = {
  name : string;
  app : string;
  seq_cycles : int;
  par_cycles : int;
  speedup : float;
}
val run_entry :
  ?config:Compiler.config ->
  ?machine:Finepar_machine.Config.t ->
  cores:int ->
  Finepar_kernels.Registry.entry -> kernel_run * Runner.run
val mean : float list -> float
type table1_row = {
  t1_name : string;
  t1_location : string;
  t1_pct : float;
  t1_measured_ops : int;
  t1_trip : int;
}
val table1 : unit -> table1_row list
type fig12_row = {
  f12_name : string;
  f12_app : string;
  s2 : float;
  s4 : float;
}
val fig12 :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> fig12_row list
val fig12_averages : fig12_row list -> float * float
type table2_row = {
  t2_app : string;
  t2_s2 : float;
  t2_s4 : float;
  t2_paper_s2 : float;
  t2_paper_s4 : float;
}
val table2 :
  ?pool:Finepar_exec.Pool.t ->
  ?fig12_rows:fig12_row list -> unit -> table2_row list
type table3_row = {
  t3_name : string;
  fibers : int;
  deps : int;
  balance : float;
  com_ops : int;
  queues : int;
  t3_speedup : float;
  paper : Finepar_kernels.Registry.paper_row;
}
val table3 :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> table3_row list
type fig13_point = {
  latency : int;
  per_kernel : (string * float) list;
  f13_avg : float;
  no_speedup : int;
}
val fig13 :
  ?pool:Finepar_exec.Pool.t ->
  ?latencies:int list -> ?queue_len:int -> unit -> fig13_point list
type fig14_row = {
  f14_name : string;
  base : float;
  speculated : float;
  chosen : float;
  converted_ifs : int;
}
val fig14 :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> fig14_row list
type ablation_row = {
  ab_name : string;
  ab_base : float;
  ab_variant : float;
}
val throughput_ablation :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> ablation_row list
val multipair_ablation :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> ablation_row list

(** Hardware queues vs shared-cache valid-flag coupling: 4-core speedup
    with the paper's queues ([ab_base]) against the same partitioning
    communicating through spin-wait handshakes in the ordinary cache
    hierarchy ([ab_variant]). *)
val comm_mode_ablation :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> ablation_row list

(** 4-core speedup over a sequential baseline on a single-issue machine
    ([ab_base]) vs the same comparison with every core dual-issue
    ([ab_variant] — a wider baseline core competes with thread-level
    parallelism). *)
val issue_width_ablation :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> ablation_row list
val overhead_study :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t ->
  ?trips:int list -> unit -> (int * float * float) list
val queue_capacity_ablation :
  ?pool:Finepar_exec.Pool.t ->
  ?queue_lens:int list ->
  ?latencies:int list -> unit -> (int * int * float) list
val characterization : unit -> Finepar_characterize.Classify.funnel
val fig11_demo : ?transfer_latency:int -> unit -> int * (int * int) list
type smt_row = {
  smt_name : string;
  smt_1core : float;
  smt_2cores : float;
  smt_4cores : float;
}
val smt_study :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t -> unit -> smt_row list
val queue_limit_study :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t ->
  ?limits:int list -> unit -> (int * float) list
val cores_sweep :
  ?pool:Finepar_exec.Pool.t ->
  ?machine:Finepar_machine.Config.t ->
  ?cores:int list -> unit -> (string * (int * float) list) list
val simd_estimates : unit -> (string * Finepar_characterize.Simd.report) list
