(** Running compiled kernels on the simulator, checking their results
    against the reference evaluator, and measuring speedups. *)

(** Outcome of one simulation. *)
type run = {
  cycles : int;  (** cycle of the last core's halt *)
  result : Finepar_ir.Eval.result;  (** live-out scalars + written arrays *)
  queues_used : int;  (** distinct (src, dst) core pairs that carried values *)
  instrs : int;  (** instructions issued across all cores *)
  load_counters : (string * int * int) list;
      (** per array: (name, loads, L1 misses) — profile-feedback input *)
  telemetry : Report.t;
      (** per-core / per-queue / per-fiber cycle attribution *)
}

(** Raised by {!run} when the simulated outputs differ from the reference
    evaluator in any bit. *)
exception Mismatch of string

(** [run compiled] simulates a compiled kernel.
    @param check compare outputs bit-for-bit against the reference
      evaluator and raise {!Mismatch} on any difference (default [true])
    @param workload initial array contents
    @param core_map logical-core (hardware thread) to physical-core
      placement; several threads on one physical core share its issue
      slot and L1 (SMT).  Defaults to one thread per core.
    @param tracing record per-cycle issue/stall events in the simulator's
      bounded ring buffer (default [false])
    @param trace_capacity ring capacity when tracing
      (default {!Finepar_machine.Sim.default_trace_capacity})
    @param engine simulation engine (default
      {!Finepar_machine.Engine.default}, the cycle stepper); all engines
      are cycle-exact to each other.  The compiled engine's one-time
      specialize step is timed as its own ["specialize"] tracer span
      nested under the sim span. *)
val run :
  ?check:bool ->
  ?workload:Finepar_ir.Eval.workload ->
  ?core_map:int array ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?engine:Finepar_machine.Engine.t ->
  Compiler.compiled ->
  run

(** Like {!run}, but also returns the simulator, whose event trace feeds
    {!Report.chrome_trace}. *)
val run_with_sim :
  ?check:bool ->
  ?workload:Finepar_ir.Eval.workload ->
  ?core_map:int array ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?engine:Finepar_machine.Engine.t ->
  Compiler.compiled ->
  run * Finepar_machine.Sim.t

(** Collect per-array miss-rate feedback from a sequential run — the
    paper's profile-directed feedback (Sections III-B, III-I). *)
val profile_feedback :
  ?machine:Finepar_machine.Config.t ->
  ?engine:Finepar_machine.Engine.t ->
  workload:Finepar_ir.Eval.workload ->
  Finepar_ir.Kernel.t ->
  Finepar_analysis.Profile.t

(** [speedup ~workload ~cores kernel] compiles and runs the sequential
    baseline, feeds its memory profile back into an [cores]-way parallel
    compilation, runs that too, and returns
    [(sequential run, parallel run, speedup)]. *)
val speedup :
  ?machine:Finepar_machine.Config.t ->
  ?config:Compiler.config ->
  ?engine:Finepar_machine.Engine.t ->
  workload:Finepar_ir.Eval.workload ->
  cores:int ->
  Finepar_ir.Kernel.t ->
  run * run * float

(** Result of {!autotune}. *)
type tuned = {
  best_name : string;
  best : Compiler.compiled;
  best_cycles : int;
  candidates : (string * int) list;  (** configuration name -> cycles *)
}

(** The fixed candidate enumeration behind {!autotune} — sequential,
    baseline, speculation, throughput, their combination, and multi-pair
    merge, all derived from [base].  Shared with the service-side autotune
    and with [Finepar_tune]'s generation 0 so the three can never drift. *)
val autotune_candidates :
  Compiler.config -> (string * Compiler.config) list

(** Deterministic candidate ordering: fewer cycles first, then the
    simpler configuration — fewer cores; speculation off before on;
    throughput off before on; [`Greedy] before [`Multi_pair]; lower
    transfer latency; shorter queues; then the remaining knobs (weights,
    max height, max queue pairs).  Candidates that still compare equal
    are observationally identical, and selection keeps the earlier one —
    so a parallel search merge reproduces the same winner at any [-j]. *)
val compare_candidates :
  int * Compiler.config -> int * Compiler.config -> int

(** Multi-version compilation with dynamic feedback.  Section III-I
    (limitation 1): the compiler "can generate multiple code versions for
    regions with potential, and rely on a runtime system with dynamic
    feedback to decide which code version to execute".  Compiles the
    candidate configurations (see {!autotune_candidates}), measures each
    once, and keeps the fastest under {!compare_candidates}.
    @param check applied uniformly to the sequential (profiling)
      reference and every candidate (default [true]); checking happens
      after simulation, so cycle counts do not depend on it. *)
val autotune :
  ?machine:Finepar_machine.Config.t ->
  ?cores:int ->
  ?workload:Finepar_ir.Eval.workload ->
  ?check:bool ->
  ?engine:Finepar_machine.Engine.t ->
  Finepar_ir.Kernel.t ->
  tuned
