(** Running compiled kernels on the simulator, checking their results
    against the reference evaluator, and measuring speedups. *)

open Finepar_ir
open Finepar_machine

type run = {
  cycles : int;
  result : Eval.result;
  queues_used : int;  (** dynamic — Table III "Num Queues" *)
  instrs : int;
  load_counters : (string * int * int) list;  (** array, loads, L1 misses *)
  telemetry : Report.t;
}

exception Mismatch of string

(** Simulate a compiled kernel on [workload] and also return the
    simulator itself, for callers that need the raw event trace.  When
    [check] is set (the default), the outputs are compared bit-for-bit
    with the reference evaluator and {!Mismatch} is raised on any
    difference. *)
let run_with_sim ?(check = true) ?(workload = []) ?core_map ?tracing
    ?trace_capacity ?engine (c : Compiler.compiled) =
  let sim =
    Sim.create ?core_map ?tracing ?trace_capacity
      ~config:c.Compiler.config.Compiler.machine ~initial:workload
      c.Compiler.code.Finepar_codegen.Lower.program
  in
  let engine_name =
    Engine.to_string (Option.value engine ~default:Engine.default)
  in
  let cycles =
    Finepar_telemetry.Tracer.with_span ~cat:"sim"
      ~args:
        [
          ( "kernel",
            Finepar_telemetry.Json.String c.Compiler.source.Kernel.name );
        ]
      ("sim:" ^ engine_name)
      (fun () ->
        (* The compiled engine's one-time closure compilation is timed as
           its own pass span, nested under the sim span, so traces show
           the specialize cost separately from the run proper. *)
        let specialized =
          match engine with
          | Some Engine.Compiled ->
            Some
              (Finepar_telemetry.Tracer.with_span ~cat:"pass" "specialize"
                 (fun () -> Sim.specialize sim))
          | Some (Engine.Cycle | Engine.Event) | None -> None
        in
        let cycles = Sim.run ?engine ?specialized sim in
        Finepar_telemetry.Tracer.set_arg "cycles"
          (Finepar_telemetry.Json.Int cycles);
        cycles)
  in
  let written = Stmt.arrays_written c.Compiler.kernel.Kernel.body in
  let result =
    {
      Eval.live_out =
        List.map
          (fun (v, r) -> (v, Sim.reg_value sim 0 r))
          c.Compiler.code.Finepar_codegen.Lower.live_out_regs;
      Eval.arrays_out =
        List.filter_map
          (fun (d : Kernel.array_decl) ->
            if Stmt.String_set.mem d.Kernel.a_name written then
              Some (d.Kernel.a_name, Array.copy (Sim.array_contents sim d.Kernel.a_name))
            else None)
          c.Compiler.kernel.Kernel.arrays;
    }
  in
  if check then begin
    let expected = Eval.run_result ~workload c.Compiler.source in
    if not (Eval.result_equal expected result) then
      raise
        (Mismatch
           (Fmt.str
              "@[<v>kernel %s (%d cores): simulated result differs from \
               reference@,expected: %a@,got: %a@]"
              c.Compiler.source.Kernel.name c.Compiler.stats.Compiler.n_partitions
              Eval.pp_result expected Eval.pp_result result))
  end;
  ( {
      cycles;
      result;
      queues_used = Sim.queues_used sim;
      instrs =
        Array.fold_left
          (fun acc (cs : Sim.core_stats) -> acc + cs.Sim.instrs)
          0 sim.Sim.stats;
      load_counters = Sim.load_counters sim;
      telemetry = Report.of_sim ~compiled:c sim;
    },
    sim )

let run ?check ?workload ?core_map ?tracing ?trace_capacity ?engine c =
  fst (run_with_sim ?check ?workload ?core_map ?tracing ?trace_capacity ?engine c)

(** Collect profile feedback by running the sequential version — the
    paper's profile-directed feedback loop (Sections III-B and III-I). *)
let profile_feedback ?(machine = Config.default) ?engine ~workload kernel =
  let seq = Compiler.compile_sequential ~machine kernel in
  let r = run ~check:false ~workload ?engine seq in
  Finepar_analysis.Profile.of_counters r.load_counters

(** Compile and run the sequential baseline and an [n]-core parallel
    version; returns (sequential run, parallel run, speedup). *)
let speedup ?(machine = Config.default) ?(config = Compiler.default_config ())
    ?engine ~workload ~cores kernel =
  let config = { config with Compiler.machine; cores } in
  let seq = Compiler.compile_sequential ~machine kernel in
  let seq_run = run ~workload ?engine seq in
  let profile =
    Finepar_analysis.Profile.of_counters seq_run.load_counters
  in
  let par = Compiler.compile { config with Compiler.profile } kernel in
  let par_run = run ~workload ?engine par in
  let s = float_of_int seq_run.cycles /. float_of_int par_run.cycles in
  (seq_run, par_run, s)

(** Multi-version compilation with dynamic feedback.  Section III-I
    (limitation 1): the compiler "can generate multiple code versions for
    regions with potential, and rely on a runtime system with dynamic
    feedback to decide which code version to execute".  We compile the
    candidate configurations, measure each once, and keep the fastest. *)
type tuned = {
  best_name : string;
  best : Compiler.compiled;
  best_cycles : int;
  candidates : (string * int) list;  (** configuration -> cycles *)
}

let autotune_candidates (base : Compiler.config) =
  [
    ("sequential", { base with Compiler.cores = 1 });
    ("baseline", base);
    ("speculation", { base with Compiler.speculation = true });
    ("throughput", { base with Compiler.throughput = true });
    ("speculation+throughput",
     { base with Compiler.speculation = true; throughput = true });
    ("multi-pair", { base with Compiler.algorithm = `Multi_pair });
  ]

(* The preference key behind {!compare_candidates}: cheaper configurations
   first, so a cycle tie resolves to the simplest machine.  Every knob that
   distinguishes candidates appears here; any configs equal under this key
   are observationally identical to the search. *)
let config_preference (c : Compiler.config) =
  let alg = match c.Compiler.algorithm with `Greedy -> 0 | `Multi_pair -> 1 in
  let comm =
    match c.Compiler.comm_mode with
    | Finepar_transform.Comm.Queues -> 0
    | Finepar_transform.Comm.Shared_cache -> 1
  in
  let w = c.Compiler.weights in
  ( c.Compiler.cores,
    (Bool.to_int c.Compiler.speculation, Bool.to_int c.Compiler.throughput, alg),
    ( c.Compiler.machine.Config.transfer_latency,
      c.Compiler.machine.Config.queue_len,
      c.Compiler.machine.Config.issue_width,
      comm ),
    ( (w.Finepar_partition.Affinity.w_dep,
       w.Finepar_partition.Affinity.w_time,
       w.Finepar_partition.Affinity.w_prox),
      c.Compiler.max_height,
      c.Compiler.max_queue_pairs ) )

let compare_candidates (cy_a, (a : Compiler.config)) (cy_b, (b : Compiler.config)) =
  match compare (cy_a : int) cy_b with
  | 0 -> compare (config_preference a) (config_preference b)
  | n -> n

let autotune ?(machine = Config.default) ?(cores = 4) ?(workload = [])
    ?(check = true) ?engine kernel =
  let seq = Compiler.compile_sequential ~machine kernel in
  (* The same check policy applies to the sequential reference and every
     candidate: checking happens after the simulation, so cycle counts are
     unaffected either way, but a uniform policy keeps the measurement
     protocol honest and the error behaviour consistent. *)
  let seq_run = run ~check ~workload ?engine seq in
  let profile = Finepar_analysis.Profile.of_counters seq_run.load_counters in
  let base = { (Compiler.default_config ~cores ()) with Compiler.machine; profile } in
  let measured =
    List.map
      (fun (name, config) ->
        let c = Compiler.compile config kernel in
        let r = run ~check ~workload ?engine c in
        (name, c, r.cycles))
      (autotune_candidates base)
  in
  let best_name, best, best_cycles =
    List.fold_left
      (fun (bn, bc, bcy) (n, c, cy) ->
        (* Strict [< 0]: ties keep the earlier candidate, so the winner is
           independent of how a parallel search happened to interleave. *)
        if compare_candidates (cy, c.Compiler.config) (bcy, bc.Compiler.config) < 0
        then (n, c, cy)
        else (bn, bc, bcy))
      (let n, c, cy = List.hd measured in
       (n, c, cy))
      (List.tl measured)
  in
  {
    best_name;
    best;
    best_cycles;
    candidates = List.map (fun (n, _, cy) -> (n, cy)) measured;
  }
