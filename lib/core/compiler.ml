(** The end-to-end compiler pipeline (Section III).

    [compile config kernel] runs, in order: control-flow speculation
    (III-H, optional), expression flattening and predicate extraction
    (III-A pre-processing / III-E), fiber partitioning (III-A), dependence
    analysis, code-graph construction and heuristic merging (III-B), global
    scheduling with send-early/receive-late priorities (III-B), outlining
    with communication insertion, conditional-structure replication and
    live-variable copies (III-C..F), and machine-code generation including
    the runtime driver protocol (III-G). *)

open Finepar_ir
open Finepar_analysis
open Finepar_fiber
open Finepar_partition
open Finepar_transform
open Finepar_codegen
open Finepar_machine
module Verify = Finepar_verify.Verify

type config = {
  cores : int;
  max_height : int;  (** expression-tree height bound before splitting *)
  algorithm : Merge.algorithm;
  throughput : bool;  (** the unidirectional-dependence heuristic (III-B) *)
  max_queue_pairs : int option;
      (** constrain partitioning to use at most this many point-to-point
          queues (Section II) *)
  speculation : bool;
  weights : Affinity.weights;
  profile : Profile.t;  (** memory-latency feedback for the cost model *)
  machine : Config.t;
  comm_mode : Comm.mode;
      (** how cross-core transfers are realized: hardware queues or a
          valid-flag handshake through the shared cache *)
}

let default_config ?(cores = 4) () =
  {
    cores;
    max_height = Region.default_max_height;
    algorithm = `Greedy;
    throughput = false;
    max_queue_pairs = None;
    speculation = false;
    weights = Affinity.default;
    profile = Profile.all_hits;
    machine = Config.default;
    comm_mode = Comm.Queues;
  }

(** Static characteristics of one compilation — the columns of Table III
    (the speedup column comes from {!Runner}). *)
type stats = {
  initial_fibers : int;
  data_deps : int;
  load_balance : float;
  com_ops : int;
  queue_pairs_static : int;
  n_partitions : int;
  merge_steps : int;
  speculated_ifs : int;
}

type compiled = {
  kernel : Kernel.t;  (** post-speculation kernel *)
  source : Kernel.t;  (** the kernel as written *)
  config : config;
  region : Region.t;  (** fiber-split region *)
  deps : Deps.t;
  cluster_of : int array;
  order : int list;
  comm : Comm.t;  (** the transfer plan the verifier checks against *)
  code : Lower.t;
  stats : stats;
  pass_times : (string * float) list;
      (** per-pass wall-clock seconds, in pipeline order *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "fibers=%d deps=%d balance=%.2f com_ops=%d queues=%d partitions=%d"
    s.initial_fibers s.data_deps s.load_balance s.com_ops
    s.queue_pairs_static s.n_partitions

let compile (config : config) (kernel : Kernel.t) =
  (* One enclosing span per compilation: with a tracer installed, the
     per-pass spans emitted by [Passes.time] nest under it, turning the
     flat pass-timer list into a tree rooted at the kernel. *)
  Finepar_telemetry.Tracer.with_span ~cat:"compile"
    ~args:
      [
        ("kernel", Finepar_telemetry.Json.String kernel.Kernel.name);
        ("cores", Finepar_telemetry.Json.Int config.cores);
      ]
    ("compile " ^ kernel.Kernel.name)
  @@ fun () ->
  let passes = Finepar_telemetry.Passes.create () in
  let timed name f = Finepar_telemetry.Passes.time passes name f in
  let kernel', speculated_ifs =
    timed "speculate" (fun () ->
        if config.speculation then Speculate.apply kernel else (kernel, 0))
  in
  let region0 =
    timed "flatten" (fun () ->
        Region.of_kernel ~max_height:config.max_height kernel')
  in
  let region, fstats = timed "fiber-split" (fun () -> Fiber.split region0) in
  let deps = timed "deps" (fun () -> Deps.analyze region) in
  let graph =
    timed "code-graph" (fun () ->
        Code_graph.build ~profile:config.profile region deps)
  in
  let merge =
    timed "merge" (fun () ->
        Merge.run ~algorithm:config.algorithm ~throughput:config.throughput
          ?max_queue_pairs:config.max_queue_pairs ~weights:config.weights
          ~cores:config.cores graph)
  in
  let order =
    timed "schedule" (fun () ->
        Schedule.order graph ~cluster_of:merge.Merge.cluster_of)
  in
  let comm =
    timed "comm" (fun () ->
        Comm.compute ~region ~deps ~cluster_of:merge.Merge.cluster_of ~order
          ~queue_len:config.machine.Config.queue_len)
  in
  let code =
    timed "lower" (fun () ->
        Lower.generate ~kernel:kernel' ~region ~deps
          ~cluster_of:merge.Merge.cluster_of ~n_clusters:merge.Merge.n_clusters
          ~order ~comm ~mode:config.comm_mode
          ~line_size:config.machine.Config.l1_line ())
  in
  (* Static comm-protocol verification: reject miscompiled comm before
     a single cycle is simulated. *)
  let verification =
    timed "verify" (fun () ->
        Verify.run ~plan:comm ~mode:config.comm_mode
          ~queue_len:config.machine.Config.queue_len code.Lower.program)
  in
  if not (Verify.ok verification) then
    raise (Verify.Rejected (kernel.Kernel.name, verification.Verify.violations));
  (* Queue-capacity warnings describe the hardware-queue realization. *)
  if config.comm_mode = Comm.Queues then
    List.iter (fun w -> Logs.warn (fun m -> m "%s: %s" kernel.Kernel.name w))
      comm.Comm.warnings;
  {
    kernel = kernel';
    source = kernel;
    config;
    region;
    deps;
    cluster_of = merge.Merge.cluster_of;
    order;
    comm;
    code;
    stats =
      {
        initial_fibers = fstats.Fiber.initial_fibers;
        data_deps = Deps.data_dep_count deps;
        load_balance = Merge.load_balance graph merge;
        com_ops = comm.Comm.com_ops;
        queue_pairs_static = List.length comm.Comm.pairs_used;
        n_partitions = merge.Merge.n_clusters;
        merge_steps = merge.Merge.merge_steps;
        speculated_ifs;
      };
    pass_times = Finepar_telemetry.Passes.to_list passes;
  }

(** Compile for sequential execution on one core (the baseline of all the
    paper's speedups). *)
let compile_sequential ?(machine = Config.default) kernel =
  compile { (default_config ~cores:1 ()) with machine } kernel
