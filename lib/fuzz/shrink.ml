(** Greedy failure-preserving minimization of a (kernel, config) case.

    The shrinker repeatedly tries one-step reductions — deleting
    statements, dissolving conditionals, replacing subexpressions by
    same-typed children or literals, shrinking trip counts, array
    lengths and declarations, and moving configuration fields back to
    their defaults — keeping a candidate only when the oracle still
    fails {e with the same oracle} (so a bit-exact divergence cannot
    drift into, say, an out-of-bounds artifact of the shrinking itself).
    Each accepted step strictly decreases a size measure, so the loop
    terminates at a local minimum. *)

open Finepar_ir

(* ------------------------------------------------------------------ *)
(* Size measures.                                                      *)

let rec expr_size e =
  1 + List.fold_left (fun acc c -> acc + expr_size c) 0 (Expr.children e)

let rec stmt_size = function
  | Stmt.Assign (_, e) -> 1 + expr_size e
  | Stmt.Store (_, i, e) -> 1 + expr_size i + expr_size e
  | Stmt.If (c, t, f) ->
    1 + expr_size c + block_size t + block_size f

and block_size b = List.fold_left (fun acc s -> acc + stmt_size s) 0 b

(** Number of statements, counting into conditional branches — the
    measure reproducer-size guarantees are stated in. *)
let stmt_count (k : Kernel.t) =
  let n = ref 0 in
  Stmt.iter_block (fun _ -> incr n) k.Kernel.body;
  !n

let kernel_cost (k : Kernel.t) =
  (10_000 * stmt_count k)
  + (10 * block_size k.Kernel.body)
  + Kernel.trip_count k
  + List.fold_left
      (fun acc (d : Kernel.array_decl) -> acc + 1 + d.Kernel.a_len)
      0 k.Kernel.arrays
  + List.length k.Kernel.scalars
  + List.length k.Kernel.live_out

(** How far a configuration is from the default: the number of fields
    the shrinker could still reset. *)
let config_distance (case : Gen.case) =
  let c = case.Gen.config in
  let d = Finepar.Compiler.default_config ~cores:c.Finepar.Compiler.cores () in
  let m = c.Finepar.Compiler.machine and dm = Finepar_machine.Config.default in
  let diff a b = if a = b then 0 else 1 in
  diff c.Finepar.Compiler.speculation d.Finepar.Compiler.speculation
  + diff c.Finepar.Compiler.throughput d.Finepar.Compiler.throughput
  + diff c.Finepar.Compiler.algorithm d.Finepar.Compiler.algorithm
  + diff c.Finepar.Compiler.max_queue_pairs d.Finepar.Compiler.max_queue_pairs
  + diff c.Finepar.Compiler.max_height d.Finepar.Compiler.max_height
  + (c.Finepar.Compiler.cores - 1)
  + diff m.Finepar_machine.Config.queue_len dm.Finepar_machine.Config.queue_len
  + diff m.Finepar_machine.Config.transfer_latency dm.Finepar_machine.Config.transfer_latency
  + diff m.Finepar_machine.Config.l1_bytes dm.Finepar_machine.Config.l1_bytes
  + diff m.Finepar_machine.Config.l2_bytes dm.Finepar_machine.Config.l2_bytes
  + diff m.Finepar_machine.Config.l1_hit dm.Finepar_machine.Config.l1_hit
  + diff m.Finepar_machine.Config.l2_hit dm.Finepar_machine.Config.l2_hit
  + diff m.Finepar_machine.Config.mem_latency dm.Finepar_machine.Config.mem_latency
  + diff m.Finepar_machine.Config.branch_taken_penalty dm.Finepar_machine.Config.branch_taken_penalty
  + diff m.Finepar_machine.Config.deq_latency dm.Finepar_machine.Config.deq_latency
  + diff m.Finepar_machine.Config.issue_width dm.Finepar_machine.Config.issue_width
  + diff c.Finepar.Compiler.comm_mode d.Finepar.Compiler.comm_mode
  + diff case.Gen.placement Gen.Identity
  + diff case.Gen.workload_seed 0

let case_cost case = (100 * kernel_cost case.Gen.kernel) + config_distance case

(* ------------------------------------------------------------------ *)
(* Rewriting machinery.                                                *)

(** Every subexpression paired with a function rebuilding the whole
    expression around a replacement. *)
let rec expr_contexts (e : Expr.t) : (Expr.t * (Expr.t -> Expr.t)) list =
  (e, Fun.id)
  ::
  (match e with
  | Expr.Const _ | Expr.Var _ -> []
  | Expr.Load (a, idx) ->
    List.map
      (fun (s, rb) -> (s, fun x -> Expr.Load (a, rb x)))
      (expr_contexts idx)
  | Expr.Unop (op, a) ->
    List.map (fun (s, rb) -> (s, fun x -> Expr.Unop (op, rb x))) (expr_contexts a)
  | Expr.Binop (op, a, b) ->
    List.map (fun (s, rb) -> (s, fun x -> Expr.Binop (op, rb x, b))) (expr_contexts a)
    @ List.map
        (fun (s, rb) -> (s, fun x -> Expr.Binop (op, a, rb x)))
        (expr_contexts b)
  | Expr.Select (c, t, f) ->
    List.map (fun (s, rb) -> (s, fun x -> Expr.Select (rb x, t, f))) (expr_contexts c)
    @ List.map
        (fun (s, rb) -> (s, fun x -> Expr.Select (c, rb x, f)))
        (expr_contexts t)
    @ List.map
        (fun (s, rb) -> (s, fun x -> Expr.Select (c, t, rb x)))
        (expr_contexts f))

(** Every statement (including nested ones) paired with a function
    rebuilding the body with that statement replaced by a list —
    [[]] deletes, [[s']] substitutes, [t @ f] splices a dissolved
    conditional. *)
let rec block_rewrites (stmts : Stmt.t list) :
    (Stmt.t * (Stmt.t list -> Stmt.t list)) list =
  List.concat
    (List.mapi
       (fun i s ->
         let rebuild repl =
           List.concat (List.mapi (fun j s0 -> if i = j then repl else [ s0 ]) stmts)
         in
         (s, rebuild)
         ::
         (match s with
         | Stmt.Assign _ | Stmt.Store _ -> []
         | Stmt.If (c, t, f) ->
           List.map
             (fun (s', rb) ->
               (s', fun repl -> rebuild [ Stmt.If (c, rb repl, f) ]))
             (block_rewrites t)
           @ List.map
               (fun (s', rb) ->
                 (s', fun repl -> rebuild [ Stmt.If (c, t, rb repl) ]))
               (block_rewrites f)))
       stmts)

(** A type environment covering declared scalars, the induction variable
    and body-defined temporaries (valid kernels define before use). *)
let full_tenv (k : Kernel.t) : Expr.tenv =
  let temp_ty : (string, Types.ty) Hashtbl.t = Hashtbl.create 16 in
  let base = Kernel.tenv k in
  let env =
    {
      base with
      Expr.var_ty =
        (fun v ->
          if String.equal v k.Kernel.index then Types.I64
          else
            match Kernel.find_scalar k v with
            | Some s -> s.Kernel.s_ty
            | None -> (
              match Hashtbl.find_opt temp_ty v with
              | Some t -> t
              | None -> raise (Types.Type_error ("undefined " ^ v))));
    }
  in
  Stmt.iter_block
    (fun s ->
      match s with
      | Stmt.Assign (v, e) -> (
        if Kernel.find_scalar k v = None then
          match Expr.infer env e with
          | t -> Hashtbl.replace temp_ty v t
          | exception Types.Type_error _ -> ())
      | Stmt.Store _ | Stmt.If _ -> ())
    k.Kernel.body;
  env

(* ------------------------------------------------------------------ *)
(* Candidate enumeration.                                              *)

let revalidate k = try Some (Kernel.validate k) with Kernel.Invalid _ -> None

let with_body (k : Kernel.t) body = revalidate { k with Kernel.body = body }

let is_leaf = function Expr.Const _ | Expr.Var _ -> true | _ -> false

(** Replacements for one non-leaf subexpression: same-typed immediate
    children, then literal constants. *)
let subexpr_replacements env sub =
  match Expr.infer env sub with
  | exception Types.Type_error _ -> []
  | ty ->
    let same_ty_children =
      List.filter
        (fun c ->
          match Expr.infer env c with
          | tc -> tc = ty
          | exception Types.Type_error _ -> false)
        (Expr.children sub)
    in
    same_ty_children
    @ [
        Expr.Const (Types.zero_of_ty ty);
        Expr.Const
          (match ty with Types.I64 -> Types.VInt 1 | Types.F64 -> Types.VFloat 1.0);
      ]

let kernel_candidates (k : Kernel.t) : Kernel.t list =
  let rewrites = block_rewrites k.Kernel.body in
  (* 1. Delete a statement. *)
  let deletions = List.filter_map (fun (_, rb) -> with_body k (rb [])) rewrites in
  (* 2. Dissolve a conditional into its branches. *)
  let dissolutions =
    List.concat_map
      (fun (s, rb) ->
        match s with
        | Stmt.If (_, t, f) ->
          List.filter_map (fun repl -> with_body k (rb repl)) [ t @ f; t; f ]
        | Stmt.Assign _ | Stmt.Store _ -> [])
      rewrites
  in
  (* 3. Shrink the iteration space. *)
  let lo = k.Kernel.lo and hi = k.Kernel.hi in
  let trips =
    List.filter_map
      (fun hi' ->
        if hi' < hi && hi' >= lo then revalidate { k with Kernel.hi = hi' } else None)
      [ lo; lo + 1; lo + ((hi - lo) / 2); hi - 1 ]
  in
  (* 4. Simplify one subexpression. *)
  let env = full_tenv k in
  let simplifications =
    List.concat_map
      (fun (s, rb) ->
        let stmt_variants =
          match s with
          | Stmt.Assign (v, e) ->
            List.concat_map
              (fun (sub, rbe) ->
                if is_leaf sub then []
                else
                  List.map
                    (fun repl -> Stmt.Assign (v, rbe repl))
                    (subexpr_replacements env sub))
              (expr_contexts e)
          | Stmt.Store (a, i, e) ->
            List.concat_map
              (fun (sub, rbe) ->
                if is_leaf sub then []
                else
                  List.map
                    (fun repl -> Stmt.Store (a, rbe repl, e))
                    (subexpr_replacements env sub))
              (expr_contexts i)
            @ List.concat_map
                (fun (sub, rbe) ->
                  if is_leaf sub then []
                  else
                    List.map
                      (fun repl -> Stmt.Store (a, i, rbe repl))
                      (subexpr_replacements env sub))
                (expr_contexts e)
          | Stmt.If (c, t, f) ->
            List.concat_map
              (fun (sub, rbe) ->
                if is_leaf sub then []
                else
                  List.map
                    (fun repl -> Stmt.If (rbe repl, t, f))
                    (subexpr_replacements env sub))
              (expr_contexts c)
        in
        List.filter_map (fun s' -> with_body k (rb [ s' ])) stmt_variants)
      rewrites
  in
  (* 5. Drop unreferenced declarations, shrink array lengths, drop
        live-outs. *)
  let arrays_used =
    let acc = ref Stmt.String_set.empty in
    Stmt.iter_block
      (fun s ->
        (match s with
        | Stmt.Store (a, _, _) -> acc := Stmt.String_set.add a !acc
        | Stmt.Assign _ | Stmt.If _ -> ());
        List.iter
          (fun e -> acc := Stmt.String_set.union (Expr.arrays_read e) !acc)
          (Stmt.exprs s))
      k.Kernel.body;
    !acc
  in
  let scalars_used =
    Stmt.String_set.union (Stmt.vars_read k.Kernel.body) (Stmt.vars_written k.Kernel.body)
  in
  let decl_drops =
    List.filter_map
      (fun (d : Kernel.array_decl) ->
        if Stmt.String_set.mem d.Kernel.a_name arrays_used then None
        else
          revalidate
            {
              k with
              Kernel.arrays =
                List.filter
                  (fun (d' : Kernel.array_decl) -> d'.Kernel.a_name <> d.Kernel.a_name)
                  k.Kernel.arrays;
            })
      k.Kernel.arrays
    @ List.filter_map
        (fun (d : Kernel.scalar_decl) ->
          if
            Stmt.String_set.mem d.Kernel.s_name scalars_used
            || List.mem d.Kernel.s_name k.Kernel.live_out
          then None
          else
            revalidate
              {
                k with
                Kernel.scalars =
                  List.filter
                    (fun (d' : Kernel.scalar_decl) ->
                      d'.Kernel.s_name <> d.Kernel.s_name)
                    k.Kernel.scalars;
              })
        k.Kernel.scalars
  in
  let len_floor = max 4 k.Kernel.hi in
  let len_shrinks =
    List.filter_map
      (fun (d : Kernel.array_decl) ->
        let len' = max len_floor (d.Kernel.a_len / 2) in
        if len' >= d.Kernel.a_len then None
        else
          revalidate
            {
              k with
              Kernel.arrays =
                List.map
                  (fun (d' : Kernel.array_decl) ->
                    if d'.Kernel.a_name = d.Kernel.a_name then
                      { d' with Kernel.a_len = len' }
                    else d')
                  k.Kernel.arrays;
            })
      k.Kernel.arrays
  in
  let live_out_drops =
    List.filter_map
      (fun dropped ->
        revalidate
          {
            k with
            Kernel.live_out = List.filter (fun v -> v <> dropped) k.Kernel.live_out;
          })
      k.Kernel.live_out
  in
  deletions @ dissolutions @ trips @ decl_drops @ live_out_drops @ len_shrinks
  @ simplifications

let config_candidates (case : Gen.case) : Gen.case list =
  let c = case.Gen.config in
  let dm = Finepar_machine.Config.default in
  let with_config config = { case with Gen.config } in
  let with_machine machine =
    with_config { c with Finepar.Compiler.machine }
  in
  let m = c.Finepar.Compiler.machine in
  List.concat
    [
      (if c.Finepar.Compiler.speculation then
         [ with_config { c with Finepar.Compiler.speculation = false } ]
       else []);
      (if c.Finepar.Compiler.throughput then
         [ with_config { c with Finepar.Compiler.throughput = false } ]
       else []);
      (if c.Finepar.Compiler.algorithm <> `Greedy then
         [ with_config { c with Finepar.Compiler.algorithm = `Greedy } ]
       else []);
      (if c.Finepar.Compiler.max_queue_pairs <> None then
         [ with_config { c with Finepar.Compiler.max_queue_pairs = None } ]
       else []);
      (if c.Finepar.Compiler.max_height <> Region.default_max_height then
         [ with_config { c with Finepar.Compiler.max_height = Region.default_max_height } ]
       else []);
      List.filter_map
        (fun cores' ->
          if cores' >= 1 && cores' < c.Finepar.Compiler.cores then
            Some (with_config { c with Finepar.Compiler.cores = cores' })
          else None)
        [ 1; c.Finepar.Compiler.cores / 2; c.Finepar.Compiler.cores - 1 ];
      (if m.Finepar_machine.Config.queue_len <> dm.Finepar_machine.Config.queue_len
       then [ with_machine { m with Finepar_machine.Config.queue_len = dm.Finepar_machine.Config.queue_len } ]
       else []);
      (if m.Finepar_machine.Config.transfer_latency <> dm.Finepar_machine.Config.transfer_latency
       then [ with_machine { m with Finepar_machine.Config.transfer_latency = dm.Finepar_machine.Config.transfer_latency } ]
       else []);
      (if m.Finepar_machine.Config.l1_bytes <> dm.Finepar_machine.Config.l1_bytes
       then [ with_machine { m with Finepar_machine.Config.l1_bytes = dm.Finepar_machine.Config.l1_bytes } ]
       else []);
      (if m.Finepar_machine.Config.l2_bytes <> dm.Finepar_machine.Config.l2_bytes
       then [ with_machine { m with Finepar_machine.Config.l2_bytes = dm.Finepar_machine.Config.l2_bytes } ]
       else []);
      (if m.Finepar_machine.Config.l1_hit <> dm.Finepar_machine.Config.l1_hit
       then [ with_machine { m with Finepar_machine.Config.l1_hit = dm.Finepar_machine.Config.l1_hit } ]
       else []);
      (if m.Finepar_machine.Config.l2_hit <> dm.Finepar_machine.Config.l2_hit
       then [ with_machine { m with Finepar_machine.Config.l2_hit = dm.Finepar_machine.Config.l2_hit } ]
       else []);
      (if m.Finepar_machine.Config.mem_latency <> dm.Finepar_machine.Config.mem_latency
       then [ with_machine { m with Finepar_machine.Config.mem_latency = dm.Finepar_machine.Config.mem_latency } ]
       else []);
      (if m.Finepar_machine.Config.branch_taken_penalty <> dm.Finepar_machine.Config.branch_taken_penalty
       then [ with_machine { m with Finepar_machine.Config.branch_taken_penalty = dm.Finepar_machine.Config.branch_taken_penalty } ]
       else []);
      (if m.Finepar_machine.Config.deq_latency <> dm.Finepar_machine.Config.deq_latency
       then [ with_machine { m with Finepar_machine.Config.deq_latency = dm.Finepar_machine.Config.deq_latency } ]
       else []);
      (if m.Finepar_machine.Config.issue_width <> dm.Finepar_machine.Config.issue_width
       then [ with_machine { m with Finepar_machine.Config.issue_width = dm.Finepar_machine.Config.issue_width } ]
       else []);
      (if c.Finepar.Compiler.comm_mode <> Finepar_transform.Comm.Queues then
         [ with_config { c with Finepar.Compiler.comm_mode = Finepar_transform.Comm.Queues } ]
       else []);
      (if case.Gen.placement <> Gen.Identity then
         [ { case with Gen.placement = Gen.Identity } ]
       else []);
      (if case.Gen.workload_seed <> 0 then [ { case with Gen.workload_seed = 0 } ]
       else []);
    ]

let case_candidates (case : Gen.case) =
  List.map (fun kernel -> { case with Gen.kernel }) (kernel_candidates case.Gen.kernel)
  @ config_candidates case

(* ------------------------------------------------------------------ *)
(* The greedy loop.                                                    *)

let max_steps = 10_000

(** Minimize a failing case; [failure] is the outcome the case is known
    to produce.  Returns the smallest case found together with its
    (same-oracle) failure. *)
let shrink ?compile ?engine (case : Gen.case) (failure : Oracle.failure) =
  let still_fails candidate =
    match Oracle.check ?compile ?engine candidate with
    | Oracle.Fail f when String.equal f.Oracle.oracle failure.Oracle.oracle -> Some f
    | Oracle.Pass _ | Oracle.Fail _ -> None
  in
  let rec loop case failure steps =
    if steps >= max_steps then (case, failure)
    else
      let cost = case_cost case in
      let better =
        List.find_map
          (fun candidate ->
            if case_cost candidate >= cost then None
            else
              Option.map (fun f -> (candidate, f)) (still_fails candidate))
          (case_candidates case)
      in
      match better with
      | Some (case', failure') -> loop case' failure' (steps + 1)
      | None -> (case, failure)
  in
  loop case failure 0
