(** The persistent regression corpus: a directory of reproducer files
    (one {!Repro} s-expression each, [.sexp] extension) replayed against
    the full oracle set on every test run. *)

type entry = { path : string; case : Gen.case }

type replay = {
  entry : entry;
  outcome : (Oracle.outcome, string) result;
      (** [Error _] when the file does not even parse. *)
}

let is_corpus_file name = Filename.check_suffix name ".sexp"

(** Corpus files in [dir], sorted by name for deterministic replay
    order.  A missing directory is an empty corpus. *)
let files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let names = Array.to_list names in
    List.filter is_corpus_file names
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let load_file path = { path; case = Repro.load path }

let replay_file ?compile ?engine path =
  match load_file path with
  | entry -> { entry; outcome = Ok (Oracle.check ?compile ?engine entry.case) }
  | exception (Repro.Parse_error msg | Finepar_ir.Kernel.Invalid msg) ->
    {
      entry = { path; case = Gen.case_of_seed 0 };
      outcome = Error msg;
    }

let replay_dir ?compile ?engine dir =
  List.map (replay_file ?compile ?engine) (files dir)

(** A short stable basename for a new corpus entry derived from the
    failing oracle and the seed that produced it. *)
let entry_name ~oracle ~seed = Printf.sprintf "%s-seed%d.sexp" oracle seed

let save dir ~oracle ~seed ?failure case =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Filename.concat dir (entry_name ~oracle ~seed) in
  Repro.save path ?failure case;
  path
