(** Deterministic splitmix64 random source for the fuzzer.

    Self-contained (no dependence on [Stdlib.Random]) so that a fuzz run
    is reproducible from its integer seed across OCaml versions — the
    nightly job prints the seed, and `finepar fuzz --seed` replays it. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (0x51ED2701 + (seed * 0x9E3779B9)) }

let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound); [bound] must be positive. *)
let int_below r bound =
  if bound <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  let u = Int64.to_int (Int64.shift_right_logical (next_int64 r) 2) in
  u mod bound

(** Uniform int in [lo, hi] inclusive. *)
let int_in r lo hi = lo + int_below r (hi - lo + 1)

(** Uniform float in [lo, hi). *)
let float_in r lo hi =
  let u =
    Int64.to_float (Int64.shift_right_logical (next_int64 r) 11)
    /. 9007199254740992.0
  in
  lo +. (u *. (hi -. lo))

let bool r = int_below r 2 = 1

(** True with probability [p]. *)
let chance r p = float_in r 0.0 1.0 < p

(** Uniform choice from a non-empty list (repeat elements to weight). *)
let choose r xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int_below r (List.length xs))

(** Weighted choice from non-empty [(weight, value)] pairs. *)
let weighted r xs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 xs in
  if total <= 0 then invalid_arg "Rng.weighted: weights must sum positive";
  let n = int_below r total in
  let rec pick n = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | (w, x) :: rest -> if n < w then x else pick (n - w) rest
  in
  pick n xs

(** An independent child generator, for decorrelated sub-streams. *)
let split r = { state = next_int64 r }
