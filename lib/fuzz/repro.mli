(** Reproducer files: serializing a (kernel, configuration) case as an
    s-expression that round-trips bit-exactly. *)

exception Parse_error of string

val to_string : ?failure:Oracle.failure -> Gen.case -> string
(** The reproducer text; [failure] adds a comment header recording which
    oracle failed. *)

val of_string : string -> Gen.case
(** Parses (and re-validates) a reproducer.  Raises {!Parse_error} on
    malformed input, {!Finepar_ir.Kernel.Invalid} on an ill-formed
    kernel. *)

val save : string -> ?failure:Oracle.failure -> Gen.case -> unit
val load : string -> Gen.case
