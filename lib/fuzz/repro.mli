(** Reproducer files: serializing a (kernel, configuration) case as an
    s-expression that round-trips bit-exactly.

    The generic sexp machinery (type, parser, canonical printer, field
    accessors) and the kernel/config serializers are exposed so other
    wire formats — notably {!Finepar_service.Wire} — build on the same
    canonical encoding instead of inventing a second one. *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

val parse_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Parse_error} with a formatted message. *)

val parse_sexp : string -> sexp
(** Parses one s-expression.  Atoms may be bare tokens or double-quoted
    strings with backslash escapes for quote, backslash, newline, tab
    and carriage return (the only way to spell an empty or
    whitespace-bearing atom).  Raises {!Parse_error} on malformed
    input. *)

val pp_sexp : Format.formatter -> sexp -> unit
(** Pretty-printer with hv-box line breaking — for human-facing
    reproducer files.  Not canonical: the rendering depends on the
    formatter margin.  Use {!canon} for digests and wire frames. *)

val canon : sexp -> string
(** Canonical single-line rendering: one space between siblings, atoms
    quoted exactly when they need it.  [parse_sexp (canon s)] equals
    [s], and equal sexps render to equal bytes regardless of any
    formatter state — the property cache digests rely on. *)

(** {2 Field access within [(key value ...)] association lists} *)

val field_items : string -> sexp -> sexp list
(** All values after the key; raises {!Parse_error} when missing. *)

val field : string -> sexp -> sexp
(** Exactly one value after the key. *)

val section : string -> sexp -> sexp
(** A sub-record such as [(machine (queue_len 2) ...)], rebuilt with its
    tag so it can be fielded into recursively. *)

val atom : sexp -> string
val int_of : sexp -> int
val bool_of : sexp -> bool

val check_fields :
  what:string -> known:string list -> ?extra:string list -> sexp -> unit
(** Reject unknown fields in a [(tag (key value) ...)] record: every
    keyed item must be in [known] (or [extra], for fields a wrapping
    parser layers on top).  Without this a misspelled or stale field in
    a hand-edited reproducer — or one written by a newer format — would
    be silently dropped and the case would replay under a different
    configuration than the file says.  Raises {!Parse_error}. *)

val float_atom : float -> sexp
(** A float as a [%h] hexadecimal atom — bit-exact round-trip, including
    negative zero; [nan]/[infinity] render to atoms [float_of_string]
    accepts. *)

(** {2 IR serializers (bit-exact round-trips)} *)

val sexp_of_value : Finepar_ir.Types.value -> sexp
val value_of_sexp : sexp -> Finepar_ir.Types.value
val sexp_of_kernel : Finepar_ir.Kernel.t -> sexp
val kernel_of_sexp : sexp -> Finepar_ir.Kernel.t
(** [kernel_of_sexp] re-validates; raises {!Finepar_ir.Kernel.Invalid}. *)

val sexp_of_machine : Finepar_machine.Config.t -> sexp
val machine_of_sexp : sexp -> Finepar_machine.Config.t
val sexp_of_config : Finepar.Compiler.config -> sexp
val config_of_sexp : ?extra:string list -> sexp -> Finepar.Compiler.config
(** [sexp_of_config] records the structural knobs (cores, height,
    algorithm, throughput, queue pairs, speculation, comm mode,
    machine); affinity weights and profile feedback are rebuilt from
    defaults by [config_of_sexp].  Wire formats that must round-trip
    weights carry them separately and declare those fields via [extra]
    (see {!Finepar_service.Wire}); any other unknown field is rejected
    with {!Parse_error}. *)

val sexp_of_case : Gen.case -> sexp
val case_of_sexp : sexp -> Gen.case

(** {2 Whole-file interface} *)

val to_string : ?failure:Oracle.failure -> Gen.case -> string
(** The reproducer text; [failure] adds a comment header recording which
    oracle failed. *)

val of_string : string -> Gen.case
(** Parses (and re-validates) a reproducer.  Raises {!Parse_error} on
    malformed input, {!Finepar_ir.Kernel.Invalid} on an ill-formed
    kernel. *)

val save : string -> ?failure:Oracle.failure -> Gen.case -> unit
val load : string -> Gen.case
