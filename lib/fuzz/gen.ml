(** Random well-typed (kernel, configuration) cases.

    The generator deliberately covers the scenario space the fixed test
    kernels do not: int and float arithmetic, nested and chained
    conditionals, loop-carried recurrences, indirect ([a[b[i]]]-style)
    addressing, variable trip counts and array lengths, multiple stores
    and live-outs — crossed with the whole configuration space (core
    count, SMT placements, speculation, merge heuristics, queue and cache
    geometry, issue width, and the queue vs shared-cache transfer
    realization).

    Generated kernels are sound by construction with respect to the
    compiler's structural restrictions (see {!Finepar_analysis.Deps}):

    - array indices are always in bounds for {!Finepar_kernels.Workload}
      data: index forms are the induction variable, a load from an index
      array (whose values the workload bounds by the shortest array), or
      a small constant, and every array is at least [max 4 hi] long;
    - a scalar defined under a conditional is either branch-local (its
      uses are guarded by the same predicate prefix), assigned in both
      branches (a merge variable), or a declared live-in scalar;
    - conditional predicates are always comparison expressions, never a
      bare variable, so the hoisted predicate temporary is single-def. *)

open Finepar_ir
open Builder

(** How the compiled program's hardware threads map onto physical cores
    ({!Finepar_machine.Sim.create}'s [core_map]); non-identity placements
    exercise the SMT issue-slot sharing path. *)
type placement = Identity | Single_core | Mod2 | Div2

let placement_name = function
  | Identity -> "identity"
  | Single_core -> "single-core"
  | Mod2 -> "mod2"
  | Div2 -> "div2"

let placement_of_name = function
  | "identity" -> Some Identity
  | "single-core" -> Some Single_core
  | "mod2" -> Some Mod2
  | "div2" -> Some Div2
  | _ -> None

(** Materialize a placement for a program with [n] hardware threads. *)
let materialize placement n =
  match placement with
  | Identity -> Array.init n Fun.id
  | Single_core -> Array.make n 0
  | Mod2 -> Array.init n (fun i -> i mod 2)
  | Div2 -> Array.init n (fun i -> i / 2)

(** One differential-fuzzing case: what to compile, how to compile it,
    where to place the threads, and which workload data to run on. *)
type case = {
  kernel : Kernel.t;
  config : Finepar.Compiler.config;
  placement : placement;
  workload_seed : int;
}

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

type pool = { fvars : string list; ivars : string list }

type env = {
  rng : Rng.t;
  index : string;
  farrs : string list;  (** float arrays readable as values *)
  iarrs : string list;  (** int arrays holding in-bounds indices *)
  fouts : string list;  (** float store targets *)
  iouts : string list;  (** int store targets *)
  faccs : string list;  (** declared float accumulators *)
  iaccs : string list;  (** declared int accumulators *)
  mutable fresh : int;
}

let fresh env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "%s%d" prefix env.fresh

(** An always-in-bounds index expression (see the module header). *)
let gen_idx env =
  let r = env.rng in
  let forms =
    [ (6, `Induction); (1, `Small_const) ]
    @ (if env.iarrs = [] then [] else [ (4, `Indirect) ])
  in
  match Rng.weighted r forms with
  | `Induction -> v env.index
  | `Small_const -> i (Rng.int_below r 4)
  | `Indirect -> ld (Rng.choose r env.iarrs) (v env.index)

let rec gen_fexpr env pool depth =
  let r = env.rng in
  if depth <= 0 then gen_fleaf env pool
  else
    match
      Rng.weighted r
        [ (2, `Leaf); (5, `Arith); (2, `Div); (2, `Unary); (1, `Select);
          (1, `Of_int) ]
    with
    | `Leaf -> gen_fleaf env pool
    | `Arith ->
      let op = Rng.choose r [ ( +: ); ( -: ); ( *: ); min_; max_ ] in
      op (gen_fexpr env pool (depth - 1)) (gen_fexpr env pool (depth - 1))
    | `Div ->
      let a = gen_fexpr env pool (depth - 1)
      and b = gen_fexpr env pool (depth - 1) in
      (* Sometimes guard the divisor; an unguarded inf/nan is still
         bit-deterministic and worth fuzzing. *)
      if Rng.chance r 0.7 then a /: (abs_ b +: f 1.0) else a /: b
    | `Unary ->
      let e = gen_fexpr env pool (depth - 1) in
      (match Rng.int_below r 5 with
      | 0 -> neg e
      | 1 -> abs_ e
      | 2 -> sqrt_ (abs_ e)
      | 3 -> log_ (abs_ e +: f 0.5)
      | _ -> exp_ (min_ e (f 4.0)))
    | `Select ->
      select
        (gen_icmp env pool (depth - 1))
        (gen_fexpr env pool (depth - 1))
        (gen_fexpr env pool (depth - 1))
    | `Of_int -> to_f (gen_iexpr env pool (depth - 1))

and gen_fleaf env pool =
  let r = env.rng in
  let forms =
    [ (2, `Const) ]
    @ (if pool.fvars = [] then [] else [ (4, `Var) ])
    @ if env.farrs = [] then [] else [ (4, `Load) ]
  in
  match Rng.weighted r forms with
  | `Const -> f (Rng.float_in r (-2.0) 3.0)
  | `Var -> v (Rng.choose r pool.fvars)
  | `Load -> ld (Rng.choose r env.farrs) (gen_idx env)

and gen_iexpr env pool depth =
  let r = env.rng in
  if depth <= 0 then gen_ileaf env pool
  else
    match
      Rng.weighted r
        [ (4, `Leaf); (5, `Arith); (3, `Bits); (2, `Cmp); (1, `Of_float) ]
    with
    | `Leaf -> gen_ileaf env pool
    | `Arith ->
      let op =
        Rng.choose r
          [ ( +: ); ( -: ); ( *: ); ( /: ); ( %: ); min_; max_ ]
      in
      op (gen_iexpr env pool (depth - 1)) (gen_iexpr env pool (depth - 1))
    | `Bits ->
      let a = gen_iexpr env pool (depth - 1) in
      (match Rng.int_below r 5 with
      | 0 -> Expr.Binop (Types.And, a, gen_iexpr env pool (depth - 1))
      | 1 -> Expr.Binop (Types.Or, a, gen_iexpr env pool (depth - 1))
      | 2 -> Expr.Binop (Types.Xor, a, gen_iexpr env pool (depth - 1))
      | 3 -> Expr.Binop (Types.Shl, a, i (Rng.int_below r 5))
      | _ -> Expr.Binop (Types.Shr, a, i (Rng.int_below r 5)))
    | `Cmp -> gen_icmp env pool depth
    | `Of_float -> to_i (gen_fexpr env pool (depth - 1))

and gen_ileaf env pool =
  let r = env.rng in
  let forms =
    [ (2, `Const); (2, `Induction) ]
    @ (if pool.ivars = [] then [] else [ (3, `Var) ])
    @ if env.iarrs = [] then [] else [ (2, `Load) ]
  in
  match Rng.weighted r forms with
  | `Const -> i (Rng.int_in r (-4) 9)
  | `Induction -> v env.index
  | `Var -> v (Rng.choose r pool.ivars)
  | `Load -> ld (Rng.choose r env.iarrs) (gen_idx env)

(** A comparison (I64-valued; used for predicates and selects).  Always a
    [Binop], never a bare variable, so predicate hoisting introduces a
    fresh single-def temporary. *)
and gen_icmp env pool depth =
  let r = env.rng in
  let cmp = Rng.choose r [ ( <: ); ( <=: ); ( >: ); ( >=: ); ( ==: ); ( <>: ) ] in
  let depth = max 1 depth in
  if Rng.bool r then
    cmp (gen_fexpr env pool (depth - 1)) (gen_fexpr env pool (depth - 1))
  else cmp (gen_iexpr env pool (depth - 1)) (gen_iexpr env pool (depth - 1))

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

let gen_store env pool =
  let r = env.rng in
  let int_target = env.iouts <> [] && Rng.chance r 0.3 in
  if int_target then
    store (Rng.choose r env.iouts) (gen_idx env) (gen_iexpr env pool 2)
  else store (Rng.choose r env.fouts) (gen_idx env) (gen_fexpr env pool 2)

(** One loop-carried update of a specific accumulator: reductions
    ([acc op= e]) and first-order recurrences ([acc = acc * c + e]). *)
let gen_int_update env pool acc =
  let r = env.rng in
  let e = gen_iexpr env pool 2 in
  let rhs =
    match Rng.int_below r 4 with
    | 0 -> v acc +: e
    | 1 -> Expr.Binop (Types.Xor, v acc, e)
    | 2 -> min_ (v acc) e
    | _ -> max_ (v acc) e
  in
  set acc rhs

let gen_float_update env pool acc =
  let r = env.rng in
  let e = gen_fexpr env pool 2 in
  let rhs =
    match Rng.int_below r 5 with
    | 0 | 1 -> v acc +: e
    | 2 -> (v acc *: f (Rng.float_in r 0.5 1.1)) +: e  (* recurrence *)
    | 3 -> min_ (v acc) e
    | _ -> max_ (v acc) e
  in
  set acc rhs

(** A loop-carried accumulator update at top level. *)
let gen_accumulate env pool =
  let r = env.rng in
  let int_acc = env.iaccs <> [] && (env.faccs = [] || Rng.chance r 0.35) in
  if int_acc then Some (gen_int_update env pool (Rng.choose r env.iaccs))
  else
    match env.faccs with
    | [] -> None
    | faccs -> Some (gen_float_update env pool (Rng.choose r faccs))

(** Statements for one conditional branch.  Branch-local temporaries are
    appended to a branch-scoped pool and never escape.  Accumulator
    updates never appear here: a single predicated definition of a
    scalar used outside the branch is rejected by the dependence
    analysis, so predicated accumulation is generated pairwise by
    {!gen_conditional} instead. *)
let rec gen_branch env pool ~depth ~n =
  let r = env.rng in
  let rec go pool acc n =
    if n = 0 then List.rev acc
    else
      let choicelist =
        [ (3, `Local_def); (4, `Store) ]
        @ if depth < 2 then [ (1, `Nested) ] else []
      in
      match Rng.weighted r choicelist with
      | `Local_def ->
        let name = fresh env "t" in
        if Rng.bool r then
          go
            { pool with fvars = name :: pool.fvars }
            (set name (gen_fexpr env pool 2) :: acc)
            (n - 1)
        else
          go
            { pool with ivars = name :: pool.ivars }
            (set name (gen_iexpr env pool 2) :: acc)
            (n - 1)
      | `Store -> go pool (gen_store env pool :: acc) (n - 1)
      | `Nested ->
        let s, _ = gen_conditional env pool ~depth:(depth + 1) in
        go pool (s :: acc) (n - 1)
  in
  go pool [] n

(** A conditional.  With probability ~1/2 it defines a merge variable
    (assigned in both branches) that joins the enclosing pool; it may
    also update an accumulator under the predicate — assigned in both
    branches (the else arm re-updates or reasserts the accumulator), so
    the scalar is multiply-defined and the dependence analysis
    co-locates its statements rather than rejecting the kernel. *)
and gen_conditional env pool ~depth =
  let r = env.rng in
  let cond = gen_icmp env pool 2 in
  let then_stmts = gen_branch env pool ~depth ~n:(Rng.int_in r 1 3) in
  let else_n = Rng.int_below r 3 in
  let else_stmts = gen_branch env pool ~depth ~n:else_n in
  let then_stmts, else_stmts =
    if Rng.chance r 0.4 && (env.faccs <> [] || env.iaccs <> []) then begin
      let int_acc = env.iaccs <> [] && (env.faccs = [] || Rng.chance r 0.35) in
      let acc, update =
        if int_acc then
          let a = Rng.choose r env.iaccs in
          (a, fun () -> gen_int_update env pool a)
        else
          let a = Rng.choose r env.faccs in
          (a, fun () -> gen_float_update env pool a)
      in
      let else_update =
        if Rng.chance r 0.4 then update () else set acc (v acc)
      in
      (then_stmts @ [ update () ], else_stmts @ [ else_update ])
    end
    else (then_stmts, else_stmts)
  in
  if Rng.chance r 0.5 then begin
    let m = fresh env "m" in
    let float_merge = Rng.bool r in
    let arm () =
      if float_merge then gen_fexpr env pool 2 else gen_iexpr env pool 2
    in
    let then_stmts = then_stmts @ [ set m (arm ()) ] in
    let else_stmts = else_stmts @ [ set m (arm ()) ] in
    let pool =
      if float_merge then { pool with fvars = m :: pool.fvars }
      else { pool with ivars = m :: pool.ivars }
    in
    (if_ cond then_stmts else_stmts, pool)
  end
  else (if_ cond then_stmts else_stmts, pool)

(* ------------------------------------------------------------------ *)
(* Kernels.                                                            *)

let gen_kernel rng =
  let r = rng in
  (* Iteration space: mostly mid-sized, with zero-trip / single-trip /
     nonzero-lower-bound corners. *)
  let lo = if Rng.chance r 0.25 then Rng.int_below r 9 else 0 in
  let trips =
    match Rng.int_below r 12 with
    | 0 -> Rng.int_below r 2
    | 1 | 2 -> 1 + Rng.int_below r 3
    | _ -> 4 + Rng.int_below r 25
  in
  let hi = lo + trips in
  let min_len = max 4 hi in
  let len () = min_len + Rng.int_below r 17 in
  (* Declarations. *)
  let input_farrs =
    farr "a" (len ()) :: (if Rng.chance r 0.6 then [ farr "b" (len ()) ] else [])
  in
  let idx_arrs = if Rng.chance r 0.5 then [ iarr "idx" (len ()) ] else [] in
  let out_farrs =
    farr "out" (len ())
    :: (if Rng.chance r 0.4 then [ farr "out2" (len ()) ] else [])
  in
  let out_iarrs = if Rng.chance r 0.3 then [ iarr "iout" (len ()) ] else [] in
  let arrays = input_farrs @ idx_arrs @ out_farrs @ out_iarrs in
  let finv =
    [ fscalar ~init:(Rng.float_in r (-1.0) 2.0) "p" ]
    @ if Rng.chance r 0.6 then [ fscalar ~init:(Rng.float_in r 0.0 3.0) "q" ] else []
  in
  let iinv = [ iscalar ~init:(Rng.int_in r (-3) 8) "k" ] in
  let faccs =
    (if Rng.chance r 0.8 then [ fscalar ~init:(Rng.float_in r (-1.0) 1.0) "facc" ]
     else [])
    @ if Rng.chance r 0.3 then [ fscalar ~init:1.0 "gacc" ] else []
  in
  let iaccs = if Rng.chance r 0.5 then [ iscalar ~init:(Rng.int_in r 0 4) "iacc" ] else [] in
  let scalars = finv @ iinv @ faccs @ iaccs in
  let env =
    {
      rng = r;
      index = "i";
      farrs =
        List.map (fun (d : Kernel.array_decl) -> d.Kernel.a_name)
          (input_farrs @ if Rng.chance r 0.5 then out_farrs else []);
      iarrs = List.map (fun (d : Kernel.array_decl) -> d.Kernel.a_name) idx_arrs;
      fouts = List.map (fun (d : Kernel.array_decl) -> d.Kernel.a_name) out_farrs;
      iouts = List.map (fun (d : Kernel.array_decl) -> d.Kernel.a_name) out_iarrs;
      faccs = List.map (fun (d : Kernel.scalar_decl) -> d.Kernel.s_name) faccs;
      iaccs = List.map (fun (d : Kernel.scalar_decl) -> d.Kernel.s_name) iaccs;
      fresh = 0;
    }
  in
  let pool0 =
    {
      fvars = List.map (fun (d : Kernel.scalar_decl) -> d.Kernel.s_name) (finv @ faccs);
      ivars = List.map (fun (d : Kernel.scalar_decl) -> d.Kernel.s_name) (iinv @ iaccs);
    }
  in
  (* Body: a chain of defs, reductions, stores and conditionals over a
     growing variable pool. *)
  let n_groups = Rng.int_in r 3 8 in
  let rec build pool acc n =
    if n = 0 then (List.rev acc, pool)
    else
      match
        Rng.weighted r
          [ (5, `Def); (2, `Accumulate); (3, `Store); (2, `Conditional) ]
      with
      | `Def ->
        let name = fresh env "x" in
        if Rng.chance r 0.65 then
          build
            { pool with fvars = name :: pool.fvars }
            (set name (gen_fexpr env pool (1 + Rng.int_below r 3)) :: acc)
            (n - 1)
        else
          build
            { pool with ivars = name :: pool.ivars }
            (set name (gen_iexpr env pool (1 + Rng.int_below r 3)) :: acc)
            (n - 1)
      | `Accumulate -> (
        match gen_accumulate env pool with
        | Some s -> build pool (s :: acc) (n - 1)
        | None -> build pool (acc) n)
      | `Store -> build pool (gen_store env pool :: acc) (n - 1)
      | `Conditional ->
        let s, pool = gen_conditional env pool ~depth:0 in
        build pool (s :: acc) (n - 1)
  in
  let body, pool = build pool0 [] n_groups in
  (* Always end observable: one unconditional store. *)
  let body = body @ [ store (List.hd env.fouts) (v "i") (gen_fexpr env pool 2) ] in
  let live_out =
    List.filter_map
      (fun (d : Kernel.scalar_decl) ->
        let p =
          if List.mem d.Kernel.s_name (env.faccs @ env.iaccs) then 0.7 else 0.2
        in
        if Rng.chance r p then Some d.Kernel.s_name else None)
      scalars
  in
  kernel ~name:"fuzz" ~index:"i" ~lo ~hi ~arrays ~scalars ~live_out body

(* ------------------------------------------------------------------ *)
(* Configurations.                                                     *)

let gen_config rng =
  let r = rng in
  let cores = Rng.weighted r [ (1, 1); (3, 2); (1, 3); (4, 4) ] in
  let machine =
    {
      Finepar_machine.Config.default with
      Finepar_machine.Config.queue_len =
        Rng.weighted r [ (2, 2); (1, 3); (2, 4); (1, 8); (3, 20) ];
      transfer_latency = Rng.weighted r [ (1, 1); (4, 5); (2, 20); (1, 50) ];
      l1_bytes = Rng.choose r [ 512; 2048; 16 * 1024 ];
      l2_bytes = Rng.choose r [ 4096; 64 * 1024; 4 * 1024 * 1024 ];
      l1_hit = Rng.choose r [ 2; 6 ];
      l2_hit = Rng.choose r [ 12; 40 ];
      mem_latency = Rng.choose r [ 80; 200 ];
      branch_taken_penalty = Rng.choose r [ 0; 1; 3 ];
      deq_latency = Rng.choose r [ 1; 2 ];
      issue_width = Rng.weighted r [ (3, 1); (2, 2) ];
    }
  in
  {
    (Finepar.Compiler.default_config ~cores ()) with
    Finepar.Compiler.max_height = Rng.weighted r [ (2, 1); (4, 2); (2, 3); (1, 5) ];
    algorithm = (if Rng.chance r 0.3 then `Multi_pair else `Greedy);
    throughput = Rng.chance r 0.25;
    max_queue_pairs =
      (if Rng.chance r 0.2 then Some (Rng.int_in r 1 4) else None);
    speculation = Rng.chance r 0.35;
    comm_mode =
      (if Rng.chance r 0.35 then Finepar_transform.Comm.Shared_cache
       else Finepar_transform.Comm.Queues);
    machine;
  }

let gen_placement rng cores =
  if cores <= 1 then Identity
  else
    Rng.weighted rng
      [ (5, Identity); (1, Single_core); (1, Mod2); (1, Div2) ]

let gen_case rng =
  let kernel = gen_kernel rng in
  let config = gen_config rng in
  let placement = gen_placement rng config.Finepar.Compiler.cores in
  let workload_seed = Rng.int_below rng 1000 in
  { kernel; config; placement; workload_seed }

(** The case generated by a given integer seed — the unit of
    reproducibility ([finepar fuzz --seed]). *)
let case_of_seed seed = gen_case (Rng.create seed)
