(** Reproducer files: a failing (kernel, configuration) case as an
    s-expression that round-trips bit-exactly (floats are written as
    hexadecimal literals).  These files are the regression corpus under
    [test/fuzz_corpus/] and the artifact a nightly fuzz job uploads. *)

open Finepar_ir

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Generic s-expression reading and writing.

   Atoms that contain structural characters (whitespace, parens, quotes,
   backslashes, semicolons) or are empty are written as double-quoted
   strings with backslash escapes, so arbitrary text — error messages,
   verifier violations — survives the wire round-trip in
   {!Finepar_service.Wire}.  Plain atoms (identifiers, numbers, hex
   floats) print exactly as before, keeping the reproducer corpus
   byte-stable. *)

let atom_needs_quoting a =
  String.length a = 0
  || String.exists
       (function
         | '(' | ')' | '"' | '\\' | ';' | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
       a

let quote_atom a =
  let buf = Buffer.create (String.length a + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    a;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_repr a = if atom_needs_quoting a then quote_atom a else a

let rec pp_sexp ppf = function
  | Atom a -> Fmt.string ppf (atom_repr a)
  | List l -> Fmt.pf ppf "@[<hv 1>(%a)@]" Fmt.(list ~sep:sp pp_sexp) l

(* Canonical single-line rendering: one space between siblings, no line
   breaks regardless of width.  Digest inputs and wire frames use this so
   the bytes never depend on a formatter margin. *)
let canon sexp =
  let buf = Buffer.create 256 in
  let rec go = function
    | Atom a -> Buffer.add_string buf (atom_repr a)
    | List l ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ' ';
          go s)
        l;
      Buffer.add_char buf ')'
  in
  go sexp;
  Buffer.contents buf

type token = T_open | T_close | T_atom of string

let tokenize (s : string) : token list =
  let n = String.length s in
  let tokens = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then (
      tokens := T_atom (Buffer.contents buf) :: !tokens;
      Buffer.clear buf)
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' ->
      flush ();
      tokens := T_open :: !tokens
    | ')' ->
      flush ();
      tokens := T_close :: !tokens
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | '"' ->
      flush ();
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match s.[!i] with
        | '"' -> closed := true
        | '\\' ->
          incr i;
          if !i >= n then parse_error "unterminated escape in string"
          else (
            match s.[!i] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> parse_error "unknown escape '\\%c'" c)
        | c -> Buffer.add_char buf c);
        incr i
      done;
      if not !closed then parse_error "unterminated string literal";
      decr i;
      (* Quoted atoms flush unconditionally so "" survives as an atom. *)
      tokens := T_atom (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let parse_sexp (s : string) : sexp =
  let rec one = function
    | [] -> parse_error "unexpected end of input"
    | T_open :: rest ->
      let items, rest = list_items rest in
      (List items, rest)
    | T_close :: _ -> parse_error "unexpected ')'"
    | T_atom atom :: rest -> (Atom atom, rest)
  and list_items = function
    | [] -> parse_error "unterminated '('"
    | T_close :: rest -> ([], rest)
    | tokens ->
      let item, rest = one tokens in
      let items, rest = list_items rest in
      (item :: items, rest)
  in
  match one (tokenize s) with
  | sexp, [] -> sexp
  | _, tok :: _ ->
    parse_error "trailing input at %S"
      (match tok with T_open -> "(" | T_close -> ")" | T_atom a -> a)

(* Field access within (key value ...) association lists.
   [field_items] yields all values after the key (used for body, arrays,
   live_out...); [field] requires exactly one. *)
let field_items name = function
  | List items -> (
    let found =
      List.find_map
        (function
          | List (Atom k :: vs) when String.equal k name -> Some vs
          | _ -> None)
        items
    in
    match found with
    | Some vs -> vs
    | None -> parse_error "missing field %S" name)
  | Atom a -> parse_error "expected a list around field %S, got %S" name a

let field name s =
  match field_items name s with
  | [ v ] -> v
  | _ -> parse_error "field %S expects a single value" name

(* Reject unknown fields in a record such as (machine (queue_len 2) ...):
   every keyed item must be one the parser consumes.  Without this a
   misspelled or stale field in a hand-edited reproducer (or a config
   produced by a newer writer) would be silently dropped and the case
   would replay under a different configuration than the file says.
   [extra] lists fields a wrapping parser layers on top (the service
   wire format appends [weights] to the reproducer config encoding). *)
let check_fields ~what ~known ?(extra = []) s =
  match s with
  | List (Atom _tag :: items) ->
    List.iter
      (function
        | List (Atom k :: _)
          when not (List.mem k known || List.mem k extra) ->
          parse_error "unknown %s field %S (known fields: %s)" what k
            (String.concat ", " (known @ extra))
        | _ -> ())
      items
  | List _ | Atom _ -> parse_error "expected a (%s ...) record" what

(* A sub-record such as (machine (queue_len 2) ...): rebuilt with its
   tag so it can be fielded into recursively. *)
let section name s = List (Atom name :: field_items name s)

let atom = function
  | Atom a -> a
  | List _ -> parse_error "expected an atom"

let int_of = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some i -> i
    | None -> parse_error "expected an integer, got %S" a)
  | List _ -> parse_error "expected an integer atom"

let bool_of s =
  match atom s with
  | "true" -> true
  | "false" -> false
  | a -> parse_error "expected a boolean, got %S" a

(* ------------------------------------------------------------------ *)
(* Values, expressions, statements.                                    *)

let float_atom f = Atom (Printf.sprintf "%h" f)

let sexp_of_value = function
  | Types.VInt i -> List [ Atom "i"; Atom (string_of_int i) ]
  | Types.VFloat f -> List [ Atom "f"; float_atom f ]

let value_of_sexp = function
  | List [ Atom "i"; v ] -> Types.VInt (int_of v)
  | List [ Atom "f"; Atom f ] -> (
    match float_of_string_opt f with
    | Some f -> Types.VFloat f
    | None -> parse_error "bad float literal %S" f)
  | _ -> parse_error "expected a value (i n) or (f x)"

let all_unops =
  [ Types.Neg; Not; Sqrt; Abs; Exp; Log; To_float; To_int ]

let all_binops =
  [
    Types.Add; Sub; Mul; Div; Rem; Min; Max; And; Or; Xor; Shl; Shr; Lt; Le;
    Gt; Ge; Eq; Ne;
  ]

let unop_of_name n =
  List.find_opt (fun o -> String.equal (Types.unop_name o) n) all_unops

let binop_of_name n =
  List.find_opt (fun o -> String.equal (Types.binop_name o) n) all_binops

let rec sexp_of_expr = function
  | Expr.Const v -> List [ Atom "const"; sexp_of_value v ]
  | Expr.Var v -> List [ Atom "var"; Atom v ]
  | Expr.Load (a, i) -> List [ Atom "load"; Atom a; sexp_of_expr i ]
  | Expr.Unop (op, a) ->
    List [ Atom "unop"; Atom (Types.unop_name op); sexp_of_expr a ]
  | Expr.Binop (op, a, b) ->
    List
      [ Atom "binop"; Atom (Types.binop_name op); sexp_of_expr a; sexp_of_expr b ]
  | Expr.Select (c, t, f) ->
    List [ Atom "select"; sexp_of_expr c; sexp_of_expr t; sexp_of_expr f ]

let rec expr_of_sexp = function
  | List [ Atom "const"; v ] -> Expr.Const (value_of_sexp v)
  | List [ Atom "var"; Atom v ] -> Expr.Var v
  | List [ Atom "load"; Atom a; i ] -> Expr.Load (a, expr_of_sexp i)
  | List [ Atom "unop"; Atom op; a ] -> (
    match unop_of_name op with
    | Some op -> Expr.Unop (op, expr_of_sexp a)
    | None -> parse_error "unknown unop %S" op)
  | List [ Atom "binop"; Atom op; a; b ] -> (
    match binop_of_name op with
    | Some op -> Expr.Binop (op, expr_of_sexp a, expr_of_sexp b)
    | None -> parse_error "unknown binop %S" op)
  | List [ Atom "select"; c; t; f ] ->
    Expr.Select (expr_of_sexp c, expr_of_sexp t, expr_of_sexp f)
  | s -> parse_error "bad expression %a" pp_sexp s

let rec sexp_of_stmt = function
  | Stmt.Assign (v, e) -> List [ Atom "assign"; Atom v; sexp_of_expr e ]
  | Stmt.Store (a, i, e) ->
    List [ Atom "store"; Atom a; sexp_of_expr i; sexp_of_expr e ]
  | Stmt.If (c, t, f) ->
    List
      [
        Atom "if";
        sexp_of_expr c;
        List (List.map sexp_of_stmt t);
        List (List.map sexp_of_stmt f);
      ]

let rec stmt_of_sexp = function
  | List [ Atom "assign"; Atom v; e ] -> Stmt.Assign (v, expr_of_sexp e)
  | List [ Atom "store"; Atom a; i; e ] ->
    Stmt.Store (a, expr_of_sexp i, expr_of_sexp e)
  | List [ Atom "if"; c; List t; List f ] ->
    Stmt.If (expr_of_sexp c, List.map stmt_of_sexp t, List.map stmt_of_sexp f)
  | s -> parse_error "bad statement %a" pp_sexp s

(* ------------------------------------------------------------------ *)
(* Kernels.                                                            *)

let sexp_of_ty = function Types.I64 -> Atom "i64" | Types.F64 -> Atom "f64"

let ty_of_sexp s =
  match atom s with
  | "i64" -> Types.I64
  | "f64" -> Types.F64
  | t -> parse_error "unknown type %S" t

let sexp_of_kernel (k : Kernel.t) =
  List
    [
      Atom "kernel";
      List [ Atom "name"; Atom k.Kernel.name ];
      List [ Atom "index"; Atom k.Kernel.index ];
      List [ Atom "lo"; Atom (string_of_int k.Kernel.lo) ];
      List [ Atom "hi"; Atom (string_of_int k.Kernel.hi) ];
      List
        (Atom "arrays"
        :: List.map
             (fun (d : Kernel.array_decl) ->
               List
                 [
                   Atom d.Kernel.a_name;
                   sexp_of_ty d.Kernel.a_ty;
                   Atom (string_of_int d.Kernel.a_len);
                 ])
             k.Kernel.arrays);
      List
        (Atom "scalars"
        :: List.map
             (fun (d : Kernel.scalar_decl) ->
               List
                 [
                   Atom d.Kernel.s_name;
                   sexp_of_ty d.Kernel.s_ty;
                   sexp_of_value d.Kernel.s_init;
                 ])
             k.Kernel.scalars);
      List (Atom "body" :: List.map sexp_of_stmt k.Kernel.body);
      List (Atom "live_out" :: List.map (fun v -> Atom v) k.Kernel.live_out);
    ]

let kernel_of_sexp s =
  let arrays =
    List.map
      (function
        | List [ Atom a_name; ty; len ] ->
          { Kernel.a_name; a_ty = ty_of_sexp ty; a_len = int_of len }
        | _ -> parse_error "bad array declaration")
      (field_items "arrays" s)
  in
  let scalars =
    List.map
      (function
        | List [ Atom s_name; ty; init ] ->
          { Kernel.s_name; s_ty = ty_of_sexp ty; s_init = value_of_sexp init }
        | _ -> parse_error "bad scalar declaration")
      (field_items "scalars" s)
  in
  Kernel.validate
    {
      Kernel.name = atom (field "name" s);
      index = atom (field "index" s);
      lo = int_of (field "lo" s);
      hi = int_of (field "hi" s);
      arrays;
      scalars;
      body = List.map stmt_of_sexp (field_items "body" s);
      live_out = List.map atom (field_items "live_out" s);
    }

(* ------------------------------------------------------------------ *)
(* Configurations and whole cases.                                     *)

let sexp_of_machine (m : Finepar_machine.Config.t) =
  List
    [
      Atom "machine";
      List [ Atom "queue_len"; Atom (string_of_int m.Finepar_machine.Config.queue_len) ];
      List [ Atom "transfer_latency"; Atom (string_of_int m.Finepar_machine.Config.transfer_latency) ];
      List [ Atom "l1_bytes"; Atom (string_of_int m.Finepar_machine.Config.l1_bytes) ];
      List [ Atom "l1_line"; Atom (string_of_int m.Finepar_machine.Config.l1_line) ];
      List [ Atom "l2_bytes"; Atom (string_of_int m.Finepar_machine.Config.l2_bytes) ];
      List [ Atom "l1_hit"; Atom (string_of_int m.Finepar_machine.Config.l1_hit) ];
      List [ Atom "l2_hit"; Atom (string_of_int m.Finepar_machine.Config.l2_hit) ];
      List [ Atom "mem_latency"; Atom (string_of_int m.Finepar_machine.Config.mem_latency) ];
      List [ Atom "branch_taken_penalty"; Atom (string_of_int m.Finepar_machine.Config.branch_taken_penalty) ];
      List [ Atom "deq_latency"; Atom (string_of_int m.Finepar_machine.Config.deq_latency) ];
      List [ Atom "max_cycles"; Atom (string_of_int m.Finepar_machine.Config.max_cycles) ];
      List [ Atom "issue_width"; Atom (string_of_int m.Finepar_machine.Config.issue_width) ];
    ]

let machine_fields =
  [
    "queue_len"; "transfer_latency"; "l1_bytes"; "l1_line"; "l2_bytes";
    "l1_hit"; "l2_hit"; "mem_latency"; "branch_taken_penalty"; "deq_latency";
    "max_cycles"; "issue_width";
  ]

let machine_of_sexp s =
  check_fields ~what:"machine" ~known:machine_fields s;
  {
    Finepar_machine.Config.queue_len = int_of (field "queue_len" s);
    transfer_latency = int_of (field "transfer_latency" s);
    l1_bytes = int_of (field "l1_bytes" s);
    l1_line = int_of (field "l1_line" s);
    l2_bytes = int_of (field "l2_bytes" s);
    l1_hit = int_of (field "l1_hit" s);
    l2_hit = int_of (field "l2_hit" s);
    mem_latency = int_of (field "mem_latency" s);
    branch_taken_penalty = int_of (field "branch_taken_penalty" s);
    deq_latency = int_of (field "deq_latency" s);
    max_cycles = int_of (field "max_cycles" s);
    issue_width = int_of (field "issue_width" s);
  }

let sexp_of_config (c : Finepar.Compiler.config) =
  List
    [
      Atom "config";
      List [ Atom "cores"; Atom (string_of_int c.Finepar.Compiler.cores) ];
      List [ Atom "max_height"; Atom (string_of_int c.Finepar.Compiler.max_height) ];
      List
        [
          Atom "algorithm";
          Atom
            (match c.Finepar.Compiler.algorithm with
            | `Greedy -> "greedy"
            | `Multi_pair -> "multi_pair");
        ];
      List [ Atom "throughput"; Atom (string_of_bool c.Finepar.Compiler.throughput) ];
      List
        [
          Atom "max_queue_pairs";
          (match c.Finepar.Compiler.max_queue_pairs with
          | None -> Atom "none"
          | Some n -> Atom (string_of_int n));
        ];
      List [ Atom "speculation"; Atom (string_of_bool c.Finepar.Compiler.speculation) ];
      List
        [
          Atom "comm_mode";
          Atom (Finepar_transform.Comm.mode_name c.Finepar.Compiler.comm_mode);
        ];
      sexp_of_machine c.Finepar.Compiler.machine;
    ]

let config_fields =
  [
    "cores"; "max_height"; "algorithm"; "throughput"; "max_queue_pairs";
    "speculation"; "comm_mode"; "machine";
  ]

let config_of_sexp ?extra s =
  check_fields ~what:"config" ~known:config_fields ?extra s;
  let default =
    Finepar.Compiler.default_config ~cores:(int_of (field "cores" s)) ()
  in
  {
    default with
    Finepar.Compiler.max_height = int_of (field "max_height" s);
    algorithm =
      (match atom (field "algorithm" s) with
      | "greedy" -> `Greedy
      | "multi_pair" -> `Multi_pair
      | a -> parse_error "unknown algorithm %S" a);
    throughput = bool_of (field "throughput" s);
    max_queue_pairs =
      (match atom (field "max_queue_pairs" s) with
      | "none" -> None
      | n -> Some (int_of (Atom n)));
    speculation = bool_of (field "speculation" s);
    comm_mode =
      (let name = atom (field "comm_mode" s) in
       match Finepar_transform.Comm.mode_of_name name with
       | Some m -> m
       | None -> parse_error "unknown comm_mode %S" name);
    machine = machine_of_sexp (section "machine" s);
  }

let sexp_of_case (case : Gen.case) =
  List
    [
      Atom "case";
      sexp_of_kernel case.Gen.kernel;
      sexp_of_config case.Gen.config;
      List [ Atom "placement"; Atom (Gen.placement_name case.Gen.placement) ];
      List [ Atom "workload_seed"; Atom (string_of_int case.Gen.workload_seed) ];
    ]

let case_fields = [ "kernel"; "config"; "placement"; "workload_seed" ]

let case_of_sexp s =
  match s with
  | List (Atom "case" :: _) ->
    check_fields ~what:"case" ~known:case_fields s;
    {
      Gen.kernel = kernel_of_sexp (section "kernel" s);
      config = config_of_sexp (section "config" s);
      placement =
        (let name = atom (field "placement" s) in
         match Gen.placement_of_name name with
         | Some p -> p
         | None -> parse_error "unknown placement %S" name);
      workload_seed = int_of (field "workload_seed" s);
    }
  | _ -> parse_error "expected (case ...)"

(* ------------------------------------------------------------------ *)
(* Whole-file interface.                                               *)

let to_string ?(failure : Oracle.failure option) (case : Gen.case) =
  let header =
    match failure with
    | None -> ""
    | Some f ->
      Printf.sprintf "; oracle: %s\n; %s\n"
        f.Oracle.oracle
        (String.map (fun c -> if c = '\n' then ' ' else c) f.Oracle.message)
  in
  header ^ Format.asprintf "%a@." pp_sexp (sexp_of_case case)

let strip_comments s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let line = String.trim line in
         not (String.length line > 0 && line.[0] = ';'))
  |> String.concat "\n"

let of_string s = case_of_sexp (parse_sexp (strip_comments s))

let save path ?failure case =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?failure case))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
