(** The fuzzing campaign driver. *)

type failure_report = {
  case_seed : int;  (** regenerate with {!Gen.case_of_seed} *)
  failure : Oracle.failure;
  shrunk : Gen.case;
  shrunk_failure : Oracle.failure;
  repro_path : string option;
}

type summary = {
  root_seed : int;
  cases_run : int;
  passed : int;
  failed : int;
  elapsed : float;
  kernels_with_ifs : int;
  kernels_with_indirect : int;
  kernels_with_int_ops : int;
  speculated : int;
  multi_core : int;
  smt_cases : int;
  total_partitions : int;
  total_cycles : int;
  failures : failure_report list;
}

val derive_seed : root:int -> int -> int
(** The per-case seed of case [i] in a campaign rooted at [root]. *)

val run :
  ?compile:Oracle.compile_fn ->
  ?engine:Finepar_machine.Engine.t ->
  ?out_dir:string ->
  ?pool:Finepar_exec.Pool.t ->
  ?seconds:float ->
  ?on_case:(int -> Oracle.outcome -> unit) ->
  cases:int ->
  seed:int ->
  unit ->
  summary
(** Generate and check up to [cases] cases (bounded also by [seconds] of
    wall-clock budget), shrinking failures and saving reproducers under
    [out_dir] when given.

    With a [pool], cases are checked in parallel batches; per-case seed
    derivation keeps every case independent, and tallies, failures,
    corpus writes and [on_case] calls are merged on the calling domain
    in case-index order, so for a fixed [cases] count the summary (and
    its JSON) is identical to a sequential run's.  Under a [seconds]
    budget the number of cases that fit may differ. *)

val summary_to_json : ?pool:Finepar_exec.Pool.stats -> summary -> string
(** Machine-readable summary.  Excludes the wall-clock [elapsed] field
    so the JSON is a pure function of [seed] and the case count.  When
    [pool] is given (profiling was requested), a scheduling-dependent
    ["pool"] object — steal counts, busy/idle seconds, load imbalance —
    is appended; the CI determinism diffs never pass it. *)
