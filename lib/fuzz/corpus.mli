(** The persistent regression corpus under [test/fuzz_corpus/]. *)

type entry = { path : string; case : Gen.case }

type replay = {
  entry : entry;
  outcome : (Oracle.outcome, string) result;
      (** [Error _] when the file does not parse. *)
}

val files : string -> string list
(** Corpus files in a directory, sorted; empty if the directory is
    missing. *)

val load_file : string -> entry
val replay_file :
  ?compile:Oracle.compile_fn ->
  ?engine:Finepar_machine.Engine.t ->
  string ->
  replay

val replay_dir :
  ?compile:Oracle.compile_fn ->
  ?engine:Finepar_machine.Engine.t ->
  string ->
  replay list

val save :
  string ->
  oracle:string ->
  seed:int ->
  ?failure:Oracle.failure ->
  Gen.case ->
  string
(** [save dir ~oracle ~seed case] writes a reproducer into [dir]
    (creating it) and returns the path. *)
