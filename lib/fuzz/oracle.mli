(** The differential oracle set: static-verifier acceptance,
    bit-exactness against the reference evaluator, telemetry
    invariants, run-to-run determinism, cross-engine cycle-exactness
    (cycle stepper vs event-driven fast-forward), and cross-core-count
    agreement of observable results.

    Failure oracle names: "well-formed", "verifier", "compiler-crash",
    "bit-exact", "deadlock" (simulator deadlock), "max-cycles" (cycle
    budget exhausted), "progress" (faulting execution),
    "simulator-crash", "telemetry", "determinism", "cross-engine",
    "cross-core". *)

type stats = {
  cycles : int;
  n_partitions : int;
  queues_used : int;
  instrs : int;
  speculated_ifs : int;
}

type failure = { oracle : string; message : string }

type outcome = Pass of stats | Fail of failure

type compile_fn =
  Finepar.Compiler.config -> Finepar_ir.Kernel.t -> Finepar.Compiler.compiled

val check :
  ?compile:compile_fn -> ?engine:Finepar_machine.Engine.t -> Gen.case -> outcome
(** Run the full oracle set on one case.  Never raises; [compile]
    defaults to {!Finepar.Compiler.compile} and exists so tests can
    inject deliberate miscompiles.  [engine] selects the primary
    simulation engine (default {!Finepar_machine.Engine.default}); the
    cross-engine oracle always runs every other engine and demands
    identical cycles, outputs, and telemetry. *)

val pp_failure : Format.formatter -> failure -> unit
