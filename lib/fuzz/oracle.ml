(** The differential oracle set.

    Every fuzzed case is checked against six independent oracles:

    - {b verifier accepts}: the static queue-protocol verifier
      ({!Finepar_verify.Verify}) accepts the generated code against the
      comm plan;
    - {b bit-exact}: the simulated outputs equal the reference
      evaluator's, bit for bit ({!Finepar.Runner} raises [Mismatch]);
    - {b telemetry invariants}: per-core cycle accounting sums to the
      run's cycles, fiber attribution plus wait cycles sums to
      [cycles * threads], and queue occupancy respects capacity;
    - {b determinism}: a second run of the same compiled program on the
      same workload reproduces the cycle count and outputs;
    - {b cross-engine}: every other simulation engine (cycle stepper,
      event-driven fast-forward, compiled — {!Finepar_machine.Engine})
      reproduces the cycle count, the architectural outputs, and the
      full telemetry report;
    - {b cross-core agreement}: the same kernel compiled for one core
      produces the same observable results.

    [check] never raises: compiler or simulator exceptions become
    failures of the corresponding oracle.  A stuck simulator is
    classified by its structured reason: "deadlock" (no core can make
    progress), "max-cycles" (budget exhausted), or "progress" (a
    faulting execution). *)

module Sim = Finepar_machine.Sim
module Program = Finepar_machine.Program
module Verify = Finepar_verify.Verify
open Finepar_ir

type stats = {
  cycles : int;
  n_partitions : int;
  queues_used : int;
  instrs : int;
  speculated_ifs : int;
}

type failure = {
  oracle : string;  (** which oracle rejected the case *)
  message : string;
}

type outcome = Pass of stats | Fail of failure

let fail oracle fmt = Format.kasprintf (fun message -> Fail { oracle; message }) fmt

type compile_fn = Finepar.Compiler.config -> Kernel.t -> Finepar.Compiler.compiled

(** Telemetry invariants on a finished simulation; [None] means all
    hold. *)
let telemetry_failure (sim : Sim.t) =
  let cycles = sim.Sim.cycles in
  let n_threads = Array.length sim.Sim.stats in
  let bad = ref None in
  let record fmt = Format.kasprintf (fun m -> if !bad = None then bad := Some m) fmt in
  Array.iteri
    (fun i s ->
      let acc = Sim.accounted_cycles s in
      if acc <> cycles then
        record "core %d: %d cycles accounted, run took %d" i acc cycles)
    sim.Sim.stats;
  let attributed =
    List.fold_left
      (fun acc (_, issue, stall) -> acc + issue + stall)
      0 (Sim.fiber_counters sim)
  in
  (* Each extra-slot issue attributes a fiber cycle beyond the 1-per-core
     cycle budget, so the dual-issue total joins the right-hand side. *)
  let dual =
    Array.fold_left (fun acc s -> acc + s.Sim.dual_issued) 0 sim.Sim.stats
  in
  let total = (cycles * n_threads) + dual in
  if attributed + Sim.wait_cycles sim <> total then
    record
      "fiber attribution %d + wait %d <> %d cycles x %d threads + %d dual-issued"
      attributed (Sim.wait_cycles sim) cycles n_threads dual;
  Array.iteri
    (fun i (q : Sim.queue_state) ->
      if q.Sim.max_occupancy < 0 || q.Sim.max_occupancy > sim.Sim.config.Finepar_machine.Config.queue_len
      then
        record "queue %d: max occupancy %d outside [0, %d]" i q.Sim.max_occupancy
          sim.Sim.config.Finepar_machine.Config.queue_len;
      if Finepar_telemetry.Histogram.bucket_total q.Sim.occupancy <> q.Sim.transfers
      then
        record "queue %d: occupancy histogram holds %d samples, %d transfers" i
          (Finepar_telemetry.Histogram.bucket_total q.Sim.occupancy)
          q.Sim.transfers)
    sim.Sim.queues;
  !bad

(* The full telemetry report rendered to JSON: covers every counter,
   stall-episode histogram and queue-occupancy histogram in one
   comparable string. *)
let report_json (r : Finepar.Runner.run) =
  Finepar_telemetry.Json.to_string
    (Finepar.Report.to_json r.Finepar.Runner.telemetry)

let check ?(compile : compile_fn = Finepar.Compiler.compile)
    ?(engine = Finepar_machine.Engine.default) (case : Gen.case) =
  let workload =
    Finepar_kernels.Workload.default ~seed:case.Gen.workload_seed case.Gen.kernel
  in
  match compile case.Gen.config case.Gen.kernel with
  | exception Kernel.Invalid m -> fail "well-formed" "kernel rejected: %s" m
  | exception Finepar_analysis.Deps.Unsupported m ->
    fail "well-formed" "dependence analysis rejected: %s" m
  | exception Verify.Rejected (k, vs) ->
    fail "verifier" "%s rejected: %a" k
      (Fmt.list ~sep:(Fmt.any "; ") Verify.pp_violation)
      vs
  | exception e -> fail "compiler-crash" "%s" (Printexc.to_string e)
  | c -> (
    let program =
      c.Finepar.Compiler.code.Finepar_codegen.Lower.program
    in
    (* Verifier-accepts: the static queue-protocol verifier must accept
       the generated code before it runs.  [Compiler.compile] already
       enforces this, so the explicit re-check here exists to catch
       injected miscompiles (a [compile_fn] that corrupts the program
       after the pipeline's own verify pass). *)
    let verdict =
      Verify.run ~plan:c.Finepar.Compiler.comm
        ~mode:case.Gen.config.Finepar.Compiler.comm_mode
        ~queue_len:
          case.Gen.config.Finepar.Compiler.machine
            .Finepar_machine.Config.queue_len
        program
    in
    if not (Verify.ok verdict) then
      fail "verifier" "%d violation(s): %a"
        (List.length verdict.Verify.violations)
        (Fmt.list ~sep:(Fmt.any "; ") Verify.pp_violation)
        verdict.Verify.violations
    else
    let n_threads = Array.length program.Program.cores in
    let core_map = Gen.materialize case.Gen.placement n_threads in
    match Finepar.Runner.run_with_sim ~check:true ~workload ~core_map ~engine c with
    | exception Finepar.Runner.Mismatch m -> fail "bit-exact" "%s" m
    | exception Sim.Stuck st -> (
      (* Classify how the simulator got stuck: a deadlock, exhausting
         the cycle budget, and a faulting execution are distinct bugs
         and shrink along different paths. *)
      match st.Sim.st_reason with
      | Sim.Deadlock _ -> fail "deadlock" "%s" (Sim.stuck_message st)
      | Sim.Max_cycles _ -> fail "max-cycles" "%s" (Sim.stuck_message st)
      | Sim.Fault _ -> fail "progress" "%s" (Sim.stuck_message st))
    | exception Eval.Runtime_error m -> fail "well-formed" "reference evaluator: %s" m
    | exception e -> fail "simulator-crash" "%s" (Printexc.to_string e)
    | run1, sim -> (
      match telemetry_failure sim with
      | Some m -> fail "telemetry" "%s" m
      | None -> (
        (* Determinism: same compiled program, same workload, fresh
           simulator state. *)
        match Finepar.Runner.run ~check:false ~workload ~core_map ~engine c with
        | exception e ->
          fail "determinism" "second run raised %s" (Printexc.to_string e)
        | run2 ->
          if run1.Finepar.Runner.cycles <> run2.Finepar.Runner.cycles then
            fail "determinism" "cycle counts differ across runs: %d vs %d"
              run1.Finepar.Runner.cycles run2.Finepar.Runner.cycles
          else if
            not (Eval.result_equal run1.Finepar.Runner.result run2.Finepar.Runner.result)
          then fail "determinism" "results differ across identical runs"
          else (
            (* Cross-engine: every other engine must be cycle-exact —
               same cycle count, same architectural outputs, same
               telemetry report (the report JSON covers every counter
               and histogram).  With three engines each case checks the
               two it did not run under, so the three-way matrix closes
               whatever engine the campaign selected. *)
            let cross_engine_failure other =
              match
                Finepar.Runner.run ~check:false ~workload ~core_map
                  ~engine:other c
              with
              | exception e ->
                Some
                  (fail "cross-engine" "%s engine raised %s"
                     (Finepar_machine.Engine.to_string other)
                     (Printexc.to_string e))
              | run_other ->
                if run1.Finepar.Runner.cycles <> run_other.Finepar.Runner.cycles
                then
                  Some
                    (fail "cross-engine" "cycle counts differ: %s %d vs %s %d"
                       (Finepar_machine.Engine.to_string engine)
                       run1.Finepar.Runner.cycles
                       (Finepar_machine.Engine.to_string other)
                       run_other.Finepar.Runner.cycles)
                else if
                  not
                    (Eval.result_equal run1.Finepar.Runner.result
                       run_other.Finepar.Runner.result)
                then
                  Some
                    (fail "cross-engine" "results differ across engines (%s vs %s)"
                       (Finepar_machine.Engine.to_string engine)
                       (Finepar_machine.Engine.to_string other))
                else if report_json run1 <> report_json run_other then
                  Some
                    (fail "cross-engine"
                       "telemetry reports differ across engines (%s vs %s)"
                       (Finepar_machine.Engine.to_string engine)
                       (Finepar_machine.Engine.to_string other))
                else None
            in
            let others =
              List.filter (fun e -> e <> engine) Finepar_machine.Engine.all
            in
            match List.find_map cross_engine_failure others with
            | Some failure -> failure
            | None ->
            (* Cross-core agreement: one-core compilation of the same
               kernel must observe the same live-outs and arrays. *)
            let config1 = { case.Gen.config with Finepar.Compiler.cores = 1 } in
            (match compile config1 case.Gen.kernel with
            | exception e ->
              fail "cross-core" "1-core compile raised %s" (Printexc.to_string e)
            | c1 -> (
              match Finepar.Runner.run ~check:true ~workload ~engine c1 with
              | exception e ->
                fail "cross-core" "1-core run raised %s" (Printexc.to_string e)
              | run_1core ->
                if
                  not
                    (Eval.result_equal run1.Finepar.Runner.result
                       run_1core.Finepar.Runner.result)
                then
                  fail "cross-core"
                    "%d-partition and 1-core results disagree"
                    c.Finepar.Compiler.stats.Finepar.Compiler.n_partitions
                else
                  Pass
                    {
                      cycles = run1.Finepar.Runner.cycles;
                      n_partitions =
                        c.Finepar.Compiler.stats.Finepar.Compiler.n_partitions;
                      queues_used = run1.Finepar.Runner.queues_used;
                      instrs = run1.Finepar.Runner.instrs;
                      speculated_ifs =
                        c.Finepar.Compiler.stats.Finepar.Compiler.speculated_ifs;
                    }))))))

let pp_failure ppf f = Fmt.pf ppf "[%s] %s" f.oracle f.message
