(** Greedy failure-preserving minimization of a failing (kernel,
    configuration) case. *)

val stmt_count : Finepar_ir.Kernel.t -> int
(** Statements in the body, counting into conditional branches. *)

val kernel_cost : Finepar_ir.Kernel.t -> int
val case_cost : Gen.case -> int

val kernel_candidates : Finepar_ir.Kernel.t -> Finepar_ir.Kernel.t list
(** One-step kernel reductions (all validated). *)

val shrink :
  ?compile:Oracle.compile_fn ->
  ?engine:Finepar_machine.Engine.t ->
  Gen.case ->
  Oracle.failure ->
  Gen.case * Oracle.failure
(** [shrink case failure] minimizes [case], keeping only reductions that
    still fail the same oracle as [failure]. *)
