(** The fuzzing campaign driver: generate cases from a root seed, run
    the oracle set on each, shrink and persist any failure, and report a
    machine-readable summary.

    Case [i] of a campaign rooted at [seed] is generated from the
    derived seed [seed * 1_000_003 + i], so any individual failure is
    reproducible from the summary line alone (no shared generator state
    between cases). *)

module Json = Finepar_telemetry.Json

type failure_report = {
  case_seed : int;
  failure : Oracle.failure;
  shrunk : Gen.case;
  shrunk_failure : Oracle.failure;
  repro_path : string option;
}

type summary = {
  root_seed : int;
  cases_run : int;
  passed : int;
  failed : int;
  elapsed : float;
  (* Coverage-style tallies over the generated population, so a nightly
     log shows what the campaign actually exercised. *)
  kernels_with_ifs : int;
  kernels_with_indirect : int;
  kernels_with_int_ops : int;
  speculated : int;
  multi_core : int;
  smt_cases : int;
  total_partitions : int;
  total_cycles : int;
  failures : failure_report list;
}

let derive_seed ~root i = (root * 1_000_003) + i

let case_features (case : Gen.case) =
  let has_if = ref false and has_indirect = ref false in
  let has_int = ref false in
  Finepar_ir.Stmt.iter_block
    (fun s ->
      (match s with Finepar_ir.Stmt.If _ -> has_if := true | _ -> ());
      List.iter
        (Finepar_ir.Expr.iter (fun e ->
             match e with
             | Finepar_ir.Expr.Load (_, Finepar_ir.Expr.Load _) ->
               has_indirect := true
             | Finepar_ir.Expr.Binop
                 ((Finepar_ir.Types.And | Or | Xor | Shl | Shr), _, _) ->
               has_int := true
             | _ -> ()))
        (Finepar_ir.Stmt.exprs s))
    case.Gen.kernel.Finepar_ir.Kernel.body;
  (!has_if, !has_indirect, !has_int)

(* The per-case work — generation, feature extraction, oracle checking
   and shrinking — is pure given the derived seed, so a campaign fans
   cases out over an optional domain pool.  Everything mutable (the
   coverage tallies, the failure list, corpus writes, the progress hook)
   happens in [absorb], which only ever runs on the calling domain, in
   case-index order: a parallel campaign over a fixed case count is
   byte-identical to a sequential one. *)
type case_result = {
  cr_seed : int;
  cr_has_if : bool;
  cr_has_indirect : bool;
  cr_has_int : bool;
  cr_speculated : bool;
  cr_multi_core : bool;
  cr_smt : bool;
  cr_outcome : Oracle.outcome;
  cr_shrunk : (Gen.case * Oracle.failure) option;  (** on [Fail] *)
}

let run_case ?compile ?engine case_seed =
  (* One span per case, tagged with the oracle outcome, so a traced
     campaign shows where the time went and which cases failed. *)
  Finepar_telemetry.Tracer.with_span ~cat:"fuzz"
    ~args:[ ("seed", Json.Int case_seed) ]
    "case"
  @@ fun () ->
  let case = Gen.case_of_seed case_seed in
  let has_if, has_indirect, has_int = case_features case in
  let outcome = Oracle.check ?compile ?engine case in
  Finepar_telemetry.Tracer.set_arg "outcome"
    (Json.String
       (match outcome with
       | Oracle.Pass _ -> "pass"
       | Oracle.Fail f -> "fail:" ^ f.Oracle.oracle));
  let shrunk =
    match outcome with
    | Oracle.Pass _ -> None
    | Oracle.Fail failure -> Some (Shrink.shrink ?compile ?engine case failure)
  in
  {
    cr_seed = case_seed;
    cr_has_if = has_if;
    cr_has_indirect = has_indirect;
    cr_has_int = has_int;
    cr_speculated = case.Gen.config.Finepar.Compiler.speculation;
    cr_multi_core = case.Gen.config.Finepar.Compiler.cores > 1;
    cr_smt = case.Gen.placement <> Gen.Identity;
    cr_outcome = outcome;
    cr_shrunk = shrunk;
  }

(** Run a campaign.  Stops at [cases] generated cases or once [seconds]
    of wall-clock budget is spent, whichever comes first (with a pool
    the budget is checked between batches, so a batch in flight is
    finished, not abandoned).  Failures are shrunk; when [out_dir] is
    given, each shrunk reproducer is saved there.  [on_case] is a
    progress hook, always called in case order on the calling domain. *)
let run ?compile ?engine ?out_dir ?pool ?(seconds = infinity)
    ?(on_case = fun _ _ -> ()) ~cases ~seed () =
  Finepar_telemetry.Tracer.with_span ~cat:"fuzz"
    ~args:[ ("root_seed", Json.Int seed); ("cases", Json.Int cases) ]
    "campaign"
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. started in
  let passed = ref 0 and failures = ref [] in
  let kernels_with_ifs = ref 0
  and kernels_with_indirect = ref 0
  and kernels_with_int_ops = ref 0
  and speculated = ref 0
  and multi_core = ref 0
  and smt_cases = ref 0
  and total_partitions = ref 0
  and total_cycles = ref 0 in
  let absorb r =
    if r.cr_has_if then incr kernels_with_ifs;
    if r.cr_has_indirect then incr kernels_with_indirect;
    if r.cr_has_int then incr kernels_with_int_ops;
    if r.cr_speculated then incr speculated;
    if r.cr_multi_core then incr multi_core;
    if r.cr_smt then incr smt_cases;
    (match (r.cr_outcome, r.cr_shrunk) with
    | Oracle.Pass stats, _ ->
      incr passed;
      total_partitions := !total_partitions + stats.Oracle.n_partitions;
      total_cycles := !total_cycles + stats.Oracle.cycles
    | Oracle.Fail failure, Some (shrunk, shrunk_failure) ->
      let repro_path =
        Option.map
          (fun dir ->
            Corpus.save dir ~oracle:shrunk_failure.Oracle.oracle
              ~seed:r.cr_seed ~failure:shrunk_failure shrunk)
          out_dir
      in
      failures :=
        { case_seed = r.cr_seed; failure; shrunk; shrunk_failure; repro_path }
        :: !failures
    | Oracle.Fail _, None -> assert false);
    on_case r.cr_seed r.cr_outcome
  in
  let workers =
    match pool with None -> 1 | Some p -> Finepar_exec.Pool.domains p
  in
  let batch = if workers <= 1 then 1 else workers * 4 in
  let i = ref 0 in
  while !i < cases && elapsed () < seconds do
    let n = min batch (cases - !i) in
    let seeds = List.init n (fun k -> derive_seed ~root:seed (!i + k)) in
    List.iter absorb
      (Finepar_exec.Pool.map_opt pool ~f:(run_case ?compile ?engine) seeds);
    i := !i + n
  done;
  {
    root_seed = seed;
    cases_run = !i;
    passed = !passed;
    failed = List.length !failures;
    elapsed = elapsed ();
    kernels_with_ifs = !kernels_with_ifs;
    kernels_with_indirect = !kernels_with_indirect;
    kernels_with_int_ops = !kernels_with_int_ops;
    speculated = !speculated;
    multi_core = !multi_core;
    smt_cases = !smt_cases;
    total_partitions = !total_partitions;
    total_cycles = !total_cycles;
    failures = List.rev !failures;
  }

let json_of_failure (f : failure_report) =
  Json.Obj
    [
      ("seed", Json.Int f.case_seed);
      ("oracle", Json.String f.failure.Oracle.oracle);
      ("message", Json.String f.failure.Oracle.message);
      ("shrunk_statements", Json.Int (Shrink.stmt_count f.shrunk.Gen.kernel));
      ("shrunk_oracle", Json.String f.shrunk_failure.Oracle.oracle);
      ( "repro",
        match f.repro_path with
        | None -> Json.Null
        | Some p -> Json.String p );
    ]

let json_of_pool_stats (p : Finepar_exec.Pool.stats) =
  Json.Obj
    [
      ("domains", Json.Int p.Finepar_exec.Pool.domains);
      ("runs", Json.Int p.Finepar_exec.Pool.runs);
      ("run_seconds", Json.Float p.Finepar_exec.Pool.run_seconds);
      ("tasks", Json.Int p.Finepar_exec.Pool.tasks);
      ("steals", Json.Int p.Finepar_exec.Pool.steals);
      ("steal_failures", Json.Int p.Finepar_exec.Pool.steal_failures);
      ("busy_seconds", Json.Float p.Finepar_exec.Pool.busy_seconds);
      ("idle_seconds", Json.Float p.Finepar_exec.Pool.idle_seconds);
      ("imbalance", Json.Float p.Finepar_exec.Pool.imbalance);
    ]

(* Deliberately excludes [elapsed]: the summary JSON is a pure function
   of the root seed and case count, so sequential and parallel campaigns
   (and CI reruns) can be diffed byte for byte.  Wall-clock numbers
   belong in the harness's text output.  The optional [pool] object
   (steal counts, busy/idle seconds, load imbalance) is scheduling-
   dependent, so callers attach it only when the user asked for
   profiling — the CI determinism diffs never pass it. *)
let json_of_summary ?pool (s : summary) =
  Json.Obj
    ([
       ("root_seed", Json.Int s.root_seed);
       ("cases_run", Json.Int s.cases_run);
       ("passed", Json.Int s.passed);
       ("failed", Json.Int s.failed);
       ( "coverage",
         Json.Obj
           [
             ("kernels_with_ifs", Json.Int s.kernels_with_ifs);
             ("kernels_with_indirect", Json.Int s.kernels_with_indirect);
             ("kernels_with_int_ops", Json.Int s.kernels_with_int_ops);
             ("speculated_configs", Json.Int s.speculated);
             ("multi_core_configs", Json.Int s.multi_core);
             ("smt_placements", Json.Int s.smt_cases);
             ("total_partitions", Json.Int s.total_partitions);
             ("total_cycles", Json.Int s.total_cycles);
           ] );
       ("failures", Json.List (List.map json_of_failure s.failures));
     ]
    @
    match pool with
    | None -> []
    | Some p -> [ ("pool", json_of_pool_stats p) ])

let summary_to_json ?pool s = Json.to_string (json_of_summary ?pool s)
