(** The fuzzing campaign driver: generate cases from a root seed, run
    the oracle set on each, shrink and persist any failure, and report a
    machine-readable summary.

    Case [i] of a campaign rooted at [seed] is generated from the
    derived seed [seed * 1_000_003 + i], so any individual failure is
    reproducible from the summary line alone (no shared generator state
    between cases). *)

module Json = Finepar_telemetry.Json

type failure_report = {
  case_seed : int;
  failure : Oracle.failure;
  shrunk : Gen.case;
  shrunk_failure : Oracle.failure;
  repro_path : string option;
}

type summary = {
  root_seed : int;
  cases_run : int;
  passed : int;
  failed : int;
  elapsed : float;
  (* Coverage-style tallies over the generated population, so a nightly
     log shows what the campaign actually exercised. *)
  kernels_with_ifs : int;
  kernels_with_indirect : int;
  kernels_with_int_ops : int;
  speculated : int;
  multi_core : int;
  smt_cases : int;
  total_partitions : int;
  total_cycles : int;
  failures : failure_report list;
}

let derive_seed ~root i = (root * 1_000_003) + i

let case_features (case : Gen.case) =
  let has_if = ref false and has_indirect = ref false in
  let has_int = ref false in
  Finepar_ir.Stmt.iter_block
    (fun s ->
      (match s with Finepar_ir.Stmt.If _ -> has_if := true | _ -> ());
      List.iter
        (Finepar_ir.Expr.iter (fun e ->
             match e with
             | Finepar_ir.Expr.Load (_, Finepar_ir.Expr.Load _) ->
               has_indirect := true
             | Finepar_ir.Expr.Binop
                 ((Finepar_ir.Types.And | Or | Xor | Shl | Shr), _, _) ->
               has_int := true
             | _ -> ()))
        (Finepar_ir.Stmt.exprs s))
    case.Gen.kernel.Finepar_ir.Kernel.body;
  (!has_if, !has_indirect, !has_int)

(** Run a campaign.  Stops at [cases] generated cases or once [seconds]
    of wall-clock budget is spent, whichever comes first.  Failures are
    shrunk; when [out_dir] is given, each shrunk reproducer is saved
    there.  [on_case] is a progress hook. *)
let run ?compile ?out_dir ?(seconds = infinity) ?(on_case = fun _ _ -> ())
    ~cases ~seed () =
  let started = Sys.time () in
  let passed = ref 0 and failures = ref [] in
  let kernels_with_ifs = ref 0
  and kernels_with_indirect = ref 0
  and kernels_with_int_ops = ref 0
  and speculated = ref 0
  and multi_core = ref 0
  and smt_cases = ref 0
  and total_partitions = ref 0
  and total_cycles = ref 0 in
  let i = ref 0 in
  while !i < cases && Sys.time () -. started < seconds do
    let case_seed = derive_seed ~root:seed !i in
    let case = Gen.case_of_seed case_seed in
    let has_if, has_indirect, has_int = case_features case in
    if has_if then incr kernels_with_ifs;
    if has_indirect then incr kernels_with_indirect;
    if has_int then incr kernels_with_int_ops;
    if case.Gen.config.Finepar.Compiler.speculation then incr speculated;
    if case.Gen.config.Finepar.Compiler.cores > 1 then incr multi_core;
    if case.Gen.placement <> Gen.Identity then incr smt_cases;
    let outcome = Oracle.check ?compile case in
    (match outcome with
    | Oracle.Pass stats ->
      incr passed;
      total_partitions := !total_partitions + stats.Oracle.n_partitions;
      total_cycles := !total_cycles + stats.Oracle.cycles
    | Oracle.Fail failure ->
      let shrunk, shrunk_failure = Shrink.shrink ?compile case failure in
      let repro_path =
        Option.map
          (fun dir ->
            Corpus.save dir ~oracle:shrunk_failure.Oracle.oracle
              ~seed:case_seed ~failure:shrunk_failure shrunk)
          out_dir
      in
      failures :=
        { case_seed; failure; shrunk; shrunk_failure; repro_path } :: !failures);
    on_case case_seed outcome;
    incr i
  done;
  {
    root_seed = seed;
    cases_run = !i;
    passed = !passed;
    failed = List.length !failures;
    elapsed = Sys.time () -. started;
    kernels_with_ifs = !kernels_with_ifs;
    kernels_with_indirect = !kernels_with_indirect;
    kernels_with_int_ops = !kernels_with_int_ops;
    speculated = !speculated;
    multi_core = !multi_core;
    smt_cases = !smt_cases;
    total_partitions = !total_partitions;
    total_cycles = !total_cycles;
    failures = List.rev !failures;
  }

let json_of_failure (f : failure_report) =
  Json.Obj
    [
      ("seed", Json.Int f.case_seed);
      ("oracle", Json.String f.failure.Oracle.oracle);
      ("message", Json.String f.failure.Oracle.message);
      ("shrunk_statements", Json.Int (Shrink.stmt_count f.shrunk.Gen.kernel));
      ("shrunk_oracle", Json.String f.shrunk_failure.Oracle.oracle);
      ( "repro",
        match f.repro_path with
        | None -> Json.Null
        | Some p -> Json.String p );
    ]

let json_of_summary (s : summary) =
  Json.Obj
    [
      ("root_seed", Json.Int s.root_seed);
      ("cases_run", Json.Int s.cases_run);
      ("passed", Json.Int s.passed);
      ("failed", Json.Int s.failed);
      ("elapsed_seconds", Json.Float s.elapsed);
      ( "coverage",
        Json.Obj
          [
            ("kernels_with_ifs", Json.Int s.kernels_with_ifs);
            ("kernels_with_indirect", Json.Int s.kernels_with_indirect);
            ("kernels_with_int_ops", Json.Int s.kernels_with_int_ops);
            ("speculated_configs", Json.Int s.speculated);
            ("multi_core_configs", Json.Int s.multi_core);
            ("smt_placements", Json.Int s.smt_cases);
            ("total_partitions", Json.Int s.total_partitions);
            ("total_cycles", Json.Int s.total_cycles);
          ] );
      ("failures", Json.List (List.map json_of_failure s.failures));
    ]

let summary_to_json s = Json.to_string (json_of_summary s)
