(** Random well-typed (kernel, configuration) cases for differential
    fuzzing.  See the implementation header for the soundness rules the
    generator maintains. *)

type placement = Identity | Single_core | Mod2 | Div2

val placement_name : placement -> string
val placement_of_name : string -> placement option

val materialize : placement -> int -> int array
(** [materialize p n] is the simulator [core_map] for [n] hardware
    threads. *)

type case = {
  kernel : Finepar_ir.Kernel.t;
  config : Finepar.Compiler.config;
  placement : placement;
  workload_seed : int;
}

val gen_kernel : Rng.t -> Finepar_ir.Kernel.t
(** A validated random kernel (raises {!Finepar_ir.Kernel.Invalid} only
    on a generator bug). *)

val gen_config : Rng.t -> Finepar.Compiler.config
val gen_placement : Rng.t -> int -> placement
val gen_case : Rng.t -> case

val case_of_seed : int -> case
(** The case a given integer seed generates — the unit of
    reproducibility. *)
