(** Deliberate miscompiles for testing the fuzzing harness (mutation
    smoke tests). *)

type rule = Swap_add_sub | Perturb_const | Negate_condition

val rule_name : rule -> string

val apply : rule -> Finepar_ir.Kernel.t -> Finepar_ir.Kernel.t option
(** The mutated (still well-typed) kernel, or [None] if the rule finds
    no applicable site. *)

val miscompile : rule -> Oracle.compile_fn
(** Compiles the mutated kernel but keeps the original as the bit-exact
    reference; honest when the rule finds no site. *)
