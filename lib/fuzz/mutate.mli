(** Deliberate miscompiles for testing the fuzzing harness (mutation
    smoke tests). *)

type rule = Swap_add_sub | Perturb_const | Negate_condition

val rule_name : rule -> string

val apply : rule -> Finepar_ir.Kernel.t -> Finepar_ir.Kernel.t option
(** The mutated (still well-typed) kernel, or [None] if the rule finds
    no applicable site. *)

val miscompile : rule -> Oracle.compile_fn
(** Compiles the mutated kernel but keeps the original as the bit-exact
    reference; honest when the rule finds no site. *)

(** Machine-code-level corruptions of the queue protocol, applied to
    the lowered program after an honest compile.  Each is a bug class
    the static verifier ({!Finepar_verify.Verify}) must reject before
    simulation: a dropped dequeue (balance), swapped queue endpoints
    (endpoints), and a reordered enqueue pair (FIFO/plan conformance). *)
type comm_rule =
  | Drop_dequeue  (** deepest-nested dequeue becomes a zero constant *)
  | Swap_endpoints  (** busiest queue's src/dst cores are exchanged *)
  | Reorder_enqueue
      (** two same-loop, different-fiber enqueues to different queues
          are swapped *)

val comm_rule_name : comm_rule -> string

val corrupt :
  comm_rule -> Finepar.Compiler.compiled -> Finepar.Compiler.compiled option
(** The corrupted compilation, or [None] when the program has no
    applicable site (e.g. single-core programs have no queues).  The
    corrupted program shares no mutable state with the input. *)

val comm_miscompile : comm_rule -> Oracle.compile_fn
(** Honest compile followed by {!corrupt}; honest when the rule finds
    no site.  The oracle's "verifier" check must fail on every
    corrupted program — statically, before any simulation. *)
