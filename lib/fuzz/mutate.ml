(** Deliberate miscompiles, for testing the fuzzing harness itself.

    [miscompile rule] is a {!Oracle.compile_fn} that compiles a mutated
    copy of the kernel while keeping the original as the reference
    ([compiled.source]), so the bit-exact oracle sees a genuine
    compiler-output/reference divergence — the mutation smoke test: the
    harness must catch it and shrink it. *)

open Finepar_ir

type rule =
  | Swap_add_sub  (** first floating/integer [a + b] becomes [a - b] *)
  | Perturb_const  (** first numeric literal is nudged *)
  | Negate_condition  (** first conditional's branches are swapped *)

let rule_name = function
  | Swap_add_sub -> "swap-add-sub"
  | Perturb_const -> "perturb-const"
  | Negate_condition -> "negate-condition"

(** Apply [f] to the first subexpression where it yields a change. *)
let rec rewrite_first_expr f e =
  match f e with
  | Some e' -> Some e'
  | None -> (
    match e with
    | Expr.Const _ | Expr.Var _ -> None
    | Expr.Load (a, idx) ->
      Option.map (fun idx' -> Expr.Load (a, idx')) (rewrite_first_expr f idx)
    | Expr.Unop (op, a) ->
      Option.map (fun a' -> Expr.Unop (op, a')) (rewrite_first_expr f a)
    | Expr.Binop (op, a, b) -> (
      match rewrite_first_expr f a with
      | Some a' -> Some (Expr.Binop (op, a', b))
      | None ->
        Option.map (fun b' -> Expr.Binop (op, a, b')) (rewrite_first_expr f b))
    | Expr.Select (c, t, fa) -> (
      match rewrite_first_expr f c with
      | Some c' -> Some (Expr.Select (c', t, fa))
      | None -> (
        match rewrite_first_expr f t with
        | Some t' -> Some (Expr.Select (c, t', fa))
        | None ->
          Option.map (fun fa' -> Expr.Select (c, t, fa'))
            (rewrite_first_expr f fa))))

let rec rewrite_first_stmt fe fs s =
  match fs s with
  | Some s' -> Some s'
  | None -> (
    match s with
    | Stmt.Assign (v, e) ->
      Option.map (fun e' -> Stmt.Assign (v, e')) (rewrite_first_expr fe e)
    | Stmt.Store (a, i, e) -> (
      match rewrite_first_expr fe i with
      | Some i' -> Some (Stmt.Store (a, i', e))
      | None -> Option.map (fun e' -> Stmt.Store (a, i, e')) (rewrite_first_expr fe e))
    | Stmt.If (c, t, f) -> (
      match rewrite_first_expr fe c with
      | Some c' -> Some (Stmt.If (c', t, f))
      | None -> (
        match rewrite_first_block fe fs t with
        | Some t' -> Some (Stmt.If (c, t', f))
        | None ->
          Option.map (fun f' -> Stmt.If (c, t, f')) (rewrite_first_block fe fs f))))

and rewrite_first_block fe fs = function
  | [] -> None
  | s :: rest -> (
    match rewrite_first_stmt fe fs s with
    | Some s' -> Some (s' :: rest)
    | None -> Option.map (fun rest' -> s :: rest') (rewrite_first_block fe fs rest))

(** The mutated kernel, or [None] when the rule finds no site.  The
    mutated kernel is re-validated: mutations preserve types. *)
let apply rule (k : Kernel.t) =
  let nothing _ = None in
  let fe, fs =
    match rule with
    | Swap_add_sub ->
      ( (function
         | Expr.Binop (Types.Add, a, b) -> Some (Expr.Binop (Types.Sub, a, b))
         | _ -> None),
        nothing )
    | Perturb_const ->
      ( (function
         | Expr.Const (Types.VFloat f) -> Some (Expr.Const (Types.VFloat (f +. 1.0)))
         | Expr.Const (Types.VInt i) -> Some (Expr.Const (Types.VInt (i + 1)))
         | _ -> None),
        nothing )
    | Negate_condition ->
      ( nothing,
        function
        | Stmt.If (c, t, f) when t <> f -> Some (Stmt.If (c, f, t))
        | _ -> None )
  in
  Option.map
    (fun body' -> Kernel.validate { k with Kernel.body = body' })
    (rewrite_first_block fe fs k.Kernel.body)

(** A compile function that miscompiles: the generated code comes from
    the mutated kernel, the reference stays the original.  When the rule
    has no site the compilation is honest. *)
let miscompile rule : Oracle.compile_fn =
 fun config k ->
  match apply rule k with
  | None -> Finepar.Compiler.compile config k
  | Some k' -> { (Finepar.Compiler.compile config k') with Finepar.Compiler.source = k }
