(** Deliberate miscompiles, for testing the fuzzing harness itself.

    [miscompile rule] is a {!Oracle.compile_fn} that compiles a mutated
    copy of the kernel while keeping the original as the reference
    ([compiled.source]), so the bit-exact oracle sees a genuine
    compiler-output/reference divergence — the mutation smoke test: the
    harness must catch it and shrink it. *)

open Finepar_ir

type rule =
  | Swap_add_sub  (** first floating/integer [a + b] becomes [a - b] *)
  | Perturb_const  (** first numeric literal is nudged *)
  | Negate_condition  (** first conditional's branches are swapped *)

let rule_name = function
  | Swap_add_sub -> "swap-add-sub"
  | Perturb_const -> "perturb-const"
  | Negate_condition -> "negate-condition"

(** Apply [f] to the first subexpression where it yields a change. *)
let rec rewrite_first_expr f e =
  match f e with
  | Some e' -> Some e'
  | None -> (
    match e with
    | Expr.Const _ | Expr.Var _ -> None
    | Expr.Load (a, idx) ->
      Option.map (fun idx' -> Expr.Load (a, idx')) (rewrite_first_expr f idx)
    | Expr.Unop (op, a) ->
      Option.map (fun a' -> Expr.Unop (op, a')) (rewrite_first_expr f a)
    | Expr.Binop (op, a, b) -> (
      match rewrite_first_expr f a with
      | Some a' -> Some (Expr.Binop (op, a', b))
      | None ->
        Option.map (fun b' -> Expr.Binop (op, a, b')) (rewrite_first_expr f b))
    | Expr.Select (c, t, fa) -> (
      match rewrite_first_expr f c with
      | Some c' -> Some (Expr.Select (c', t, fa))
      | None -> (
        match rewrite_first_expr f t with
        | Some t' -> Some (Expr.Select (c, t', fa))
        | None ->
          Option.map (fun fa' -> Expr.Select (c, t, fa'))
            (rewrite_first_expr f fa))))

let rec rewrite_first_stmt fe fs s =
  match fs s with
  | Some s' -> Some s'
  | None -> (
    match s with
    | Stmt.Assign (v, e) ->
      Option.map (fun e' -> Stmt.Assign (v, e')) (rewrite_first_expr fe e)
    | Stmt.Store (a, i, e) -> (
      match rewrite_first_expr fe i with
      | Some i' -> Some (Stmt.Store (a, i', e))
      | None -> Option.map (fun e' -> Stmt.Store (a, i, e')) (rewrite_first_expr fe e))
    | Stmt.If (c, t, f) -> (
      match rewrite_first_expr fe c with
      | Some c' -> Some (Stmt.If (c', t, f))
      | None -> (
        match rewrite_first_block fe fs t with
        | Some t' -> Some (Stmt.If (c, t', f))
        | None ->
          Option.map (fun f' -> Stmt.If (c, t, f')) (rewrite_first_block fe fs f))))

and rewrite_first_block fe fs = function
  | [] -> None
  | s :: rest -> (
    match rewrite_first_stmt fe fs s with
    | Some s' -> Some (s' :: rest)
    | None -> Option.map (fun rest' -> s :: rest') (rewrite_first_block fe fs rest))

(** The mutated kernel, or [None] when the rule finds no site.  The
    mutated kernel is re-validated: mutations preserve types. *)
let apply rule (k : Kernel.t) =
  let nothing _ = None in
  let fe, fs =
    match rule with
    | Swap_add_sub ->
      ( (function
         | Expr.Binop (Types.Add, a, b) -> Some (Expr.Binop (Types.Sub, a, b))
         | _ -> None),
        nothing )
    | Perturb_const ->
      ( (function
         | Expr.Const (Types.VFloat f) -> Some (Expr.Const (Types.VFloat (f +. 1.0)))
         | Expr.Const (Types.VInt i) -> Some (Expr.Const (Types.VInt (i + 1)))
         | _ -> None),
        nothing )
    | Negate_condition ->
      ( nothing,
        function
        | Stmt.If (c, t, f) when t <> f -> Some (Stmt.If (c, f, t))
        | _ -> None )
  in
  Option.map
    (fun body' -> Kernel.validate { k with Kernel.body = body' })
    (rewrite_first_block fe fs k.Kernel.body)

(** A compile function that miscompiles: the generated code comes from
    the mutated kernel, the reference stays the original.  When the rule
    has no site the compilation is honest. *)
let miscompile rule : Oracle.compile_fn =
 fun config k ->
  match apply rule k with
  | None -> Finepar.Compiler.compile config k
  | Some k' -> { (Finepar.Compiler.compile config k') with Finepar.Compiler.source = k }

(* ------------------------------------------------------------------ *)
(* Comm-corrupting rules: machine-code-level miscompiles of the queue
   protocol itself.  Unlike the kernel-level rules above these mutate
   the lowered program after an honest compile, which is exactly the
   class of bug the static verifier exists to catch — each rule must be
   rejected statically, before simulation. *)

module Program = Finepar_machine.Program
module Isa = Finepar_machine.Isa

type comm_rule =
  | Drop_dequeue  (** deepest-nested dequeue becomes a zero constant *)
  | Swap_endpoints  (** busiest queue's src/dst cores are exchanged *)
  | Reorder_enqueue
      (** two same-loop enqueues to different queues are swapped *)

let comm_rule_name = function
  | Drop_dequeue -> "drop-dequeue"
  | Swap_endpoints -> "swap-endpoints"
  | Reorder_enqueue -> "reorder-enqueue"

(* Backward-branch intervals [target, branch] — each is one loop body. *)
let loop_spans (cp : Program.core_program) =
  let spans = ref [] in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Isa.Bz (_, l) | Isa.Bnz (_, l) | Isa.Jmp l ->
        let t = cp.Program.label_pos.(l) in
        if t <= pc then spans := (t, pc) :: !spans
      | _ -> ())
    cp.Program.code;
  !spans

let nesting spans pc =
  List.length (List.filter (fun (t, b) -> t <= pc && pc <= b) spans)

let with_program (c : Finepar.Compiler.compiled) program =
  {
    c with
    Finepar.Compiler.code =
      { c.Finepar.Compiler.code with Finepar_codegen.Lower.program };
  }

(** Apply a comm-corruption rule to a compiled kernel; [None] when the
    program has no applicable site (e.g. a single-core compile has no
    queues).  The returned program shares nothing mutable with the
    input. *)
let corrupt rule (c : Finepar.Compiler.compiled) =
  let program = c.Finepar.Compiler.code.Finepar_codegen.Lower.program in
  let fresh_cores () =
    Array.map
      (fun (cp : Program.core_program) ->
        { cp with Program.code = Array.copy cp.Program.code })
      program.Program.cores
  in
  match rule with
  | Drop_dequeue ->
    (* The deepest-nested dequeue: inside the kernel loop when one
       exists there, otherwise any dequeue. *)
    let best = ref None in
    Array.iteri
      (fun core (cp : Program.core_program) ->
        let spans = loop_spans cp in
        Array.iteri
          (fun pc instr ->
            match instr with
            | Isa.Deq (d, q) ->
              let depth = nesting spans pc in
              (match !best with
              | Some (bd, _, _, _, _) when bd >= depth -> ()
              | _ -> best := Some (depth, core, pc, d, q))
            | _ -> ())
          cp.Program.code)
      program.Program.cores;
    (match !best with
    | None -> None
    | Some (_, core, pc, d, q) ->
      let zero =
        match program.Program.queues.(q).Isa.cls with
        | Isa.Qint -> Finepar_ir.Types.VInt 0
        | Isa.Qfloat -> Finepar_ir.Types.VFloat 0.0
      in
      let cores = fresh_cores () in
      cores.(core).Program.code.(pc) <- Isa.Li (d, zero);
      Some (with_program c { program with Program.cores = cores }))
  | Swap_endpoints ->
    let nq = Array.length program.Program.queues in
    if nq = 0 then None
    else begin
      (* Swap the busiest queue so the corruption is never vacuous. *)
      let count = Array.make nq 0 in
      Array.iter
        (fun (cp : Program.core_program) ->
          Array.iter
            (fun instr ->
              match instr with
              | Isa.Enq (q, _) | Isa.Deq (_, q) ->
                if q >= 0 && q < nq then count.(q) <- count.(q) + 1
              | _ -> ())
            cp.Program.code)
        program.Program.cores;
      let q = ref 0 in
      Array.iteri (fun i c -> if c > count.(!q) then q := i) count;
      if count.(!q) = 0 then None
      else begin
        let queues = Array.copy program.Program.queues in
        let spec = queues.(!q) in
        queues.(!q) <-
          { spec with Isa.src = spec.Isa.dst; Isa.dst = spec.Isa.src };
        Some (with_program c { program with Program.queues = queues })
      end
    end
  | Reorder_enqueue ->
    (* Two enqueues to different queues inside the same (innermost
       possible) loop body: swapping them breaks the plan's in-loop
       FIFO interleaving without changing any per-queue count. *)
    let found = ref None in
    Array.iteri
      (fun core (cp : Program.core_program) ->
        if !found = None then begin
          let spans =
            List.sort
              (fun (t1, b1) (t2, b2) -> compare (b1 - t1) (b2 - t2))
              (loop_spans cp)
          in
          List.iter
            (fun (t, b) ->
              if !found = None then begin
                let enqs = ref [] in
                for pc = t to b do
                  match cp.Program.code.(pc) with
                  | Isa.Enq (q, _) ->
                    enqs := (pc, q, cp.Program.fiber_of.(pc)) :: !enqs
                  | _ -> ()
                done;
                let enqs = List.rev !enqs in
                (* Different queues AND different source fibers: equal
                   fibers mean equal plan anchors, whose relative order
                   is a sort tie the verifier legitimately accepts. *)
                List.iter
                  (fun (pc1, q1, f1) ->
                    List.iter
                      (fun (pc2, q2, f2) ->
                        if !found = None && pc1 < pc2 && q1 <> q2 && f1 <> f2
                        then found := Some (core, pc1, pc2))
                      enqs)
                  enqs
              end)
            spans
        end)
      program.Program.cores;
    (match !found with
    | None -> None
    | Some (core, pc1, pc2) ->
      let cores = fresh_cores () in
      let code = cores.(core).Program.code in
      let tmp = code.(pc1) in
      code.(pc1) <- code.(pc2);
      code.(pc2) <- tmp;
      Some (with_program c { program with Program.cores = cores }))

(** A compile function that corrupts the lowered comm protocol after an
    honest compile; honest when the rule finds no site.  The "verifier"
    oracle must reject every corrupted program statically. *)
let comm_miscompile rule : Oracle.compile_fn =
 fun config k ->
  let c = Finepar.Compiler.compile config k in
  match corrupt rule c with Some c' -> c' | None -> c
