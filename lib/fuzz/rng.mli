(** Deterministic splitmix64 random source for the fuzzer. *)

type t

val create : int -> t
val next_int64 : t -> int64
val int_below : t -> int -> int
val int_in : t -> int -> int -> int
val float_in : t -> float -> float -> float
val bool : t -> bool
val chance : t -> float -> bool
val choose : t -> 'a list -> 'a
val weighted : t -> (int * 'a) list -> 'a
val split : t -> t
