(** Deterministic generational (beam) autotuning search over the
    {!Space} knobs, fanned out across a kernel corpus.

    One search runs in lockstep generations across every target: each
    generation's candidate set — for all targets together — is one flat
    batch handed to the evaluator, so the service path sends one frame
    per generation (reusing the session's cache across generations) and
    the direct path fans the batch out over {!Finepar_exec.Pool}.

    Determinism contract: candidate enumeration, deduplication, elite
    selection ({!Finepar.Runner.compare_candidates}, stable on
    evaluation order) and result folding all depend only on evaluator
    results in batch order — never on timing — so the rendered table
    and JSON are byte-identical at [-j1] and [-jN], and cached vs.
    fresh through a store. *)

(** One kernel the search tunes. *)
type target = {
  t_name : string;
  t_kernel : Finepar_ir.Kernel.t;
  t_workload : Finepar_service.Wire.workload_spec;
  t_placement : Finepar_fuzz.Gen.placement;
  t_paper_speedup4 : float option;
      (** Table III's published 4-core speedup, for registry kernels *)
}

val registry_targets : unit -> target list
(** The 18 evaluation kernels (Table I), with their fixed workloads. *)

val corpus_targets : unit -> target list
(** The 33 excluded characterization loops, on seeded workloads. *)

val fuzz_targets : dir:string -> target list
(** Promoted fuzz kernels: one target per reproducer in [dir] (sorted;
    empty if the directory is missing), named ["fuzz:<basename>"],
    keeping the case's workload seed and SMT placement. *)

(** Search parameters.  [budget] bounds candidate evaluations per
    target (the sequential reference is not counted); [generations]
    bounds neighbor-expansion rounds after generation 0 (the
    {!Finepar.Runner.autotune_candidates} seed, heuristic pick first so
    it survives any budget); [beam] is the elite count expanded each
    round. *)
type params = {
  cores : int;
  machine : Finepar_machine.Config.t;
  beam : int;
  generations : int;
  budget : int;
}

val default_params : params
(** 4 cores, default machine, beam 2, 3 generations, budget 40. *)

(** One measurement: simulated cycles plus per-array load counters
    (used only for the sequential profiling reference), or the
    deterministic rendering of the pipeline error. *)
type measure = (int * (string * int * int) list, string) result

type evaluator = Finepar_service.Wire.job list -> measure list
(** Evaluates one batch of jobs, results in request order.  {!direct}
    computes in-process; {!Service_eval.evaluator} routes through the
    service cache.  Both produce identical measures and identical error
    strings. *)

val direct :
  ?pool:Finepar_exec.Pool.t ->
  engine:Finepar_machine.Engine.t ->
  unit ->
  evaluator
(** In-process evaluation, replicating the server's compute path
    (profile feedback from the job's counters, placement
    materialization, [check:true]) so its measures — including rendered
    errors — byte-match the service path. *)

(** Per-target search outcome. *)
type best = {
  b_desc : string;
  b_config : Finepar.Compiler.config;
  b_cycles : int;
}

type row = {
  r_target : target;
  r_seq : (int, string) result;  (** sequential reference cycles *)
  r_heuristic : (int, string) result;
      (** the Section III-B heuristic pick ("baseline": greedy merge,
          default weights, profile feedback at [params.cores]) *)
  r_best : best option;  (** None only when every candidate errored *)
  r_evaluated : int;  (** candidate evaluations performed *)
  r_generations : int;  (** evaluation rounds run (generation 0 included) *)
}

val run : params -> evaluator -> target list -> row list
(** The search proper.  Generation 0 is the shared
    {!Finepar.Runner.autotune_candidates} list (baseline first); each
    later generation expands the [beam] best rows' {!Space.neighbors},
    deduplicated against everything already evaluated, truncated to the
    remaining budget.  Targets whose sequential reference fails get an
    error row and no candidate evaluations. *)

val gap : row -> float option
(** [heuristic cycles / best cycles] — 1.0 means the heuristic pick was
    optimal within the searched space; above 1.0 is speedup the
    heuristic left on the table. *)

val pp_table : Format.formatter -> row list -> unit
(** The per-kernel best-config table: sequential, heuristic and best
    cycles, heuristic gap, speedup over sequential, evaluation count
    and the winning configuration, with a mean-gap summary footer. *)

val to_json : params:params -> row list -> Finepar_telemetry.Json.t
(** Deterministic JSON rendering of the same data, plus the search
    parameters and total evaluation count. *)

val pp_autotune :
  Format.formatter -> string * int * (string * int) list -> unit
(** The classic fixed-candidate autotune table
    [(best name, best cycles, (candidate, cycles) list)] — one renderer
    shared by the CLI's direct and [--via] paths, so their outputs are
    byte-identical by construction. *)
