(* Service-backed evaluation.  See the .mli. *)

module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Wire = Finepar_service.Wire
module Gen = Finepar_fuzz.Gen

exception Service_error of string

type exec = Wire.request list -> Wire.response list

let run_payload = function
  | Wire.Run_result p -> Ok p
  | Wire.Error msg -> Error msg
  | _ -> Error "service: unexpected response kind"

let payload_exn resp =
  match run_payload resp with
  | Ok p -> p
  | Error msg -> raise (Service_error msg)

let evaluator ~exec ~engine : Search.evaluator =
 fun jobs ->
  List.map
    (fun resp ->
      Result.map
        (fun (p : Wire.run_payload) -> (p.Wire.cycles, p.Wire.load_counters))
        (run_payload resp))
    (exec (List.map (fun job -> Wire.Run { job; engine }) jobs))

let autotune ~exec ~machine ~engine ~cores ~workload kernel =
  let base = { (Compiler.default_config ~cores ()) with Compiler.machine } in
  let mk ~sequential ~profile config =
    Wire.Run
      {
        job =
          {
            Wire.kernel;
            config;
            sequential;
            placement = Gen.Identity;
            workload = Wire.Explicit workload;
            profile_counters = profile;
          };
        engine;
      }
  in
  let seq =
    payload_exn (List.hd (exec [ mk ~sequential:true ~profile:[] base ]))
  in
  let candidates = Runner.autotune_candidates base in
  let responses =
    exec
      (List.map
         (fun (_, config) ->
           mk ~sequential:false ~profile:seq.Wire.load_counters config)
         candidates)
  in
  let measured =
    List.map2
      (fun (name, config) resp -> (name, config, (payload_exn resp).Wire.cycles))
      candidates responses
  in
  let best_name, _, best_cycles =
    List.fold_left
      (fun (bn, bc, bcy) (n, c, cy) ->
        if Runner.compare_candidates (cy, c) (bcy, bc) < 0 then (n, c, cy)
        else (bn, bc, bcy))
      (List.hd measured) (List.tl measured)
  in
  (best_name, best_cycles, List.map (fun (n, _, cy) -> (n, cy)) measured)
