(* Generational beam search over the configuration space.  See the .mli
   for the lockstep-batch structure and the determinism contract. *)

module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Config = Finepar_machine.Config
module Wire = Finepar_service.Wire
module Gen = Finepar_fuzz.Gen
module Pool = Finepar_exec.Pool
module Kernel = Finepar_ir.Kernel
module Registry = Finepar_kernels.Registry
module J = Finepar_telemetry.Json

type target = {
  t_name : string;
  t_kernel : Kernel.t;
  t_workload : Wire.workload_spec;
  t_placement : Gen.placement;
  t_paper_speedup4 : float option;
}

let registry_targets () =
  List.map
    (fun (e : Registry.entry) ->
      {
        t_name = e.Registry.kernel.Kernel.name;
        t_kernel = e.Registry.kernel;
        t_workload = Wire.Explicit e.Registry.workload;
        t_placement = Gen.Identity;
        t_paper_speedup4 = Some e.Registry.paper.Registry.p_speedup4;
      })
    Registry.all

(* The excluded loops have no bespoke workloads; a fixed seed keeps
   every search run (and its cache keys) identical. *)
let corpus_seed = 1

let corpus_targets () =
  List.map
    (fun (k : Kernel.t) ->
      {
        t_name = k.Kernel.name;
        t_kernel = k;
        t_workload = Wire.Seeded corpus_seed;
        t_placement = Gen.Identity;
        t_paper_speedup4 = None;
      })
    Finepar_kernels.Corpus.excluded

let fuzz_targets ~dir =
  List.map
    (fun path ->
      let entry = Finepar_fuzz.Corpus.load_file path in
      let case = entry.Finepar_fuzz.Corpus.case in
      {
        t_name =
          "fuzz:" ^ Filename.remove_extension (Filename.basename path);
        t_kernel = case.Gen.kernel;
        t_workload = Wire.Seeded case.Gen.workload_seed;
        t_placement = case.Gen.placement;
        t_paper_speedup4 = None;
      })
    (Finepar_fuzz.Corpus.files dir)

type params = {
  cores : int;
  machine : Config.t;
  beam : int;
  generations : int;
  budget : int;
}

let default_params =
  { cores = 4; machine = Config.default; beam = 2; generations = 3; budget = 40 }

type measure = (int * (string * int * int) list, string) result
type evaluator = Wire.job list -> measure list

(* The in-process evaluator replicates the server's compute path
   (Server.compile_job + run_response): profile feedback comes from the
   job's counters, the placement is materialized against the compiled
   core count, checking is always on, and any pipeline exception is
   rendered with [Printexc.to_string] — so measures and error strings
   byte-match the service path. *)
let eval_job ~engine (job : Wire.job) : measure =
  match
    let profile =
      Finepar_analysis.Profile.of_counters job.Wire.profile_counters
    in
    let config = { job.Wire.config with Compiler.profile } in
    let compiled =
      if job.Wire.sequential then
        Compiler.compile_sequential ~machine:config.Compiler.machine
          job.Wire.kernel
      else Compiler.compile config job.Wire.kernel
    in
    let program = compiled.Compiler.code.Finepar_codegen.Lower.program in
    let n_cores = Array.length program.Finepar_machine.Program.cores in
    let core_map = Gen.materialize job.Wire.placement n_cores in
    let workload =
      match job.Wire.workload with
      | Wire.Seeded seed ->
        Finepar_kernels.Workload.default ~seed job.Wire.kernel
      | Wire.Explicit w -> w
    in
    Runner.run ~check:true ~workload ~core_map ~engine compiled
  with
  | r -> Ok (r.Runner.cycles, r.Runner.load_counters)
  | exception e -> Error (Printexc.to_string e)

let direct ?pool ~engine () : evaluator =
 fun jobs -> Pool.map_opt pool ~f:(eval_job ~engine) jobs

type best = { b_desc : string; b_config : Compiler.config; b_cycles : int }

type row = {
  r_target : target;
  r_seq : (int, string) result;
  r_heuristic : (int, string) result;
  r_best : best option;
  r_evaluated : int;
  r_generations : int;
}

(* Per-target search state; every mutation happens on the calling
   domain, driven by evaluator results in batch order. *)
type tstate = {
  st_target : target;
  mutable st_seq : (int * (string * int * int) list, string) result;
  st_seen : (string, unit) Hashtbl.t;
  mutable st_results : (string * Compiler.config * int) list;  (* reversed *)
  mutable st_heuristic : (int, string) result;
  mutable st_evaluated : int;
  mutable st_pending : (string * Compiler.config) list;
  mutable st_generations : int;
}

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let job_of (st : tstate) ~sequential config =
  let profile =
    if sequential then []
    else match st.st_seq with Ok (_, counters) -> counters | Error _ -> []
  in
  {
    Wire.kernel = st.st_target.t_kernel;
    config;
    sequential;
    placement = st.st_target.t_placement;
    workload = st.st_target.t_workload;
    profile_counters = profile;
  }

(* Candidates not yet seen by this target, marking them seen. *)
let fresh_only (st : tstate) cands =
  List.filter_map
    (fun (desc, config) ->
      let k = Space.key config in
      if Hashtbl.mem st.st_seen k then None
      else begin
        Hashtbl.add st.st_seen k ();
        Some (desc, config)
      end)
    cands

let best_of (st : tstate) =
  List.fold_left
    (fun acc (desc, config, cycles) ->
      match acc with
      | None -> Some { b_desc = desc; b_config = config; b_cycles = cycles }
      | Some b ->
        (* Strict [< 0]: ties keep the earlier evaluation, matching
           Runner.autotune's selection. *)
        if
          Runner.compare_candidates (cycles, config) (b.b_cycles, b.b_config)
          < 0
        then Some { b_desc = desc; b_config = config; b_cycles = cycles }
        else Some b)
    None
    (List.rev st.st_results)

let run (p : params) (evaluator : evaluator) targets =
  let p =
    {
      p with
      beam = max 1 p.beam;
      generations = max 0 p.generations;
      budget = max 1 p.budget;
    }
  in
  let base_config =
    { (Compiler.default_config ~cores:p.cores ()) with Compiler.machine = p.machine }
  in
  let states =
    List.map
      (fun t ->
        {
          st_target = t;
          st_seq = Error "not measured";
          st_seen = Hashtbl.create 64;
          st_results = [];
          st_heuristic = Error "not measured";
          st_evaluated = 0;
          st_pending = [];
          st_generations = 0;
        })
      targets
  in
  (* Phase 0: every target's sequential profiling reference, one batch. *)
  let seq_measures =
    evaluator
      (List.map (fun st -> job_of st ~sequential:true base_config) states)
  in
  List.iter2 (fun st m -> st.st_seq <- m) states seq_measures;
  (* Generation 0 seeds: the shared fixed-candidate list, reordered so
     the heuristic pick ("baseline") survives any budget. *)
  List.iter
    (fun st ->
      match st.st_seq with
      | Error msg -> st.st_heuristic <- Error msg
      | Ok _ ->
        let cands = Runner.autotune_candidates base_config in
        let baseline, rest =
          List.partition (fun (n, _) -> String.equal n "baseline") cands
        in
        st.st_pending <- take p.budget (fresh_only st (baseline @ rest)))
    states;
  let generation = ref 0 in
  let live = ref (List.exists (fun st -> st.st_pending <> []) states) in
  while !live do
    (* One flat batch across all targets: one service frame (or one
       pool fan-out) per generation. *)
    let batch =
      List.concat_map
        (fun st ->
          List.map (fun (_, config) -> job_of st ~sequential:false config)
            st.st_pending)
        states
    in
    let measures = ref (evaluator batch) in
    List.iter
      (fun st ->
        if st.st_pending <> [] then st.st_generations <- st.st_generations + 1;
        List.iter
          (fun (desc, config) ->
            let m = List.hd !measures in
            measures := List.tl !measures;
            st.st_evaluated <- st.st_evaluated + 1;
            (match m with
            | Ok (cycles, _) ->
              st.st_results <- (desc, config, cycles) :: st.st_results
            | Error _ -> ());
            if String.equal desc "baseline" then
              st.st_heuristic <- Result.map fst m)
          st.st_pending)
      states;
    (* Next generation: expand the beam's neighbors within budget. *)
    List.iter
      (fun st ->
        if !generation >= p.generations then st.st_pending <- []
        else begin
          let remaining = p.budget - st.st_evaluated in
          if remaining <= 0 then st.st_pending <- []
          else begin
            let ranked =
              List.stable_sort
                (fun (_, ca, cya) (_, cb, cyb) ->
                  Runner.compare_candidates (cya, ca) (cyb, cb))
                (List.rev st.st_results)
            in
            let elites = take p.beam ranked in
            let cands =
              List.concat_map
                (fun (_, config, _) ->
                  List.map
                    (fun c -> (Space.describe c, c))
                    (Space.neighbors config))
                elites
            in
            st.st_pending <- take remaining (fresh_only st cands)
          end
        end)
      states;
    incr generation;
    live := List.exists (fun st -> st.st_pending <> []) states
  done;
  List.map
    (fun st ->
      {
        r_target = st.st_target;
        r_seq = Result.map fst st.st_seq;
        r_heuristic = st.st_heuristic;
        r_best = best_of st;
        r_evaluated = st.st_evaluated;
        r_generations = st.st_generations;
      })
    states

let gap (r : row) =
  match (r.r_heuristic, r.r_best) with
  | Ok h, Some b when b.b_cycles > 0 ->
    Some (float_of_int h /. float_of_int b.b_cycles)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let pp_table ppf rows =
  Fmt.pf ppf "%-28s %10s %10s %10s %6s %8s  %s@." "kernel" "seq" "heuristic"
    "best" "gap" "speedup" "best configuration";
  List.iter
    (fun r ->
      match (r.r_seq, r.r_best) with
      | Error msg, _ ->
        Fmt.pf ppf "%-28s error: %s@." r.r_target.t_name msg
      | Ok _, None ->
        Fmt.pf ppf "%-28s all %d candidates failed@." r.r_target.t_name
          r.r_evaluated
      | Ok seq, Some b ->
        let heuristic =
          match r.r_heuristic with Ok h -> string_of_int h | Error _ -> "-"
        in
        let gap_s =
          match gap r with Some g -> Fmt.str "%.2fx" g | None -> "-"
        in
        Fmt.pf ppf "%-28s %10d %10s %10d %6s %7.2fx  %s@." r.r_target.t_name
          seq heuristic b.b_cycles gap_s
          (float_of_int seq /. float_of_int b.b_cycles)
          (Space.describe b.b_config))
    rows;
  let gaps = List.filter_map gap rows in
  let beaten = List.length (List.filter (fun g -> g > 1.0) gaps) in
  let evaluated = List.fold_left (fun a r -> a + r.r_evaluated) 0 rows in
  if gaps <> [] then
    Fmt.pf ppf
      "@.%d configurations over %d kernels; mean heuristic gap %.3fx; \
       search beat the heuristic pick on %d/%d kernels@."
      evaluated (List.length rows)
      (List.fold_left ( +. ) 0. gaps /. float_of_int (List.length gaps))
      beaten (List.length gaps)

let row_json r =
  let result_json = function
    | Ok cycles -> J.Int cycles
    | Error msg -> J.Obj [ ("error", J.String msg) ]
  in
  J.Obj
    ([
       ("name", J.String r.r_target.t_name);
       ("seq_cycles", result_json r.r_seq);
       ("heuristic_cycles", result_json r.r_heuristic);
     ]
    @ (match r.r_best with
      | None -> [ ("best", J.Null) ]
      | Some b ->
        [
          ("best_cycles", J.Int b.b_cycles);
          ("best_config", J.String (Space.describe b.b_config));
          ("best_desc", J.String b.b_desc);
        ])
    @ (match gap r with Some g -> [ ("gap", J.Float g) ] | None -> [])
    @ (match (r.r_seq, r.r_best) with
      | Ok seq, Some b ->
        [
          ( "speedup",
            J.Float (float_of_int seq /. float_of_int b.b_cycles) );
        ]
      | _ -> [])
    @ (match r.r_target.t_paper_speedup4 with
      | Some s -> [ ("paper_speedup4", J.Float s) ]
      | None -> [])
    @ [
        ("evaluated", J.Int r.r_evaluated);
        ("generations", J.Int r.r_generations);
      ])

let to_json ~(params : params) rows =
  J.Obj
    [
      ( "params",
        J.Obj
          [
            ("cores", J.Int params.cores);
            ("beam", J.Int params.beam);
            ("generations", J.Int params.generations);
            ("budget", J.Int params.budget);
          ] );
      ( "evaluated",
        J.Int (List.fold_left (fun a r -> a + r.r_evaluated) 0 rows) );
      ("kernels", J.List (List.map row_json rows));
    ]

let pp_autotune ppf (best_name, best_cycles, candidates) =
  Fmt.pf ppf "%-24s %10s@." "configuration" "cycles";
  List.iter
    (fun (n, cy) ->
      Fmt.pf ppf "%-24s %10d%s@." n cy
        (if String.equal n best_name then "  <- best" else ""))
    candidates;
  let seq = List.assoc "sequential" candidates in
  Fmt.pf ppf "@.best: %s (speedup %.2f over sequential)@." best_name
    (float_of_int seq /. float_of_int best_cycles)
