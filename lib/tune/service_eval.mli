(** Evaluation through the compile-and-simulate service cache: the
    [--via=store:DIR|socket:PATH] counterpart of {!Search.direct}, and
    the service-side replica of {!Finepar.Runner.autotune} built from
    the same shared candidate enumeration and comparison — the two can
    no longer drift. *)

exception Service_error of string
(** A service [Error] response (or unexpected response kind) on a path
    that expected a run result. *)

type exec = Finepar_service.Wire.request list -> Finepar_service.Wire.response list
(** One batch round-trip, e.g. [Finepar_service.Client.session_exec]
    partially applied to an open session. *)

val evaluator :
  exec:exec -> engine:Finepar_machine.Engine.t -> Search.evaluator
(** Sends each batch as [Run] requests; cycles and load counters from
    [Run_result], service [Error] payloads as [Error] measures — the
    same measures {!Search.direct} computes, byte-for-byte. *)

val autotune :
  exec:exec ->
  machine:Finepar_machine.Config.t ->
  engine:Finepar_machine.Engine.t ->
  cores:int ->
  workload:Finepar_ir.Eval.workload ->
  Finepar_ir.Kernel.t ->
  string * int * (string * int) list
(** The classic fixed-candidate autotune through the service: one
    sequential run for profile feedback, then
    {!Finepar.Runner.autotune_candidates} as one batch, best picked
    with {!Finepar.Runner.compare_candidates} — identical names, cycle
    counts and winner to the direct {!Finepar.Runner.autotune}.
    Returns [(best name, best cycles, (candidate, cycles) list)];
    raises {!Service_error} on an error response. *)
