(* The search space: one-knob mutations over the compiler configuration,
   with pure describe/key helpers.  See the .mli for the determinism
   contract. *)

module Compiler = Finepar.Compiler
module Config = Finepar_machine.Config
module Affinity = Finepar_partition.Affinity

let weight_presets =
  [
    ("default", Affinity.default);
    ("dep", { Affinity.w_dep = 0.8; w_time = 0.1; w_prox = 0.1 });
    ("time", { Affinity.w_dep = 0.1; w_time = 0.8; w_prox = 0.1 });
    ("prox", { Affinity.w_dep = 0.1; w_time = 0.1; w_prox = 0.8 });
  ]

let weights_name (w : Affinity.weights) =
  match List.find_opt (fun (_, p) -> p = w) weight_presets with
  | Some (name, _) -> name
  | None ->
    Printf.sprintf "%g/%g/%g" w.Affinity.w_dep w.Affinity.w_time
      w.Affinity.w_prox

let algorithm_name = function `Greedy -> "greedy" | `Multi_pair -> "multi-pair"

let describe (c : Compiler.config) =
  Printf.sprintf "%dc %s%s%s q%d lat%d i%d %s w:%s" c.Compiler.cores
    (algorithm_name c.Compiler.algorithm)
    (if c.Compiler.speculation then " +spec" else "")
    (if c.Compiler.throughput then " +tp" else "")
    c.Compiler.machine.Config.queue_len
    c.Compiler.machine.Config.transfer_latency
    c.Compiler.machine.Config.issue_width
    (Finepar_transform.Comm.mode_name c.Compiler.comm_mode)
    (weights_name c.Compiler.weights)

let key (c : Compiler.config) =
  let w = c.Compiler.weights in
  Printf.sprintf "%d|%s|%b|%b|%d|%d|%h|%h|%h|%d|%s|%d|%s" c.Compiler.cores
    (algorithm_name c.Compiler.algorithm)
    c.Compiler.speculation c.Compiler.throughput
    c.Compiler.machine.Config.queue_len
    c.Compiler.machine.Config.transfer_latency w.Affinity.w_dep
    w.Affinity.w_time w.Affinity.w_prox c.Compiler.max_height
    (match c.Compiler.max_queue_pairs with
    | None -> "-"
    | Some n -> string_of_int n)
    c.Compiler.machine.Config.issue_width
    (Finepar_transform.Comm.mode_name c.Compiler.comm_mode)

let cores_choices = [ 1; 2; 4; 8 ]
let queue_len_choices = [ 4; 8; 20; 64 ]
let latency_choices = [ 1; 5; 20 ]
let issue_width_choices = [ 1; 2 ]

let neighbors (c : Compiler.config) =
  let m = c.Compiler.machine in
  [
    { c with Compiler.speculation = not c.Compiler.speculation };
    { c with Compiler.throughput = not c.Compiler.throughput };
    {
      c with
      Compiler.algorithm =
        (match c.Compiler.algorithm with
        | `Greedy -> `Multi_pair
        | `Multi_pair -> `Greedy);
    };
    {
      c with
      Compiler.comm_mode =
        (match c.Compiler.comm_mode with
        | Finepar_transform.Comm.Queues -> Finepar_transform.Comm.Shared_cache
        | Finepar_transform.Comm.Shared_cache -> Finepar_transform.Comm.Queues);
    };
  ]
  @ List.filter_map
      (fun n ->
        if n = c.Compiler.cores then None else Some { c with Compiler.cores = n })
      cores_choices
  @ List.filter_map
      (fun q ->
        if q = m.Config.queue_len then None
        else
          Some { c with Compiler.machine = { m with Config.queue_len = q } })
      queue_len_choices
  @ List.filter_map
      (fun l ->
        if l = m.Config.transfer_latency then None
        else
          Some
            { c with Compiler.machine = { m with Config.transfer_latency = l } })
      latency_choices
  @ List.filter_map
      (fun w ->
        if w = m.Config.issue_width then None
        else Some { c with Compiler.machine = { m with Config.issue_width = w } })
      issue_width_choices
  @ List.filter_map
      (fun (_, w) ->
        if w = c.Compiler.weights then None
        else Some { c with Compiler.weights = w })
      weight_presets
