(** The autotuning configuration space: the knobs the generational
    search explores, and the deterministic naming/dedup helpers the
    search keys on.

    Every function here is pure: neighbor enumeration order, description
    strings and dedup keys depend only on the configuration value, never
    on evaluation order — the foundation of the search's [-j1] ≡ [-jN]
    byte-identity. *)

(** Named affinity-weight presets: the paper's default mix plus three
    single-heuristic-dominant corners (dependence, compute time, source
    proximity — Section III-B's three affinity heuristics). *)
val weight_presets : (string * Finepar_partition.Affinity.weights) list

val weights_name : Finepar_partition.Affinity.weights -> string
(** The preset name, or ["dep/time/prox"] floats for an unnamed mix. *)

val describe : Finepar.Compiler.config -> string
(** A compact human-readable summary, e.g.
    ["4c greedy +spec q20 lat5 i1 queues w:default"]. *)

val key : Finepar.Compiler.config -> string
(** A canonical dedup key covering every knob the search varies (cores,
    algorithm, flags, queue length, transfer latency, weights, height,
    queue-pair bounds, issue width and comm mode).  Two configs with
    equal keys are identical to the search. *)

val neighbors : Finepar.Compiler.config -> Finepar.Compiler.config list
(** The one-knob mutations of a configuration, in a fixed documented
    order: speculation toggle, throughput toggle, merge-algorithm swap,
    comm-mode swap (queues vs shared cache), then the alternative core
    counts (1, 2, 4, 8), queue lengths (4, 8, 20, 64), transfer
    latencies (1, 5, 20), issue widths (1, 2) and weight presets. *)
