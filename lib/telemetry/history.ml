(** Append-only benchmark history (JSON Lines) and rolling-window
    trends.

    Every bench run appends one self-contained JSON object per line to
    [bench/history.jsonl]: a timestamp, the pool width, and a flat
    [metrics] object of scalar measurements extracted from the run's
    sections ({!summarize_sections}).  Because the file is append-only
    and line-oriented, runs accumulate across invocations (and across
    CI runs via a cached artifact), and consumers — [finepar
    perf-report], [check_bench --history] — can judge the {e latest}
    run against a rolling window of its predecessors instead of only
    the checked-in static baseline. *)

(* ------------------------------------------------------------------ *)
(* The file format. *)

let append ~path json =
  let dir = Filename.dirname path in
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
    Sys.mkdir dir 0o755;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

(** Parse every non-blank line; the first malformed line is an error. *)
let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        if line = "" then go (i + 1) acc rest
        else (
          match Json.of_string line with
          | Ok v -> go (i + 1) (v :: acc) rest
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path i e))
    in
    go 1 [] lines

let entry ~time ~label ~jobs ~metrics =
  Json.Obj
    [
      ("time", Json.Float time);
      ("label", Json.String label);
      ("jobs", Json.Int jobs);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) metrics) );
    ]

let num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(** The flat metric list of one history line ([] when malformed). *)
let metrics_of = function
  | Json.Obj kvs -> (
    match List.assoc_opt "metrics" kvs with
    | Some (Json.Obj ms) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num v)) ms
    | _ -> [])
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Extracting scalar metrics from a bench --json document. *)

(* A list-of-objects section (table3, fig13, wallclock...) summarizes to
   the mean of each numeric field; when every row is a named singleton
   ({"name": ..., "ns_per_run": ...}, the bechamel shape), the per-name
   values are kept instead, so individual benchmarks get trends. *)
let summarize_rows section rows =
  let objs =
    List.filter_map (function Json.Obj kvs -> Some kvs | _ -> None) rows
  in
  if objs = [] then []
  else
    let named_singletons =
      List.filter_map
        (fun kvs ->
          match
            ( List.assoc_opt "name" kvs,
              List.filter_map
                (fun (k, v) -> Option.map (fun f -> (k, f)) (num v))
                kvs )
          with
          (* Keep the field name ("ns_per_run") in the metric so the
             lower-is-better heuristic still sees it. *)
          | Some (Json.String n), [ (field, v) ] ->
            Some (n ^ "." ^ field, v)
          | _ -> None)
        objs
    in
    if List.length named_singletons = List.length objs then
      List.map (fun (n, v) -> (section ^ "." ^ n, v)) named_singletons
    else
      let fields =
        List.concat_map
          (fun kvs ->
            List.filter_map
              (fun (k, v) -> Option.map (fun _ -> k) (num v))
              kvs)
          objs
        |> List.sort_uniq String.compare
      in
      List.filter_map
        (fun field ->
          let vs =
            List.filter_map
              (fun kvs -> Option.bind (List.assoc_opt field kvs) num)
              objs
          in
          if vs = [] then None
          else
            Some
              ( Printf.sprintf "%s.mean_%s" section field,
                List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs) ))
        fields

(** Flatten a bench [--json] document ({"sections": {...}}) to scalar
    ("section.metric", value) pairs: an object section keeps its
    top-level numeric members, a list section is averaged per field
    (see {!summarize_rows}). *)
let summarize_sections json =
  let sections =
    match json with
    | Json.Obj kvs -> (
      match List.assoc_opt "sections" kvs with
      | Some (Json.Obj ss) -> ss
      | _ -> [])
    | _ -> []
  in
  List.concat_map
    (fun (name, v) ->
      match v with
      | Json.Obj kvs ->
        List.filter_map
          (fun (k, v) ->
            Option.map (fun f -> (name ^ "." ^ k, f)) (num v))
          kvs
      | Json.List rows -> summarize_rows name rows
      | _ -> [])
    sections

(* ------------------------------------------------------------------ *)
(* Rolling-window trends. *)

(** Metrics where smaller is faster: wall-clock durations and the pool
    imbalance ratio.  Everything else (speedups, throughputs) is
    treated as higher-is-better. *)
let lower_is_better name =
  let has needle =
    let nl = String.length needle and sl = String.length name in
    let rec go i =
      i + nl <= sl && (String.sub name i nl = needle || go (i + 1))
    in
    go 0
  in
  has "seconds" || has "ns_per_run" || has "imbalance"

type verdict = Ok | Regression | Insufficient

type trend = {
  metric : string;
  n : int;  (** runs carrying this metric *)
  first : float;
  last : float;
  lo : float;
  hi : float;
  window_mean : float option;
      (** mean of up to [window] runs preceding the last *)
  delta_pct : float option;  (** last vs window mean, percent *)
  verdict : verdict;
}

let verdict_string = function
  | Ok -> "ok"
  | Regression -> "REGRESSION"
  | Insufficient -> "n/a"

(** Per-metric trends over history entries in file order.  The last
    entry is judged against the mean of up to [window] preceding
    entries: moving past [tolerance] (fractional, default 0.10) in the
    metric's bad direction is a [Regression].  A metric seen in fewer
    than two entries is [Insufficient]. *)
let trends ?(window = 5) ?(tolerance = 0.10) entries_metrics =
  let names =
    List.concat_map (List.map fst) entries_metrics
    |> List.sort_uniq String.compare
  in
  List.map
    (fun metric ->
      let series = List.filter_map (List.assoc_opt metric) entries_metrics in
      let n = List.length series in
      match List.rev series with
      | [] ->
        {
          metric; n = 0; first = 0.; last = 0.; lo = 0.; hi = 0.;
          window_mean = None; delta_pct = None; verdict = Insufficient;
        }
      | last :: before ->
        let first = List.hd series in
        let lo = List.fold_left Float.min last series
        and hi = List.fold_left Float.max last series in
        let window_vals =
          List.filteri (fun i _ -> i < window) before
        in
        if window_vals = [] then
          {
            metric; n; first; last; lo; hi;
            window_mean = None; delta_pct = None; verdict = Insufficient;
          }
        else
          let mean =
            List.fold_left ( +. ) 0. window_vals
            /. float_of_int (List.length window_vals)
          in
          let delta =
            if Float.abs mean < 1e-12 then 0. else (last -. mean) /. mean
          in
          let bad =
            if lower_is_better metric then delta > tolerance
            else delta < -.tolerance
          in
          {
            metric; n; first; last; lo; hi;
            window_mean = Some mean;
            delta_pct = Some (delta *. 100.);
            verdict = (if bad then Regression else Ok);
          })
    names

let any_regression ts = List.exists (fun t -> t.verdict = Regression) ts

let trend_to_json t =
  Json.Obj
    [
      ("metric", Json.String t.metric);
      ("runs", Json.Int t.n);
      ("first", Json.Float t.first);
      ("last", Json.Float t.last);
      ("min", Json.Float t.lo);
      ("max", Json.Float t.hi);
      ( "window_mean",
        match t.window_mean with None -> Json.Null | Some m -> Json.Float m );
      ( "delta_pct",
        match t.delta_pct with None -> Json.Null | Some d -> Json.Float d );
      ("verdict", Json.String (verdict_string t.verdict));
    ]
