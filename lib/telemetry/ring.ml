(** A bounded ring buffer.

    Replaces the simulator's unbounded (and O(n)-prepend) [event list]
    trace: pushes are O(1), memory is capped at [capacity] elements, and
    once full the oldest element is overwritten.  The number of overwritten
    (dropped) elements is tracked so exporters can report truncation
    instead of silently pretending the trace is complete. *)

type 'a t = {
  slots : 'a option array;
  mutable head : int;  (** next write position *)
  mutable length : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: negative capacity";
  { slots = Array.make capacity None; head = 0; length = 0; dropped = 0 }

let capacity t = Array.length t.slots

let length t = t.length

let dropped t = t.dropped

let is_empty t = t.length = 0

let push t x =
  let cap = Array.length t.slots in
  if cap = 0 then t.dropped <- t.dropped + 1
  else begin
    if t.length = cap then t.dropped <- t.dropped + 1
    else t.length <- t.length + 1;
    t.slots.(t.head) <- Some x;
    t.head <- (t.head + 1) mod cap
  end

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.length <- 0;
  t.dropped <- 0

(** Oldest-first traversal. *)
let iter f t =
  let cap = Array.length t.slots in
  if t.length > 0 then
    let start = (t.head - t.length + cap) mod cap in
    for i = 0 to t.length - 1 do
      match t.slots.((start + i) mod cap) with
      | Some x -> f x
      | None -> assert false
    done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

(** Contents oldest-first. *)
let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
