(** Host-side span tracing.

    Where the metrics registry and the simulator's per-cycle accounting
    observe the {e simulated machine}, the tracer observes the {e host
    pipeline itself}: compiler and verifier passes, simulator runs,
    fuzz cases, domain-pool tasks.  A span is a named wall-clock
    interval with a category, the domain it ran on, a parent link (the
    innermost open span of the same domain) and optional JSON arguments;
    spans nest freely and may be opened concurrently from several
    domains.

    Tracing is {e disabled by default} and must cost nearly nothing when
    off: {!with_span} on an uninstalled tracer is a single atomic load
    and a branch, so instrumentation can stay unconditionally in hot
    host paths (a compiler pass, a fuzz case — not a simulated cycle).
    Enable it by {!install}ing a tracer; every instrumentation site in
    the process then records into it, from whichever domain it runs on.

    Finished spans are appended to a mutex-guarded list (spans are
    coarse, so contention is irrelevant); the per-domain stack of open
    spans lives in domain-local storage, so parent links never cross
    domains.  Export through {!to_chrome} (one thread row per domain,
    see {!Chrome_trace}) or {!Profile_tree}. *)

type span = {
  id : int;
  parent : int;  (** span id, or -1 for a root span of its domain *)
  name : string;
  cat : string;
  domain : int;  (** the domain the span ran on ([Domain.self]) *)
  t0 : float;  (** seconds since the tracer's epoch *)
  mutable t1 : float;  (** negative while the span is still open *)
  mutable args : (string * Json.t) list;
}

let duration s = if s.t1 < 0. then 0. else s.t1 -. s.t0

type t = {
  epoch : float;
  lock : Mutex.t;
  mutable finished : span list;  (** completion order, reversed *)
  counters : (string, int) Hashtbl.t;
  next_id : int Atomic.t;
}

let create () =
  {
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    finished = [];
    counters = Hashtbl.create 16;
    next_id = Atomic.make 0;
  }

(* The installed tracer.  [with_span] runs on arbitrary domains, so the
   slot must be a data-race-free single load; [Atomic.t] is exactly
   that, and when no tracer is installed the load-and-branch is the
   whole cost of an instrumentation site. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let active () = Atomic.get current

(* Per-domain stack of open spans (innermost first), for parent links.
   Worker domains spawned by the pool start with an empty stack, so
   their spans are roots of their own thread row. *)
let stack : span list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_span ?(cat = "host") ?(args = []) name f =
  match Atomic.get current with
  | None -> f ()
  | Some t ->
    let st = Domain.DLS.get stack in
    let parent = match st with [] -> -1 | s :: _ -> s.id in
    let s =
      {
        id = Atomic.fetch_and_add t.next_id 1;
        parent;
        name;
        cat;
        domain = (Domain.self () :> int);
        t0 = Unix.gettimeofday () -. t.epoch;
        t1 = -1.;
        args;
      }
    in
    Domain.DLS.set stack (s :: st);
    let finally () =
      s.t1 <- Unix.gettimeofday () -. t.epoch;
      Domain.DLS.set stack st;
      Mutex.protect t.lock (fun () -> t.finished <- s :: t.finished)
    in
    Fun.protect ~finally f

let set_arg key v =
  match Atomic.get current with
  | None -> ()
  | Some _ -> (
    match Domain.DLS.get stack with
    | [] -> ()
    | s :: _ -> s.args <- (key, v) :: List.remove_assoc key s.args)

let add_counter ?(by = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some t ->
    Mutex.protect t.lock (fun () ->
        Hashtbl.replace t.counters name
          (by + Option.value ~default:0 (Hashtbl.find_opt t.counters name)))

(** Finished spans sorted by (start time, id) — a deterministic order
    for a fixed set of spans, independent of completion interleaving. *)
let spans t =
  let ss = Mutex.protect t.lock (fun () -> t.finished) in
  List.sort
    (fun a b ->
      match Float.compare a.t0 b.t0 with 0 -> compare a.id b.id | c -> c)
    ss

let counters t =
  let kvs =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

(* ------------------------------------------------------------------ *)
(* Chrome trace export: pid [host_pid] ("host"), one thread row per
   domain.  The tid of a domain is its rank among the distinct domain
   ids appearing in the trace (sorted ascending), so tids are small,
   stable and distinct — re-exporting the same trace always yields the
   same rows. *)

let host_pid = 3

let to_chrome ?(pid = host_pid) t =
  let spans = spans t in
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.domain) spans)
  in
  let tid_of d =
    let rec rank i = function
      | [] -> i
      | d' :: rest -> if d' = d then i else rank (i + 1) rest
    in
    rank 0 domains
  in
  let us x = int_of_float (x *. 1e6) in
  let meta =
    Chrome_trace.Process_name { pid; name = "host" }
    :: List.concat_map
         (fun d ->
           let tid = tid_of d in
           [
             Chrome_trace.Thread_name
               { pid; tid; name = Printf.sprintf "domain %d" d };
             Chrome_trace.Thread_sort { pid; tid; index = tid };
           ])
         domains
  in
  let span_events =
    List.map
      (fun s ->
        Chrome_trace.Complete
          {
            name = s.name;
            cat = s.cat;
            pid;
            tid = tid_of s.domain;
            ts = us s.t0;
            dur = max 1 (us (duration s));
            args = s.args;
          })
      spans
  in
  let end_ts =
    List.fold_left (fun acc s -> max acc (us s.t1)) 0 spans
  in
  let counter_events =
    List.map
      (fun (name, v) ->
        Chrome_trace.Counter
          { name; pid; ts = end_ts; values = [ ("value", v) ] })
      (counters t)
  in
  meta @ span_events @ counter_events
