(** Self-time / total-time profiles aggregated from {!Tracer} spans by
    name path, with a sorted hot list. *)

type node = {
  name : string;
  count : int;  (** spans folded into this node *)
  total : float;  (** summed wall-clock seconds *)
  self : float;  (** total minus children's totals, clamped at 0 *)
  children : node list;  (** sorted by total, descending *)
}

(** Aggregate a span list into a forest (one root per distinct root
    span name). *)
val of_spans : Tracer.span list -> node list

val total_seconds : node list -> float

(** Structural invariant: children's totals (and self times) never sum
    past their parent's total, up to [eps] seconds per node. *)
val well_formed : ?eps:float -> node list -> bool

(** Flattened ("a/b/c", count, total, self) rows, sorted by self time
    descending. *)
val hot_list : node list -> (string * int * float * float) list

val to_json : node list -> Json.t

(** Tree render plus the [hot] hottest-by-self rows (default 10; 0
    suppresses the hot list). *)
val pp : ?hot:int -> Format.formatter -> node list -> unit
