(** Chrome [trace_event] export ([chrome://tracing] / Perfetto).
    Timestamps and durations are in microseconds. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : int;
      dur : int;
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : int;
      args : (string * Json.t) list;
    }
  | Counter of {
      name : string;
      pid : int;
      ts : int;
      values : (string * int) list;
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }
  | Thread_sort of { pid : int; tid : int; index : int }

val event_json : event -> Json.t

(** The [{"traceEvents": [...]}] object format. *)
val to_json : event list -> Json.t

val to_string : event list -> string
val to_channel : out_channel -> event list -> unit
