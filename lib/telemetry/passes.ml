(** Wall-clock timing of named pipeline stages.

    The compiler wraps each pass in {!time}; the recorder keeps (name,
    seconds) in execution order for the telemetry report and the Chrome
    trace's compiler lane.  Timing uses [Unix.gettimeofday]: per-pass
    wall-clock seconds, meaningful even when several compilations run
    concurrently on {!Finepar_exec.Pool} domains (a process-wide CPU
    clock would attribute other domains' work to the pass being
    timed). *)

type t = { mutable entries : (string * float) list (** reversed *) }

let create () = { entries = [] }

(* Each pass is also a [Tracer] span (category "pass"), so with a
   tracer installed the flat list doubles as a span tree under the
   caller's enclosing span; with none installed [with_span] is a single
   atomic load. *)
let time t name f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    t.entries <- (name, Unix.gettimeofday () -. t0) :: t.entries
  in
  Fun.protect ~finally (fun () -> Tracer.with_span ~cat:"pass" name f)

(** (pass, seconds) in execution order. *)
let to_list t = List.rev t.entries

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. t.entries

let to_json t =
  Json.List
    (List.map
       (fun (name, s) ->
         Json.Obj [ ("pass", Json.String name); ("seconds", Json.Float s) ])
       (to_list t))
