(** Host-side span tracing: nestable, domain-aware wall-clock spans and
    counters over the host pipeline (compiler passes, pool tasks, fuzz
    cases, simulator runs).  Disabled by default; when no tracer is
    {!install}ed, {!with_span} costs one atomic load and a branch. *)

type span = {
  id : int;
  parent : int;  (** span id, or -1 for a root span of its domain *)
  name : string;
  cat : string;
  domain : int;  (** the domain the span ran on ([Domain.self]) *)
  t0 : float;  (** seconds since the tracer's epoch *)
  mutable t1 : float;  (** negative while the span is still open *)
  mutable args : (string * Json.t) list;
}

(** Span wall-clock duration in seconds (0 while still open). *)
val duration : span -> float

type t

val create : unit -> t

(** Install [t] as the process-wide sink: every {!with_span} site in
    every domain records into it until {!uninstall}. *)
val install : t -> unit

val uninstall : unit -> unit
val active : unit -> t option

(** [with_span ?cat ?args name f] runs [f]; when a tracer is installed,
    its wall-clock interval is recorded as a span on the calling
    domain, nested under that domain's innermost open span.  The span
    is recorded even if [f] raises. *)
val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Attach/overwrite an argument on the calling domain's innermost open
    span (no-op when tracing is off or no span is open). *)
val set_arg : string -> Json.t -> unit

(** Bump a named counter on the installed tracer (no-op when off). *)
val add_counter : ?by:int -> string -> unit

(** Finished spans sorted by (start time, id). *)
val spans : t -> span list

(** Counter totals sorted by name. *)
val counters : t -> (string * int) list

(** The pid used for the host process in Chrome traces (the simulator
    uses 0 = cores, 1 = queues, 2 = compiler lane). *)
val host_pid : int

(** Chrome trace_event export: one [Process_name] for the host, one
    [Thread_name]/[Thread_sort] pair per domain, and a [Complete] event
    per span on its domain's thread row.  A domain's tid is its rank
    among the distinct domain ids in the trace — stable and distinct. *)
val to_chrome : ?pid:int -> t -> Chrome_trace.event list
