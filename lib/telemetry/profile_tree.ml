(** Self-time / total-time profiles over {!Tracer} spans.

    Spans are aggregated by {e path} — the chain of span names from a
    domain root down to the span — so two "verify" passes under two
    different "compile" spans fold into one node, while a "verify" span
    elsewhere in the tree stays separate.  Each node carries the number
    of spans folded into it, their summed wall-clock total, and the
    {e self} time: total minus the children's totals, clamped at zero
    (children are temporally nested inside their parent, so the clamp
    only absorbs clock jitter).

    By construction, for every node the sum of its children's totals —
    and therefore of their self times — never exceeds the node's own
    total (the invariant {!well_formed} checks and a unit test
    asserts). *)

type node = {
  name : string;
  count : int;  (** spans folded into this node *)
  total : float;  (** summed wall-clock seconds *)
  self : float;  (** total minus children's totals, clamped at 0 *)
  children : node list;  (** sorted by total, descending *)
}

(* Mutable assembly node, keyed by child name. *)
type builder = {
  mutable b_count : int;
  mutable b_total : float;
  b_children : (string, builder) Hashtbl.t;
}

let new_builder () =
  { b_count = 0; b_total = 0.; b_children = Hashtbl.create 4 }

let child_of b name =
  match Hashtbl.find_opt b.b_children name with
  | Some c -> c
  | None ->
    let c = new_builder () in
    Hashtbl.add b.b_children name c;
    c

let rec freeze name b =
  let children =
    Hashtbl.fold (fun n c acc -> freeze n c :: acc) b.b_children []
    |> List.sort (fun a b ->
           match Float.compare b.total a.total with
           | 0 -> String.compare a.name b.name
           | c -> c)
  in
  let child_total = List.fold_left (fun acc c -> acc +. c.total) 0. children in
  {
    name;
    count = b.b_count;
    total = b.b_total;
    self = Float.max 0. (b.b_total -. child_total);
    children;
  }

(** Build the aggregated profile forest from a span list.  Roots are
    spans with no parent (each domain's outermost spans). *)
let of_spans (spans : Tracer.span list) =
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun (s : Tracer.span) -> Hashtbl.replace by_id s.Tracer.id s) spans;
  (* Path from root to span, by walking parent links. *)
  let rec path (s : Tracer.span) acc =
    let acc = s.Tracer.name :: acc in
    match Hashtbl.find_opt by_id s.Tracer.parent with
    | Some p -> path p acc
    | None -> acc
  in
  let root = new_builder () in
  List.iter
    (fun (s : Tracer.span) ->
      let b = List.fold_left child_of root (path s []) in
      b.b_count <- b.b_count + 1;
      b.b_total <- b.b_total +. Tracer.duration s)
    spans;
  (freeze "root" root).children

let total_seconds roots = List.fold_left (fun acc n -> acc +. n.total) 0. roots

(** Every node's children must not out-total it (allowing [eps] seconds
    of clock jitter per node), and self must be non-negative. *)
let well_formed ?(eps = 1e-9) roots =
  let rec ok n =
    let child_total = List.fold_left (fun acc c -> acc +. c.total) 0. n.children in
    let child_self = List.fold_left (fun acc c -> acc +. c.self) 0. n.children in
    n.self >= 0.
    && child_total <= n.total +. eps
    && child_self <= n.total +. eps
    && List.for_all ok n.children
  in
  List.for_all ok roots

(** Flattened ("a/b/c" path, count, total, self) rows sorted by self
    time, descending — the hot list. *)
let hot_list roots =
  let rows = ref [] in
  let rec walk prefix n =
    let p = if prefix = "" then n.name else prefix ^ "/" ^ n.name in
    rows := (p, n.count, n.total, n.self) :: !rows;
    List.iter (walk p) n.children
  in
  List.iter (walk "") roots;
  List.sort
    (fun (pa, _, _, sa) (pb, _, _, sb) ->
      match Float.compare sb sa with 0 -> String.compare pa pb | c -> c)
    !rows

let rec node_to_json n =
  Json.Obj
    [
      ("name", Json.String n.name);
      ("count", Json.Int n.count);
      ("total_seconds", Json.Float n.total);
      ("self_seconds", Json.Float n.self);
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json roots =
  Json.Obj
    [
      ("total_seconds", Json.Float (total_seconds roots));
      ("tree", Json.List (List.map node_to_json roots));
      ( "hot",
        Json.List
          (List.map
             (fun (path, count, total, self) ->
               Json.Obj
                 [
                   ("path", Json.String path);
                   ("count", Json.Int count);
                   ("total_seconds", Json.Float total);
                   ("self_seconds", Json.Float self);
                 ])
             (hot_list roots)) );
    ]

let pp ?(hot = 10) ppf roots =
  Format.fprintf ppf "%10s %10s %7s  %s@." "total(ms)" "self(ms)" "count"
    "span";
  let rec walk depth n =
    Format.fprintf ppf "%10.3f %10.3f %7d  %s%s@." (n.total *. 1e3)
      (n.self *. 1e3) n.count
      (String.make (2 * depth) ' ')
      n.name;
    List.iter (walk (depth + 1)) n.children
  in
  List.iter (walk 0) roots;
  let rows = hot_list roots in
  if hot > 0 && rows <> [] then begin
    Format.fprintf ppf "@.hottest by self time:@.";
    List.iteri
      (fun i (path, count, _, self) ->
        if i < hot then
          Format.fprintf ppf "%10.3f %7d  %s@." (self *. 1e3) count path)
      rows
  end
