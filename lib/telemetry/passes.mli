(** Wall-clock timing of named pipeline stages. *)

type t

val create : unit -> t

(** [time t name f] runs [f] and records its duration under [name]
    (recorded even if [f] raises). *)
val time : t -> string -> (unit -> 'a) -> 'a

(** (pass, seconds) in execution order. *)
val to_list : t -> (string * float) list

val total : t -> float
val to_json : t -> Json.t
