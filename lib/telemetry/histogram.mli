(** Fixed-bucket integer histograms (Prometheus-style: increasing
    inclusive upper bounds plus an implicit overflow bucket). *)

type t

(** [create ~bounds] with strictly increasing inclusive upper bounds;
    raises [Invalid_argument] on an empty or non-increasing array. *)
val create : bounds:int array -> t

(** Upper bounds 1, 2, 4, ... doubling [n] times. *)
val exponential_bounds : int -> int array

(** Upper bounds 1, 2, ..., [n]. *)
val linear_bounds : int -> int array

(** Rebuild a histogram from serialized parts — the inverse of reading
    back {!buckets} (without the overflow sentinel bound), {!sum},
    {!min_value} and {!max_value}.  [counts] must have length
    [Array.length bounds + 1] (the overflow bucket); raises
    [Invalid_argument] on a length mismatch or when [min_value]/
    [max_value] presence disagrees with the counts being all zero. *)
val restore :
  bounds:int array ->
  counts:int array ->
  sum:int ->
  min_value:int option ->
  max_value:int option ->
  t

val observe : t -> int -> unit
val count : t -> int
val sum : t -> int
val min_value : t -> int option
val max_value : t -> int option
val mean : t -> float option

(** [percentile t q] for [q] in [0, 100]: the inclusive upper bound of
    the bucket holding the rank-[ceil (q/100 * count)] observation,
    clamped into [[min_value, max_value]] (so a single-sample histogram
    reports its one value at every percentile and the overflow bucket
    reports the observed maximum).  [None] on an empty histogram;
    raises [Invalid_argument] outside [0, 100]. *)
val percentile : t -> float -> int option

(** (inclusive upper bound, count) per bucket, overflow reported with
    bound [max_int]. *)
val buckets : t -> (int * int) list

(** Sum of all bucket counts; always equals [count]. *)
val bucket_total : t -> int

(** Accumulate [t] into [into]; both must share the same bounds. *)
val merge_into : into:t -> t -> unit

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
