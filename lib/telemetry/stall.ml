(** Stall reasons, shared between the simulator and the exporters.

    Replaces the simulator's former string-typed reasons: a variant can be
    matched exhaustively, carries the queue id for queue stalls, and maps
    onto a small dense class index for per-class counters and histograms. *)

type t =
  | Operand  (** an input register's result is not ready yet *)
  | Queue_full of int  (** enqueue blocked; payload is the queue id *)
  | Queue_empty of int
      (** dequeue blocked (empty, or head still in transfer); queue id *)

(** Dense class index (queue id erased): 0 = operand, 1 = queue full,
    2 = queue empty.  Used to bucket per-class counters. *)
let class_index = function
  | Operand -> 0
  | Queue_full _ -> 1
  | Queue_empty _ -> 2

let n_classes = 3

let class_name = function
  | 0 -> "operand"
  | 1 -> "queue-full"
  | 2 -> "queue-empty"
  | i -> invalid_arg (Printf.sprintf "Stall.class_name: %d" i)

let to_string = function
  | Operand -> "operand"
  | Queue_full q -> Printf.sprintf "queue-full q%d" q
  | Queue_empty q -> Printf.sprintf "queue-empty q%d" q

(** The queue involved, if any. *)
let queue_of = function
  | Operand -> None
  | Queue_full q | Queue_empty q -> Some q

let equal (a : t) (b : t) = a = b

let pp ppf r = Format.pp_print_string ppf (to_string r)
