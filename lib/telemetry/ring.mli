(** A bounded ring buffer with O(1) push; overwrites the oldest element
    when full and counts how many were dropped. *)

type 'a t

(** [create ~capacity] makes an empty ring.  A zero-capacity ring drops
    every push (and counts them). *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Elements overwritten (or refused, for capacity 0) so far. *)
val dropped : 'a t -> int

val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

(** Oldest-first. *)
val iter : ('a -> unit) -> 'a t -> unit

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** Contents oldest-first. *)
val to_list : 'a t -> 'a list
