(** A minimal JSON document type and serializer (emit-only). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; strings escaped per RFC 8259, non-finite floats become
    [null]. *)
val to_string : t -> string

val to_channel : out_channel -> t -> unit
