(** A minimal JSON document type, serializer and strict parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; strings escaped per RFC 8259, non-finite floats become
    [null]. *)
val to_string : t -> string

val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Strict RFC 8259 parsing of one document.  Plain integer literals
    become [Int]; literals with a fraction or exponent become [Float].
    The error string includes the byte offset. *)

val of_channel : in_channel -> (t, string) result
(** {!of_string} over the channel's remaining contents. *)
