(** A typed metrics registry.

    Three metric kinds — monotonically increasing counters, free-floating
    gauges, and integer {!Histogram}s — registered under a name plus an
    ordered label list ([("core", "0")], [("queue", "3")], ...).
    Registration is find-or-create on (name, labels), so re-registering
    returns the existing instrument instead of shadowing it.

    A registry snapshot serializes to JSON (one object per sample) and to
    CSV (one row per sample, histograms flattened to count/sum/min/max)
    for downstream tooling. *)

type labels = (string * string) list

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type value =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type sample = { name : string; labels : labels; value : value }

type t = {
  tbl : (string * labels, sample) Hashtbl.t;
  mutable order : (string * labels) list;  (** registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let register t name labels mk =
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
    let s = { name; labels; value = mk () } in
    Hashtbl.replace t.tbl key s;
    t.order <- key :: t.order;
    s

let kind_mismatch name =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with another kind" name)

let counter t ?(labels = []) name =
  match (register t name labels (fun () -> Counter { c_value = 0 })).value with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_mismatch name

let gauge t ?(labels = []) name =
  match (register t name labels (fun () -> Gauge { g_value = 0. })).value with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_mismatch name

let histogram t ?(labels = []) ~bounds name =
  match
    (register t name labels (fun () -> Histogram (Histogram.create ~bounds)))
      .value
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_mismatch name

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters only increase";
  c.c_value <- c.c_value + by

let counter_value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

(** Samples in registration order. *)
let samples t =
  List.rev_map (fun key -> Hashtbl.find t.tbl key) t.order

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let label_string labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)

let to_json t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("kind", Json.String (kind_name s.value));
             ( "labels",
               Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.labels)
             );
             ( "value",
               match s.value with
               | Counter c -> Json.Int c.c_value
               | Gauge g -> Json.Float g.g_value
               | Histogram h -> Histogram.to_json h );
           ])
       (samples t))

(** CSV with a fixed header: name,labels,kind,value,count,sum,min,max.
    Counters and gauges fill [value]; histograms fill count/sum/min/max. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,labels,kind,value,count,sum,min,max\n";
  List.iter
    (fun s ->
      let labels = label_string s.labels in
      (match s.value with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,counter,%d,,,,\n" s.name labels c.c_value)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,gauge,%g,,,,\n" s.name labels g.g_value)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,histogram,,%d,%d,%s,%s\n" s.name labels
             (Histogram.count h) (Histogram.sum h)
             (match Histogram.min_value h with
             | Some v -> string_of_int v
             | None -> "")
             (match Histogram.max_value h with
             | Some v -> string_of_int v
             | None -> ""))))
    (samples t);
  Buffer.contents buf
