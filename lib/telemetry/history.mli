(** Append-only benchmark history (JSON Lines) and rolling-window
    trends (see [bench/history.jsonl] and [finepar perf-report]). *)

(** Append one JSON object as a line (creates the file and its parent
    directory as needed). *)
val append : path:string -> Json.t -> unit

(** Parse every non-blank line of the file; the first malformed line
    (or an unreadable file) is an error. *)
val load : path:string -> (Json.t list, string) result

(** A well-formed history line: timestamp, label, pool width, and a
    flat object of scalar metrics. *)
val entry :
  time:float -> label:string -> jobs:int -> metrics:(string * float) list ->
  Json.t

(** The flat metric list of one history line ([] when malformed). *)
val metrics_of : Json.t -> (string * float) list

(** Flatten a bench [--json] document ({"sections": {...}}) to scalar
    ("section.metric", value) pairs: an object section keeps its
    top-level numeric members; a list section is averaged per numeric
    field, except lists of named singletons (the bechamel wallclock
    shape) which keep per-name values. *)
val summarize_sections : Json.t -> (string * float) list

(** Whether a metric regresses by going {e up} (durations, the pool
    imbalance ratio) rather than down (speedups, throughputs). *)
val lower_is_better : string -> bool

type verdict = Ok | Regression | Insufficient

type trend = {
  metric : string;
  n : int;  (** runs carrying this metric *)
  first : float;
  last : float;
  lo : float;
  hi : float;
  window_mean : float option;
      (** mean of up to [window] runs preceding the last *)
  delta_pct : float option;  (** last vs window mean, percent *)
  verdict : verdict;
}

val verdict_string : verdict -> string

(** Per-metric trends over history entries in file order; the last
    entry is judged against the mean of up to [window] (default 5)
    preceding entries with fractional [tolerance] (default 0.10). *)
val trends :
  ?window:int -> ?tolerance:float -> (string * float) list list -> trend list

val any_regression : trend list -> bool
val trend_to_json : trend -> Json.t
