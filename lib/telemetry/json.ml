(** A minimal JSON document type and serializer.

    The telemetry exporters (metrics snapshots, Chrome traces, bench
    metrics) only ever need to *emit* JSON, so there is no parser and no
    external dependency.  Serialization is strict: strings are escaped per
    RFC 8259 and non-finite floats are emitted as [null] (JSON has no
    representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else
    (* %.17g round-trips any double and is always valid JSON syntax. *)
    Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 65536 in
  write buf j;
  Buffer.output_buffer oc buf
