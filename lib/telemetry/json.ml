(** A minimal JSON document type, serializer and parser.

    The telemetry exporters (metrics snapshots, Chrome traces, bench
    metrics) emit JSON; the bench regression gate ([test/check_bench.ml])
    reads its checked-in baseline back, so there is also a small strict
    RFC 8259 parser — still no external dependency.  Serialization is
    strict: strings are escaped per RFC 8259 and non-finite floats are
    emitted as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else
    (* %.17g round-trips any double and is always valid JSON syntax. *)
    Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 65536 in
  write buf j;
  Buffer.output_buffer oc buf

(* ------------------------------------------------------------------ *)
(* Parsing.  Recursive descent over the string; a numeric literal
   becomes [Int] when it is written as a plain integer (no fraction or
   exponent) and fits, [Float] otherwise, matching what the serializer
   produces for each. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let code =
                 match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                 | Some c -> c
                 | None -> error "bad \\u escape"
               in
               pos := !pos + 4;
               Buffer.add_utf_8_uchar buf
                 (if Uchar.is_valid code then Uchar.of_int code
                  else Uchar.rep)
             | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then error "expected digit"
    in
    let int_start = !pos in
    digits ();
    (* RFC 8259: no leading zeros ("01" is two tokens, i.e. invalid). *)
    if !pos - int_start > 1 && s.[int_start] = '0' then
      error "leading zero in number";
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      digits ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (members [])
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "at offset %d: %s" p msg)

let of_channel ic =
  of_string (In_channel.input_all ic)
