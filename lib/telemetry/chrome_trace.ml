(** Chrome [trace_event] export.

    Produces the JSON object format understood by [chrome://tracing] and
    Perfetto: a top-level [{"traceEvents": [...]}] with complete ("X"),
    instant ("i"), counter ("C") and metadata ("M") events.  Timestamps
    and durations are in microseconds; the simulator maps one cycle to one
    microsecond so the viewer's time axis reads directly in cycles. *)

type event =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : int;  (** microseconds *)
      dur : int;
      args : (string * Json.t) list;
    }
  | Instant of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts : int;
      args : (string * Json.t) list;
    }
  | Counter of {
      name : string;
      pid : int;
      ts : int;
      values : (string * int) list;  (** series name -> value *)
    }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }
  | Thread_sort of { pid : int; tid : int; index : int }

let args_json = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete { name; cat; pid; tid; ts; dur; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "X");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Int ts);
         ("dur", Json.Int dur);
       ]
      @ args_json args)
  | Instant { name; cat; pid; tid; ts; args } ->
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "i");
         ("s", Json.String "t");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Int ts);
       ]
      @ args_json args)
  | Counter { name; pid; ts; values } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("ts", Json.Int ts);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) values));
      ]
  | Process_name { pid; name } ->
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_name { pid; tid; name } ->
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  | Thread_sort { pid; tid; index } ->
    Json.Obj
      [
        ("name", Json.String "thread_sort_index");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("sort_index", Json.Int index) ]);
      ]

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string events = Json.to_string (to_json events)

let to_channel oc events = Json.to_channel oc (to_json events)
