(** Fixed-bucket integer histograms.

    Buckets are defined by an increasing array of inclusive upper bounds
    plus an implicit overflow bucket, mirroring the Prometheus histogram
    layout.  [observe] is O(log buckets), cheap enough for the simulator's
    hot path (queue occupancy is sampled on every enqueue). *)

type t = {
  bounds : int array;  (** strictly increasing inclusive upper bounds *)
  counts : int array;  (** length = Array.length bounds + 1 (overflow) *)
  mutable count : int;  (** total observations *)
  mutable sum : int;  (** sum of observed values *)
  mutable min : int;
  mutable max : int;
}

let create ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Histogram.create: no buckets";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Histogram.create: bounds must be strictly increasing"
  done;
  {
    bounds = Array.copy bounds;
    counts = Array.make (n + 1) 0;
    count = 0;
    sum = 0;
    min = max_int;
    max = min_int;
  }

(** Upper bounds 1, 2, 4, ... doubling [n] times — the natural scale for
    cycle durations. *)
let exponential_bounds n =
  if n <= 0 then invalid_arg "Histogram.exponential_bounds";
  Array.init n (fun i -> 1 lsl i)

(** Upper bounds 1, 2, ..., [n] — the natural scale for queue occupancy,
    which is capped at the queue length. *)
let linear_bounds n =
  if n <= 0 then invalid_arg "Histogram.linear_bounds";
  Array.init n (fun i -> i + 1)

(* Rebuild a histogram from its serialized parts (see {!Service.Wire}):
   the caller supplies exactly what [buckets]/[sum]/[min_value]/[max_value]
   expose, so [restore (decompose t)] observes the same state as [t]. *)
let restore ~bounds ~counts ~sum:s ~min_value:mn ~max_value:mx =
  let n = Array.length bounds in
  if Array.length counts <> n + 1 then
    invalid_arg "Histogram.restore: counts must have length bounds + 1";
  let t = create ~bounds in
  Array.blit counts 0 t.counts 0 (n + 1);
  t.count <- Array.fold_left ( + ) 0 counts;
  t.sum <- s;
  (match mn with Some v -> t.min <- v | None -> ());
  (match mx with Some v -> t.max <- v | None -> ());
  if (t.count = 0) <> (mn = None && mx = None) then
    invalid_arg "Histogram.restore: min/max inconsistent with counts";
  t

(* Index of the first bucket whose bound is >= v (binary search), or the
   overflow bucket. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  let i = bucket_index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then None else Some t.min
let max_value t = if t.count = 0 then None else Some t.max

let mean t =
  if t.count = 0 then None else Some (float_of_int t.sum /. float_of_int t.count)

(* Prometheus-style quantile estimate over the bucket layout: the
   inclusive upper bound of the first bucket holding the rank-th
   observation, clamped into [min, max] so degenerate histograms stay
   exact — a single-sample histogram reports its one value at every
   percentile, and the overflow bucket (bound [max_int]) reports the
   observed maximum instead of infinity. *)
let percentile t q =
  if Float.is_nan q || q < 0. || q > 100. then
    invalid_arg "Histogram.percentile: q outside [0, 100]";
  if t.count = 0 then None
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q /. 100. *. float_of_int t.count)))
    in
    let n = Array.length t.bounds in
    let rec go i cum =
      let cum = cum + t.counts.(i) in
      if cum >= rank || i = n then
        if i < n then t.bounds.(i) else max_int
      else go (i + 1) cum
    in
    Some (Stdlib.min t.max (Stdlib.max t.min (go 0 0)))
  end

(** (inclusive upper bound, count) per bucket; the overflow bucket is
    reported with bound [max_int]. *)
let buckets t =
  Array.to_list
    (Array.mapi
       (fun i c ->
         ((if i < Array.length t.bounds then t.bounds.(i) else max_int), c))
       t.counts)

(** Sum of all bucket counts; always equals [count]. *)
let bucket_total t = Array.fold_left ( + ) 0 t.counts

let merge_into ~into t =
  if into.bounds <> t.bounds then invalid_arg "Histogram.merge_into: bounds differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.count <- into.count + t.count;
  into.sum <- into.sum + t.sum;
  if t.count > 0 then begin
    if t.min < into.min then into.min <- t.min;
    if t.max > into.max then into.max <- t.max
  end

let to_json t =
  let pct q =
    match percentile t q with None -> Json.Null | Some v -> Json.Int v
  in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", if t.count = 0 then Json.Null else Json.Int t.min);
      ("max", if t.count = 0 then Json.Null else Json.Int t.max);
      ("p50", pct 50.);
      ("p90", pct 90.);
      ("p99", pct 99.);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) ->
               Json.Obj
                 [
                   ( "le",
                     if le = max_int then Json.String "+inf" else Json.Int le );
                   ("count", Json.Int c);
                 ])
             (buckets t)) );
    ]

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "n=%d sum=%d min=%d max=%d [" t.count t.sum t.min t.max;
    List.iteri
      (fun i (le, c) ->
        if i > 0 then Format.fprintf ppf " ";
        if le = max_int then Format.fprintf ppf "inf:%d" c
        else Format.fprintf ppf "%d:%d" le c)
      (buckets t);
    Format.fprintf ppf "]"
  end
