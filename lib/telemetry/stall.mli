(** Stall reasons, shared between the simulator and the exporters. *)

type t =
  | Operand  (** an input register's result is not ready yet *)
  | Queue_full of int  (** enqueue blocked; payload is the queue id *)
  | Queue_empty of int
      (** dequeue blocked (empty, or head still in transfer); queue id *)

(** Dense class index (queue id erased): 0 = operand, 1 = queue full,
    2 = queue empty. *)
val class_index : t -> int

val n_classes : int

(** Name of a class index; raises [Invalid_argument] outside
    [0, n_classes). *)
val class_name : int -> string

val to_string : t -> string

(** The queue involved, if any. *)
val queue_of : t -> int option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
