(** A typed metrics registry: counters, gauges and integer histograms
    registered under (name, labels); find-or-create semantics. *)

type labels = (string * string) list

type counter
type gauge

type value =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type sample = { name : string; labels : labels; value : value }

type t

val create : unit -> t

(** Find-or-create.  Raises [Invalid_argument] if (name, labels) is
    already registered as a different kind. *)
val counter : t -> ?labels:labels -> string -> counter

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> bounds:int array -> string -> Histogram.t

(** Counters only increase; [incr ~by] with negative [by] raises. *)
val incr : ?by:int -> counter -> unit

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Samples in registration order. *)
val samples : t -> sample list

val kind_name : value -> string
val to_json : t -> Json.t

(** CSV with header [name,labels,kind,value,count,sum,min,max]. *)
val to_csv : t -> string
