(** A work-stealing domain pool for the embarrassingly parallel fan-outs
    of the harness: per-kernel experiment rows, bench sections and fuzz
    campaign cases.

    Results are merged by task index, never by completion order, so a
    parallel {!map} returns exactly what [List.map] returns — callers can
    (and the CI does) diff sequential and parallel outputs byte for byte.

    The parallelism degree comes from, in priority order: the [?domains]
    argument, the [FINEPAR_DOMAINS] environment variable, and
    [Domain.recommended_domain_count () - 1] (leaving one core for the
    coordinating domain).  At one domain every operation degrades to plain
    sequential execution with identical semantics. *)

exception Nested_map
(** Raised when a task running inside {!map} calls {!map} on the same
    pool.  Domains must not be nested (OCaml domains are heavyweight);
    parallelize at one level of the fan-out and keep the inner levels
    sequential. *)

type t

type stats = {
  domains : int;  (** pool width (worker slots) *)
  runs : int;  (** {!map} calls that executed at least one task *)
  run_seconds : float;  (** wall-clock time spent inside those calls *)
  tasks : int;  (** tasks executed, across all runs *)
  steals : int;  (** tasks taken from another worker's deque *)
  steal_failures : int;  (** steal attempts that found an empty deque *)
  busy_seconds : float;  (** summed over workers: time inside tasks *)
  idle_seconds : float;  (** summed over workers: in-run time not in tasks *)
  worker_tasks : int array;  (** per-slot task counts (length [domains]) *)
  worker_busy : float array;  (** per-slot busy seconds (length [domains]) *)
  imbalance : float;
      (** max busy / mean busy over workers that ran at least one task:
          1.0 is a perfectly even split, [domains] is one worker doing
          everything; 1.0 when the pool has not run. *)
}
(** Cumulative execution statistics, accumulated across {!map} calls
    since pool creation (or the last {!reset_stats}).  Sequential
    degradation (one domain, or 0/1 tasks) is counted too — the run is
    attributed to worker slot 0 with zero steals and zero idle — so
    [tasks] always equals the total number of elements mapped. *)

val stats : t -> stats
(** A consistent snapshot; thread-safe.  Timing uses wall-clock
    ([Unix.gettimeofday]), matching the rest of the telemetry layer. *)

val reset_stats : t -> unit

val default_domains : unit -> int
(** [FINEPAR_DOMAINS] if set to a positive integer, else
    [max 1 (Domain.recommended_domain_count () - 1)]. *)

val create : ?domains:int -> unit -> t
(** A pool that runs [domains] tasks concurrently (clamped to at least
    1; default {!default_domains}).  Worker domains are spawned per
    top-level {!map} call and joined before it returns, so a pool value
    holds no OS resources and never needs a shutdown. *)

val domains : t -> int

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map pool ~f xs] applies [f] to every element of [xs], distributing
    elements over the pool's domains with per-domain work queues and
    work stealing.  Semantics match [List.map f xs]:

    - the result list is in input order (merged by task index);
    - every task runs even when another task raises;
    - if any tasks raised, the exception of the {e lowest-indexed}
      failing task is re-raised (with its backtrace) after all tasks
      finished, so the raised exception does not depend on scheduling.

    [f] must be safe to run from multiple domains: no unsynchronized
    shared mutable state.  Calling [map] on a pool from inside one of
    its own tasks raises {!Nested_map} (see above). *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce pool ~map ~fold ~init xs] is
    [List.fold_left fold init (List.map map xs)] with the map phase
    parallel.  The fold runs on the calling domain in input order, so it
    needs no associativity and the result is deterministic. *)

val map_opt : t option -> f:('a -> 'b) -> 'a list -> 'b list
(** [map_opt (Some pool) ~f xs = map pool ~f xs];
    [map_opt None ~f xs = List.map f xs].  Convenience for the [?pool]
    optional arguments threaded through the experiment drivers. *)
