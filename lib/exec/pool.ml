exception Nested_map

type t = {
  n_domains : int;
  busy : bool Atomic.t;
      (* set while a parallel [map] is running; nested calls on the same
         pool would spawn domains from inside domains, so they are
         rejected instead (see the .mli) *)
}

let env_domains () =
  match Sys.getenv_opt "FINEPAR_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let create ?domains () =
  let n_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  { n_domains; busy = Atomic.make false }

let domains t = t.n_domains

(* ------------------------------------------------------------------ *)
(* The work-stealing scheduler.  Task indices are dealt out in
   contiguous blocks, one per worker; a worker consumes its own block
   from the low end and, once empty, steals from the high end of the
   fullest other block.  Each deque is a [lo, hi) window over the task
   index range, guarded by its own mutex — tasks here are coarse
   (a kernel compile + simulation, a fuzz case), so contention on these
   tiny critical sections is irrelevant. *)

type deque = { lock : Mutex.t; mutable lo : int; mutable hi : int }

let pop_own d =
  Mutex.protect d.lock (fun () ->
      if d.lo < d.hi then (
        let i = d.lo in
        d.lo <- i + 1;
        Some i)
      else None)

let steal d =
  Mutex.protect d.lock (fun () ->
      if d.lo < d.hi then (
        let i = d.hi - 1 in
        d.hi <- i;
        Some i)
      else None)

let parallel_run ~workers ~n task =
  let chunk = (n + workers - 1) / workers in
  let deques =
    Array.init workers (fun w ->
        {
          lock = Mutex.create ();
          lo = min n (w * chunk);
          hi = min n ((w + 1) * chunk);
        })
  in
  (* Own deque first, then the others in round-robin order.  No task
     spawns further tasks, so a full scan finding every deque empty
     means the run is over. *)
  let rec next w tries =
    if tries >= workers then None
    else
      let v = w + tries in
      let victim = if v >= workers then v - workers else v in
      match
        if tries = 0 then pop_own deques.(victim) else steal deques.(victim)
      with
      | Some i -> Some i
      | None -> next w (tries + 1)
  in
  let rec worker w =
    match next w 0 with
    | Some i ->
      task i;
      worker w
    | None -> ()
  in
  let helpers =
    Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  let main_exn =
    (* [task] never raises (exceptions are captured into the result
       slot), but guard anyway so helper domains are always joined. *)
    match worker 0 with () -> None | exception e -> Some e
  in
  Array.iter Domain.join helpers;
  match main_exn with None -> () | Some e -> raise e

let map pool ~f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  let task i =
    results.(i) <-
      Some
        (match f arr.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  let workers = min pool.n_domains n in
  (if workers <= 1 then begin
     (* Sequential degradation (one domain, or 0/1 tasks).  A busy
        multi-domain pool still rejects, so nesting behaviour does not
        depend on the length of the inner list. *)
     if pool.n_domains > 1 && Atomic.get pool.busy then raise Nested_map;
     for i = 0 to n - 1 do
       task i
     done
   end
   else begin
     if not (Atomic.compare_and_set pool.busy false true) then
       raise Nested_map;
     Fun.protect
       ~finally:(fun () -> Atomic.set pool.busy false)
       (fun () -> parallel_run ~workers ~n task)
   end);
  (* Merge by task index: re-raise the lowest-indexed failure (so the
     observed exception is independent of scheduling), else return the
     values in input order. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> assert false)
    results;
  Array.to_list
    (Array.map
       (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
       results)

let map_reduce pool ~map:m ~fold ~init xs =
  List.fold_left fold init (map pool ~f:m xs)

let map_opt pool ~f xs =
  match pool with None -> List.map f xs | Some p -> map p ~f xs
