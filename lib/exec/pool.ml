exception Nested_map

type stats = {
  domains : int;
  runs : int;
  run_seconds : float;
  tasks : int;
  steals : int;
  steal_failures : int;
  busy_seconds : float;
  idle_seconds : float;
  worker_tasks : int array;
  worker_busy : float array;
  imbalance : float;
}

type t = {
  n_domains : int;
  busy : bool Atomic.t;
      (* set while a parallel [map] is running; nested calls on the same
         pool would spawn domains from inside domains, so they are
         rejected instead (see the .mli) *)
  stats_lock : Mutex.t;
  mutable runs : int;
  mutable run_seconds : float;
  acc_tasks : int array;  (** all acc_ arrays are length [n_domains] *)
  acc_steals : int array;
  acc_steal_failures : int array;
  acc_busy : float array;
  acc_idle : float array;
}

let env_domains () =
  match Sys.getenv_opt "FINEPAR_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let create ?domains () =
  let n_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  {
    n_domains;
    busy = Atomic.make false;
    stats_lock = Mutex.create ();
    runs = 0;
    run_seconds = 0.;
    acc_tasks = Array.make n_domains 0;
    acc_steals = Array.make n_domains 0;
    acc_steal_failures = Array.make n_domains 0;
    acc_busy = Array.make n_domains 0.;
    acc_idle = Array.make n_domains 0.;
  }

let domains t = t.n_domains

(* Imbalance = max busy / mean busy over workers that ran at least one
   task: 1.0 is a perfectly even split, [workers] is one worker doing
   everything.  An idle pool reports 1.0. *)
let imbalance_of ~tasks ~busy =
  let n = Array.length busy in
  let sum = ref 0. and mx = ref 0. and active = ref 0 in
  for w = 0 to n - 1 do
    if tasks.(w) > 0 then begin
      incr active;
      sum := !sum +. busy.(w);
      if busy.(w) > !mx then mx := busy.(w)
    end
  done;
  if !active = 0 || !sum <= 0. then 1.
  else !mx /. (!sum /. float_of_int !active)

let stats t =
  Mutex.protect t.stats_lock (fun () ->
      let sumi a = Array.fold_left ( + ) 0 a
      and sumf a = Array.fold_left ( +. ) 0. a in
      {
        domains = t.n_domains;
        runs = t.runs;
        run_seconds = t.run_seconds;
        tasks = sumi t.acc_tasks;
        steals = sumi t.acc_steals;
        steal_failures = sumi t.acc_steal_failures;
        busy_seconds = sumf t.acc_busy;
        idle_seconds = sumf t.acc_idle;
        worker_tasks = Array.copy t.acc_tasks;
        worker_busy = Array.copy t.acc_busy;
        imbalance = imbalance_of ~tasks:t.acc_tasks ~busy:t.acc_busy;
      })

let reset_stats t =
  Mutex.protect t.stats_lock (fun () ->
      t.runs <- 0;
      t.run_seconds <- 0.;
      Array.fill t.acc_tasks 0 t.n_domains 0;
      Array.fill t.acc_steals 0 t.n_domains 0;
      Array.fill t.acc_steal_failures 0 t.n_domains 0;
      Array.fill t.acc_busy 0 t.n_domains 0.;
      Array.fill t.acc_idle 0 t.n_domains 0.)

(* ------------------------------------------------------------------ *)
(* The work-stealing scheduler.  Task indices are dealt out in
   contiguous blocks, one per worker; a worker consumes its own block
   from the low end and, once empty, steals from the high end of the
   fullest other block.  Each deque is a [lo, hi) window over the task
   index range, guarded by its own mutex — tasks here are coarse
   (a kernel compile + simulation, a fuzz case), so contention on these
   tiny critical sections is irrelevant. *)

type deque = { lock : Mutex.t; mutable lo : int; mutable hi : int }

let pop_own d =
  Mutex.protect d.lock (fun () ->
      if d.lo < d.hi then (
        let i = d.lo in
        d.lo <- i + 1;
        Some i)
      else None)

let steal d =
  Mutex.protect d.lock (fun () ->
      if d.lo < d.hi then (
        let i = d.hi - 1 in
        d.hi <- i;
        Some i)
      else None)

(* Per-run observability: each worker owns one slot of each array, so
   recording is unsynchronized; the coordinating domain reads the
   arrays only after every helper is joined. *)
type run_stats = {
  r_tasks : int array;
  r_steals : int array;
  r_steal_failures : int array;
  r_busy : float array;
  r_idle : float array;
  mutable r_wall : float;
}

let parallel_run ~workers ~n task =
  let chunk = (n + workers - 1) / workers in
  let deques =
    Array.init workers (fun w ->
        {
          lock = Mutex.create ();
          lo = min n (w * chunk);
          hi = min n ((w + 1) * chunk);
        })
  in
  let rs =
    {
      r_tasks = Array.make workers 0;
      r_steals = Array.make workers 0;
      r_steal_failures = Array.make workers 0;
      r_busy = Array.make workers 0.;
      r_idle = Array.make workers 0.;
      r_wall = 0.;
    }
  in
  (* Own deque first, then the others in round-robin order.  No task
     spawns further tasks, so a full scan finding every deque empty
     means the run is over. *)
  let rec next w tries =
    if tries >= workers then None
    else
      let v = w + tries in
      let victim = if v >= workers then v - workers else v in
      match
        if tries = 0 then pop_own deques.(victim) else steal deques.(victim)
      with
      | Some i ->
        if tries > 0 then rs.r_steals.(w) <- rs.r_steals.(w) + 1;
        Some i
      | None ->
        if tries > 0 then
          rs.r_steal_failures.(w) <- rs.r_steal_failures.(w) + 1;
        next w (tries + 1)
  in
  let rec worker_loop w =
    match next w 0 with
    | Some i ->
      let t0 = Unix.gettimeofday () in
      task i;
      rs.r_busy.(w) <- rs.r_busy.(w) +. (Unix.gettimeofday () -. t0);
      rs.r_tasks.(w) <- rs.r_tasks.(w) + 1;
      worker_loop w
    | None -> ()
  in
  let worker w =
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        rs.r_idle.(w) <-
          Float.max 0. (Unix.gettimeofday () -. t0 -. rs.r_busy.(w)))
      (fun () -> worker_loop w)
  in
  let t_run = Unix.gettimeofday () in
  let helpers =
    Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  let main_exn =
    (* [task] never raises (exceptions are captured into the result
       slot), but guard anyway so helper domains are always joined. *)
    match worker 0 with () -> None | exception e -> Some e
  in
  Array.iter Domain.join helpers;
  rs.r_wall <- Unix.gettimeofday () -. t_run;
  match main_exn with None -> rs | Some e -> raise e

let map pool ~f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let results = Array.make n None in
  let task i =
    results.(i) <-
      Some
        (match f arr.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  let workers = min pool.n_domains n in
  let record rs =
    Mutex.protect pool.stats_lock (fun () ->
        pool.runs <- pool.runs + 1;
        pool.run_seconds <- pool.run_seconds +. rs.r_wall;
        Array.iteri
          (fun w c -> pool.acc_tasks.(w) <- pool.acc_tasks.(w) + c)
          rs.r_tasks;
        Array.iteri
          (fun w c -> pool.acc_steals.(w) <- pool.acc_steals.(w) + c)
          rs.r_steals;
        Array.iteri
          (fun w c ->
            pool.acc_steal_failures.(w) <- pool.acc_steal_failures.(w) + c)
          rs.r_steal_failures;
        Array.iteri
          (fun w s -> pool.acc_busy.(w) <- pool.acc_busy.(w) +. s)
          rs.r_busy;
        Array.iteri
          (fun w s -> pool.acc_idle.(w) <- pool.acc_idle.(w) +. s)
          rs.r_idle)
  in
  (if workers <= 1 then begin
     (* Sequential degradation (one domain, or 0/1 tasks).  A busy
        multi-domain pool still rejects, so nesting behaviour does not
        depend on the length of the inner list. *)
     if pool.n_domains > 1 && Atomic.get pool.busy then raise Nested_map;
     let t0 = Unix.gettimeofday () in
     for i = 0 to n - 1 do
       task i
     done;
     if n > 0 then begin
       let wall = Unix.gettimeofday () -. t0 in
       record
         {
           r_tasks = [| n |];
           r_steals = [| 0 |];
           r_steal_failures = [| 0 |];
           r_busy = [| wall |];
           r_idle = [| 0. |];
           r_wall = wall;
         }
     end
   end
   else begin
     if not (Atomic.compare_and_set pool.busy false true) then
       raise Nested_map;
     Fun.protect
       ~finally:(fun () -> Atomic.set pool.busy false)
       (fun () -> record (parallel_run ~workers ~n task))
   end);
  (* Merge by task index: re-raise the lowest-indexed failure (so the
     observed exception is independent of scheduling), else return the
     values in input order. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> assert false)
    results;
  Array.to_list
    (Array.map
       (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
       results)

let map_reduce pool ~map:m ~fold ~init xs =
  List.fold_left fold init (map pool ~f:m xs)

let map_opt pool ~f xs =
  match pool with None -> List.map f xs | Some p -> map p ~f xs
