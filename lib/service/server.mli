(** The compile-and-simulate server: batched request handling over the
    content-addressed cache, with a Unix-domain-socket accept loop and
    a stdin/stdout fallback for CI pipelines.

    Determinism contract: responses are byte-identical whether served
    from cache or computed fresh, and identical at [-j1] and [-jN] —
    lookups/stores run on the calling domain in request order, misses
    fan out over {!Finepar_exec.Pool} (task-index-ordered merge)
    grouped by (kernel digest, config digest) so one compilation serves
    every engine and request kind of a job. *)

type t

val create : ?pool:Finepar_exec.Pool.t -> cache:Cache.t -> unit -> t

val handle_requests : t -> (Wire.request, string) result list -> string list
(** One batch: canonical response strings, one per request, in order.
    [Error msg] inputs (per-item parse failures) become [Error]
    responses.  Control requests ([Stats]/[Ping]/[Shutdown]) are
    answered inline and never cached; [Shutdown] additionally stops the
    serving loops after the current frame. *)

val handle_frame : t -> string -> string
(** Payload in, payload out: a [(batch ...)] of requests maps to a
    [(batch ...)] of responses, a bare [(request ...)] to a bare
    response, anything unparsable to a single [Error] response. *)

(** {2 Framing: ["<decimal byte count>\n<payload>"]} *)

val max_frame : int
val write_frame : out_channel -> string -> unit

val read_frame : in_channel -> string option
(** [None] on end of input or a malformed/oversized header (the
    connection is then closed). *)

(** {2 Serving loops} *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Frame-at-a-time loop until end of input or a [Shutdown] request —
    the stdin/stdout fallback ([finepar serve --stdio]). *)

val serve_socket : t -> string -> unit
(** Bind (replacing any stale file), listen, and serve connections
    sequentially until a [Shutdown] request; the socket file is removed
    on exit.  SIGPIPE is ignored so a vanishing client cannot kill the
    server. *)
