(** Canonical wire format for the compile-and-simulate service.

    Every message is one s-expression rendered with
    {!Finepar_fuzz.Repro.canon}, so equal values serialize to equal
    bytes: the framing layer and the content-addressed cache both key
    on the rendered string.  Kernel, config and value encodings are the
    fuzz reproducer's ({!Finepar_fuzz.Repro}); floats travel as [%h]
    hexadecimal atoms and round-trip bit-exactly, including negative
    zero and the infinities (NaNs canonicalize to a payload-free [nan]
    atom, so every NaN digests to the same cache key).

    [Report.pass_times] (wall-clock seconds) is deliberately not
    encoded and round-trips as [[]]: responses must be byte-identical
    cached-vs-fresh and [-j1]-vs-[-jN]. *)

(** Workload arrays: either derived from a splitmix64 seed
    ({!Finepar_kernels.Workload.default}) or carried explicitly (the
    registry's fixed workloads). *)
type workload_spec = Seeded of int | Explicit of Finepar_ir.Eval.workload

(** One unit of compile work plus everything that parameterizes it. *)
type job = {
  kernel : Finepar_ir.Kernel.t;
  config : Finepar.Compiler.config;
  sequential : bool;
      (** compile with {!Finepar.Compiler.compile_sequential} (the
          speedup baseline) instead of the full pipeline *)
  placement : Finepar_fuzz.Gen.placement;  (** SMT thread placement *)
  workload : workload_spec;
  profile_counters : (string * int * int) list;
      (** per-array (name, loads, L1 misses) profile feedback; [[]]
          means no feedback (all hits) *)
}

type request =
  | Run of { job : job; engine : Finepar_machine.Engine.t }
  | Compile of job
  | Verify of job
  | Stats  (** cache hit/miss counters — not cached itself *)
  | Ping  (** liveness + code version — not cached *)
  | Shutdown

type run_payload = {
  cycles : int;
  instrs : int;
  queues_used : int;
  load_counters : (string * int * int) list;
  result : Finepar_ir.Eval.result;
  report : Finepar.Report.t;  (** [pass_times] always [[]] *)
}

type response =
  | Run_result of run_payload
  | Compile_result of Finepar.Compiler.stats
  | Verify_result of { ok : bool; violations : string list }
  | Stats_result of (string * int) list
  | Pong of string  (** code version *)
  | Shutdown_ack
  | Error of string
      (** deterministic rendering of the pipeline exception; never
          cached *)

val job_of_request : request -> job option
(** The job a cacheable request carries; [None] for control requests. *)

val engine_slot : request -> string option
(** The cache key's engine component: the engine name for [Run],
    ["compile"]/["verify"] for the simulation-free kinds (all engines
    share those entries), [None] for control requests. *)

val kernel_canon : job -> string
(** Digest input covering the kernel text alone. *)

val job_canon : job -> string
(** Digest input covering everything else that can change a response
    for the same kernel: config (machine geometry, weights, ...),
    sequential flag, placement, workload, profile feedback. *)

(** {2 Single messages} *)

val request_to_string : request -> string
val request_of_string : string -> request
val response_to_string : response -> string
val response_of_string : string -> response

(** {2 Batches — what actually travels in a frame} *)

val batch_to_string : request list -> string
val requests_of_string : string -> request list
val responses_of_string : string -> response list

val batch_items_of_string : string -> Finepar_fuzz.Repro.sexp list
(** The items of a [(batch ...)] payload, unparsed beyond sexp shape. *)

val batch_of_response_strings : string list -> string
(** Reassemble a [(batch ...)] from already-canonical response strings
    without re-rendering, so cached bytes pass through untouched. *)

(**/**)

(* Exposed for the server's per-item batch parsing and for tests. *)
val sexp_of_request : request -> Finepar_fuzz.Repro.sexp
val request_of_sexp : Finepar_fuzz.Repro.sexp -> request
val sexp_of_config : Finepar.Compiler.config -> Finepar_fuzz.Repro.sexp
val config_of_sexp : Finepar_fuzz.Repro.sexp -> Finepar.Compiler.config
val sexp_of_job : job -> Finepar_fuzz.Repro.sexp
val job_of_sexp : Finepar_fuzz.Repro.sexp -> job
val sexp_of_report : Finepar.Report.t -> Finepar_fuzz.Repro.sexp
val report_of_sexp : Finepar_fuzz.Repro.sexp -> Finepar.Report.t
val sexp_of_result : Finepar_ir.Eval.result -> Finepar_fuzz.Repro.sexp
val result_of_sexp : Finepar_fuzz.Repro.sexp -> Finepar_ir.Eval.result
