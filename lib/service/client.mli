(** Client side of the service. *)

(** Where to send a batch: [Socket path] talks to a live [finepar
    serve] over its Unix domain socket; [Store dir] opens the disk
    store in-process — no server needed, same cache, same bytes. *)
type via = Store of string | Socket of string

val via_of_string : string -> (via, string) result
(** Parses ["store:DIR"] or ["socket:PATH"]. *)

val via_to_string : via -> string

val exec_frame :
  ?pool:Finepar_exec.Pool.t -> ?attempts:int -> via -> string -> string
(** One frame out, one frame in, raw payload bytes both ways (callers
    byte-compare or persist them unchanged).  [pool] parallelizes the
    in-process [Store] path; [attempts] (default 50, 0.1 s apart)
    retries the socket connection while the server is still binding. *)

val exec_strings :
  ?pool:Finepar_exec.Pool.t ->
  ?attempts:int ->
  via ->
  Wire.request list ->
  string list
(** Send a batch; canonical response strings, one per request, in
    order. *)

val exec :
  ?pool:Finepar_exec.Pool.t ->
  ?attempts:int ->
  via ->
  Wire.request list ->
  Wire.response list
(** Like {!exec_strings}, parsed. *)

(** {2 Sessions}

    A session keeps one cache handle ([Store]) or one connection
    ([Socket]) alive across many batches, so multi-batch drivers — the
    generational autotune search above all — reuse the same store and
    the same socket frame-after-frame instead of reopening per batch.
    Responses are byte-identical to the per-batch functions. *)

type session

val open_session :
  ?pool:Finepar_exec.Pool.t -> ?attempts:int -> via -> session
(** [pool] parallelizes the in-process [Store] path; [attempts] is the
    socket-connect retry count (as in {!exec_frame}). *)

val close_session : session -> unit
(** Closes the socket connection; a no-op for [Store]. *)

val session_exec_strings : session -> Wire.request list -> string list
val session_exec : session -> Wire.request list -> Wire.response list

val session_counters : session -> (string * int) list
(** The cache hit/miss counters this session observes: the store
    handle's own counters ([Store], invocation lifetime) or a [Stats]
    round-trip ([Socket], server lifetime). *)

val with_session :
  ?pool:Finepar_exec.Pool.t ->
  ?attempts:int ->
  via ->
  (session -> 'a) ->
  'a
(** Opens a session, runs the callback, closes on all paths. *)
