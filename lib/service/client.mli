(** Client side of the service. *)

(** Where to send a batch: [Socket path] talks to a live [finepar
    serve] over its Unix domain socket; [Store dir] opens the disk
    store in-process — no server needed, same cache, same bytes. *)
type via = Store of string | Socket of string

val via_of_string : string -> (via, string) result
(** Parses ["store:DIR"] or ["socket:PATH"]. *)

val via_to_string : via -> string

val exec_frame :
  ?pool:Finepar_exec.Pool.t -> ?attempts:int -> via -> string -> string
(** One frame out, one frame in, raw payload bytes both ways (callers
    byte-compare or persist them unchanged).  [pool] parallelizes the
    in-process [Store] path; [attempts] (default 50, 0.1 s apart)
    retries the socket connection while the server is still binding. *)

val exec_strings :
  ?pool:Finepar_exec.Pool.t ->
  ?attempts:int ->
  via ->
  Wire.request list ->
  string list
(** Send a batch; canonical response strings, one per request, in
    order. *)

val exec :
  ?pool:Finepar_exec.Pool.t ->
  ?attempts:int ->
  via ->
  Wire.request list ->
  Wire.response list
(** Like {!exec_strings}, parsed. *)
