(** The compile-and-simulate server.

    One frame carries one batch.  Handling is three deterministic
    phases: (1) cache lookups and control requests on the calling
    domain, in request order; (2) the misses, grouped by (kernel
    digest, config digest) so one compilation serves every engine and
    request kind of the same job, fanned out over {!Finepar_exec.Pool}
    (whose merge is task-index ordered); (3) stores and slot fills back
    on the calling domain, in group order.  Nothing in any phase
    depends on domain scheduling, so responses are byte-identical at
    [-j1] and [-jN], and a cached response is byte-identical to a fresh
    one because the cache stores the canonical response string
    verbatim.

    Pipeline failures (compile rejection, simulator deadlock, evaluator
    mismatch) become [Error] responses rendered through the exceptions'
    registered printers — deterministic, but never cached. *)

module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Gen = Finepar_fuzz.Gen
module Pool = Finepar_exec.Pool

type t = {
  cache : Cache.t;
  pool : Pool.t option;
  mutable stop : bool;
}

let create ?pool ~cache () = { cache; pool; stop = false }

(* ------------------------------------------------------------------ *)
(* Job evaluation.                                                      *)

let compile_job (job : Wire.job) =
  let profile = Finepar_analysis.Profile.of_counters job.profile_counters in
  let config = { job.config with Compiler.profile } in
  if job.sequential then
    Compiler.compile_sequential ~machine:config.Compiler.machine job.kernel
  else Compiler.compile config job.kernel

let workload_of (job : Wire.job) =
  match job.workload with
  | Wire.Seeded seed -> Finepar_kernels.Workload.default ~seed job.kernel
  | Wire.Explicit w -> w

let run_response compiled (job : Wire.job) engine =
  let program = compiled.Compiler.code.Finepar_codegen.Lower.program in
  let n_cores = Array.length program.Finepar_machine.Program.cores in
  let core_map = Gen.materialize job.placement n_cores in
  let r =
    Runner.run ~check:true ~workload:(workload_of job) ~core_map ~engine
      compiled
  in
  Wire.Run_result
    {
      cycles = r.Runner.cycles;
      instrs = r.Runner.instrs;
      queues_used = r.Runner.queues_used;
      load_counters = r.Runner.load_counters;
      result = r.Runner.result;
      report = { r.Runner.telemetry with Finepar.Report.pass_times = [] };
    }

let verify_response compiled =
  let queue_len =
    compiled.Compiler.config.Compiler.machine
      .Finepar_machine.Config.queue_len
  in
  let res =
    Finepar_verify.Verify.run ~plan:compiled.Compiler.comm
      ~mode:compiled.Compiler.config.Compiler.comm_mode ~queue_len
      compiled.Compiler.code.Finepar_codegen.Lower.program
  in
  Wire.Verify_result
    {
      ok = Finepar_verify.Verify.ok res;
      violations =
        List.map
          (Fmt.str "%a" Finepar_verify.Verify.pp_violation)
          res.Finepar_verify.Verify.violations;
    }

(* (canonical response string, cacheable).  Errors are deterministic
   but never cached: a stored error would mask a later fix only a code
   version bump could clear. *)
let task_response compiled req =
  match compiled with
  | Error msg -> (Wire.response_to_string (Wire.Error msg), false)
  | Ok compiled -> (
    let response () =
      match req with
      | Wire.Run { job; engine } -> run_response compiled job engine
      | Wire.Compile _ -> Wire.Compile_result compiled.Compiler.stats
      | Wire.Verify _ -> verify_response compiled
      | Wire.Stats | Wire.Ping | Wire.Shutdown -> assert false
    in
    match response () with
    | resp -> (Wire.response_to_string resp, true)
    | exception e ->
      (Wire.response_to_string (Wire.Error (Printexc.to_string e)), false))

let compute_group items =
  let compiled =
    match items with
    | (_, req, _) :: _ -> (
      let job = Option.get (Wire.job_of_request req) in
      match compile_job job with
      | c -> Ok c
      | exception e -> Error (Printexc.to_string e))
    | [] -> assert false
  in
  List.map
    (fun (i, req, (key : Cache.key)) ->
      let body, cacheable = task_response compiled req in
      (i, key, cacheable, body))
    items

(* ------------------------------------------------------------------ *)
(* Batch handling.                                                      *)

let control t = function
  | Wire.Stats -> Wire.Stats_result (Cache.counters t.cache)
  | Wire.Ping -> Wire.Pong Version.code_version
  | Wire.Shutdown ->
    t.stop <- true;
    Wire.Shutdown_ack
  | Wire.Run _ | Wire.Compile _ | Wire.Verify _ -> assert false

let handle_requests t (reqs : (Wire.request, string) result list) :
    string list =
  let slots = Array.make (List.length reqs) "" in
  let misses = ref [] in
  List.iteri
    (fun i req ->
      match req with
      | Error msg ->
        slots.(i) <-
          Wire.response_to_string (Wire.Error ("parse error: " ^ msg))
      | Ok req -> (
        match Cache.key_of_request t.cache req with
        | None -> slots.(i) <- Wire.response_to_string (control t req)
        | Some key -> (
          match Cache.find t.cache key with
          | Some body -> slots.(i) <- body
          | None -> misses := (i, req, key) :: !misses)))
    reqs;
  (* Group misses by (kernel digest, config digest), preserving first-
     occurrence order: one compile serves all engines/kinds of a job. *)
  let groups = ref [] in
  List.iter
    (fun ((_, _, (key : Cache.key)) as item) ->
      let gk = (key.Cache.kernel_digest, key.Cache.config_digest) in
      match List.assoc_opt gk !groups with
      | Some r -> r := item :: !r
      | None -> groups := (gk, ref [ item ]) :: !groups)
    (List.rev !misses);
  let groups =
    List.rev_map (fun (_, r) -> List.rev !r) !groups |> List.rev
  in
  let computed = Pool.map_opt t.pool ~f:compute_group groups in
  List.iter
    (List.iter (fun (i, key, cacheable, body) ->
         if cacheable then Cache.store t.cache key body;
         slots.(i) <- body))
    computed;
  Array.to_list slots

let handle_frame t payload =
  match Finepar_fuzz.Repro.parse_sexp payload with
  | exception e ->
    Wire.response_to_string
      (Wire.Error ("parse error: " ^ Printexc.to_string e))
  | Finepar_fuzz.Repro.List (Finepar_fuzz.Repro.Atom "batch" :: items) ->
    let reqs =
      List.map
        (fun item ->
          match Wire.request_of_sexp item with
          | req -> Ok req
          | exception e -> Error (Printexc.to_string e))
        items
    in
    Wire.batch_of_response_strings (handle_requests t reqs)
  | sexp -> (
    match Wire.request_of_sexp sexp with
    | req -> List.hd (handle_requests t [ Ok req ])
    | exception e ->
      Wire.response_to_string
        (Wire.Error ("parse error: " ^ Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Framing: "<decimal byte count>\n<payload>".                          *)

let max_frame = 256 * 1024 * 1024

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
    match int_of_string_opt (String.trim line) with
    | Some n when n >= 0 && n <= max_frame -> (
      match really_input_string ic n with
      | s -> Some s
      | exception End_of_file -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Serving loops.                                                       *)

let serve_channels t ic oc =
  let rec loop () =
    if not t.stop then
      match read_frame ic with
      | None -> ()
      | Some payload ->
        write_frame oc (handle_frame t payload);
        loop ()
  in
  loop ()

let serve_socket t path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      while not t.stop do
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (try serve_channels t ic oc
         with Sys_error _ | Unix.Unix_error _ -> ());
        close_out_noerr oc;
        close_in_noerr ic
      done)
