(** Client side of the service: route a batch either through a live
    server over its Unix domain socket, or directly through the disk
    store in-process ([--via=store:DIR] — no server needed, same cache,
    same bytes). *)

type via = Store of string | Socket of string

let via_of_string s =
  match String.index_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "store" -> Ok (Store rest)
    | "socket" -> Ok (Socket rest)
    | _ ->
      Error
        (Printf.sprintf "bad --via %S: expected store:DIR or socket:PATH" s))
  | _ ->
    Error (Printf.sprintf "bad --via %S: expected store:DIR or socket:PATH" s)

let via_to_string = function
  | Store dir -> "store:" ^ dir
  | Socket path -> "socket:" ^ path

(* The server may still be binding when the client starts (CI launches
   both back to back), so connection attempts retry briefly. *)
let connect ?(attempts = 50) path =
  let rec go n =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> sock
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
      Unix.close sock;
      Unix.sleepf 0.1;
      go (n - 1)
    | exception e ->
      Unix.close sock;
      raise e
  in
  go attempts

let exec_socket ?attempts path payload =
  let sock = connect ?attempts path in
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () ->
      Server.write_frame oc payload;
      match Server.read_frame ic with
      | Some response -> response
      | None -> failwith "service: server closed the connection")

(* One frame out, one frame in; the response payload is returned as
   raw bytes so callers can byte-compare or persist it unchanged. *)
let exec_frame ?pool ?attempts via payload =
  match via with
  | Socket path -> exec_socket ?attempts path payload
  | Store dir ->
    let server = Server.create ?pool ~cache:(Cache.create dir) () in
    Server.handle_frame server payload

let exec_strings ?pool ?attempts via reqs =
  let payload =
    exec_frame ?pool ?attempts via (Wire.batch_to_string reqs)
  in
  match Wire.responses_of_string payload with
  | _ ->
    (* Re-split without re-rendering: items of a canonical batch are
       themselves canonical. *)
    List.map Finepar_fuzz.Repro.canon (Wire.batch_items_of_string payload)
  | exception _ -> failwith ("service: bad response payload: " ^ payload)

let exec ?pool ?attempts via reqs =
  List.map Wire.response_of_string (exec_strings ?pool ?attempts via reqs)

(* ------------------------------------------------------------------ *)
(* Sessions: one cache handle (Store) or one connection (Socket) that
   persists across many batches, so a generational search reuses the
   same store and the same socket for every generation's frame. *)

type session =
  | S_store of Server.t * Cache.t
  | S_socket of { ic : in_channel; oc : out_channel }

let open_session ?pool ?attempts via =
  match via with
  | Store dir ->
    let cache = Cache.create dir in
    (S_store (Server.create ?pool ~cache (), cache) : session)
  | Socket path ->
    let sock = connect ?attempts path in
    S_socket
      {
        ic = Unix.in_channel_of_descr sock;
        oc = Unix.out_channel_of_descr sock;
      }

let close_session = function
  | S_store _ -> ()
  | S_socket { ic; oc } ->
    close_out_noerr oc;
    close_in_noerr ic

let session_frame session payload =
  match session with
  | S_store (server, _) -> Server.handle_frame server payload
  | S_socket { ic; oc } -> (
    Server.write_frame oc payload;
    match Server.read_frame ic with
    | Some response -> response
    | None -> failwith "service: server closed the connection")

let session_exec_strings session reqs =
  let payload = session_frame session (Wire.batch_to_string reqs) in
  match Wire.responses_of_string payload with
  | _ -> List.map Finepar_fuzz.Repro.canon (Wire.batch_items_of_string payload)
  | exception _ -> failwith ("service: bad response payload: " ^ payload)

let session_exec session reqs =
  List.map Wire.response_of_string (session_exec_strings session reqs)

let session_counters session =
  match session with
  | S_store (_, cache) -> Cache.counters cache
  | S_socket _ -> (
    match session_exec session [ Wire.Stats ] with
    | [ Wire.Stats_result cs ] -> cs
    | _ -> failwith "service: bad stats response")

let with_session ?pool ?attempts via f =
  let session = open_session ?pool ?attempts via in
  Fun.protect ~finally:(fun () -> close_session session) (fun () -> f session)
