(** Content-addressed response store.

    A key is (kernel digest, config digest, engine slot, code version);
    the digests are MD5 over {!Wire}'s canonical strings, the engine
    slot distinguishes simulation engines (and the simulation-free
    "compile"/"verify" kinds), and the code version invalidates
    everything when the pipeline's result semantics change (see
    {!Version} and DESIGN.md).

    On disk an entry is one file under a two-character shard directory:

    {v store/ab/ab12...ef.sexp v}

    whose first line is the canonical key header and whose remainder is
    the canonical response string, stored verbatim — a hit returns the
    exact bytes a fresh computation would have produced.  Reads verify
    the header against the requested key (collision/corruption guard)
    and re-parse the payload; anything malformed, truncated or
    mismatched counts as [corrupt] and behaves as a miss (the bad file
    is removed).  Writes go through a pid-suffixed temp file and
    [rename], so a torn write can never produce a half entry.

    All lookups and stores happen on the calling domain (the server
    does cache IO outside its {!Finepar_exec.Pool} fan-out), so no
    locking is needed; the atomic rename makes concurrent server
    processes sharing one store safe too. *)

module Tracer = Finepar_telemetry.Tracer
module Json = Finepar_telemetry.Json

type key = {
  kernel_digest : string;  (** MD5 hex of {!Wire.kernel_canon} *)
  config_digest : string;  (** MD5 hex of {!Wire.job_canon} *)
  engine : string;  (** {!Wire.engine_slot} *)
  version : string;  (** {!Version.code_version} unless overridden *)
}

type t = {
  dir : string;
  version : string;
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable evictions : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?max_entries ?(version = Version.code_version) dir =
  mkdir_p dir;
  { dir; version; max_entries; hits = 0; misses = 0; stores = 0;
    corrupt = 0; evictions = 0 }

let digest_hex s = Digest.to_hex (Digest.string s)

let key_of_request t req =
  match (Wire.job_of_request req, Wire.engine_slot req) with
  | Some job, Some engine ->
    Some
      {
        kernel_digest = digest_hex (Wire.kernel_canon job);
        config_digest = digest_hex (Wire.job_canon job);
        engine;
        version = t.version;
      }
  | _ -> None

let header key =
  Printf.sprintf "(entry (kernel_digest %s) (config_digest %s) (engine %s) (version %s))"
    key.kernel_digest key.config_digest key.engine key.version

let path t key =
  let hex =
    digest_hex
      (String.concat "\x00"
         [ key.kernel_digest; key.config_digest; key.engine; key.version ])
  in
  Filename.concat (Filename.concat t.dir (String.sub hex 0 2)) (hex ^ ".sexp")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Shard directories hold only entry files; anything else in the store
   root (temp files mid-rename) is ignored. *)
let entry_files t =
  if not (Sys.file_exists t.dir) then []
  else
    Array.to_list (Sys.readdir t.dir)
    |> List.filter (fun d -> String.length d = 2)
    |> List.concat_map (fun d ->
           let shard = Filename.concat t.dir d in
           if Sys.is_directory shard then
             Array.to_list (Sys.readdir shard)
             |> List.filter (fun f -> Filename.check_suffix f ".sexp")
             |> List.map (Filename.concat shard)
           else [])

let entries t = List.length (entry_files t)

let corrupt_miss t path =
  t.corrupt <- t.corrupt + 1;
  t.misses <- t.misses + 1;
  Tracer.add_counter "service.cache.corrupt";
  Tracer.add_counter "service.cache.miss";
  (try Sys.remove path with Sys_error _ -> ());
  None

let find t key =
  let p = path t key in
  if not (Sys.file_exists p) then begin
    t.misses <- t.misses + 1;
    Tracer.add_counter "service.cache.miss";
    None
  end
  else
    match read_file p with
    | exception Sys_error _ -> corrupt_miss t p
    | exception End_of_file -> corrupt_miss t p
    | contents -> (
      match String.index_opt contents '\n' with
      | None -> corrupt_miss t p
      | Some nl ->
        let hdr = String.sub contents 0 nl in
        let body =
          String.sub contents (nl + 1) (String.length contents - nl - 1)
        in
        let body =
          if String.length body > 0 && body.[String.length body - 1] = '\n'
          then String.sub body 0 (String.length body - 1)
          else body
        in
        if not (String.equal hdr (header key)) then corrupt_miss t p
        else (
          (* A stored payload must still parse as a response — a
             truncated tail is a miss, not a crash downstream. *)
          match Wire.response_of_string body with
          | exception _ -> corrupt_miss t p
          | _ ->
            t.hits <- t.hits + 1;
            Tracer.add_counter "service.cache.hit";
            Some body))

let evict_over_limit t =
  match t.max_entries with
  | None -> ()
  | Some limit ->
    let files = entry_files t in
    let excess = List.length files - limit in
    if excess > 0 then begin
      let with_mtime =
        List.map (fun f -> ((Unix.stat f).Unix.st_mtime, f)) files
      in
      let oldest_first = List.sort compare with_mtime in
      List.iteri
        (fun i (_, f) ->
          if i < excess then begin
            (try Sys.remove f with Sys_error _ -> ());
            t.evictions <- t.evictions + 1;
            Tracer.add_counter "service.cache.eviction"
          end)
        oldest_first
    end

let store t key response =
  let p = path t key in
  mkdir_p (Filename.dirname p);
  let tmp = Printf.sprintf "%s.tmp.%d" p (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header key);
      output_char oc '\n';
      output_string oc response;
      output_char oc '\n');
  Sys.rename tmp p;
  t.stores <- t.stores + 1;
  Tracer.add_counter "service.cache.store";
  evict_over_limit t

let counters t =
  [
    ("hits", t.hits);
    ("misses", t.misses);
    ("stores", t.stores);
    ("corrupt", t.corrupt);
    ("evictions", t.evictions);
    ("entries", entries t);
  ]

let stats_json t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (counters t))
