(** Canonical wire format for the compile-and-simulate service.

    Everything on the wire is one s-expression rendered with
    {!Finepar_fuzz.Repro.canon}: single-line, one space between
    siblings, atoms quoted exactly when they need it, floats as [%h]
    hexadecimal literals.  Equal values therefore serialize to equal
    bytes — the property both the framing layer and the content-
    addressed cache digests rely on.  The kernel/config/value encodings
    are the fuzz reproducer's, reused verbatim; this module adds the
    request/response envelope and a bit-exact {!Finepar.Report.t}
    round-trip.

    Wall-clock noise never crosses the wire: [Report.pass_times] is
    dropped (it round-trips as [[]]), so a cached response is
    byte-identical to a freshly computed one. *)

module R = Finepar_fuzz.Repro
module Gen = Finepar_fuzz.Gen
module Engine = Finepar_machine.Engine
module H = Finepar_telemetry.Histogram

open R

let err = R.parse_error

(* ------------------------------------------------------------------ *)
(* Jobs: what to compile, how to run it.                                *)

type workload_spec = Seeded of int | Explicit of Finepar_ir.Eval.workload

type job = {
  kernel : Finepar_ir.Kernel.t;
  config : Finepar.Compiler.config;
  sequential : bool;
      (** compile with {!Finepar.Compiler.compile_sequential} (the
          speedup baseline) instead of the full pipeline *)
  placement : Gen.placement;
  workload : workload_spec;
  profile_counters : (string * int * int) list;
      (** per-array (name, loads, L1 misses) feedback; the backend
          rebuilds {!Finepar_analysis.Profile.of_counters} from these
          ([[]] means no feedback, i.e. all hits) *)
}

type request =
  | Run of { job : job; engine : Engine.t }
  | Compile of job
  | Verify of job
  | Stats
  | Ping
  | Shutdown

type run_payload = {
  cycles : int;
  instrs : int;
  queues_used : int;
  load_counters : (string * int * int) list;
  result : Finepar_ir.Eval.result;
  report : Finepar.Report.t;
}

type response =
  | Run_result of run_payload
  | Compile_result of Finepar.Compiler.stats
  | Verify_result of { ok : bool; violations : string list }
  | Stats_result of (string * int) list
  | Pong of string
  | Shutdown_ack
  | Error of string

(* ------------------------------------------------------------------ *)
(* Config: the reproducer encoding plus the affinity weights it omits.  *)

let sexp_of_config (c : Finepar.Compiler.config) =
  let w = c.Finepar.Compiler.weights in
  let weights =
    List
      [
        Atom "weights";
        float_atom w.Finepar_partition.Affinity.w_dep;
        float_atom w.Finepar_partition.Affinity.w_time;
        float_atom w.Finepar_partition.Affinity.w_prox;
      ]
  in
  match R.sexp_of_config c with
  | List items -> List (items @ [ weights ])
  | Atom _ -> assert false

let float_of s =
  match float_of_string_opt (atom s) with
  | Some f -> f
  | None -> err "bad float literal %S" (atom s)

let config_of_sexp s =
  (* [weights] is the one field this format layers onto the reproducer
     config encoding; everything else unknown is still rejected. *)
  let base = R.config_of_sexp ~extra:[ "weights" ] s in
  match field_items "weights" s with
  | [ d; t; p ] ->
    {
      base with
      Finepar.Compiler.weights =
        {
          Finepar_partition.Affinity.w_dep = float_of d;
          w_time = float_of t;
          w_prox = float_of p;
        };
    }
  | _ -> err "weights expects three values"

(* ------------------------------------------------------------------ *)
(* Workloads, counters, jobs.                                           *)

let sexp_of_workload = function
  | Seeded seed -> List [ Atom "workload"; Atom "seed"; Atom (string_of_int seed) ]
  | Explicit arrays ->
    List
      (Atom "workload" :: Atom "explicit"
      :: List.map
           (fun (name, vals) ->
             List (Atom name :: List.map sexp_of_value (Array.to_list vals)))
           arrays)

let workload_of_sexp s =
  match field_items "workload" s with
  | [ Atom "seed"; n ] -> Seeded (int_of n)
  | Atom "explicit" :: arrays ->
    Explicit
      (List.map
         (function
           | List (Atom name :: vals) ->
             (name, Array.of_list (List.map value_of_sexp vals))
           | _ -> err "bad workload array")
         arrays)
  | _ -> err "bad workload"

let sexp_of_counters tag counters =
  List
    (Atom tag
    :: List.map
         (fun (name, a, b) ->
           List [ Atom name; Atom (string_of_int a); Atom (string_of_int b) ])
         counters)

let counters_of_sexp tag s =
  List.map
    (function
      | List [ Atom name; a; b ] -> (name, int_of a, int_of b)
      | _ -> err "bad counter in %s" tag)
    (field_items tag s)

let sexp_of_job (j : job) =
  List
    [
      Atom "job";
      R.sexp_of_kernel j.kernel;
      sexp_of_config j.config;
      List [ Atom "sequential"; Atom (string_of_bool j.sequential) ];
      List [ Atom "placement"; Atom (Gen.placement_name j.placement) ];
      sexp_of_workload j.workload;
      sexp_of_counters "profile_counters" j.profile_counters;
    ]

let job_of_sexp s =
  {
    kernel = R.kernel_of_sexp (section "kernel" s);
    config = config_of_sexp (section "config" s);
    sequential = bool_of (field "sequential" s);
    placement =
      (let name = atom (field "placement" s) in
       match Gen.placement_of_name name with
       | Some p -> p
       | None -> err "unknown placement %S" name);
    workload = workload_of_sexp s;
    profile_counters = counters_of_sexp "profile_counters" s;
  }

(* ------------------------------------------------------------------ *)
(* Requests.                                                            *)

let sexp_of_request = function
  | Run { job; engine } ->
    List
      [
        Atom "request";
        List [ Atom "kind"; Atom "run" ];
        List [ Atom "engine"; Atom (Engine.to_string engine) ];
        sexp_of_job job;
      ]
  | Compile job ->
    List [ Atom "request"; List [ Atom "kind"; Atom "compile" ]; sexp_of_job job ]
  | Verify job ->
    List [ Atom "request"; List [ Atom "kind"; Atom "verify" ]; sexp_of_job job ]
  | Stats -> List [ Atom "request"; List [ Atom "kind"; Atom "stats" ] ]
  | Ping -> List [ Atom "request"; List [ Atom "kind"; Atom "ping" ] ]
  | Shutdown -> List [ Atom "request"; List [ Atom "kind"; Atom "shutdown" ] ]

let request_of_sexp s =
  match s with
  | List (Atom "request" :: _) -> (
    match atom (field "kind" s) with
    | "run" ->
      let engine_name = atom (field "engine" s) in
      let engine =
        match Engine.of_string engine_name with
        | Some e -> e
        | None -> err "unknown engine %S" engine_name
      in
      Run { job = job_of_sexp (section "job" s); engine }
    | "compile" -> Compile (job_of_sexp (section "job" s))
    | "verify" -> Verify (job_of_sexp (section "job" s))
    | "stats" -> Stats
    | "ping" -> Ping
    | "shutdown" -> Shutdown
    | k -> err "unknown request kind %S" k)
  | _ -> err "expected (request ...)"

let job_of_request = function
  | Run { job; _ } | Compile job | Verify job -> Some job
  | Stats | Ping | Shutdown -> None

(* The cache key's engine component: which half of the pipeline the
   response depends on.  Run responses depend on the simulation engine;
   compile and verify responses do not simulate, so all engines share
   one entry ("compile"/"verify"). *)
let engine_slot = function
  | Run { engine; _ } -> Some (Engine.to_string engine)
  | Compile _ -> Some "compile"
  | Verify _ -> Some "verify"
  | Stats | Ping | Shutdown -> None

(* Digest inputs.  The kernel digest covers the program text alone; the
   job digest covers everything else that can change a response for the
   same kernel: config (incl. machine geometry and weights), sequential
   flag, placement, workload, profile feedback. *)
let kernel_canon (j : job) = canon (R.sexp_of_kernel j.kernel)

let job_canon (j : job) =
  canon
    (List
       [
         Atom "jobcfg";
         sexp_of_config j.config;
         List [ Atom "sequential"; Atom (string_of_bool j.sequential) ];
         List [ Atom "placement"; Atom (Gen.placement_name j.placement) ];
         sexp_of_workload j.workload;
         sexp_of_counters "profile_counters" j.profile_counters;
       ])

(* ------------------------------------------------------------------ *)
(* Histograms, reports.                                                 *)

let sexp_of_ints tag ints =
  List (Atom tag :: List.map (fun i -> Atom (string_of_int i)) ints)

let ints_of tag s = List.map int_of (field_items tag s)

let sexp_of_opt_int = function
  | None -> Atom "none"
  | Some i -> Atom (string_of_int i)

let opt_int_of s =
  match atom s with "none" -> None | a -> Some (int_of (Atom a))

let sexp_of_hist h =
  let bounds, counts = List.split (H.buckets h) in
  (* The overflow bucket's sentinel bound (max_int) is implicit. *)
  let bounds = List.filter (fun b -> b <> max_int) bounds in
  List
    [
      Atom "hist";
      sexp_of_ints "bounds" bounds;
      sexp_of_ints "counts" counts;
      List [ Atom "sum"; Atom (string_of_int (H.sum h)) ];
      List [ Atom "min"; sexp_of_opt_int (H.min_value h) ];
      List [ Atom "max"; sexp_of_opt_int (H.max_value h) ];
    ]

let hist_of_sexp s =
  H.restore
    ~bounds:(Array.of_list (ints_of "bounds" s))
    ~counts:(Array.of_list (ints_of "counts" s))
    ~sum:(int_of (field "sum" s))
    ~min_value:(opt_int_of (field "min" s))
    ~max_value:(opt_int_of (field "max" s))

let sexp_of_report (t : Finepar.Report.t) =
  let open Finepar.Report in
  List
    [
      Atom "report";
      List [ Atom "kernel"; Atom t.kernel ];
      List [ Atom "cycles"; Atom (string_of_int t.cycles) ];
      List [ Atom "n_cores"; Atom (string_of_int t.n_cores) ];
      List [ Atom "total_core_cycles"; Atom (string_of_int t.total_core_cycles) ];
      List [ Atom "wait_cycles"; Atom (string_of_int t.wait_cycles) ];
      List [ Atom "instrs"; Atom (string_of_int t.instrs) ];
      List [ Atom "dropped_events"; Atom (string_of_int t.dropped_events) ];
      List
        (Atom "cores"
        :: List.map
             (fun (r : core_row) ->
               List
                 [
                   Atom (string_of_int r.core);
                   Atom (string_of_int r.instrs);
                   Atom (string_of_int r.stall_operand);
                   Atom (string_of_int r.stall_queue_full);
                   Atom (string_of_int r.stall_queue_empty);
                   Atom (string_of_int r.branch_wait);
                   Atom (string_of_int r.smt_wait);
                   Atom (string_of_int r.idle_after_halt);
                   Atom (string_of_int r.dual_issued);
                   sexp_of_hist r.stall_episodes;
                 ])
             t.cores);
      List
        (Atom "queues"
        :: List.map
             (fun (q : queue_row) ->
               List
                 [
                   Atom (string_of_int q.queue);
                   Atom (string_of_int q.src);
                   Atom (string_of_int q.dst);
                   Atom (string_of_int q.transfers);
                   Atom (string_of_int q.max_occupancy);
                   sexp_of_hist q.occupancy;
                 ])
             t.queues);
      List
        (Atom "fibers"
        :: List.map
             (fun (f : fiber_row) ->
               List
                 [
                   Atom (string_of_int f.fiber);
                   Atom (string_of_int f.partition);
                   Atom (string_of_int f.line);
                   Atom (string_of_int f.issue);
                   Atom (string_of_int f.stall);
                 ])
             t.fibers);
    ]

let report_of_sexp s : Finepar.Report.t =
  let open Finepar.Report in
  let cores =
    List.map
      (function
        | List [ c; i; so; sqf; sqe; bw; sw; ih; di; h ] ->
          {
            core = int_of c;
            instrs = int_of i;
            stall_operand = int_of so;
            stall_queue_full = int_of sqf;
            stall_queue_empty = int_of sqe;
            branch_wait = int_of bw;
            smt_wait = int_of sw;
            idle_after_halt = int_of ih;
            dual_issued = int_of di;
            stall_episodes = hist_of_sexp h;
          }
        | _ -> err "bad core row")
      (field_items "cores" s)
  in
  let queues =
    List.map
      (function
        | List [ q; src; dst; tr; mo; h ] ->
          {
            queue = int_of q;
            src = int_of src;
            dst = int_of dst;
            transfers = int_of tr;
            max_occupancy = int_of mo;
            occupancy = hist_of_sexp h;
          }
        | _ -> err "bad queue row")
      (field_items "queues" s)
  in
  let fibers =
    List.map
      (function
        | List [ f; p; l; i; st ] ->
          {
            fiber = int_of f;
            partition = int_of p;
            line = int_of l;
            issue = int_of i;
            stall = int_of st;
          }
        | _ -> err "bad fiber row")
      (field_items "fibers" s)
  in
  {
    kernel = atom (field "kernel" s);
    cycles = int_of (field "cycles" s);
    n_cores = int_of (field "n_cores" s);
    total_core_cycles = int_of (field "total_core_cycles" s);
    wait_cycles = int_of (field "wait_cycles" s);
    instrs = int_of (field "instrs" s);
    cores;
    queues;
    fibers;
    pass_times = [];
    dropped_events = int_of (field "dropped_events" s);
  }

(* ------------------------------------------------------------------ *)
(* Evaluator results, compiler stats.                                   *)

let sexp_of_result (r : Finepar_ir.Eval.result) =
  List
    [
      Atom "result";
      List
        (Atom "live_out"
        :: List.map
             (fun (name, v) -> List [ Atom name; sexp_of_value v ])
             r.Finepar_ir.Eval.live_out);
      List
        (Atom "arrays_out"
        :: List.map
             (fun (name, vals) ->
               List (Atom name :: List.map sexp_of_value (Array.to_list vals)))
             r.Finepar_ir.Eval.arrays_out);
    ]

let result_of_sexp s =
  {
    Finepar_ir.Eval.live_out =
      List.map
        (function
          | List [ Atom name; v ] -> (name, value_of_sexp v)
          | _ -> err "bad live_out binding")
        (field_items "live_out" s);
    arrays_out =
      List.map
        (function
          | List (Atom name :: vals) ->
            (name, Array.of_list (List.map value_of_sexp vals))
          | _ -> err "bad arrays_out binding")
        (field_items "arrays_out" s);
  }

let sexp_of_stats (st : Finepar.Compiler.stats) =
  let open Finepar.Compiler in
  List
    [
      Atom "stats";
      List [ Atom "initial_fibers"; Atom (string_of_int st.initial_fibers) ];
      List [ Atom "data_deps"; Atom (string_of_int st.data_deps) ];
      List [ Atom "load_balance"; float_atom st.load_balance ];
      List [ Atom "com_ops"; Atom (string_of_int st.com_ops) ];
      List
        [ Atom "queue_pairs_static"; Atom (string_of_int st.queue_pairs_static) ];
      List [ Atom "n_partitions"; Atom (string_of_int st.n_partitions) ];
      List [ Atom "merge_steps"; Atom (string_of_int st.merge_steps) ];
      List [ Atom "speculated_ifs"; Atom (string_of_int st.speculated_ifs) ];
    ]

let stats_of_sexp s =
  {
    Finepar.Compiler.initial_fibers = int_of (field "initial_fibers" s);
    data_deps = int_of (field "data_deps" s);
    load_balance = float_of (field "load_balance" s);
    com_ops = int_of (field "com_ops" s);
    queue_pairs_static = int_of (field "queue_pairs_static" s);
    n_partitions = int_of (field "n_partitions" s);
    merge_steps = int_of (field "merge_steps" s);
    speculated_ifs = int_of (field "speculated_ifs" s);
  }

(* ------------------------------------------------------------------ *)
(* Responses.                                                           *)

let sexp_of_response = function
  | Run_result p ->
    List
      [
        Atom "response";
        List [ Atom "kind"; Atom "run" ];
        List [ Atom "cycles"; Atom (string_of_int p.cycles) ];
        List [ Atom "instrs"; Atom (string_of_int p.instrs) ];
        List [ Atom "queues_used"; Atom (string_of_int p.queues_used) ];
        sexp_of_counters "load_counters" p.load_counters;
        sexp_of_result p.result;
        sexp_of_report p.report;
      ]
  | Compile_result st ->
    List [ Atom "response"; List [ Atom "kind"; Atom "compile" ]; sexp_of_stats st ]
  | Verify_result { ok; violations } ->
    List
      [
        Atom "response";
        List [ Atom "kind"; Atom "verify" ];
        List [ Atom "ok"; Atom (string_of_bool ok) ];
        List (Atom "violations" :: List.map (fun v -> Atom v) violations);
      ]
  | Stats_result counters ->
    List
      [
        Atom "response";
        List [ Atom "kind"; Atom "stats" ];
        List
          (Atom "counters"
          :: List.map
               (fun (name, v) -> List [ Atom name; Atom (string_of_int v) ])
               counters);
      ]
  | Pong version ->
    List
      [
        Atom "response";
        List [ Atom "kind"; Atom "pong" ];
        List [ Atom "version"; Atom version ];
      ]
  | Shutdown_ack ->
    List [ Atom "response"; List [ Atom "kind"; Atom "shutdown" ] ]
  | Error message ->
    List
      [
        Atom "response";
        List [ Atom "kind"; Atom "error" ];
        List [ Atom "message"; Atom message ];
      ]

let response_of_sexp s =
  match s with
  | List (Atom "response" :: _) -> (
    match atom (field "kind" s) with
    | "run" ->
      Run_result
        {
          cycles = int_of (field "cycles" s);
          instrs = int_of (field "instrs" s);
          queues_used = int_of (field "queues_used" s);
          load_counters = counters_of_sexp "load_counters" s;
          result = result_of_sexp (section "result" s);
          report = report_of_sexp (section "report" s);
        }
    | "compile" -> Compile_result (stats_of_sexp (section "stats" s))
    | "verify" ->
      Verify_result
        {
          ok = bool_of (field "ok" s);
          violations = List.map atom (field_items "violations" s);
        }
    | "stats" ->
      Stats_result
        (List.map
           (function
             | List [ Atom name; v ] -> (name, int_of v)
             | _ -> err "bad stats counter")
           (field_items "counters" s))
    | "pong" -> Pong (atom (field "version" s))
    | "shutdown" -> Shutdown_ack
    | "error" -> Error (atom (field "message" s))
    | k -> err "unknown response kind %S" k)
  | _ -> err "expected (response ...)"

(* ------------------------------------------------------------------ *)
(* Strings and batches.                                                 *)

let request_to_string r = canon (sexp_of_request r)
let request_of_string s = request_of_sexp (parse_sexp s)
let response_to_string r = canon (sexp_of_response r)
let response_of_string s = response_of_sexp (parse_sexp s)

let batch_of_items items = canon (List (Atom "batch" :: items))

let batch_to_string reqs = batch_of_items (List.map sexp_of_request reqs)

let batch_items_of_string s =
  match parse_sexp s with
  | List (Atom "batch" :: items) -> items
  | _ -> err "expected (batch ...)"

let requests_of_string s = List.map request_of_sexp (batch_items_of_string s)
let responses_of_string s = List.map response_of_sexp (batch_items_of_string s)

(* Reassemble a response batch from already-canonical per-response
   strings without re-rendering, so cached bytes pass through
   untouched. *)
let batch_of_response_strings strs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(batch";
  List.iter
    (fun s ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf s)
    strs;
  Buffer.add_char buf ')';
  Buffer.contents buf
