(** Content-addressed response store: (kernel digest, config digest,
    engine slot, code version) -> canonical response bytes, persisted
    under a sharded directory.  A hit returns the exact bytes a fresh
    computation would produce; corrupted, truncated or mismatched
    entries count as misses (and are removed), never as crashes.
    Writes are atomic (temp file + rename). *)

type key = {
  kernel_digest : string;  (** MD5 hex of {!Wire.kernel_canon} *)
  config_digest : string;  (** MD5 hex of {!Wire.job_canon} *)
  engine : string;  (** {!Wire.engine_slot} *)
  version : string;  (** {!Version.code_version} unless overridden *)
}

type t

val create : ?max_entries:int -> ?version:string -> string -> t
(** [create dir] opens (creating as needed) the store rooted at [dir].
    [max_entries] bounds the entry count: after each store the oldest
    entries by mtime are evicted down to the limit.  [version]
    overrides {!Version.code_version} in every key this handle builds —
    tests use it to show a version bump invalidates the store. *)

val key_of_request : t -> Wire.request -> key option
(** The cache key of a cacheable request; [None] for [Stats]/[Ping]/
    [Shutdown]. *)

val find : t -> key -> string option
(** The stored canonical response bytes, or [None] (counted as a miss;
    corrupt entries additionally count as [corrupt]). *)

val store : t -> key -> string -> unit
(** Persist a canonical response string.  Error responses must not be
    stored (the server never calls this for them). *)

val entries : t -> int
(** Entry files currently on disk. *)

val counters : t -> (string * int) list
(** hits / misses / stores / corrupt / evictions / entries — also
    mirrored as [service.cache.*] {!Finepar_telemetry.Tracer}
    counters. *)

val stats_json : t -> Finepar_telemetry.Json.t
(** {!counters} as the pool-style JSON stats object. *)
