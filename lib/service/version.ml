(** Result-semantics version of the compile-and-simulate pipeline.

    Part of every cache key: a stored entry answers a request only when
    it was computed by the same code version.  Bump this string whenever
    a change can alter any byte of a response for the same request —
    compiler passes, simulator timing, telemetry accounting, or the wire
    encoding itself.  Digests alone cannot capture this (the request
    bytes do not change when the pipeline does), which is why the
    version is a separate key component; see DESIGN.md "Cache-key
    hygiene". *)

(* fp-svc-2: issue_width / comm_mode config axes, dual_issued report
   column — both the request and the response bytes changed. *)
let code_version = "fp-svc-2"
