(** Static queue-protocol verifier — see verify.mli for the contract.

    The implementation works in four stages:

    1. {b structural parse}: each core's code is parsed into a tree of
       straight-line ops, forward-branch guard scopes ([Cond]), backward
       branches ([Loop]), and loop-escaping forward branches ([Break]).
       The code generator only emits reducible control flow, so anything
       else is reported as a [Structure] violation.

    2. {b summarization}: the tree is reduced to the communication
       operations it can execute, each annotated with the polarity path
       of its enclosing guards (paths reset at loop boundaries).  The
       secondary-core driver loop — recognizable as
       [Deq tok; branch-to-halt-if-zero; ...] — is rewritten into its
       per-activation trace: one leading control-token dequeue, the body
       once, one trailing control-token dequeue (the halt token), which
       makes the driver comparable against the primary's run-once spawn
       / collect / halt-token protocol.

    3. {b per-queue alignment}: for every queue, the producer's enqueue
       summary must be isomorphic to the consumer's dequeue summary —
       same loop nesting, same guard polarities, same counts.  Polarity
       paths abstract predicate identity (the two cores hold the
       predicate in different registers), which is exactly the agreement
       the comm pass guarantees: a transfer's enqueue and dequeue carry
       the same predicate list.

    4. {b whole-program checks}: register classes are inferred by a
       forward dataflow over each core's CFG and checked at every
       enqueue; the capacity-bounded wait-for graph is built over an
       unrolling of [queue_len + 4] iterations and searched for cycles;
       and, when the comm plan is available, the in-loop interleaving of
       communication instructions is replayed against the plan's anchor
       order and suffix-min dequeue hoisting. *)

open Finepar_ir
open Finepar_machine
module Comm = Finepar_transform.Comm

type check =
  | Structure
  | Endpoints
  | Typing
  | Balance
  | Fifo
  | Deadlock
  | Protocol
  | Handshake

let check_name = function
  | Structure -> "structure"
  | Endpoints -> "endpoints"
  | Typing -> "typing"
  | Balance -> "balance"
  | Fifo -> "fifo"
  | Deadlock -> "deadlock"
  | Protocol -> "protocol"
  | Handshake -> "handshake"

type violation = {
  v_check : check;
  v_core : int option;
  v_queue : int option;
  v_pc : int option;
  v_message : string;
}

let pp_violation ppf v =
  let opt name ppf = function
    | Some x -> Fmt.pf ppf " %s %d" name x
    | None -> ()
  in
  Fmt.pf ppf "[%s]%a%a%a %s" (check_name v.v_check) (opt "queue") v.v_queue
    (opt "core") v.v_core (opt "pc") v.v_pc v.v_message

type result = {
  violations : violation list;
  queues_checked : int;
  ops_checked : int;
}

let ok r = r.violations = []

exception Rejected of string * violation list

let () =
  Printexc.register_printer (function
    | Rejected (kernel, vs) ->
      Some
        (Fmt.str "Finepar_verify.Verify.Rejected(%s): %a" kernel
           (Fmt.list ~sep:(Fmt.any "; ") pp_violation)
           vs)
    | _ -> None)

let qclass_of_ty = function Types.I64 -> Isa.Qint | Types.F64 -> Isa.Qfloat
let qclass_name = function Isa.Qint -> "int" | Isa.Qfloat -> "float"

(* ------------------------------------------------------------------ *)
(* Structural parse.                                                   *)

type node =
  | Op of int  (** pc *)
  | Cond of { c_pc : int; taken_when : bool; body : node list }
      (** forward guard: [body] executes when the branch register is
          nonzero ([taken_when = true], a [Bz] skip) or zero *)
  | Loop of { head : int; latch : int; body : node list }
  | Break of { b_pc : int }  (** forward branch escaping the loop *)

exception Unstructured of int * string

let parse_core (cp : Program.core_program) =
  let code = cp.Program.code in
  let n = Array.length code in
  let target l = cp.Program.label_pos.(l) in
  (* Loop headers: target position -> back-edge positions.  A header
     can close several nested loops at once — e.g. a shared-cache spin
     handshake lowered as the first body item of a kernel loop shares
     its head pc with the enclosing loop — so every latch is kept and
     peeled outermost-first below. *)
  let latch_of = Hashtbl.create 8 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Isa.Bz (_, l) | Isa.Bnz (_, l) | Isa.Jmp l ->
        let t = target l in
        if t <= pc then begin
          let cur = Option.value (Hashtbl.find_opt latch_of t) ~default:[] in
          Hashtbl.replace latch_of t (pc :: cur)
        end
      | _ -> ())
    code;
  let rec region lo hi =
    let items = ref [] in
    let pc = ref lo in
    while !pc < hi do
      let here = !pc in
      match Hashtbl.find_opt latch_of here with
      | Some latches ->
        let latch = List.fold_left max (-1) latches in
        if latch >= hi then
          raise (Unstructured (here, "loop crosses a scope boundary"));
        (match List.filter (fun p -> p <> latch) latches with
        | [] -> Hashtbl.remove latch_of here
        | inner -> Hashtbl.replace latch_of here inner);
        let body = region here latch in
        items := Loop { head = here; latch; body } :: !items;
        pc := latch + 1
      | None -> (
        let guard taken_when l =
          let t = target l in
          if t <= here then
            raise (Unstructured (here, "irreducible backward branch"))
          else if t <= hi then begin
            let body = region (here + 1) t in
            items := Cond { c_pc = here; taken_when; body } :: !items;
            pc := t
          end
          else begin
            items := Break { b_pc = here } :: !items;
            incr pc
          end
        in
        match code.(here) with
        | Isa.Bz (_, l) -> guard true l
        | Isa.Bnz (_, l) -> guard false l
        | Isa.Jmp _ -> raise (Unstructured (here, "unsupported forward jump"))
        | _ ->
          items := Op here :: !items;
          incr pc)
    done;
    List.rev !items
  in
  region 0 n

(* ------------------------------------------------------------------ *)
(* Summaries: communication ops with guard-polarity paths.             *)

type qop = { o_pc : int; o_queue : int; o_enq : bool; o_path : bool list }

type pitem =
  | P_op of qop
  | P_loop of { l_path : bool list; l_head : int; l_items : pitem list }

(* The secondary driver: a loop whose body starts with a control-token
   dequeue immediately followed by a break-if-zero on the token. *)
let driver_pattern code body =
  match body with
  | Op pc0 :: Break { b_pc } :: rest -> (
    match (code.(pc0), code.(b_pc)) with
    | Isa.Deq (r, q), Isa.Bz (r', _) when r = r' -> Some (pc0, q, rest)
    | _ -> None)
  | _ -> None

(* [summarize] flattens guard scopes into polarity paths (reset inside
   loops) and rewrites driver loops into one activation trace bracketed
   by the spawn and halt control-token dequeues.  Returns the items and
   the recognized handshakes (control queue, token dequeue pc). *)
let summarize code nodes =
  let handshakes = ref [] in
  let rec go path nodes =
    List.concat_map
      (fun nd ->
        match nd with
        | Op pc -> (
          match code.(pc) with
          | Isa.Enq (q, _) ->
            [ P_op { o_pc = pc; o_queue = q; o_enq = true; o_path = path } ]
          | Isa.Deq (_, q) ->
            [ P_op { o_pc = pc; o_queue = q; o_enq = false; o_path = path } ]
          | _ -> [])
        | Break _ -> []
        | Cond { taken_when; body; _ } -> go (path @ [ taken_when ]) body
        | Loop { head; body; _ } -> (
          match driver_pattern code body with
          | Some (tok_pc, q, rest) ->
            handshakes := (q, tok_pc) :: !handshakes;
            let tok =
              P_op { o_pc = tok_pc; o_queue = q; o_enq = false; o_path = path }
            in
            (tok :: go path rest) @ [ tok ]
          | None ->
            [ P_loop { l_path = path; l_head = head; l_items = go [] body } ]))
      nodes
  in
  let items = go [] nodes in
  (items, List.rev !handshakes)

(* Ops of one queue and one direction, preserving loop structure. *)
let rec filter_ops ~queue ~enq items =
  List.filter_map
    (function
      | P_op o when o.o_queue = queue && o.o_enq = enq -> Some (P_op o)
      | P_op _ -> None
      | P_loop l -> (
        match filter_ops ~queue ~enq l.l_items with
        | [] -> None
        | inner -> Some (P_loop { l with l_items = inner })))
    items

let path_str path =
  if path = [] then "(none)"
  else String.concat "" (List.map (fun b -> if b then "+" else "-") path)

let rec count_ops items =
  List.fold_left
    (fun acc it ->
      match it with
      | P_op _ -> acc + 1
      | P_loop l -> acc + count_ops l.l_items)
    0 items

let first_pc items =
  match items with
  | P_op o :: _ -> Some o.o_pc
  | P_loop { l_head; _ } :: _ -> Some l_head
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Balance: producer enqueues vs consumer dequeues, per queue.         *)

(* Structural isomorphism of the two summaries; returns the first
   mismatch as a message with the offending side's position. *)
let rec align_balance prod cons =
  match (prod, cons) with
  | [], [] -> None
  | P_op p :: ps, P_op c :: cs ->
    if p.o_path <> c.o_path then
      Some
        ( Some p.o_pc,
          Fmt.str
            "guard polarity mismatch: enqueue at producer pc %d runs under \
             %s but the matching dequeue at consumer pc %d runs under %s"
            p.o_pc (path_str p.o_path) c.o_pc (path_str c.o_path) )
    else align_balance ps cs
  | P_loop lp :: ps, P_loop lc :: cs ->
    if lp.l_path <> lc.l_path then
      Some
        ( Some lp.l_head,
          Fmt.str
            "loop guard mismatch: producer loop at pc %d under %s, consumer \
             loop at pc %d under %s"
            lp.l_head (path_str lp.l_path) lc.l_head (path_str lc.l_path) )
    else begin
      match align_balance lp.l_items lc.l_items with
      | Some _ as m -> m
      | None -> align_balance ps cs
    end
  | P_op p :: _, P_loop lc :: _ ->
    Some
      ( Some p.o_pc,
        Fmt.str
          "producer enqueues once at pc %d where the consumer dequeues in a \
           loop at pc %d"
          p.o_pc lc.l_head )
  | P_loop lp :: _, P_op c :: _ ->
    Some
      ( Some lp.l_head,
        Fmt.str
          "producer enqueues in a loop at pc %d where the consumer dequeues \
           once at pc %d"
          lp.l_head c.o_pc )
  | (_ :: _ as rest), [] ->
    Some
      ( first_pc rest,
        Fmt.str "producer has %d unmatched enqueue(s)" (count_ops rest) )
  | [], (_ :: _ as rest) ->
    Some
      ( first_pc rest,
        Fmt.str "consumer has %d unmatched dequeue(s)" (count_ops rest) )

(* ------------------------------------------------------------------ *)
(* Typing: register-class dataflow, checked at every enqueue.          *)

type cls = Bot | Cint | Cfloat | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Cint, Cint -> Cint
  | Cfloat, Cfloat -> Cfloat
  | _ -> Top

let cls_of_ty = function Types.I64 -> Cint | Types.F64 -> Cfloat
let ty_of_cls = function Cint -> Some Types.I64 | Cfloat -> Some Types.F64 | Bot | Top -> None
let cls_name = function Cint -> "int" | Cfloat -> "float" | Bot -> "undefined" | Top -> "unknown"

let typing_check add (program : Program.t) =
  let queues = program.Program.queues in
  let nq = Array.length queues in
  Array.iteri
    (fun core (cp : Program.core_program) ->
      let code = cp.Program.code in
      let n = Array.length code in
      if n > 0 && cp.Program.n_regs > 0 then begin
        let nr = cp.Program.n_regs in
        let states = Array.make n [||] in
        let succs pc =
          match code.(pc) with
          | Isa.Bz (_, l) | Isa.Bnz (_, l) ->
            [ pc + 1; cp.Program.label_pos.(l) ]
          | Isa.Jmp l -> [ cp.Program.label_pos.(l) ]
          | Isa.Halt -> []
          | _ -> [ pc + 1 ]
        in
        let transfer st pc =
          let st = Array.copy st in
          let set d c = st.(d) <- c in
          (match code.(pc) with
          | Isa.Li (d, v) -> set d (cls_of_ty (Types.ty_of_value v))
          | Isa.Mov (d, s) -> set d st.(s)
          | Isa.Un (op, d, s) ->
            set d
              (match op with
              | Types.To_int -> Cint
              | Types.To_float -> Cfloat
              | _ -> (
                match ty_of_cls st.(s) with
                | Some ty -> (
                  try cls_of_ty (Types.unop_result_ty op ty)
                  with Types.Type_error _ -> Top)
                | None -> st.(s)))
          | Isa.Bin (op, d, a, b) ->
            set d
              (if Types.is_comparison op then Cint
               else
                 match ty_of_cls (join st.(a) st.(b)) with
                 | Some ty -> (
                   try cls_of_ty (Types.binop_result_ty op ty)
                   with Types.Type_error _ -> Top)
                 | None -> Top)
          | Isa.Sel (d, _, tr, fr) -> set d (join st.(tr) st.(fr))
          | Isa.Load (d, arr, _) ->
            set d (cls_of_ty program.Program.arrays.(arr).Program.arr_ty)
          | Isa.Deq (d, q) ->
            set d
              (if q >= 0 && q < nq then
                 match queues.(q).Isa.cls with
                 | Isa.Qint -> Cint
                 | Isa.Qfloat -> Cfloat
               else Top)
          | Isa.Store _ | Isa.Enq _ | Isa.Bz _ | Isa.Bnz _ | Isa.Jmp _
          | Isa.Halt ->
            ());
          st
        in
        let work = Queue.create () in
        states.(0) <- Array.make nr Bot;
        Queue.add 0 work;
        while not (Queue.is_empty work) do
          let pc = Queue.pop work in
          let out = transfer states.(pc) pc in
          List.iter
            (fun s ->
              if s < n then
                if states.(s) = [||] then begin
                  states.(s) <- out;
                  Queue.add s work
                end
                else begin
                  let changed = ref false in
                  let merged =
                    Array.mapi
                      (fun i c ->
                        let j = join c out.(i) in
                        if j <> c then changed := true;
                        j)
                      states.(s)
                  in
                  if !changed then begin
                    states.(s) <- merged;
                    Queue.add s work
                  end
                end)
            (succs pc)
        done;
        Array.iteri
          (fun pc instr ->
            match instr with
            | Isa.Enq (q, s) when q >= 0 && q < nq && states.(pc) <> [||] -> (
              let c = states.(pc).(s) in
              let want =
                match queues.(q).Isa.cls with
                | Isa.Qint -> Cint
                | Isa.Qfloat -> Cfloat
              in
              match (c, want) with
              | Cint, Cfloat | Cfloat, Cint ->
                add
                  {
                    v_check = Typing;
                    v_core = Some core;
                    v_queue = Some q;
                    v_pc = Some pc;
                    v_message =
                      Fmt.str
                        "enqueue of %s register r%d onto %s queue %d"
                        (cls_name c) s
                        (qclass_name queues.(q).Isa.cls)
                        q;
                  }
              | _ -> ())
            | Isa.Store (arr, _, s)
              when arr >= 0
                   && arr < Array.length program.Program.arrays
                   && Comm.is_comm_array_name
                        program.Program.arrays.(arr).Program.arr_name
                   && states.(pc) <> [||] -> (
              (* Shared-cache mode: a torn transfer (wrong value class
                 stored into a handshake slot) is the analogue of
                 enqueueing onto the wrong-class queue. *)
              let c = states.(pc).(s) in
              let want =
                cls_of_ty program.Program.arrays.(arr).Program.arr_ty
              in
              match (c, want) with
              | Cint, Cfloat | Cfloat, Cint ->
                add
                  {
                    v_check = Typing;
                    v_core = Some core;
                    v_queue = None;
                    v_pc = Some pc;
                    v_message =
                      Fmt.str
                        "torn transfer: store of %s register r%d into %s \
                         handshake array %s"
                        (cls_name c) s (cls_name want)
                        program.Program.arrays.(arr).Program.arr_name;
                  }
              | _ -> ())
            | _ -> ())
          code
      end)
    program.Program.cores

(* ------------------------------------------------------------------ *)
(* Endpoints.                                                          *)

let endpoints_check add (program : Program.t) =
  let queues = program.Program.queues in
  let nq = Array.length queues in
  Array.iteri
    (fun core (cp : Program.core_program) ->
      Array.iteri
        (fun pc instr ->
          let bad q msg =
            add
              {
                v_check = Endpoints;
                v_core = Some core;
                v_queue = Some q;
                v_pc = Some pc;
                v_message = msg;
              }
          in
          match instr with
          | Isa.Enq (q, _) ->
            if q < 0 || q >= nq then
              bad q (Fmt.str "enqueue on unknown queue %d" q)
            else if queues.(q).Isa.src <> core then
              bad q
                (Fmt.str
                   "enqueue on queue %d (%d->%d %s) from core %d, which is \
                    not its source"
                   q queues.(q).Isa.src queues.(q).Isa.dst
                   (qclass_name queues.(q).Isa.cls)
                   core)
          | Isa.Deq (_, q) ->
            if q < 0 || q >= nq then
              bad q (Fmt.str "dequeue on unknown queue %d" q)
            else if queues.(q).Isa.dst <> core then
              bad q
                (Fmt.str
                   "dequeue on queue %d (%d->%d %s) from core %d, which is \
                    not its destination"
                   q queues.(q).Isa.src queues.(q).Isa.dst
                   (qclass_name queues.(q).Isa.cls)
                   core)
          | _ -> ())
        cp.Program.code)
    program.Program.cores

(* ------------------------------------------------------------------ *)
(* Driver handshake protocol.                                          *)

(* Registers holding a compile-time constant: defined exactly once, by
   a [Li].  The token registers come from the constant pool, so this is
   precise where it matters. *)
let const_table (cp : Program.core_program) =
  let defs = Array.make (max 1 cp.Program.n_regs) 0 in
  let vals = Array.make (max 1 cp.Program.n_regs) None in
  Array.iter
    (fun instr ->
      (match Isa.dst instr with
      | Some d -> defs.(d) <- defs.(d) + 1
      | None -> ());
      match instr with
      | Isa.Li (d, v) -> vals.(d) <- Some v
      | _ -> ())
    cp.Program.code;
  fun r -> if defs.(r) = 1 then vals.(r) else None

let protocol_check add (program : Program.t) summaries =
  let queues = program.Program.queues in
  let nq = Array.length queues in
  Array.iteri
    (fun core (_, handshakes) ->
      List.iter
        (fun (q, tok_pc) ->
          if q >= 0 && q < nq && queues.(q).Isa.dst = core then begin
            let src = queues.(q).Isa.src in
            if src >= 0 && src < Array.length program.Program.cores then begin
              let cp = program.Program.cores.(src) in
              let const = const_table cp in
              let enq_const pc =
                match cp.Program.code.(pc) with
                | Isa.Enq (_, r) -> const r
                | _ -> None
              in
              let prod_items, _ = summaries.(src) in
              let prod = filter_ops ~queue:q ~enq:true prod_items in
              let bad pc msg =
                add
                  {
                    v_check = Protocol;
                    v_core = Some src;
                    v_queue = Some q;
                    v_pc = pc;
                    v_message = msg;
                  }
              in
              match prod with
              | [] ->
                bad (Some tok_pc)
                  (Fmt.str
                     "core %d drives its loop from queue %d but core %d \
                      never enqueues a control token on it"
                     core q src)
              | first :: _ -> (
                (match first with
                | P_op o -> (
                  match enq_const o.o_pc with
                  | Some (Types.VInt v) when v <> 0 -> ()
                  | Some v ->
                    bad (Some o.o_pc)
                      (Fmt.str
                         "first control token on queue %d is %a, expected a \
                          nonzero integer spawn token"
                         q Types.pp_value_human v)
                  | None ->
                    bad (Some o.o_pc)
                      (Fmt.str
                         "first control token on queue %d is not a constant"
                         q))
                | P_loop l ->
                  bad (Some l.l_head)
                    (Fmt.str
                       "queue %d feeds a driver loop but the producer's \
                        first enqueue sits inside a loop at pc %d"
                       q l.l_head));
                match List.rev prod with
                | P_op o :: _ -> (
                  match enq_const o.o_pc with
                  | Some (Types.VInt 0) -> ()
                  | Some v ->
                    bad (Some o.o_pc)
                      (Fmt.str
                         "last control token on queue %d is %a, expected the \
                          zero halt token"
                         q Types.pp_value_human v)
                  | None ->
                    bad (Some o.o_pc)
                      (Fmt.str
                         "last control token on queue %d is not a constant" q))
                | P_loop l :: _ ->
                  bad (Some l.l_head)
                    (Fmt.str
                       "queue %d feeds a driver loop but the producer's last \
                        enqueue sits inside a loop at pc %d"
                       q l.l_head)
                | [] -> ())
            end
          end)
        handshakes)
    summaries

(* ------------------------------------------------------------------ *)
(* Capacity-bounded deadlock freedom.                                  *)

(* Unroll every loop [u] times and list the queue ops in execution
   order.  [u >= queue_len + a few] iterations saturate the wait-for
   graph: program-order and capacity edges repeat with period one
   iteration, so any cycle appears within the first [queue_len + 2]
   unrollings. *)
let expand u items =
  let rec go acc items =
    List.fold_left
      (fun acc it ->
        match it with
        | P_op o -> o :: acc
        | P_loop l ->
          let rec rep acc k = if k = 0 then acc else rep (go acc l.l_items) (k - 1) in
          rep acc u)
      acc items
  in
  List.rev (go [] items)

(* Find a cycle in the waits-on digraph; returns it oldest-first, each
   node waiting on the next, the last waiting on the first. *)
let find_cycle n_nodes prereqs =
  let color = Array.make n_nodes 0 in
  let parent = Array.make n_nodes (-1) in
  let cycle = ref None in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if !cycle = None then
          if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
          else if color.(v) = 1 then begin
            let rec collect acc x =
              if x = v then v :: acc else collect (x :: acc) parent.(x)
            in
            cycle := Some (collect [] u)
          end)
      prereqs.(u);
    color.(u) <- 2
  in
  let i = ref 0 in
  while !cycle = None && !i < n_nodes do
    if color.(!i) = 0 then dfs !i;
    incr i
  done;
  !cycle

let deadlock_check add ~queue_len (program : Program.t) summaries =
  let nq = Array.length program.Program.queues in
  let u = queue_len + 4 in
  (* Per-core instance streams, globally indexed. *)
  let instances = ref [] in
  let n_nodes = ref 0 in
  let per_core =
    Array.mapi
      (fun core (items, _) ->
        let ops = expand u items in
        let ids =
          List.map
            (fun (o : qop) ->
              let id = !n_nodes in
              incr n_nodes;
              instances := (id, core, o) :: !instances;
              id)
            ops
        in
        (ids, ops))
      summaries
  in
  let n = !n_nodes in
  let instance = Array.make (max 1 n) (0, { o_pc = 0; o_queue = 0; o_enq = true; o_path = [] }) in
  List.iter (fun (id, core, o) -> instance.(id) <- (core, o)) !instances;
  let prereqs = Array.make (max 1 n) [] in
  let edge a b = prereqs.(a) <- b :: prereqs.(a) in
  (* Program order: a queue op waits on the previous queue op of its
     core (in-order, single-issue cores block on queue instructions). *)
  Array.iter
    (fun (ids, _) ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
          edge b a;
          chain rest
        | _ -> []
      in
      ignore (chain ids))
    per_core;
  (* Comm and capacity edges, per queue. *)
  for q = 0 to nq - 1 do
    let enqs = ref [] and deqs = ref [] in
    Array.iter
      (fun (ids, ops) ->
        List.iter2
          (fun id (o : qop) ->
            if o.o_queue = q then
              if o.o_enq then enqs := id :: !enqs else deqs := id :: !deqs)
          ids ops)
      per_core;
    let enqs = Array.of_list (List.rev !enqs) in
    let deqs = Array.of_list (List.rev !deqs) in
    (* The k-th dequeue waits on the k-th enqueue (FIFO). *)
    for k = 0 to min (Array.length enqs) (Array.length deqs) - 1 do
      edge deqs.(k) enqs.(k)
    done;
    (* The k-th enqueue waits on dequeue k - capacity freeing a slot. *)
    for k = queue_len to Array.length enqs - 1 do
      if k - queue_len < Array.length deqs then
        edge enqs.(k) deqs.(k - queue_len)
    done
  done;
  match find_cycle n prereqs with
  | None -> ()
  | Some cyc ->
    (* Compress per-iteration repeats: unique (core, pc) in order. *)
    let seen = Hashtbl.create 8 in
    let uniq =
      List.filter
        (fun id ->
          let core, o = instance.(id) in
          if Hashtbl.mem seen (core, o.o_pc) then false
          else begin
            Hashtbl.add seen (core, o.o_pc) ();
            true
          end)
        cyc
    in
    let describe id =
      let core, o = instance.(id) in
      Fmt.str "core %d %s q%d (pc %d)" core
        (if o.o_enq then "enq" else "deq")
        o.o_queue o.o_pc
    in
    let shown = List.filteri (fun i _ -> i < 8) uniq in
    let core0, op0 =
      match uniq with id :: _ -> instance.(id) | [] -> instance.(List.hd cyc)
    in
    add
      {
        v_check = Deadlock;
        v_core = Some core0;
        v_queue = Some op0.o_queue;
        v_pc = Some op0.o_pc;
        v_message =
          Fmt.str "static wait-for cycle: %s -> %s%s"
            (String.concat " -> " (List.map describe shown))
            (describe (List.hd uniq))
            (if List.length uniq > 8 then
               Fmt.str " (%d ops in cycle)" (List.length uniq)
             else "");
      }

(* ------------------------------------------------------------------ *)
(* Plan conformance: FIFO consistency of the lowered kernel loop.      *)

(* In-loop ops of a summary, flattened in order (paths kept). *)
let in_loop_ops items =
  let rec under items =
    List.concat_map
      (function P_op o -> [ o ] | P_loop l -> under l.l_items)
      items
  in
  List.concat_map
    (function P_op _ -> [] | P_loop l -> under l.l_items)
    items

let conformance_check add (program : Program.t) (plan : Comm.t) summaries =
  let queues = program.Program.queues in
  let qid_of =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun i (s : Isa.queue_spec) ->
        Hashtbl.replace tbl (s.Isa.src, s.Isa.dst, s.Isa.cls) i)
      queues;
    fun (tr : Comm.transfer) ->
      Hashtbl.find_opt tbl
        (tr.Comm.src_core, tr.Comm.dst_core, qclass_of_ty tr.Comm.ty)
  in
  let wants (tr : Comm.transfer) =
    List.map (fun (p : Region.pred) -> p.Region.want) tr.Comm.preds
  in
  Array.iteri
    (fun core (items, _) ->
      let fail pc queue msg =
        add
          {
            v_check = Fifo;
            v_core = Some core;
            v_queue = queue;
            v_pc = pc;
            v_message = msg;
          }
      in
      let missing = ref false in
      let event key enq tr =
        match qid_of tr with
        | Some q -> Some (key, (enq, q, wants tr))
        | None ->
          if not !missing then
            fail None None
              (Fmt.str
                 "plan transfer of %s (%d->%d %s) has no queue in the \
                  lowered program"
                 tr.Comm.var tr.Comm.src_core tr.Comm.dst_core
                 (qclass_name (qclass_of_ty tr.Comm.ty)));
          missing := true;
          None
      in
      (* Expected enqueues: anchor order, as Lower sorts them. *)
      let enqs =
        List.filter_map
          (fun (tr : Comm.transfer) ->
            if tr.Comm.src_core = core then
              event (tr.Comm.enq_anchor, 2, tr.Comm.seq) true tr
            else None)
          plan.Comm.transfers
      in
      (* Expected dequeues: producer-anchor order with the suffix-min
         hoist, replicating Lower's placement keys. *)
      let deq_trs =
        List.filter
          (fun (tr : Comm.transfer) -> tr.Comm.dst_core = core)
          plan.Comm.transfers
        |> List.sort (fun (a : Comm.transfer) (b : Comm.transfer) ->
               compare
                 (a.Comm.enq_anchor, a.Comm.src_core, a.Comm.ty, a.Comm.seq)
                 (b.Comm.enq_anchor, b.Comm.src_core, b.Comm.ty, b.Comm.seq))
        |> Array.of_list
      in
      let anchors = Array.map (fun tr -> tr.Comm.deq_anchor) deq_trs in
      for i = Array.length anchors - 2 downto 0 do
        if anchors.(i + 1) < anchors.(i) then anchors.(i) <- anchors.(i + 1)
      done;
      let deqs =
        List.filter_map Fun.id
          (List.init (Array.length deq_trs) (fun i ->
               event (anchors.(i), 0, i) false deq_trs.(i)))
      in
      if not !missing then begin
        let expected =
          List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (enqs @ deqs)
        in
        let actual = in_loop_ops items in
        let n_exp = List.length expected and n_act = List.length actual in
        if n_exp <> n_act then
          fail (first_pc items) None
            (Fmt.str
               "kernel loop carries %d communication op(s) but the comm \
                plan schedules %d"
               n_act n_exp)
        else begin
          (* Walk expected in key groups; within a group (enqueues with
             identical anchor and seq) any order is a valid sort. *)
          let cmp = compare in
          let rec walk expected actual =
            match expected with
            | [] -> ()
            | (key, _) :: _ ->
              let group, expected' =
                List.partition (fun (k, _) -> k = key) expected
              in
              let g = List.length group in
              let rec split n acc l =
                if n = 0 then (List.rev acc, l)
                else
                  match l with
                  | x :: rest -> split (n - 1) (x :: acc) rest
                  | [] -> (List.rev acc, [])
              in
              let here, actual' = split g [] actual in
              let exp_sig = List.sort cmp (List.map snd group) in
              let act_sig =
                List.sort cmp
                  (List.map
                     (fun (o : qop) -> (o.o_enq, o.o_queue, o.o_path))
                     here)
              in
              if exp_sig <> act_sig then begin
                let pc =
                  match here with o :: _ -> Some o.o_pc | [] -> None
                in
                let queue =
                  match exp_sig with (_, q, _) :: _ -> Some q | [] -> None
                in
                fail pc queue
                  (Fmt.str
                     "in-loop comm order deviates from the plan: expected \
                      %s, found %s"
                     (String.concat "+"
                        (List.map
                           (fun (e, q, _) ->
                             Fmt.str "%s q%d" (if e then "enq" else "deq") q)
                           exp_sig))
                     (String.concat "+"
                        (List.map
                           (fun (e, q, _) ->
                             Fmt.str "%s q%d" (if e then "enq" else "deq") q)
                           act_sig)))
              end
              else walk expected' actual'
          in
          walk expected actual
        end
      end)
    summaries

(* ------------------------------------------------------------------ *)
(* Shared-cache handshake conformance.                                 *)

(* One recognized valid-flag handshake: a spin loop on the flag array
   followed by the data access and the flag release. *)
type sc_op = {
  sc_pc : int;  (** pc of the spin-loop head *)
  sc_send : bool;
  sc_flag : int;  (** flag slot index *)
  sc_data : int;  (** data slot index *)
  sc_cls : cls;  (** class of the data array accessed *)
  sc_path : bool list;
}

let shared_check add (program : Program.t) (plan : Comm.t) parsed =
  let arrays = program.Program.arrays in
  let arr_named name =
    let r = ref None in
    Array.iteri
      (fun i (l : Program.array_layout) ->
        if String.equal l.Program.arr_name name then r := Some i)
      arrays;
    !r
  in
  let flag_arr = arr_named Comm.flag_array_name in
  let is_comm_arr a =
    a >= 0
    && a < Array.length arrays
    && Comm.is_comm_array_name arrays.(a).Program.arr_name
  in
  let slot_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((tr : Comm.transfer), (s : Comm.slot)) ->
        Hashtbl.replace tbl
          (tr.Comm.src_core, tr.Comm.dst_core, tr.Comm.ty, tr.Comm.seq)
          s)
      (Comm.shared_slots plan);
    fun (tr : Comm.transfer) ->
      Hashtbl.find
        tbl
        (tr.Comm.src_core, tr.Comm.dst_core, tr.Comm.ty, tr.Comm.seq)
  in
  let wants (tr : Comm.transfer) =
    List.map (fun (p : Region.pred) -> p.Region.want) tr.Comm.preds
  in
  let sig_str (send, f, d, c, _path) =
    Fmt.str "%s flag%d/%s%d"
      (if send then "send" else "recv")
      f (cls_name c) d
  in
  Array.iteri
    (fun core (nodes, (items, _)) ->
      let cp = program.Program.cores.(core) in
      let code = cp.Program.code in
      let const = const_table cp in
      let fail pc msg =
        add
          {
            v_check = Handshake;
            v_core = Some core;
            v_queue = None;
            v_pc = pc;
            v_message = msg;
          }
      in
      (* In shared-cache mode the kernel loop is queue-free: the only
         queue instructions are the driver protocol outside the loop. *)
      (match in_loop_ops items with
      | [] -> ()
      | o :: _ ->
        fail (Some o.o_pc)
          "queue instruction inside the kernel loop in shared-cache mode");
      (* Collect handshakes from the node tree; any other access to a
         handshake array (a reordered flag write, a stray load) is
         malformed. *)
      let ops = ref [] in
      let const_int pc r what =
        match const r with
        | Some (Types.VInt v) -> Some v
        | Some _ | None ->
          fail (Some pc) (Fmt.str "%s is not an integer constant" what);
          None
      in
      let spin_of nd =
        match (nd, flag_arr) with
        | Loop { head; latch; body = [ Op h ] }, Some fa when h = head -> (
          match (code.(head), code.(latch)) with
          | Isa.Load (rt, a, rf), Isa.Bnz (rb, _) when a = fa && rb = rt ->
            (* spins while the flag is set: producer side *)
            Some (true, head, rf)
          | Isa.Load (rt, a, rf), Isa.Bz (rb, _) when a = fa && rb = rt ->
            (* spins while the flag is clear: consumer side *)
            Some (false, head, rf)
          | _ -> None)
        | _ -> None
      in
      let rec go path nodes =
        match nodes with
        | [] -> ()
        | nd :: rest -> (
          match spin_of nd with
          | Some (send, head, rf) -> (
            let record flag_slot data_arr data_slot =
              ops :=
                {
                  sc_pc = head;
                  sc_send = send;
                  sc_flag = flag_slot;
                  sc_data = data_slot;
                  sc_cls = cls_of_ty arrays.(data_arr).Program.arr_ty;
                  sc_path = path;
                }
                :: !ops
            in
            let check_body p1 p2 da ri rf2 rv rest' =
              (match
                 ( const_int head rf "spin flag index",
                   const_int p2 rf2 "flag release index",
                   const_int p1 ri "data slot index",
                   const_int p2 rv "flag release value" )
               with
              | Some f1, Some f2, Some d, Some v ->
                if f1 <> f2 then
                  fail (Some p2)
                    (Fmt.str
                       "handshake at pc %d spins on flag slot %d but writes \
                        flag slot %d"
                       head f1 f2);
                if send && v = 0 then
                  fail (Some p2)
                    (Fmt.str
                       "producer handshake at pc %d publishes a zero flag \
                        token"
                       head);
                if (not send) && v <> 0 then
                  fail (Some p2)
                    (Fmt.str
                       "consumer handshake at pc %d releases its slot with a \
                        nonzero flag token"
                       head);
                record f1 da d
              | _ -> ());
              go path rest'
            in
            match rest with
            | Op p1 :: Op p2 :: rest' -> (
              match (send, code.(p1), code.(p2)) with
              | true, Isa.Store (da, ri, _), Isa.Store (fa2, rf2, rv)
                when is_comm_arr da && Some fa2 = flag_arr ->
                check_body p1 p2 da ri rf2 rv rest'
              | false, Isa.Load (_, da, ri), Isa.Store (fa2, rf2, rv)
                when is_comm_arr da && Some fa2 = flag_arr ->
                check_body p1 p2 da ri rf2 rv rest'
              | _ ->
                fail (Some head)
                  (Fmt.str
                     "%s spin at pc %d is not followed by the data access \
                      and the flag write"
                     (if send then "producer" else "consumer")
                     head);
                go path rest)
            | _ ->
              fail (Some head)
                (Fmt.str "spin loop at pc %d has no handshake body" head);
              go path rest)
          | None -> (
            match nd with
            | Op pc ->
              (match code.(pc) with
              | (Isa.Load (_, a, _) | Isa.Store (a, _, _)) when is_comm_arr a
                ->
                fail (Some pc)
                  (Fmt.str
                     "access to handshake array %s outside a recognized \
                      handshake"
                     arrays.(a).Program.arr_name)
              | _ -> ());
              go path rest
            | Cond { taken_when; body; _ } ->
              go (path @ [ taken_when ]) body;
              go path rest
            | Loop { body; _ } ->
              go [] body;
              go path rest
            | Break _ -> go path rest))
      in
      go [] nodes;
      let actual = List.rev !ops in
      (* Expected handshakes: the plan's transfers under the exact sort
         keys the code generator uses (sends in anchor order, receives
         in producer-anchor order with the suffix-min hoist). *)
      let sig_of send tr =
        let sl = slot_of tr in
        ( send,
          sl.Comm.sl_flag,
          sl.Comm.sl_data,
          cls_of_ty tr.Comm.ty,
          wants tr )
      in
      let sends =
        List.filter_map
          (fun (tr : Comm.transfer) ->
            if tr.Comm.src_core = core then
              Some ((tr.Comm.enq_anchor, 2, tr.Comm.seq), sig_of true tr)
            else None)
          plan.Comm.transfers
      in
      let recv_trs =
        List.filter
          (fun (tr : Comm.transfer) -> tr.Comm.dst_core = core)
          plan.Comm.transfers
        |> List.sort (fun (a : Comm.transfer) (b : Comm.transfer) ->
               compare
                 (a.Comm.enq_anchor, a.Comm.src_core, a.Comm.ty, a.Comm.seq)
                 (b.Comm.enq_anchor, b.Comm.src_core, b.Comm.ty, b.Comm.seq))
        |> Array.of_list
      in
      let anchors = Array.map (fun tr -> tr.Comm.deq_anchor) recv_trs in
      for i = Array.length anchors - 2 downto 0 do
        if anchors.(i + 1) < anchors.(i) then anchors.(i) <- anchors.(i + 1)
      done;
      let recvs =
        List.init (Array.length recv_trs) (fun i ->
            ((anchors.(i), 0, i), sig_of false recv_trs.(i)))
      in
      let expected =
        List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (sends @ recvs)
      in
      let n_exp = List.length expected and n_act = List.length actual in
      if n_exp <> n_act then
        fail None
          (Fmt.str "core carries %d handshake(s) but the comm plan schedules %d"
             n_act n_exp)
      else begin
        (* Same group-tolerant walk as the queue-mode FIFO check: within
           a key group any order is a valid sort. *)
        let rec walk expected actual =
          match expected with
          | [] -> ()
          | (key, _) :: _ ->
            let group, expected' =
              List.partition (fun (k, _) -> k = key) expected
            in
            let g = List.length group in
            let rec split n acc l =
              if n = 0 then (List.rev acc, l)
              else
                match l with
                | x :: rest -> split (n - 1) (x :: acc) rest
                | [] -> (List.rev acc, [])
            in
            let here, actual' = split g [] actual in
            let exp_sig = List.sort compare (List.map snd group) in
            let act_sig =
              List.sort compare
                (List.map
                   (fun o ->
                     (o.sc_send, o.sc_flag, o.sc_data, o.sc_cls, o.sc_path))
                   here)
            in
            if exp_sig <> act_sig then
              fail
                (match here with o :: _ -> Some o.sc_pc | [] -> None)
                (Fmt.str
                   "handshake order deviates from the plan: expected %s, \
                    found %s"
                   (String.concat "+" (List.map sig_str exp_sig))
                   (String.concat "+" (List.map sig_str act_sig)))
            else walk expected' actual'
        in
        walk expected actual
      end)
    parsed

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let run ?plan ?(mode = Comm.Queues) ~queue_len (program : Program.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let ops_checked =
    Array.fold_left
      (fun acc (cp : Program.core_program) ->
        Array.fold_left
          (fun acc i ->
            match i with Isa.Enq _ | Isa.Deq _ -> acc + 1 | _ -> acc)
          acc cp.Program.code)
      0 program.Program.cores
  in
  endpoints_check add program;
  typing_check add program;
  let parsed =
    Array.mapi
      (fun core cp ->
        match parse_core cp with
        | nodes -> Some (nodes, summarize cp.Program.code nodes)
        | exception Unstructured (pc, msg) ->
          add
            {
              v_check = Structure;
              v_core = Some core;
              v_queue = None;
              v_pc = Some pc;
              v_message = msg;
            };
          None)
      program.Program.cores
  in
  (if Array.for_all Option.is_some parsed then begin
     let both = Array.map Option.get parsed in
     let summaries = Array.map snd both in
     (* Balance per queue. *)
     Array.iteri
       (fun q (spec : Isa.queue_spec) ->
         let n_cores = Array.length program.Program.cores in
         if
           spec.Isa.src >= 0 && spec.Isa.src < n_cores && spec.Isa.dst >= 0
           && spec.Isa.dst < n_cores
         then begin
           let prod_items, _ = summaries.(spec.Isa.src) in
           let cons_items, _ = summaries.(spec.Isa.dst) in
           let prod = filter_ops ~queue:q ~enq:true prod_items in
           let cons = filter_ops ~queue:q ~enq:false cons_items in
           match align_balance prod cons with
           | None -> ()
           | Some (pc, msg) ->
             add
               {
                 v_check = Balance;
                 v_core = None;
                 v_queue = Some q;
                 v_pc = pc;
                 v_message =
                   Fmt.str "queue %d (%d->%d %s): %s" q spec.Isa.src
                     spec.Isa.dst
                     (qclass_name spec.Isa.cls)
                     msg;
               }
         end
         else
           add
             {
               v_check = Endpoints;
               v_core = None;
               v_queue = Some q;
               v_pc = None;
               v_message =
                 Fmt.str "queue %d endpoints (%d->%d) are not cores" q
                   spec.Isa.src spec.Isa.dst;
             })
       program.Program.queues;
     protocol_check add program summaries;
     deadlock_check add ~queue_len program summaries;
     match plan with
     | Some p -> (
       match mode with
       | Comm.Queues -> conformance_check add program p summaries
       | Comm.Shared_cache -> shared_check add program p both)
     | None -> ()
   end);
  {
    violations = List.rev !violations;
    queues_checked = Array.length program.Program.queues;
    ops_checked;
  }
