(** Static queue-protocol verifier.

    Runs over a lowered {!Finepar_machine.Program.t} (and, when
    available, the {!Finepar_transform.Comm.t} transfer plan) and proves
    four properties of the inter-core communication before a single
    cycle is simulated:

    - {b endpoints}: every [Enq] executes on its queue's source core and
      every [Deq] on its destination core;
    - {b balance and type agreement}: along every feasible predicate
      path, each queue's enqueue sequence on the producer core matches
      the dequeue sequence on the consumer core — same loop nesting,
      same guard polarities, same count — and every enqueued register
      has the queue's value class (int vs float), inferred by dataflow;
    - {b capacity-bounded deadlock freedom}: the cross-core wait-for
      graph induced by program order, queue FIFO order, and the finite
      queue capacity (an enqueue [k] cannot complete before dequeue
      [k - capacity]) is acyclic over a sufficient loop unrolling;
    - {b FIFO consistency} (plan-directed): the per-core interleaving of
      communication instructions inside the kernel loop is exactly the
      one the comm plan promises — enqueues in anchor order, dequeues in
      producer-anchor order hoisted by the suffix-min rule of
      [Transform.Comm] — and each op sits under the guard polarities of
      its transfer's predicates.

    The verifier is conservative: it treats every guarded operation as
    executable (a matched enqueue/dequeue pair under the same guard
    drops out together, so a cycle found on any sub-path is a cycle of
    the full graph) and recognizes the one irregular construct the code
    generator emits — the secondary-core driver loop, whose spawn /
    halt-token handshake is checked separately (first control token a
    nonzero constant, last a zero constant).

    What remains dynamic-only: operand-latency waits, actual trip
    counts, memory effects, and value-dependent guard outcomes (the
    verifier proves path-wise consistency, not path feasibility).

    In [Shared_cache] mode (see {!Finepar_transform.Comm.mode}) the
    kernel-loop transfers are valid-flag handshakes over the synthetic
    ["__comm_*"] arrays instead of queue instructions, and the
    plan-directed check changes accordingly: every access to a
    handshake array must belong to a well-formed producer
    (spin-while-set, store data, set flag) or consumer (spin-while-
    clear, load data, clear flag) sequence; flag and data slot indices
    must be constants agreeing with the plan's canonical slot
    assignment on both cores of each transfer; the per-core handshake
    order must replay the plan's anchor order (the same keys as the
    queue-mode FIFO check); the value stored into a data slot must have
    the slot's class (no torn int/float transfers); and the kernel loop
    must carry no queue instructions at all — the driver protocol
    (spawn, entry values, live-outs, halt tokens) stays on queues and
    keeps its queue-mode checks. *)

type check =
  | Structure  (** code is not reducible to loops + forward guards *)
  | Endpoints  (** queue op on the wrong core, or bad queue id *)
  | Typing  (** enqueued register class differs from the queue class *)
  | Balance  (** producer/consumer sequences of a queue disagree *)
  | Fifo  (** in-loop comm interleaving deviates from the comm plan *)
  | Deadlock  (** static wait-for cycle *)
  | Protocol  (** malformed driver spawn/halt-token handshake *)
  | Handshake
      (** shared-cache mode: malformed or misplaced valid-flag
          handshake, or slot disagreement with the comm plan *)

val check_name : check -> string

type violation = {
  v_check : check;
  v_core : int option;
  v_queue : int option;
  v_pc : int option;
  v_message : string;
}

val pp_violation : Format.formatter -> violation -> unit

type result = {
  violations : violation list;
  queues_checked : int;
  ops_checked : int;  (** queue instructions examined *)
}

val ok : result -> bool

exception Rejected of string * violation list
(** Raised by {!Finepar.Compiler.compile} when verification fails:
    kernel name and the violations.  A printer is registered. *)

val run :
  ?plan:Finepar_transform.Comm.t ->
  ?mode:Finepar_transform.Comm.mode ->
  queue_len:int ->
  Finepar_machine.Program.t ->
  result
(** Verify [program] against a queue capacity of [queue_len] slots.
    With [?plan] the plan-directed check additionally validates the
    lowered code against the comm plan: in [Queues] mode (the default)
    the FIFO-consistency check, in [Shared_cache] mode the valid-flag
    handshake check.  Without a plan only the plan-independent checks
    run (useful for hand-built programs). *)
