(** Machine parameters.

    Defaults model the evaluation platform of Section V: in-order A2-like
    cores, queue length 20 slots, queue transfer latency 5 cycles
    (Figure 13 sweeps it to 20, 50 and 100), enqueue/dequeue occupying one
    pipeline slot. *)

type t = {
  queue_len : int;  (** slots per point-to-point queue *)
  transfer_latency : int;
      (** min cycles before an enqueued value is visible at the consumer *)
  l1_bytes : int;
  l1_line : int;
  l2_bytes : int;
  l1_hit : int;  (** load-to-use latency on an L1 hit *)
  l2_hit : int;  (** latency on an L1 miss that hits L2 *)
  mem_latency : int;  (** latency on an L2 miss *)
  branch_taken_penalty : int;  (** extra cycles after a taken branch *)
  deq_latency : int;  (** cycles from dequeue issue to value availability *)
  max_cycles : int;  (** safety/deadlock bound for one simulation *)
  issue_width : int;
      (** instructions a core may issue per cycle (>= 1); width 2 models
          the dual-issue lightweight cores of Colagrande & Benini *)
}

let default =
  {
    queue_len = 20;
    transfer_latency = 5;
    l1_bytes = 16 * 1024;
    l1_line = 64;
    l2_bytes = 4 * 1024 * 1024;
    l1_hit = 6;
    l2_hit = 40;
    mem_latency = 200;
    branch_taken_penalty = 1;
    deq_latency = 1;
    max_cycles = 200_000_000;
    issue_width = 1;
  }

let with_transfer_latency latency t = { t with transfer_latency = latency }
let with_issue_width width t = { t with issue_width = width }
