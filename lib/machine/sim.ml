(** Cycle-level multi-core simulator.

    Cores are in-order, with a register scoreboard: an instruction
    issues once its operands are ready, and at most
    [Config.issue_width] instructions issue per core per cycle (default
    1); results become available after the operation latency.  At width
    W >= 2 a core issues a bundle: after the first issue of a cycle it
    keeps issuing as long as execution fell straight through (pc
    advanced by one, no extra penalty pending, not halted) and the next
    instruction's operands and queue gates are ready — so a RAW hazard,
    a taken branch, or a blocked queue ends the bundle, and a refused
    extra slot records no stall (the cycle is already accounted to the
    bundle's first issue).  Loads consult a private L1 / shared L2 hierarchy.
    Enqueue and dequeue follow the semantics of Section II and Fig. 11:
    enqueue blocks while the queue is full, dequeue blocks until the head
    value's [enqueue time + transfer latency] has elapsed.

    The simulator executes real values, so the outputs of a parallel run
    can be compared bit-for-bit against the reference evaluator. *)

open Finepar_ir

(** What a non-halted core is waiting on when the simulator gives up. *)
type wait =
  | Wait_queue_full of int  (** blocked enqueue: queue id *)
  | Wait_queue_empty of int
      (** blocked dequeue (empty, or head not yet visible): queue id *)
  | Wait_operand  (** a source register's result is still in flight *)
  | Wait_issue  (** not blocked per se (branch penalty, SMT arbitration) *)

type blocked_core = {
  bc_core : int;
  bc_pc : int;
  bc_instr : Isa.instr;
  bc_wait : wait;
}

type queue_occupancy = {
  qo_id : int;
  qo_spec : Isa.queue_spec;
  qo_occupancy : int;
  qo_capacity : int;
}

type stuck_reason =
  | Deadlock of { window : int }
      (** no core issued for [window] consecutive cycles *)
  | Max_cycles of { limit : int }  (** the configured cycle budget ran out *)
  | Fault of string
      (** a malformed execution: out-of-bounds access, type misuse of a
          register, running off the end of a core's code *)

(** Structured diagnosis raised with {!Stuck}: the reason, the cycle the
    simulator gave up at, every non-halted core with the instruction it
    is blocked on, and every queue's occupancy — enough to render the
    dynamic wait-for cycle of a deadlock. *)
type stuck = {
  st_reason : stuck_reason;
  st_cycle : int;
  st_blocked : blocked_core list;
  st_queues : queue_occupancy list;
}

exception Stuck of stuck

module Telemetry = Finepar_telemetry
module Engine = Engine

type queue_state = {
  spec : Isa.queue_spec;
  items : (Types.value * int) Queue.t;  (** value, visible-at cycle *)
  mutable transfers : int;
  mutable max_occupancy : int;
  occupancy : Telemetry.Histogram.t;
      (** occupancy after each enqueue; bucket total = [transfers] *)
}

type core_stats = {
  mutable instrs : int;
  mutable stall_operand : int;
  mutable stall_queue_full : int;
  mutable stall_queue_empty : int;
  mutable branch_wait : int;  (** cycles lost to taken-branch penalties *)
  mutable smt_wait : int;
      (** cycles an eligible thread lost the shared issue slot (SMT) *)
  mutable idle_after_halt : int;
  mutable finished_at : int;
  mutable dual_issued : int;
      (** instructions issued in slots >= 2 of an issue bundle (always 0
          at issue width 1) *)
}

(** Total cycles this core spent blocked on an issue attempt. *)
let stall_total (s : core_stats) =
  s.stall_operand + s.stall_queue_full + s.stall_queue_empty

(** Every cycle of a core is exactly one of: issue, stall, branch-penalty
    wait, SMT arbitration loss, or post-halt idle — so this equals the
    run's total cycle count for every core (the invariant the telemetry
    tests check).  Extra-slot issues of a bundle share their cycle with
    the first issue, so they are subtracted back out via
    [dual_issued]. *)
let accounted_cycles (s : core_stats) =
  s.instrs - s.dual_issued + stall_total s + s.branch_wait + s.smt_wait
  + s.idle_after_halt

type event =
  | Ev_issue of { core : int; cycle : int; pc : int; instr : Isa.instr }
  | Ev_stall of { core : int; cycle : int; pc : int; reason : Telemetry.Stall.t }

type t = {
  config : Config.t;
  program : Program.t;
  memory : Types.value array array;  (** array id -> contents *)
  queues : queue_state array;
  core_map : int array;
      (** logical core (hardware thread) -> physical core.  With the
          identity map every thread has its own core; mapping several
          threads to one core models SMT: they share that core's single
          issue slot and its L1 (Section II discusses this option). *)
  l1 : Cache.t array;  (** per physical core *)
  l2 : Cache.t;
  regs : Types.value array array;
  reg_ready : int array array;
  pc : int array;
  min_issue : int array;
  halted : bool array;
  stats : core_stats array;
  rr : int array;  (** per physical core: SMT round-robin cursor *)
  threads_of : int list array;  (** physical core -> logical cores *)
  loads : int array;  (** per array id *)
  l1_misses : int array;
  mutable cycles : int;
  trace : event Telemetry.Ring.t;
      (** bounded; only filled when tracing, oldest events overwritten *)
  tracing : bool;
  stall_hist : Telemetry.Histogram.t array;
      (** per logical core: durations of contiguous stall episodes *)
  stall_run_class : int array;  (** current episode's stall class, -1 none *)
  stall_run_len : int array;
  fiber_issue : int array;
      (** per fiber id + 1 (slot 0 = runtime glue): issue cycles *)
  fiber_stall : int array;  (** same indexing: stall cycles *)
}

let default_trace_capacity = 65_536

let create ?(tracing = false) ?(trace_capacity = default_trace_capacity)
    ?core_map ~(config : Config.t)
    ~(initial : (string * Types.value array) list) (program : Program.t) =
  let n = Array.length program.Program.cores in
  let core_map =
    match core_map with
    | Some m ->
      if Array.length m <> n then
        invalid_arg "Sim.create: core_map length mismatch";
      Array.copy m
    | None -> Array.init n Fun.id
  in
  let n_phys = 1 + Array.fold_left max 0 core_map in
  let threads_of = Array.make n_phys [] in
  for t = n - 1 downto 0 do
    threads_of.(core_map.(t)) <- t :: threads_of.(core_map.(t))
  done;
  let memory =
    Array.map
      (fun (l : Program.array_layout) ->
        match List.assoc_opt l.Program.arr_name initial with
        | Some contents ->
          if Array.length contents <> l.Program.arr_len then
            invalid_arg
              (Printf.sprintf "Sim.create: %s has %d elements, expected %d"
                 l.Program.arr_name (Array.length contents) l.Program.arr_len);
          Array.copy contents
        | None -> Array.make l.Program.arr_len (Types.zero_of_ty l.Program.arr_ty))
      program.Program.arrays
  in
  {
    config;
    program;
    memory;
    queues =
      Array.map
        (fun spec ->
          {
            spec;
            items = Queue.create ();
            transfers = 0;
            max_occupancy = 0;
            occupancy =
              Telemetry.Histogram.create
                ~bounds:
                  (Telemetry.Histogram.linear_bounds
                     (max 1 config.Config.queue_len));
          })
        program.Program.queues;
    core_map;
    l1 =
      Array.init n_phys (fun _ ->
          Cache.create ~bytes:config.Config.l1_bytes ~line:config.Config.l1_line);
    l2 = Cache.create ~bytes:config.Config.l2_bytes ~line:config.Config.l1_line;
    regs =
      Array.map
        (fun (c : Program.core_program) ->
          Array.make c.Program.n_regs (Types.VInt 0))
        program.Program.cores;
    reg_ready =
      Array.map
        (fun (c : Program.core_program) -> Array.make c.Program.n_regs 0)
        program.Program.cores;
    pc = Array.make n 0;
    min_issue = Array.make n 0;
    halted = Array.make n false;
    stats =
      Array.init n (fun _ ->
          {
            instrs = 0;
            stall_operand = 0;
            stall_queue_full = 0;
            stall_queue_empty = 0;
            branch_wait = 0;
            smt_wait = 0;
            idle_after_halt = 0;
            finished_at = 0;
            dual_issued = 0;
          });
    rr = Array.make n_phys 0;
    threads_of;
    loads = Array.make (Array.length program.Program.arrays) 0;
    l1_misses = Array.make (Array.length program.Program.arrays) 0;
    cycles = 0;
    trace =
      Telemetry.Ring.create ~capacity:(if tracing then trace_capacity else 0);
    tracing;
    stall_hist =
      Array.init n (fun _ ->
          Telemetry.Histogram.create
            ~bounds:(Telemetry.Histogram.exponential_bounds 16));
    stall_run_class = Array.make n (-1);
    stall_run_len = Array.make n 0;
    fiber_issue = Array.make (Program.max_fiber program + 2) 0;
    fiber_stall = Array.make (Program.max_fiber program + 2) 0;
  }

let addr_of t arr idx = t.program.Program.arrays.(arr).Program.arr_base + (idx * 8)

let load_latency t core arr idx =
  let addr = addr_of t arr idx in
  t.loads.(arr) <- t.loads.(arr) + 1;
  if Cache.access t.l1.(t.core_map.(core)) addr then t.config.Config.l1_hit
  else begin
    t.l1_misses.(arr) <- t.l1_misses.(arr) + 1;
    if Cache.access t.l2 addr then t.config.Config.l2_hit
    else t.config.Config.mem_latency
  end

let store_effects t core arr idx =
  let addr = addr_of t arr idx in
  let phys = t.core_map.(core) in
  ignore (Cache.access t.l1.(phys) addr);
  ignore (Cache.access t.l2 addr);
  (* Invalidate other private L1 copies so a later consumer pays a miss. *)
  Array.iteri (fun k l1 -> if k <> phys then Cache.invalidate l1 addr) t.l1

(** Occupancy of every queue right now. *)
let occupancies t =
  Array.to_list
    (Array.mapi
       (fun i (q : queue_state) ->
         {
           qo_id = i;
           qo_spec = q.spec;
           qo_occupancy = Queue.length q.items;
           qo_capacity = t.config.Config.queue_len;
         })
       t.queues)

(* Classify what [core] is waiting on at cycle [cy], mirroring the issue
   conditions in [step_core] without side effects. *)
let wait_of t core cy =
  let prog = t.program.Program.cores.(core) in
  let pc = t.pc.(core) in
  if pc >= Array.length prog.Program.code then Wait_issue
  else
    let instr = prog.Program.code.(pc) in
    let ready = t.reg_ready.(core) in
    if not (List.for_all (fun r -> ready.(r) <= cy) (Isa.srcs instr)) then
      Wait_operand
    else
      match instr with
      | Isa.Enq (q, _)
        when Queue.length t.queues.(q).items >= t.config.Config.queue_len ->
        Wait_queue_full q
      | Isa.Deq (_, q) -> (
        match Queue.peek_opt t.queues.(q).items with
        | Some (_, visible_at) when visible_at <= cy -> Wait_issue
        | Some _ | None -> Wait_queue_empty q)
      | _ -> Wait_issue

(** Every non-halted core with the instruction it is blocked on. *)
let blocked_of t cy =
  let out = ref [] in
  Array.iteri
    (fun core halted ->
      if not halted then begin
        let prog = t.program.Program.cores.(core) in
        let pc = t.pc.(core) in
        if pc < Array.length prog.Program.code then
          out :=
            {
              bc_core = core;
              bc_pc = pc;
              bc_instr = prog.Program.code.(pc);
              bc_wait = wait_of t core cy;
            }
            :: !out
      end)
    t.halted;
  List.rev !out

(* Snapshot the machine state into a structured {!stuck} payload; uses
   [t.cycles], which [run] keeps current while executing. *)
let snapshot t reason =
  {
    st_reason = reason;
    st_cycle = t.cycles;
    st_blocked = blocked_of t t.cycles;
    st_queues = occupancies t;
  }

let fault t fmt =
  Format.kasprintf (fun m -> raise (Stuck (snapshot t (Fault m)))) fmt

let check_idx t arr idx =
  let len = t.program.Program.arrays.(arr).Program.arr_len in
  if idx < 0 || idx >= len then
    fault t "array %s index %d out of bounds [0, %d)"
      t.program.Program.arrays.(arr).Program.arr_name idx len

let int_of_reg t core r =
  match t.regs.(core).(r) with
  | Types.VInt i -> i
  | Types.VFloat _ -> fault t "core %d: r%d used as integer holds f64" core r

let record_event t ev = if t.tracing then Telemetry.Ring.push t.trace ev

(* Fiber the instruction at [pc] on [core] was generated from, shifted by
   one so slot 0 holds runtime glue ([Program.no_fiber]). *)
let fiber_slot t core pc =
  t.program.Program.cores.(core).Program.fiber_of.(pc) + 1

(* Close the current stall episode, recording its duration. *)
let flush_stall_run t core =
  if t.stall_run_class.(core) >= 0 then begin
    Telemetry.Histogram.observe t.stall_hist.(core) t.stall_run_len.(core);
    t.stall_run_class.(core) <- -1;
    t.stall_run_len.(core) <- 0
  end

(* One cycle blocked on [reason]: bump the per-class counter, extend or
   open a stall episode, attribute the cycle to the blocked instruction's
   fiber, and trace the event. *)
let note_stall t core cy pc reason =
  let stats = t.stats.(core) in
  (match reason with
  | Telemetry.Stall.Operand -> stats.stall_operand <- stats.stall_operand + 1
  | Telemetry.Stall.Queue_full _ ->
    stats.stall_queue_full <- stats.stall_queue_full + 1
  | Telemetry.Stall.Queue_empty _ ->
    stats.stall_queue_empty <- stats.stall_queue_empty + 1);
  let cls = Telemetry.Stall.class_index reason in
  if t.stall_run_class.(core) = cls then
    t.stall_run_len.(core) <- t.stall_run_len.(core) + 1
  else begin
    flush_stall_run t core;
    t.stall_run_class.(core) <- cls;
    t.stall_run_len.(core) <- 1
  end;
  let slot = fiber_slot t core pc in
  t.fiber_stall.(slot) <- t.fiber_stall.(slot) + 1;
  record_event t (Ev_stall { core; cycle = cy; pc; reason })

(* An instruction issued at [pc]: close any stall episode and attribute
   the cycle to its fiber. *)
let note_issue t core pc =
  flush_stall_run t core;
  let slot = fiber_slot t core pc in
  t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1

(** Attempt to issue the next instruction of [core] at cycle [cy].
    Returns [true] if an instruction issued. *)
let step_core t core cy =
  let cfg = t.config in
  let stats = t.stats.(core) in
  let prog = t.program.Program.cores.(core) in
  let pc = t.pc.(core) in
  if pc >= Array.length prog.Program.code then
    fault t "core %d ran off the end of its code" core;
  let instr = prog.Program.code.(pc) in
  let regs = t.regs.(core) and ready = t.reg_ready.(core) in
  let operands_ready =
    List.for_all (fun r -> ready.(r) <= cy) (Isa.srcs instr)
  in
  if not operands_ready then begin
    note_stall t core cy pc Telemetry.Stall.Operand;
    false
  end
  else begin
    let finish_simple latency value_opt =
      (match (Isa.dst instr, value_opt) with
      | Some d, Some v ->
        regs.(d) <- v;
        ready.(d) <- cy + latency
      | Some _, None | None, Some _ -> assert false
      | None, None -> ());
      t.pc.(core) <- pc + 1;
      t.min_issue.(core) <- cy + 1;
      stats.instrs <- stats.instrs + 1;
      note_issue t core pc;
      record_event t (Ev_issue { core; cycle = cy; pc; instr });
      true
    in
    let branch_to taken label =
      t.pc.(core) <-
        (if taken then prog.Program.label_pos.(label) else pc + 1);
      t.min_issue.(core) <-
        (cy + 1 + if taken then cfg.Config.branch_taken_penalty else 0);
      stats.instrs <- stats.instrs + 1;
      note_issue t core pc;
      record_event t (Ev_issue { core; cycle = cy; pc; instr });
      true
    in
    match instr with
    | Isa.Li (_, v) -> finish_simple 1 (Some v)
    | Isa.Mov (_, s) -> finish_simple 1 (Some regs.(s))
    | Isa.Un (op, _, s) ->
      let v = regs.(s) in
      finish_simple
        (Op_cost.unop_latency op (Types.ty_of_value v))
        (Some (Types.apply_unop op v))
    | Isa.Bin (op, _, a, b) ->
      let va = regs.(a) and vb = regs.(b) in
      finish_simple
        (Op_cost.binop_latency op (Types.ty_of_value va))
        (Some (Types.apply_binop op va vb))
    | Isa.Sel (_, c, tr, fr) ->
      let v = if Types.value_is_true regs.(c) then regs.(tr) else regs.(fr) in
      finish_simple Op_cost.select_latency (Some v)
    | Isa.Load (_, arr, ir) ->
      let idx = int_of_reg t core ir in
      check_idx t arr idx;
      let latency = load_latency t core arr idx in
      finish_simple latency (Some t.memory.(arr).(idx))
    | Isa.Store (arr, ir, sr) ->
      let idx = int_of_reg t core ir in
      check_idx t arr idx;
      t.memory.(arr).(idx) <- regs.(sr);
      store_effects t core arr idx;
      finish_simple 1 None
    | Isa.Enq (q, sr) ->
      let qs = t.queues.(q) in
      if Queue.length qs.items >= cfg.Config.queue_len then begin
        note_stall t core cy pc (Telemetry.Stall.Queue_full q);
        false
      end
      else begin
        Queue.add (regs.(sr), cy + cfg.Config.transfer_latency) qs.items;
        qs.transfers <- qs.transfers + 1;
        qs.max_occupancy <- max qs.max_occupancy (Queue.length qs.items);
        Telemetry.Histogram.observe qs.occupancy (Queue.length qs.items);
        finish_simple 1 None
      end
    | Isa.Deq (_, q) ->
      let qs = t.queues.(q) in
      (match Queue.peek_opt qs.items with
      | Some (v, visible_at) when visible_at <= cy ->
        ignore (Queue.pop qs.items);
        finish_simple cfg.Config.deq_latency (Some v)
      | Some _ | None ->
        note_stall t core cy pc (Telemetry.Stall.Queue_empty q);
        false)
    | Isa.Bz (r, l) -> branch_to (not (Types.value_is_true regs.(r))) l
    | Isa.Bnz (r, l) -> branch_to (Types.value_is_true regs.(r)) l
    | Isa.Jmp l -> branch_to true l
    | Isa.Halt ->
      t.halted.(core) <- true;
      stats.finished_at <- cy;
      stats.instrs <- stats.instrs + 1;
      note_issue t core pc;
      record_event t (Ev_issue { core; cycle = cy; pc; instr });
      true
  end

(* Whether [core]'s next instruction would issue at [cy], with no side
   effects — the gate for the extra slots of an issue bundle, where a
   refusal must not record a stall (the cycle is already accounted to
   the bundle's first issue).  Mirrors [step_core]'s issue conditions
   exactly; a pc off the end of the code is not issuable, so the
   off-the-end fault fires on the next cycle's slot-1 attempt, exactly
   as at width 1. *)
let issuable t core cy =
  let prog = t.program.Program.cores.(core) in
  let pc = t.pc.(core) in
  pc < Array.length prog.Program.code
  &&
  let instr = prog.Program.code.(pc) in
  let ready = t.reg_ready.(core) in
  List.for_all (fun r -> ready.(r) <= cy) (Isa.srcs instr)
  &&
  match instr with
  | Isa.Enq (q, _) ->
    Queue.length t.queues.(q).items < t.config.Config.queue_len
  | Isa.Deq (_, q) -> (
    match Queue.peek_opt t.queues.(q).items with
    | Some (_, visible_at) -> visible_at <= cy
    | None -> false)
  | _ -> true

(* Fill the remaining slots of [core]'s issue bundle at [cy], after the
   slot-1 issue from [prev_pc] succeeded.  Continuation requires a pure
   fall-through — pc advanced by exactly one, [min_issue] is the plain
   [cy + 1] (no taken-branch penalty pending), not halted — plus
   [issuable]; each extra issue runs the full [step_core] semantics and
   is counted in [dual_issued] so the accounting invariant still sums
   to one per (core, cycle). *)
let issue_rest t core cy ~prev_pc =
  let width = t.config.Config.issue_width in
  let stats = t.stats.(core) in
  let prev = ref prev_pc in
  let slot = ref 1 in
  let continue_ = ref true in
  while !continue_ && !slot < width do
    if
      (not t.halted.(core))
      && t.pc.(core) = !prev + 1
      && t.min_issue.(core) = cy + 1
      && issuable t core cy
    then begin
      let pc0 = t.pc.(core) in
      if step_core t core cy then begin
        stats.dual_issued <- stats.dual_issued + 1;
        prev := pc0;
        incr slot
      end
      else continue_ := false
    end
    else continue_ := false
  done

let all_halted t = Array.for_all Fun.id t.halted

let pp_wait ppf = function
  | Wait_queue_full q -> Fmt.pf ppf "queue %d full" q
  | Wait_queue_empty q -> Fmt.pf ppf "queue %d empty" q
  | Wait_operand -> Fmt.string ppf "operand in flight"
  | Wait_issue -> Fmt.string ppf "issue pending"

let qclass_name = function Isa.Qint -> "int" | Isa.Qfloat -> "float"

let pp_blocked_core ppf b =
  Fmt.pf ppf "core %d blocked at pc %d: %a [%a]" b.bc_core b.bc_pc
    Isa.pp_instr b.bc_instr pp_wait b.bc_wait

let pp_queue_occupancy ppf q =
  Fmt.pf ppf "q%d %d->%d %s %d/%d" q.qo_id q.qo_spec.Isa.src q.qo_spec.Isa.dst
    (qclass_name q.qo_spec.Isa.cls)
    q.qo_occupancy q.qo_capacity

(** The dynamic wait-for cycle among blocked cores, if one exists: a
    core blocked on an empty queue waits for the queue's source core, a
    core blocked on a full queue waits for its destination core.  The
    result lists each cycle participant with its wait. *)
let wait_for_cycle st =
  let spec_of q =
    List.find_opt (fun o -> o.qo_id = q) st.st_queues
    |> Option.map (fun o -> o.qo_spec)
  in
  let succ b =
    match b.bc_wait with
    | Wait_queue_empty q -> Option.map (fun s -> s.Isa.src) (spec_of q)
    | Wait_queue_full q -> Option.map (fun s -> s.Isa.dst) (spec_of q)
    | Wait_operand | Wait_issue -> None
  in
  let blocked core =
    List.find_opt (fun b -> b.bc_core = core) st.st_blocked
  in
  let rec walk path b =
    if List.exists (fun p -> p.bc_core = b.bc_core) path then
      (* Drop the lead-in: keep the cycle proper. *)
      let rec cut = function
        | p :: rest -> if p.bc_core = b.bc_core then p :: rest else cut rest
        | [] -> []
      in
      Some (cut (List.rev path))
    else
      match succ b with
      | None -> None
      | Some next -> (
        match blocked next with
        | None -> None
        | Some nb -> walk (b :: path) nb)
  in
  List.find_map (fun b -> walk [] b) st.st_blocked

let blockage_text ~blocked ~queues =
  let b = Buffer.create 128 in
  List.iter
    (fun bc -> Buffer.add_string b (Fmt.str "%a; " pp_blocked_core bc))
    blocked;
  if queues <> [] then
    Buffer.add_string b
      (Fmt.str "queues: %a"
         (Fmt.list ~sep:(Fmt.any ", ") pp_queue_occupancy)
         queues);
  Buffer.contents b

let describe_blockage t =
  blockage_text ~blocked:(blocked_of t t.cycles) ~queues:(occupancies t)

(** Human-readable rendering of a {!stuck} payload: the reason, every
    blocked core with its wait, per-queue occupancies, and — for
    deadlocks — the wait-for cycle when one exists. *)
let stuck_message st =
  let reason =
    match st.st_reason with
    | Deadlock { window } ->
      Printf.sprintf "deadlock (no progress for %d cycles)" window
    | Max_cycles { limit } -> Printf.sprintf "exceeded max_cycles=%d" limit
    | Fault m -> m
  in
  let body = blockage_text ~blocked:st.st_blocked ~queues:st.st_queues in
  let cycle_part =
    match st.st_reason with
    | Deadlock _ -> (
      match wait_for_cycle st with
      | Some (first :: _ as cyc) ->
        Fmt.str "; wait-for cycle: %a -> core %d"
          (Fmt.list ~sep:(Fmt.any " -> ") (fun ppf b ->
               Fmt.pf ppf "core %d (%a)" b.bc_core pp_wait b.bc_wait))
          cyc first.bc_core
      | Some [] | None -> "")
    | Max_cycles _ | Fault _ -> ""
  in
  Printf.sprintf "%s at cycle %d: %s%s" reason st.st_cycle body cycle_part

let () =
  Printexc.register_printer (function
    | Stuck st -> Some ("Finepar_machine.Sim.Stuck: " ^ stuck_message st)
    | _ -> None)

(* No core issued for [queue length * transfer latency + slack]
   consecutive cycles => deadlock.  Both engines use the same window, and
   the event engine's fast-forward jumps never cross the resulting
   deadline, so Stuck payloads are identical. *)
let deadlock_window t =
  (t.config.Config.queue_len * max 1 t.config.Config.transfer_latency)
  + t.config.Config.mem_latency + 1000

(** One simulated cycle, shared verbatim by both engines: SMT round-robin
    arbitration with issue attempts, then classification of the cores
    that never got an attempt.  [step_core] accounts every attempted core
    (issue or stall counter); the second pass classifies the rest, so
    every (core, cycle) lands in exactly one counter.  At issue width
    W >= 2 the winning thread fills its bundle's remaining slots via
    [issue_rest] before the sweep moves on.  [attempted] is
    caller-owned scratch of length [cores], reused across cycles.
    Returns [true] iff any instruction issued. *)
let step_cycle t attempted cy =
  let n = Array.length t.program.Program.cores in
  let width = t.config.Config.issue_width in
  let progressed = ref false in
  Array.fill attempted 0 n false;
  (* Each physical core grants its issue slots to one hardware thread
     per cycle; threads arbitrate round-robin (SMT sharing when several
     logical cores map to one physical core). *)
  Array.iteri
    (fun phys threads ->
      let k = List.length threads in
      if k > 0 then begin
        let arr = Array.of_list threads in
        let issued = ref false in
        for j = 0 to k - 1 do
          let core = arr.((t.rr.(phys) + j) mod k) in
          if
            (not !issued)
            && (not t.halted.(core))
            && t.min_issue.(core) <= cy
          then begin
            attempted.(core) <- true;
            let pc0 = t.pc.(core) in
            if step_core t core cy then begin
              issued := true;
              t.rr.(phys) <- (t.rr.(phys) + j + 1) mod k;
              progressed := true;
              if width > 1 then issue_rest t core cy ~prev_pc:pc0
            end
          end
        done
      end)
    t.threads_of;
  for core = 0 to n - 1 do
    if not attempted.(core) then begin
      let stats = t.stats.(core) in
      if t.halted.(core) then
        stats.idle_after_halt <- stats.idle_after_halt + 1
      else if t.min_issue.(core) > cy then
        stats.branch_wait <- stats.branch_wait + 1
      else stats.smt_wait <- stats.smt_wait + 1
    end
  done;
  !progressed

(** The reference engine: every core, every cycle. *)
let run_cycle t =
  let cy = ref 0 in
  let last_progress = ref 0 in
  let deadlock_window = deadlock_window t in
  let attempted = Array.make (Array.length t.program.Program.cores) false in
  while not (all_halted t) do
    (* Keep [t.cycles] current so fault/deadlock snapshots carry the
       cycle they happened at; it is overwritten with the final count
       when the run completes. *)
    t.cycles <- !cy;
    if !cy >= t.config.Config.max_cycles then
      raise
        (Stuck
           (snapshot t (Max_cycles { limit = t.config.Config.max_cycles })));
    if step_cycle t attempted !cy then last_progress := !cy;
    if !cy - !last_progress > deadlock_window then
      raise (Stuck (snapshot t (Deadlock { window = deadlock_window })));
    incr cy
  done;
  for core = 0 to Array.length t.program.Program.cores - 1 do
    flush_stall_run t core
  done;
  t.cycles <- !cy;
  !cy

(* A blocked core's issue conditions, read off the frozen machine state
   at the end of a quiescent cycle (mirrors the checks in [step_core] and
   [wait_of]).  A core whose pc ran off its code profiles as [Free] with
   no operand wait: the engine then jumps to its [min_issue], where
   [step_core] raises the same fault the stepper would. *)
let profile_of t core =
  let prog = t.program.Program.cores.(core) in
  let pc = t.pc.(core) in
  let min_issue = t.min_issue.(core) in
  if pc >= Array.length prog.Program.code then
    { Engine.pr_min_issue = min_issue; pr_operands_at = 0; pr_gate = Engine.Free }
  else
    let instr = prog.Program.code.(pc) in
    let ready = t.reg_ready.(core) in
    let operands_at =
      List.fold_left (fun acc r -> max acc ready.(r)) 0 (Isa.srcs instr)
    in
    let gate =
      match instr with
      | Isa.Enq (q, _)
        when Queue.length t.queues.(q).items >= t.config.Config.queue_len ->
        Engine.External
      | Isa.Deq (_, q) -> (
        match Queue.peek_opt t.queues.(q).items with
        | Some (_, visible_at) -> Engine.Head_at visible_at
        | None -> Engine.External)
      | _ -> Engine.Free
    in
    { Engine.pr_min_issue = min_issue; pr_operands_at = operands_at; pr_gate = gate }

(* [count] consecutive cycles blocked on [reason], starting at
   [first_cycle]: exactly [note_stall] applied [count] times — per-class
   counter, stall-episode run, per-fiber attribution, and (when tracing)
   one [Ev_stall] per skipped cycle so traces carry the same events. *)
let bulk_stall t core ~pc ~reason ~count ~first_cycle =
  let stats = t.stats.(core) in
  (match reason with
  | Telemetry.Stall.Operand ->
    stats.stall_operand <- stats.stall_operand + count
  | Telemetry.Stall.Queue_full _ ->
    stats.stall_queue_full <- stats.stall_queue_full + count
  | Telemetry.Stall.Queue_empty _ ->
    stats.stall_queue_empty <- stats.stall_queue_empty + count);
  let cls = Telemetry.Stall.class_index reason in
  if t.stall_run_class.(core) = cls then
    t.stall_run_len.(core) <- t.stall_run_len.(core) + count
  else begin
    flush_stall_run t core;
    t.stall_run_class.(core) <- cls;
    t.stall_run_len.(core) <- count
  end;
  let slot = fiber_slot t core pc in
  t.fiber_stall.(slot) <- t.fiber_stall.(slot) + count;
  if t.tracing then
    for i = 0 to count - 1 do
      Telemetry.Ring.push t.trace
        (Ev_stall { core; cycle = first_cycle + i; pc; reason })
    done

(* Credit the quiescent window [from, until) to every core, exactly as
   the stepper would have: idle for halted cores; otherwise the
   branch-wait / operand-stall / queue-stall split of [Engine.segments]
   (sound because the caller guarantees [until <= wake] for every
   non-halted core). *)
let credit_quiescent t ~from ~until =
  if until > from then
    for core = 0 to Array.length t.program.Program.cores - 1 do
      let stats = t.stats.(core) in
      if t.halted.(core) then
        stats.idle_after_halt <- stats.idle_after_halt + (until - from)
      else begin
        let p = profile_of t core in
        let n_branch, n_operand, n_queue = Engine.segments p ~from ~until in
        stats.branch_wait <- stats.branch_wait + n_branch;
        let pc = t.pc.(core) in
        if n_operand > 0 then
          bulk_stall t core ~pc ~reason:Telemetry.Stall.Operand
            ~count:n_operand ~first_cycle:(from + n_branch);
        if n_queue > 0 then begin
          let reason =
            match t.program.Program.cores.(core).Program.code.(pc) with
            | Isa.Enq (q, _) -> Telemetry.Stall.Queue_full q
            | Isa.Deq (_, q) -> Telemetry.Stall.Queue_empty q
            | _ -> assert false (* only queue gates leave a third segment *)
          in
          bulk_stall t core ~pc ~reason ~count:n_queue
            ~first_cycle:(from + n_branch + n_operand)
        end
      end
    done

(** The event-driven engine: cycles where an instruction issues are
    stepped one by one (issue order, SMT arbitration and cache state must
    follow the reference exactly); a cycle where nothing issues proves
    the machine quiescent, so the engine computes every core's wake time
    and jumps to the earliest one, bulk-crediting the skipped cycles.
    Jumps are clamped to the deadlock deadline and the cycle budget so
    [Stuck] fires at the same cycle with the same payload as the
    stepper. *)
let run_event t =
  let n = Array.length t.program.Program.cores in
  let cy = ref 0 in
  let last_progress = ref 0 in
  let deadlock_window = deadlock_window t in
  let attempted = Array.make n false in
  while not (all_halted t) do
    t.cycles <- !cy;
    if !cy >= t.config.Config.max_cycles then
      raise
        (Stuck
           (snapshot t (Max_cycles { limit = t.config.Config.max_cycles })));
    if step_cycle t attempted !cy then begin
      last_progress := !cy;
      incr cy
    end
    else begin
      if !cy - !last_progress > deadlock_window then
        raise (Stuck (snapshot t (Deadlock { window = deadlock_window })));
      let wake = ref Engine.Never in
      for core = 0 to n - 1 do
        if not t.halted.(core) then
          wake := Engine.min_wake !wake (Engine.wake (profile_of t core))
      done;
      (* The machine is quiescent: nothing can change before the earliest
         wake, the deadlock deadline, or the cycle budget — whichever
         comes first.  Every wake is > [cy] (an issuable core would have
         issued or faulted in [step_cycle] above), so the jump always
         moves forward. *)
      let deadline = !last_progress + deadlock_window + 1 in
      let target =
        match !wake with
        | Engine.Never -> min deadline t.config.Config.max_cycles
        | Engine.At w -> min (min w deadline) t.config.Config.max_cycles
      in
      assert (target > !cy);
      credit_quiescent t ~from:(!cy + 1) ~until:target;
      cy := target
    end
  done;
  for core = 0 to n - 1 do
    flush_stall_run t core
  done;
  t.cycles <- !cy;
  !cy

(* ------------------------------------------------------------------ *)
(* The compiled engine.

   [specialize] translates each core's program once into a flat array of
   closures, one per pc: operand checks are unrolled over the exact
   source list, destinations/latencies/branch targets/queue endpoints/
   fiber slots/stall reasons are resolved to direct array slots and
   constants, and the per-issue / per-stall bookkeeping is pre-bound.
   The hot path then executes [steps.(pc) cy] — no [Isa.srcs] list
   allocation, no [List.for_all] closure, no inner [finish_simple]/
   [branch_to] closures, no event-variant allocation when tracing is
   off.  Every state mutation happens in the same order as [step_core],
   so the engine inherits the cycle-exactness contract.

   The closures capture the arrays of ONE [t]; a [specialized] value is
   only valid for the instance it was built from. *)

type specialized = {
  sp_for : t;  (** the instance the closures capture *)
  sp_steps : (int -> bool) array array;
      (** per logical core, per pc: attempt to issue at cycle; same
          result and side effects as [step_core].  The driver does the
          pc bounds check (and the off-the-end fault) itself, so the
          hot path is a single indirect call per attempt. *)
  sp_wakes : (unit -> int) array array;
      (** per logical core, per pc: the wake cycle of that instruction
          ([Engine.wake] of [profile_of]), [max_int] for [Never] *)
  sp_cans : (int -> bool) array array;
      (** per logical core, per pc: [issuable] with everything resolved —
          the side-effect-free gate for a bundle's extra slots.  Not
          derivable from [sp_wakes]: a wake folds in [min_issue], which
          the slot-1 issue just pushed to [cy + 1]. *)
  sp_credits : (int -> int -> unit) array array;
      (** per logical core, per pc: [credit from until] replicates the
          non-halted branch of [credit_quiescent] for that core *)
  sp_threads : int array array;  (** physical core -> logical cores *)
  sp_identity : bool;
      (** identity core map: issue sweep order is core order and the
          round-robin cursors never move, so the driver can skip SMT
          arbitration entirely *)
  sp_live : int ref;
      (** non-halted core count, maintained by the Halt closures;
          re-initialized by [run_compiled] *)
}

let specialize t =
  let n = Array.length t.program.Program.cores in
  let cfg = t.config in
  let tracing = t.tracing in
  let live = ref 0 in
  let compile_core core =
    let prog = t.program.Program.cores.(core) in
    let code = prog.Program.code in
    let regs = t.regs.(core) and ready = t.reg_ready.(core) in
    let stats = t.stats.(core) in
    (* Every step closure ends by repeating [finish_simple]'s issue
       bookkeeping inline — pc, min_issue, instrs, episode flush, fiber
       counter, trace — because a shared closure would cost an indirect
       call on every issued instruction.  The mutations are textually
       duplicated across the arms but their order is the stepper's. *)
    let compile_at pc instr =
      let slot = fiber_slot t core pc in
      (* [note_stall] with the reason, class index and counter pre-bound.
         The stall path keeps one out-of-line closure per gate: it
         touches an episode histogram anyway, so a call there is noise,
         unlike the issue path above. *)
      let stall reason =
        let cls = Telemetry.Stall.class_index reason in
        fun cy ->
          (match reason with
          | Telemetry.Stall.Operand ->
            stats.stall_operand <- stats.stall_operand + 1
          | Telemetry.Stall.Queue_full _ ->
            stats.stall_queue_full <- stats.stall_queue_full + 1
          | Telemetry.Stall.Queue_empty _ ->
            stats.stall_queue_empty <- stats.stall_queue_empty + 1);
          if t.stall_run_class.(core) = cls then
            t.stall_run_len.(core) <- t.stall_run_len.(core) + 1
          else begin
            flush_stall_run t core;
            t.stall_run_class.(core) <- cls;
            t.stall_run_len.(core) <- 1
          end;
          t.fiber_stall.(slot) <- t.fiber_stall.(slot) + 1;
          if tracing then
            Telemetry.Ring.push t.trace
              (Ev_stall { core; cycle = cy; pc; reason });
          false
      in
      match instr with
      | Isa.Li (d, v) ->
        fun cy ->
          regs.(d) <- v;
          ready.(d) <- cy + 1;
          t.pc.(core) <- pc + 1;
          t.min_issue.(core) <- cy + 1;
          stats.instrs <- stats.instrs + 1;
          if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
          t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
          if tracing then
            Telemetry.Ring.push t.trace (Ev_issue { core; cycle = cy; pc; instr });
          true
      | Isa.Mov (d, s) ->
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(s) <= cy then begin
            regs.(d) <- regs.(s);
            ready.(d) <- cy + 1;
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Un (op, d, s) ->
        let lat_i = Op_cost.unop_latency op Types.I64 in
        let lat_f = Op_cost.unop_latency op Types.F64 in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(s) <= cy then begin
            let v = regs.(s) in
            regs.(d) <- Types.apply_unop op v;
            ready.(d) <-
              (cy + match v with Types.VInt _ -> lat_i | Types.VFloat _ -> lat_f);
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Bin (op, d, a, b) ->
        let lat_i = Op_cost.binop_latency op Types.I64 in
        let lat_f = Op_cost.binop_latency op Types.F64 in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(a) <= cy && ready.(b) <= cy then begin
            let va = regs.(a) in
            regs.(d) <- Types.apply_binop op va regs.(b);
            ready.(d) <-
              (cy
              + match va with Types.VInt _ -> lat_i | Types.VFloat _ -> lat_f);
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Sel (d, c, tr, fr) ->
        let lat = Op_cost.select_latency in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(c) <= cy && ready.(tr) <= cy && ready.(fr) <= cy then begin
            regs.(d) <-
              (if Types.value_is_true regs.(c) then regs.(tr) else regs.(fr));
            ready.(d) <- cy + lat;
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Load (d, arr, ir) ->
        let mem = t.memory.(arr) in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(ir) <= cy then begin
            let idx = int_of_reg t core ir in
            check_idx t arr idx;
            let latency = load_latency t core arr idx in
            regs.(d) <- mem.(idx);
            ready.(d) <- cy + latency;
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Store (arr, ir, sr) ->
        let mem = t.memory.(arr) in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(ir) <= cy && ready.(sr) <= cy then begin
            let idx = int_of_reg t core ir in
            check_idx t arr idx;
            mem.(idx) <- regs.(sr);
            store_effects t core arr idx;
            t.pc.(core) <- pc + 1;
            t.min_issue.(core) <- cy + 1;
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Enq (q, sr) ->
        let qs = t.queues.(q) in
        let cap = cfg.Config.queue_len in
        let lat = cfg.Config.transfer_latency in
        let op_stall = stall Telemetry.Stall.Operand in
        let full = stall (Telemetry.Stall.Queue_full q) in
        fun cy ->
          if ready.(sr) <= cy then
            if Queue.length qs.items >= cap then full cy
            else begin
              Queue.add (regs.(sr), cy + lat) qs.items;
              qs.transfers <- qs.transfers + 1;
              qs.max_occupancy <- max qs.max_occupancy (Queue.length qs.items);
              Telemetry.Histogram.observe qs.occupancy (Queue.length qs.items);
              t.pc.(core) <- pc + 1;
              t.min_issue.(core) <- cy + 1;
              stats.instrs <- stats.instrs + 1;
              if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
              t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
              if tracing then
                Telemetry.Ring.push t.trace
                  (Ev_issue { core; cycle = cy; pc; instr });
              true
            end
          else op_stall cy
      | Isa.Deq (d, q) ->
        let qs = t.queues.(q) in
        let lat = cfg.Config.deq_latency in
        let empty = stall (Telemetry.Stall.Queue_empty q) in
        fun cy ->
          if Queue.is_empty qs.items then empty cy
          else
            let v, visible_at = Queue.peek qs.items in
            if visible_at <= cy then begin
              ignore (Queue.pop qs.items);
              regs.(d) <- v;
              ready.(d) <- cy + lat;
              t.pc.(core) <- pc + 1;
              t.min_issue.(core) <- cy + 1;
              stats.instrs <- stats.instrs + 1;
              if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
              t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
              if tracing then
                Telemetry.Ring.push t.trace
                  (Ev_issue { core; cycle = cy; pc; instr });
              true
            end
            else empty cy
      | Isa.Bz (r, l) ->
        let target = prog.Program.label_pos.(l) in
        let pen = cfg.Config.branch_taken_penalty in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(r) <= cy then begin
            let taken = not (Types.value_is_true regs.(r)) in
            t.pc.(core) <- (if taken then target else pc + 1);
            t.min_issue.(core) <- (cy + 1 + if taken then pen else 0);
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Bnz (r, l) ->
        let target = prog.Program.label_pos.(l) in
        let pen = cfg.Config.branch_taken_penalty in
        let op_stall = stall Telemetry.Stall.Operand in
        fun cy ->
          if ready.(r) <= cy then begin
            let taken = Types.value_is_true regs.(r) in
            t.pc.(core) <- (if taken then target else pc + 1);
            t.min_issue.(core) <- (cy + 1 + if taken then pen else 0);
            stats.instrs <- stats.instrs + 1;
            if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
            t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
            if tracing then
              Telemetry.Ring.push t.trace
                (Ev_issue { core; cycle = cy; pc; instr });
            true
          end
          else op_stall cy
      | Isa.Jmp l ->
        let target = prog.Program.label_pos.(l) in
        let pen = cfg.Config.branch_taken_penalty in
        fun cy ->
          t.pc.(core) <- target;
          t.min_issue.(core) <- cy + 1 + pen;
          stats.instrs <- stats.instrs + 1;
          if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
          t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
          if tracing then
            Telemetry.Ring.push t.trace (Ev_issue { core; cycle = cy; pc; instr });
          true
      | Isa.Halt ->
        fun cy ->
          t.halted.(core) <- true;
          decr live;
          stats.finished_at <- cy;
          stats.instrs <- stats.instrs + 1;
          if t.stall_run_class.(core) >= 0 then flush_stall_run t core;
          t.fiber_issue.(slot) <- t.fiber_issue.(slot) + 1;
          if tracing then
            Telemetry.Ring.push t.trace (Ev_issue { core; cycle = cy; pc; instr });
          true
    in
    (* The fast-forward side of the specialization: per pc, the wake time
       of [Engine.wake (profile_of t core)] and the window crediting of
       [credit_quiescent]'s non-halted branch, with the operand max,
       queue gate, stall reason, class index, counter and fiber slot all
       baked in (no [Isa.srcs] list, no profile record, no [bulk_stall]
       dispatch on the quiescent path). *)
    let wake_at _pc instr =
      let operands_at =
        match Isa.srcs instr with
        | [] -> fun () -> 0
        | [ a ] -> fun () -> ready.(a)
        | [ a; b ] ->
          fun () ->
            let x = ready.(a) and y = ready.(b) in
            if x > y then x else y
        | [ a; b; c ] ->
          fun () ->
            let x = ready.(a) and y = ready.(b) and z = ready.(c) in
            max x (max y z)
        | srcs -> fun () -> List.fold_left (fun acc r -> max acc ready.(r)) 0 srcs
      in
      let base () =
        let m = t.min_issue.(core) and o = operands_at () in
        if m > o then m else o
      in
      match instr with
      | Isa.Enq (q, _) ->
        let qs = t.queues.(q) in
        let cap = cfg.Config.queue_len in
        fun () -> if Queue.length qs.items >= cap then max_int else base ()
      | Isa.Deq (_, q) ->
        let qs = t.queues.(q) in
        fun () ->
          if Queue.is_empty qs.items then max_int
          else
            let _, visible_at = Queue.peek qs.items in
            let b = base () in
            if b > visible_at then b else visible_at
      | _ -> base
    in
    (* [issuable] specialized per pc: operand readiness unrolled over the
       exact source list plus the queue gate, no side effects.  Must
       mirror the step closures' own issue conditions exactly — a [true]
       here guarantees the step closure issues (records no stall). *)
    let can_at _pc instr =
      let operands_ready =
        match Isa.srcs instr with
        | [] -> fun _cy -> true
        | [ a ] -> fun cy -> ready.(a) <= cy
        | [ a; b ] -> fun cy -> ready.(a) <= cy && ready.(b) <= cy
        | [ a; b; c ] ->
          fun cy -> ready.(a) <= cy && ready.(b) <= cy && ready.(c) <= cy
        | srcs -> fun cy -> List.for_all (fun r -> ready.(r) <= cy) srcs
      in
      match instr with
      | Isa.Enq (q, _) ->
        let qs = t.queues.(q) in
        let cap = cfg.Config.queue_len in
        fun cy -> operands_ready cy && Queue.length qs.items < cap
      | Isa.Deq (_, q) ->
        let qs = t.queues.(q) in
        fun cy ->
          (match Queue.peek_opt qs.items with
          | Some (_, visible_at) -> visible_at <= cy
          | None -> false)
      | _ -> operands_ready
    in
    let credit_at pc instr =
      let slot = fiber_slot t core pc in
      let cls_op = Telemetry.Stall.class_index Telemetry.Stall.Operand in
      let operands_at =
        match Isa.srcs instr with
        | [] -> fun () -> 0
        | [ a ] -> fun () -> ready.(a)
        | [ a; b ] ->
          fun () ->
            let x = ready.(a) and y = ready.(b) in
            if x > y then x else y
        | [ a; b; c ] ->
          fun () ->
            let x = ready.(a) and y = ready.(b) and z = ready.(c) in
            max x (max y z)
        | srcs -> fun () -> List.fold_left (fun acc r -> max acc ready.(r)) 0 srcs
      in
      (* The operand segment, [bulk_stall] inlined with everything
         resolved: [m] is the segment's first cycle, [count] its length. *)
      let operand_seg count m =
        stats.stall_operand <- stats.stall_operand + count;
        if t.stall_run_class.(core) = cls_op then
          t.stall_run_len.(core) <- t.stall_run_len.(core) + count
        else begin
          flush_stall_run t core;
          t.stall_run_class.(core) <- cls_op;
          t.stall_run_len.(core) <- count
        end;
        t.fiber_stall.(slot) <- t.fiber_stall.(slot) + count;
        if tracing then
          for i = 0 to count - 1 do
            Telemetry.Ring.push t.trace
              (Ev_stall
                 { core; cycle = m + i; pc; reason = Telemetry.Stall.Operand })
          done
      in
      match instr with
      | Isa.Enq (q, _) | Isa.Deq (_, q) ->
        let reason =
          match instr with
          | Isa.Enq _ -> Telemetry.Stall.Queue_full q
          | _ -> Telemetry.Stall.Queue_empty q
        in
        let cls_q = Telemetry.Stall.class_index reason in
        let is_full = match instr with Isa.Enq _ -> true | _ -> false in
        fun from until ->
          let clamp x =
            if x < from then from else if x > until then until else x
          in
          let m = clamp t.min_issue.(core) in
          let r =
            let o = clamp (operands_at ()) in
            if o < m then m else o
          in
          stats.branch_wait <- stats.branch_wait + (m - from);
          if r > m then operand_seg (r - m) m;
          if until > r then begin
            let count = until - r in
            if is_full then
              stats.stall_queue_full <- stats.stall_queue_full + count
            else stats.stall_queue_empty <- stats.stall_queue_empty + count;
            if t.stall_run_class.(core) = cls_q then
              t.stall_run_len.(core) <- t.stall_run_len.(core) + count
            else begin
              flush_stall_run t core;
              t.stall_run_class.(core) <- cls_q;
              t.stall_run_len.(core) <- count
            end;
            t.fiber_stall.(slot) <- t.fiber_stall.(slot) + count;
            if tracing then
              for i = 0 to count - 1 do
                Telemetry.Ring.push t.trace
                  (Ev_stall { core; cycle = r + i; pc; reason })
              done
          end
      | _ ->
        fun from until ->
          let clamp x =
            if x < from then from else if x > until then until else x
          in
          let m = clamp t.min_issue.(core) in
          let r =
            let o = clamp (operands_at ()) in
            if o < m then m else o
          in
          stats.branch_wait <- stats.branch_wait + (m - from);
          if r > m then operand_seg (r - m) m;
          (* only queue gates leave a third segment *)
          assert (until <= r)
    in
    (Array.mapi compile_at code, Array.mapi wake_at code,
     Array.mapi can_at code, Array.mapi credit_at code)
  in
  let compiled = Array.init n compile_core in
  {
    sp_for = t;
    sp_steps = Array.map (fun (s, _, _, _) -> s) compiled;
    sp_wakes = Array.map (fun (_, w, _, _) -> w) compiled;
    sp_cans = Array.map (fun (_, _, c, _) -> c) compiled;
    sp_credits = Array.map (fun (_, _, _, c) -> c) compiled;
    sp_threads = Array.map Array.of_list t.threads_of;
    sp_identity =
      (let id = ref (Array.length t.core_map = n) in
       Array.iteri (fun i p -> if p <> i then id := false) t.core_map;
       !id);
    sp_live = live;
  }

(* One cycle under the compiled engine: the same two phases as
   [step_cycle] (round-robin issue sweep, then classification of the
   cores that never got an attempt) over the pre-compiled steps.  The
   classification stays a separate pass even on the identity fast path
   so a fault raised mid-sweep leaves the very counters the reference
   stepper would.  A pc off the end of the code faults here with the
   stepper's message ([profile_of] reports such a core as [Free], so the
   fast-forward path always jumps it back into this sweep). *)
(* [issue_rest] over the specialized closures: the same continuation
   rule, with [sp_cans] standing in for [issuable]. *)
let issue_rest_compiled t spec core cy ~prev_pc =
  let width = t.config.Config.issue_width in
  let stats = t.stats.(core) in
  let steps = spec.sp_steps.(core) in
  let cans = spec.sp_cans.(core) in
  let len = Array.length steps in
  let prev = ref prev_pc in
  let slot = ref 1 in
  let continue_ = ref true in
  while !continue_ && !slot < width do
    let pcn = t.pc.(core) in
    if
      (not t.halted.(core))
      && pcn = !prev + 1
      && t.min_issue.(core) = cy + 1
      && pcn < len
      && cans.(pcn) cy
    then
      if steps.(pcn) cy then begin
        stats.dual_issued <- stats.dual_issued + 1;
        prev := pcn;
        incr slot
      end
      else continue_ := false
    else continue_ := false
  done

let step_cycle_compiled t spec attempted cy =
  let n = Array.length spec.sp_steps in
  let width = t.config.Config.issue_width in
  let progressed = ref false in
  (* Both sweeps dispatch the step closures inline (no shared [attempt]
     helper): a local function would be allocated afresh on every swept
     cycle, and the SMT sweep runs hot enough that even that shows up.
     The wrap-around round-robin index replaces the modulo of
     [step_cycle] — same orbit, no integer division. *)
  if spec.sp_identity then
    for core = 0 to n - 1 do
      if (not t.halted.(core)) && t.min_issue.(core) <= cy then begin
        attempted.(core) <- true;
        let steps = spec.sp_steps.(core) in
        let pc = t.pc.(core) in
        if pc >= Array.length steps then
          fault t "core %d ran off the end of its code" core
        else if steps.(pc) cy then begin
          progressed := true;
          if width > 1 then issue_rest_compiled t spec core cy ~prev_pc:pc
        end
      end
    done
  else
    for phys = 0 to Array.length spec.sp_threads - 1 do
      let threads = spec.sp_threads.(phys) in
      let k = Array.length threads in
      if k > 0 then begin
        let idx = ref t.rr.(phys) in
        let j = ref 0 in
        let issued = ref false in
        while (not !issued) && !j < k do
          let core = threads.(!idx) in
          if (not t.halted.(core)) && t.min_issue.(core) <= cy then begin
            attempted.(core) <- true;
            let steps = spec.sp_steps.(core) in
            let pc = t.pc.(core) in
            if pc >= Array.length steps then
              fault t "core %d ran off the end of its code" core
            else if steps.(pc) cy then begin
              issued := true;
              t.rr.(phys) <- (if !idx + 1 = k then 0 else !idx + 1);
              progressed := true;
              if width > 1 then issue_rest_compiled t spec core cy ~prev_pc:pc
            end
          end;
          incr j;
          incr idx;
          if !idx = k then idx := 0
        done
      end
    done;
  for core = 0 to n - 1 do
    if attempted.(core) then attempted.(core) <- false
    else begin
      let stats = t.stats.(core) in
      if t.halted.(core) then stats.idle_after_halt <- stats.idle_after_halt + 1
      else if t.min_issue.(core) > cy then
        stats.branch_wait <- stats.branch_wait + 1
      else stats.smt_wait <- stats.smt_wait + 1
    end
  done;
  !progressed

(** The compiled engine's driver: the [run_event] loop (quiescent cycles
    fast-forwarded to the earliest wake, clamped by the deadlock deadline
    and the cycle budget) over the pre-compiled per-core steps, with the
    wake and crediting math served by the specialized closures instead of
    [profile_of].  Off the end of the code, [profile_of] reports a [Free]
    gate with no operand wait, so the wake is [min_issue] and any
    credited window is all branch wait (the next sweep then raises the
    same fault the stepper would). *)
let run_compiled t spec =
  if spec.sp_for != t then
    invalid_arg "Sim.run: specialized value belongs to a different sim";
  let n = Array.length t.program.Program.cores in
  let max_cycles = t.config.Config.max_cycles in
  let cy = ref 0 in
  let last_progress = ref 0 in
  let deadlock_window = deadlock_window t in
  let attempted = Array.make n false in
  let live = spec.sp_live in
  live := 0;
  Array.iter (fun h -> if not h then incr live) t.halted;
  while !live > 0 do
    t.cycles <- !cy;
    if !cy >= max_cycles then
      raise (Stuck (snapshot t (Max_cycles { limit = max_cycles })));
    if step_cycle_compiled t spec attempted !cy then begin
      last_progress := !cy;
      incr cy
    end
    else begin
      if !cy - !last_progress > deadlock_window then
        raise (Stuck (snapshot t (Deadlock { window = deadlock_window })));
      let wake = ref max_int in
      for core = 0 to n - 1 do
        if not t.halted.(core) then begin
          let wakes = spec.sp_wakes.(core) in
          let pc = t.pc.(core) in
          let w =
            if pc >= Array.length wakes then t.min_issue.(core)
            else wakes.(pc) ()
          in
          if w < !wake then wake := w
        end
      done;
      (* The machine is quiescent: nothing can change before the earliest
         wake, the deadlock deadline, or the cycle budget — whichever
         comes first ([max_int] = no self-wake, the event engine's
         [Never]). *)
      let deadline = !last_progress + deadlock_window + 1 in
      let target = min (min !wake deadline) max_cycles in
      assert (target > !cy);
      let from = !cy + 1 in
      if target > from then
        for core = 0 to n - 1 do
          if t.halted.(core) then
            t.stats.(core).idle_after_halt <-
              t.stats.(core).idle_after_halt + (target - from)
          else begin
            let credits = spec.sp_credits.(core) in
            let pc = t.pc.(core) in
            if pc >= Array.length credits then
              t.stats.(core).branch_wait <-
                t.stats.(core).branch_wait + (target - from)
            else credits.(pc) from target
          end
        done;
      cy := target
    end
  done;
  for core = 0 to n - 1 do
    flush_stall_run t core
  done;
  t.cycles <- !cy;
  !cy

(** Run the program to completion; returns the cycle count of the last
    core to halt.  Raises {!Stuck} on deadlock (no core can make progress
    for [queue length * transfer latency + slack] consecutive cycles) or
    when [max_cycles] is reached (inclusive bound: a run executes at most
    [max_cycles] cycles).  All engines implement identical semantics
    (see {!Engine}); [Engine.Event] and [Engine.Compiled] only run
    faster.  [specialized] (only meaningful for {!Engine.Compiled}) lets
    the caller time {!specialize} separately; it must come from
    [specialize] on this same [t]. *)
let run ?(engine = Engine.default) ?specialized t =
  match engine with
  | Engine.Cycle -> run_cycle t
  | Engine.Event -> run_event t
  | Engine.Compiled ->
    let spec =
      match specialized with Some s -> s | None -> specialize t
    in
    run_compiled t spec

(** Final contents of a named array. *)
let array_contents t name =
  t.memory.(Program.array_id t.program name)

(** Value of a register on a core after the run. *)
let reg_value t core r = t.regs.(core).(r)

(** Per-array (name, loads, L1 misses) counters — the profile feedback
    input (Section III-B). *)
let load_counters t =
  Array.to_list
    (Array.mapi
       (fun i (l : Program.array_layout) ->
         (l.Program.arr_name, t.loads.(i), t.l1_misses.(i)))
       t.program.Program.arrays)

let queue_stats t =
  Array.to_list
    (Array.map
       (fun q -> (q.spec, q.transfers, q.max_occupancy))
       t.queues)

(** Number of distinct (src, dst) core pairs whose queues carried at least
    one value — the Table III "Queues" column. *)
let queues_used t =
  let pairs = Hashtbl.create 16 in
  Array.iter
    (fun q ->
      if q.transfers > 0 then
        Hashtbl.replace pairs (q.spec.Isa.src, q.spec.Isa.dst) ())
    t.queues;
  Hashtbl.length pairs

(** All queues drained — after a complete run this certifies that every
    enqueued value was consumed (the paper's static sender/receiver
    pairing, observed dynamically). *)
let queues_empty t =
  Array.for_all (fun q -> Queue.is_empty q.items) t.queues

(** Traced events, oldest first.  Bounded: when the run outgrew the trace
    ring only the most recent [trace_capacity] events remain — check
    {!dropped_events}. *)
let events t = Telemetry.Ring.to_list t.trace

(** Events overwritten because the trace ring was full. *)
let dropped_events t = Telemetry.Ring.dropped t.trace

(** Per-fiber cycle attribution: (fiber id, issue cycles, stall cycles),
    fiber id [Program.no_fiber] (-1) for runtime glue.  Summed with the
    per-core branch/SMT/idle waits this accounts for every cycle of every
    core. *)
let fiber_counters t =
  Array.to_list
    (Array.mapi
       (fun slot issue -> (slot - 1, issue, t.fiber_stall.(slot)))
       t.fiber_issue)

(** Cycles no issue was attempted, per core beyond the issue/stall
    accounting: taken-branch penalties + SMT arbitration losses +
    post-halt idling. *)
let wait_cycles t =
  Array.fold_left
    (fun acc s -> acc + s.branch_wait + s.smt_wait + s.idle_after_halt)
    0 t.stats
