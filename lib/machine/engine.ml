(** Simulation engine selection, plus the pure scheduling math behind the
    event-driven engine.

    The event engine ({!Event}) never simulates a cycle in which no core
    can issue more than once: after stepping a quiescent cycle it computes
    each blocked core's {e wake time} — the earliest cycle at which that
    core's issue conditions can change on their own — and jumps straight
    to the minimum over all cores (clamped by the deadlock deadline and
    the cycle budget), crediting the skipped cycles to the same per-core
    and per-fiber counters the cycle stepper would have bumped.

    Everything here is arithmetic on a frozen machine snapshot; the state
    reading and counter writing live in {!Sim}.  The key theorem making
    bulk crediting sound: in a cycle where no instruction issues, every
    eligible hardware thread is attempted by the round-robin arbiter (the
    shared issue slot is never consumed), so no [smt_wait] accrues, the
    round-robin cursors do not move, and queue contents, scoreboards and
    program counters are all frozen.  A blocked core's window therefore
    splits into at most three contiguous segments — branch-penalty wait,
    operand stall, queue stall — with boundaries given by [min_issue] and
    the operand-ready time ({!segments}). *)

type t = Cycle | Event | Compiled

let default = Cycle
let all = [ Cycle; Event; Compiled ]

let to_string = function
  | Cycle -> "cycle"
  | Event -> "event"
  | Compiled -> "compiled"

let of_string = function
  | "cycle" -> Some Cycle
  | "event" -> Some Event
  | "compiled" -> Some Compiled
  | _ -> None

(** What gates a core's next issue beyond its scoreboard and [min_issue]:

    - [Free]: nothing — the core issues (or faults) as soon as
      [max min_issue operands_at] arrives.
    - [Head_at v]: a dequeue whose queue is non-empty but whose head value
      becomes visible only at cycle [v] ([enqueue time + transfer
      latency]) — the one wait that expires without any other core
      acting.
    - [External]: blocked on another core's issue (enqueue into a full
      queue, dequeue from an empty queue) — no self-wake time exists. *)
type gate = Free | Head_at of int | External

(** A blocked core's issue conditions, frozen at the end of a quiescent
    cycle: the earliest cycle an issue may be attempted ([pr_min_issue],
    carrying branch penalties), the cycle every source operand is ready
    ([pr_operands_at], the max over the scoreboard entries of the current
    instruction's sources), and the queue gate. *)
type profile = { pr_min_issue : int; pr_operands_at : int; pr_gate : gate }

(** Earliest cycle a core's issue conditions can change without another
    core acting. *)
type wake = Never | At of int

let wake p =
  let base = max p.pr_min_issue p.pr_operands_at in
  match p.pr_gate with
  | Free -> At base
  | Head_at v -> At (max base v)
  | External -> Never

let min_wake a b =
  match (a, b) with
  | Never, w | w, Never -> w
  | At x, At y -> At (min x y)

(** [segments p ~from ~until] splits the quiescent window
    [\[from, until)] of a core with profile [p] into the cycle counts
    [(branch_wait, operand_stall, queue_stall)].  Sound only when
    [until <= wake p] (the caller jumps at most to the minimum wake):
    under that bound the three segments are exactly what the cycle
    stepper would have recorded — branch wait while
    [cycle < pr_min_issue], operand stall while
    [cycle < pr_operands_at], and the gate's stall class for the rest.
    The counts always sum to [until - from]. *)
let segments p ~from ~until =
  let clamp x = max from (min until x) in
  let m = clamp p.pr_min_issue in
  let r = max m (clamp p.pr_operands_at) in
  (m - from, r - m, until - r)
