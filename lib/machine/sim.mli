(** Cycle-level multi-core simulator.

    Cores are in-order, with a register scoreboard: an instruction
    issues once its operands are ready, and at most
    [Config.issue_width] instructions issue per core per cycle (default
    1, i.e. single-issue); results become available after the operation
    latency.  At width W >= 2 a core issues a bundle: after the first
    issue of a cycle it keeps issuing while execution falls straight
    through (pc + 1, no extra penalty, not halted) and the next
    instruction's operands and queue gates are ready; a refused extra
    slot records no stall.  Loads consult a private L1 / shared L2 hierarchy.
    Enqueue and dequeue follow the semantics of Section II and Fig. 11:
    enqueue blocks while the queue is full, dequeue blocks until the head
    value's [enqueue time + transfer latency] has elapsed.

    The simulator executes real values, so the outputs of a parallel run
    can be compared bit-for-bit against the reference evaluator.

    Telemetry: every (core, cycle) is attributed to exactly one counter
    (issue, a stall class, branch-penalty wait, SMT arbitration loss, or
    post-halt idle); stall episodes and queue occupancy feed
    {!Finepar_telemetry.Histogram}s; a bounded ring buffer keeps the most
    recent trace events; and issue/stall cycles are charged to the source
    fiber recorded in the program's provenance. *)

module Telemetry = Finepar_telemetry

module Engine = Engine
(** Engine selection for {!run}: the reference cycle stepper, the
    cycle-exact event-driven fast-forward engine, or the compiled engine
    (pre-specialized closures driven by the same fast-forward). *)

(** What a non-halted core is waiting on when the simulator gives up. *)
type wait =
  | Wait_queue_full of int  (** blocked enqueue: queue id *)
  | Wait_queue_empty of int
      (** blocked dequeue (empty, or head not yet visible): queue id *)
  | Wait_operand  (** a source register's result is still in flight *)
  | Wait_issue  (** not blocked per se (branch penalty, SMT arbitration) *)

type blocked_core = {
  bc_core : int;
  bc_pc : int;
  bc_instr : Isa.instr;
  bc_wait : wait;
}

type queue_occupancy = {
  qo_id : int;
  qo_spec : Isa.queue_spec;
  qo_occupancy : int;
  qo_capacity : int;
}

type stuck_reason =
  | Deadlock of { window : int }
      (** no core issued for [window] consecutive cycles *)
  | Max_cycles of { limit : int }  (** the configured cycle budget ran out *)
  | Fault of string
      (** a malformed execution: out-of-bounds access, type misuse of a
          register, running off the end of a core's code *)

type stuck = {
  st_reason : stuck_reason;
  st_cycle : int;
  st_blocked : blocked_core list;
      (** every non-halted core with the instruction it is blocked on *)
  st_queues : queue_occupancy list;  (** every queue's occupancy *)
}

exception Stuck of stuck

type queue_state = {
  spec : Isa.queue_spec;
  items : (Finepar_ir.Types.value * int) Queue.t;
  mutable transfers : int;
  mutable max_occupancy : int;
  occupancy : Telemetry.Histogram.t;
      (** occupancy after each enqueue; bucket total = [transfers] *)
}

type core_stats = {
  mutable instrs : int;
  mutable stall_operand : int;
  mutable stall_queue_full : int;
  mutable stall_queue_empty : int;
  mutable branch_wait : int;  (** cycles lost to taken-branch penalties *)
  mutable smt_wait : int;
      (** cycles an eligible thread lost the shared issue slot (SMT) *)
  mutable idle_after_halt : int;
  mutable finished_at : int;
  mutable dual_issued : int;
      (** instructions issued in slots >= 2 of an issue bundle (always 0
          at issue width 1) *)
}

val stall_total : core_stats -> int
(** Total cycles this core spent blocked on an issue attempt. *)

val accounted_cycles : core_stats -> int
(** [instrs - dual_issued + stalls + branch_wait + smt_wait +
    idle_after_halt]; equals the run's total cycle count for every core
    after {!run} (extra-slot issues share their cycle with the bundle's
    first issue). *)

type event =
  | Ev_issue of { core : int; cycle : int; pc : int; instr : Isa.instr }
  | Ev_stall of {
      core : int;
      cycle : int;
      pc : int;
      reason : Telemetry.Stall.t;
    }

type t = {
  config : Config.t;
  program : Program.t;
  memory : Finepar_ir.Types.value array array;
  queues : queue_state array;
  core_map : int array;
  l1 : Cache.t array;
  l2 : Cache.t;
  regs : Finepar_ir.Types.value array array;
  reg_ready : int array array;
  pc : int array;
  min_issue : int array;
  halted : bool array;
  stats : core_stats array;
  rr : int array;
  threads_of : int list array;
  loads : int array;
  l1_misses : int array;
  mutable cycles : int;
  trace : event Telemetry.Ring.t;
  tracing : bool;
  stall_hist : Telemetry.Histogram.t array;
      (** per logical core: durations of contiguous stall episodes *)
  stall_run_class : int array;
  stall_run_len : int array;
  fiber_issue : int array;
  fiber_stall : int array;
}

val default_trace_capacity : int

val create :
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?core_map:int array ->
  config:Config.t ->
  initial:(string * Finepar_ir.Types.value array) list ->
  Program.t -> t

val addr_of : t -> int -> int -> int
val load_latency : t -> int -> int -> int -> int
val store_effects : t -> int -> int -> int -> unit
val check_idx : t -> int -> int -> unit
val int_of_reg : t -> int -> int -> int
val record_event : t -> event -> unit
val step_core : t -> int -> int -> bool

val issuable : t -> int -> int -> bool
(** [issuable t core cy]: whether [core]'s next instruction would issue
    at [cy] — the side-effect-free gate for a bundle's extra slots. *)

val all_halted : t -> bool

val occupancies : t -> queue_occupancy list
(** Occupancy of every queue right now. *)

val blocked_of : t -> int -> blocked_core list
(** [blocked_of t cy]: every non-halted core with the instruction it is
    blocked on at cycle [cy], waits classified as in [step_core]. *)

val wait_for_cycle : stuck -> blocked_core list option
(** The dynamic wait-for cycle among blocked cores, if one exists: a
    core blocked on an empty queue waits for the queue's source core, a
    core blocked on a full queue waits for its destination core. *)

val describe_blockage : t -> string
(** Blocked cores (with their waits) and per-queue occupancies as a
    single readable line. *)

val stuck_message : stuck -> string
(** Human-readable rendering of a {!stuck} payload: reason, blocked
    cores, queue occupancies, and the wait-for cycle for deadlocks. *)

val pp_wait : Format.formatter -> wait -> unit
val pp_blocked_core : Format.formatter -> blocked_core -> unit
val pp_queue_occupancy : Format.formatter -> queue_occupancy -> unit

type specialized
(** A sim instance's program pre-compiled for {!Engine.Compiled}: per
    core, a flat array of closures (one per pc) with operand checks
    unrolled and destinations, latencies, branch targets, queue
    endpoints, fiber slots and stall reasons resolved to direct slots
    and constants.  Valid only for the instance it was built from. *)

val specialize : t -> specialized
(** Compile [t]'s program into {!specialized} form.  O(total
    instructions); typically well under a millisecond.  Pure
    preparation: no simulation state changes. *)

val run : ?engine:Engine.t -> ?specialized:specialized -> t -> int
(** Run to completion under the selected engine ([Engine.default], the
    cycle stepper, when omitted); returns the final cycle count.  All
    engines are cycle-exact to each other: identical cycle counts,
    architectural outputs, telemetry, and {!Stuck} payloads.
    [specialized] is only consulted by {!Engine.Compiled} (which
    otherwise calls {!specialize} itself) and must come from
    {!specialize} on this same [t] — [Invalid_argument] otherwise. *)

val array_contents : t -> String.t -> Finepar_ir.Types.value array
val reg_value : t -> int -> int -> Finepar_ir.Types.value
val load_counters : t -> (string * int * int) list
val queue_stats : t -> (Isa.queue_spec * int * int) list
val queues_used : t -> int
val queues_empty : t -> bool

val events : t -> event list
(** Traced events, oldest first; bounded by the trace ring — check
    {!dropped_events} for truncation. *)

val dropped_events : t -> int

val fiber_counters : t -> (int * int * int) list
(** (fiber id, issue cycles, stall cycles); fiber id
    [Program.no_fiber] (-1) is runtime glue. *)

val wait_cycles : t -> int
(** Total branch-penalty + SMT-loss + post-halt idle cycles across
    cores. *)
