(** Multi-core machine programs: per-core code with resolved labels, the
    queue table, and the shared-memory array layout. *)

open Finepar_ir

type array_layout = {
  arr_name : string;
  arr_ty : Types.ty;
  arr_len : int;
  arr_base : int;  (** byte address of element 0 *)
}

(** Fiber id an instruction was generated from, or {!no_fiber} for runtime
    glue (constant pool, loop control, spawn/collect protocol). *)
let no_fiber = -1

type core_program = {
  code : Isa.instr array;
  label_pos : int array;  (** label id -> instruction index *)
  n_regs : int;
  fiber_of : int array;
      (** provenance, same length as [code]: source fiber id per
          instruction, {!no_fiber} for runtime glue *)
}

type t = {
  cores : core_program array;
  queues : Isa.queue_spec array;
  arrays : array_layout array;  (** indexed by array id *)
}

let array_id t name =
  let rec go i =
    if i >= Array.length t.arrays then
      invalid_arg ("Program.array_id: unknown array " ^ name)
    else if String.equal t.arrays.(i).arr_name name then i
    else go (i + 1)
  in
  go 0

(** Lay arrays out contiguously, each aligned to a cache line. *)
let layout_arrays ~line (decls : Kernel.array_decl list) =
  let next = ref line in
  Array.of_list
    (List.map
       (fun (d : Kernel.array_decl) ->
         let base = !next in
         let bytes = d.Kernel.a_len * 8 in
         next := (base + bytes + line - 1) / line * line;
         {
           arr_name = d.Kernel.a_name;
           arr_ty = d.Kernel.a_ty;
           arr_len = d.Kernel.a_len;
           arr_base = base;
         })
       decls)

(** Mutable builder for one core's code. *)
module Builder = struct
  type b = {
    mutable instrs : Isa.instr list;  (** reversed *)
    mutable fibers : int list;  (** reversed, parallel to [instrs] *)
    mutable cur_fiber : int;
    mutable count : int;
    mutable labels : (int * int) list;  (** label id, position *)
    mutable next_label : int;
    mutable next_reg : int;
  }

  let create () =
    {
      instrs = [];
      fibers = [];
      cur_fiber = no_fiber;
      count = 0;
      labels = [];
      next_label = 0;
      next_reg = 0;
    }

  let emit b i =
    b.instrs <- i :: b.instrs;
    b.fibers <- b.cur_fiber :: b.fibers;
    b.count <- b.count + 1

  (** Attribute subsequently emitted instructions to fiber [f]
      ({!no_fiber} resets to runtime glue). *)
  let set_fiber b f = b.cur_fiber <- f

  let fresh_label b =
    let l = b.next_label in
    b.next_label <- l + 1;
    l

  let place_label b l = b.labels <- (l, b.count) :: b.labels

  let fresh_reg b =
    let r = b.next_reg in
    b.next_reg <- r + 1;
    r

  let here b = b.count

  let finish b =
    let label_pos = Array.make b.next_label (-1) in
    List.iter (fun (l, p) -> label_pos.(l) <- p) b.labels;
    Array.iteri
      (fun l p ->
        if p < 0 then
          invalid_arg (Printf.sprintf "Program.Builder: label %d unplaced" l))
      label_pos;
    {
      code = Array.of_list (List.rev b.instrs);
      label_pos;
      n_regs = max 1 b.next_reg;
      fiber_of = Array.of_list (List.rev b.fibers);
    }
end

(** Largest fiber id appearing in any core's provenance, or [no_fiber]
    when the program carries only glue. *)
let max_fiber t =
  Array.fold_left
    (fun acc c -> Array.fold_left max acc c.fiber_of)
    no_fiber t.cores

let total_instrs t =
  Array.fold_left (fun acc c -> acc + Array.length c.code) 0 t.cores

let pp_core ppf (c : core_program) =
  Array.iteri
    (fun i instr ->
      let labels_here =
        Array.to_seq c.label_pos |> Seq.mapi (fun l p -> (l, p))
        |> Seq.filter (fun (_, p) -> p = i)
        |> Seq.map fst |> List.of_seq
      in
      List.iter (fun l -> Fmt.pf ppf "L%d:@," l) labels_here;
      Fmt.pf ppf "  %3d: %a@," i Isa.pp_instr instr)
    c.code

let pp ppf t =
  Array.iteri
    (fun k c -> Fmt.pf ppf "@[<v>core %d:@,%a@]@," k pp_core c)
    t.cores
