(** Machine parameters.

    Defaults model the evaluation platform of Section V: in-order A2-like
    cores, queue length 20 slots, queue transfer latency 5 cycles
    (Figure 13 sweeps it to 20, 50 and 100), enqueue/dequeue occupying one
    pipeline slot. *)

type t = {
  queue_len : int;
  transfer_latency : int;
  l1_bytes : int;
  l1_line : int;
  l2_bytes : int;
  l1_hit : int;
  l2_hit : int;
  mem_latency : int;
  branch_taken_penalty : int;
  deq_latency : int;
  max_cycles : int;
  issue_width : int;
}
val default : t
val with_transfer_latency : int -> t -> t
val with_issue_width : int -> t -> t
