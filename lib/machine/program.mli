(** Multi-core machine programs: per-core code with resolved labels, the
    queue table, and the shared-memory array layout. *)

type array_layout = {
  arr_name : string;
  arr_ty : Finepar_ir.Types.ty;
  arr_len : int;
  arr_base : int;
}
val no_fiber : int
(** Fiber id an instruction was generated from, or {!no_fiber} (-1) for
    runtime glue (constant pool, loop control, spawn/collect protocol). *)

type core_program = {
  code : Isa.instr array;
  label_pos : int array;
  n_regs : int;
  fiber_of : int array;
      (** provenance, same length as [code]: source fiber id per
          instruction, {!no_fiber} for runtime glue *)
}
type t = {
  cores : core_program array;
  queues : Isa.queue_spec array;
  arrays : array_layout array;
}
val array_id : t -> String.t -> int
val layout_arrays :
  line:int -> Finepar_ir.Kernel.array_decl list -> array_layout array
module Builder :
  sig
    type b = {
      mutable instrs : Isa.instr list;
      mutable fibers : int list;
      mutable cur_fiber : int;
      mutable count : int;
      mutable labels : (int * int) list;
      mutable next_label : int;
      mutable next_reg : int;
    }
    val create : unit -> b
    val emit : b -> Isa.instr -> unit

    (** Attribute subsequently emitted instructions to this fiber
        ({!no_fiber} resets to runtime glue). *)
    val set_fiber : b -> int -> unit

    val fresh_label : b -> int
    val place_label : b -> int -> unit
    val fresh_reg : b -> int
    val here : b -> int
    val finish : b -> core_program
  end

(** Largest fiber id appearing in any core's provenance, or {!no_fiber}
    when the program carries only glue. *)
val max_fiber : t -> int
val total_instrs : t -> int
val pp_core : Format.formatter -> core_program -> unit
val pp : Format.formatter -> t -> unit
