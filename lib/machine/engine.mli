(** Simulation engine selection, plus the pure scheduling math behind the
    event-driven engine (see the implementation header for the quiescence
    theorem that makes bulk stall crediting cycle-exact). *)

type t =
  | Cycle  (** the reference stepper: every core, every cycle *)
  | Event
      (** event-driven fast-forward: jump to the next cycle any core's
          state can change, bulk-crediting the skipped cycles.
          Cycle-exact with {!Cycle} by contract: identical cycle counts,
          architectural outputs, telemetry reports and [Stuck] payloads. *)
  | Compiled
      (** pre-compiled stepping: each core's program is specialized once
          into a flat array of closures (operands resolved to scoreboard
          slots, latencies, branch targets and queue endpoints baked in),
          then driven with the same quiescent fast-forward as {!Event}.
          Bound by the same cycle-exactness contract as {!Event}. *)

val default : t
(** {!Cycle}, the reference semantics. *)

val all : t list
val to_string : t -> string
val of_string : string -> t option

(** {2 Scheduling math} *)

type gate =
  | Free  (** issues at [max min_issue operands_at] *)
  | Head_at of int  (** dequeue head becomes visible at this cycle *)
  | External  (** waiting on another core's issue; no self-wake *)

type profile = { pr_min_issue : int; pr_operands_at : int; pr_gate : gate }

type wake = Never | At of int

val wake : profile -> wake
(** Earliest cycle the core's issue conditions can change without another
    core acting; [Never] for {!External} gates. *)

val min_wake : wake -> wake -> wake

val segments : profile -> from:int -> until:int -> int * int * int
(** [(branch_wait, operand_stall, queue_stall)] cycle counts for the
    quiescent window [\[from, until)]; requires [until <= wake profile].
    The counts sum to [until - from]. *)
