(** Lowering of partitioned, scheduled regions to machine code.

    One function per core is produced, mirroring the paper's outlining
    (Section III-C): core 0 carries the primary thread (the "original
    function"), cores 1..k-1 carry outlined functions run by the runtime
    driver of Section III-G.  Conditional structure is replicated on every
    core that holds predicated statements (Section III-E): branch and
    label instructions are regenerated from the flat predicate contexts.

    Item placement per core follows the global schedule; dequeues are
    ordered by their matching enqueue's global position and hoisted with a
    suffix-min so that (a) per-queue FIFO order matches the producer, and
    (b) a transferred predicate value is always dequeued before anything
    guarded by it. *)

module SS : Set.S with type elt = String.t and type t = Set.Make(String).t
exception Codegen_error of string
val codegen_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val qclass_of_ty : Finepar_ir.Types.ty -> Finepar_machine.Isa.qclass
module Queues :
  sig
    type t = {
      tbl : (int * int * Finepar_machine.Isa.qclass, int) Hashtbl.t;
      mutable specs : Finepar_machine.Isa.queue_spec list;
      mutable count : int;
    }
    val create : unit -> t
    val id : t -> src:int -> dst:int -> cls:Finepar_machine.Isa.qclass -> int
    val to_array : t -> Finepar_machine.Isa.queue_spec array
  end
type const_key = Kint of int | Kfloat of int64
val const_key : Finepar_ir.Types.value -> const_key
type core_ctx = {
  core : int;
  b : Finepar_machine.Program.Builder.b;
  var_reg : (string, Finepar_machine.Isa.reg) Hashtbl.t;
  const_reg : (const_key, Finepar_machine.Isa.reg) Hashtbl.t;
}
val new_ctx : int -> core_ctx
val reg_def : core_ctx -> string -> Finepar_machine.Isa.reg
val reg_use : core_ctx -> string -> Finepar_machine.Isa.reg
val creg : core_ctx -> Finepar_ir.Types.value -> Finepar_machine.Isa.reg
val emit_const_pool : core_ctx -> Finepar_ir.Types.value list -> unit
val lower_expr :
  core_ctx ->
  array_id:(string -> int) -> Finepar_ir.Expr.t -> Finepar_machine.Isa.reg
val lower_into :
  core_ctx -> array_id:(string -> int) -> string -> Finepar_ir.Expr.t -> unit
type item =
    It_fiber of Finepar_ir.Region.sstmt
  | It_enq of Finepar_transform.Comm.transfer
  | It_deq of Finepar_transform.Comm.transfer
val item_preds : item -> Finepar_ir.Region.pred list

type shared_info = {
  sh_flag_arr : int;
  sh_data_arr : Finepar_ir.Types.ty -> int;
  sh_slot : Finepar_transform.Comm.transfer -> Finepar_transform.Comm.slot;
}
(** Shared-cache lowering context: ids of the synthetic handshake arrays
    and each transfer's canonical slot. *)

val shared_slot_of :
  Finepar_transform.Comm.t ->
  Finepar_transform.Comm.transfer -> Finepar_transform.Comm.slot

val emit_items :
  core_ctx ->
  array_id:(string -> int) ->
  queues:Queues.t ->
  shared:shared_info option -> fiber_of:(item -> int) -> item list -> unit
val consts_of_expr : Finepar_ir.Expr.t -> Finepar_ir.Types.value list
val consts_of_items :
  shared:shared_info option -> item list -> Finepar_ir.Types.value list
type t = {
  program : Finepar_machine.Program.t;
  cores_used : int;
  live_out_regs : (string * Finepar_machine.Isa.reg) list;
  com_ops : int;
  queue_pairs_static : int;
  warnings : string list;
}
val entry_vars :
  kernel:Finepar_ir.Kernel.t ->
  deps:Finepar_analysis.Deps.t ->
  cluster_of:'a array -> core:'a -> item list -> SS.elt list
val generate :
  kernel:Finepar_ir.Kernel.t ->
  region:Finepar_ir.Region.t ->
  deps:Finepar_analysis.Deps.t ->
  cluster_of:int array ->
  n_clusters:int ->
  order:int list ->
  comm:Finepar_transform.Comm.t ->
  ?mode:Finepar_transform.Comm.mode -> line_size:int -> unit -> t
(** [mode] (default [Queues]) selects the transfer realization; in
    [Shared_cache] mode transfers lower to valid-flag handshakes over
    synthetic arrays appended after the kernel's arrays, and the driver
    protocol (spawn, entry values, live-outs, completion and halt
    tokens) stays on queues. *)
