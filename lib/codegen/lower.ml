(** Lowering of partitioned, scheduled regions to machine code.

    One function per core is produced, mirroring the paper's outlining
    (Section III-C): core 0 carries the primary thread (the "original
    function"), cores 1..k-1 carry outlined functions run by the runtime
    driver of Section III-G.  Conditional structure is replicated on every
    core that holds predicated statements (Section III-E): branch and
    label instructions are regenerated from the flat predicate contexts.

    Item placement per core follows the global schedule; dequeues are
    ordered by their matching enqueue's global position and hoisted with a
    suffix-min so that (a) per-queue FIFO order matches the producer, and
    (b) a transferred predicate value is always dequeued before anything
    guarded by it. *)

open Finepar_ir
open Finepar_analysis
open Finepar_transform
module SS = Set.Make (String)
open Finepar_machine

exception Codegen_error of string

let codegen_error fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let qclass_of_ty = function
  | Types.I64 -> Isa.Qint
  | Types.F64 -> Isa.Qfloat

(* ------------------------------------------------------------------ *)
(* Queue registry (global across cores).                               *)

module Queues = struct
  type t = {
    tbl : (int * int * Isa.qclass, int) Hashtbl.t;
    mutable specs : Isa.queue_spec list;  (** reversed *)
    mutable count : int;
  }

  let create () = { tbl = Hashtbl.create 16; specs = []; count = 0 }

  let id t ~src ~dst ~cls =
    match Hashtbl.find_opt t.tbl (src, dst, cls) with
    | Some q -> q
    | None ->
      let q = t.count in
      t.count <- q + 1;
      Hashtbl.replace t.tbl (src, dst, cls) q;
      t.specs <- { Isa.src; dst; cls } :: t.specs;
      q

  let to_array t = Array.of_list (List.rev t.specs)
end

(* ------------------------------------------------------------------ *)
(* Per-core emission context.                                          *)

type const_key = Kint of int | Kfloat of int64

let const_key = function
  | Types.VInt i -> Kint i
  | Types.VFloat f -> Kfloat (Int64.bits_of_float f)

type core_ctx = {
  core : int;
  b : Program.Builder.b;
  var_reg : (string, Isa.reg) Hashtbl.t;
  const_reg : (const_key, Isa.reg) Hashtbl.t;
}

let new_ctx core =
  {
    core;
    b = Program.Builder.create ();
    var_reg = Hashtbl.create 32;
    const_reg = Hashtbl.create 16;
  }

(** Register holding [v]; allocates on first definition. *)
let reg_def ctx v =
  match Hashtbl.find_opt ctx.var_reg v with
  | Some r -> r
  | None ->
    let r = Program.Builder.fresh_reg ctx.b in
    Hashtbl.replace ctx.var_reg v r;
    r

(** Register holding [v]; the variable must already be defined on this
    core (otherwise the partitioning or scheduling is broken). *)
let reg_use ctx v =
  match Hashtbl.find_opt ctx.var_reg v with
  | Some r -> r
  | None -> codegen_error "core %d: variable %s has no register" ctx.core v

let creg ctx v =
  match Hashtbl.find_opt ctx.const_reg (const_key v) with
  | Some r -> r
  | None -> codegen_error "core %d: constant %a not in pool" ctx.core
              Types.pp_value v

(** Emit the constant pool: one [Li] per distinct literal. *)
let emit_const_pool ctx values =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let k = const_key v in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        let r = Program.Builder.fresh_reg ctx.b in
        Hashtbl.replace ctx.const_reg k r;
        Program.Builder.emit ctx.b (Isa.Li (r, v))
      end)
    values

(* ------------------------------------------------------------------ *)
(* Expression lowering.                                                *)

let rec lower_expr ctx ~array_id e =
  match e with
  | Expr.Const v -> creg ctx v
  | Expr.Var v -> reg_use ctx v
  | Expr.Load (a, idx) ->
    let ri = lower_expr ctx ~array_id idx in
    let d = Program.Builder.fresh_reg ctx.b in
    Program.Builder.emit ctx.b (Isa.Load (d, array_id a, ri));
    d
  | Expr.Unop (op, x) ->
    let rx = lower_expr ctx ~array_id x in
    let d = Program.Builder.fresh_reg ctx.b in
    Program.Builder.emit ctx.b (Isa.Un (op, d, rx));
    d
  | Expr.Binop (op, x, y) ->
    let rx = lower_expr ctx ~array_id x in
    let ry = lower_expr ctx ~array_id y in
    let d = Program.Builder.fresh_reg ctx.b in
    Program.Builder.emit ctx.b (Isa.Bin (op, d, rx, ry));
    d
  | Expr.Select (c, t, f) ->
    let rc = lower_expr ctx ~array_id c in
    let rt = lower_expr ctx ~array_id t in
    let rf = lower_expr ctx ~array_id f in
    let d = Program.Builder.fresh_reg ctx.b in
    Program.Builder.emit ctx.b (Isa.Sel (d, rc, rt, rf));
    d

(** Lower [e] into the (stable) register of variable [v]. *)
let lower_into ctx ~array_id v e =
  match e with
  | Expr.Const c ->
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Mov (d, creg ctx c))
  | Expr.Var src ->
    let rs = reg_use ctx src in
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Mov (d, rs))
  | Expr.Load (a, idx) ->
    let ri = lower_expr ctx ~array_id idx in
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Load (d, array_id a, ri))
  | Expr.Unop (op, x) ->
    let rx = lower_expr ctx ~array_id x in
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Un (op, d, rx))
  | Expr.Binop (op, x, y) ->
    let rx = lower_expr ctx ~array_id x in
    let ry = lower_expr ctx ~array_id y in
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Bin (op, d, rx, ry))
  | Expr.Select (c, t, f) ->
    let rc = lower_expr ctx ~array_id c in
    let rt = lower_expr ctx ~array_id t in
    let rf = lower_expr ctx ~array_id f in
    let d = reg_def ctx v in
    Program.Builder.emit ctx.b (Isa.Sel (d, rc, rt, rf))

(* ------------------------------------------------------------------ *)
(* Items and predicated emission.                                      *)

type item =
  | It_fiber of Region.sstmt
  | It_enq of Comm.transfer
  | It_deq of Comm.transfer

let item_preds = function
  | It_fiber s -> s.Region.preds
  | It_enq tr | It_deq tr -> tr.Comm.preds

(* Shared-cache lowering context: ids of the synthetic handshake arrays
   and the canonical slot of each transfer. *)
type shared_info = {
  sh_flag_arr : int;
  sh_data_arr : Types.ty -> int;
  sh_slot : Comm.transfer -> Comm.slot;
}

let shared_slot_of comm =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((tr : Comm.transfer), s) ->
      Hashtbl.replace tbl (tr.Comm.src_core, tr.Comm.dst_core, tr.Comm.ty, tr.Comm.seq) s)
    (Comm.shared_slots comm);
  fun (tr : Comm.transfer) ->
    match
      Hashtbl.find_opt tbl (tr.Comm.src_core, tr.Comm.dst_core, tr.Comm.ty, tr.Comm.seq)
    with
    | Some s -> s
    | None -> codegen_error "transfer %s has no handshake slot" tr.Comm.var

(** Emit a list of predicated items, replicating conditional structure by
    opening and closing branch scopes as the predicate context changes.
    [fiber_of] gives the source fiber each item's instructions are
    attributed to (provenance for the telemetry layer); guard branches are
    attributed to the item they guard. *)
let emit_items ctx ~array_id ~queues ~shared ~fiber_of items =
  let open Program.Builder in
  let stack = ref [] in
  (* innermost first: (pred, end label) *)
  let close_down_to depth =
    while List.length !stack > depth do
      match !stack with
      | (_, lbl) :: rest ->
        place_label ctx.b lbl;
        stack := rest
      | [] -> assert false
    done
  in
  let open_pred (p : Region.pred) =
    let rc = reg_use ctx p.Region.cnd in
    let lbl = fresh_label ctx.b in
    emit ctx.b
      (if p.Region.want then Isa.Bz (rc, lbl) else Isa.Bnz (rc, lbl));
    stack := (p, lbl) :: !stack
  in
  let adjust preds =
    let opened = List.rev_map fst !stack in
    (* length of common prefix *)
    let rec common n os ps =
      match (os, ps) with
      | o :: os', p :: ps' when Region.pred_equal o p -> common (n + 1) os' ps'
      | _ -> n
    in
    let keep = common 0 opened preds in
    close_down_to keep;
    List.iteri (fun i p -> if i >= keep then open_pred p) preds
  in
  List.iter
    (fun it ->
      Program.Builder.set_fiber ctx.b (fiber_of it);
      adjust (item_preds it);
      match it with
      | It_fiber s -> (
        match s.Region.lhs with
        | Region.Lscalar v -> lower_into ctx ~array_id v s.Region.rhs
        | Region.Lstore (a, idx) ->
          let ri = lower_expr ctx ~array_id idx in
          let rv = lower_expr ctx ~array_id s.Region.rhs in
          emit ctx.b (Isa.Store (array_id a, ri, rv)))
      | It_enq tr -> (
        match shared with
        | None ->
          let q =
            Queues.id queues ~src:tr.Comm.src_core ~dst:tr.Comm.dst_core
              ~cls:(qclass_of_ty tr.Comm.ty)
          in
          emit ctx.b (Isa.Enq (q, reg_use ctx tr.Comm.var))
        | Some sh ->
          (* Producer handshake: spin while the slot is still full from
             the previous round, write the value, then set the flag. *)
          let sl = sh.sh_slot tr in
          let r_fidx = creg ctx (Types.VInt sl.Comm.sl_flag) in
          let r_didx = creg ctx (Types.VInt sl.Comm.sl_data) in
          let rt = fresh_reg ctx.b in
          let l_spin = fresh_label ctx.b in
          place_label ctx.b l_spin;
          emit ctx.b (Isa.Load (rt, sh.sh_flag_arr, r_fidx));
          emit ctx.b (Isa.Bnz (rt, l_spin));
          emit ctx.b
            (Isa.Store (sh.sh_data_arr tr.Comm.ty, r_didx, reg_use ctx tr.Comm.var));
          emit ctx.b (Isa.Store (sh.sh_flag_arr, r_fidx, creg ctx (Types.VInt 1))))
      | It_deq tr -> (
        match shared with
        | None ->
          let q =
            Queues.id queues ~src:tr.Comm.src_core ~dst:tr.Comm.dst_core
              ~cls:(qclass_of_ty tr.Comm.ty)
          in
          emit ctx.b (Isa.Deq (reg_def ctx tr.Comm.var, q))
        | Some sh ->
          (* Consumer handshake: spin until the flag is set, read the
             value, then clear the flag to release the slot. *)
          let sl = sh.sh_slot tr in
          let r_fidx = creg ctx (Types.VInt sl.Comm.sl_flag) in
          let r_didx = creg ctx (Types.VInt sl.Comm.sl_data) in
          let rt = fresh_reg ctx.b in
          let l_spin = fresh_label ctx.b in
          place_label ctx.b l_spin;
          emit ctx.b (Isa.Load (rt, sh.sh_flag_arr, r_fidx));
          emit ctx.b (Isa.Bz (rt, l_spin));
          emit ctx.b
            (Isa.Load (reg_def ctx tr.Comm.var, sh.sh_data_arr tr.Comm.ty, r_didx));
          emit ctx.b (Isa.Store (sh.sh_flag_arr, r_fidx, creg ctx (Types.VInt 0)))))
    items;
  close_down_to 0;
  Program.Builder.set_fiber ctx.b Program.no_fiber

(* ------------------------------------------------------------------ *)
(* Constant collection.                                                *)

let consts_of_expr e =
  Expr.fold
    (fun acc e -> match e with Expr.Const v -> v :: acc | _ -> acc)
    [] e

let consts_of_items ~shared items =
  List.concat_map
    (fun it ->
      match it with
      | It_fiber s ->
        consts_of_expr s.Region.rhs
        @ (match s.Region.lhs with
          | Region.Lstore (_, idx) -> consts_of_expr idx
          | Region.Lscalar _ -> [])
      | It_enq tr -> (
        (* Handshake constants (slot indices and the flag value) only
           enter the pool in shared-cache mode, so queues-mode codegen
           is byte-identical to before. *)
        match shared with
        | None -> []
        | Some sh ->
          let sl = sh.sh_slot tr in
          [ Types.VInt sl.Comm.sl_flag; Types.VInt sl.Comm.sl_data; Types.VInt 1 ])
      | It_deq tr -> (
        match shared with
        | None -> []
        | Some sh ->
          let sl = sh.sh_slot tr in
          [ Types.VInt sl.Comm.sl_flag; Types.VInt sl.Comm.sl_data; Types.VInt 0 ]))
    items

(* ------------------------------------------------------------------ *)
(* Top-level generation.                                               *)

type t = {
  program : Program.t;
  cores_used : int;
  live_out_regs : (string * Isa.reg) list;  (** registers on core 0 *)
  com_ops : int;
  queue_pairs_static : int;
  warnings : string list;
}

(** Scalars whose value must be present on [core] before the loop starts:
    live-in scalars it reads, loop-carried scalars it owns (their declared
    initial value seeds the recurrence), and live-out scalars it owns
    (whose declared initial value must survive a zero-trip loop). *)
let entry_vars ~(kernel : Kernel.t) ~(deps : Deps.t) ~cluster_of ~core items =
  let used = ref SS.empty in
  List.iter
    (fun it ->
      match it with
      | It_fiber s ->
        used := SS.union (Region.sstmt_uses s) !used;
        used := SS.union (Region.sstmt_pred_vars s) !used
      | It_enq _ | It_deq _ -> ())
    items;
  let live_in_here = SS.inter !used deps.Deps.live_in in
  let carried_here =
    SS.filter
      (fun v ->
        match Deps.SM.find_opt v deps.Deps.defs with
        | Some (d :: _) -> cluster_of.(d) = core
        | Some [] | None -> false)
      deps.Deps.loop_carried
  in
  let live_out_here =
    List.fold_left
      (fun acc v ->
        match Deps.SM.find_opt v deps.Deps.owners with
        | Some d when cluster_of.(d) = core -> SS.add v acc
        | Some _ | None -> acc)
      SS.empty kernel.Kernel.live_out
  in
  SS.elements (SS.union (SS.union live_in_here carried_here) live_out_here)

let generate ~(kernel : Kernel.t) ~(region : Region.t) ~(deps : Deps.t)
    ~(cluster_of : int array) ~(n_clusters : int) ~(order : int list)
    ~(comm : Comm.t) ?(mode = Comm.Queues) ~line_size () =
  let cores = n_clusters in
  let tenv = Cost.region_tenv region in
  let n_flags, n_i64, n_f64 = Comm.shared_slot_counts comm in
  let layout =
    let decls = kernel.Kernel.arrays in
    let decls =
      match mode with
      | Comm.Queues -> decls
      | Comm.Shared_cache ->
        (* Synthetic handshake arrays live after the kernel's arrays so
           kernel addresses are unchanged between modes. *)
        let extra =
          (if n_flags > 0 then
             [ { Kernel.a_name = Comm.flag_array_name; a_ty = Types.I64;
                 a_len = n_flags } ]
           else [])
          @ (if n_i64 > 0 then
               [ { Kernel.a_name = Comm.i64_array_name; a_ty = Types.I64;
                   a_len = n_i64 } ]
             else [])
          @
          if n_f64 > 0 then
            [ { Kernel.a_name = Comm.f64_array_name; a_ty = Types.F64;
                a_len = n_f64 } ]
          else []
        in
        decls @ extra
    in
    Program.layout_arrays ~line:line_size decls
  in
  let array_id name =
    let rec go i =
      if i >= Array.length layout then codegen_error "unknown array %s" name
      else if String.equal layout.(i).Program.arr_name name then i
      else go (i + 1)
    in
    go 0
  in
  let stmts = Array.of_list region.Region.stmts in
  let pos = Array.make (Array.length stmts) 0 in
  List.iteri (fun i f -> pos.(f) <- i) order;
  (* Inverse of [pos]: schedule position -> fiber id, used to attribute
     communication instructions to the fiber that produced the value. *)
  let fiber_at = Array.make (List.length order) Program.no_fiber in
  List.iteri (fun i f -> fiber_at.(i) <- f) order;
  let item_fiber = function
    | It_fiber s -> s.Region.id
    | It_enq tr | It_deq tr ->
      if tr.Comm.enq_anchor >= 0 && tr.Comm.enq_anchor < Array.length fiber_at
      then fiber_at.(tr.Comm.enq_anchor)
      else Program.no_fiber
  in
  let queues = Queues.create () in
  let shared =
    match mode with
    | Comm.Queues -> None
    | Comm.Shared_cache ->
      if n_flags = 0 then None
      else
        Some
          {
            sh_flag_arr = array_id Comm.flag_array_name;
            sh_data_arr =
              (fun ty ->
                match ty with
                | Types.I64 -> array_id Comm.i64_array_name
                | Types.F64 -> array_id Comm.f64_array_name);
            sh_slot = shared_slot_of comm;
          }
  in
  (* Build per-core items with sort keys: (anchor, phase, tiebreak). *)
  let items_of_core core =
    let fibers =
      List.filter_map
        (fun f ->
          if cluster_of.(f) = core then
            Some ((pos.(f), 1, f), It_fiber stmts.(f))
          else None)
        order
    in
    let enqs =
      List.filter_map
        (fun (tr : Comm.transfer) ->
          if tr.Comm.src_core = core then
            Some ((tr.Comm.enq_anchor, 2, tr.Comm.seq), It_enq tr)
          else None)
        comm.Comm.transfers
    in
    (* Dequeues: order by the producer's global position, then hoist with a
       suffix-min so no dequeue is delayed past a later-enqueued one. *)
    let deqs =
      List.filter
        (fun (tr : Comm.transfer) -> tr.Comm.dst_core = core)
        comm.Comm.transfers
      |> List.sort (fun (a : Comm.transfer) (b : Comm.transfer) ->
             compare
               (a.Comm.enq_anchor, a.Comm.src_core, a.Comm.ty, a.Comm.seq)
               (b.Comm.enq_anchor, b.Comm.src_core, b.Comm.ty, b.Comm.seq))
      |> Array.of_list
    in
    let n = Array.length deqs in
    let anchors = Array.map (fun tr -> tr.Comm.deq_anchor) deqs in
    for i = n - 2 downto 0 do
      if anchors.(i + 1) < anchors.(i) then anchors.(i) <- anchors.(i + 1)
    done;
    let deq_items =
      List.init n (fun i -> ((anchors.(i), 0, i), It_deq deqs.(i)))
    in
    List.map snd
      (List.sort
         (fun (k1, _) (k2, _) -> compare k1 k2)
         (fibers @ enqs @ deq_items))
  in
  let declared_scalars =
    List.map (fun (d : Kernel.scalar_decl) -> d) kernel.Kernel.scalars
  in
  let scalar_decl v =
    match Kernel.find_scalar kernel v with
    | Some d -> d
    | None -> codegen_error "scalar %s is not declared" v
  in
  let live_out_transfers =
    List.filter_map
      (fun v ->
        match Deps.SM.find_opt v deps.Deps.owners with
        | Some d when cluster_of.(d) <> 0 -> Some (v, cluster_of.(d))
        | Some _ | None -> None)
      kernel.Kernel.live_out
  in
  let lo = kernel.Kernel.lo and hi = kernel.Kernel.hi in
  let ty_of_var v = Expr.infer tenv (Expr.Var v) in
  let emit_loop ctx items =
    let open Program.Builder in
    let r_idx = reg_def ctx kernel.Kernel.index in
    emit ctx.b (Isa.Li (r_idx, Types.VInt lo));
    let l_top = fresh_label ctx.b and l_exit = fresh_label ctx.b in
    (* Guard against an empty iteration space. *)
    let r_hi = creg ctx (Types.VInt hi) in
    let r_t = fresh_reg ctx.b in
    emit ctx.b (Isa.Bin (Types.Lt, r_t, r_idx, r_hi));
    emit ctx.b (Isa.Bz (r_t, l_exit));
    place_label ctx.b l_top;
    emit_items ctx ~array_id ~queues ~shared ~fiber_of:item_fiber items;
    emit ctx.b (Isa.Bin (Types.Add, r_idx, r_idx, creg ctx (Types.VInt 1)));
    emit ctx.b (Isa.Bin (Types.Lt, r_t, r_idx, r_hi));
    emit ctx.b (Isa.Bnz (r_t, l_top));
    place_label ctx.b l_exit
  in
  let core_programs = Array.make (max cores 1) None in
  let live_out_regs = ref [] in
  (* Primary core. *)
  let () =
    let ctx = new_ctx 0 in
    let items = items_of_core 0 in
    let consts =
      Types.VInt 0 :: Types.VInt 1 :: Types.VInt hi
      :: consts_of_items ~shared items
    in
    emit_const_pool ctx consts;
    (* Materialize every declared scalar: they are runtime parameters of
       the region held by the primary thread. *)
    List.iter
      (fun (d : Kernel.scalar_decl) ->
        let r = reg_def ctx d.Kernel.s_name in
        Program.Builder.emit ctx.b (Isa.Li (r, d.Kernel.s_init)))
      declared_scalars;
    (* Spawn protocol: wake each secondary (function pointer stands in as a
       nonzero token) and send its entry values. *)
    for c = 1 to cores - 1 do
      let q_int = Queues.id queues ~src:0 ~dst:c ~cls:Isa.Qint in
      Program.Builder.emit ctx.b (Isa.Enq (q_int, creg ctx (Types.VInt 1)));
      List.iter
        (fun v ->
          let q =
            Queues.id queues ~src:0 ~dst:c ~cls:(qclass_of_ty (ty_of_var v))
          in
          Program.Builder.emit ctx.b (Isa.Enq (q, reg_use ctx v)))
        (entry_vars ~kernel ~deps ~cluster_of ~core:c (items_of_core c))
    done;
    emit_loop ctx items;
    (* Collect live-outs owned by secondaries, then completion tokens. *)
    for c = 1 to cores - 1 do
      List.iter
        (fun (v, owner) ->
          if owner = c then begin
            let q =
              Queues.id queues ~src:c ~dst:0 ~cls:(qclass_of_ty (ty_of_var v))
            in
            Program.Builder.emit ctx.b (Isa.Deq (reg_def ctx v, q))
          end)
        live_out_transfers;
      let q_int = Queues.id queues ~src:c ~dst:0 ~cls:Isa.Qint in
      let r = Program.Builder.fresh_reg ctx.b in
      Program.Builder.emit ctx.b (Isa.Deq (r, q_int))
    done;
    (* Halt tokens terminate the secondary drivers. *)
    for c = 1 to cores - 1 do
      let q_int = Queues.id queues ~src:0 ~dst:c ~cls:Isa.Qint in
      Program.Builder.emit ctx.b (Isa.Enq (q_int, creg ctx (Types.VInt 0)))
    done;
    Program.Builder.emit ctx.b Isa.Halt;
    live_out_regs :=
      List.map
        (fun v ->
          ignore (scalar_decl v);
          (v, reg_use ctx v))
        kernel.Kernel.live_out;
    core_programs.(0) <- Some (Program.Builder.finish ctx.b)
  in
  (* Secondary cores: the Section III-G driver around the outlined body. *)
  for c = 1 to cores - 1 do
    let ctx = new_ctx c in
    let items = items_of_core c in
    let consts =
      Types.VInt 1 :: Types.VInt hi :: consts_of_items ~shared items
    in
    emit_const_pool ctx consts;
    let l_driver = Program.Builder.fresh_label ctx.b
    and l_halt = Program.Builder.fresh_label ctx.b in
    Program.Builder.place_label ctx.b l_driver;
    let q_from_primary = Queues.id queues ~src:0 ~dst:c ~cls:Isa.Qint in
    let r_fp = Program.Builder.fresh_reg ctx.b in
    Program.Builder.emit ctx.b (Isa.Deq (r_fp, q_from_primary));
    Program.Builder.emit ctx.b (Isa.Bz (r_fp, l_halt));
    List.iter
      (fun v ->
        let q =
          Queues.id queues ~src:0 ~dst:c ~cls:(qclass_of_ty (ty_of_var v))
        in
        Program.Builder.emit ctx.b (Isa.Deq (reg_def ctx v, q)))
      (entry_vars ~kernel ~deps ~cluster_of ~core:c items);
    emit_loop ctx items;
    List.iter
      (fun (v, owner) ->
        if owner = c then begin
          let q =
            Queues.id queues ~src:c ~dst:0 ~cls:(qclass_of_ty (ty_of_var v))
          in
          Program.Builder.emit ctx.b (Isa.Enq (q, reg_use ctx v))
        end)
      live_out_transfers;
    let q_done = Queues.id queues ~src:c ~dst:0 ~cls:Isa.Qint in
    Program.Builder.emit ctx.b (Isa.Enq (q_done, creg ctx (Types.VInt 1)));
    Program.Builder.emit ctx.b (Isa.Jmp l_driver);
    Program.Builder.place_label ctx.b l_halt;
    Program.Builder.emit ctx.b Isa.Halt;
    core_programs.(c) <- Some (Program.Builder.finish ctx.b)
  done;
  let program =
    {
      Program.cores =
        Array.map
          (function Some p -> p | None -> assert false)
          core_programs;
      queues = Queues.to_array queues;
      arrays = layout;
    }
  in
  {
    program;
    cores_used = cores;
    live_out_regs = !live_out_regs;
    com_ops = comm.Comm.com_ops;
    queue_pairs_static = List.length comm.Comm.pairs_used;
    warnings = comm.Comm.warnings;
  }
