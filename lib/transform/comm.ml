(** Communication insertion (Section III-D).

    For every data or control dependence edge whose endpoints were
    partitioned onto different cores, a value transfer is created: one
    enqueue after the producing fiber, one dequeue before the first
    consuming fiber on each consuming core.

    Anchors are positions in the single global fiber schedule, which keeps
    the enqueue and dequeue sequences of every queue mutually consistent.
    The code generator finalizes dequeue placement per consuming core: it
    orders all dequeues by enqueue anchor and hoists each so that none is
    delayed past another (suffix-min of consumer anchors), which preserves
    per-queue FIFO order and guarantees a transferred predicate value is
    dequeued before any dequeue or statement guarded by it. *)

open Finepar_ir
open Finepar_analysis

(** How cross-core transfers are realized by the code generator.
    [Queues] is the paper's dedicated hardware queues; [Shared_cache]
    models Desai's cache-coupled threads: each transfer becomes a
    valid-flag handshake over synthetic arrays that live in ordinary
    memory, so producer and consumer communicate through the existing
    private-L1 / shared-L2 hierarchy (spin until the flag clears, store
    the value, set the flag; spin until the flag sets, load the value,
    clear the flag). *)
type mode = Queues | Shared_cache

let mode_name = function Queues -> "queues" | Shared_cache -> "shared_cache"

let mode_of_name = function
  | "queues" -> Some Queues
  | "shared_cache" -> Some Shared_cache
  | _ -> None

(* Reserved names of the synthetic handshake arrays appended to the
   memory layout in [Shared_cache] mode; the verifier recognizes
   handshakes by these names. *)
let flag_array_name = "__comm_flag"
let i64_array_name = "__comm_i64"
let f64_array_name = "__comm_f64"

let is_comm_array_name n =
  String.length n >= 7 && String.equal (String.sub n 0 7) "__comm_"

type transfer = {
  var : string;
  ty : Types.ty;
  src_core : int;
  dst_core : int;
  preds : Region.pred list;  (** the producing statement's predicate context *)
  enq_anchor : int;  (** global-order position of the producing fiber *)
  deq_anchor : int;  (** normalized position before the first consumer *)
  seq : int;  (** tie-break: index in the queue's enqueue order *)
}

type t = {
  transfers : transfer list;
  com_ops : int;  (** enqueues + dequeues inserted — Table III "Com Ops" *)
  pairs_used : (int * int) list;  (** distinct (src, dst) core pairs *)
  warnings : string list;
}

(** Handshake slots of one transfer in [Shared_cache] mode. *)
type slot = {
  sl_flag : int;  (** index into the flag array; unique per transfer *)
  sl_data : int;
      (** index into the data array of the transfer's value class;
          unique per transfer within its class *)
}

(** Canonical slot assignment: flag slots number the transfers in the
    plan's canonical order ([transfers] is sorted by (enq_anchor, seq,
    var)), data slots count per value class in the same order.  The
    code generator and the static verifier both derive slots from this
    single function, which is what makes flag-location agreement
    checkable. *)
let shared_slots (t : t) : (transfer * slot) list =
  let flag = ref 0 and n_i64 = ref 0 and n_f64 = ref 0 in
  List.map
    (fun tr ->
      let data =
        match tr.ty with
        | Types.I64 ->
          let d = !n_i64 in
          incr n_i64;
          d
        | Types.F64 ->
          let d = !n_f64 in
          incr n_f64;
          d
      in
      let s = { sl_flag = !flag; sl_data = data } in
      incr flag;
      (tr, s))
    t.transfers

(** (flag slots, i64 data slots, f64 data slots) needed by the plan. *)
let shared_slot_counts (t : t) =
  List.fold_left
    (fun (f, i, fl) (tr : transfer) ->
      match tr.ty with
      | Types.I64 -> (f + 1, i + 1, fl)
      | Types.F64 -> (f + 1, i, fl + 1))
    (0, 0, 0) t.transfers

let compute ~(region : Region.t) ~(deps : Deps.t) ~(cluster_of : int array)
    ~(order : int list) ~queue_len =
  let pos = Array.make (Array.length cluster_of) 0 in
  List.iteri (fun i f -> pos.(f) <- i) order;
  let stmts = Array.of_list region.Region.stmts in
  let tenv = Cost.region_tenv region in
  (* Group consumers per (producing stmt, var, destination core). *)
  let consumers : (int * string * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Deps.edge) ->
      match e.Deps.kind with
      | Deps.Data v | Deps.Control v ->
        let sc = cluster_of.(e.Deps.src) and dc = cluster_of.(e.Deps.dst) in
        if sc <> dc then begin
          let key = (e.Deps.src, v, dc) in
          let anchor = pos.(e.Deps.dst) in
          match Hashtbl.find_opt consumers key with
          | Some a when a <= anchor -> ()
          | _ -> Hashtbl.replace consumers key anchor
        end
      | Deps.Anti _ | Deps.Mem _ -> ())
    deps.Deps.edges;
  let raw =
    Hashtbl.fold
      (fun (src_stmt, var, dst_core) deq_anchor acc ->
        let s = stmts.(src_stmt) in
        {
          var;
          ty = Expr.infer tenv (Expr.Var var);
          src_core = cluster_of.(src_stmt);
          dst_core;
          preds = s.Region.preds;
          enq_anchor = pos.(src_stmt);
          deq_anchor;
          seq = 0;
        }
        :: acc)
      consumers []
  in
  (* Per queue (src, dst, value class): order by enqueue anchor, then make
     dequeue anchors non-increasing from the back (suffix min), so the
     consumer dequeues in enqueue order. *)
  let by_queue = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      let key = (tr.src_core, tr.dst_core, tr.ty) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_queue key) in
      Hashtbl.replace by_queue key (tr :: cur))
    raw;
  let transfers = ref [] and warnings = ref [] in
  Hashtbl.iter
    (fun (src, dst, _ty) trs ->
      let sorted =
        List.sort
          (fun a b ->
            match compare a.enq_anchor b.enq_anchor with
            | 0 -> compare a.var b.var
            | c -> c)
          trs
      in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      if n > queue_len / 2 then
        warnings :=
          Fmt.str
            "queue %d->%d carries %d values per iteration (queue length %d): \
             risk of capacity stalls"
            src dst n queue_len
          :: !warnings;
      (* The final dequeue placement (per consuming core, FIFO-consistent
         suffix-min over enqueue order) is done by the code generator; here
         we only fix the per-queue sequence numbers. *)
      Array.iteri (fun i tr -> transfers := { tr with seq = i } :: !transfers) arr)
    by_queue;
  let transfers =
    List.sort
      (fun a b -> compare (a.enq_anchor, a.seq, a.var) (b.enq_anchor, b.seq, b.var))
      !transfers
  in
  let pairs = Hashtbl.create 8 in
  List.iter (fun tr -> Hashtbl.replace pairs (tr.src_core, tr.dst_core) ()) transfers;
  {
    transfers;
    com_ops = 2 * List.length transfers;
    pairs_used = Hashtbl.fold (fun p () acc -> p :: acc) pairs [];
    warnings = !warnings;
  }
