(** Communication insertion (Section III-D).

    For every data or control dependence edge whose endpoints were
    partitioned onto different cores, a value transfer is created: one
    enqueue after the producing fiber, one dequeue before the first
    consuming fiber on each consuming core.

    Anchors are positions in the single global fiber schedule, which keeps
    the enqueue and dequeue sequences of every queue mutually consistent.
    The code generator finalizes dequeue placement per consuming core: it
    orders all dequeues by enqueue anchor and hoists each so that none is
    delayed past another (suffix-min of consumer anchors), which preserves
    per-queue FIFO order and guarantees a transferred predicate value is
    dequeued before any dequeue or statement guarded by it. *)

type mode = Queues | Shared_cache
(** How transfers are realized: dedicated hardware queues (the paper's
    model) or a valid-flag handshake through the shared L2 / private L1
    hierarchy (Desai's cache-coupled threads). *)

val mode_name : mode -> string
val mode_of_name : string -> mode option

val flag_array_name : string
(** Reserved synthetic arrays appended to the layout in
    [Shared_cache] mode. *)

val i64_array_name : string
val f64_array_name : string

val is_comm_array_name : string -> bool
(** True for the reserved ["__comm_"]-prefixed array names. *)

type transfer = {
  var : string;
  ty : Finepar_ir.Types.ty;
  src_core : int;
  dst_core : int;
  preds : Finepar_ir.Region.pred list;
  enq_anchor : int;
  deq_anchor : int;
  seq : int;
}
type t = {
  transfers : transfer list;
  com_ops : int;
  pairs_used : (int * int) list;
  warnings : string list;
}

type slot = { sl_flag : int; sl_data : int }
(** Handshake slots of one transfer in [Shared_cache] mode: [sl_flag]
    indexes the flag array (unique per transfer), [sl_data] the data
    array of the transfer's value class. *)

val shared_slots : t -> (transfer * slot) list
(** Canonical slot assignment, derived deterministically from the
    plan's canonical transfer order; the code generator and the static
    verifier both use this function. *)

val shared_slot_counts : t -> int * int * int
(** (flag slots, i64 data slots, f64 data slots) the plan needs. *)

val compute :
  region:Finepar_ir.Region.t ->
  deps:Finepar_analysis.Deps.t ->
  cluster_of:int array -> order:int list -> queue_len:int -> t
