(* Machine simulator tests: ISA semantics, queue blocking (the Fig. 11
   contract), cache latencies, the program builder, deadlock detection,
   and statistics. *)

open Finepar_ir
open Finepar_machine

(* Program/config builders shared with the verifier, telemetry and
   engine suites live in [Helpers]. *)
let b = Helpers.b
let one_core = Helpers.one_core
let two_cores = Helpers.two_cores
let run = Helpers.run
let q01 = Helpers.q01
let farr_layout = Helpers.farr_layout

(* ------------------------------------------------------------------ *)
(* ISA semantics.                                                      *)

let test_alu_semantics () =
  let program =
    one_core (fun bb ->
        let open Program.Builder in
        let r0 = fresh_reg bb and r1 = fresh_reg bb and r2 = fresh_reg bb in
        emit bb (Isa.Li (r0, Types.VInt 6));
        emit bb (Isa.Li (r1, Types.VInt 7));
        emit bb (Isa.Bin (Types.Mul, r2, r0, r1));
        emit bb (Isa.Un (Types.Neg, r2, r2));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  Alcotest.(check bool) "6*7 negated" true
    (Types.value_equal (Sim.reg_value sim 0 2) (Types.VInt (-42)))

let test_select () =
  let program =
    one_core (fun bb ->
        let open Program.Builder in
        let c = fresh_reg bb and t = fresh_reg bb and f = fresh_reg bb in
        let d = fresh_reg bb in
        emit bb (Isa.Li (c, Types.VInt 0));
        emit bb (Isa.Li (t, Types.VFloat 1.0));
        emit bb (Isa.Li (f, Types.VFloat 2.0));
        emit bb (Isa.Sel (d, c, t, f));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  Alcotest.(check bool) "select false arm" true
    (Types.value_equal (Sim.reg_value sim 0 3) (Types.VFloat 2.0))

let test_branches_and_labels () =
  (* Sum 0..9 with a loop. *)
  let program =
    one_core (fun bb ->
        let open Program.Builder in
        let idx = fresh_reg bb and acc = fresh_reg bb in
        let one = fresh_reg bb and ten = fresh_reg bb and t = fresh_reg bb in
        emit bb (Isa.Li (idx, Types.VInt 0));
        emit bb (Isa.Li (acc, Types.VInt 0));
        emit bb (Isa.Li (one, Types.VInt 1));
        emit bb (Isa.Li (ten, Types.VInt 10));
        let top = fresh_label bb in
        place_label bb top;
        emit bb (Isa.Bin (Types.Add, acc, acc, idx));
        emit bb (Isa.Bin (Types.Add, idx, idx, one));
        emit bb (Isa.Bin (Types.Lt, t, idx, ten));
        emit bb (Isa.Bnz (t, top));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  Alcotest.(check bool) "sum 0..9 = 45" true
    (Types.value_equal (Sim.reg_value sim 0 1) (Types.VInt 45))

let test_memory_roundtrip () =
  let arrays = [| farr_layout "a" 4 64 |] in
  let program =
    one_core ~arrays (fun bb ->
        let open Program.Builder in
        let v = fresh_reg bb and idx = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (v, Types.VFloat 2.5));
        emit bb (Isa.Li (idx, Types.VInt 2));
        emit bb (Isa.Store (0, idx, v));
        emit bb (Isa.Load (d, 0, idx));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  Alcotest.(check bool) "store then load" true
    (Types.value_equal (Sim.reg_value sim 0 2) (Types.VFloat 2.5));
  Alcotest.(check bool) "memory updated" true
    (Types.value_equal (Sim.array_contents sim "a").(2) (Types.VFloat 2.5))

let test_bounds_checked () =
  let arrays = [| farr_layout "a" 4 64 |] in
  let program =
    one_core ~arrays (fun bb ->
        let open Program.Builder in
        let idx = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (idx, Types.VInt 9));
        emit bb (Isa.Load (d, 0, idx));
        emit bb Isa.Halt)
  in
  Alcotest.(check bool) "out-of-bounds load raises" true
    (try
       ignore (run program);
       false
     with Sim.Stuck _ -> true)

(* ------------------------------------------------------------------ *)
(* Queue semantics (Fig. 11).                                          *)

(* Core 0: [W cycles of work]; Enq.  Core 1: Deq immediately. *)
let producer_consumer ~work0 ~work1 =
  two_cores ~queues:q01
    (fun bb ->
      let open Program.Builder in
      let r = fresh_reg bb and acc = fresh_reg bb in
      emit bb (Isa.Li (r, Types.VInt 5));
      emit bb (Isa.Li (acc, Types.VInt 0));
      for _ = 1 to work0 do
        emit bb (Isa.Bin (Types.Add, acc, acc, r))
      done;
      emit bb (Isa.Enq (0, r));
      emit bb Isa.Halt)
    (fun bb ->
      let open Program.Builder in
      let acc = fresh_reg bb and d = fresh_reg bb in
      emit bb (Isa.Li (acc, Types.VInt 0));
      for _ = 1 to work1 do
        emit bb (Isa.Bin (Types.Add, acc, acc, acc))
      done;
      emit bb (Isa.Deq (d, 0));
      emit bb Isa.Halt)

let deq_completion_cycle sim =
  List.filter_map
    (function
      | Sim.Ev_issue { core = 1; cycle; instr = Isa.Deq _; _ } -> Some cycle
      | _ -> None)
    (Sim.events sim)
  |> List.hd

let enq_issue_cycle sim =
  List.filter_map
    (function
      | Sim.Ev_issue { core = 0; cycle; instr = Isa.Enq _; _ } -> Some cycle
      | _ -> None)
    (Sim.events sim)
  |> List.hd

let test_early_dequeue_stalls () =
  let config = { Config.default with Config.transfer_latency = 7 } in
  let program = producer_consumer ~work0:40 ~work1:0 in
  let sim, _ = run ~config ~tracing:true program in
  let enq = enq_issue_cycle sim and deq = deq_completion_cycle sim in
  Alcotest.(check int) "dequeue waits exactly transfer latency" (enq + 7) deq;
  Alcotest.(check bool) "consumer recorded stalls" true
    (sim.Sim.stats.(1).Sim.stall_queue_empty > 0)

let test_late_dequeue_no_stall () =
  let config = { Config.default with Config.transfer_latency = 7 } in
  let program = producer_consumer ~work0:5 ~work1:200 in
  let sim, _ = run ~config ~tracing:true program in
  let enq = enq_issue_cycle sim and deq = deq_completion_cycle sim in
  Alcotest.(check bool) "dequeue proceeds immediately" true (deq > enq + 7)

let test_dequeued_value () =
  let program = producer_consumer ~work0:3 ~work1:0 in
  let sim, _ = run program in
  Alcotest.(check bool) "value crossed the queue" true
    (Types.value_equal (Sim.reg_value sim 1 1) (Types.VInt 5))

let test_queue_full_blocks () =
  (* Producer enqueues queue_len + 3 values; consumer dequeues them all
     only after a long delay; with tracing we can see full-queue stalls. *)
  let config = { Config.default with Config.queue_len = 4 } in
  let n = 7 in
  let program =
    two_cores ~queues:q01
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        for _ = 1 to n do
          emit bb (Isa.Enq (0, r))
        done;
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let acc = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (acc, Types.VInt 0));
        for _ = 1 to 100 do
          emit bb (Isa.Bin (Types.Add, acc, acc, acc))
        done;
        for _ = 1 to n do
          emit bb (Isa.Deq (d, 0))
        done;
        emit bb Isa.Halt)
  in
  let sim, _ = run ~config program in
  Alcotest.(check bool) "producer saw a full queue" true
    (sim.Sim.stats.(0).Sim.stall_queue_full > 0);
  Alcotest.(check bool) "all transfers completed" true
    (List.for_all (fun (_, transfers, _) -> transfers = n) (Sim.queue_stats sim));
  Alcotest.(check bool) "occupancy bounded by queue length" true
    (List.for_all (fun (_, _, occ) -> occ <= 4) (Sim.queue_stats sim))

let test_fifo_order () =
  let program =
    two_cores ~queues:q01
      (fun bb ->
        let open Program.Builder in
        let r1 = fresh_reg bb and r2 = fresh_reg bb in
        emit bb (Isa.Li (r1, Types.VInt 11));
        emit bb (Isa.Li (r2, Types.VInt 22));
        emit bb (Isa.Enq (0, r1));
        emit bb (Isa.Enq (0, r2));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d1 = fresh_reg bb and d2 = fresh_reg bb in
        emit bb (Isa.Deq (d1, 0));
        emit bb (Isa.Deq (d2, 0));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  Alcotest.(check bool) "first in, first out" true
    (Types.value_equal (Sim.reg_value sim 1 0) (Types.VInt 11)
    && Types.value_equal (Sim.reg_value sim 1 1) (Types.VInt 22))

let test_deadlock_detected () =
  (* A consumer dequeuing from an empty queue that is never fed. *)
  let program =
    two_cores ~queues:q01
      (fun bb -> Program.Builder.emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  match run program with
  | _ -> Alcotest.fail "expected Sim.Stuck"
  | exception Sim.Stuck st ->
    Alcotest.(check bool) "reason is deadlock" true
      (match st.Sim.st_reason with Sim.Deadlock _ -> true | _ -> false);
    Alcotest.(check int) "one blocked core" 1 (List.length st.Sim.st_blocked);
    let bc = List.hd st.Sim.st_blocked in
    Alcotest.(check int) "core 1 is blocked" 1 bc.Sim.bc_core;
    Alcotest.(check bool) "blocked on an empty queue" true
      (bc.Sim.bc_wait = Sim.Wait_queue_empty 0);
    Alcotest.(check bool) "queue 0 reported empty" true
      (List.exists
         (fun (qo : Sim.queue_occupancy) ->
           qo.Sim.qo_id = 0 && qo.Sim.qo_occupancy = 0)
         st.Sim.st_queues);
    Alcotest.(check bool) "message is descriptive" true
      (let msg = Sim.stuck_message st in
       String.length msg > 0)

let test_max_cycles_inclusive () =
  (* An infinite loop under a tiny budget: the run executes exactly
     max_cycles cycles (inclusive bound) and then raises a structured
     Max_cycles. *)
  let config = { Config.default with Config.max_cycles = 50 } in
  let program =
    one_core (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        let top = fresh_label bb in
        place_label bb top;
        emit bb (Isa.Bin (Types.Add, r, r, r));
        emit bb (Isa.Jmp top))
  in
  match run ~config program with
  | _ -> Alcotest.fail "expected Sim.Stuck"
  | exception Sim.Stuck st ->
    Alcotest.(check bool) "reason is max-cycles with the limit" true
      (match st.Sim.st_reason with
      | Sim.Max_cycles { limit } -> limit = 50
      | _ -> false);
    Alcotest.(check int) "stopped exactly at the budget" 50 st.Sim.st_cycle

(* ------------------------------------------------------------------ *)
(* Caches.                                                             *)

let test_cache_hit_miss () =
  let c = Cache.create ~bytes:256 ~line:64 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit after fill" true (Cache.access c 8);
  Alcotest.(check bool) "different line misses" false (Cache.access c 64);
  (* 256-byte direct-mapped cache with 64B lines: addr 0 and 256 conflict. *)
  Alcotest.(check bool) "conflict evicts" false (Cache.access c 256);
  Alcotest.(check bool) "original line was evicted" false (Cache.access c 0);
  Cache.invalidate c 0;
  Alcotest.(check bool) "invalidated line misses" false (Cache.access c 0)

let test_load_latency_tiers () =
  (* Repeated loads of one element: first access goes to memory, later
     accesses hit L1, so total cycles drop sharply per iteration. *)
  let arrays = [| farr_layout "a" 8 64 |] in
  let loads n =
    let program =
      one_core ~arrays (fun bb ->
          let open Program.Builder in
          let idx = fresh_reg bb and d = fresh_reg bb in
          let sink = fresh_reg bb in
          emit bb (Isa.Li (idx, Types.VInt 0));
          for _ = 1 to n do
            emit bb (Isa.Load (d, 0, idx));
            (* Serialize on the loaded value so latencies accumulate. *)
            emit bb (Isa.Bin (Types.Add, sink, d, d))
          done;
          emit bb Isa.Halt)
    in
    let _, cycles = run program in
    cycles
  in
  let one = loads 1 and two = loads 2 in
  Alcotest.(check bool) "second load is an L1 hit" true
    (two - one < Config.default.Config.mem_latency);
  Alcotest.(check bool) "first load pays the memory latency" true
    (one >= Config.default.Config.mem_latency)

let test_per_array_counters () =
  let arrays = [| farr_layout "a" 8 64 |] in
  let program =
    one_core ~arrays (fun bb ->
        let open Program.Builder in
        let idx = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (idx, Types.VInt 3));
        emit bb (Isa.Load (d, 0, idx));
        emit bb (Isa.Load (d, 0, idx));
        emit bb Isa.Halt)
  in
  let sim, _ = run program in
  match Sim.load_counters sim with
  | [ ("a", loads, misses) ] ->
    Alcotest.(check int) "two loads" 2 loads;
    Alcotest.(check int) "one miss" 1 misses
  | _ -> Alcotest.fail "unexpected counters"

(* ------------------------------------------------------------------ *)
(* Builder.                                                            *)

let test_unplaced_label_rejected () =
  let bb = b () in
  let l = Program.Builder.fresh_label bb in
  Program.Builder.emit bb (Isa.Jmp l);
  Alcotest.(check bool) "finish rejects unplaced labels" true
    (try
       ignore (Program.Builder.finish bb);
       false
     with Invalid_argument _ -> true)

let test_layout_alignment () =
  let decls =
    [
      { Kernel.a_name = "x"; a_ty = Types.F64; a_len = 5 };
      { Kernel.a_name = "y"; a_ty = Types.F64; a_len = 3 };
    ]
  in
  let layout = Program.layout_arrays ~line:64 decls in
  Alcotest.(check int) "two arrays" 2 (Array.length layout);
  Array.iter
    (fun (l : Program.array_layout) ->
      Alcotest.(check int)
        (l.Program.arr_name ^ " aligned")
        0
        (l.Program.arr_base mod 64))
    layout;
  Alcotest.(check bool) "no overlap" true
    (layout.(1).Program.arr_base >= layout.(0).Program.arr_base + (5 * 8))

let () =
  Alcotest.run "machine"
    [
      ( "isa",
        [
          Alcotest.test_case "alu" `Quick test_alu_semantics;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "branches" `Quick test_branches_and_labels;
          Alcotest.test_case "memory" `Quick test_memory_roundtrip;
          Alcotest.test_case "bounds" `Quick test_bounds_checked;
        ] );
      ( "queues",
        [
          Alcotest.test_case "early dequeue stalls (Fig 11)" `Quick
            test_early_dequeue_stalls;
          Alcotest.test_case "late dequeue free (Fig 11)" `Quick
            test_late_dequeue_no_stall;
          Alcotest.test_case "value transfer" `Quick test_dequeued_value;
          Alcotest.test_case "full queue blocks" `Quick test_queue_full_blocks;
          Alcotest.test_case "fifo order" `Quick test_fifo_order;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "max-cycles inclusive bound" `Quick
            test_max_cycles_inclusive;
        ] );
      ( "caches",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_cache_hit_miss;
          Alcotest.test_case "latency tiers" `Quick test_load_latency_tiers;
          Alcotest.test_case "per-array counters" `Quick
            test_per_array_counters;
        ] );
      ( "builder",
        [
          Alcotest.test_case "unplaced labels" `Quick
            test_unplaced_label_rejected;
          Alcotest.test_case "array layout" `Quick test_layout_alignment;
        ] );
    ]
