(* Static queue-protocol verifier tests: hand-built violating programs
   (one per check), agreement between the static deadlock check and the
   simulator's structured Stuck diagnosis, acceptance of every compiled
   registry kernel and corpus reproducer, and the static-catch guarantee
   for the comm-corruption mutation rules. *)

open Finepar_ir
open Finepar_machine
module Verify = Finepar_verify.Verify
module Compiler = Finepar.Compiler
module Registry = Finepar_kernels.Registry

(* Program builders shared with the machine, telemetry and engine
   suites live in [Helpers]. *)
let two_cores = Helpers.two_cores

let has check (r : Verify.result) =
  List.exists (fun v -> v.Verify.v_check = check) r.Verify.violations

let check_names (r : Verify.result) =
  List.map (fun v -> Verify.check_name v.Verify.v_check) r.Verify.violations

let contains = Helpers.contains

(* ------------------------------------------------------------------ *)
(* Hand-built programs, one per property.                              *)

(* Crossed dependency: each core dequeues what the other has not yet
   sent.  Statically a two-op wait-for cycle; dynamically a deadlock. *)
let crossed_program =
  let queues =
    [|
      { Isa.src = 0; dst = 1; cls = Isa.Qint };
      { Isa.src = 1; dst = 0; cls = Isa.Qint };
    |]
  in
  two_cores ~queues
    (fun bb ->
      let open Program.Builder in
      let d = fresh_reg bb in
      emit bb (Isa.Deq (d, 1));
      emit bb (Isa.Enq (0, d));
      emit bb Isa.Halt)
    (fun bb ->
      let open Program.Builder in
      let d = fresh_reg bb in
      emit bb (Isa.Deq (d, 0));
      emit bb (Isa.Enq (1, d));
      emit bb Isa.Halt)

let test_crossed_static () =
  let r = Verify.run ~queue_len:20 crossed_program in
  Alcotest.(check bool)
    (Fmt.str "deadlock reported (got %a)"
       Fmt.(Dump.list string)
       (check_names r))
    true (has Verify.Deadlock r);
  let v =
    List.find (fun v -> v.Verify.v_check = Verify.Deadlock) r.Verify.violations
  in
  Alcotest.(check bool) "message names the wait-for cycle" true
    (contains ~sub:"wait-for cycle" v.Verify.v_message)

let test_crossed_dynamic () =
  let sim = Sim.create ~config:Config.default ~initial:[] crossed_program in
  match Sim.run sim with
  | _ -> Alcotest.fail "expected Sim.Stuck"
  | exception Sim.Stuck st ->
    Alcotest.(check bool) "reason is deadlock" true
      (match st.Sim.st_reason with Sim.Deadlock _ -> true | _ -> false);
    Alcotest.(check int) "both cores blocked" 2 (List.length st.Sim.st_blocked);
    List.iter
      (fun (bc : Sim.blocked_core) ->
        Alcotest.(check bool)
          (Fmt.str "core %d waits on an empty queue" bc.Sim.bc_core)
          true
          (match bc.Sim.bc_wait with
          | Sim.Wait_queue_empty _ -> true
          | _ -> false))
      st.Sim.st_blocked;
    List.iter
      (fun (qo : Sim.queue_occupancy) ->
        Alcotest.(check int)
          (Fmt.str "queue %d is empty" qo.Sim.qo_id)
          0 qo.Sim.qo_occupancy)
      st.Sim.st_queues;
    Alcotest.(check bool) "wait_for_cycle finds both cores" true
      (match Sim.wait_for_cycle st with
      | Some cycle ->
        List.sort compare (List.map (fun bc -> bc.Sim.bc_core) cycle)
        = [ 0; 1 ]
      | None -> false);
    Alcotest.(check bool) "message names the wait-for cycle" true
      (contains ~sub:"wait-for cycle" (Sim.stuck_message st))

(* Capacity-induced cycle: the producer sends queue_len + 1 values
   before the go-token the consumer insists on dequeuing first, so the
   last enqueue can never complete.  Every per-queue sequence is
   balanced; only the capacity edge closes the cycle. *)
let test_capacity_cycle_static () =
  let queue_len = 2 in
  let n = queue_len + 1 in
  let queues =
    [|
      { Isa.src = 0; dst = 1; cls = Isa.Qint };
      { Isa.src = 0; dst = 1; cls = Isa.Qint };
    |]
  in
  let program =
    two_cores ~queues
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 7));
        for _ = 1 to n do
          emit bb (Isa.Enq (0, r))
        done;
        emit bb (Isa.Enq (1, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let go = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Deq (go, 1));
        for _ = 1 to n do
          emit bb (Isa.Deq (d, 0))
        done;
        emit bb Isa.Halt)
  in
  let r = Verify.run ~queue_len program in
  Alcotest.(check bool) "balance holds" false (has Verify.Balance r);
  Alcotest.(check bool)
    (Fmt.str "capacity deadlock reported (got %a)"
       Fmt.(Dump.list string)
       (check_names r))
    true (has Verify.Deadlock r);
  (* The same program is fine with a queue deep enough for all n. *)
  let r' = Verify.run ~queue_len:(n + 1) program in
  Alcotest.(check bool) "deep queue clears it" true (Verify.ok r')

let test_unbalanced_static () =
  let queues = [| { Isa.src = 0; dst = 1; cls = Isa.Qint } |] in
  let program =
    two_cores ~queues
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        emit bb (Isa.Enq (0, r));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  let r = Verify.run ~queue_len:20 program in
  Alcotest.(check bool) "balance violation" true (has Verify.Balance r)

let test_wrong_endpoint_static () =
  let queues = [| { Isa.src = 0; dst = 1; cls = Isa.Qint } |] in
  let program =
    two_cores ~queues
      (fun bb -> Program.Builder.emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
  in
  let r = Verify.run ~queue_len:20 program in
  Alcotest.(check bool) "endpoint violation" true (has Verify.Endpoints r)

let test_wrong_class_static () =
  let queues = [| { Isa.src = 0; dst = 1; cls = Isa.Qfloat } |] in
  let program =
    two_cores ~queues
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  let r = Verify.run ~queue_len:20 program in
  Alcotest.(check bool) "typing violation" true (has Verify.Typing r)

let test_straightline_accepted () =
  let queues = [| { Isa.src = 0; dst = 1; cls = Isa.Qint } |] in
  let program =
    two_cores ~queues
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  let r = Verify.run ~queue_len:20 program in
  Alcotest.(check bool)
    (Fmt.str "accepted (got %a)" Fmt.(Dump.list string) (check_names r))
    true (Verify.ok r);
  Alcotest.(check int) "one queue checked" 1 r.Verify.queues_checked;
  Alcotest.(check int) "two comm ops" 2 r.Verify.ops_checked

(* ------------------------------------------------------------------ *)
(* Compiled code: the verifier accepts everything the compiler emits.  *)

let test_registry_accepted () =
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun cores ->
          List.iter
            (fun mode ->
              let config =
                {
                  (Compiler.default_config ~cores ()) with
                  Compiler.comm_mode = mode;
                }
              in
              let name = e.Registry.kernel.Kernel.name in
              let mname = Finepar_transform.Comm.mode_name mode in
              match Compiler.compile config e.Registry.kernel with
              | exception Verify.Rejected (k, vs) ->
                Alcotest.failf "%s cores=%d %s rejected: %s: %a" name cores
                  mname k
                  Fmt.(list ~sep:(any "; ") Verify.pp_violation)
                  vs
              | c ->
                let r =
                  Verify.run ~plan:c.Compiler.comm ~mode
                    ~queue_len:config.Compiler.machine.Config.queue_len
                    c.Compiler.code.Finepar_codegen.Lower.program
                in
                Alcotest.(check bool)
                  (Fmt.str "%s cores=%d %s verifies" name cores mname)
                  true (Verify.ok r);
                Alcotest.(check bool)
                  (Fmt.str "%s cores=%d %s records the verify pass" name cores
                     mname)
                  true
                  (List.mem_assoc "verify" c.Compiler.pass_times))
            [ Finepar_transform.Comm.Queues; Finepar_transform.Comm.Shared_cache ])
        [ 1; 2; 4 ])
    Registry.all

let test_corpus_accepted () =
  (* dune runs tests with cwd = _build/default/test; the corpus is a
     declared glob dependency there. *)
  let files = Finepar_fuzz.Corpus.files "fuzz_corpus" in
  Alcotest.(check bool) "corpus present" true (List.length files > 0);
  List.iter
    (fun path ->
      let entry = Finepar_fuzz.Corpus.load_file path in
      let case = entry.Finepar_fuzz.Corpus.case in
      match Compiler.compile case.Finepar_fuzz.Gen.config case.Finepar_fuzz.Gen.kernel with
      | exception Verify.Rejected (k, vs) ->
        Alcotest.failf "%s rejected: %s: %a" path k
          Fmt.(list ~sep:(any "; ") Verify.pp_violation)
          vs
      | c ->
        let r =
          Verify.run ~plan:c.Compiler.comm
            ~mode:case.Finepar_fuzz.Gen.config.Compiler.comm_mode
            ~queue_len:
              case.Finepar_fuzz.Gen.config.Compiler.machine.Config.queue_len
            c.Compiler.code.Finepar_codegen.Lower.program
        in
        Alcotest.(check bool) (Fmt.str "%s verifies" path) true (Verify.ok r))
    files

(* ------------------------------------------------------------------ *)
(* Mutation rules: every applicable comm corruption is caught
   statically, before any simulation.                                  *)

let test_mutations_caught_statically () =
  let module Mutate = Finepar_fuzz.Mutate in
  let rules =
    [ Mutate.Drop_dequeue; Mutate.Swap_endpoints; Mutate.Reorder_enqueue ]
  in
  let applied = Hashtbl.create 4 in
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun cores ->
          let config = Compiler.default_config ~cores () in
          let c = Compiler.compile config e.Registry.kernel in
          List.iter
            (fun rule ->
              match Mutate.corrupt rule c with
              | None -> ()
              | Some c' ->
                Hashtbl.replace applied rule
                  (1 + Option.value ~default:0 (Hashtbl.find_opt applied rule));
                let r =
                  Verify.run ~plan:c'.Compiler.comm
                    ~queue_len:config.Compiler.machine.Config.queue_len
                    c'.Compiler.code.Finepar_codegen.Lower.program
                in
                Alcotest.(check bool)
                  (Fmt.str "%s on %s cores=%d rejected statically"
                     (Mutate.comm_rule_name rule)
                     e.Registry.kernel.Kernel.name cores)
                  false (Verify.ok r))
            rules)
        [ 2; 4 ])
    Registry.all;
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Fmt.str "%s found at least one site" (Mutate.comm_rule_name rule))
        true
        (Option.value ~default:0 (Hashtbl.find_opt applied rule) > 0))
    rules

(* Shared-cache handshake corruptions, applied directly to the lowered
   code: a flag index retargeted one slot over and a flag write
   reordered before its data store must both be rejected statically by
   the Handshake check — no simulation involved. *)
let test_shared_mutations_caught_statically () =
  let module Comm = Finepar_transform.Comm in
  let flag_sites = ref 0 and reorder_sites = ref 0 in
  let exception Done in
  List.iter
    (fun (e : Registry.entry) ->
      let config =
        {
          (Compiler.default_config ~cores:2 ()) with
          Compiler.comm_mode = Comm.Shared_cache;
        }
      in
      let c = Compiler.compile config e.Registry.kernel in
      if c.Compiler.comm.Finepar_transform.Comm.transfers <> [] then begin
        let program = c.Compiler.code.Finepar_codegen.Lower.program in
        let arr_name a = program.Program.arrays.(a).Program.arr_name in
        let is_flag a = String.equal (arr_name a) Comm.flag_array_name in
        let is_data a =
          Comm.is_comm_array_name (arr_name a) && not (is_flag a)
        in
        let reverify what p =
          let r =
            Verify.run ~plan:c.Compiler.comm ~mode:Comm.Shared_cache
              ~queue_len:config.Compiler.machine.Config.queue_len p
          in
          Alcotest.(check bool)
            (Fmt.str "%s on %s rejected statically" what
               e.Registry.kernel.Kernel.name)
            false (Verify.ok r);
          Alcotest.(check bool)
            (Fmt.str "%s on %s flagged by the handshake check" what
               e.Registry.kernel.Kernel.name)
            true (has Verify.Handshake r)
        in
        let with_core_code core code =
          let cores = Array.copy program.Program.cores in
          cores.(core) <- { cores.(core) with Program.code = code };
          { program with Program.cores }
        in
        (* First spin found: retarget the [Li] feeding its flag index
           register so both the spin and the release address the wrong
           slot — internally consistent, but disagreeing with the comm
           plan's slot assignment. *)
        (try
           Array.iteri
             (fun core (cp : Program.core_program) ->
               let code = cp.Program.code in
               Array.iteri
                 (fun pc instr ->
                   match instr with
                   | Isa.Load (_, a, rf) when is_flag a ->
                     for p = pc - 1 downto 0 do
                       match code.(p) with
                       | Isa.Li (r, Finepar_ir.Types.VInt v) when r = rf ->
                         let code' = Array.copy code in
                         code'.(p) <- Isa.Li (r, Finepar_ir.Types.VInt (v + 1));
                         incr flag_sites;
                         reverify "corrupted flag slot"
                           (with_core_code core code');
                         raise Done
                       | _ -> ()
                     done
                   | _ -> ())
                 code)
             program.Program.cores
         with Done -> ());
        (* First producer handshake found: swap the data store and the
           flag release, publishing the token before the data lands. *)
        try
          Array.iteri
            (fun core (cp : Program.core_program) ->
              let code = cp.Program.code in
              Array.iteri
                (fun pc instr ->
                  match instr with
                  | Isa.Store (da, _, _)
                    when is_data da && pc + 1 < Array.length code -> (
                    match code.(pc + 1) with
                    | Isa.Store (fa, _, _) when is_flag fa ->
                      let code' = Array.copy code in
                      code'.(pc) <- code.(pc + 1);
                      code'.(pc + 1) <- code.(pc);
                      incr reorder_sites;
                      reverify "reordered flag write"
                        (with_core_code core code');
                      raise Done
                    | _ -> ())
                  | _ -> ())
                code)
            program.Program.cores
        with Done -> ()
      end)
    Registry.all;
  Alcotest.(check bool) "corrupted flag slots found sites" true (!flag_sites > 0);
  Alcotest.(check bool) "reordered flag writes found sites" true
    (!reorder_sites > 0)

(* ------------------------------------------------------------------ *)
(* Oracle integration: stuck classification and the verifier oracle.   *)

let test_oracle_classifies_max_cycles () =
  (* An honest compile whose cycle budget is then cut to 5: the program
     is untouched (the verifier accepts it), the simulator exhausts the
     budget, and the oracle must say "max-cycles", not "deadlock". *)
  let tiny_budget : Finepar_fuzz.Oracle.compile_fn =
   fun config k ->
    let c = Compiler.compile config k in
    {
      c with
      Compiler.config =
        {
          c.Compiler.config with
          Compiler.machine =
            { c.Compiler.config.Compiler.machine with Config.max_cycles = 5 };
        };
    }
  in
  let case = Finepar_fuzz.Gen.case_of_seed 1 in
  match Finepar_fuzz.Oracle.check ~compile:tiny_budget case with
  | Finepar_fuzz.Oracle.Fail f ->
    Alcotest.(check string) "classified as max-cycles" "max-cycles"
      f.Finepar_fuzz.Oracle.oracle
  | Finepar_fuzz.Oracle.Pass _ ->
    Alcotest.fail "a 5-cycle budget cannot pass"

let test_oracle_catches_corruption () =
  (* Scan seeds until drop-dequeue finds a site (single-core cases have
     none); the verifier oracle must reject that case statically. *)
  let module Mutate = Finepar_fuzz.Mutate in
  let rec scan seed =
    if seed > 100 then
      Alcotest.fail "no corruptible case in seeds 1..100"
    else
      let case = Finepar_fuzz.Gen.case_of_seed seed in
      let c = Compiler.compile case.Finepar_fuzz.Gen.config case.Finepar_fuzz.Gen.kernel in
      match Mutate.corrupt Mutate.Drop_dequeue c with
      | None -> scan (seed + 1)
      | Some _ -> (
        match
          Finepar_fuzz.Oracle.check
            ~compile:(Mutate.comm_miscompile Mutate.Drop_dequeue)
            case
        with
        | Finepar_fuzz.Oracle.Fail f ->
          Alcotest.(check string)
            (Fmt.str "seed %d corruption caught by the verifier oracle" seed)
            "verifier" f.Finepar_fuzz.Oracle.oracle
        | Finepar_fuzz.Oracle.Pass _ ->
          Alcotest.failf "seed %d: corrupted program passed" seed)
  in
  scan 1

let () =
  Alcotest.run "verify"
    [
      ( "static checks",
        [
          Alcotest.test_case "crossed deadlock (static)" `Quick
            test_crossed_static;
          Alcotest.test_case "crossed deadlock (dynamic Stuck)" `Quick
            test_crossed_dynamic;
          Alcotest.test_case "capacity-bounded cycle" `Quick
            test_capacity_cycle_static;
          Alcotest.test_case "unbalanced queue" `Quick test_unbalanced_static;
          Alcotest.test_case "wrong endpoint" `Quick test_wrong_endpoint_static;
          Alcotest.test_case "wrong value class" `Quick test_wrong_class_static;
          Alcotest.test_case "straight-line accepted" `Quick
            test_straightline_accepted;
        ] );
      ( "compiled code",
        [
          Alcotest.test_case "registry kernels accepted" `Quick
            test_registry_accepted;
          Alcotest.test_case "fuzz corpus accepted" `Quick test_corpus_accepted;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "shared-cache corruptions caught statically"
            `Quick test_shared_mutations_caught_statically;
          Alcotest.test_case "comm corruptions caught statically" `Quick
            test_mutations_caught_statically;
          Alcotest.test_case "oracle classifies max-cycles" `Quick
            test_oracle_classifies_max_cycles;
          Alcotest.test_case "oracle catches corruption" `Quick
            test_oracle_catches_corruption;
        ] );
    ]
