(* Telemetry tests: the primitives (ring buffer, histograms, metrics
   registry, JSON, Chrome trace events, pass timers) and the simulator
   invariants they are meant to uphold — exhaustive per-core cycle
   accounting, queue occupancy bounds, histogram conservation, and
   fiber-level attribution summing to the run's total cycles. *)

module T = Finepar_telemetry
open Finepar

(* ------------------------------------------------------------------ *)
(* Ring buffer.                                                        *)

let test_ring_basic () =
  let r = T.Ring.create ~capacity:3 in
  Alcotest.(check bool) "fresh ring empty" true (T.Ring.is_empty r);
  T.Ring.push r 1;
  T.Ring.push r 2;
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (T.Ring.to_list r);
  T.Ring.push r 3;
  T.Ring.push r 4;
  Alcotest.(check (list int)) "overwrites oldest" [ 2; 3; 4 ]
    (T.Ring.to_list r);
  Alcotest.(check int) "one dropped" 1 (T.Ring.dropped r);
  Alcotest.(check int) "length capped" 3 (T.Ring.length r);
  T.Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (T.Ring.to_list r)

let test_ring_zero_capacity () =
  let r = T.Ring.create ~capacity:0 in
  T.Ring.push r "x";
  T.Ring.push r "y";
  Alcotest.(check (list string)) "keeps nothing" [] (T.Ring.to_list r);
  Alcotest.(check int) "counts drops" 2 (T.Ring.dropped r)

let test_ring_fold_order () =
  let r = T.Ring.create ~capacity:4 in
  for i = 1 to 9 do
    T.Ring.push r i
  done;
  Alcotest.(check (list int)) "last four, in order" [ 6; 7; 8; 9 ]
    (List.rev (T.Ring.fold (fun acc x -> x :: acc) [] r))

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)

let test_histogram_buckets () =
  let h = T.Histogram.create ~bounds:[| 1; 2; 4 |] in
  List.iter (T.Histogram.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  Alcotest.(check int) "count" 7 (T.Histogram.count h);
  Alcotest.(check int) "sum" 115 (T.Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "bucket layout"
    [ (1, 2); (2, 1); (4, 2); (max_int, 2) ]
    (T.Histogram.buckets h);
  Alcotest.(check int) "bucket total = count" (T.Histogram.count h)
    (T.Histogram.bucket_total h);
  Alcotest.(check (option int)) "min" (Some 0) (T.Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 100) (T.Histogram.max_value h)

let test_histogram_bounds_generators () =
  Alcotest.(check (array int)) "exponential" [| 1; 2; 4; 8 |]
    (T.Histogram.exponential_bounds 4);
  Alcotest.(check (array int)) "linear" [| 1; 2; 3 |]
    (T.Histogram.linear_bounds 3);
  Alcotest.check_raises "empty bounds rejected"
    (Invalid_argument "Histogram.create: no buckets") (fun () ->
      ignore (T.Histogram.create ~bounds:[||]))

let test_histogram_merge () =
  let a = T.Histogram.create ~bounds:[| 1; 2 |] in
  let b = T.Histogram.create ~bounds:[| 1; 2 |] in
  List.iter (T.Histogram.observe a) [ 1; 5 ];
  List.iter (T.Histogram.observe b) [ 2; 2; 9 ];
  T.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (T.Histogram.count a);
  Alcotest.(check int) "merged sum" 19 (T.Histogram.sum a);
  Alcotest.(check (option int)) "merged max" (Some 9)
    (T.Histogram.max_value a)

let test_histogram_observe_qcheck =
  QCheck.Test.make ~name:"histogram conserves observations" ~count:200
    QCheck.(list (int_bound 64))
    (fun xs ->
      let h = T.Histogram.create ~bounds:(T.Histogram.exponential_bounds 4) in
      List.iter (T.Histogram.observe h) xs;
      T.Histogram.count h = List.length xs
      && T.Histogram.bucket_total h = List.length xs
      && T.Histogram.sum h = List.fold_left ( + ) 0 xs)

(* ------------------------------------------------------------------ *)
(* Stall reasons.                                                      *)

let test_stall_classes () =
  Alcotest.(check int) "three classes" 3 T.Stall.n_classes;
  let all = [ T.Stall.Operand; T.Stall.Queue_full 3; T.Stall.Queue_empty 7 ] in
  Alcotest.(check (list int)) "distinct class indices" [ 0; 1; 2 ]
    (List.map T.Stall.class_index all);
  Alcotest.(check (option int)) "queue of full" (Some 3)
    (T.Stall.queue_of (T.Stall.Queue_full 3));
  Alcotest.(check (option int)) "operand has no queue" None
    (T.Stall.queue_of T.Stall.Operand);
  Alcotest.(check bool) "equal on same queue" true
    (T.Stall.equal (T.Stall.Queue_empty 1) (T.Stall.Queue_empty 1));
  Alcotest.(check bool) "distinct queues differ" false
    (T.Stall.equal (T.Stall.Queue_empty 1) (T.Stall.Queue_empty 2))

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let test_json_escaping () =
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\\u0007\""
    (T.Json.to_string (T.Json.String "a\"b\\c\n\007"));
  Alcotest.(check string) "non-finite floats are null" "[null,null]"
    (T.Json.to_string (T.Json.List [ T.Json.Float nan; T.Json.Float infinity ]));
  Alcotest.(check string) "object"
    "{\"a\":1,\"b\":[true,null]}"
    (T.Json.to_string
       (T.Json.Obj
          [
            ("a", T.Json.Int 1);
            ("b", T.Json.List [ T.Json.Bool true; T.Json.Null ]);
          ]))

(* ------------------------------------------------------------------ *)
(* Metrics registry.                                                   *)

let test_metrics_registry () =
  let m = T.Metrics.create () in
  let c = T.Metrics.counter m ~labels:[ ("core", "0") ] "instrs" in
  T.Metrics.incr c;
  T.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (T.Metrics.counter_value c);
  let c' = T.Metrics.counter m ~labels:[ ("core", "0") ] "instrs" in
  T.Metrics.incr c';
  Alcotest.(check int) "find-or-create shares state" 6
    (T.Metrics.counter_value c);
  let g = T.Metrics.gauge m "occupancy" in
  T.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge set" 2.5 (T.Metrics.gauge_value g);
  let h = T.Metrics.histogram m ~bounds:[| 1; 2 |] "lat" in
  T.Histogram.observe h 1;
  Alcotest.(check int) "histogram registered live" 1 (T.Histogram.count h);
  Alcotest.(check int) "three samples" 3 (List.length (T.Metrics.samples m));
  Alcotest.check_raises "negative incr rejected"
    (Invalid_argument "Metrics.incr: counters only increase") (fun () ->
      T.Metrics.incr ~by:(-1) c);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: instrs already registered with another kind")
    (fun () -> ignore (T.Metrics.gauge m ~labels:[ ("core", "0") ] "instrs"))

let test_metrics_csv () =
  let m = T.Metrics.create () in
  T.Metrics.incr ~by:7 (T.Metrics.counter m ~labels:[ ("k", "v") ] "c");
  let csv = T.Metrics.to_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "name,labels,kind,value,count,sum,min,max"
    (List.nth lines 0);
  Alcotest.(check string) "row" "c,k=v,counter,7,,,," (List.nth lines 1)

(* ------------------------------------------------------------------ *)
(* Chrome trace events.                                                *)

let test_chrome_trace_shapes () =
  let s =
    T.Chrome_trace.to_string
      [
        T.Chrome_trace.Process_name { pid = 0; name = "cores" };
        T.Chrome_trace.Complete
          {
            name = "fiber 1";
            cat = "issue";
            pid = 0;
            tid = 2;
            ts = 10;
            dur = 5;
            args = [];
          };
        T.Chrome_trace.Counter
          { name = "q0"; pid = 1; ts = 3; values = [ ("occupancy", 4) ] };
      ]
  in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %s" needle)
        true (contains needle))
    [
      "\"traceEvents\"";
      "\"ph\":\"M\"";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
      "\"dur\":5";
      "\"occupancy\":4";
    ]

(* ------------------------------------------------------------------ *)
(* Pass timers.                                                        *)

let test_passes () =
  let p = T.Passes.create () in
  let x = T.Passes.time p "one" (fun () -> 41 + 1) in
  let () = T.Passes.time p "two" (fun () -> ()) in
  Alcotest.(check int) "result passed through" 42 x;
  Alcotest.(check (list string)) "execution order" [ "one"; "two" ]
    (List.map fst (T.Passes.to_list p));
  Alcotest.(check bool) "total is the sum" true
    (abs_float
       (T.Passes.total p
       -. List.fold_left (fun a (_, s) -> a +. s) 0. (T.Passes.to_list p))
    < 1e-12)

(* ------------------------------------------------------------------ *)
(* Simulator invariants (satellite: queue_stats / core_stats).         *)

(* [sim_of] and [check_accounting] are shared with the engine suite via
   [Helpers]. *)
let sim_of ~cores name = Helpers.sim_of ~cores name
let check_accounting = Helpers.check_accounting

let test_cycle_accounting () =
  List.iter
    (fun (name, cores) ->
      let _, sim = sim_of ~cores name in
      check_accounting name sim)
    [ ("lammps-1", 4); ("lammps-3", 2); ("sphot-1", 4); ("umt2k-6", 4) ]

let test_queue_invariants () =
  let module Sim = Finepar_machine.Sim in
  let c, sim = sim_of ~cores:4 "lammps-3" in
  let queue_len =
    c.Compiler.config.Compiler.machine.Finepar_machine.Config.queue_len
  in
  Alcotest.(check bool) "has queues" true (Array.length sim.Sim.queues > 0);
  Array.iteri
    (fun i (q : Sim.queue_state) ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %d: occupancy within capacity" i)
        true
        (q.Sim.max_occupancy >= 0 && q.Sim.max_occupancy <= queue_len);
      Alcotest.(check int)
        (Printf.sprintf "queue %d: histogram total = transfers" i)
        q.Sim.transfers
        (T.Histogram.bucket_total q.Sim.occupancy);
      match T.Histogram.max_value q.Sim.occupancy with
      | None -> ()
      | Some m ->
        Alcotest.(check int)
          (Printf.sprintf "queue %d: histogram max = max occupancy" i)
          q.Sim.max_occupancy m)
    sim.Sim.queues;
  (* queue_stats mirrors the queue table. *)
  List.iteri
    (fun i (_, transfers, max_occ) ->
      Alcotest.(check int) "queue_stats transfers" sim.Sim.queues.(i).Sim.transfers
        transfers;
      Alcotest.(check int) "queue_stats occupancy"
        sim.Sim.queues.(i).Sim.max_occupancy max_occ)
    (Sim.queue_stats sim)

let test_stall_histograms () =
  let module Sim = Finepar_machine.Sim in
  let _, sim = sim_of ~cores:4 "lammps-3" in
  Array.iteri
    (fun i s ->
      let h = sim.Sim.stall_hist.(i) in
      Alcotest.(check int)
        (Printf.sprintf "core %d: episode durations sum to stall cycles" i)
        (Sim.stall_total s) (T.Histogram.sum h))
    sim.Sim.stats

let test_fiber_attribution () =
  let module Sim = Finepar_machine.Sim in
  List.iter
    (fun (name, cores) ->
      let _, sim = sim_of ~cores name in
      let attributed =
        List.fold_left
          (fun acc (_, issue, stall) -> acc + issue + stall)
          0 (Sim.fiber_counters sim)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: fiber cycles + waits = cycles x cores" name)
        (sim.Sim.cycles * Array.length sim.Sim.stats)
        (attributed + Sim.wait_cycles sim))
    [ ("lammps-1", 4); ("lammps-3", 4); ("sphot-1", 2) ]

let test_trace_bounded () =
  let module Sim = Finepar_machine.Sim in
  let e = Option.get (Finepar_kernels.Registry.find "lammps-3") in
  let c =
    Compiler.compile
      (Compiler.default_config ~cores:4 ())
      e.Finepar_kernels.Registry.kernel
  in
  let _, sim =
    Runner.run_with_sim ~tracing:true ~trace_capacity:128
      ~workload:e.Finepar_kernels.Registry.workload c
  in
  Alcotest.(check int) "ring respects capacity" 128
    (List.length (Sim.events sim));
  Alcotest.(check bool) "drops are counted" true (Sim.dropped_events sim > 0);
  let untraced =
    let _, s = Runner.run_with_sim ~workload:e.Finepar_kernels.Registry.workload c in
    Sim.events s
  in
  Alcotest.(check int) "tracing off keeps nothing" 0 (List.length untraced)

(* ------------------------------------------------------------------ *)
(* Report.                                                             *)

let test_report_invariants () =
  let e = Option.get (Finepar_kernels.Registry.find "lammps-1") in
  let c =
    Compiler.compile
      (Compiler.default_config ~cores:4 ())
      e.Finepar_kernels.Registry.kernel
  in
  let r = Runner.run ~workload:e.Finepar_kernels.Registry.workload c in
  let t = r.Runner.telemetry in
  Alcotest.(check string) "kernel name" "lammps-1" t.Report.kernel;
  Alcotest.(check int) "total = cycles x cores" (t.Report.cycles * t.Report.n_cores)
    t.Report.total_core_cycles;
  let attributed =
    List.fold_left
      (fun acc (f : Report.fiber_row) -> acc + f.Report.issue + f.Report.stall)
      0 t.Report.fibers
  in
  Alcotest.(check int) "attribution sums to total"
    t.Report.total_core_cycles
    (attributed + t.Report.wait_cycles);
  List.iter
    (fun (f : Report.fiber_row) ->
      if f.Report.fiber >= 0 then
        Alcotest.(check bool)
          (Printf.sprintf "fiber %d placed on a core" f.Report.fiber)
          true
          (f.Report.partition >= 0 && f.Report.partition < t.Report.n_cores))
    t.Report.fibers;
  Alcotest.(check (list string)) "pipeline passes recorded"
    [
      "speculate"; "flatten"; "fiber-split"; "deps"; "code-graph"; "merge";
      "schedule"; "comm"; "lower"; "verify";
    ]
    (List.map fst t.Report.pass_times)

let test_chrome_trace_of_sim () =
  let _, sim = sim_of ~cores:4 "lammps-1" in
  let module CT = T.Chrome_trace in
  let events = Report.chrome_trace ~pass_times:[ ("merge", 1e-3) ] sim in
  let lanes = Hashtbl.create 8 in
  let cycles = ref 0 in
  List.iter
    (function
      | CT.Complete { pid = 0; tid; dur; _ } ->
        Hashtbl.replace lanes tid ();
        cycles := !cycles + dur
      | _ -> ())
    events;
  Alcotest.(check int) "one span lane per core" 4 (Hashtbl.length lanes);
  Alcotest.(check bool) "spans cover traced cycles" true (!cycles > 0);
  Alcotest.(check bool) "has queue counters" true
    (List.exists (function CT.Counter { pid = 1; _ } -> true | _ -> false) events);
  Alcotest.(check bool) "has compiler lane" true
    (List.exists
       (function CT.Complete { pid = 2; _ } -> true | _ -> false)
       events)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basic;
          Alcotest.test_case "zero capacity" `Quick test_ring_zero_capacity;
          Alcotest.test_case "fold order" `Quick test_ring_fold_order;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bounds generators" `Quick
            test_histogram_bounds_generators;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          QCheck_alcotest.to_alcotest test_histogram_observe_qcheck;
        ] );
      ("stall", [ Alcotest.test_case "classes" `Quick test_stall_classes ]);
      ("json", [ Alcotest.test_case "escaping" `Quick test_json_escaping ]);
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "csv" `Quick test_metrics_csv;
        ] );
      ( "chrome trace",
        [ Alcotest.test_case "event shapes" `Quick test_chrome_trace_shapes ] );
      ("passes", [ Alcotest.test_case "timing" `Quick test_passes ]);
      ( "sim invariants",
        [
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "queue stats" `Quick test_queue_invariants;
          Alcotest.test_case "stall histograms" `Quick test_stall_histograms;
          Alcotest.test_case "fiber attribution" `Quick test_fiber_attribution;
          Alcotest.test_case "bounded trace" `Quick test_trace_bounded;
        ] );
      ( "report",
        [
          Alcotest.test_case "invariants" `Quick test_report_invariants;
          Alcotest.test_case "chrome export" `Quick test_chrome_trace_of_sim;
        ] );
    ]
