(* Telemetry tests: the primitives (ring buffer, histograms, metrics
   registry, JSON, Chrome trace events, pass timers) and the simulator
   invariants they are meant to uphold — exhaustive per-core cycle
   accounting, queue occupancy bounds, histogram conservation, and
   fiber-level attribution summing to the run's total cycles. *)

module T = Finepar_telemetry
open Finepar

(* ------------------------------------------------------------------ *)
(* Ring buffer.                                                        *)

let test_ring_basic () =
  let r = T.Ring.create ~capacity:3 in
  Alcotest.(check bool) "fresh ring empty" true (T.Ring.is_empty r);
  T.Ring.push r 1;
  T.Ring.push r 2;
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (T.Ring.to_list r);
  T.Ring.push r 3;
  T.Ring.push r 4;
  Alcotest.(check (list int)) "overwrites oldest" [ 2; 3; 4 ]
    (T.Ring.to_list r);
  Alcotest.(check int) "one dropped" 1 (T.Ring.dropped r);
  Alcotest.(check int) "length capped" 3 (T.Ring.length r);
  T.Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (T.Ring.to_list r)

let test_ring_zero_capacity () =
  let r = T.Ring.create ~capacity:0 in
  T.Ring.push r "x";
  T.Ring.push r "y";
  Alcotest.(check (list string)) "keeps nothing" [] (T.Ring.to_list r);
  Alcotest.(check int) "counts drops" 2 (T.Ring.dropped r)

let test_ring_fold_order () =
  let r = T.Ring.create ~capacity:4 in
  for i = 1 to 9 do
    T.Ring.push r i
  done;
  Alcotest.(check (list int)) "last four, in order" [ 6; 7; 8; 9 ]
    (List.rev (T.Ring.fold (fun acc x -> x :: acc) [] r))

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)

let test_histogram_buckets () =
  let h = T.Histogram.create ~bounds:[| 1; 2; 4 |] in
  List.iter (T.Histogram.observe h) [ 0; 1; 2; 3; 4; 5; 100 ];
  Alcotest.(check int) "count" 7 (T.Histogram.count h);
  Alcotest.(check int) "sum" 115 (T.Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "bucket layout"
    [ (1, 2); (2, 1); (4, 2); (max_int, 2) ]
    (T.Histogram.buckets h);
  Alcotest.(check int) "bucket total = count" (T.Histogram.count h)
    (T.Histogram.bucket_total h);
  Alcotest.(check (option int)) "min" (Some 0) (T.Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 100) (T.Histogram.max_value h)

let test_histogram_bounds_generators () =
  Alcotest.(check (array int)) "exponential" [| 1; 2; 4; 8 |]
    (T.Histogram.exponential_bounds 4);
  Alcotest.(check (array int)) "linear" [| 1; 2; 3 |]
    (T.Histogram.linear_bounds 3);
  Alcotest.check_raises "empty bounds rejected"
    (Invalid_argument "Histogram.create: no buckets") (fun () ->
      ignore (T.Histogram.create ~bounds:[||]))

let test_histogram_merge () =
  let a = T.Histogram.create ~bounds:[| 1; 2 |] in
  let b = T.Histogram.create ~bounds:[| 1; 2 |] in
  List.iter (T.Histogram.observe a) [ 1; 5 ];
  List.iter (T.Histogram.observe b) [ 2; 2; 9 ];
  T.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (T.Histogram.count a);
  Alcotest.(check int) "merged sum" 19 (T.Histogram.sum a);
  Alcotest.(check (option int)) "merged max" (Some 9)
    (T.Histogram.max_value a)

let test_histogram_observe_qcheck =
  QCheck.Test.make ~name:"histogram conserves observations" ~count:200
    QCheck.(list (int_bound 64))
    (fun xs ->
      let h = T.Histogram.create ~bounds:(T.Histogram.exponential_bounds 4) in
      List.iter (T.Histogram.observe h) xs;
      T.Histogram.count h = List.length xs
      && T.Histogram.bucket_total h = List.length xs
      && T.Histogram.sum h = List.fold_left ( + ) 0 xs)

(* ------------------------------------------------------------------ *)
(* Stall reasons.                                                      *)

let test_stall_classes () =
  Alcotest.(check int) "three classes" 3 T.Stall.n_classes;
  let all = [ T.Stall.Operand; T.Stall.Queue_full 3; T.Stall.Queue_empty 7 ] in
  Alcotest.(check (list int)) "distinct class indices" [ 0; 1; 2 ]
    (List.map T.Stall.class_index all);
  Alcotest.(check (option int)) "queue of full" (Some 3)
    (T.Stall.queue_of (T.Stall.Queue_full 3));
  Alcotest.(check (option int)) "operand has no queue" None
    (T.Stall.queue_of T.Stall.Operand);
  Alcotest.(check bool) "equal on same queue" true
    (T.Stall.equal (T.Stall.Queue_empty 1) (T.Stall.Queue_empty 1));
  Alcotest.(check bool) "distinct queues differ" false
    (T.Stall.equal (T.Stall.Queue_empty 1) (T.Stall.Queue_empty 2))

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let test_json_escaping () =
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\\u0007\""
    (T.Json.to_string (T.Json.String "a\"b\\c\n\007"));
  Alcotest.(check string) "non-finite floats are null" "[null,null]"
    (T.Json.to_string (T.Json.List [ T.Json.Float nan; T.Json.Float infinity ]));
  Alcotest.(check string) "object"
    "{\"a\":1,\"b\":[true,null]}"
    (T.Json.to_string
       (T.Json.Obj
          [
            ("a", T.Json.Int 1);
            ("b", T.Json.List [ T.Json.Bool true; T.Json.Null ]);
          ]))

(* ------------------------------------------------------------------ *)
(* Metrics registry.                                                   *)

let test_metrics_registry () =
  let m = T.Metrics.create () in
  let c = T.Metrics.counter m ~labels:[ ("core", "0") ] "instrs" in
  T.Metrics.incr c;
  T.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (T.Metrics.counter_value c);
  let c' = T.Metrics.counter m ~labels:[ ("core", "0") ] "instrs" in
  T.Metrics.incr c';
  Alcotest.(check int) "find-or-create shares state" 6
    (T.Metrics.counter_value c);
  let g = T.Metrics.gauge m "occupancy" in
  T.Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge set" 2.5 (T.Metrics.gauge_value g);
  let h = T.Metrics.histogram m ~bounds:[| 1; 2 |] "lat" in
  T.Histogram.observe h 1;
  Alcotest.(check int) "histogram registered live" 1 (T.Histogram.count h);
  Alcotest.(check int) "three samples" 3 (List.length (T.Metrics.samples m));
  Alcotest.check_raises "negative incr rejected"
    (Invalid_argument "Metrics.incr: counters only increase") (fun () ->
      T.Metrics.incr ~by:(-1) c);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: instrs already registered with another kind")
    (fun () -> ignore (T.Metrics.gauge m ~labels:[ ("core", "0") ] "instrs"))

let test_metrics_csv () =
  let m = T.Metrics.create () in
  T.Metrics.incr ~by:7 (T.Metrics.counter m ~labels:[ ("k", "v") ] "c");
  let csv = T.Metrics.to_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "name,labels,kind,value,count,sum,min,max"
    (List.nth lines 0);
  Alcotest.(check string) "row" "c,k=v,counter,7,,,," (List.nth lines 1)

(* ------------------------------------------------------------------ *)
(* Chrome trace events.                                                *)

let test_chrome_trace_shapes () =
  let s =
    T.Chrome_trace.to_string
      [
        T.Chrome_trace.Process_name { pid = 0; name = "cores" };
        T.Chrome_trace.Complete
          {
            name = "fiber 1";
            cat = "issue";
            pid = 0;
            tid = 2;
            ts = 10;
            dur = 5;
            args = [];
          };
        T.Chrome_trace.Counter
          { name = "q0"; pid = 1; ts = 3; values = [ ("occupancy", 4) ] };
      ]
  in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %s" needle)
        true (contains needle))
    [
      "\"traceEvents\"";
      "\"ph\":\"M\"";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
      "\"dur\":5";
      "\"occupancy\":4";
    ]

(* ------------------------------------------------------------------ *)
(* Pass timers.                                                        *)

let test_passes () =
  let p = T.Passes.create () in
  let x = T.Passes.time p "one" (fun () -> 41 + 1) in
  let () = T.Passes.time p "two" (fun () -> ()) in
  Alcotest.(check int) "result passed through" 42 x;
  Alcotest.(check (list string)) "execution order" [ "one"; "two" ]
    (List.map fst (T.Passes.to_list p));
  Alcotest.(check bool) "total is the sum" true
    (abs_float
       (T.Passes.total p
       -. List.fold_left (fun a (_, s) -> a +. s) 0. (T.Passes.to_list p))
    < 1e-12)

(* ------------------------------------------------------------------ *)
(* Simulator invariants (satellite: queue_stats / core_stats).         *)

(* [sim_of] and [check_accounting] are shared with the engine suite via
   [Helpers]. *)
let sim_of ~cores name = Helpers.sim_of ~cores name
let check_accounting = Helpers.check_accounting

let test_cycle_accounting () =
  List.iter
    (fun (name, cores) ->
      let _, sim = sim_of ~cores name in
      check_accounting name sim)
    [ ("lammps-1", 4); ("lammps-3", 2); ("sphot-1", 4); ("umt2k-6", 4) ]

let test_queue_invariants () =
  let module Sim = Finepar_machine.Sim in
  let c, sim = sim_of ~cores:4 "lammps-3" in
  let queue_len =
    c.Compiler.config.Compiler.machine.Finepar_machine.Config.queue_len
  in
  Alcotest.(check bool) "has queues" true (Array.length sim.Sim.queues > 0);
  Array.iteri
    (fun i (q : Sim.queue_state) ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %d: occupancy within capacity" i)
        true
        (q.Sim.max_occupancy >= 0 && q.Sim.max_occupancy <= queue_len);
      Alcotest.(check int)
        (Printf.sprintf "queue %d: histogram total = transfers" i)
        q.Sim.transfers
        (T.Histogram.bucket_total q.Sim.occupancy);
      match T.Histogram.max_value q.Sim.occupancy with
      | None -> ()
      | Some m ->
        Alcotest.(check int)
          (Printf.sprintf "queue %d: histogram max = max occupancy" i)
          q.Sim.max_occupancy m)
    sim.Sim.queues;
  (* queue_stats mirrors the queue table. *)
  List.iteri
    (fun i (_, transfers, max_occ) ->
      Alcotest.(check int) "queue_stats transfers" sim.Sim.queues.(i).Sim.transfers
        transfers;
      Alcotest.(check int) "queue_stats occupancy"
        sim.Sim.queues.(i).Sim.max_occupancy max_occ)
    (Sim.queue_stats sim)

let test_stall_histograms () =
  let module Sim = Finepar_machine.Sim in
  let _, sim = sim_of ~cores:4 "lammps-3" in
  Array.iteri
    (fun i s ->
      let h = sim.Sim.stall_hist.(i) in
      Alcotest.(check int)
        (Printf.sprintf "core %d: episode durations sum to stall cycles" i)
        (Sim.stall_total s) (T.Histogram.sum h))
    sim.Sim.stats

let test_fiber_attribution () =
  let module Sim = Finepar_machine.Sim in
  List.iter
    (fun (name, cores) ->
      let _, sim = sim_of ~cores name in
      let attributed =
        List.fold_left
          (fun acc (_, issue, stall) -> acc + issue + stall)
          0 (Sim.fiber_counters sim)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: fiber cycles + waits = cycles x cores" name)
        (sim.Sim.cycles * Array.length sim.Sim.stats)
        (attributed + Sim.wait_cycles sim))
    [ ("lammps-1", 4); ("lammps-3", 4); ("sphot-1", 2) ]

let test_trace_bounded () =
  let module Sim = Finepar_machine.Sim in
  let e = Option.get (Finepar_kernels.Registry.find "lammps-3") in
  let c =
    Compiler.compile
      (Compiler.default_config ~cores:4 ())
      e.Finepar_kernels.Registry.kernel
  in
  let _, sim =
    Runner.run_with_sim ~tracing:true ~trace_capacity:128
      ~workload:e.Finepar_kernels.Registry.workload c
  in
  Alcotest.(check int) "ring respects capacity" 128
    (List.length (Sim.events sim));
  Alcotest.(check bool) "drops are counted" true (Sim.dropped_events sim > 0);
  let untraced =
    let _, s = Runner.run_with_sim ~workload:e.Finepar_kernels.Registry.workload c in
    Sim.events s
  in
  Alcotest.(check int) "tracing off keeps nothing" 0 (List.length untraced)

(* ------------------------------------------------------------------ *)
(* Report.                                                             *)

let test_report_invariants () =
  let e = Option.get (Finepar_kernels.Registry.find "lammps-1") in
  let c =
    Compiler.compile
      (Compiler.default_config ~cores:4 ())
      e.Finepar_kernels.Registry.kernel
  in
  let r = Runner.run ~workload:e.Finepar_kernels.Registry.workload c in
  let t = r.Runner.telemetry in
  Alcotest.(check string) "kernel name" "lammps-1" t.Report.kernel;
  Alcotest.(check int) "total = cycles x cores" (t.Report.cycles * t.Report.n_cores)
    t.Report.total_core_cycles;
  let attributed =
    List.fold_left
      (fun acc (f : Report.fiber_row) -> acc + f.Report.issue + f.Report.stall)
      0 t.Report.fibers
  in
  Alcotest.(check int) "attribution sums to total"
    t.Report.total_core_cycles
    (attributed + t.Report.wait_cycles);
  List.iter
    (fun (f : Report.fiber_row) ->
      if f.Report.fiber >= 0 then
        Alcotest.(check bool)
          (Printf.sprintf "fiber %d placed on a core" f.Report.fiber)
          true
          (f.Report.partition >= 0 && f.Report.partition < t.Report.n_cores))
    t.Report.fibers;
  Alcotest.(check (list string)) "pipeline passes recorded"
    [
      "speculate"; "flatten"; "fiber-split"; "deps"; "code-graph"; "merge";
      "schedule"; "comm"; "lower"; "verify";
    ]
    (List.map fst t.Report.pass_times)

let test_chrome_trace_of_sim () =
  let _, sim = sim_of ~cores:4 "lammps-1" in
  let module CT = T.Chrome_trace in
  let events = Report.chrome_trace ~pass_times:[ ("merge", 1e-3) ] sim in
  let lanes = Hashtbl.create 8 in
  let cycles = ref 0 in
  List.iter
    (function
      | CT.Complete { pid = 0; tid; dur; _ } ->
        Hashtbl.replace lanes tid ();
        cycles := !cycles + dur
      | _ -> ())
    events;
  Alcotest.(check int) "one span lane per core" 4 (Hashtbl.length lanes);
  Alcotest.(check bool) "spans cover traced cycles" true (!cycles > 0);
  Alcotest.(check bool) "has queue counters" true
    (List.exists (function CT.Counter { pid = 1; _ } -> true | _ -> false) events);
  Alcotest.(check bool) "has compiler lane" true
    (List.exists
       (function CT.Complete { pid = 2; _ } -> true | _ -> false)
       events)

(* ------------------------------------------------------------------ *)
(* Ring boundaries.                                                    *)

let test_ring_capacity_one () =
  let r = T.Ring.create ~capacity:1 in
  T.Ring.push r 1;
  Alcotest.(check (list int)) "holds one" [ 1 ] (T.Ring.to_list r);
  Alcotest.(check int) "nothing dropped yet" 0 (T.Ring.dropped r);
  T.Ring.push r 2;
  T.Ring.push r 3;
  Alcotest.(check (list int)) "keeps the newest" [ 3 ] (T.Ring.to_list r);
  Alcotest.(check int) "drops counted" 2 (T.Ring.dropped r);
  T.Ring.clear r;
  Alcotest.(check int) "clear resets dropped" 0 (T.Ring.dropped r);
  Alcotest.(check bool) "clear empties" true (T.Ring.is_empty r);
  T.Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (T.Ring.to_list r)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles.                                              *)

let test_histogram_percentile () =
  let empty = T.Histogram.create ~bounds:[| 1; 2 |] in
  Alcotest.(check (option int)) "empty" None (T.Histogram.percentile empty 50.);
  List.iter
    (fun q ->
      Alcotest.check_raises
        (Printf.sprintf "q = %g rejected" q)
        (Invalid_argument "Histogram.percentile: q outside [0, 100]")
        (fun () -> ignore (T.Histogram.percentile empty q)))
    [ -0.5; 100.5 ];
  (* A single sample is exact at every percentile. *)
  let one = T.Histogram.create ~bounds:[| 1; 2; 4; 8 |] in
  T.Histogram.observe one 3;
  List.iter
    (fun q ->
      Alcotest.(check (option int))
        (Printf.sprintf "single sample at p%g" q)
        (Some 3) (T.Histogram.percentile one q))
    [ 0.; 50.; 99.; 100. ];
  (* A known distribution: bucket upper bounds, clamped to [min, max]. *)
  let h = T.Histogram.create ~bounds:[| 1; 2; 4; 8 |] in
  List.iter (T.Histogram.observe h) [ 1; 1; 2; 2; 3; 3; 4; 4; 5; 8 ];
  List.iter
    (fun (q, want) ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%g" q)
        (Some want) (T.Histogram.percentile h q))
    [ (0., 1); (50., 4); (90., 8); (100., 8) ];
  (* The overflow bucket reports the observed maximum, not infinity. *)
  let ov = T.Histogram.create ~bounds:[| 1; 2 |] in
  List.iter (T.Histogram.observe ov) [ 5; 100 ];
  List.iter
    (fun q ->
      Alcotest.(check (option int))
        (Printf.sprintf "overflow at p%g" q)
        (Some 100) (T.Histogram.percentile ov q))
    [ 50.; 99. ]

(* ------------------------------------------------------------------ *)
(* JSON round-trips through the strict parser.                         *)

let test_json_roundtrip () =
  (* Control characters must escape on the way out and decode on the
     way back in. *)
  let orig = "ctl:\000\001\n\t\r quote\"backslash\\ del\127 end" in
  let s = T.Json.to_string (T.Json.String orig) in
  String.iter
    (fun c ->
      Alcotest.(check bool) "no raw control bytes in output" true
        (Char.code c >= 0x20))
    s;
  (match T.Json.of_string s with
  | Ok (T.Json.String r) -> Alcotest.(check string) "round trip" orig r
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.fail e);
  (* Non-finite floats serialize to null, so the document stays valid
     RFC 8259 and reparses. *)
  let doc =
    T.Json.Obj
      [
        ("nan", T.Json.Float Float.nan);
        ("inf", T.Json.Float Float.infinity);
        ("ninf", T.Json.Float Float.neg_infinity);
        ("ok", T.Json.Float 1.5);
      ]
  in
  match T.Json.of_string (T.Json.to_string doc) with
  | Ok (T.Json.Obj kvs) ->
    List.iter
      (fun k ->
        Alcotest.(check bool)
          (Printf.sprintf "%s is null" k)
          true
          (List.assoc k kvs = T.Json.Null))
      [ "nan"; "inf"; "ninf" ];
    Alcotest.(check bool) "finite float survives" true
      (List.assoc "ok" kvs = T.Json.Float 1.5)
  | Ok _ -> Alcotest.fail "parsed to a non-object"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Host-side span tracer.                                              *)

(* Run [f] with a fresh tracer installed; always uninstalls. *)
let with_tracer f =
  let tr = T.Tracer.create () in
  T.Tracer.install tr;
  Fun.protect ~finally:T.Tracer.uninstall (fun () -> f tr)

let test_tracer_disabled () =
  Alcotest.(check bool) "no tracer installed" true
    (Option.is_none (T.Tracer.active ()));
  (* Every instrumentation entry point must be a transparent no-op. *)
  let v = T.Tracer.with_span "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v;
  T.Tracer.set_arg "k" (T.Json.Int 1);
  T.Tracer.add_counter "c";
  Alcotest.(check bool) "still no tracer" true
    (Option.is_none (T.Tracer.active ()))

let test_tracer_nesting () =
  let tr =
    with_tracer (fun tr ->
        T.Tracer.with_span ~cat:"t" "outer" (fun () ->
            T.Tracer.with_span "inner" (fun () ->
                T.Tracer.set_arg "k" (T.Json.Int 7));
            T.Tracer.with_span "inner" (fun () -> ()));
        (* A raising body still records its span. *)
        (try T.Tracer.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        T.Tracer.add_counter ~by:2 "cases";
        T.Tracer.add_counter "cases";
        T.Tracer.add_counter "other";
        tr)
  in
  let spans = T.Tracer.spans tr in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  let outer = List.find (fun s -> s.T.Tracer.name = "outer") spans in
  Alcotest.(check int) "outer is a root" (-1) outer.T.Tracer.parent;
  Alcotest.(check string) "category recorded" "t" outer.T.Tracer.cat;
  let inners = List.filter (fun s -> s.T.Tracer.name = "inner") spans in
  Alcotest.(check int) "both inners" 2 (List.length inners);
  List.iter
    (fun (s : T.Tracer.span) ->
      Alcotest.(check int) "nested under outer" outer.T.Tracer.id
        s.T.Tracer.parent;
      Alcotest.(check bool) "closed" true (s.T.Tracer.t1 >= s.T.Tracer.t0))
    inners;
  let arged = List.find (fun s -> s.T.Tracer.args <> []) inners in
  Alcotest.(check bool) "set_arg hit the open span" true
    (List.assoc "k" arged.T.Tracer.args = T.Json.Int 7);
  let boom = List.find (fun s -> s.T.Tracer.name = "boom") spans in
  Alcotest.(check int) "raising span is a root" (-1) boom.T.Tracer.parent;
  Alcotest.(check (list (pair string int)))
    "counters accumulate, sorted"
    [ ("cases", 3); ("other", 1) ]
    (T.Tracer.counters tr)

let test_tracer_multi_domain () =
  let tr =
    with_tracer (fun tr ->
        let ds =
          Array.init 3 (fun i ->
              Domain.spawn (fun () ->
                  T.Tracer.with_span "work"
                    (fun () -> Sys.opaque_identity (i * i))))
        in
        T.Tracer.with_span "main" (fun () -> ());
        Array.iter (fun d -> ignore (Domain.join d)) ds;
        tr)
  in
  let spans = T.Tracer.spans tr in
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.T.Tracer.domain) spans)
  in
  Alcotest.(check int) "spans from four domains" 4 (List.length domains);
  let events = T.Tracer.to_chrome tr in
  let thread_rows =
    List.filter_map
      (function
        | T.Chrome_trace.Thread_name { tid; name; _ } -> Some (tid, name)
        | _ -> None)
      events
  in
  (* The acceptance shape: one thread row per domain, distinct tids. *)
  Alcotest.(check int) "one thread row per domain" 4
    (List.length thread_rows);
  let tids = List.map fst thread_rows in
  Alcotest.(check int) "tids distinct" 4
    (List.length (List.sort_uniq compare tids));
  Alcotest.(check (list int)) "tids are dense ranks" [ 0; 1; 2; 3 ]
    (List.sort compare tids);
  Alcotest.(check bool) "host process named" true
    (List.exists
       (function
         | T.Chrome_trace.Process_name { pid; name } ->
           pid = T.Tracer.host_pid && name = "host"
         | _ -> false)
       events);
  List.iter
    (function
      | T.Chrome_trace.Complete { pid; tid; dur; _ } ->
        Alcotest.(check int) "span on the host pid" T.Tracer.host_pid pid;
        Alcotest.(check bool) "span tid has a thread row" true
          (List.mem tid tids);
        Alcotest.(check bool) "positive duration" true (dur >= 1)
      | _ -> ())
    events;
  (* tid assignment is stable: rank of the domain id among the sorted
     distinct domain ids in the trace. *)
  let expect_tid d =
    let rec rank i = function
      | [] -> i
      | d' :: rest -> if d' = d then i else rank (i + 1) rest
    in
    rank 0 domains
  in
  List.iter
    (fun (s : T.Tracer.span) ->
      let row =
        List.find
          (fun (_, name) -> name = Printf.sprintf "domain %d" s.T.Tracer.domain)
          thread_rows
      in
      Alcotest.(check int) "tid = rank of domain id"
        (expect_tid s.T.Tracer.domain) (fst row))
    spans

(* ------------------------------------------------------------------ *)
(* Profile tree.                                                       *)

let spin () = ignore (Sys.opaque_identity (Array.init 2048 (fun i -> i * i)))

let test_profile_tree () =
  let tr =
    with_tracer (fun tr ->
        T.Tracer.with_span "root" (fun () ->
            for _ = 1 to 3 do
              T.Tracer.with_span "child" spin
            done;
            T.Tracer.with_span "other" (fun () -> T.Tracer.with_span "leaf" spin));
        tr)
  in
  let tree = T.Profile_tree.of_spans (T.Tracer.spans tr) in
  Alcotest.(check bool) "well formed" true (T.Profile_tree.well_formed tree);
  (* The acceptance invariant, spelled out: at every node the children's
     total times — and their self times — sum to no more than the
     parent's total, and self time is never negative. *)
  let eps = 1e-9 in
  let rec check_node (n : T.Profile_tree.node) =
    let sum f =
      List.fold_left (fun a (c : T.Profile_tree.node) -> a +. f c) 0.
        n.T.Profile_tree.children
    in
    Alcotest.(check bool)
      (n.T.Profile_tree.name ^ ": children totals bounded by parent total")
      true
      (sum (fun c -> c.T.Profile_tree.total) <= n.T.Profile_tree.total +. eps);
    Alcotest.(check bool)
      (n.T.Profile_tree.name ^ ": children self bounded by parent total")
      true
      (sum (fun c -> c.T.Profile_tree.self) <= n.T.Profile_tree.total +. eps);
    Alcotest.(check bool)
      (n.T.Profile_tree.name ^ ": self nonnegative")
      true
      (n.T.Profile_tree.self >= 0.);
    List.iter check_node n.T.Profile_tree.children
  in
  List.iter check_node tree;
  (match tree with
  | [ root ] ->
    Alcotest.(check string) "single root" "root" root.T.Profile_tree.name;
    Alcotest.(check int) "root count" 1 root.T.Profile_tree.count;
    let child =
      List.find
        (fun (c : T.Profile_tree.node) -> c.T.Profile_tree.name = "child")
        root.T.Profile_tree.children
    in
    Alcotest.(check int) "same-name spans fold" 3 child.T.Profile_tree.count;
    Alcotest.(check bool) "total_seconds is the root total" true
      (Float.abs (T.Profile_tree.total_seconds tree -. root.T.Profile_tree.total)
      < eps)
  | _ -> Alcotest.fail "expected a single root");
  let hot = T.Profile_tree.hot_list tree in
  Alcotest.(check int) "hot list covers every path" 4 (List.length hot);
  let selves = List.map (fun (_, _, _, self) -> self) hot in
  Alcotest.(check bool) "hot list sorted by self, descending" true
    (List.sort (fun a b -> compare b a) selves = selves);
  Alcotest.(check bool) "paths are slash-joined" true
    (List.exists (fun (p, _, _, _) -> p = "root/other/leaf") hot)

(* ------------------------------------------------------------------ *)
(* Bench history and trends.                                           *)

let test_history_roundtrip () =
  let path = Filename.temp_file "finepar-history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.History.append ~path
        (T.History.entry ~time:1. ~label:"bench" ~jobs:4
           ~metrics:[ ("wall_seconds", 2.5); ("pool.imbalance", 1.1) ]);
      T.History.append ~path
        (T.History.entry ~time:2. ~label:"bench" ~jobs:4
           ~metrics:[ ("wall_seconds", 2.6) ]);
      match T.History.load ~path with
      | Error e -> Alcotest.fail e
      | Ok entries ->
        Alcotest.(check int) "two lines" 2 (List.length entries);
        Alcotest.(check (list (pair string (float 1e-9))))
          "metrics survive the round trip"
          [ ("wall_seconds", 2.5); ("pool.imbalance", 1.1) ]
          (T.History.metrics_of (List.hd entries)));
  Alcotest.(check bool) "unreadable file is an error" true
    (Result.is_error (T.History.load ~path:"/nonexistent/h.jsonl"))

let test_history_direction () =
  List.iter
    (fun (metric, want) ->
      Alcotest.(check bool) metric want (T.History.lower_is_better metric))
    [
      ("wall_seconds", true);
      ("wallclock.compile (4 cores).ns_per_run", true);
      ("pool.imbalance", true);
      ("table3.mean_speedup", false);
      ("fig12.mean_cycles", false);
    ]

let test_history_trends () =
  let runs metric series = List.map (fun v -> [ (metric, v) ]) series in
  let trend_of ts metric =
    List.find (fun (t : T.History.trend) -> t.T.History.metric = metric) ts
  in
  (* A duration creeping up past tolerance regresses... *)
  let ts = T.History.trends (runs "wall_seconds" [ 1.; 1.; 1.; 1.3 ]) in
  let t = trend_of ts "wall_seconds" in
  Alcotest.(check string) "slower wall clock regresses" "REGRESSION"
    (T.History.verdict_string t.T.History.verdict);
  Alcotest.(check bool) "any_regression sees it" true
    (T.History.any_regression ts);
  (* ...and a duration going down is an improvement, not a regression. *)
  let ts = T.History.trends (runs "wall_seconds" [ 1.; 1.; 1.; 0.7 ]) in
  Alcotest.(check string) "faster wall clock is ok" "ok"
    (T.History.verdict_string
       (trend_of ts "wall_seconds").T.History.verdict);
  (* Higher-is-better metrics regress downward. *)
  let ts = T.History.trends (runs "table3.mean_speedup" [ 2.; 2.; 1.5 ]) in
  Alcotest.(check string) "dropping speedup regresses" "REGRESSION"
    (T.History.verdict_string
       (trend_of ts "table3.mean_speedup").T.History.verdict);
  (* Within tolerance: ok. *)
  let ts = T.History.trends (runs "wall_seconds" [ 1.; 1.; 1.05 ]) in
  Alcotest.(check string) "within tolerance" "ok"
    (T.History.verdict_string (trend_of ts "wall_seconds").T.History.verdict);
  (* One run of a metric cannot be judged. *)
  let ts = T.History.trends [ [ ("fresh", 1.) ] ] in
  let t = trend_of ts "fresh" in
  Alcotest.(check string) "single run insufficient" "n/a"
    (T.History.verdict_string t.T.History.verdict);
  Alcotest.(check int) "counted once" 1 t.T.History.n;
  (* The window bounds how far back the judgment looks. *)
  let ts =
    T.History.trends ~window:2
      (runs "wall_seconds" [ 100.; 100.; 1.; 1.; 1.2 ])
  in
  let t = trend_of ts "wall_seconds" in
  Alcotest.(check string) "old outliers age out of the window" "REGRESSION"
    (T.History.verdict_string t.T.History.verdict);
  Alcotest.(check (option (float 1e-9))) "window mean" (Some 1.)
    t.T.History.window_mean

let test_history_summarize () =
  let doc =
    T.Json.Obj
      [
        ( "sections",
          T.Json.Obj
            [
              ( "table3",
                T.Json.List
                  [
                    T.Json.Obj
                      [
                        ("name", T.Json.String "a");
                        ("speedup", T.Json.Float 2.);
                        ("cycles", T.Json.Int 100);
                      ];
                    T.Json.Obj
                      [
                        ("name", T.Json.String "b");
                        ("speedup", T.Json.Float 4.);
                        ("cycles", T.Json.Int 300);
                      ];
                  ] );
              ( "wallclock",
                T.Json.List
                  [
                    T.Json.Obj
                      [
                        ("name", T.Json.String "compile x");
                        ("ns_per_run", T.Json.Float 5.);
                      ];
                  ] );
              ("pool", T.Json.Obj [ ("tasks", T.Json.Int 10) ]);
            ] );
      ]
  in
  let metrics = T.History.summarize_sections doc in
  let check name want =
    match List.assoc_opt name metrics with
    | None -> Alcotest.fail (name ^ " missing")
    | Some v -> Alcotest.(check (float 1e-9)) name want v
  in
  (* Multi-field rows summarize to per-field means... *)
  check "table3.mean_speedup" 3.;
  check "table3.mean_cycles" 200.;
  (* ...while named singletons (the bechamel shape) keep their name AND
     the field name, so the direction heuristic still applies. *)
  check "wallclock.compile x.ns_per_run" 5.;
  Alcotest.(check bool) "named singleton metric is lower-is-better" true
    (T.History.lower_is_better "wallclock.compile x.ns_per_run");
  (* Object sections keep their numeric members. *)
  check "pool.tasks" 10.

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basic;
          Alcotest.test_case "zero capacity" `Quick test_ring_zero_capacity;
          Alcotest.test_case "fold order" `Quick test_ring_fold_order;
          Alcotest.test_case "capacity one" `Quick test_ring_capacity_one;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bounds generators" `Quick
            test_histogram_bounds_generators;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          QCheck_alcotest.to_alcotest test_histogram_observe_qcheck;
        ] );
      ("stall", [ Alcotest.test_case "classes" `Quick test_stall_classes ]);
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "csv" `Quick test_metrics_csv;
        ] );
      ( "chrome trace",
        [ Alcotest.test_case "event shapes" `Quick test_chrome_trace_shapes ] );
      ("passes", [ Alcotest.test_case "timing" `Quick test_passes ]);
      ( "sim invariants",
        [
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "queue stats" `Quick test_queue_invariants;
          Alcotest.test_case "stall histograms" `Quick test_stall_histograms;
          Alcotest.test_case "fiber attribution" `Quick test_fiber_attribution;
          Alcotest.test_case "bounded trace" `Quick test_trace_bounded;
        ] );
      ( "report",
        [
          Alcotest.test_case "invariants" `Quick test_report_invariants;
          Alcotest.test_case "chrome export" `Quick test_chrome_trace_of_sim;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_tracer_disabled;
          Alcotest.test_case "nesting" `Quick test_tracer_nesting;
          Alcotest.test_case "multi-domain chrome export" `Quick
            test_tracer_multi_domain;
        ] );
      ( "profile tree",
        [ Alcotest.test_case "self/total invariant" `Quick test_profile_tree ] );
      ( "history",
        [
          Alcotest.test_case "append/load round trip" `Quick
            test_history_roundtrip;
          Alcotest.test_case "metric direction" `Quick test_history_direction;
          Alcotest.test_case "rolling-window trends" `Quick test_history_trends;
          Alcotest.test_case "summarize bench json" `Quick
            test_history_summarize;
        ] );
    ]
