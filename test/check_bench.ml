(* The CI bench regression gate.

   usage:
     check_bench.exe BASELINE.json CURRENT.json
       [--wallclock-tolerance FRAC]   tolerance for wall-clock gates
                                      (default 0.10, i.e. >10% fails)
       [--current-seconds S]          this run's bench wall-clock; gated
                                      against meta.par_seconds in the
                                      baseline when both are present
       [--speedup S]                  this runner's measured -j speedup
                                      (sequential seconds / parallel
                                      seconds); gated against
                                      meta.min_speedup when present
       [--markdown FILE]              append a job-summary table

   Both files are bench --json outputs ({"sections": {...}}); the
   baseline may carry an extra "meta" object (see bench/baseline.json).
   Section numbers are paper-accuracy results of a deterministic
   simulation, so they must match the baseline exactly — any drift means
   a semantic change to the compiler or simulator and fails the gate.
   Wall-clock numbers (the bechamel "wallclock" section, and the
   --current-seconds / --speedup gates) are machine-dependent and get
   the tolerance instead.

   The "engines" section (simulation-engine throughput on the fuzz
   corpus) is also machine-dependent: it is never compared exactly.
   Instead, every <engine>_speedup the bench reports is gated against
   min_<engine>_speedup in the baseline meta, and the per-engine
   throughput is reported in the job summary.  A speedup without its
   gate — or a gate whose engine row is missing from the current run —
   is a hard failure pointing at bench/record_baseline.sh, not a silent
   skip: the baseline must learn about every engine the bench knows.

   The "service" section (compile-and-simulate service throughput,
   cold vs warm store) follows the same convention: never compared
   exactly, and meta.min_service_warm_speedup is gated against the
   section's warm_speedup with a hard failure in BOTH missing-key
   directions — a gate without the section (or a section without its
   gate) means baseline and bench disagree about the service's
   existence and someone must refresh bench/record_baseline.sh.

   The "autotune" section (the generational search's per-kernel
   best-config rows) is deterministic except for its one throughput
   number: configs_per_second is stripped from both sides, then the
   rest — every best-config row, cycle count and heuristic gap — is
   compared exactly like any paper-accuracy section. *)

module J = Finepar_telemetry.Json

let failures : string list ref = ref []
let notes : string list ref = ref []
let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt
let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      match J.of_channel ic with
      | Ok v -> v
      | Error e ->
        Printf.eprintf "check_bench: %s: %s\n" path e;
        exit 2)

let obj_assoc = function J.Obj kvs -> kvs | _ -> []
let find key j = List.assoc_opt key (obj_assoc j)

let num = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let num_eq a b =
  (* Exact up to float noise: these are deterministic simulation results,
     so 1e-9 relative covers only representation round-trips. *)
  a = b || Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b)

(* Exact structural comparison of one paper-accuracy section. *)
let rec compare_exact path (base : J.t) (cur : J.t) =
  match (base, cur) with
  | (J.Int _ | J.Float _), (J.Int _ | J.Float _) ->
    let a = Option.get (num base) and b = Option.get (num cur) in
    if not (num_eq a b) then fail "%s: baseline %.17g, current %.17g" path a b
  | J.String a, J.String b ->
    if not (String.equal a b) then fail "%s: baseline %S, current %S" path a b
  | J.Bool a, J.Bool b -> if a <> b then fail "%s: bool changed" path
  | J.Null, J.Null -> ()
  | J.List xs, J.List ys ->
    if List.length xs <> List.length ys then
      fail "%s: baseline has %d entries, current %d" path (List.length xs)
        (List.length ys)
    else
      List.iteri
        (fun i (x, y) -> compare_exact (Printf.sprintf "%s[%d]" path i) x y)
        (List.combine xs ys)
  | J.Obj xs, J.Obj ys ->
    List.iter
      (fun (k, x) ->
        match List.assoc_opt k ys with
        | None -> fail "%s.%s: missing from current run" path k
        | Some y -> compare_exact (path ^ "." ^ k) x y)
      xs;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k xs) then
          fail "%s.%s: not in baseline (refresh bench/baseline.json)" path k)
      ys
  | _ -> fail "%s: type changed" path

(* The autotune section: deterministic search rows compared exactly,
   with the one machine-dependent number (configs_per_second) stripped
   from both sides first and surfaced as a note instead. *)
let compare_autotune base cur =
  let strip = function
    | J.Obj kvs -> J.Obj (List.remove_assoc "configs_per_second" kvs)
    | j -> j
  in
  (match Option.bind (find "configs_per_second" cur) num with
  | Some cps -> note "autotune: %.1f configs evaluated/second" cps
  | None -> ());
  compare_exact "autotune" (strip base) (strip cur)

(* The bechamel section: entries matched by name, ns/run gated with the
   tolerance (regressions fail, improvements are reported). *)
let compare_wallclock ~tolerance base cur =
  let entries j =
    match j with
    | J.List rows ->
      List.filter_map
        (fun row ->
          match (find "name" row, find "ns_per_run" row) with
          | Some (J.String n), Some v -> Option.map (fun f -> (n, f)) (num v)
          | _ -> None)
        rows
    | _ -> []
  in
  let cur_entries = entries cur in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur_entries with
      | None -> fail "wallclock: %S missing from current run" name
      | Some c ->
        if c > b *. (1. +. tolerance) then
          fail "wallclock: %S regressed %.0f -> %.0f ns/run (+%.0f%% > %.0f%%)"
            name b c
            ((c /. b -. 1.) *. 100.)
            (tolerance *. 100.)
        else
          note "wallclock: %S %.0f -> %.0f ns/run (%+.0f%%)" name b c
            ((c /. b -. 1.) *. 100.))
    (entries base)

(* Rolling-window trends over the append-only bench history.  Advisory
   by default: machine-to-machine noise on shared CI runners makes a
   hard gate on history flap, so regressions become notes and job-
   summary rows, while the checked-in baseline stays the gate. *)
let history_trends = ref []

let check_history path =
  let module H = Finepar_telemetry.History in
  match H.load ~path with
  | Error e -> note "history: cannot read %s: %s" path e
  | Ok entries ->
    let ts = H.trends (List.map H.metrics_of entries) in
    history_trends := ts;
    note "history: %d run(s) in %s" (List.length entries) path;
    List.iter
      (fun (t : H.trend) ->
        match (t.H.verdict, t.H.delta_pct) with
        | H.Regression, Some d ->
          note "history: %s regressed %+.1f%% vs rolling window (%.6g -> %.6g)"
            t.H.metric d
            (Option.value ~default:Float.nan t.H.window_mean)
            t.H.last
        | _ -> ())
      ts

let markdown ~out ~cur ~speedup =
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "## Bench gate\n\n";
      (match speedup with
      | Some s -> p "Harness wall-clock speedup on this runner: **%.2fx**\n\n" s
      | None -> ());
      (match Option.bind (find "sections" cur) (find "fig12") with
      | Some fig12 ->
        p "| kernel | 2-core | 4-core |\n|---|---|---|\n";
        (match find "kernels" fig12 with
        | Some (J.List rows) ->
          List.iter
            (fun row ->
              match
                ( find "kernel" row,
                  Option.bind (find "speedup_2core" row) num,
                  Option.bind (find "speedup_4core" row) num )
              with
              | Some (J.String k), Some s2, Some s4 ->
                p "| %s | %.2f | %.2f |\n" k s2 s4
              | _ -> ())
            rows
        | _ -> ());
        (match
           ( Option.bind (find "average_2core" fig12) num,
             Option.bind (find "average_4core" fig12) num )
         with
        | Some a2, Some a4 ->
          p "| **average** | **%.2f** | **%.2f** |\n" a2 a4
        | _ -> ());
        p "\n(paper: 1.32 / 2.05 average)\n"
      | None -> ());
      (match Option.bind (find "sections" cur) (find "engines") with
      | Some e ->
        p "\n### Simulation engines (fuzz-corpus replay)\n\n";
        p "| engine | simulated cycles/second | speedup vs cycle |\n";
        p "|---|---|---|\n";
        List.iter
          (fun (k, v) ->
            match
              (String.ends_with ~suffix:"_cycles_per_second" k, num v)
            with
            | true, Some rate ->
              let name =
                String.sub k 0 (String.length k - String.length
                                                   "_cycles_per_second")
              in
              (match Option.bind (find (name ^ "_speedup") e) num with
              | Some s -> p "| %s | %.0f | %.2fx |\n" name rate s
              | None -> p "| %s | %.0f | - |\n" name rate)
            | _ -> ())
          (obj_assoc e)
      | None -> ());
      (match Option.bind (find "sections" cur) (find "service") with
      | Some s ->
        p "\n### Compile-and-simulate service (cold vs warm store)\n\n";
        p "| domains | cold req/s | warm req/s |\n|---|---|---|\n";
        let cell k = Option.bind (find k s) num in
        (match (cell "cold_rps_j1", cell "warm_rps_j1") with
        | Some c, Some w -> p "| 1 | %.1f | %.1f |\n" c w
        | _ -> ());
        (match (cell "cold_rps_j4", cell "warm_rps_j4") with
        | Some c, Some w -> p "| 4 | %.1f | %.1f |\n" c w
        | _ -> ());
        (match cell "warm_speedup" with
        | Some ws -> p "\nWarm-store speedup over cold: **%.1fx**\n" ws
        | None -> ())
      | None -> ());
      (match Option.bind (find "sections" cur) (find "autotune") with
      | Some a ->
        p "\n### Autotune search (found optimum vs Section III-B heuristic)\n\n";
        (match Option.bind (find "configs_per_second" a) num with
        | Some cps -> p "%.1f configs evaluated/second\n\n" cps
        | None -> ());
        p "| kernel | heuristic | best | gap | best configuration |\n";
        p "|---|---|---|---|---|\n";
        (match find "kernels" a with
        | Some (J.List rows) ->
          List.iter
            (fun row ->
              match
                ( find "name" row,
                  Option.bind (find "heuristic_cycles" row) num,
                  Option.bind (find "best_cycles" row) num,
                  find "best_config" row )
              with
              | Some (J.String k), Some h, Some b, Some (J.String cfg) ->
                p "| %s | %.0f | %.0f | %s | %s |\n" k h b
                  (match Option.bind (find "gap" row) num with
                  | Some g -> Printf.sprintf "%.2fx" g
                  | None -> "-")
                  cfg
              | _ -> ())
            rows
        | _ -> ())
      | None -> ());
      (match !history_trends with
      | [] -> ()
      | ts ->
        let module H = Finepar_telemetry.History in
        p "\n### History trend (latest vs rolling window)\n\n";
        p "| metric | runs | last | window mean | delta | verdict |\n";
        p "|---|---|---|---|---|---|\n";
        List.iter
          (fun (t : H.trend) ->
            p "| %s | %d | %.6g | %s | %s | %s |\n" t.H.metric t.H.n t.H.last
              (match t.H.window_mean with
              | None -> "-"
              | Some m -> Printf.sprintf "%.6g" m)
              (match t.H.delta_pct with
              | None -> "-"
              | Some d -> Printf.sprintf "%+.1f%%" d)
              (H.verdict_string t.H.verdict))
          ts);
      if !failures = [] then p "\nAll paper-accuracy numbers match the baseline.\n"
      else begin
        p "\n### Failures\n\n";
        List.iter (fun f -> p "- `%s`\n" f) (List.rev !failures)
      end)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse files tol cur_s speedup min_speedup md hist = function
    | [] -> (List.rev files, tol, cur_s, speedup, min_speedup, md, hist)
    | "--wallclock-tolerance" :: v :: rest ->
      parse files (float_of_string v) cur_s speedup min_speedup md hist rest
    | "--current-seconds" :: v :: rest ->
      parse files tol (Some (float_of_string v)) speedup min_speedup md hist
        rest
    | "--speedup" :: v :: rest ->
      parse files tol cur_s (Some (float_of_string v)) min_speedup md hist rest
    | "--min-speedup" :: v :: rest ->
      parse files tol cur_s speedup (Some (float_of_string v)) md hist rest
    | "--markdown" :: v :: rest ->
      parse files tol cur_s speedup min_speedup (Some v) hist rest
    | "--history" :: v :: rest ->
      parse files tol cur_s speedup min_speedup md (Some v) rest
    | a :: rest -> parse (a :: files) tol cur_s speedup min_speedup md hist rest
  in
  let files, tolerance, cur_seconds, speedup, min_speedup_arg, md, hist =
    parse [] 0.10 None None None None None (List.tl args)
  in
  let base_path, cur_path =
    match files with
    | [ b; c ] -> (b, c)
    | _ ->
      prerr_endline "usage: check_bench BASELINE.json CURRENT.json [options]";
      exit 2
  in
  let base = load base_path and cur = load cur_path in
  let base_sections = Option.value ~default:(J.Obj []) (find "sections" base)
  and cur_sections = Option.value ~default:(J.Obj []) (find "sections" cur) in
  List.iter
    (fun (name, b) ->
      match find name cur_sections with
      | None -> fail "section %S missing from current run" name
      | Some c ->
        if String.equal name "wallclock" then
          compare_wallclock ~tolerance b c
        else if String.equal name "autotune" then compare_autotune b c
        else if String.equal name "engines" || String.equal name "service"
        then
          (* Machine-dependent throughput: gated via meta below. *)
          ()
        else compare_exact name b c)
    (obj_assoc base_sections);
  List.iter
    (fun (name, _) ->
      if
        find name base_sections = None
        && not (String.equal name "engines" || String.equal name "service")
      then note "section %S not in baseline (refresh bench/baseline.json)" name)
    (obj_assoc cur_sections);
  let meta = Option.value ~default:(J.Obj []) (find "meta" base) in
  (match (cur_seconds, Option.bind (find "par_seconds" meta) num) with
  | Some cur_s, Some base_s ->
    if cur_s > base_s *. (1. +. tolerance) then
      fail "bench wall-clock regressed %.1fs -> %.1fs (+%.0f%% > %.0f%%)"
        base_s cur_s
        ((cur_s /. base_s -. 1.) *. 100.)
        (tolerance *. 100.)
    else note "bench wall-clock %.1fs (baseline %.1fs)" cur_s base_s
  | Some cur_s, None -> note "bench wall-clock %.1fs (no baseline seconds)" cur_s
  | None, _ -> ());
  let min_speedup =
    match min_speedup_arg with
    | Some m -> Some m
    | None -> Option.bind (find "min_speedup" meta) num
  in
  (match (speedup, min_speedup) with
  | Some s, Some m ->
    if s < m then
      fail "parallel harness speedup %.2fx below the %.2fx gate" s m
    else note "parallel harness speedup %.2fx (gate: >= %.2fx)" s m
  | Some s, None -> note "parallel harness speedup %.2fx (no gate)" s
  | None, _ -> ());
  (* The engines section: per-engine sim-throughput speedup over the
     cycle stepper on the fuzz corpus.  The gates live in the baseline
     meta as min_<engine>_speedup keys; both directions must agree —
     a measured speedup without its gate means the baseline predates
     the engine, a gate without its row means an engine fell out of the
     bench — and either way the mismatch fails loudly instead of
     degrading into an unguarded engine. *)
  let gate_engines =
    List.filter_map
      (fun (k, v) ->
        if
          String.starts_with ~prefix:"min_" k
          && String.ends_with ~suffix:"_speedup" k
          && String.length k > String.length "min__speedup"
          (* min_service_* gates belong to the service section below,
             not to a simulation engine. *)
          && not (String.starts_with ~prefix:"min_service_" k)
        then
          Option.map
            (fun m ->
              (String.sub k 4 (String.length k - String.length "min__speedup"),
               m))
            (num v)
        else None)
      (obj_assoc meta)
  in
  (match find "engines" cur_sections with
  | None ->
    List.iter
      (fun (name, _) ->
        fail
          "baseline meta gates the %s engine but the current run has no \
           engines section"
          name)
      gate_engines
  | Some e ->
    let measured =
      List.filter_map
        (fun (k, v) ->
          if String.ends_with ~suffix:"_speedup" k then
            Option.map
              (fun s ->
                (String.sub k 0 (String.length k - String.length "_speedup"),
                 s))
              (num v)
          else None)
        (obj_assoc e)
    in
    if measured = [] then
      fail "engines section has no per-engine speedup numbers";
    List.iter
      (fun (name, s) ->
        match List.assoc_opt name gate_engines with
        | Some m ->
          if s < m then
            fail "%s-engine sim-throughput speedup %.2fx below the %.2fx gate"
              name s m
          else
            note "%s-engine sim-throughput speedup %.2fx (gate: >= %.2fx)"
              name s m
        | None ->
          fail
            "%s-engine speedup %.2fx has no min_%s_speedup gate in the \
             baseline meta; refresh it with bench/record_baseline.sh"
            name s name)
      measured;
    List.iter
      (fun (name, m) ->
        if not (List.mem_assoc name measured) then
          fail
            "baseline meta gates the %s engine at %.2fx but the current \
             engines section has no %s_speedup; refresh the baseline with \
             bench/record_baseline.sh if the engine was retired"
            name m name)
      gate_engines);
  (* The service section: warm-store throughput over cold, gated
     against meta.min_service_warm_speedup.  Both missing-key
     directions fail explicitly — never degrade into an unguarded
     cache. *)
  let service_gate = Option.bind (find "min_service_warm_speedup" meta) num in
  let service_measured =
    Option.bind (find "service" cur_sections) (fun s ->
        Option.bind (find "warm_speedup" s) num)
  in
  (match (service_gate, service_measured) with
  | Some m, Some s ->
    if s < m then
      fail "service warm-store speedup %.1fx below the %.1fx gate" s m
    else note "service warm-store speedup %.1fx (gate: >= %.1fx)" s m
  | Some m, None ->
    fail
      "baseline meta gates the service warm-store speedup at %.1fx but the \
       current run has no service.warm_speedup; refresh the baseline with \
       bench/record_baseline.sh if the section was retired"
      m
  | None, Some s ->
    fail
      "service warm-store speedup %.1fx has no min_service_warm_speedup \
       gate in the baseline meta; refresh it with bench/record_baseline.sh"
      s
  | None, None -> ());
  Option.iter check_history hist;
  (match md with
  | Some out -> markdown ~out ~cur ~speedup
  | None -> ());
  List.iter (fun n -> Printf.printf "note: %s\n" n) (List.rev !notes);
  if !failures = [] then print_endline "check_bench: OK"
  else begin
    List.iter (fun f -> Printf.printf "FAIL: %s\n" f) (List.rev !failures);
    Printf.printf "check_bench: %d failure(s)\n" (List.length !failures);
    exit 1
  end
