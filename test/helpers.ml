(* Shared helpers for the hand-written test suites (machine, verifier,
   telemetry, engine): program builders for one- and two-core machines,
   a simulator runner, registry compile-and-run, and the per-core cycle
   accounting check.  Keep this file dependency-light — it is linked
   into every test executable that lists it. *)

open Finepar_ir
open Finepar_machine

let b () = Program.Builder.create ()

let one_core ?(arrays = [||]) ?(queues = [||]) code_builder =
  let bb = b () in
  code_builder bb;
  { Program.cores = [| Program.Builder.finish bb |]; queues; arrays }

let two_cores ?(arrays = [||]) ~queues build0 build1 =
  let b0 = b () and b1 = b () in
  build0 b0;
  build1 b1;
  {
    Program.cores = [| Program.Builder.finish b0; Program.Builder.finish b1 |];
    queues;
    arrays;
  }

(* Build a simulator over [program] and run it to completion under the
   selected engine (default: the cycle stepper). *)
let run ?(config = Config.default) ?tracing ?engine ?(initial = []) program =
  let sim = Sim.create ?tracing ~config ~initial program in
  let cycles = Sim.run ?engine sim in
  (sim, cycles)

(* A single int queue from core 0 to core 1. *)
let q01 = [| { Isa.src = 0; dst = 1; cls = Isa.Qint } |]

let farr_layout name len base =
  { Program.arr_name = name; arr_ty = Types.F64; arr_len = len; arr_base = base }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Compile a registry kernel at [cores] and run it (tracing on) on its
   own workload; returns the compiled program and the finished
   simulator. *)
let sim_of ?engine ~cores name =
  let e =
    match Finepar_kernels.Registry.find name with
    | Some e -> e
    | None -> Alcotest.failf "kernel %s not in registry" name
  in
  let c =
    Finepar.Compiler.compile
      (Finepar.Compiler.default_config ~cores ())
      e.Finepar_kernels.Registry.kernel
  in
  let _, sim =
    Finepar.Runner.run_with_sim ~tracing:true ?engine
      ~workload:e.Finepar_kernels.Registry.workload c
  in
  (c, sim)

(* The telemetry accounting invariant: every (core, cycle) lands in
   exactly one counter, so each core's accounted cycles equal the run's
   total. *)
let check_accounting name (sim : Sim.t) =
  let cycles = sim.Sim.cycles in
  Array.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "%s core %d: every cycle accounted" name i)
        cycles (Sim.accounted_cycles s))
    sim.Sim.stats
