(* Differential tests for the simulation engines: the cycle stepper is
   the reference semantics, and every other engine — the event-driven
   fast-forward engine and the compiled (pre-specialized closure)
   engine — must be cycle-exact to it: identical final cycle counts,
   bit-identical architectural outputs, identical telemetry reports
   (every counter, stall-episode histogram and queue-occupancy
   histogram) and identical structured [Stuck] payloads.  Covered here:

   - the full kernel registry x {2, 4} cores x {default,
     high-transfer-latency, SMT core_map} configurations, crossed with
     issue widths {1, 2} and both transfer realizations (hardware
     queues / shared-cache valid-flag handshakes);
   - hand-built dual-issue units: an issue bundle split by a RAW hazard
     (the refused slot records no stall), and a shared-cache consumer
     whose flag read races the producer's flag write in the same cycle;
   - the checked-in fuzz corpus, each case under its own recorded
     configuration and placement;
   - hand-built deadlock / max-cycles / boundary programs (Stuck payload
     equality, including the cycle the simulator gave up at);
   - a latency-dominated pipeline where almost the whole run is
     fast-forwarded, checking every per-core counter survives the jump;
   - the pure fast-forward scheduling math (Engine.wake / segments);
   - specialization edge cases for the compiled engine: indirect
     addressing (including the out-of-bounds fault payload), data-
     dependent trip counts, the staggered halt handshake, and the
     one-sim-only contract of [Sim.specialize];
   - a qcheck property over random lib/fuzz cases: cross-engine
     equality plus the per-core accounting invariant under every
     engine. *)

open Finepar_ir
open Finepar_machine
module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Registry = Finepar_kernels.Registry

let engines = Engine.all

let report_json (r : Runner.run) =
  Finepar_telemetry.Json.to_string (Finepar.Report.to_json r.Runner.telemetry)

let check_pair what (a : Runner.run) (b : Runner.run) =
  Alcotest.(check int) (what ^ ": cycle counts equal") a.Runner.cycles
    b.Runner.cycles;
  Alcotest.(check bool)
    (what ^ ": outputs bit-identical")
    true
    (Eval.result_equal a.Runner.result b.Runner.result);
  Alcotest.(check string)
    (what ^ ": telemetry reports identical")
    (report_json a) (report_json b)

(* Run [what] under every engine via [run_of] and check each non-head
   engine against the head (the cycle stepper, by [Engine.all]'s
   order). *)
let check_all what run_of =
  match List.map (fun e -> (e, run_of e)) engines with
  | [] | [ _ ] -> Alcotest.failf "%s: need at least two engines" what
  | (e0, r0) :: rest ->
    List.iter
      (fun (e, r) ->
        check_pair
          (Printf.sprintf "%s [%s vs %s]" what (Engine.to_string e0)
             (Engine.to_string e))
          r0 r)
      rest

(* ------------------------------------------------------------------ *)
(* Registry differential sweep.                                        *)

(* The machine/placement variants.  The SMT variant packs the program's
   hardware threads two-per-physical-core; the map is sized from the
   compiled program because the partitioner can produce fewer threads
   than the requested core count.  The last three cross the tentpole
   knobs: dual-issue cores, shared-cache transfer lowering, and both at
   once. *)
module Comm = Finepar_transform.Comm

let dual = { Config.default with Config.issue_width = 2 }

let variants =
  [
    ("default", Config.default, false, Comm.Queues);
    ("transfer-latency-50", Config.with_transfer_latency 50 Config.default,
     false, Comm.Queues);
    ("smt", Config.default, true, Comm.Queues);
    ("dual-issue", dual, false, Comm.Queues);
    ("shared-cache", Config.default, false, Comm.Shared_cache);
    ("dual-issue+shared-cache", dual, false, Comm.Shared_cache);
  ]

let registry_sweep (e : Registry.entry) () =
  List.iter
    (fun cores ->
      List.iter
        (fun (vname, machine, smt, comm_mode) ->
          let config =
            {
              (Compiler.default_config ~cores ()) with
              Compiler.machine;
              comm_mode;
            }
          in
          let c = Compiler.compile config e.Registry.kernel in
          let n_threads =
            Array.length
              c.Compiler.code.Finepar_codegen.Lower.program
                .Finepar_machine.Program.cores
          in
          let core_map =
            if smt then
              Some (Array.init n_threads (fun i -> i mod max 1 (n_threads / 2)))
            else None
          in
          let what =
            Printf.sprintf "%s cores=%d %s" e.Registry.kernel.Kernel.name cores
              vname
          in
          check_all what (fun engine ->
              Runner.run ~workload:e.Registry.workload ?core_map ~engine c))
        variants)
    [ 2; 4 ]

let registry_cases =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case e.Registry.kernel.Kernel.name `Quick
        (registry_sweep e))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Fuzz corpus differential.                                           *)

let test_corpus_differential () =
  let files = Finepar_fuzz.Corpus.files "fuzz_corpus" in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.iter
    (fun path ->
      let entry = Finepar_fuzz.Corpus.load_file path in
      let case = entry.Finepar_fuzz.Corpus.case in
      let c =
        Compiler.compile case.Finepar_fuzz.Gen.config
          case.Finepar_fuzz.Gen.kernel
      in
      let n_threads =
        Array.length
          c.Compiler.code.Finepar_codegen.Lower.program
            .Finepar_machine.Program.cores
      in
      let core_map =
        Finepar_fuzz.Gen.materialize case.Finepar_fuzz.Gen.placement n_threads
      in
      let workload =
        Finepar_kernels.Workload.default
          ~seed:case.Finepar_fuzz.Gen.workload_seed case.Finepar_fuzz.Gen.kernel
      in
      check_all (Filename.basename path) (fun engine ->
          Runner.run ~check:false ~workload ~core_map ~engine c))
    files

(* ------------------------------------------------------------------ *)
(* Stuck payload equality.                                             *)

(* Run [program] under one engine; returns the structured Stuck payload
   and the partial-run simulator, or the cycle count if it finished. *)
let stuck_of ?(config = Config.default) program engine =
  let sim = Sim.create ~config ~initial:[] program in
  match Sim.run ~engine sim with
  | cycles -> Error cycles
  | exception Sim.Stuck st -> Ok (st, sim)

let check_stuck_pair what ?config program =
  match List.map (fun e -> (e, stuck_of ?config program e)) engines with
  | [] | [ _ ] -> Alcotest.failf "%s: need at least two engines" what
  | (e0, head) :: rest ->
    List.iter
      (fun (e, outcome) ->
        let what =
          Printf.sprintf "%s [%s vs %s]" what (Engine.to_string e0)
            (Engine.to_string e)
        in
        match (head, outcome) with
        | Ok (a, sim_a), Ok (b, sim_b) ->
          Alcotest.(check int)
            (what ^ ": stuck at the same cycle")
            a.Sim.st_cycle b.Sim.st_cycle;
          Alcotest.(check string)
            (what ^ ": identical stuck message")
            (Sim.stuck_message a) (Sim.stuck_message b);
          Alcotest.(check bool)
            (what ^ ": identical blocked set")
            true
            (a.Sim.st_blocked = b.Sim.st_blocked);
          Alcotest.(check bool)
            (what ^ ": identical queue occupancies")
            true
            (a.Sim.st_queues = b.Sim.st_queues);
          (* The partial run's accounting must also agree, per core. *)
          Array.iteri
            (fun i (sa : Sim.core_stats) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: core %d stats equal" what i)
                true
                (sa = sim_b.Sim.stats.(i)))
            sim_a.Sim.stats
        | Error cy_a, Error cy_b ->
          Alcotest.failf "%s: expected Stuck, both engines finished (%d, %d)"
            what cy_a cy_b
        | Ok _, Error cy | Error cy, Ok _ ->
          Alcotest.failf
            "%s: one engine finished in %d cycles, the other got stuck" what cy)
      rest

let test_deadlock_payloads () =
  (* A consumer dequeuing from a queue that is never fed. *)
  let starved =
    Helpers.two_cores ~queues:Helpers.q01
      (fun bb -> Program.Builder.emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  check_stuck_pair "starved consumer" starved;
  (* Crossed dependency: each core first dequeues what the other has not
     yet sent — a two-core wait-for cycle. *)
  let crossed =
    Helpers.two_cores
      ~queues:
        [|
          { Isa.src = 0; dst = 1; cls = Isa.Qint };
          { Isa.src = 1; dst = 0; cls = Isa.Qint };
        |]
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 1));
        emit bb (Isa.Enq (0, d));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb (Isa.Enq (1, d));
        emit bb Isa.Halt)
  in
  check_stuck_pair "crossed dequeues" crossed

let infinite_loop =
  Helpers.one_core (fun bb ->
      let open Program.Builder in
      let r = fresh_reg bb in
      emit bb (Isa.Li (r, Types.VInt 1));
      let top = fresh_label bb in
      place_label bb top;
      emit bb (Isa.Bin (Types.Add, r, r, r));
      emit bb (Isa.Jmp top))

let test_max_cycles_payloads () =
  let config = { Config.default with Config.max_cycles = 50 } in
  check_stuck_pair "max-cycles budget" ~config infinite_loop

let test_max_cycles_boundary () =
  (* A run that halts in exactly max_cycles completes under both engines
     (the budget is an inclusive bound); one cycle less and both raise at
     the same cycle. *)
  let program =
    Helpers.one_core (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 41));
        emit bb (Isa.Un (Types.Neg, r, r));
        emit bb Isa.Halt)
  in
  let _, cycles = Helpers.run program in
  let config = { Config.default with Config.max_cycles = cycles } in
  List.iter
    (fun engine ->
      let _, cy = Helpers.run ~config ~engine program in
      Alcotest.(check int)
        (Printf.sprintf "%s engine finishes on the boundary"
           (Engine.to_string engine))
        cycles cy)
    engines;
  let tight = { Config.default with Config.max_cycles = cycles - 1 } in
  check_stuck_pair "one below the boundary" ~config:tight program

(* ------------------------------------------------------------------ *)
(* Fast-forward behaviour on a latency-dominated pipeline.              *)

let test_fast_forward_counters () =
  (* One value crosses a transfer_latency=100 queue: the consumer's wait
     is almost entirely fast-forwardable, and every counter the stepper
     records must survive the jump unchanged. *)
  let config =
    { (Config.with_transfer_latency 100 Config.default) with
      Config.queue_len = 1
    }
  in
  let program =
    Helpers.two_cores ~queues:Helpers.q01
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 7));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb and e = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb (Isa.Bin (Types.Add, e, d, d));
        emit bb Isa.Halt)
  in
  let sim_c, cy_c = Helpers.run ~config ~engine:Engine.Cycle program in
  Alcotest.(check bool) "consumer waited out the transfer latency" true
    (sim_c.Sim.stats.(1).Sim.stall_queue_empty > 90);
  Helpers.check_accounting "fast-forward (cycle)" sim_c;
  List.iter
    (fun engine ->
      let name = Engine.to_string engine in
      let sim_e, cy_e = Helpers.run ~config ~engine program in
      Alcotest.(check int) (name ^ ": cycle counts equal") cy_c cy_e;
      Array.iteri
        (fun i (sc : Sim.core_stats) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: core %d stats equal" name i)
            true
            (sc = sim_e.Sim.stats.(i)))
        sim_c.Sim.stats;
      Alcotest.(check bool)
        (name ^ ": stall-episode histograms equal")
        true
        (Array.for_all2
           (fun a b ->
             Finepar_telemetry.Histogram.buckets a
             = Finepar_telemetry.Histogram.buckets b)
           sim_c.Sim.stall_hist sim_e.Sim.stall_hist);
      Alcotest.(check bool)
        (name ^ ": dequeued value identical")
        true
        (Types.value_equal (Sim.reg_value sim_c 1 1) (Sim.reg_value sim_e 1 1));
      Helpers.check_accounting ("fast-forward (" ^ name ^ ")") sim_e)
    (List.filter (fun e -> e <> Engine.Cycle) engines)

(* ------------------------------------------------------------------ *)
(* The pure scheduling math.                                            *)

let test_wake_math () =
  let p ?(m = 0) ?(r = 0) gate =
    { Engine.pr_min_issue = m; pr_operands_at = r; pr_gate = gate }
  in
  Alcotest.(check bool) "free core wakes at max(min_issue, operands)" true
    (Engine.wake (p ~m:3 ~r:7 Engine.Free) = Engine.At 7);
  Alcotest.(check bool) "dequeue wakes at head visibility" true
    (Engine.wake (p ~m:2 ~r:0 (Engine.Head_at 40)) = Engine.At 40);
  Alcotest.(check bool) "branch penalty dominates an early head" true
    (Engine.wake (p ~m:50 ~r:0 (Engine.Head_at 40)) = Engine.At 50);
  Alcotest.(check bool) "externally gated core never self-wakes" true
    (Engine.wake (p ~m:9 ~r:9 Engine.External) = Engine.Never);
  Alcotest.(check bool) "min_wake ignores Never" true
    (Engine.min_wake Engine.Never (Engine.At 5) = Engine.At 5);
  Alcotest.(check bool) "min_wake takes the earlier" true
    (Engine.min_wake (Engine.At 9) (Engine.At 5) = Engine.At 5)

let test_segments_math () =
  (* branch wait until min_issue, operand stall until operands_at, then
     the queue gate; the counts always sum to the window length. *)
  let p =
    { Engine.pr_min_issue = 12; pr_operands_at = 16; pr_gate = Engine.External }
  in
  Alcotest.(check (triple int int int))
    "three segments" (2, 4, 4)
    (Engine.segments p ~from:10 ~until:20);
  Alcotest.(check (triple int int int))
    "window past both marks is all queue wait" (0, 0, 5)
    (Engine.segments p ~from:20 ~until:25);
  Alcotest.(check (triple int int int))
    "window before min_issue is all branch wait" (5, 0, 0)
    (Engine.segments p ~from:5 ~until:10);
  let free =
    { Engine.pr_min_issue = 30; pr_operands_at = 0; pr_gate = Engine.Free }
  in
  Alcotest.(check (triple int int int))
    "branch-only window on a free core" (10, 0, 0)
    (Engine.segments free ~from:20 ~until:30)

let test_engine_names () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Engine.to_string e ^ " round-trips")
        true
        (Engine.of_string (Engine.to_string e) = Some e))
    Engine.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Engine.of_string "warp" = None)

(* ------------------------------------------------------------------ *)
(* Compiled-engine specialization edge cases.                           *)

(* Indirect addressing: the specialized Load/Store closures resolve the
   array to a direct slot at specialize time, but the index register is
   read at run time — in bounds the access must behave like the stepper,
   and out of bounds it must raise the stepper's exact fault payload. *)
let test_specialize_indirect () =
  let arrays = [| Helpers.farr_layout "a" 4 64 |] in
  let in_bounds =
    Helpers.one_core ~arrays (fun bb ->
        let open Program.Builder in
        let v = fresh_reg bb and idx = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (v, Types.VFloat 2.5));
        emit bb (Isa.Li (idx, Types.VInt 3));
        emit bb (Isa.Store (0, idx, v));
        emit bb (Isa.Load (d, 0, idx));
        emit bb Isa.Halt)
  in
  (match List.map (fun engine -> Helpers.run ~engine in_bounds) engines with
  | (sim0, cy0) :: rest ->
    List.iter
      (fun (sim, cy) ->
        Alcotest.(check int) "indirect store/load: cycles equal" cy0 cy;
        Alcotest.(check bool) "indirect store/load: value equal" true
          (Types.value_equal (Sim.reg_value sim0 0 2) (Sim.reg_value sim 0 2)))
      rest
  | _ -> assert false);
  let out_of_bounds =
    Helpers.one_core ~arrays (fun bb ->
        let open Program.Builder in
        let idx = fresh_reg bb and d = fresh_reg bb in
        emit bb (Isa.Li (idx, Types.VInt 9));
        emit bb (Isa.Load (d, 0, idx));
        emit bb Isa.Halt)
  in
  check_stuck_pair "out-of-bounds indirect load" out_of_bounds

(* Data-dependent trip counts: the branch targets are baked at
   specialize time but the taken/not-taken decision is a run-time value,
   so the same specialized code must walk a workload-sized loop.  Two
   workloads with different bounds keep the engines in lockstep on
   both. *)
let test_specialize_trip_counts () =
  let arrays =
    [| { Program.arr_name = "n"; arr_ty = Types.I64; arr_len = 1; arr_base = 64 } |]
  in
  let program =
    Helpers.one_core ~arrays (fun bb ->
        let open Program.Builder in
        let n = fresh_reg bb
        and one = fresh_reg bb
        and acc = fresh_reg bb
        and idx = fresh_reg bb in
        emit bb (Isa.Li (idx, Types.VInt 0));
        emit bb (Isa.Load (n, 0, idx));
        emit bb (Isa.Li (one, Types.VInt 1));
        emit bb (Isa.Li (acc, Types.VInt 0));
        let top = fresh_label bb in
        place_label bb top;
        emit bb (Isa.Bin (Types.Add, acc, acc, n));
        emit bb (Isa.Bin (Types.Sub, n, n, one));
        emit bb (Isa.Bnz (n, top));
        emit bb Isa.Halt)
  in
  let sum_to k = k * (k + 1) / 2 in
  List.iter
    (fun trip ->
      let initial = [ ("n", [| Types.VInt trip |]) ] in
      match
        List.map (fun engine -> Helpers.run ~engine ~initial program) engines
      with
      | (sim0, cy0) :: rest ->
        Alcotest.(check bool)
          (Printf.sprintf "trip=%d: loop actually summed" trip)
          true
          (Types.value_equal (Sim.reg_value sim0 0 2)
             (Types.VInt (sum_to trip)));
        List.iter
          (fun (sim, cy) ->
            Alcotest.(check int)
              (Printf.sprintf "trip=%d: cycles equal" trip)
              cy0 cy;
            Array.iteri
              (fun i (s0 : Sim.core_stats) ->
                Alcotest.(check bool)
                  (Printf.sprintf "trip=%d: core %d stats equal" trip i)
                  true
                  (s0 = sim.Sim.stats.(i)))
              sim0.Sim.stats)
          rest
      | _ -> assert false)
    [ 1; 5; 13 ]

(* The spawn/halt handshake: cores retire at different cycles, and the
   [idle_after_halt] / [finished_at] accounting of the early finishers
   must survive both the live-count bookkeeping of the compiled engine
   and its fast-forward windows. *)
let test_specialize_halt_handshake () =
  let queues = [| { Isa.src = 1; dst = 2; cls = Isa.Qint } |] in
  let core0 bb = Program.Builder.emit bb Isa.Halt in
  let core1 bb =
    let open Program.Builder in
    let n = fresh_reg bb and one = fresh_reg bb in
    emit bb (Isa.Li (n, Types.VInt 4));
    emit bb (Isa.Li (one, Types.VInt 1));
    let top = fresh_label bb in
    place_label bb top;
    emit bb (Isa.Enq (0, n));
    emit bb (Isa.Bin (Types.Sub, n, n, one));
    emit bb (Isa.Bnz (n, top));
    emit bb Isa.Halt
  in
  let core2 bb =
    let open Program.Builder in
    let d = fresh_reg bb and acc = fresh_reg bb in
    emit bb (Isa.Li (acc, Types.VInt 0));
    for _ = 1 to 4 do
      emit bb (Isa.Deq (d, 0));
      emit bb (Isa.Bin (Types.Add, acc, acc, d))
    done;
    emit bb Isa.Halt
  in
  let program =
    let b0 = Helpers.b () and b1 = Helpers.b () and b2 = Helpers.b () in
    core0 b0;
    core1 b1;
    core2 b2;
    {
      Program.cores =
        [|
          Program.Builder.finish b0;
          Program.Builder.finish b1;
          Program.Builder.finish b2;
        |];
      queues;
      arrays = [||];
    }
  in
  match List.map (fun engine -> Helpers.run ~engine program) engines with
  | (sim0, cy0) :: rest ->
    Alcotest.(check bool) "core 0 idled after its early halt" true
      (sim0.Sim.stats.(0).Sim.idle_after_halt > 0);
    Alcotest.(check bool) "cores retired at distinct cycles" true
      (sim0.Sim.stats.(0).Sim.finished_at < sim0.Sim.stats.(1).Sim.finished_at
      && sim0.Sim.stats.(1).Sim.finished_at
         < sim0.Sim.stats.(2).Sim.finished_at);
    Helpers.check_accounting "halt handshake (head)" sim0;
    List.iter
      (fun (sim, cy) ->
        Alcotest.(check int) "halt handshake: cycles equal" cy0 cy;
        Array.iteri
          (fun i (s0 : Sim.core_stats) ->
            Alcotest.(check bool)
              (Printf.sprintf "halt handshake: core %d stats equal" i)
              true
              (s0 = sim.Sim.stats.(i)))
          sim0.Sim.stats)
      rest
  | _ -> assert false

(* A specialized value is bound to the sim it was compiled from. *)
let test_specialize_one_sim_only () =
  let program =
    Helpers.one_core (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 1));
        emit bb Isa.Halt)
  in
  let sim_a = Sim.create ~config:Config.default ~initial:[] program in
  let sim_b = Sim.create ~config:Config.default ~initial:[] program in
  let spec = Sim.specialize sim_a in
  Alcotest.check_raises "foreign specialization rejected"
    (Invalid_argument "Sim.run: specialized value belongs to a different sim")
    (fun () ->
      ignore (Sim.run ~engine:Engine.Compiled ~specialized:spec sim_b));
  Alcotest.(check bool) "the right sim still runs" true
    (Sim.run ~engine:Engine.Compiled ~specialized:spec sim_a > 0)

(* ------------------------------------------------------------------ *)
(* Dual-issue and shared-cache hand-built units.                        *)

(* An issue bundle split by a RAW hazard: at width 2 the two Li's pair
   up, the first Add issues alone (its consumer reads a result that is
   only ready next cycle), and the dependent Add then pairs with a
   following independent one.  The refused slot must record NO stall —
   the cycle is already accounted to the slot-1 issue. *)
let test_dual_issue_raw_split () =
  let program =
    Helpers.one_core (fun bb ->
        let open Program.Builder in
        let r0 = fresh_reg bb
        and r1 = fresh_reg bb
        and r2 = fresh_reg bb
        and r3 = fresh_reg bb
        and r4 = fresh_reg bb in
        emit bb (Isa.Li (r0, Types.VInt 1));
        emit bb (Isa.Li (r1, Types.VInt 2));
        emit bb (Isa.Bin (Types.Add, r2, r0, r1));
        emit bb (Isa.Bin (Types.Add, r3, r2, r2));
        emit bb (Isa.Bin (Types.Add, r4, r0, r1));
        emit bb Isa.Halt)
  in
  let wide = { Config.default with Config.issue_width = 2 } in
  (match List.map (fun engine -> Helpers.run ~config:wide ~engine program) engines
   with
  | (sim0, cy0) :: rest ->
    Alcotest.(check int) "width 2: Li pair and Add pair dual-issued" 2
      sim0.Sim.stats.(0).Sim.dual_issued;
    Alcotest.(check int) "width 2: the refused slot recorded no stall" 0
      (Sim.stall_total sim0.Sim.stats.(0));
    Alcotest.(check bool) "width 2: dependent Add computed through the split"
      true
      (Types.value_equal (Sim.reg_value sim0 0 3) (Types.VInt 6));
    Helpers.check_accounting "raw split (head)" sim0;
    List.iter
      (fun (sim, cy) ->
        Alcotest.(check int) "raw split: cycles equal" cy0 cy;
        Array.iteri
          (fun i (s0 : Sim.core_stats) ->
            Alcotest.(check bool)
              (Printf.sprintf "raw split: core %d stats equal" i)
              true
              (s0 = sim.Sim.stats.(i)))
          sim0.Sim.stats;
        Helpers.check_accounting "raw split (other)" sim)
      rest
  | _ -> assert false);
  (* The same program at width 1 never dual-issues and takes strictly
     longer. *)
  let sim1, cy1 = Helpers.run program in
  let _, cy2 = Helpers.run ~config:wide program in
  Alcotest.(check int) "width 1: no dual issues" 0
    sim1.Sim.stats.(0).Sim.dual_issued;
  Alcotest.(check bool) "width 2 is strictly faster" true (cy2 < cy1)

(* A shared-cache style handshake built by hand: the consumer spins on a
   valid flag the producer sets after writing the data word.  The
   consumer's flag load can land in the same cycle as the producer's
   flag store; the deterministic core sweep order resolves the race, and
   every engine must resolve it identically.  Both producer placements
   are run so the race is exercised from both sides of the sweep. *)
let shared_handshake ~producer_first =
  let arrays =
    [|
      { Program.arr_name = "flag"; arr_ty = Types.I64; arr_len = 1; arr_base = 64 };
      { Program.arr_name = "data"; arr_ty = Types.I64; arr_len = 1; arr_base = 128 };
    |]
  in
  let producer bb =
    let open Program.Builder in
    let v = fresh_reg bb and z = fresh_reg bb and one = fresh_reg bb in
    emit bb (Isa.Li (v, Types.VInt 42));
    emit bb (Isa.Li (z, Types.VInt 0));
    emit bb (Isa.Li (one, Types.VInt 1));
    emit bb (Isa.Store (1, z, v));
    emit bb (Isa.Store (0, z, one));
    emit bb Isa.Halt
  in
  let consumer bb =
    let open Program.Builder in
    let z = fresh_reg bb and f = fresh_reg bb and d = fresh_reg bb in
    emit bb (Isa.Li (z, Types.VInt 0));
    let spin = fresh_label bb in
    place_label bb spin;
    emit bb (Isa.Load (f, 0, z));
    emit bb (Isa.Bz (f, spin));
    emit bb (Isa.Load (d, 1, z));
    emit bb Isa.Halt
  in
  if producer_first then
    Helpers.two_cores ~arrays ~queues:[||] producer consumer
  else Helpers.two_cores ~arrays ~queues:[||] consumer producer

let test_shared_flag_race () =
  List.iter
    (fun producer_first ->
      let what =
        if producer_first then "producer swept first" else "consumer swept first"
      in
      let program = shared_handshake ~producer_first in
      let consumer_core = if producer_first then 1 else 0 in
      match List.map (fun engine -> Helpers.run ~engine program) engines with
      | (sim0, cy0) :: rest ->
        Alcotest.(check bool)
          (what ^ ": consumer read the data word, not a torn value")
          true
          (Types.value_equal
             (Sim.reg_value sim0 consumer_core 2)
             (Types.VInt 42));
        Alcotest.(check bool) (what ^ ": consumer actually spun") true
          (sim0.Sim.stats.(consumer_core).Sim.instrs > 5);
        Helpers.check_accounting (what ^ " (head)") sim0;
        List.iter
          (fun (sim, cy) ->
            Alcotest.(check int) (what ^ ": cycles equal") cy0 cy;
            Alcotest.(check bool)
              (what ^ ": consumer value equal")
              true
              (Types.value_equal
                 (Sim.reg_value sim consumer_core 2)
                 (Sim.reg_value sim0 consumer_core 2));
            Array.iteri
              (fun i (s0 : Sim.core_stats) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: core %d stats equal" what i)
                  true
                  (s0 = sim.Sim.stats.(i)))
              sim0.Sim.stats)
          rest
      | _ -> assert false)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* qcheck: random cases are cycle-exact across engines.                 *)

let arbitrary_case =
  QCheck.make
    (QCheck.Gen.map
       (fun seed -> Finepar_fuzz.Gen.case_of_seed seed)
       (QCheck.Gen.int_bound 1_000_000))
    ~print:(fun case ->
      Fmt.to_to_string Kernel.pp case.Finepar_fuzz.Gen.kernel)

let prop_cross_engine =
  QCheck.Test.make ~count:80
    ~name:"random cases: all engines agree and account every cycle"
    arbitrary_case
    (fun case ->
      match
        Compiler.compile case.Finepar_fuzz.Gen.config
          case.Finepar_fuzz.Gen.kernel
      with
      | exception _ -> true (* rejected cases are the fuzz driver's concern *)
      | c -> (
        let n_threads =
          Array.length
            c.Compiler.code.Finepar_codegen.Lower.program
              .Finepar_machine.Program.cores
        in
        let core_map =
          Finepar_fuzz.Gen.materialize case.Finepar_fuzz.Gen.placement n_threads
        in
        let workload =
          Finepar_kernels.Workload.default
            ~seed:case.Finepar_fuzz.Gen.workload_seed
            case.Finepar_fuzz.Gen.kernel
        in
        let outcome engine =
          match
            Runner.run_with_sim ~check:false ~workload ~core_map ~engine c
          with
          | run, sim -> Ok (run, sim)
          | exception Sim.Stuck st -> Error (Sim.stuck_message st)
          | exception e -> Error (Printexc.to_string e)
        in
        let accounted (sim : Sim.t) =
          Array.for_all
            (fun s -> Sim.accounted_cycles s = sim.Sim.cycles)
            sim.Sim.stats
        in
        let agrees head other =
          match (head, other) with
          | Ok ((run_c : Runner.run), _), Ok ((run_e : Runner.run), sim_e) ->
            run_c.Runner.cycles = run_e.Runner.cycles
            && Eval.result_equal run_c.Runner.result run_e.Runner.result
            && String.equal (report_json run_c) (report_json run_e)
            && accounted sim_e
          | Error a, Error b -> String.equal a b
          | Ok _, Error _ | Error _, Ok _ -> false
        in
        match List.map outcome engines with
        | [] | [ _ ] -> false
        | head :: rest ->
          (match head with Ok (_, sim) -> accounted sim | Error _ -> true)
          && List.for_all (agrees head) rest))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ("registry", registry_cases);
      ( "corpus",
        [
          Alcotest.test_case "corpus differential" `Quick
            test_corpus_differential;
        ] );
      ( "stuck",
        [
          Alcotest.test_case "deadlock payloads" `Quick test_deadlock_payloads;
          Alcotest.test_case "max-cycles payloads" `Quick
            test_max_cycles_payloads;
          Alcotest.test_case "max-cycles boundary" `Quick
            test_max_cycles_boundary;
        ] );
      ( "fast-forward",
        [
          Alcotest.test_case "latency-dominated pipeline" `Quick
            test_fast_forward_counters;
          Alcotest.test_case "wake math" `Quick test_wake_math;
          Alcotest.test_case "segment math" `Quick test_segments_math;
          Alcotest.test_case "engine names" `Quick test_engine_names;
        ] );
      ( "specialize",
        [
          Alcotest.test_case "indirect addressing" `Quick
            test_specialize_indirect;
          Alcotest.test_case "data-dependent trip counts" `Quick
            test_specialize_trip_counts;
          Alcotest.test_case "halt handshake" `Quick
            test_specialize_halt_handshake;
          Alcotest.test_case "one sim only" `Quick test_specialize_one_sim_only;
        ] );
      ( "dual-issue+shared-cache",
        [
          Alcotest.test_case "RAW hazard splits the bundle" `Quick
            test_dual_issue_raw_split;
          Alcotest.test_case "flag read races the flag write" `Quick
            test_shared_flag_race;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_cross_engine ] );
    ]
