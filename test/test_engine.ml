(* Differential tests for the two simulation engines: the cycle stepper
   (the reference semantics) and the event-driven fast-forward engine
   must be cycle-exact to each other — identical final cycle counts,
   bit-identical architectural outputs, identical telemetry reports
   (every counter, stall-episode histogram and queue-occupancy
   histogram) and identical structured [Stuck] payloads.  Covered here:

   - the full kernel registry x {2, 4} cores x {default,
     high-transfer-latency, SMT core_map} configurations;
   - the checked-in fuzz corpus, each case under its own recorded
     configuration and placement;
   - hand-built deadlock / max-cycles / boundary programs (Stuck payload
     equality, including the cycle the simulator gave up at);
   - a latency-dominated pipeline where almost the whole run is
     fast-forwarded, checking every per-core counter survives the jump;
   - the pure fast-forward scheduling math (Engine.wake / segments);
   - a qcheck property over random lib/fuzz cases: cross-engine
     equality plus the per-core accounting invariant under both
     engines. *)

open Finepar_ir
open Finepar_machine
module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Registry = Finepar_kernels.Registry

let engines = [ Engine.Cycle; Engine.Event ]

let report_json (r : Runner.run) =
  Finepar_telemetry.Json.to_string (Finepar.Report.to_json r.Runner.telemetry)

let check_pair what (a : Runner.run) (b : Runner.run) =
  Alcotest.(check int) (what ^ ": cycle counts equal") a.Runner.cycles
    b.Runner.cycles;
  Alcotest.(check bool)
    (what ^ ": outputs bit-identical")
    true
    (Eval.result_equal a.Runner.result b.Runner.result);
  Alcotest.(check string)
    (what ^ ": telemetry reports identical")
    (report_json a) (report_json b)

(* ------------------------------------------------------------------ *)
(* Registry differential sweep.                                        *)

(* The three machine/placement variants.  The SMT variant packs the
   program's hardware threads two-per-physical-core; the map is sized
   from the compiled program because the partitioner can produce fewer
   threads than the requested core count. *)
let variants =
  [
    ("default", Config.default, false);
    ("transfer-latency-50", Config.with_transfer_latency 50 Config.default,
     false);
    ("smt", Config.default, true);
  ]

let registry_sweep (e : Registry.entry) () =
  List.iter
    (fun cores ->
      List.iter
        (fun (vname, machine, smt) ->
          let config =
            { (Compiler.default_config ~cores ()) with Compiler.machine }
          in
          let c = Compiler.compile config e.Registry.kernel in
          let n_threads =
            Array.length
              c.Compiler.code.Finepar_codegen.Lower.program
                .Finepar_machine.Program.cores
          in
          let core_map =
            if smt then
              Some (Array.init n_threads (fun i -> i mod max 1 (n_threads / 2)))
            else None
          in
          let what =
            Printf.sprintf "%s cores=%d %s" e.Registry.kernel.Kernel.name cores
              vname
          in
          match
            List.map
              (fun engine ->
                Runner.run ~workload:e.Registry.workload ?core_map ~engine c)
              engines
          with
          | [ cy; ev ] -> check_pair what cy ev
          | _ -> assert false)
        variants)
    [ 2; 4 ]

let registry_cases =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case e.Registry.kernel.Kernel.name `Quick
        (registry_sweep e))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Fuzz corpus differential.                                           *)

let test_corpus_differential () =
  let files = Finepar_fuzz.Corpus.files "fuzz_corpus" in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.iter
    (fun path ->
      let entry = Finepar_fuzz.Corpus.load_file path in
      let case = entry.Finepar_fuzz.Corpus.case in
      let c =
        Compiler.compile case.Finepar_fuzz.Gen.config
          case.Finepar_fuzz.Gen.kernel
      in
      let n_threads =
        Array.length
          c.Compiler.code.Finepar_codegen.Lower.program
            .Finepar_machine.Program.cores
      in
      let core_map =
        Finepar_fuzz.Gen.materialize case.Finepar_fuzz.Gen.placement n_threads
      in
      let workload =
        Finepar_kernels.Workload.default
          ~seed:case.Finepar_fuzz.Gen.workload_seed case.Finepar_fuzz.Gen.kernel
      in
      match
        List.map
          (fun engine -> Runner.run ~check:false ~workload ~core_map ~engine c)
          engines
      with
      | [ cy; ev ] -> check_pair (Filename.basename path) cy ev
      | _ -> assert false)
    files

(* ------------------------------------------------------------------ *)
(* Stuck payload equality.                                             *)

(* Run [program] under one engine; returns the structured Stuck payload
   and the partial-run simulator, or the cycle count if it finished. *)
let stuck_of ?(config = Config.default) program engine =
  let sim = Sim.create ~config ~initial:[] program in
  match Sim.run ~engine sim with
  | cycles -> Error cycles
  | exception Sim.Stuck st -> Ok (st, sim)

let check_stuck_pair what ?config program =
  match
    ( stuck_of ?config program Engine.Cycle,
      stuck_of ?config program Engine.Event )
  with
  | Ok (a, sim_a), Ok (b, sim_b) ->
    Alcotest.(check int) (what ^ ": stuck at the same cycle") a.Sim.st_cycle
      b.Sim.st_cycle;
    Alcotest.(check string)
      (what ^ ": identical stuck message")
      (Sim.stuck_message a) (Sim.stuck_message b);
    Alcotest.(check bool)
      (what ^ ": identical blocked set")
      true
      (a.Sim.st_blocked = b.Sim.st_blocked);
    Alcotest.(check bool)
      (what ^ ": identical queue occupancies")
      true
      (a.Sim.st_queues = b.Sim.st_queues);
    (* The partial run's accounting must also agree, per core. *)
    Array.iteri
      (fun i (sa : Sim.core_stats) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: core %d stats equal" what i)
          true
          (sa = sim_b.Sim.stats.(i)))
      sim_a.Sim.stats
  | Error cy_a, Error cy_b ->
    Alcotest.failf "%s: expected Stuck, both engines finished (%d, %d)" what
      cy_a cy_b
  | Ok _, Error cy | Error cy, Ok _ ->
    Alcotest.failf "%s: one engine finished in %d cycles, the other got stuck"
      what cy

let test_deadlock_payloads () =
  (* A consumer dequeuing from a queue that is never fed. *)
  let starved =
    Helpers.two_cores ~queues:Helpers.q01
      (fun bb -> Program.Builder.emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb Isa.Halt)
  in
  check_stuck_pair "starved consumer" starved;
  (* Crossed dependency: each core first dequeues what the other has not
     yet sent — a two-core wait-for cycle. *)
  let crossed =
    Helpers.two_cores
      ~queues:
        [|
          { Isa.src = 0; dst = 1; cls = Isa.Qint };
          { Isa.src = 1; dst = 0; cls = Isa.Qint };
        |]
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 1));
        emit bb (Isa.Enq (0, d));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb (Isa.Enq (1, d));
        emit bb Isa.Halt)
  in
  check_stuck_pair "crossed dequeues" crossed

let infinite_loop =
  Helpers.one_core (fun bb ->
      let open Program.Builder in
      let r = fresh_reg bb in
      emit bb (Isa.Li (r, Types.VInt 1));
      let top = fresh_label bb in
      place_label bb top;
      emit bb (Isa.Bin (Types.Add, r, r, r));
      emit bb (Isa.Jmp top))

let test_max_cycles_payloads () =
  let config = { Config.default with Config.max_cycles = 50 } in
  check_stuck_pair "max-cycles budget" ~config infinite_loop

let test_max_cycles_boundary () =
  (* A run that halts in exactly max_cycles completes under both engines
     (the budget is an inclusive bound); one cycle less and both raise at
     the same cycle. *)
  let program =
    Helpers.one_core (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 41));
        emit bb (Isa.Un (Types.Neg, r, r));
        emit bb Isa.Halt)
  in
  let _, cycles = Helpers.run program in
  let config = { Config.default with Config.max_cycles = cycles } in
  List.iter
    (fun engine ->
      let _, cy = Helpers.run ~config ~engine program in
      Alcotest.(check int)
        (Printf.sprintf "%s engine finishes on the boundary"
           (Engine.to_string engine))
        cycles cy)
    engines;
  let tight = { Config.default with Config.max_cycles = cycles - 1 } in
  check_stuck_pair "one below the boundary" ~config:tight program

(* ------------------------------------------------------------------ *)
(* Fast-forward behaviour on a latency-dominated pipeline.              *)

let test_fast_forward_counters () =
  (* One value crosses a transfer_latency=100 queue: the consumer's wait
     is almost entirely fast-forwardable, and every counter the stepper
     records must survive the jump unchanged. *)
  let config =
    { (Config.with_transfer_latency 100 Config.default) with
      Config.queue_len = 1
    }
  in
  let program =
    Helpers.two_cores ~queues:Helpers.q01
      (fun bb ->
        let open Program.Builder in
        let r = fresh_reg bb in
        emit bb (Isa.Li (r, Types.VInt 7));
        emit bb (Isa.Enq (0, r));
        emit bb Isa.Halt)
      (fun bb ->
        let open Program.Builder in
        let d = fresh_reg bb and e = fresh_reg bb in
        emit bb (Isa.Deq (d, 0));
        emit bb (Isa.Bin (Types.Add, e, d, d));
        emit bb Isa.Halt)
  in
  let sim_c, cy_c = Helpers.run ~config ~engine:Engine.Cycle program in
  let sim_e, cy_e = Helpers.run ~config ~engine:Engine.Event program in
  Alcotest.(check int) "cycle counts equal" cy_c cy_e;
  Alcotest.(check bool) "consumer waited out the transfer latency" true
    (sim_c.Sim.stats.(1).Sim.stall_queue_empty > 90);
  Array.iteri
    (fun i (sc : Sim.core_stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d stats equal" i)
        true
        (sc = sim_e.Sim.stats.(i)))
    sim_c.Sim.stats;
  Alcotest.(check bool) "stall-episode histograms equal" true
    (Array.for_all2
       (fun a b ->
         Finepar_telemetry.Histogram.buckets a
         = Finepar_telemetry.Histogram.buckets b)
       sim_c.Sim.stall_hist sim_e.Sim.stall_hist);
  Alcotest.(check bool) "dequeued value identical" true
    (Types.value_equal (Sim.reg_value sim_c 1 1) (Sim.reg_value sim_e 1 1));
  Helpers.check_accounting "fast-forward (cycle)" sim_c;
  Helpers.check_accounting "fast-forward (event)" sim_e

(* ------------------------------------------------------------------ *)
(* The pure scheduling math.                                            *)

let test_wake_math () =
  let p ?(m = 0) ?(r = 0) gate =
    { Engine.pr_min_issue = m; pr_operands_at = r; pr_gate = gate }
  in
  Alcotest.(check bool) "free core wakes at max(min_issue, operands)" true
    (Engine.wake (p ~m:3 ~r:7 Engine.Free) = Engine.At 7);
  Alcotest.(check bool) "dequeue wakes at head visibility" true
    (Engine.wake (p ~m:2 ~r:0 (Engine.Head_at 40)) = Engine.At 40);
  Alcotest.(check bool) "branch penalty dominates an early head" true
    (Engine.wake (p ~m:50 ~r:0 (Engine.Head_at 40)) = Engine.At 50);
  Alcotest.(check bool) "externally gated core never self-wakes" true
    (Engine.wake (p ~m:9 ~r:9 Engine.External) = Engine.Never);
  Alcotest.(check bool) "min_wake ignores Never" true
    (Engine.min_wake Engine.Never (Engine.At 5) = Engine.At 5);
  Alcotest.(check bool) "min_wake takes the earlier" true
    (Engine.min_wake (Engine.At 9) (Engine.At 5) = Engine.At 5)

let test_segments_math () =
  (* branch wait until min_issue, operand stall until operands_at, then
     the queue gate; the counts always sum to the window length. *)
  let p =
    { Engine.pr_min_issue = 12; pr_operands_at = 16; pr_gate = Engine.External }
  in
  Alcotest.(check (triple int int int))
    "three segments" (2, 4, 4)
    (Engine.segments p ~from:10 ~until:20);
  Alcotest.(check (triple int int int))
    "window past both marks is all queue wait" (0, 0, 5)
    (Engine.segments p ~from:20 ~until:25);
  Alcotest.(check (triple int int int))
    "window before min_issue is all branch wait" (5, 0, 0)
    (Engine.segments p ~from:5 ~until:10);
  let free =
    { Engine.pr_min_issue = 30; pr_operands_at = 0; pr_gate = Engine.Free }
  in
  Alcotest.(check (triple int int int))
    "branch-only window on a free core" (10, 0, 0)
    (Engine.segments free ~from:20 ~until:30)

let test_engine_names () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Engine.to_string e ^ " round-trips")
        true
        (Engine.of_string (Engine.to_string e) = Some e))
    Engine.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Engine.of_string "warp" = None)

(* ------------------------------------------------------------------ *)
(* qcheck: random cases are cycle-exact across engines.                 *)

let arbitrary_case =
  QCheck.make
    (QCheck.Gen.map
       (fun seed -> Finepar_fuzz.Gen.case_of_seed seed)
       (QCheck.Gen.int_bound 1_000_000))
    ~print:(fun case ->
      Fmt.to_to_string Kernel.pp case.Finepar_fuzz.Gen.kernel)

let prop_cross_engine =
  QCheck.Test.make ~count:80
    ~name:"random cases: engines agree and both account every cycle"
    arbitrary_case
    (fun case ->
      match
        Compiler.compile case.Finepar_fuzz.Gen.config
          case.Finepar_fuzz.Gen.kernel
      with
      | exception _ -> true (* rejected cases are the fuzz driver's concern *)
      | c -> (
        let n_threads =
          Array.length
            c.Compiler.code.Finepar_codegen.Lower.program
              .Finepar_machine.Program.cores
        in
        let core_map =
          Finepar_fuzz.Gen.materialize case.Finepar_fuzz.Gen.placement n_threads
        in
        let workload =
          Finepar_kernels.Workload.default
            ~seed:case.Finepar_fuzz.Gen.workload_seed
            case.Finepar_fuzz.Gen.kernel
        in
        let outcome engine =
          match
            Runner.run_with_sim ~check:false ~workload ~core_map ~engine c
          with
          | run, sim -> Ok (run, sim)
          | exception Sim.Stuck st -> Error (Sim.stuck_message st)
          | exception e -> Error (Printexc.to_string e)
        in
        match (outcome Engine.Cycle, outcome Engine.Event) with
        | Ok (run_c, sim_c), Ok (run_e, sim_e) ->
          let accounted (sim : Sim.t) =
            Array.for_all
              (fun s -> Sim.accounted_cycles s = sim.Sim.cycles)
              sim.Sim.stats
          in
          run_c.Runner.cycles = run_e.Runner.cycles
          && Eval.result_equal run_c.Runner.result run_e.Runner.result
          && String.equal (report_json run_c) (report_json run_e)
          && accounted sim_c && accounted sim_e
        | Error a, Error b -> String.equal a b
        | Ok _, Error _ | Error _, Ok _ -> false))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ("registry", registry_cases);
      ( "corpus",
        [
          Alcotest.test_case "corpus differential" `Quick
            test_corpus_differential;
        ] );
      ( "stuck",
        [
          Alcotest.test_case "deadlock payloads" `Quick test_deadlock_payloads;
          Alcotest.test_case "max-cycles payloads" `Quick
            test_max_cycles_payloads;
          Alcotest.test_case "max-cycles boundary" `Quick
            test_max_cycles_boundary;
        ] );
      ( "fast-forward",
        [
          Alcotest.test_case "latency-dominated pipeline" `Quick
            test_fast_forward_counters;
          Alcotest.test_case "wake math" `Quick test_wake_math;
          Alcotest.test_case "segment math" `Quick test_segments_math;
          Alcotest.test_case "engine names" `Quick test_engine_names;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_cross_engine ] );
    ]
