(* Tests for the compile-and-simulate service:

   - wire round-trips: requests, responses, quoted atoms, hex floats
     (including non-finite weights) and full Report.t payloads;
   - cache key hygiene: every job component change is a different key,
     a code-version bump invalidates the whole store;
   - the store survives corruption: truncated / garbage / mismatched
     entries are misses (and are removed), never crashes;
   - eviction respects max_entries;
   - responses are byte-identical cached-vs-fresh and -j1-vs-jN;
   - errors are answered deterministically but never cached;
   - concurrent clients against one forked server over a Unix domain
     socket all get the same bytes. *)

module F = Finepar_fuzz
module Wire = Finepar_service.Wire
module Cache = Finepar_service.Cache
module Server = Finepar_service.Server
module Client = Finepar_service.Client
module Version = Finepar_service.Version

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "finepar-svc-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let job_of_case (c : F.Gen.case) =
  {
    Wire.kernel = c.F.Gen.kernel;
    config = c.F.Gen.config;
    sequential = false;
    placement = c.F.Gen.placement;
    workload = Wire.Seeded c.F.Gen.workload_seed;
    profile_counters = [];
  }

let job_of_seed seed = job_of_case (F.Gen.case_of_seed seed)

let requests_of_seed seed =
  let job = job_of_seed seed in
  List.map
    (fun engine -> Wire.Run { job; engine })
    Finepar_machine.Engine.all
  @ [ Wire.Compile job; Wire.Verify job ]

(* ------------------------------------------------------------------ *)
(* Wire round-trips.                                                   *)

let test_request_roundtrip () =
  List.iter
    (fun seed ->
      List.iter
        (fun req ->
          let s = Wire.request_to_string req in
          let s' = Wire.request_to_string (Wire.request_of_string s) in
          Alcotest.(check string)
            (Printf.sprintf "seed %d request round-trips" seed)
            s s')
        (requests_of_seed seed))
    [ 0; 1; 17; 42; 31337 ]

let test_registry_explicit_workload_roundtrip () =
  (* Registry entries carry their fixed workloads explicitly (arrays of
     hex floats and ints) rather than a seed. *)
  List.iter
    (fun (e : Finepar_kernels.Registry.entry) ->
      let job =
        {
          Wire.kernel = e.Finepar_kernels.Registry.kernel;
          config = Finepar.Compiler.default_config ();
          sequential = false;
          placement = F.Gen.Identity;
          workload = Wire.Explicit e.Finepar_kernels.Registry.workload;
          profile_counters = [ ("x", 1024, 37) ];
        }
      in
      let req = Wire.Run { job; engine = Finepar_machine.Engine.Cycle } in
      let s = Wire.request_to_string req in
      Alcotest.(check string)
        (e.Finepar_kernels.Registry.app ^ " explicit workload round-trips")
        s
        (Wire.request_to_string (Wire.request_of_string s)))
    Finepar_kernels.Registry.all

let roundtrip_weight w =
  let config =
    {
      (Finepar.Compiler.default_config ()) with
      Finepar.Compiler.weights =
        { Finepar_partition.Affinity.w_dep = w; w_time = -0.0; w_prox = w };
    }
  in
  let config' = Wire.config_of_sexp (Wire.sexp_of_config config) in
  config'.Finepar.Compiler.weights

let test_nonfinite_weights_roundtrip () =
  (* Floats travel as %h atoms: bit-exact for finite values, negative
     zero and the infinities.  NaNs canonicalize — %h prints a payload-
     free "nan" — which is exactly what the content-addressed cache
     needs: every NaN digests to the same key. *)
  let bits f = Int64.bits_of_float f in
  List.iter
    (fun w ->
      let weights = roundtrip_weight w in
      Alcotest.(check int64)
        (Printf.sprintf "%h bits" w)
        (bits w)
        (bits weights.Finepar_partition.Affinity.w_dep);
      Alcotest.(check int64)
        "negative zero bits"
        (bits (-0.0))
        (bits weights.Finepar_partition.Affinity.w_time))
    [ Float.infinity; Float.neg_infinity; 0x1.fffp-3; 1e300; Float.min_float ];
  let weights = roundtrip_weight Float.nan in
  Alcotest.(check bool) "nan survives as nan" true
    (Float.is_nan weights.Finepar_partition.Affinity.w_dep);
  Alcotest.(check int64) "nan canonicalizes to one bit pattern"
    (bits (Float.of_string "nan"))
    (bits weights.Finepar_partition.Affinity.w_dep)

let test_quoted_atoms_roundtrip () =
  (* The sexp layer must carry atoms the plain tokenizer would split or
     drop: spaces, parens, quotes, backslashes, newlines, empty. *)
  List.iter
    (fun atom ->
      let s = F.Repro.canon (F.Repro.List [ F.Repro.Atom atom ]) in
      match F.Repro.parse_sexp s with
      | F.Repro.List [ F.Repro.Atom a ] ->
        Alcotest.(check string) (Printf.sprintf "atom %S" atom) atom a
      | _ -> Alcotest.failf "atom %S reparsed to a different shape" atom)
    [
      "plain"; "two words"; "pa(ren)s"; "qu\"ote"; "back\\slash";
      "tab\tnew\nline"; ""; "; not a comment"; "\"";
    ]

let test_response_roundtrip_with_report () =
  (* Full Run payload — including the telemetry report with histograms
     — must round-trip to identical canonical bytes, and the decoded
     report must serialize (JSON and CSV) identically to the
     original. *)
  let cache = Cache.create (temp_dir ()) in
  let server = Server.create ~cache () in
  let reqs = requests_of_seed 7 in
  let responses = Server.handle_requests server (List.map Result.ok reqs) in
  Alcotest.(check int) "one response per request" (List.length reqs)
    (List.length responses);
  List.iter
    (fun s ->
      let r = Wire.response_of_string s in
      Alcotest.(check string) "response round-trips" s
        (Wire.response_to_string r);
      match r with
      | Wire.Run_result p ->
        let report' =
          Wire.report_of_sexp (Wire.sexp_of_report p.Wire.report)
        in
        Alcotest.(check string) "report JSON survives decode"
          (Finepar_telemetry.Json.to_string
             (Finepar.Report.to_json p.Wire.report))
          (Finepar_telemetry.Json.to_string (Finepar.Report.to_json report'));
        Alcotest.(check string) "report CSV survives decode"
          (Finepar.Report.to_csv p.Wire.report)
          (Finepar.Report.to_csv report')
      | Wire.Compile_result _ | Wire.Verify_result _ -> ()
      | _ -> Alcotest.fail "unexpected response kind")
    responses

(* ------------------------------------------------------------------ *)
(* Cache keys.                                                         *)

let test_key_sensitivity () =
  let cache = Cache.create (temp_dir ()) in
  let key req =
    match Cache.key_of_request cache req with
    | Some k -> k
    | None -> Alcotest.fail "cacheable request has no key"
  in
  let base_job = job_of_seed 3 in
  let base = key (Wire.Run { job = base_job; engine = Cycle }) in
  let check_differs name variant =
    let k = key variant in
    Alcotest.(check bool) (name ^ " changes the key") false (k = base)
  in
  let other = job_of_seed 4 in
  check_differs "kernel"
    (Wire.Run { job = { base_job with kernel = other.Wire.kernel }; engine = Cycle });
  check_differs "machine latency"
    (Wire.Run
       {
         job =
           {
             base_job with
             config =
               {
                 base_job.config with
                 Finepar.Compiler.machine =
                   {
                     base_job.config.Finepar.Compiler.machine with
                     Finepar_machine.Config.transfer_latency =
                       base_job.config.Finepar.Compiler.machine
                         .Finepar_machine.Config.transfer_latency + 1;
                   };
               };
           };
         engine = Cycle;
       });
  check_differs "sequential flag"
    (Wire.Run { job = { base_job with sequential = true }; engine = Cycle });
  check_differs "placement"
    (Wire.Run
       { job = { base_job with placement = F.Gen.Single_core }; engine = Cycle });
  check_differs "workload seed"
    (Wire.Run { job = { base_job with workload = Wire.Seeded 999 }; engine = Cycle });
  check_differs "profile counters"
    (Wire.Run
       {
         job = { base_job with profile_counters = [ ("a", 10, 1) ] };
         engine = Cycle;
       });
  check_differs "engine" (Wire.Run { job = base_job; engine = Event });
  check_differs "request kind" (Wire.Compile base_job);
  (* Simulation-free kinds share entries across engines: Compile and
     Verify have no engine component to vary. *)
  Alcotest.(check bool) "verify and compile differ" false
    (key (Wire.Verify base_job) = key (Wire.Compile base_job));
  (* Control requests are keyless. *)
  List.iter
    (fun req ->
      Alcotest.(check bool) "control request has no key" true
        (Cache.key_of_request cache req = None))
    [ Wire.Stats; Wire.Ping; Wire.Shutdown ]

let test_version_bump_invalidates () =
  let dir = temp_dir () in
  let v1 = Cache.create ~version:"test-v1" dir in
  let req = Wire.Run { job = job_of_seed 5; engine = Cycle } in
  let k1 = Option.get (Cache.key_of_request v1 req) in
  Cache.store v1 k1 "(response (kind pong) (version test-v1))";
  Alcotest.(check bool) "same version hits" true (Cache.find v1 k1 <> None);
  let v2 = Cache.create ~version:"test-v2" dir in
  let k2 = Option.get (Cache.key_of_request v2 req) in
  Alcotest.(check bool) "bumped version misses" true (Cache.find v2 k2 = None);
  Alcotest.(check string) "only the version component moved"
    k1.Cache.kernel_digest k2.Cache.kernel_digest

let test_corrupt_entries_are_misses () =
  let dir = temp_dir () in
  let cache = Cache.create dir in
  let req = Wire.Run { job = job_of_seed 6; engine = Cycle } in
  let key = Option.get (Cache.key_of_request cache req) in
  let response = "(response (kind pong) (version x))" in
  let entry_path () =
    (* The single .sexp file under the sharded store. *)
    let files = ref [] in
    let rec walk d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then walk p
          else if Filename.check_suffix p ".sexp" then files := p :: !files)
        (Sys.readdir d)
    in
    walk dir;
    match !files with
    | [ p ] -> p
    | l -> Alcotest.failf "expected one entry file, found %d" (List.length l)
  in
  let corrupt_with bytes =
    Cache.store cache key response;
    Alcotest.(check (option string)) "intact entry hits" (Some response)
      (Cache.find cache key);
    let p = entry_path () in
    let oc = open_out_bin p in
    output_string oc bytes;
    close_out oc;
    Alcotest.(check (option string)) "corrupt entry is a miss" None
      (Cache.find cache key);
    Alcotest.(check bool) "corrupt entry was removed" false (Sys.file_exists p)
  in
  corrupt_with "";
  corrupt_with "garbage that is not even a sexp (((";
  corrupt_with
    "(entry (kernel_digest 0) (config_digest 0) (engine cycle) (version x))\n(response (kind pong) (version x))\n";
  (* Truncated mid-payload: valid header, unparsable rest. *)
  Cache.store cache key response;
  let p = entry_path () in
  let ic = open_in_bin p in
  let header = input_line ic in
  close_in ic;
  let oc = open_out_bin p in
  output_string oc (header ^ "\n(response (kind");
  close_out oc;
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Cache.find cache key);
  let corrupt = List.assoc "corrupt" (Cache.counters cache) in
  Alcotest.(check bool)
    (Printf.sprintf "corrupt counter advanced (%d)" corrupt)
    true (corrupt >= 4)

let test_eviction_respects_max_entries () =
  let dir = temp_dir () in
  let cache = Cache.create ~max_entries:2 dir in
  List.iter
    (fun seed ->
      let req = Wire.Run { job = job_of_seed seed; engine = Cycle } in
      let key = Option.get (Cache.key_of_request cache req) in
      Cache.store cache key "(response (kind pong) (version x))")
    [ 10; 11; 12; 13 ];
  Alcotest.(check int) "entries bounded" 2 (Cache.entries cache);
  Alcotest.(check int) "evictions counted" 2
    (List.assoc "evictions" (Cache.counters cache))

(* ------------------------------------------------------------------ *)
(* Server determinism.                                                 *)

let batch_for seeds =
  List.concat_map (fun seed -> requests_of_seed seed) seeds

let test_cached_equals_fresh () =
  let cache = Cache.create (temp_dir ()) in
  let server = Server.create ~cache () in
  let reqs = List.map Result.ok (batch_for [ 20; 21; 22 ]) in
  let cold = Server.handle_requests server reqs in
  let warm = Server.handle_requests server reqs in
  Alcotest.(check (list string)) "cached bytes equal fresh bytes" cold warm;
  let counters = Cache.counters cache in
  Alcotest.(check int) "second pass all hits" (List.length reqs)
    (List.assoc "hits" counters);
  Alcotest.(check int) "first pass all misses" (List.length reqs)
    (List.assoc "misses" counters)

let test_parallel_equals_serial () =
  let reqs = List.map Result.ok (batch_for [ 30; 31; 32; 33 ]) in
  let serial =
    Server.handle_requests
      (Server.create ~cache:(Cache.create (temp_dir ())) ())
      reqs
  in
  let pool = Finepar_exec.Pool.create ~domains:4 () in
  let parallel =
    Server.handle_requests
      (Server.create ~pool ~cache:(Cache.create (temp_dir ())) ())
      reqs
  in
  Alcotest.(check (list string)) "-j1 and -j4 produce identical bytes" serial
    parallel

let test_corpus_parallel_equals_serial () =
  (* The whole regression corpus — which carries both queue-mode and
     shared-cache reproducers — replayed through the service on every
     engine: a 4-domain pool must produce the same bytes as -j1. *)
  let entries =
    List.map F.Corpus.load_file (F.Corpus.files "fuzz_corpus")
  in
  Alcotest.(check bool) "corpus present" true (List.length entries >= 5);
  let modes =
    List.sort_uniq compare
      (List.map
         (fun (e : F.Corpus.entry) ->
           e.F.Corpus.case.F.Gen.config.Finepar.Compiler.comm_mode)
         entries)
  in
  Alcotest.(check int) "corpus covers both comm modes" 2 (List.length modes);
  let reqs =
    List.concat_map
      (fun (e : F.Corpus.entry) ->
        List.map
          (fun engine ->
            Ok (Wire.Run { job = job_of_case e.F.Corpus.case; engine }))
          Finepar_machine.Engine.all)
      entries
  in
  let serial =
    Server.handle_requests
      (Server.create ~cache:(Cache.create (temp_dir ())) ())
      reqs
  in
  let pool = Finepar_exec.Pool.create ~domains:4 () in
  let parallel =
    Server.handle_requests
      (Server.create ~pool ~cache:(Cache.create (temp_dir ())) ())
      reqs
  in
  Alcotest.(check (list string))
    "corpus replay: -j1 and -j4 produce identical bytes" serial parallel

let test_errors_not_cached () =
  (* A workload that truncates one of the kernel's arrays to zero
     elements fails at evaluation: the response must be a deterministic
     Error, and must not be stored (a fix to the pipeline must not be
     masked by a cached failure). *)
  let cache = Cache.create (temp_dir ()) in
  let server = Server.create ~cache () in
  let entry = List.hd Finepar_kernels.Registry.all in
  let kernel = entry.Finepar_kernels.Registry.kernel in
  let broken =
    (List.hd kernel.Finepar_ir.Kernel.arrays).Finepar_ir.Kernel.a_name
  in
  let job =
    {
      Wire.kernel;
      config = Finepar.Compiler.default_config ();
      sequential = false;
      placement = F.Gen.Identity;
      workload = Wire.Explicit [ (broken, [||]) ];
      profile_counters = [];
    }
  in
  let req = [ Ok (Wire.Run { job; engine = Finepar_machine.Engine.Cycle }) ] in
  let first = Server.handle_requests server req in
  let second = Server.handle_requests server req in
  Alcotest.(check (list string)) "errors are deterministic" first second;
  (match List.map Wire.response_of_string first with
  | [ Wire.Error _ ] -> ()
  | _ -> Alcotest.fail "expected an Error response");
  Alcotest.(check int) "errors are never stored" 0
    (List.assoc "stores" (Cache.counters cache));
  Alcotest.(check int) "no entry files appear" 0 (Cache.entries cache)

let test_malformed_items_reported_in_slot () =
  let cache = Cache.create (temp_dir ()) in
  let server = Server.create ~cache () in
  let good = Wire.request_to_string (Wire.Ping) in
  let payload = Printf.sprintf "(batch %s (request (kind bogus)) %s)" good good in
  let out = Server.handle_frame server payload in
  match Wire.responses_of_string out with
  | [ Wire.Pong _; Wire.Error _; Wire.Pong _ ] -> ()
  | _ -> Alcotest.failf "bad batch shape: %s" out

(* ------------------------------------------------------------------ *)
(* Concurrent clients against one server.

   OCaml 5 forbids Unix.fork once domains have been spawned (earlier
   tests create pools), so the server and the client processes re-exec
   this binary via Unix.create_process (posix_spawn underneath) with a
   dispatch marker in argv, handled below before Alcotest ever parses
   the command line. *)

let spawn args =
  Unix.create_process Sys.executable_name
    (Array.append [| Sys.executable_name |] args)
    Unix.stdin Unix.stdout Unix.stderr

let client_requests = requests_of_seed 50

let () =
  (* Child modes; never returns for a child. *)
  if Array.length Sys.argv = 4 && Sys.argv.(1) = "--service-serve" then begin
    let cache = Cache.create Sys.argv.(3) in
    let server = Server.create ~cache () in
    Server.serve_socket server Sys.argv.(2);
    exit 0
  end;
  if Array.length Sys.argv = 4 && Sys.argv.(1) = "--service-client" then begin
    let got =
      String.concat "\n"
        (Client.exec_strings (Client.Socket Sys.argv.(2)) client_requests)
    in
    let ic = open_in_bin Sys.argv.(3) in
    let expected = really_input_string ic (in_channel_length ic) in
    close_in ic;
    exit (if String.equal got expected then 0 else 1)
  end

let test_concurrent_clients () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "sock" in
  let server_pid =
    spawn [| "--service-serve"; socket; Filename.concat dir "store" |]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] server_pid)
      with Unix.Unix_error (Unix.ECHILD, _, _) -> ())
    (fun () ->
      let expected =
        Client.exec_strings ~attempts:100 (Client.Socket socket)
          client_requests
      in
      let expected_file = Filename.concat dir "expected" in
      let oc = open_out_bin expected_file in
      output_string oc (String.concat "\n" expected);
      close_out oc;
      (* Several client processes hammering the same server: everyone
         gets the same bytes (all of them from cache by now). *)
      let clients =
        List.init 4 (fun _ ->
            spawn [| "--service-client"; socket; expected_file |])
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "concurrent client saw different bytes")
        clients;
      (* One more from the parent, then orderly shutdown. *)
      (match Client.exec (Client.Socket socket) [ Wire.Ping ] with
      | [ Wire.Pong v ] ->
        Alcotest.(check string) "pong carries the code version"
          Version.code_version v
      | _ -> Alcotest.fail "bad ping response");
      (match Client.exec (Client.Socket socket) [ Wire.Shutdown ] with
      | [ Wire.Shutdown_ack ] -> ()
      | _ -> Alcotest.fail "bad shutdown response");
      ignore (Unix.waitpid [] server_pid);
      Alcotest.(check bool) "socket removed on exit" false
        (Sys.file_exists socket))

let () =
  Alcotest.run "service"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "explicit workloads round-trip" `Quick
            test_registry_explicit_workload_roundtrip;
          Alcotest.test_case "non-finite weights bit-exact" `Quick
            test_nonfinite_weights_roundtrip;
          Alcotest.test_case "quoted atoms round-trip" `Quick
            test_quoted_atoms_roundtrip;
          Alcotest.test_case "responses and reports round-trip" `Quick
            test_response_roundtrip_with_report;
        ] );
      ( "cache",
        [
          Alcotest.test_case "every key component matters" `Quick
            test_key_sensitivity;
          Alcotest.test_case "version bump invalidates" `Quick
            test_version_bump_invalidates;
          Alcotest.test_case "corruption is a miss, not a crash" `Quick
            test_corrupt_entries_are_misses;
          Alcotest.test_case "eviction respects max_entries" `Quick
            test_eviction_respects_max_entries;
        ] );
      ( "server",
        [
          Alcotest.test_case "cached equals fresh, byte for byte" `Quick
            test_cached_equals_fresh;
          Alcotest.test_case "-j1 equals -j4, byte for byte" `Quick
            test_parallel_equals_serial;
          Alcotest.test_case "corpus replay -j1 equals -j4, both comm modes"
            `Quick test_corpus_parallel_equals_serial;
          Alcotest.test_case "errors deterministic, never cached" `Quick
            test_errors_not_cached;
          Alcotest.test_case "malformed batch items fail in place" `Quick
            test_malformed_items_reported_in_slot;
        ] );
      ( "socket",
        [
          Alcotest.test_case "concurrent clients, one server" `Quick
            test_concurrent_clients;
        ] );
    ]
