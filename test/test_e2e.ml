(* End-to-end tests: compile kernels, simulate them, and check the outputs
   bit-for-bit against the reference evaluator (Runner.run raises Mismatch
   on any difference, so "it returns" is the correctness check).

   Covers: all 18 evaluation kernels at 1/2/4 cores, configuration
   variants (speculation, throughput heuristic, multi-pair merge, latency,
   short queues, tiny caches), edge cases (zero-trip loops, single
   iteration), and a qcheck property over randomly generated kernels. *)

open Finepar_ir
open Builder
open Finepar_kernels

let speedup_of ?config ?machine k ~cores =
  let workload = Workload.default k in
  let _, par, s = Finepar.Runner.speedup ?machine ?config ~workload ~cores k in
  Alcotest.(check bool) "ran" true (par.Finepar.Runner.cycles > 0);
  s

(* ------------------------------------------------------------------ *)
(* The 18 evaluation kernels.                                          *)

let registry_case (e : Registry.entry) =
  let name = e.Registry.kernel.Kernel.name in
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun cores ->
          let _, par, _ =
            Finepar.Runner.speedup ~workload:e.Registry.workload ~cores
              e.Registry.kernel
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s %d-core bit-exact" name cores)
            true
            (par.Finepar.Runner.cycles > 0))
        [ 1; 2; 3; 4 ])

let variant_case name mk_config =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun (e : Registry.entry) ->
          let config, machine = mk_config () in
          let _, par, _ =
            Finepar.Runner.speedup ?config ?machine
              ~workload:e.Registry.workload ~cores:4 e.Registry.kernel
          in
          Alcotest.(check bool)
            (e.Registry.kernel.Kernel.name ^ " bit-exact under " ^ name)
            true
            (par.Finepar.Runner.cycles > 0))
        Registry.all)

let with_config f () = (Some (f (Finepar.Compiler.default_config ~cores:4 ())), None)
let with_machine m () = (None, Some m)

let variant_cases =
  [
    variant_case "speculation" (with_config (fun c ->
        { c with Finepar.Compiler.speculation = true }));
    variant_case "throughput heuristic" (with_config (fun c ->
        { c with Finepar.Compiler.throughput = true }));
    variant_case "multi-pair merge" (with_config (fun c ->
        { c with Finepar.Compiler.algorithm = `Multi_pair }));
    variant_case "finest fibers" (with_config (fun c ->
        { c with Finepar.Compiler.max_height = 1 }));
    variant_case "coarse fibers" (with_config (fun c ->
        { c with Finepar.Compiler.max_height = 5 }));
    variant_case "latency 50"
      (with_machine
         Finepar_machine.Config.(with_transfer_latency 50 default));
    variant_case "short queues"
      (with_machine
         { Finepar_machine.Config.default with
           Finepar_machine.Config.queue_len = 2 });
    variant_case "tiny caches"
      (with_machine
         { Finepar_machine.Config.default with
           Finepar_machine.Config.l1_bytes = 512; l2_bytes = 4096 });
  ]

(* ------------------------------------------------------------------ *)
(* Edge cases.                                                         *)

let edge_kernel ~lo ~hi =
  kernel ~name:"edge" ~index:"i" ~lo ~hi
    ~arrays:[ farr "a" 64; farr "out" 64 ]
    ~scalars:[ fscalar ~init:3.0 "s" ]
    ~live_out:[ "s" ]
    [
      set "x" (ld "a" (v "i") *: f 2.0);
      set "s" (v "s" +: v "x");
      store "out" (v "i") (v "x" -: v "s");
    ]

let test_zero_trip () =
  (* The loop body never runs: live-outs must still be the initial values
     on every core count. *)
  List.iter
    (fun cores -> ignore (speedup_of (edge_kernel ~lo:5 ~hi:5) ~cores))
    [ 1; 2; 4 ]

let test_single_iteration () =
  List.iter
    (fun cores -> ignore (speedup_of (edge_kernel ~lo:7 ~hi:8) ~cores))
    [ 1; 2; 4 ]

let test_nonzero_lower_bound () =
  List.iter
    (fun cores -> ignore (speedup_of (edge_kernel ~lo:17 ~hi:61) ~cores))
    [ 1; 2; 4 ]

let test_more_cores_than_fibers () =
  let k =
    kernel ~name:"tiny" ~index:"i" ~lo:0 ~hi:16
      ~arrays:[ farr "a" 16; farr "out" 16 ]
      ~scalars:[]
      [ store "out" (v "i") (ld "a" (v "i") *: f 2.0) ]
  in
  ignore (speedup_of k ~cores:4)

let test_int_kernel () =
  let k =
    kernel ~name:"ints" ~index:"i" ~lo:0 ~hi:32
      ~arrays:[ iarr "a" 32; iarr "out" 32 ]
      ~scalars:[ iscalar ~init:3 "m"; iscalar "total" ]
      ~live_out:[ "total" ]
      [
        set "x" ((ld "a" (v "i") *: v "m") %: i 17);
        set "y" (Expr.Binop (Types.Xor, v "x", i 0b1010));
        set "total" (v "total" +: v "y");
        store "out" (v "i") (Expr.Binop (Types.Shl, v "y", i 2));
      ]
  in
  List.iter (fun cores -> ignore (speedup_of k ~cores)) [ 1; 2; 4 ]

let test_deep_conditionals () =
  let k =
    kernel ~name:"nest" ~index:"i" ~lo:0 ~hi:40
      ~arrays:[ farr "a" 40; farr "o1" 40; farr "o2" 40; farr "o3" 40 ]
      ~scalars:[ fscalar ~init:0.7 "t1"; fscalar ~init:1.3 "t2" ]
      [
        set "x" (ld "a" (v "i") *: f 2.0);
        set "c1" (v "x" >: v "t1");
        if_ (v "c1")
          [
            store "o1" (v "i") (v "x");
            set "c2" (v "x" >: v "t2");
            if_ (v "c2")
              [ store "o2" (v "i") (v "x" *: f 0.5) ]
              [ store "o2" (v "i") (f 0.0) ];
          ]
          [ store "o3" (v "i") (neg (v "x")) ];
      ]
  in
  List.iter (fun cores -> ignore (speedup_of k ~cores)) [ 1; 2; 4 ]

let test_many_transfers_narrow_queues () =
  (* Dozens of cross-core values per iteration against 2-slot queues:
     exercises the full-queue back-pressure path end to end. *)
  let stmts =
    List.concat_map
      (fun j ->
        let x = Printf.sprintf "x%d" j in
        [
          set x (ld "a" (v "i") *: f (1.0 +. (0.1 *. float_of_int j)));
          store (Printf.sprintf "o%d" j) (v "i") (v x +: f 0.5);
        ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let arrays =
    farr "a" 32
    :: List.map (fun j -> farr (Printf.sprintf "o%d" j) 32) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let k =
    kernel ~name:"wide" ~index:"i" ~lo:0 ~hi:32 ~arrays ~scalars:[] stmts
  in
  let machine =
    { Finepar_machine.Config.default with Finepar_machine.Config.queue_len = 2 }
  in
  List.iter (fun cores -> ignore (speedup_of ~machine k ~cores)) [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Aggregate expectations (shape checks, deliberately loose).          *)

let test_average_speedups () =
  let rows = Finepar.Experiments.fig12 () in
  let a2, a4 = Finepar.Experiments.fig12_averages rows in
  Alcotest.(check bool) "2-core average in the paper's band" true
    (a2 > 1.1 && a2 < 1.7);
  Alcotest.(check bool) "4-core average in the paper's band" true
    (a4 > 1.6 && a4 < 2.4);
  Alcotest.(check bool) "4 cores beat 2 cores on average" true (a4 > a2)

let test_umt2k6_slows_down () =
  let e = Option.get (Registry.find "umt2k-6") in
  let _, _, s =
    Finepar.Runner.speedup ~workload:e.Registry.workload ~cores:4
      e.Registry.kernel
  in
  Alcotest.(check bool) "umt2k-6 does not speed up" true (s <= 1.0)

let test_latency_degrades () =
  let avg latency =
    let machine =
      Finepar_machine.Config.(with_transfer_latency latency default)
    in
    let speeds =
      List.map
        (fun (e : Registry.entry) ->
          let _, _, s =
            Finepar.Runner.speedup ~machine ~workload:e.Registry.workload
              ~cores:4 e.Registry.kernel
          in
          s)
        Registry.all
    in
    List.fold_left ( +. ) 0.0 speeds /. 18.0
  in
  let a5 = avg 5 and a50 = avg 50 in
  Alcotest.(check bool) "higher latency, lower average speedup" true
    (a50 < a5 -. 0.1)

(* ------------------------------------------------------------------ *)
(* qcheck: random kernels run bit-exact on every core count.           *)

(* Kernels come from the richer lib/fuzz generator (int and float
   arithmetic, nested conditionals, recurrences, indirect addressing,
   variable trip counts); QCheck supplies and shrinks only the seed. *)
let gen_kernel =
  QCheck.Gen.map
    (fun seed -> Finepar_fuzz.Gen.gen_kernel (Finepar_fuzz.Rng.create seed))
    (QCheck.Gen.int_bound 1_000_000)

let arbitrary_kernel =
  QCheck.make gen_kernel ~print:(Fmt.to_to_string Kernel.pp)

let prop_random_kernels_bit_exact =
  QCheck.Test.make ~count:120 ~name:"random kernels simulate bit-exact"
    arbitrary_kernel (fun k ->
      let workload = Workload.default k in
      List.for_all
        (fun cores ->
          let c =
            Finepar.Compiler.compile (Finepar.Compiler.default_config ~cores ()) k
          in
          (* Runner.run raises Mismatch on any deviation. *)
          ignore (Finepar.Runner.run ~workload c);
          true)
        [ 1; 2; 4 ])

let prop_random_kernels_speculated =
  QCheck.Test.make ~count:60
    ~name:"random kernels with speculation simulate bit-exact"
    arbitrary_kernel (fun k ->
      let workload = Workload.default k in
      let config =
        {
          (Finepar.Compiler.default_config ~cores:4 ()) with
          Finepar.Compiler.speculation = true;
        }
      in
      ignore (Finepar.Runner.run ~workload (Finepar.Compiler.compile config k));
      true)

let () =
  Alcotest.run "e2e"
    [
      ("kernels", List.map registry_case Registry.all);
      ("variants", variant_cases);
      ( "edge cases",
        [
          Alcotest.test_case "zero-trip loop" `Quick test_zero_trip;
          Alcotest.test_case "single iteration" `Quick test_single_iteration;
          Alcotest.test_case "nonzero lower bound" `Quick
            test_nonzero_lower_bound;
          Alcotest.test_case "more cores than fibers" `Quick
            test_more_cores_than_fibers;
          Alcotest.test_case "integer kernel" `Quick test_int_kernel;
          Alcotest.test_case "nested conditionals" `Quick
            test_deep_conditionals;
          Alcotest.test_case "narrow queues back-pressure" `Quick
            test_many_transfers_narrow_queues;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "average speedups in band" `Slow
            test_average_speedups;
          Alcotest.test_case "umt2k-6 slows down" `Quick
            test_umt2k6_slows_down;
          Alcotest.test_case "latency degrades speedup" `Slow
            test_latency_degrades;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_kernels_bit_exact; prop_random_kernels_speculated ] );
    ]
