(* Tests for the generational autotuning search (lib/tune) and the
   Runner.autotune correctness fixes it rides on:

   - check policy is uniform and does not change reported cycles;
   - tie-breaking follows the documented preference order (fewer
     cycles, then fewer cores, then the simpler config) and is stable;
   - the classic autotune through --via byte-matches the direct path
     (shared candidate enumeration, shared comparison, shared renderer);
   - the search is byte-identical at -j1 and -j4, and cached vs. fresh
     through a store (with a 100% warm hit rate);
   - the search never returns a config worse than the Section III-B
     heuristic pick, and respects its budget/generation bounds. *)

module Compiler = Finepar.Compiler
module Runner = Finepar.Runner
module Registry = Finepar_kernels.Registry
module Pool = Finepar_exec.Pool
module Client = Finepar_service.Client
module Space = Finepar_tune.Space
module Search = Finepar_tune.Search
module Service_eval = Finepar_tune.Service_eval
module Engine = Finepar_machine.Engine
module J = Finepar_telemetry.Json

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "finepar-tune-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let engine = Engine.Compiled

let some_targets n =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take n (Search.registry_targets ())

let small_params =
  { Search.default_params with Search.generations = 2; budget = 12 }

(* ------------------------------------------------------------------ *)
(* Satellite fixes in Runner.autotune.                                  *)

let test_check_policy_uniform () =
  (* Checking happens after simulation, so making the check policy
     uniform must not change any reported cycle count — the assertion
     that pins the ~check:false/true asymmetry fix. *)
  List.iter
    (fun name ->
      let e = Option.get (Registry.find name) in
      let checked =
        Runner.autotune ~cores:4 ~check:true ~workload:e.Registry.workload
          ~engine e.Registry.kernel
      in
      let unchecked =
        Runner.autotune ~cores:4 ~check:false ~workload:e.Registry.workload
          ~engine e.Registry.kernel
      in
      Alcotest.(check int)
        (name ^ ": best_cycles unchanged by check policy")
        checked.Runner.best_cycles unchecked.Runner.best_cycles;
      Alcotest.(check (list (pair string int)))
        (name ^ ": all candidate cycles unchanged")
        checked.Runner.candidates unchecked.Runner.candidates;
      Alcotest.(check string)
        (name ^ ": same winner")
        checked.Runner.best_name unchecked.Runner.best_name)
    [ "lammps-1"; "umt2k-6" ]

let test_tie_break_order () =
  let base = Compiler.default_config ~cores:4 () in
  let cmp a b = Runner.compare_candidates a b in
  (* Fewer cycles dominates everything. *)
  Alcotest.(check bool)
    "fewer cycles wins" true
    (cmp (10, { base with Compiler.cores = 8 }) (11, base) < 0);
  (* On a cycle tie: fewer cores first. *)
  Alcotest.(check bool)
    "fewer cores wins ties" true
    (cmp (10, { base with Compiler.cores = 2 }) (10, base) < 0);
  (* Then speculation off before on. *)
  Alcotest.(check bool)
    "speculation off wins ties" true
    (cmp (10, base) (10, { base with Compiler.speculation = true }) < 0);
  (* Then throughput off before on. *)
  Alcotest.(check bool)
    "throughput off wins ties" true
    (cmp (10, base) (10, { base with Compiler.throughput = true }) < 0);
  (* Then greedy before multi-pair. *)
  Alcotest.(check bool)
    "greedy wins ties" true
    (cmp (10, base) (10, { base with Compiler.algorithm = `Multi_pair }) < 0);
  (* Then lower transfer latency, then shorter queues. *)
  let with_lat l (c : Compiler.config) =
    {
      c with
      Compiler.machine =
        { c.Compiler.machine with Finepar_machine.Config.transfer_latency = l };
    }
  in
  let with_q q (c : Compiler.config) =
    {
      c with
      Compiler.machine =
        { c.Compiler.machine with Finepar_machine.Config.queue_len = q };
    }
  in
  Alcotest.(check bool)
    "lower latency wins ties" true
    (cmp (10, with_lat 1 base) (10, with_lat 20 base) < 0);
  Alcotest.(check bool)
    "shorter queue wins ties" true
    (cmp (10, with_q 4 base) (10, with_q 64 base) < 0);
  (* Identical configs compare equal — selection then keeps the earlier
     candidate, independent of evaluation interleaving. *)
  Alcotest.(check int) "identical configs tie" 0 (cmp (10, base) (10, base))

let test_via_matches_direct_autotune () =
  (* The classic fixed-candidate autotune: direct vs through a store,
     rendered with the shared renderer — byte-identical tables. *)
  List.iter
    (fun name ->
      let e = Option.get (Registry.find name) in
      let t =
        Runner.autotune ~cores:4 ~workload:e.Registry.workload ~engine
          e.Registry.kernel
      in
      let direct_table =
        Fmt.str "%a" Search.pp_autotune
          (t.Runner.best_name, t.Runner.best_cycles, t.Runner.candidates)
      in
      let via_result =
        Client.with_session (Client.Store (temp_dir ())) (fun session ->
            Service_eval.autotune
              ~exec:(Client.session_exec session)
              ~machine:Finepar_machine.Config.default ~engine ~cores:4
              ~workload:e.Registry.workload e.Registry.kernel)
      in
      let via_table = Fmt.str "%a" Search.pp_autotune via_result in
      Alcotest.(check string)
        (name ^ ": via table byte-matches direct")
        direct_table via_table)
    [ "lammps-1"; "umt2k-6"; "irs-2" ]

(* ------------------------------------------------------------------ *)
(* The search.                                                          *)

let render params rows =
  ( Fmt.str "%a" Search.pp_table rows,
    J.to_string (Search.to_json ~params rows) )

let test_search_j1_equals_j4 () =
  let targets = some_targets 4 in
  let run jobs =
    let pool = Pool.create ~domains:jobs () in
    render small_params
      (Search.run small_params (Search.direct ~pool ~engine ()) targets)
  in
  let table1, json1 = run 1 in
  let table4, json4 = run 4 in
  Alcotest.(check string) "table -j1 = -j4" table1 table4;
  Alcotest.(check string) "json -j1 = -j4" json1 json4

let test_search_cached_equals_fresh () =
  let targets = some_targets 3 in
  let dir = temp_dir () in
  let through_store () =
    Client.with_session (Client.Store dir) (fun session ->
        let rows =
          Search.run small_params
            (Service_eval.evaluator ~exec:(Client.session_exec session) ~engine)
            targets
        in
        (render small_params rows, Client.session_counters session))
  in
  let pool = Pool.create ~domains:2 () in
  let direct_out =
    render small_params
      (Search.run small_params (Search.direct ~pool ~engine ()) targets)
  in
  let fresh_out, fresh_counters = through_store () in
  let warm_out, warm_counters = through_store () in
  Alcotest.(check (pair string string))
    "direct = fresh via store" direct_out fresh_out;
  Alcotest.(check (pair string string))
    "fresh = warm via store" fresh_out warm_out;
  let get cs k = Option.value ~default:0 (List.assoc_opt k cs) in
  Alcotest.(check int) "fresh run hit nothing" 0 (get fresh_counters "hits");
  Alcotest.(check bool)
    "fresh run stored entries" true
    (get fresh_counters "misses" > 0);
  (* The warm pass through the same store is answered entirely from
     cache: a 100% hit rate (session counters are per-handle, so the
     warm handle's misses are 0). *)
  Alcotest.(check int) "warm run missed nothing" 0 (get warm_counters "misses");
  Alcotest.(check int)
    "warm run all hits"
    (get fresh_counters "misses")
    (get warm_counters "hits")

let test_search_never_worse_than_heuristic () =
  let pool = Pool.create ~domains:2 () in
  let rows =
    Search.run small_params
      (Search.direct ~pool ~engine ())
      (Search.registry_targets ())
  in
  Alcotest.(check int) "all 18 kernels tuned" 18 (List.length rows);
  List.iter
    (fun (r : Search.row) ->
      match (r.Search.r_heuristic, r.Search.r_best) with
      | Ok heuristic, Some best ->
        Alcotest.(check bool)
          (r.Search.r_target.Search.t_name ^ ": best <= heuristic pick")
          true
          (best.Search.b_cycles <= heuristic);
        Alcotest.(check bool)
          (r.Search.r_target.Search.t_name ^ ": gap >= 1")
          true
          (match Search.gap r with Some g -> g >= 1.0 | None -> false)
      | _ -> Alcotest.fail (r.Search.r_target.Search.t_name ^ ": no result"))
    rows

let test_search_budget_and_generation_bounds () =
  let targets = some_targets 3 in
  let pool = Pool.create ~domains:2 () in
  List.iter
    (fun (budget, generations) ->
      let params = { Search.default_params with Search.budget; generations } in
      let rows =
        Search.run params (Search.direct ~pool ~engine ()) targets
      in
      List.iter
        (fun (r : Search.row) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: evaluated %d <= budget %d"
               r.Search.r_target.Search.t_name r.Search.r_evaluated budget)
            true
            (r.Search.r_evaluated <= max 1 budget);
          Alcotest.(check bool)
            (Printf.sprintf "%s: rounds %d <= generations %d + 1"
               r.Search.r_target.Search.t_name r.Search.r_generations
               generations)
            true
            (r.Search.r_generations <= generations + 1);
          (* The heuristic pick survives any budget: it is generation
             0's first candidate. *)
          match r.Search.r_heuristic with
          | Ok _ -> ()
          | Error m ->
            Alcotest.fail
              (r.Search.r_target.Search.t_name ^ ": heuristic missing: " ^ m))
        rows;
      (* generations = 0 means the seed generation only: at most the
         six fixed candidates per kernel. *)
      if generations = 0 then
        List.iter
          (fun (r : Search.row) ->
            Alcotest.(check bool)
              (r.Search.r_target.Search.t_name ^ ": seed generation only")
              true
              (r.Search.r_evaluated <= 6))
          rows)
    [ (1, 3); (4, 0); (6, 0); (15, 1); (40, 3) ]

let test_space_key_dedupes_and_describe_is_stable () =
  let base = Compiler.default_config ~cores:4 () in
  Alcotest.(check string)
    "describe baseline" "4c greedy q20 lat5 i1 queues w:default"
    (Space.describe base);
  let ns = Space.neighbors base in
  Alcotest.(check bool) "neighbors exist" true (List.length ns > 10);
  (* No neighbor equals the origin, and keys distinguish all of them. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        ("neighbor differs: " ^ Space.describe n)
        false
        (String.equal (Space.key n) (Space.key base)))
    ns;
  let keys = List.sort_uniq compare (List.map Space.key ns) in
  Alcotest.(check int) "neighbor keys unique" (List.length ns)
    (List.length keys)

let () =
  Alcotest.run "tune"
    [
      ( "runner-fixes",
        [
          Alcotest.test_case "uniform check policy leaves cycles unchanged"
            `Quick test_check_policy_uniform;
          Alcotest.test_case "documented tie-break order" `Quick
            test_tie_break_order;
          Alcotest.test_case "--via autotune byte-matches direct" `Quick
            test_via_matches_direct_autotune;
        ] );
      ( "search",
        [
          Alcotest.test_case "-j1 equals -j4, byte for byte" `Quick
            test_search_j1_equals_j4;
          Alcotest.test_case "cached equals fresh through a store" `Quick
            test_search_cached_equals_fresh;
          Alcotest.test_case "never worse than the heuristic pick" `Quick
            test_search_never_worse_than_heuristic;
          Alcotest.test_case "budget and generation bounds hold" `Quick
            test_search_budget_and_generation_bounds;
          Alcotest.test_case "space keys dedupe, descriptions stable" `Quick
            test_space_key_dedupes_and_describe_is_stable;
        ] );
    ]
