(* Tests for the domain-parallel execution engine (lib/exec) and its
   determinism contract: results merged in task-index order, exceptions
   captured per task with the lowest-indexed one re-raised, nested maps
   rejected, and -j 1 observationally identical to -j N for the
   subsystems wired onto the pool (fuzz campaigns, experiments). *)

module Pool = Finepar_exec.Pool
module Json = Finepar_telemetry.Json

exception Boom of int

(* Uneven per-task work so parallel completion order differs from
   submission order; any merge-by-completion bug shows up as a
   misordered result list. *)
let spin i =
  let n = 1_000 * (1 + (i * 7919 mod 13)) in
  let acc = ref 0 in
  for k = 1 to n do
    acc := (!acc + k) mod 1_000_003
  done;
  (i, !acc)

let test_map_ordering () =
  let xs = List.init 400 Fun.id in
  let expected = List.map spin xs in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Alcotest.(check bool)
        (Printf.sprintf "map at %d domain(s) = sequential" domains)
        true
        (List.equal ( = ) expected (Pool.map pool ~f:spin xs)))
    [ 1; 2; 3; 4; 8 ]

let test_map_reduce () =
  let xs = List.init 500 (fun i -> i + 1) in
  let seq = List.fold_left ( + ) 0 (List.map (fun x -> x * x) xs) in
  let pool = Pool.create ~domains:4 () in
  let par =
    Pool.map_reduce pool ~map:(fun x -> x * x) ~fold:( + ) ~init:0 xs
  in
  Alcotest.(check int) "map_reduce sum of squares" seq par;
  (* fold runs on the calling domain in index order, so non-commutative
     folds are safe. *)
  let concat =
    Pool.map_reduce pool ~map:string_of_int
      ~fold:(fun acc s -> acc ^ "," ^ s)
      ~init:"" (List.init 50 Fun.id)
  in
  let expected =
    List.fold_left
      (fun acc s -> acc ^ "," ^ s)
      ""
      (List.map string_of_int (List.init 50 Fun.id))
  in
  Alcotest.(check string) "map_reduce ordered fold" expected concat

let test_exception_lowest_index () =
  let pool = Pool.create ~domains:4 () in
  let ran = Atomic.make 0 in
  let f i =
    Atomic.incr ran;
    if i = 17 || i = 3 || i = 90 then raise (Boom i) else i
  in
  (match Pool.map pool ~f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
    Alcotest.(check int) "lowest-indexed exception wins" 3 i);
  (* Every task still ran: a failure must not cancel sibling tasks,
     otherwise -j would change which side effects happen. *)
  Alcotest.(check int) "all tasks ran despite failures" 100 (Atomic.get ran);
  (* Same contract on the sequential path. *)
  let pool1 = Pool.create ~domains:1 () in
  let ran1 = ref 0 in
  let f1 i =
    incr ran1;
    if i >= 5 then raise (Boom i) else i
  in
  (match Pool.map pool1 ~f:f1 (List.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "sequential: first raiser" 5 i);
  Alcotest.(check int) "sequential: all tasks ran" 20 !ran1

let test_nested_map_rejected () =
  let pool = Pool.create ~domains:4 () in
  let nested _ = Pool.map pool ~f:Fun.id [ 1; 2; 3 ] in
  (match Pool.map pool ~f:nested (List.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected Nested_map"
  | exception Pool.Nested_map -> ());
  (* A different pool used inside tasks of a busy pool is also a nested
     parallel region and is rejected the same way. *)
  let other = Pool.create ~domains:2 () in
  let nested_other _ = Pool.map other ~f:Fun.id [ 1 ] in
  (match Pool.map pool ~f:nested_other [ 0; 1 ] with
  | _ -> ()
  | exception Pool.Nested_map -> ());
  (* After rejection the pool is released and usable again. *)
  Alcotest.(check (list int))
    "pool usable after Nested_map" [ 0; 1; 2 ]
    (Pool.map pool ~f:Fun.id [ 0; 1; 2 ])

let test_default_domains_env () =
  let prev = Sys.getenv_opt "FINEPAR_DOMAINS" in
  Unix.putenv "FINEPAR_DOMAINS" "3";
  Alcotest.(check int) "FINEPAR_DOMAINS wins" 3 (Pool.default_domains ());
  Unix.putenv "FINEPAR_DOMAINS" "0";
  Alcotest.(check bool)
    "nonsense value falls back to >= 1" true
    (Pool.default_domains () >= 1);
  Unix.putenv "FINEPAR_DOMAINS" (Option.value ~default:"" prev);
  Alcotest.(check bool)
    "default is at least one domain" true
    (Pool.default_domains () >= 1)

(* The end-to-end determinism contract on a real fan-out site: a fuzz
   campaign on a fixed seed produces the same summary (and JSON) at
   -j 1 and -j 4. *)
let test_fuzz_j1_equivalence () =
  let run domains =
    let pool = Pool.create ~domains () in
    Finepar_fuzz.Driver.run ~pool ~cases:60 ~seed:7 ()
  in
  let s1 = run 1 and s4 = run 4 in
  Alcotest.(check string)
    "fuzz summary JSON identical at -j1 and -j4"
    (Finepar_fuzz.Driver.summary_to_json s1)
    (Finepar_fuzz.Driver.summary_to_json s4);
  Alcotest.(check int) "cases_run" s1.cases_run s4.cases_run;
  Alcotest.(check int) "passed" s1.passed s4.passed

(* Same contract on the experiments layer: per-kernel rows computed in
   parallel must regroup to exactly the sequential result. *)
let test_experiments_j1_equivalence () =
  let pool = Pool.create ~domains:4 () in
  let seq = Finepar.Experiments.fig12 () in
  let par = Finepar.Experiments.fig12 ~pool () in
  Alcotest.(check bool) "fig12 rows identical under the pool" true (seq = par)

(* Pool execution statistics: task counts are exact, timing fields are
   consistent, and the sequential degradation path is counted too. *)
let test_pool_stats () =
  let pool = Pool.create ~domains:4 () in
  let zero = Pool.stats pool in
  Alcotest.(check int) "fresh pool: no runs" 0 zero.Pool.runs;
  Alcotest.(check int) "fresh pool: no tasks" 0 zero.Pool.tasks;
  Alcotest.(check (float 0.0)) "fresh pool: imbalance 1.0" 1.0
    zero.Pool.imbalance;
  ignore (Pool.map pool ~f:spin (List.init 100 Fun.id));
  ignore (Pool.map pool ~f:spin (List.init 50 Fun.id));
  let s = Pool.stats pool in
  Alcotest.(check int) "width recorded" 4 s.Pool.domains;
  Alcotest.(check int) "two runs" 2 s.Pool.runs;
  Alcotest.(check int) "tasks = elements mapped" 150 s.Pool.tasks;
  Alcotest.(check int) "per-slot arrays sized by width" 4
    (Array.length s.Pool.worker_tasks);
  Alcotest.(check int) "per-slot tasks sum to the total" s.Pool.tasks
    (Array.fold_left ( + ) 0 s.Pool.worker_tasks);
  Alcotest.(check bool) "busy time accumulates" true (s.Pool.busy_seconds > 0.);
  Alcotest.(check bool) "per-slot busy sums to the total" true
    (Float.abs (Array.fold_left ( +. ) 0. s.Pool.worker_busy
               -. s.Pool.busy_seconds)
    < 1e-9);
  Alcotest.(check bool) "run wall clock recorded" true (s.Pool.run_seconds > 0.);
  Alcotest.(check bool) "idle time nonnegative" true (s.Pool.idle_seconds >= 0.);
  Alcotest.(check bool) "steal failures nonnegative" true
    (s.Pool.steal_failures >= 0);
  Alcotest.(check bool) "imbalance at least 1.0" true (s.Pool.imbalance >= 1.0);
  Alcotest.(check bool) "imbalance bounded by width" true
    (s.Pool.imbalance <= float_of_int s.Pool.domains +. 1e-9);
  Pool.reset_stats pool;
  let z = Pool.stats pool in
  Alcotest.(check int) "reset: runs" 0 z.Pool.runs;
  Alcotest.(check int) "reset: tasks" 0 z.Pool.tasks;
  Alcotest.(check (float 0.0)) "reset: busy" 0.0 z.Pool.busy_seconds;
  Alcotest.(check int) "reset: per-slot tasks" 0
    (Array.fold_left ( + ) 0 z.Pool.worker_tasks);
  (* The sequential path (one domain) still counts its work. *)
  let seq = Pool.create ~domains:1 () in
  ignore (Pool.map seq ~f:spin (List.init 30 Fun.id));
  let s1 = Pool.stats seq in
  Alcotest.(check int) "sequential: tasks counted" 30 s1.Pool.tasks;
  Alcotest.(check int) "sequential: attributed to slot 0" 30
    s1.Pool.worker_tasks.(0);
  Alcotest.(check int) "sequential: no steals" 0 s1.Pool.steals;
  Alcotest.(check (float 0.0)) "sequential: even by definition" 1.0
    s1.Pool.imbalance

(* The strict JSON parser backing the bench gate. *)
let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\ne\xc3\xa9");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("o", Json.Obj [ ("nested", Json.Float 2.5e-3) ]);
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok parsed ->
    Alcotest.(check string)
      "round-trip" (Json.to_string doc) (Json.to_string parsed)
  | Error e -> Alcotest.fail e);
  (match Json.of_string "3" with
  | Ok (Json.Int 3) -> ()
  | _ -> Alcotest.fail "plain integer literal parses as Int");
  (match Json.of_string "3.0" with
  | Ok (Json.Float _) -> ()
  | _ -> Alcotest.fail "fractional literal parses as Float");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted invalid %S" bad))
    [ "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"unterminated"; "01"; "+1"; "" ]

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "nested map rejected" `Quick
            test_nested_map_rejected;
          Alcotest.test_case "FINEPAR_DOMAINS default" `Quick
            test_default_domains_env;
          Alcotest.test_case "execution stats" `Quick test_pool_stats;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fuzz -j1 = -j4" `Quick test_fuzz_j1_equivalence;
          Alcotest.test_case "experiments -j1 = -j4" `Quick
            test_experiments_j1_equivalence;
        ] );
      ( "json",
        [ Alcotest.test_case "parser round-trip" `Quick test_json_roundtrip ] );
    ]
