(case
 (kernel
  (name fuzz)
  (index i)
  (lo 3)
  (hi 4)
  (arrays (a f64 14) (b f64 4) (out f64 4))
  (scalars
   (p f64 (f 0x1.0acd582c8a2ap-4))
   (q f64 (f 0x1.996103cc31514p+0))
   (k i64 (i 0))
   (facc f64 (f 0x1.0f0ba90ef49cp-4))
   (gacc f64 (f 0x1p+0))
   (iacc i64 (i 4)))
  (body
   (store out (var i) (const (f -0x1.12a564816c65p+0)))
   (store
    out
    (var i)
    (binop add (var q) (binop mul (var facc) (load a (const (i 3))))))
   (store
    out
    (var i)
    (binop
     add
     (binop div (load b (var i)) (load a (var i)))
     (select
      (binop le (var k) (var iacc))
      (load b (const (i 0)))
      (load b (var i)))))
   (store
    out
    (var i)
    (binop
     div
     (binop sub (load b (var i)) (var facc))
     (binop
      add
      (unop abs (binop add (load a (var i)) (load b (var i))))
      (const (f 0x1p+0))))))
  (live_out q facc gacc iacc))
 (config
  (cores 4)
  (max_height 2)
  (algorithm multi_pair)
  (throughput true)
  (max_queue_pairs 1)
  (speculation false)
  (comm_mode queues)
  (machine
   (queue_len 4)
   (transfer_latency 20)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 6)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 0)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 2)))
 (placement identity)
 (workload_seed 121))
