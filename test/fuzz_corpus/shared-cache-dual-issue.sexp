(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 28)
  (arrays (a f64 34) (out f64 41) (out2 f64 33) (iout i64 39))
  (scalars
   (p f64 (f 0x1.981c1db8e85dp+0))
   (q f64 (f 0x1.10ccba045e90ep+0))
   (k i64 (i -3))
   (facc f64 (f 0x1.0a1c729c75d6ep-1))
   (gacc f64 (f 0x1p+0))
   (iacc i64 (i 2)))
  (body
   (assign
    iacc
    (binop
     add
     (var iacc)
     (binop div (binop rem (var iacc) (const (i 8))) (var iacc))))
   (store out2 (var i) (unop to_float (var iacc)))
   (store out2 (var i) (unop to_float (binop mul (const (i -2)) (var i))))
   (if
    (binop ne (const (i 0)) (var i))
    ((assign t1 (binop div (binop add (var q) (load out2 (var i))) (var q)))
     (assign
      m2
      (binop
       max
       (unop to_int (const (f 0x1.5f3ab1331f0c8p-1)))
       (binop lt (const (i 0)) (var k)))))
    ((assign m2 (binop lt (binop rem (const (i 6)) (const (i 8))) (var k)))))
   (assign x3 (var iacc))
   (assign
    x4
    (select
     (binop ne (var i) (var iacc))
     (binop add (const (f -0x1.afa7902aa3d8p-5)) (var p))
     (binop
      div
      (var q)
      (binop
       add
       (unop abs (const (f 0x1.08665c4a9d80cp+0)))
       (const (f 0x1p+0))))))
   (assign
    facc
    (binop
     max
     (var facc)
     (binop
      min
      (unop exp (binop min (var gacc) (const (f 0x1p+2))))
      (binop mul (load out (var i)) (const (f 0x1.3db4365a706acp+1))))))
   (assign
    x5
    (binop
     min
     (binop
      div
      (binop sub (load a (var i)) (var q))
      (binop
       add
       (unop
        abs
        (select
         (binop eq (load out (const (i 2))) (var q))
         (const (f 0x1.784729406481p-1))
         (var p)))
       (const (f 0x1p+0))))
     (binop max (var x4) (const (f 0x1.727de43b2c55ap+0)))))
   (store out (var i) (binop min (var q) (unop abs (var q)))))
  (live_out facc iacc))
 (config
  (cores 4)
  (max_height 3)
  (algorithm greedy)
  (throughput true)
  (max_queue_pairs none)
  (speculation false)
  (comm_mode shared_cache)
  (machine
   (queue_len 2)
   (transfer_latency 5)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 2)
   (l2_hit 12)
   (mem_latency 200)
   (branch_taken_penalty 3)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 2)))
 (placement identity)
 (workload_seed 706))
