(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 11)
  (arrays (a f64 23) (b f64 14) (out f64 16) (iout i64 13))
  (scalars
   (p f64 (f 0x1.dcdfa508ebad8p-2))
   (q f64 (f 0x1.79656b5677ceap+0))
   (k i64 (i -1)))
  (body
   (assign
    x1
    (binop add (unop neg (load a (var i))) (unop sqrt (unop abs (var p)))))
   (store out (var i) (binop sub (load b (var i)) (var q)))
   (store out (var i) (unop abs (binop sub (var p) (var p))))
   (store
    out
    (var i)
    (binop
     div
     (select (binop gt (var i) (const (i -3))) (var x1) (var x1))
     (unop abs (var x1))))
   (if
    (binop
     eq
     (unop to_int (const (f 0x1.65521cc9afb24p-1)))
     (binop eq (var i) (const (i -4))))
    ((store
      out
      (var i)
      (binop
       min
       (binop mul (var p) (load b (var i)))
       (select
        (binop eq (const (f -0x1.59a2f13b7be5p+0)) (var q))
        (var p)
        (load a (var i)))))
     (assign
      m2
      (binop
       sub
       (binop div (var x1) (const (f 0x1.25fa2c4667a28p-1)))
       (select (binop le (const (i 1)) (var i)) (load b (var i)) (var q)))))
    ((store
      iout
      (var i)
      (binop shl (binop min (var i) (const (i 6))) (const (i 1))))
     (assign m2 (var x1))))
   (store
    out
    (var i)
    (unop
     abs
     (binop
      div
      (load a (var i))
      (binop
       add
       (unop abs (const (f -0x1.9b4bdf11ab2dp-3)))
       (const (f 0x1p+0)))))))
  (live_out q))
 (config
  (cores 4)
  (max_height 1)
  (algorithm greedy)
  (throughput false)
  (max_queue_pairs none)
  (speculation true)
  (comm_mode queues)
  (machine
   (queue_len 4)
   (transfer_latency 20)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 2)
   (l2_hit 12)
   (mem_latency 80)
   (branch_taken_penalty 1)
   (deq_latency 1)
   (max_cycles 2300)
   (issue_width 2)))
 (placement identity)
 (workload_seed 309))
