(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 5)
  (arrays
   (a f64 5)
   (b f64 6)
   (idx i64 11)
   (out f64 17)
   (out2 f64 21)
   (iout i64 14))
  (scalars
   (p f64 (f 0x1.e5499cf62d006p+0))
   (q f64 (f 0x1.67708ba0bae04p+1))
   (k i64 (i 0))
   (gacc f64 (f 0x1p+0)))
  (body
   (store
    out
    (var i)
    (select
     (binop lt (const (f 0x1.d58b01fc65d0cp-1)) (var q))
     (unop abs (var gacc))
     (unop abs (load out (load idx (var i))))))
   (store
    out
    (var i)
    (binop
     mul
     (binop
      min
      (load out (load idx (var i)))
      (const (f -0x1.dd5f15091ae9p-2)))
     (binop div (load b (load idx (var i))) (const (f 0x1.7b4ee23de7d34p+1)))))
   (assign x1 (binop add (var k) (var i)))
   (store iout (load idx (var i)) (var i))
   (assign
    x2
    (binop
     div
     (unop to_float (var k))
     (binop add (unop abs (binop sub (var p) (var p))) (const (f 0x1p+0)))))
   (store
    out
    (var i)
    (binop
     div
     (load out2 (var i))
     (binop add (unop abs (unop to_float (const (i -3)))) (const (f 0x1p+0))))))
  (live_out))
 (config
  (cores 4)
  (max_height 1)
  (algorithm multi_pair)
  (throughput true)
  (max_queue_pairs 4)
  (speculation true)
  (comm_mode queues)
  (machine
   (queue_len 20)
   (transfer_latency 1)
   (l1_bytes 16384)
   (l1_line 64)
   (l2_bytes 4194304)
   (l1_hit 2)
   (l2_hit 12)
   (mem_latency 80)
   (branch_taken_penalty 3)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 2)))
 (placement mod2)
 (workload_seed 922))
