(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 1)
  (arrays (a f64 13) (b f64 10) (idx i64 7) (out f64 18) (out2 f64 14))
  (scalars
   (p f64 (f 0x1.54613a14dc0a8p-1))
   (q f64 (f 0x1.855668fdfedfcp+0))
   (k i64 (i -1))
   (iacc i64 (i 0)))
  (body
   (assign
    x1
    (select
     (binop le (var iacc) (load idx (load idx (var i))))
     (binop mul (var q) (load out2 (var i)))
     (binop mul (var q) (const (f 0x1.97e08de0c2354p-1)))))
   (store
    out
    (load idx (var i))
    (binop
     max
     (binop
      div
      (const (f 0x1.a73eb3b37d82p-3))
      (binop
       add
       (unop abs (const (f 0x1.5e1624783e1cep+1)))
       (const (f 0x1p+0))))
     (binop div (var q) (binop add (unop abs (var x1)) (const (f 0x1p+0))))))
   (store
    out
    (load idx (var i))
    (unop to_float (binop shl (const (i 3)) (const (i 1)))))
   (assign
    iacc
    (binop
     max
     (var iacc)
     (binop
      max
      (binop mul (var i) (load idx (var i)))
      (load idx (const (i 0))))))
   (assign x2 (unop to_float (binop add (var iacc) (const (i 8)))))
   (assign x3 (var q))
   (store
    out2
    (load idx (var i))
    (select
     (binop le (load idx (var i)) (const (i 2)))
     (binop div (const (f 0x1.79955695d54dep+1)) (var p))
     (binop min (var x1) (load a (var i)))))
   (store
    out
    (var i)
    (binop
     div
     (unop to_float (var iacc))
     (binop
      add
      (unop abs (binop add (load out (var i)) (var x1)))
      (const (f 0x1p+0))))))
  (live_out iacc))
 (config
  (cores 2)
  (max_height 2)
  (algorithm multi_pair)
  (throughput true)
  (max_queue_pairs 3)
  (speculation false)
  (machine
   (queue_len 4)
   (transfer_latency 5)
   (l1_bytes 16384)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 6)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 1)
   (deq_latency 2)
   (max_cycles 200000000)))
 (placement mod2)
 (workload_seed 818))
