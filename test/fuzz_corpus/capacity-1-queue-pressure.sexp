(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 14)
  (arrays (a f64 28) (b f64 17) (out f64 22) (out2 f64 26))
  (scalars
   (p f64 (f 0x1.9fd0bd3f2d6e8p+0))
   (q f64 (f 0x1.194fe0afe43d2p+0))
   (k i64 (i -1))
   (facc f64 (f -0x1.ed2dc38dcd718p-3)))
  (body
   (assign x1 (var facc))
   (store
    out
    (var i)
    (binop
     div
     (const (f -0x1.90b38ad3b4f2ep+0))
     (binop
      add
      (unop
       abs
       (binop
        div
        (var p)
        (binop add (unop abs (load b (var i))) (const (f 0x1p+0)))))
      (const (f 0x1p+0)))))
   (assign
    x2
    (unop
     exp
     (binop
      min
      (unop log (binop add (unop abs (var q)) (const (f 0x1p-1))))
      (const (f 0x1p+2)))))
   (if
    (binop ge (var x2) (load b (var i)))
    ((store out (var i) (var q))
     (assign t3 (unop to_float (unop to_int (load b (var i)))))
     (if
      (binop
       le
       (unop neg (const (f 0x1.bc8a9c003424cp+0)))
       (unop exp (binop min (var facc) (const (f 0x1p+2)))))
      ((assign t4 (var i))
       (assign
        facc
        (binop
         add
         (var facc)
         (binop
          div
          (binop
           div
           (const (f -0x1.a4ff2be1a174ep+0))
           (binop add (unop abs (load out2 (var i))) (const (f 0x1p+0))))
          (unop sqrt (unop abs (load b (var i)))))))
       (assign m5 (binop max (binop sub (var i) (var i)) (var i))))
      ((store
        out
        (var i)
        (binop
         min
         (binop add (var x1) (var x1))
         (binop
          div
          (var x2)
          (binop add (unop abs (load b (var i))) (const (f 0x1p+0))))))
       (store
        out2
        (var i)
        (binop
         div
         (unop exp (binop min (load out (const (i 0))) (const (f 0x1p+2))))
         (var facc)))
       (assign facc (var facc))
       (assign m5 (var i))))
     (assign m6 (binop shl (var i) (const (i 4)))))
    ((assign m6 (unop to_int (unop to_float (const (i 1)))))))
   (store
    out
    (var i)
    (binop
     min
     (binop div (load a (var i)) (var x1))
     (const (f -0x1.e322039fd9398p-2))))
   (if
    (binop ge (binop eq (const (i 6)) (var m6)) (const (i 5)))
    ((store
      out2
      (var i)
      (binop
       min
       (binop
        div
        (var facc)
        (binop add (unop abs (var q)) (const (f 0x1p+0))))
       (binop max (var x2) (const (f -0x1.7b9ec53144d76p+0)))))
     (assign
      facc
      (binop
       max
       (var facc)
       (unop
        exp
        (binop min (binop add (load b (var i)) (var q)) (const (f 0x1p+2)))))))
    ((if
      (binop
       le
       (binop or (const (i 3)) (const (i -4)))
       (binop shr (var i) (const (i 0))))
      ((store out (var i) (const (f -0x1.33c9faa73439p-1)))
       (store
        out2
        (var i)
        (binop
         add
         (unop to_float (var i))
         (binop max (var q) (load out2 (var i)))))
       (assign m7 (binop mul (const (f 0x1.6a4d72f46d02cp+0)) (var x2))))
      ((store
        out2
        (var i)
        (binop
         min
         (binop min (const (f 0x1.3261c8887684p+0)) (var x2))
         (var q)))
       (assign
        m7
        (binop
         div
         (binop add (load out2 (var i)) (var x1))
         (binop
          add
          (unop
           abs
           (select
            (binop le (const (f 0x1.3dfbbfe4d1d68p+1)) (var x1))
            (load out2 (var i))
            (load out2 (var i))))
          (const (f 0x1p+0)))))))
     (store
      out2
      (var i)
      (binop
       div
       (binop add (const (f 0x1.bc96d38dd8e38p-1)) (load out2 (var i)))
       (binop sub (load b (var i)) (const (f 0x1.f8d215815aa2cp+0)))))
     (assign facc (var facc))))
   (assign
    x8
    (unop
     to_float
     (binop
      min
      (binop add (var m6) (const (i 7)))
      (binop div (var k) (const (i -1))))))
   (assign x9 (binop max (var q) (load a (const (i 3)))))
   (store out (var i) (unop to_float (binop add (var k) (var k)))))
  (live_out q facc))
 (config
  (cores 4)
  (max_height 2)
  (algorithm greedy)
  (throughput false)
  (max_queue_pairs none)
  (speculation false)
  (machine
   (queue_len 1)
   (transfer_latency 400)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 2)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 3)
   (deq_latency 1)
   (max_cycles 200000000)))
 (placement mod2)
 (workload_seed 549))
