(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 18)
  (arrays (a f64 23) (idx i64 32) (out f64 31) (out2 f64 33) (iout i64 30))
  (scalars
   (p f64 (f 0x1.90786bfdd3894p-1))
   (q f64 (f 0x1.fb43d8530ccc9p+0))
   (k i64 (i 8))
   (facc f64 (f 0x1.a0df665f4ef48p-2))
   (gacc f64 (f 0x1p+0)))
  (body
   (if
    (binop
     ge
     (binop sub (var p) (var q))
     (binop mul (load out (load idx (var i))) (load out2 (var i))))
    ((assign
      t1
      (binop
       sub
       (binop min (var facc) (load a (load idx (var i))))
       (unop
        log
        (binop add (unop abs (load out (var i))) (const (f 0x1p-1))))))
     (assign
      m4
      (binop
       max
       (load a (var i))
       (binop min (var p) (load out2 (load idx (var i)))))))
    ((if
      (binop gt (binop gt (var k) (var i)) (const (i 7)))
      ((store
        out2
        (load idx (var i))
        (binop
         div
         (binop mul (var gacc) (load out (load idx (var i))))
         (load out (var i)))))
      ((assign
        t2
        (binop
         div
         (binop
          div
          (var gacc)
          (binop add (unop abs (load a (var i))) (const (f 0x1p+0))))
         (binop
          add
          (unop
           abs
           (binop
            div
            (const (f -0x1.059453e8a5028p+0))
            (load out (load idx (var i)))))
          (const (f 0x1p+0)))))
       (assign t3 (binop rem (var i) (var k)))))
     (store
      out2
      (var i)
      (binop
       mul
       (binop div (load out2 (var i)) (load a (var i)))
       (unop neg (load a (var i)))))
     (assign
      m4
      (unop
       exp
       (binop min (const (f 0x1.57a9887b454acp-1)) (const (f 0x1p+2)))))))
   (assign x5 (var m4))
   (store
    iout
    (var i)
    (binop
     le
     (binop min (var p) (load out2 (load idx (var i))))
     (binop add (load out (load idx (var i))) (load out2 (var i)))))
   (assign x6 (const (i 6)))
   (assign x7 (const (i -2)))
   (store
    out
    (var i)
    (binop
     div
     (var q)
     (binop sub (load out2 (load idx (var i))) (load a (var i))))))
  (live_out facc gacc))
 (config
  (cores 2)
  (max_height 3)
  (algorithm multi_pair)
  (throughput false)
  (max_queue_pairs none)
  (speculation false)
  (comm_mode queues)
  (machine
   (queue_len 1)
   (transfer_latency 400)
   (l1_bytes 2048)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 6)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 1)
   (deq_latency 1)
   (max_cycles 200000000)
   (issue_width 2)))
 (placement identity)
 (workload_seed 988))
