(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 0)
  (arrays (a f64 12) (b f64 17) (idx i64 18) (out f64 16) (out2 f64 5))
  (scalars
   (p f64 (f -0x1.51ff1b6afa8bcp-2))
   (q f64 (f 0x1.051d326c48b82p+0))
   (k i64 (i 7))
   (facc f64 (f 0x1.972fdfa7d9fb8p-2)))
  (body
   (store
    out2
    (var i)
    (binop
     max
     (const (f 0x1.beef7f851d326p+0))
     (binop mul (load b (const (i 2))) (var q))))
   (store
    out
    (load idx (var i))
    (binop
     div
     (unop exp (binop min (var facc) (const (f 0x1p+2))))
     (binop add (unop abs (load b (const (i 1)))) (const (f 0x1p+0)))))
   (assign
    x1
    (binop
     min
     (unop sqrt (unop abs (var p)))
     (unop exp (binop min (load b (load idx (var i))) (const (f 0x1p+2))))))
   (assign x2 (unop to_float (var k)))
   (assign
    x3
    (binop
     sub
     (binop shl (var k) (const (i 4)))
     (binop ne (const (f 0x1.6db4f0bb19c78p+0)) (var q))))
   (store out (var i) (unop to_float (binop mul (const (i 0)) (var i)))))
  (live_out p facc))
 (config
  (cores 4)
  (max_height 2)
  (algorithm multi_pair)
  (throughput false)
  (max_queue_pairs none)
  (speculation true)
  (comm_mode queues)
  (machine
   (queue_len 20)
   (transfer_latency 1)
   (l1_bytes 2048)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 6)
   (l2_hit 12)
   (mem_latency 80)
   (branch_taken_penalty 1)
   (deq_latency 1)
   (max_cycles 200000000)
   (issue_width 1)))
 (placement identity)
 (workload_seed 472))
