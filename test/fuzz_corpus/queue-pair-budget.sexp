(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 26)
  (arrays (a f64 30) (b f64 27) (idx i64 42) (out f64 35) (out2 f64 35))
  (scalars
   (p f64 (f 0x1.df2ed8952081cp+0))
   (k i64 (i -3))
   (facc f64 (f -0x1.443055dbf2a6cp-2))
   (gacc f64 (f 0x1p+0)))
  (body
   (assign
    gacc
    (binop
     max
     (var gacc)
     (binop
      min
      (binop
       div
       (const (f -0x1.2296db3d1a9b6p+0))
       (binop add (unop abs (load b (var i))) (const (f 0x1p+0))))
      (binop div (var gacc) (load a (var i))))))
   (assign x1 (binop max (load b (var i)) (const (f 0x1.b558fc625f13cp-1))))
   (assign
    x2
    (select
     (binop ne (var p) (const (f 0x1.07f4d1f89041p-1)))
     (load b (load idx (var i)))
     (const (f 0x1.e5782a1c03a8p-4))))
   (store
    out
    (load idx (var i))
    (binop
     mul
     (binop add (load b (var i)) (const (f 0x1.1e40f506baebp-1)))
     (binop max (var x2) (const (f 0x1.cba7ef8c43f54p+0)))))
   (store
    out2
    (load idx (var i))
    (unop
     neg
     (binop
      max
      (const (f -0x1.dd71fb0c3bb6ap+0))
      (const (f -0x1.1a06488769bf4p-1)))))
   (if
    (binop
     lt
     (binop add (var p) (load b (load idx (var i))))
     (unop sqrt (unop abs (load a (var i)))))
    ((store
      out
      (var i)
      (binop
       max
       (unop abs (load a (load idx (var i))))
       (unop exp (binop min (load a (var i)) (const (f 0x1p+2))))))
     (if
      (binop
       lt
       (binop shl (var i) (const (i 1)))
       (binop or (const (i 8)) (var i)))
      ((assign t3 (unop to_float (load idx (var i))))
       (store
        out
        (load idx (var i))
        (binop
         div
         (binop max (var gacc) (var x2))
         (load b (load idx (var i)))))
       (assign
        facc
        (binop
         max
         (var facc)
         (binop
          min
          (unop neg (var x1))
          (binop mul (load a (load idx (var i))) (var facc)))))
       (assign m5 (const (f -0x1.7cbccc7c321dap+0))))
      ((assign
        t4
        (binop div (binop shl (load idx (var i)) (const (i 2))) (var k)))
       (assign facc (var facc))
       (assign
        m5
        (binop
         add
         (unop sqrt (unop abs (load a (load idx (var i)))))
         (binop
          add
          (const (f 0x1.10a46b8e2bb54p+1))
          (const (f -0x1.308d5dcec4a4ap+0)))))))
     (assign facc (binop min (var facc) (var gacc))))
    ((assign
      t6
      (binop
       add
       (binop sub (var x2) (var facc))
       (binop mul (load b (const (i 0))) (var gacc))))
     (assign facc (var facc))))
   (store
    out
    (var i)
    (binop
     sub
     (binop min (var gacc) (load a (var i)))
     (unop to_float (load idx (load idx (var i)))))))
  (live_out facc gacc))
 (config
  (cores 4)
  (max_height 3)
  (algorithm greedy)
  (throughput false)
  (max_queue_pairs 1)
  (speculation true)
  (machine
   (queue_len 2)
   (transfer_latency 50)
   (l1_bytes 2048)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 6)
   (l2_hit 40)
   (mem_latency 200)
   (branch_taken_penalty 1)
   (deq_latency 2)
   (max_cycles 200000000)))
 (placement single-core)
 (workload_seed 804))
