(case
 (kernel
  (name fuzz)
  (index i)
  (lo 4)
  (hi 6)
  (arrays (a f64 14) (b f64 15) (idx i64 11) (out f64 6))
  (scalars
   (p f64 (f 0x1.d9812a4a74664p+0))
   (q f64 (f 0x1.696d1191e194cp-3))
   (k i64 (i -2))
   (gacc f64 (f 0x1p+0)))
  (body
   (if
    (binop
     ne
     (unop to_int (load out (var i)))
     (binop min (const (i -1)) (var i)))
    ((assign
      t1
      (binop
       add
       (select
        (binop le (load idx (load idx (var i))) (const (i 7)))
        (var gacc)
        (var p))
       (binop min (var p) (var q)))))
    ((if
      (binop
       le
       (unop to_float (var k))
       (binop mul (load out (var i)) (const (f 0x1.215d52f41041p-2))))
      ((store
        out
        (var i)
        (binop
         add
         (binop
          div
          (load b (load idx (var i)))
          (binop add (unop abs (var p)) (const (f 0x1p+0))))
         (unop sqrt (unop abs (var q)))))
       (store
        out
        (load idx (var i))
        (binop
         min
         (binop add (load b (var i)) (const (f -0x1.8969a4eb2eecap-1)))
         (unop
          log
          (binop add (unop abs (load a (var i))) (const (f 0x1p-1)))))))
      ((store
        out
        (load idx (var i))
        (binop
         div
         (binop min (var q) (const (f -0x1.7b6343a1c6aep-2)))
         (binop
          add
          (unop abs (binop add (load b (var i)) (var gacc)))
          (const (f 0x1p+0)))))
       (assign
        t2
        (binop
         and
         (binop or (var i) (load idx (var i)))
         (binop and (var k) (const (i 4)))))))
     (store
      out
      (const (i 1))
      (unop sqrt (unop abs (load out (load idx (var i))))))))
   (assign
    gacc
    (binop
     add
     (var gacc)
     (binop add (unop to_float (var i)) (binop min (load a (var i)) (var p)))))
   (assign x3 (binop lt (const (i 0)) (const (i -2))))
   (if
    (binop
     eq
     (binop max (const (i -1)) (const (i 1)))
     (binop min (var k) (var k)))
    ((store
      out
      (const (i 3))
      (unop
       exp
       (binop
        min
        (binop
         div
         (var gacc)
         (binop add (unop abs (var p)) (const (f 0x1p+0))))
        (const (f 0x1p+2)))))
     (assign
      gacc
      (binop
       add
       (binop mul (var gacc) (const (f 0x1.1256a496b31ecp+0)))
       (unop neg (binop min (var q) (var gacc))))))
    ((assign
      t4
      (binop
       le
       (binop or (const (i -2)) (load idx (const (i 1))))
       (binop and (var i) (var k))))
     (store
      out
      (const (i 0))
      (binop
       mul
       (binop
        div
        (var p)
        (binop
         add
         (unop abs (const (f -0x1.69151d07ded2ep+0)))
         (const (f 0x1p+0))))
       (select
        (binop ne (const (i 5)) (load idx (var i)))
        (load out (var i))
        (load out (load idx (var i))))))
     (assign gacc (var gacc))))
   (if
    (binop
     ge
     (binop div (load a (load idx (var i))) (load out (var i)))
     (binop mul (load a (const (i 2))) (var gacc)))
    ((if
      (binop
       ge
       (unop to_int (load out (var i)))
       (unop to_int (load a (var i))))
      ((assign
        t5
        (binop
         add
         (binop max (load out (var i)) (var gacc))
         (unop
          log
          (binop add (unop abs (load b (var i))) (const (f 0x1p-1))))))
       (assign t6 (binop mul (binop lt (load idx (var i)) (var k)) (var x3)))
       (assign
        gacc
        (binop
         max
         (var gacc)
         (binop
          mul
          (load a (var i))
          (binop mul (load out (var i)) (load a (var i))))))
       (assign m7 (var gacc)))
      ((assign
        gacc
        (binop
         add
         (var gacc)
         (binop
          div
          (load b (load idx (var i)))
          (binop
           add
           (unop
            abs
            (binop
             add
             (const (f -0x1.ff8c87f117f32p+0))
             (load out (load idx (var i)))))
           (const (f 0x1p+0))))))
       (assign m7 (load a (load idx (var i))))))
     (assign
      m8
      (binop
       ne
       (binop add (const (i 6)) (const (i -3)))
       (binop shr (var i) (const (i 3))))))
    ((assign
      m8
      (unop to_int (binop sub (const (f -0x1.0df3d2f10b70bp+0)) (var p))))))
   (assign
    x9
    (unop
     log
     (binop
      add
      (unop
       abs
       (binop sub (load out (load idx (var i))) (load a (load idx (var i)))))
      (const (f 0x1p-1)))))
   (store
    out
    (var i)
    (binop
     max
     (binop div (var x9) (binop add (unop abs (var p)) (const (f 0x1p+0))))
     (binop mul (var q) (var q)))))
  (live_out p k gacc))
 (config
  (cores 3)
  (max_height 3)
  (algorithm multi_pair)
  (throughput false)
  (max_queue_pairs none)
  (speculation true)
  (comm_mode queues)
  (machine
   (queue_len 3)
   (transfer_latency 20)
   (l1_bytes 16384)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 6)
   (l2_hit 12)
   (mem_latency 200)
   (branch_taken_penalty 1)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 1)))
 (placement identity)
 (workload_seed 217))
