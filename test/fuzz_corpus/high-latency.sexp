(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 26)
  (arrays (a f64 29) (b f64 35) (out f64 39) (out2 f64 36))
  (scalars
   (p f64 (f 0x1.c35015817e388p-3))
   (q f64 (f 0x1.5987ed585136ep+1))
   (k i64 (i 7))
   (facc f64 (f 0x1.fece92170686cp-1))
   (gacc f64 (f 0x1p+0)))
  (body
   (assign gacc (binop min (var gacc) (unop abs (load a (var i)))))
   (store out2 (var i) (var p))
   (assign
    x1
    (binop
     max
     (unop to_float (var k))
     (unop sqrt (unop abs (const (f -0x1.a7a096d069e7p-3))))))
   (assign
    gacc
    (binop min (var gacc) (binop add (var p) (unop abs (var p)))))
   (if
    (binop
     ne
     (unop neg (var x1))
     (binop add (load b (const (i 3))) (var facc)))
    ((store out2 (const (i 2)) (const (f 0x1.9d5436e891p+0)))
     (store out2 (var i) (unop to_float (binop lt (var k) (var i))))
     (store out2 (var i) (unop to_float (binop shl (var i) (const (i 3)))))
     (assign
      gacc
      (binop
       add
       (var gacc)
       (binop
        max
        (load b (var i))
        (binop add (var q) (load a (const (i 3))))))))
    ((store out2 (var i) (binop max (load b (var i)) (var gacc)))
     (assign gacc (binop max (var gacc) (var q)))))
   (assign
    facc
    (binop
     add
     (var facc)
     (binop
      max
      (binop add (load b (var i)) (const (f -0x1.010447754e3fap+0)))
      (binop mul (load a (var i)) (const (f 0x1.a144503354204p+0))))))
   (store
    out2
    (var i)
    (binop
     div
     (binop add (load b (var i)) (const (f 0x1.169d2cbeb6f7p+0)))
     (unop to_float (var k))))
   (store
    out
    (var i)
    (select
     (binop lt (var x1) (var x1))
     (unop abs (const (f 0x1.365581b77ea3p-2)))
     (unop neg (load a (const (i 3)))))))
  (live_out k facc gacc))
 (config
  (cores 3)
  (max_height 2)
  (algorithm greedy)
  (throughput false)
  (max_queue_pairs none)
  (speculation false)
  (comm_mode queues)
  (machine
   (queue_len 4)
   (transfer_latency 50)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 6)
   (l2_hit 40)
   (mem_latency 200)
   (branch_taken_penalty 1)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 2)))
 (placement identity)
 (workload_seed 546))
