(case
 (kernel
  (name fuzz)
  (index i)
  (lo 7)
  (hi 18)
  (arrays (a f64 32) (b f64 30) (idx i64 28) (out f64 31) (iout i64 25))
  (scalars
   (p f64 (f 0x1.44516a228f3aap+0))
   (k i64 (i 0))
   (facc f64 (f 0x1.c7869baa938ap-3))
   (iacc i64 (i 0)))
  (body
   (assign
    x1
    (binop
     or
     (binop mul (var i) (var iacc))
     (binop mul (var i) (load idx (load idx (var i))))))
   (store
    out
    (var i)
    (binop
     div
     (unop to_float (var i))
     (binop add (unop abs (load a (var i))) (const (f 0x1p+0)))))
   (store out (var i) (var facc))
   (assign
    facc
    (binop
     add
     (var facc)
     (binop
      div
      (binop
       div
       (var facc)
       (binop add (unop abs (var p)) (const (f 0x1p+0))))
      (binop
       add
       (unop abs (binop sub (var facc) (load b (var i))))
       (const (f 0x1p+0))))))
   (store out (var i) (unop to_float (load idx (load idx (var i))))))
  (live_out p iacc))
 (config
  (cores 2)
  (max_height 3)
  (algorithm multi_pair)
  (throughput false)
  (max_queue_pairs none)
  (speculation false)
  (comm_mode shared_cache)
  (machine
   (queue_len 20)
   (transfer_latency 20)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 4096)
   (l1_hit 6)
   (l2_hit 12)
   (mem_latency 80)
   (branch_taken_penalty 3)
   (deq_latency 2)
   (max_cycles 200000000)
   (issue_width 1)))
 (placement identity)
 (workload_seed 369))
