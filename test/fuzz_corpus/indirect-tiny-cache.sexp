(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 3)
  (arrays
   (a f64 18)
   (b f64 12)
   (idx i64 15)
   (out f64 20)
   (out2 f64 8)
   (iout i64 13))
  (scalars
   (p f64 (f 0x1.0d195a2c5ca9p-3))
   (k i64 (i -3))
   (facc f64 (f -0x1.5cfcb462b48d4p-2))
   (iacc i64 (i 1)))
  (body
   (assign
    x1
    (binop sub (binop sub (var k) (var k)) (binop or (const (i 0)) (var k))))
   (assign
    facc
    (binop
     add
     (binop mul (var facc) (const (f 0x1.45b6f11bf865cp-1)))
     (unop to_float (binop and (var iacc) (const (i 0))))))
   (assign x2 (load idx (var i)))
   (if
    (binop
     ne
     (binop sub (load idx (var i)) (var x1))
     (binop div (load idx (const (i 3))) (var i)))
    ((assign
      t3
      (binop
       div
       (binop min (load a (load idx (var i))) (var facc))
       (binop add (unop abs (binop sub (var p) (var p))) (const (f 0x1p+0)))))
     (store
      out
      (var i)
      (binop
       add
       (binop sub (load b (load idx (var i))) (var t3))
       (unop to_float (var i)))))
    ((store
      out
      (var i)
      (select
       (binop eq (load idx (var i)) (var i))
       (binop sub (var facc) (load b (load idx (var i))))
       (select
        (binop ne (var i) (load idx (load idx (var i))))
        (load b (const (i 2)))
        (load b (var i)))))))
   (store
    out2
    (var i)
    (binop
     div
     (binop
      div
      (var facc)
      (binop
       add
       (unop abs (const (f -0x1.1481f8483c77ap-1)))
       (const (f 0x1p+0))))
     (binop
      add
      (unop abs (const (f -0x1.f1ddc29fa62ccp-2)))
      (const (f 0x1p+0)))))
   (store
    out
    (var i)
    (select
     (binop lt (var facc) (var p))
     (unop to_float (var k))
     (binop div (load a (var i)) (var p)))))
  (live_out p iacc))
 (config
  (cores 3)
  (max_height 2)
  (algorithm greedy)
  (throughput true)
  (max_queue_pairs none)
  (speculation false)
  (machine
   (queue_len 3)
   (transfer_latency 20)
   (l1_bytes 512)
   (l1_line 64)
   (l2_bytes 4194304)
   (l1_hit 2)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 3)
   (deq_latency 1)
   (max_cycles 200000000)))
 (placement div2)
 (workload_seed 290))
