(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 23)
  (arrays (a f64 26) (out f64 30) (out2 f64 39))
  (scalars
   (p f64 (f 0x1.0d64b2dc69a1cp-1))
   (k i64 (i 5))
   (facc f64 (f -0x1.2bd6c58719268p-2))
   (iacc i64 (i 4)))
  (body
   (assign x1 (unop sqrt (unop abs (unop to_float (var i)))))
   (assign x2 (load a (var i)))
   (assign x3 (binop min (var facc) (load a (var i))))
   (assign x4 (binop sub (load a (var i)) (const (f -0x1.a499836ba4d58p-2))))
   (assign x5 (unop sqrt (unop abs (load a (var i)))))
   (store
    out
    (var i)
    (select
     (binop ne (load a (var i)) (load a (const (i 0))))
     (unop to_float (var iacc))
     (unop sqrt (unop abs (var x3)))))
   (assign
    facc
    (binop
     add
     (binop mul (var facc) (const (f 0x1.0efca2173f04ep+0)))
     (select
      (binop ne (var iacc) (var iacc))
      (unop to_float (const (i 7)))
      (const (f 0x1.1e58f8f1dbbep-1)))))
   (assign
    iacc
    (binop
     min
     (var iacc)
     (binop
      min
      (binop add (const (i 3)) (var i))
      (binop sub (var k) (var i)))))
   (store out (var i) (var x3)))
  (live_out iacc))
 (config
  (cores 3)
  (max_height 1)
  (algorithm greedy)
  (throughput true)
  (max_queue_pairs none)
  (speculation true)
  (comm_mode shared_cache)
  (machine
   (queue_len 8)
   (transfer_latency 1)
   (l1_bytes 16384)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 2)
   (l2_hit 40)
   (mem_latency 200)
   (branch_taken_penalty 0)
   (deq_latency 1)
   (max_cycles 200000000)
   (issue_width 1)))
 (placement mod2)
 (workload_seed 785))
