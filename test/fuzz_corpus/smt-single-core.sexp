(case
 (kernel
  (name fuzz)
  (index i)
  (lo 0)
  (hi 6)
  (arrays (a f64 17) (b f64 21) (out f64 18))
  (scalars
   (p f64 (f 0x1.afe8c0535003cp+0))
   (q f64 (f 0x1.ef0a9f147bfc2p+0))
   (k i64 (i -2))
   (facc f64 (f -0x1.a13dde4e69bd4p-1))
   (gacc f64 (f 0x1p+0))
   (iacc i64 (i 0)))
  (body
   (assign x1 (binop sub (load a (var i)) (var p)))
   (store
    out
    (var i)
    (binop
     div
     (binop add (load a (var i)) (const (f 0x1.7705e0839bdp+1)))
     (binop add (unop abs (load b (var i))) (const (f 0x1p+0)))))
   (assign x2 (unop to_int (load a (var i))))
   (store
    out
    (var i)
    (binop
     sub
     (binop add (var q) (load a (var i)))
     (select (binop le (var q) (var facc)) (load b (var i)) (load a (var i))))))
  (live_out k facc gacc iacc))
 (config
  (cores 4)
  (max_height 1)
  (algorithm greedy)
  (throughput false)
  (max_queue_pairs none)
  (speculation false)
  (comm_mode shared_cache)
  (machine
   (queue_len 20)
   (transfer_latency 20)
   (l1_bytes 2048)
   (l1_line 64)
   (l2_bytes 65536)
   (l1_hit 2)
   (l2_hit 40)
   (mem_latency 80)
   (branch_taken_penalty 1)
   (deq_latency 1)
   (max_cycles 200000000)
   (issue_width 1)))
 (placement single-core)
 (workload_seed 679))
