(* Tests for the differential fuzzing subsystem:

   - generator soundness: random cases pass the full oracle set (any
     compiler rejection of a generated kernel is itself a failure);
   - determinism of generation and of whole campaigns from a seed;
   - reproducer serialization round-trips bit-exactly;
   - the shrinker only proposes strictly smaller, still-valid kernels;
   - mutation smoke test: a deliberately injected miscompile is caught
     by the bit-exact oracle and shrunk to a minimal reproducer;
   - the checked-in regression corpus replays green. *)

module F = Finepar_fuzz

let fail_failure seed f =
  Alcotest.failf "seed %d: %a" seed F.Oracle.pp_failure f

(* ------------------------------------------------------------------ *)
(* Generator + oracle.                                                 *)

let test_oracle_passes () =
  for seed = 0 to 119 do
    match F.Oracle.check (F.Gen.case_of_seed seed) with
    | F.Oracle.Pass _ -> ()
    | F.Oracle.Fail f -> fail_failure seed f
  done

let test_generation_deterministic () =
  List.iter
    (fun seed ->
      let a = F.Gen.case_of_seed seed and b = F.Gen.case_of_seed seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d regenerates identically" seed)
        (F.Repro.to_string a) (F.Repro.to_string b))
    [ 0; 1; 17; 42; 31337; 123456789 ]

let test_generator_covers_features () =
  (* Over a modest seed range the generator must actually produce the
     constructs it exists to cover. *)
  let has_if = ref false
  and has_indirect = ref false
  and has_zero_trip = ref false
  and has_nonzero_lo = ref false
  and has_smt = ref false
  and has_speculation = ref false
  and has_multipair = ref false in
  for seed = 0 to 299 do
    let c = F.Gen.case_of_seed seed in
    let k = c.F.Gen.kernel in
    if Finepar_ir.Kernel.trip_count k = 0 then has_zero_trip := true;
    if k.Finepar_ir.Kernel.lo > 0 then has_nonzero_lo := true;
    if c.F.Gen.placement <> F.Gen.Identity then has_smt := true;
    if c.F.Gen.config.Finepar.Compiler.speculation then has_speculation := true;
    if c.F.Gen.config.Finepar.Compiler.algorithm = `Multi_pair then
      has_multipair := true;
    Finepar_ir.Stmt.iter_block
      (fun s ->
        (match s with Finepar_ir.Stmt.If _ -> has_if := true | _ -> ());
        List.iter
          (Finepar_ir.Expr.iter (function
            | Finepar_ir.Expr.Load (_, Finepar_ir.Expr.Load _) ->
              has_indirect := true
            | _ -> ()))
          (Finepar_ir.Stmt.exprs s))
      k.Finepar_ir.Kernel.body
  done;
  List.iter
    (fun (name, seen) -> Alcotest.(check bool) name true !seen)
    [
      ("conditionals", has_if); ("indirect addressing", has_indirect);
      ("zero-trip loops", has_zero_trip); ("nonzero lower bounds", has_nonzero_lo);
      ("smt placements", has_smt); ("speculation", has_speculation);
      ("multi-pair merge", has_multipair);
    ]

(* ------------------------------------------------------------------ *)
(* Reproducer round-trip.                                              *)

let test_repro_roundtrip () =
  List.iter
    (fun seed ->
      let case = F.Gen.case_of_seed seed in
      let text = F.Repro.to_string case in
      let case' = F.Repro.of_string text in
      Alcotest.(check string)
        (Printf.sprintf "seed %d round-trips" seed)
        text (F.Repro.to_string case');
      match F.Oracle.check case' with
      | F.Oracle.Pass _ -> ()
      | F.Oracle.Fail f -> fail_failure seed f)
    [ 0; 3; 42; 777; 424242 ]

(* A reproducer carrying a config field this build does not know must
   be rejected loudly, not silently dropped: a silently-ignored knob
   replays a different configuration than the one that failed. *)
let test_repro_rejects_unknown_field () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let inject_before ~marker ~insert text =
    let n = String.length text and m = String.length marker in
    let rec find i =
      if i + m > n then Alcotest.failf "marker %s not found" marker
      else if String.sub text i m = marker then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub text 0 i ^ insert ^ String.sub text i (n - i)
  in
  let text = F.Repro.to_string (F.Gen.case_of_seed 0) in
  List.iter
    (fun (marker, insert, expected) ->
      match F.Repro.of_string (inject_before ~marker ~insert text) with
      | exception F.Repro.Parse_error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the field: %s" msg)
          true (contains msg expected)
      | _ -> Alcotest.failf "unknown field %s accepted" expected)
    [
      ("(cores", "(frobnicate 3) ", "unknown config field \"frobnicate\"");
      ( "(queue_len",
        "(bogus_latency 9) ",
        "unknown machine field \"bogus_latency\"" );
    ]

let test_repro_hex_floats () =
  (* Float constants survive bit-exactly even when decimal printing
     would not round-trip. *)
  let case = F.Gen.case_of_seed 12345 in
  let k = case.F.Gen.kernel in
  let tricky =
    {
      k with
      Finepar_ir.Kernel.scalars =
        [
          {
            Finepar_ir.Kernel.s_name = "p";
            s_ty = Finepar_ir.Types.F64;
            s_init = Finepar_ir.Types.VFloat 0.1;
          };
        ];
      body =
        [
          Finepar_ir.Stmt.Store
            ( "out",
              Finepar_ir.Expr.Var "i",
              Finepar_ir.Expr.Binop
                ( Finepar_ir.Types.Add,
                  Finepar_ir.Expr.Var "p",
                  Finepar_ir.Expr.Const
                    (Finepar_ir.Types.VFloat (1.0 /. 3.0)) ) );
        ];
      live_out = [];
      arrays =
        [
          {
            Finepar_ir.Kernel.a_name = "out";
            a_ty = Finepar_ir.Types.F64;
            a_len = max 4 k.Finepar_ir.Kernel.hi;
          };
        ];
    }
  in
  let case = { case with F.Gen.kernel = Finepar_ir.Kernel.validate tricky } in
  let case' = F.Repro.of_string (F.Repro.to_string case) in
  match
    ( (F.Repro.of_string (F.Repro.to_string case)).F.Gen.kernel.Finepar_ir.Kernel.scalars,
      case'.F.Gen.kernel.Finepar_ir.Kernel.body )
  with
  | [ { Finepar_ir.Kernel.s_init = Finepar_ir.Types.VFloat p; _ } ], _ ->
    Alcotest.(check bool) "0.1 preserved bit-exactly" true
      (Int64.equal (Int64.bits_of_float p) (Int64.bits_of_float 0.1))
  | _ -> Alcotest.fail "scalar lost in round-trip"

(* ------------------------------------------------------------------ *)
(* Shrinker.                                                           *)

let test_shrink_candidates_smaller () =
  List.iter
    (fun seed ->
      let k = (F.Gen.case_of_seed seed).F.Gen.kernel in
      let cost = F.Shrink.kernel_cost k in
      let candidates = F.Shrink.kernel_candidates k in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d has reduction candidates" seed)
        true
        (List.length candidates > 0);
      List.iter
        (fun k' ->
          Alcotest.(check bool) "strictly smaller" true
            (F.Shrink.kernel_cost k' < cost))
        candidates)
    [ 0; 5; 42; 99 ]

(* The acceptance gate for the whole harness: an injected miscompile
   must be caught and shrunk to a minimal reproducer. *)
let mutation_smoke rule () =
  let compile = F.Mutate.miscompile rule in
  let rec first_catch seed =
    if seed > 400 then Alcotest.failf "no case caught %s" (F.Mutate.rule_name rule)
    else
      let case = F.Gen.case_of_seed seed in
      match F.Oracle.check ~compile case with
      | F.Oracle.Fail f -> (seed, case, f)
      | F.Oracle.Pass _ -> first_catch (seed + 1)
  in
  let seed, case, failure = first_catch 0 in
  Alcotest.(check string)
    (Printf.sprintf "%s caught by the bit-exact oracle (seed %d)"
       (F.Mutate.rule_name rule) seed)
    "bit-exact" failure.F.Oracle.oracle;
  let shrunk, shrunk_failure = F.Shrink.shrink ~compile case failure in
  Alcotest.(check string) "failure preserved while shrinking" "bit-exact"
    shrunk_failure.F.Oracle.oracle;
  let n = F.Shrink.stmt_count shrunk.F.Gen.kernel in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 6 statements (got %d)" n)
    true (n <= 6);
  (* The minimal reproducer survives serialization and still fails. *)
  let replayed = F.Repro.of_string (F.Repro.to_string ~failure:shrunk_failure shrunk) in
  match F.Oracle.check ~compile replayed with
  | F.Oracle.Fail f ->
    Alcotest.(check string) "replayed reproducer fails identically"
      shrunk_failure.F.Oracle.oracle f.F.Oracle.oracle
  | F.Oracle.Pass _ -> Alcotest.fail "reproducer no longer fails after replay"

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let test_driver_deterministic () =
  let run () = F.Driver.run ~cases:40 ~seed:5 () in
  let a = run () and b = run () in
  Alcotest.(check int) "cases" a.F.Driver.cases_run b.F.Driver.cases_run;
  Alcotest.(check int) "passed" a.F.Driver.passed b.F.Driver.passed;
  Alcotest.(check int) "failed" a.F.Driver.failed b.F.Driver.failed;
  Alcotest.(check int) "ifs" a.F.Driver.kernels_with_ifs b.F.Driver.kernels_with_ifs;
  Alcotest.(check int) "indirect" a.F.Driver.kernels_with_indirect
    b.F.Driver.kernels_with_indirect;
  Alcotest.(check int) "partitions" a.F.Driver.total_partitions
    b.F.Driver.total_partitions;
  Alcotest.(check int) "cycles" a.F.Driver.total_cycles b.F.Driver.total_cycles;
  Alcotest.(check int) "no failures expected" 0 a.F.Driver.failed

let test_driver_reports_and_saves () =
  (* Under an injected miscompile the driver must report, shrink and
     persist reproducers. *)
  let dir = "fuzz-driver-out.tmp" in
  let compile = F.Mutate.miscompile F.Mutate.Swap_add_sub in
  let s = F.Driver.run ~compile ~out_dir:dir ~cases:30 ~seed:0 () in
  Alcotest.(check bool) "some cases fail under the miscompile" true
    (s.F.Driver.failed > 0);
  Alcotest.(check int) "every failure saved a reproducer"
    s.F.Driver.failed
    (List.length (F.Corpus.files dir));
  List.iter
    (fun (r : F.Driver.failure_report) ->
      Alcotest.(check bool) "reproducer path recorded" true
        (r.F.Driver.repro_path <> None);
      Alcotest.(check bool) "shrunk small" true
        (F.Shrink.stmt_count r.F.Driver.shrunk.F.Gen.kernel <= 6))
    s.F.Driver.failures;
  (* The saved reproducers replay as failures under the same compile. *)
  List.iter
    (fun (r : F.Corpus.replay) ->
      match r.F.Corpus.outcome with
      | Ok (F.Oracle.Fail _) -> ()
      | Ok (F.Oracle.Pass _) -> Alcotest.fail "saved reproducer passes"
      | Error m -> Alcotest.failf "unreadable reproducer: %s" m)
    (F.Corpus.replay_dir ~compile dir);
  (* Summary JSON is well-formed enough to mention every failure. *)
  let json = F.Driver.summary_to_json s in
  Alcotest.(check bool) "summary mentions failures" true
    (s.F.Driver.failed = 0
    || (String.length json > 0
       && String.length json > String.length "{\"root_seed\""));
  List.iter (fun f -> Sys.remove f) (F.Corpus.files dir);
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Corpus replay.                                                      *)

let test_corpus_green () =
  let replays = F.Corpus.replay_dir "fuzz_corpus" in
  Alcotest.(check bool)
    (Printf.sprintf "corpus present (%d entries)" (List.length replays))
    true
    (List.length replays >= 5);
  List.iter
    (fun (r : F.Corpus.replay) ->
      match r.F.Corpus.outcome with
      | Ok (F.Oracle.Pass _) -> ()
      | Ok (F.Oracle.Fail f) ->
        Alcotest.failf "%s: %a" r.F.Corpus.entry.F.Corpus.path
          F.Oracle.pp_failure f
      | Error m ->
        Alcotest.failf "%s: unreadable: %s" r.F.Corpus.entry.F.Corpus.path m)
    replays

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "oracle passes on random cases" `Quick
            test_oracle_passes;
          Alcotest.test_case "generation is deterministic" `Quick
            test_generation_deterministic;
          Alcotest.test_case "feature coverage" `Quick
            test_generator_covers_features;
        ] );
      ( "repro",
        [
          Alcotest.test_case "round-trip" `Quick test_repro_roundtrip;
          Alcotest.test_case "unknown fields rejected" `Quick
            test_repro_rejects_unknown_field;
          Alcotest.test_case "hex float bit-exactness" `Quick
            test_repro_hex_floats;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "candidates strictly smaller and valid" `Quick
            test_shrink_candidates_smaller;
          Alcotest.test_case "mutation smoke: swap add/sub" `Quick
            (mutation_smoke F.Mutate.Swap_add_sub);
          Alcotest.test_case "mutation smoke: perturb const" `Quick
            (mutation_smoke F.Mutate.Perturb_const);
          Alcotest.test_case "mutation smoke: negate condition" `Quick
            (mutation_smoke F.Mutate.Negate_condition);
        ] );
      ( "driver",
        [
          Alcotest.test_case "campaigns are deterministic" `Quick
            test_driver_deterministic;
          Alcotest.test_case "failures reported, shrunk and saved" `Quick
            test_driver_reports_and_saves;
        ] );
      ( "corpus",
        [ Alcotest.test_case "regression corpus replays green" `Quick
            test_corpus_green ] );
    ]
