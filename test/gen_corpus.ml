(* Regenerates the seed corpus under test/fuzz_corpus/.

   Each entry is the first generated case (scanning seeds from 0) that
   exhibits one feature combination the fixed test kernels do not cover;
   the scan is deterministic, so re-running this tool reproduces the
   checked-in files exactly:

     dune exec test/gen_corpus.exe -- test/fuzz_corpus

   Entries must PASS the oracle set: the corpus is a regression net (a
   replay failing later means a change broke a case that used to work),
   not a collection of open bugs. *)

module F = Finepar_fuzz

let profiles :
    (string * (F.Gen.case -> bool)) list =
  let machine (c : F.Gen.case) = c.F.Gen.config.Finepar.Compiler.machine in
  let has_indirect (c : F.Gen.case) =
    let found = ref false in
    Finepar_ir.Stmt.iter_block
      (fun s ->
        List.iter
          (Finepar_ir.Expr.iter (function
            | Finepar_ir.Expr.Load (_, Finepar_ir.Expr.Load _) -> found := true
            | _ -> ()))
          (Finepar_ir.Stmt.exprs s))
      c.F.Gen.kernel.Finepar_ir.Kernel.body;
    !found
  in
  let has_if (c : F.Gen.case) =
    List.exists
      (function Finepar_ir.Stmt.If _ -> true | _ -> false)
      c.F.Gen.kernel.Finepar_ir.Kernel.body
  in
  [
    ( "zero-trip",
      fun c -> Finepar_ir.Kernel.trip_count c.F.Gen.kernel = 0 );
    ( "spec-narrow-queue",
      fun c ->
        c.F.Gen.config.Finepar.Compiler.speculation
        && (machine c).Finepar_machine.Config.queue_len <= 3
        && has_if c );
    ( "smt-single-core",
      fun c -> c.F.Gen.placement = F.Gen.Single_core );
    ( "smt-mod2-multipair",
      fun c ->
        c.F.Gen.placement = F.Gen.Mod2
        && c.F.Gen.config.Finepar.Compiler.algorithm = `Multi_pair );
    ( "indirect-tiny-cache",
      fun c ->
        has_indirect c && (machine c).Finepar_machine.Config.l1_bytes <= 512 );
    ( "queue-pair-budget",
      fun c ->
        c.F.Gen.config.Finepar.Compiler.cores = 4
        && c.F.Gen.config.Finepar.Compiler.max_queue_pairs <> None );
    ( "high-latency",
      fun c -> (machine c).Finepar_machine.Config.transfer_latency >= 50 );
    ( "nonzero-lower-bound",
      fun c ->
        c.F.Gen.kernel.Finepar_ir.Kernel.lo > 0
        && Finepar_ir.Kernel.trip_count c.F.Gen.kernel > 0 );
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fuzz_corpus" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.iter
    (fun (name, pred) ->
      let rec scan seed =
        if seed > 20_000 then
          failwith (Printf.sprintf "no seed under 20000 matches %s" name)
        else
          let case = F.Gen.case_of_seed seed in
          if pred case then begin
            (match F.Oracle.check case with
            | F.Oracle.Pass _ -> ()
            | F.Oracle.Fail f ->
              failwith
                (Format.asprintf "seed %d (%s) fails the oracle: %a" seed name
                   F.Oracle.pp_failure f));
            let path = Filename.concat dir (Printf.sprintf "%s.sexp" name) in
            F.Repro.save path case;
            Printf.printf "%-24s seed %-6d -> %s\n" name seed path
          end
          else scan (seed + 1)
      in
      scan 0)
    profiles
