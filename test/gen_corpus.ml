(* Regenerates the seed corpus under test/fuzz_corpus/.

   Each entry is the first generated case (scanning seeds from 0) that
   exhibits one feature combination the fixed test kernels do not cover;
   the scan is deterministic, so re-running this tool reproduces the
   checked-in files exactly:

     dune exec test/gen_corpus.exe -- test/fuzz_corpus

   Entries must PASS the oracle set: the corpus is a regression net (a
   replay failing later means a change broke a case that used to work),
   not a collection of open bugs. *)

module F = Finepar_fuzz

(* A profile refines a generated case: [None] means the seed does not
   exhibit the feature; [Some case'] is the (possibly rewritten) case to
   check in.  Most profiles are pure predicates; the derived ones below
   rewrite the machine configuration (capacity-1 queues, an exact
   max_cycles budget) to reach states the generator never emits. *)
let machine (c : F.Gen.case) = c.F.Gen.config.Finepar.Compiler.machine

let with_machine (c : F.Gen.case) m =
  { c with F.Gen.config = { c.F.Gen.config with Finepar.Compiler.machine = m } }

let pred p (c : F.Gen.case) = if p c then Some c else None

(* The case compiles and its comm plan moves at least one value across
   cores — without this, a "shared-cache" entry could be a case whose
   partitioning never communicates, exercising nothing. *)
let communicates (c : F.Gen.case) =
  match Finepar.Compiler.compile c.F.Gen.config c.F.Gen.kernel with
  | exception _ -> false
  | compiled ->
    compiled.Finepar.Compiler.comm.Finepar_transform.Comm.transfers <> []

(* The tightest budget both oracle runs fit in: the parallel compilation
   and the cross-core 1-core compilation share the machine config, so the
   inclusive max_cycles boundary must sit at the slower of the two. *)
let boundary_budget (c : F.Gen.case) =
  match F.Oracle.check c with
  | F.Oracle.Fail _ -> None
  | F.Oracle.Pass stats -> (
    let one =
      { c with
        F.Gen.config = { c.F.Gen.config with Finepar.Compiler.cores = 1 }
      }
    in
    match F.Oracle.check one with
    | F.Oracle.Fail _ -> None
    | F.Oracle.Pass s1 -> Some (max stats.F.Oracle.cycles s1.F.Oracle.cycles))

let profiles : (string * (F.Gen.case -> F.Gen.case option)) list =
  let has_indirect (c : F.Gen.case) =
    let found = ref false in
    Finepar_ir.Stmt.iter_block
      (fun s ->
        List.iter
          (Finepar_ir.Expr.iter (function
            | Finepar_ir.Expr.Load (_, Finepar_ir.Expr.Load _) -> found := true
            | _ -> ()))
          (Finepar_ir.Stmt.exprs s))
      c.F.Gen.kernel.Finepar_ir.Kernel.body;
    !found
  in
  let has_if (c : F.Gen.case) =
    List.exists
      (function Finepar_ir.Stmt.If _ -> true | _ -> false)
      c.F.Gen.kernel.Finepar_ir.Kernel.body
  in
  [
    ( "zero-trip",
      pred (fun c -> Finepar_ir.Kernel.trip_count c.F.Gen.kernel = 0) );
    ( "spec-narrow-queue",
      pred (fun c ->
          c.F.Gen.config.Finepar.Compiler.speculation
          && (machine c).Finepar_machine.Config.queue_len <= 3
          && has_if c) );
    ( "smt-single-core",
      pred (fun c -> c.F.Gen.placement = F.Gen.Single_core) );
    ( "smt-mod2-multipair",
      pred (fun c ->
          c.F.Gen.placement = F.Gen.Mod2
          && c.F.Gen.config.Finepar.Compiler.algorithm = `Multi_pair) );
    ( "indirect-tiny-cache",
      pred (fun c ->
          has_indirect c && (machine c).Finepar_machine.Config.l1_bytes <= 512)
    );
    ( "queue-pair-budget",
      pred (fun c ->
          c.F.Gen.config.Finepar.Compiler.cores = 4
          && c.F.Gen.config.Finepar.Compiler.max_queue_pairs <> None) );
    ( "high-latency",
      pred (fun c -> (machine c).Finepar_machine.Config.transfer_latency >= 50)
    );
    ( "nonzero-lower-bound",
      pred (fun c ->
          c.F.Gen.kernel.Finepar_ir.Kernel.lo > 0
          && Finepar_ir.Kernel.trip_count c.F.Gen.kernel > 0) );
    (* Capacity-1 queues under a long transfer latency: every enqueue
       fills the queue and every dequeue waits out the full latency, so
       the run is dominated by queue stalls — pressure the generator
       never emits (gen_config keeps queue_len >= 2), and the kind of
       wait-heavy schedule the event engine fast-forwards through. *)
    ( "capacity-1-queue-pressure",
      fun c ->
        if Finepar_ir.Kernel.trip_count c.F.Gen.kernel < 8 then None
        else
          let m =
            { (machine c) with
              Finepar_machine.Config.queue_len = 1;
              transfer_latency = 400
            }
          in
          let c = with_machine c m in
          match F.Oracle.check c with
          (* Demand a genuinely wait-dominated run: queues in use and
             far more cycles than issued instructions, so most of the
             run is the transfer latency, not computation. *)
          | F.Oracle.Pass stats
            when stats.F.Oracle.queues_used > 0
                 && stats.F.Oracle.cycles > 25 * stats.F.Oracle.instrs ->
            Some c
          | _ -> None );
    (* Cross-thread transfers realized through the shared cache: the
       compiler lowers every queue pair to a spin-wait valid-flag
       handshake, so the replay exercises the Load/Bz spin loops and
       flag protocol none of the queue-mode entries reach. *)
    ( "shared-cache-comm",
      pred (fun c ->
          c.F.Gen.config.Finepar.Compiler.comm_mode
            = Finepar_transform.Comm.Shared_cache
          && c.F.Gen.config.Finepar.Compiler.cores >= 2
          && Finepar_ir.Kernel.trip_count c.F.Gen.kernel > 0
          && communicates c) );
    (* The two new machine axes together: dual-issue cores spinning on
       shared-cache valid flags (an extra-slot issue must not let a
       consumer overtake the producer's flag write). *)
    ( "shared-cache-dual-issue",
      pred (fun c ->
          c.F.Gen.config.Finepar.Compiler.comm_mode
            = Finepar_transform.Comm.Shared_cache
          && (machine c).Finepar_machine.Config.issue_width = 2
          && c.F.Gen.config.Finepar.Compiler.cores >= 2
          && Finepar_ir.Kernel.trip_count c.F.Gen.kernel > 0
          && communicates c) );
    (* A budget sitting exactly on the inclusive max_cycles boundary:
       the slower of the parallel and 1-core oracle runs finishes in
       precisely max_cycles cycles (one less would raise Max_cycles). *)
    ( "max-cycles-inclusive-boundary",
      fun c ->
        if Finepar_ir.Kernel.trip_count c.F.Gen.kernel = 0 then None
        else
          match boundary_budget c with
          | Some budget when budget > 100 ->
            let m =
              { (machine c) with Finepar_machine.Config.max_cycles = budget }
            in
            Some (with_machine c m)
          | _ -> None );
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fuzz_corpus" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.iter
    (fun (name, refine) ->
      let rec scan seed =
        if seed > 20_000 then
          failwith (Printf.sprintf "no seed under 20000 matches %s" name)
        else
          match refine (F.Gen.case_of_seed seed) with
          | None -> scan (seed + 1)
          | Some case -> (
            (* The corpus is a regression net, not a bug tracker: only
               oracle-passing cases are checked in.  A refined case that
               fails (e.g. the verifier rejects the protocol at capacity
               1) just means this seed does not fit the profile. *)
            match F.Oracle.check case with
            | F.Oracle.Fail _ -> scan (seed + 1)
            | F.Oracle.Pass _ ->
              let path = Filename.concat dir (Printf.sprintf "%s.sexp" name) in
              F.Repro.save path case;
              Printf.printf "%-28s seed %-6d -> %s\n" name seed path)
      in
      scan 0)
    profiles
