(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, printing measured values side by side with the
   published ones, then runs Bechamel wall-clock benchmarks of the
   compiler and simulator themselves.

   Sections (select with a command-line argument prefix, default: all):
     table1 table2 table3 fig11 fig12 fig13 fig14
     ablation_throughput ablation_multipair ablation_comm
     ablation_issue_width ablation_overhead ablation_queue
     characterization engines service autotune wallclock

   --json=FILE additionally writes the measured numbers of the sections
   that ran as machine-readable JSON (for tracking runs over time; the
   CI bench gate diffs it against bench/baseline.json).

   -j N (or --jobs=N, or the FINEPAR_DOMAINS environment variable) sets
   the domain-pool width used for the per-kernel fan-outs inside each
   section; results are merged by task index, so the output is
   byte-identical at every -j.  -j 1 is fully sequential. *)

open Finepar
module J = Finepar_telemetry.Json
module Pool = Finepar_exec.Pool

(* Everything a section needs: the domain pool for its kernel fan-outs
   and the accumulator for machine-readable copies of the printed
   numbers.  Passing it explicitly (rather than a global ref) keeps the
   accumulation task-local and in section order. *)
type ctx = { pool : Pool.t option; mutable collected : (string * J.t) list }

let collect ctx name v = ctx.collected <- (name, v) :: ctx.collected

let rule () = print_endline (String.make 78 '-')

let section name title =
  rule ();
  Fmt.pr "== %s: %s@." name title;
  rule ()

let table1 _ctx =
  section "table1" "kernel inventory (paper Table I)";
  Fmt.pr "%-10s %-52s %6s %5s %5s@." "kernel" "location in benchmark" "%time"
    "ops" "trip";
  List.iter
    (fun (r : Experiments.table1_row) ->
      Fmt.pr "%-10s %-52s %6.1f %5d %5d@." r.Experiments.t1_name
        r.Experiments.t1_location r.Experiments.t1_pct
        r.Experiments.t1_measured_ops r.Experiments.t1_trip)
    (Experiments.table1 ())

let fig12 ctx =
  section "fig12" "speedup of fine-grained parallel code (paper Fig. 12)";
  Fmt.pr "%-10s %8s %8s@." "kernel" "2-core" "4-core";
  let rows = Experiments.fig12 ?pool:ctx.pool () in
  List.iter
    (fun (r : Experiments.fig12_row) ->
      Fmt.pr "%-10s %8.2f %8.2f@." r.Experiments.f12_name r.Experiments.s2
        r.Experiments.s4)
    rows;
  let a2, a4 = Experiments.fig12_averages rows in
  Fmt.pr "%-10s %8.2f %8.2f   (paper: 1.32 / 2.05)@." "average" a2 a4;
  collect ctx "fig12"
    (J.Obj
       [
         ( "kernels",
           J.List
             (List.map
                (fun (r : Experiments.fig12_row) ->
                  J.Obj
                    [
                      ("kernel", J.String r.Experiments.f12_name);
                      ("speedup_2core", J.Float r.Experiments.s2);
                      ("speedup_4core", J.Float r.Experiments.s4);
                    ])
                rows) );
         ("average_2core", J.Float a2);
         ("average_4core", J.Float a4);
       ]);
  rows

let table2 ctx rows =
  section "table2" "expected whole-application speedups (paper Table II)";
  Fmt.pr "%-10s %8s %8s %10s %10s@." "app" "2-core" "4-core" "paper-2c"
    "paper-4c";
  let t2 = Experiments.table2 ?pool:ctx.pool ~fig12_rows:rows () in
  List.iter
    (fun (r : Experiments.table2_row) ->
      Fmt.pr "%-10s %8.2f %8.2f %10.2f %10.2f@." r.Experiments.t2_app
        r.Experiments.t2_s2 r.Experiments.t2_s4 r.Experiments.t2_paper_s2
        r.Experiments.t2_paper_s4)
    t2;
  collect ctx "table2"
    (J.List
       (List.map
          (fun (r : Experiments.table2_row) ->
            J.Obj
              [
                ("app", J.String r.Experiments.t2_app);
                ("speedup_2core", J.Float r.Experiments.t2_s2);
                ("speedup_4core", J.Float r.Experiments.t2_s4);
              ])
          t2))

let table3 ctx =
  section "table3" "per-kernel characteristics at 4 cores (paper Table III)";
  Fmt.pr "%-10s | %-36s | %s@." "" "measured" "paper";
  Fmt.pr "%-10s | %5s %5s %7s %4s %3s %5s | %5s %5s %7s %4s %3s %5s@." "kernel"
    "fib" "deps" "balance" "com" "qs" "spdup" "fib" "deps" "balance" "com"
    "qs" "spdup";
  let t3 = Experiments.table3 ?pool:ctx.pool () in
  List.iter
    (fun (r : Experiments.table3_row) ->
      let p = r.Experiments.paper in
      Fmt.pr
        "%-10s | %5d %5d %7.2f %4d %3d %5.2f | %5d %5d %7.2f %4d %3d %5.2f@."
        r.Experiments.t3_name r.Experiments.fibers r.Experiments.deps
        r.Experiments.balance r.Experiments.com_ops r.Experiments.queues
        r.Experiments.t3_speedup p.Finepar_kernels.Registry.p_fibers
        p.Finepar_kernels.Registry.p_deps p.Finepar_kernels.Registry.p_balance
        p.Finepar_kernels.Registry.p_com_ops
        p.Finepar_kernels.Registry.p_queues
        p.Finepar_kernels.Registry.p_speedup4)
    t3;
  collect ctx "table3"
    (J.List
       (List.map
          (fun (r : Experiments.table3_row) ->
            J.Obj
              [
                ("kernel", J.String r.Experiments.t3_name);
                ("fibers", J.Int r.Experiments.fibers);
                ("deps", J.Int r.Experiments.deps);
                ("balance", J.Float r.Experiments.balance);
                ("com_ops", J.Int r.Experiments.com_ops);
                ("queues", J.Int r.Experiments.queues);
                ("speedup_4core", J.Float r.Experiments.t3_speedup);
              ])
          t3))

let fig11 _ctx =
  section "fig11" "queue transfer-latency semantics (paper Fig. 11)";
  let latency, pairs = Experiments.fig11_demo () in
  List.iteri
    (fun i (enq, deq) ->
      let kind =
        if deq <= enq + latency then "early dequeue: stalled until transfer"
        else "late dequeue: no stall"
      in
      Fmt.pr "transfer %d: enqueue issued @%d, dequeue completed @%d  [%s]@."
        (i + 1) enq deq kind)
    pairs;
  Fmt.pr "(transfer latency: %d cycles)@." latency

let fig13 ctx =
  section "fig13" "degradation with queue transfer latency (paper Fig. 13)";
  let points = Experiments.fig13 ?pool:ctx.pool () in
  Fmt.pr "%-10s" "kernel";
  List.iter
    (fun (p : Experiments.fig13_point) ->
      Fmt.pr " %7s" (Printf.sprintf "lat=%d" p.Experiments.latency))
    points;
  Fmt.pr "@.";
  List.iteri
    (fun i (name, _) ->
      Fmt.pr "%-10s" name;
      List.iter
        (fun (p : Experiments.fig13_point) ->
          Fmt.pr " %7.2f" (snd (List.nth p.Experiments.per_kernel i)))
        points;
      Fmt.pr "@.")
    (List.hd points).Experiments.per_kernel;
  Fmt.pr "%-10s" "average";
  List.iter
    (fun (p : Experiments.fig13_point) -> Fmt.pr " %7.2f" p.Experiments.f13_avg)
    points;
  Fmt.pr "   (paper avg: 2.05 / 1.85 / 1.36 / ~1.0)@.";
  Fmt.pr "%-10s" "none<=1.0";
  List.iter
    (fun (p : Experiments.fig13_point) ->
      Fmt.pr " %7d" p.Experiments.no_speedup)
    points;
  Fmt.pr "@.";
  collect ctx "fig13"
    (J.List
       (List.map
          (fun (p : Experiments.fig13_point) ->
            J.Obj
              [
                ("latency", J.Int p.Experiments.latency);
                ("average_speedup", J.Float p.Experiments.f13_avg);
                ("kernels_without_speedup", J.Int p.Experiments.no_speedup);
              ])
          points))

let fig14 ctx =
  section "fig14"
    "control-flow speculation (paper Fig. 14; directives keep the better \
     version, Section III-I)";
  Fmt.pr "%-10s %8s %10s %8s %5s@." "kernel" "base" "speculate" "chosen" "ifs";
  let rows = Experiments.fig14 ?pool:ctx.pool () in
  List.iter
    (fun (r : Experiments.fig14_row) ->
      Fmt.pr "%-10s %8.2f %10.2f %8.2f %5d%s@." r.Experiments.f14_name
        r.Experiments.base r.Experiments.speculated r.Experiments.chosen
        r.Experiments.converted_ifs
        (if r.Experiments.speculated > r.Experiments.base *. 1.02 then "  (+)"
         else ""))
    rows;
  let avg f = Experiments.mean (List.map f rows) in
  let improved =
    List.length
      (List.filter
         (fun (r : Experiments.fig14_row) ->
           r.Experiments.speculated > r.Experiments.base *. 1.02)
         rows)
  in
  Fmt.pr
    "%-10s %8.2f %10s %8.2f   improved: %d kernels (paper: 2.05 -> 2.33, 8 \
     kernels)@."
    "average"
    (avg (fun r -> r.Experiments.base))
    ""
    (avg (fun r -> r.Experiments.chosen))
    improved;
  collect ctx "fig14"
    (J.Obj
       [
         ( "kernels",
           J.List
             (List.map
                (fun (r : Experiments.fig14_row) ->
                  J.Obj
                    [
                      ("kernel", J.String r.Experiments.f14_name);
                      ("base", J.Float r.Experiments.base);
                      ("speculated", J.Float r.Experiments.speculated);
                      ("chosen", J.Float r.Experiments.chosen);
                      ("converted_ifs", J.Int r.Experiments.converted_ifs);
                    ])
                rows) );
         ("average_base", J.Float (avg (fun r -> r.Experiments.base)));
         ("average_chosen", J.Float (avg (fun r -> r.Experiments.chosen)));
         ("improved", J.Int improved);
       ])

let ablation name title rows ~paper_note =
  section name title;
  Fmt.pr "%-10s %8s %9s@." "kernel" "base" "variant";
  List.iter
    (fun (r : Experiments.ablation_row) ->
      let tag =
        if r.Experiments.ab_variant > r.Experiments.ab_base *. 1.02 then "  (+)"
        else if r.Experiments.ab_variant < r.Experiments.ab_base *. 0.98 then
          "  (-)"
        else ""
      in
      Fmt.pr "%-10s %8.2f %9.2f%s@." r.Experiments.ab_name
        r.Experiments.ab_base r.Experiments.ab_variant tag)
    rows;
  let avg f = Experiments.mean (List.map f rows) in
  let up =
    List.length
      (List.filter
         (fun (r : Experiments.ablation_row) ->
           r.Experiments.ab_variant > r.Experiments.ab_base *. 1.02)
         rows)
  and down =
    List.length
      (List.filter
         (fun (r : Experiments.ablation_row) ->
           r.Experiments.ab_variant < r.Experiments.ab_base *. 0.98)
         rows)
  in
  Fmt.pr "average %.2f -> %.2f; %d improved, %d degraded.  %s@."
    (avg (fun r -> r.Experiments.ab_base))
    (avg (fun r -> r.Experiments.ab_variant))
    up down paper_note

let ablation_throughput ctx =
  ablation "ablation_throughput"
    "throughput heuristic: unidirectional partitions only (Section III-B)"
    (Experiments.throughput_ablation ?pool:ctx.pool ())
    ~paper_note:"(paper: 3 improved, 6 degraded, ~11% average slowdown)"

let ablation_multipair ctx =
  ablation "ablation_multipair"
    "multi-pair merge variant (faster compilation, Section III-B)"
    (Experiments.multipair_ablation ?pool:ctx.pool ())
    ~paper_note:"(paper: used for compile time; quality comparable)"

let ablation_rows_json rows =
  J.List
    (List.map
       (fun (r : Experiments.ablation_row) ->
         J.Obj
           [
             ("kernel", J.String r.Experiments.ab_name);
             ("base", J.Float r.Experiments.ab_base);
             ("variant", J.Float r.Experiments.ab_variant);
           ])
       rows)

let ablation_comm ctx =
  let rows = Experiments.comm_mode_ablation ?pool:ctx.pool () in
  ablation "ablation_comm"
    "hardware queues vs shared-cache valid-flag coupling (Section II)" rows
    ~paper_note:
      "(the paper's motivation for dedicated queues: cache-coupled spin \
       handshakes pay full load/store latency per transfer)";
  collect ctx "ablation_comm" (ablation_rows_json rows)

let ablation_issue_width ctx =
  let rows = Experiments.issue_width_ablation ?pool:ctx.pool () in
  ablation "ablation_issue_width"
    "single-issue vs dual-issue cores (thread-level vs ILP)" rows
    ~paper_note:
      "(both columns are 4-core speedups over a sequential baseline on the \
       same-width machine; dual issue shrinks the pie threading can win)";
  collect ctx "ablation_issue_width" (ablation_rows_json rows)

let ablation_overhead ctx =
  section "ablation_overhead"
    "spawn/barrier overhead amortization vs trip count (Section III-G)";
  Fmt.pr "%-10s %12s@." "trips" "cycles/iter";
  List.iter
    (fun (trip, per_iter, _overhead) -> Fmt.pr "%-10d %12.1f@." trip per_iter)
    (Experiments.overhead_study ?pool:ctx.pool ());
  Fmt.pr
    "(spawn + live-in transfer + barrier costs amortize away as the loop \
     runs more iterations; cold caches contribute at small trip counts \
     too)@."

let ablation_queue ctx =
  section "ablation_queue"
    "queue capacity vs transfer latency (decoupling explains latency \
     tolerance)";
  Fmt.pr "%-10s %-10s %8s@." "queue_len" "latency" "avg spdup";
  List.iter
    (fun (q, l, s) -> Fmt.pr "%-10d %-10d %8.2f@." q l s)
    (Experiments.queue_capacity_ablation ?pool:ctx.pool ())

let extension_smt ctx =
  section "extension_smt"
    "SMT: the 4-thread code on 1, 2 and 4 physical cores (Section II \
     future work)";
  Fmt.pr "%-10s %10s %10s %10s@." "kernel" "4thr/1core" "2+2/2cores"
    "1thr/core";
  let rows = Experiments.smt_study ?pool:ctx.pool () in
  List.iter
    (fun (r : Experiments.smt_row) ->
      Fmt.pr "%-10s %10.2f %10.2f %10.2f@." r.Experiments.smt_name
        r.Experiments.smt_1core r.Experiments.smt_2cores
        r.Experiments.smt_4cores)
    rows;
  let avg f = Experiments.mean (List.map f rows) in
  Fmt.pr "%-10s %10.2f %10.2f %10.2f@." "average"
    (avg (fun r -> r.Experiments.smt_1core))
    (avg (fun r -> r.Experiments.smt_2cores))
    (avg (fun r -> r.Experiments.smt_4cores));
  Fmt.pr
    "(threads sharing a core still hide each other's latencies through \
     the single issue slot)@."

let extension_queue_limit ctx =
  section "extension_queue_limit"
    "constrained queue count (Section II: limited hardware queues)";
  Fmt.pr "%-12s %10s@." "queue pairs" "avg spdup";
  List.iter
    (fun (limit, s) -> Fmt.pr "%-12d %10.2f@." limit s)
    (Experiments.queue_limit_study ?pool:ctx.pool ());
  Fmt.pr "(12 directed pairs suffice for 4 cores; tighter limits force \
          partitions to merge)@."

let extension_cores ctx =
  section "extension_cores" "scaling to 8 cores (Section II grouping)";
  let rows = Experiments.cores_sweep ?pool:ctx.pool () in
  Fmt.pr "%-10s %8s %8s %8s@." "kernel" "2-core" "4-core" "8-core";
  List.iter
    (fun (name, per_core) ->
      Fmt.pr "%-10s" name;
      List.iter (fun (_, s) -> Fmt.pr " %8.2f" s) per_core;
      Fmt.pr "@.")
    rows;
  let avg idx =
    Experiments.mean (List.map (fun (_, pc) -> snd (List.nth pc idx)) rows)
  in
  Fmt.pr "%-10s %8.2f %8.2f %8.2f@." "average" (avg 0) (avg 1) (avg 2)

let extension_simd _ctx =
  section "extension_simd"
    "static 4-way SIMD estimates (Section IV aside: irs-1 1.17, umt2k-4 \
     1.90 on real hardware; lammps/sphot unsuitable)";
  Fmt.pr "%-10s %10s %10s %10s@." "kernel" "vec cyc" "scal cyc" "est spdup";
  List.iter
    (fun (name, (r : Finepar_characterize.Simd.report)) ->
      Fmt.pr "%-10s %10d %10d %10.2f@." name
        r.Finepar_characterize.Simd.vector_cycles
        r.Finepar_characterize.Simd.scalar_cycles
        r.Finepar_characterize.Simd.simd_speedup)
    (Experiments.simd_estimates ())

let characterization _ctx =
  section "characterization" "hot-loop characterization funnel (Section IV)";
  Fmt.pr "%a@." Finepar_characterize.Classify.pp_funnel
    (Experiments.characterization ());
  Fmt.pr
    "(paper: 51 hot loops = 6 init + 25 loop-parallel (16 elementwise + 8 \
     scalar + 1 array reductions) + 2 conditional + 18 selected)@."

(* ------------------------------------------------------------------ *)
(* Simulation-engine throughput: replay the fuzz corpus under every     *)
(* engine and report simulated cycles per wall-clock second.  The       *)
(* cycle counts are identical by the cycle-exactness contract (enforced *)
(* by test_engine.ml and the fuzz oracle); only the wall time differs.  *)
(* The timed region is [Sim.run] alone: building the sim and (for the   *)
(* compiled engine) specializing it are per-kernel setup, not simulation *)
(* — they are timed separately by the tracer's sim/specialize spans —   *)
(* and a [Gc.full_major] between setup and run keeps the setup's        *)
(* collection debt from being paid inside the measured window.  Each     *)
(* engine's rate is the best of [reps] full corpus passes: timing noise  *)
(* (scheduler preemption, heap state left by earlier bench sections) is  *)
(* strictly one-sided — it can only slow a pass down — so best-of is the *)
(* stable estimator of the engine's actual throughput where a pooled     *)
(* mean would drift with whatever ran before.                            *)

let engines ctx =
  section "engines"
    "simulation-engine throughput on the fuzz corpus (cycle vs event vs \
     compiled)";
  let module F = Finepar_fuzz in
  match
    List.find_opt Sys.file_exists [ "test/fuzz_corpus"; "fuzz_corpus" ]
  with
  | None -> Fmt.pr "fuzz corpus directory not found; section skipped@."
  | Some dir ->
    let cases =
      List.filter_map
        (fun path ->
          let case = (F.Corpus.load_file path).F.Corpus.case in
          match Compiler.compile case.F.Gen.config case.F.Gen.kernel with
          | exception _ -> None
          | cc -> Some (case, cc))
        (F.Corpus.files dir)
    in
    let reps = 12 in
    let measure engine =
      let cycles = ref 0 in
      let best = ref 0.0 in
      for _ = 1 to reps do
        let rep_cycles = ref 0 in
        let rep_t = ref 0.0 in
        List.iter
          (fun ((case : F.Gen.case), (cc : Compiler.compiled)) ->
            let program = cc.Compiler.code.Finepar_codegen.Lower.program in
            let n_threads =
              Array.length program.Finepar_machine.Program.cores
            in
            let core_map = F.Gen.materialize case.F.Gen.placement n_threads in
            let workload =
              Finepar_kernels.Workload.default ~seed:case.F.Gen.workload_seed
                case.F.Gen.kernel
            in
            let sim =
              Finepar_machine.Sim.create ~core_map
                ~config:cc.Compiler.config.Compiler.machine ~initial:workload
                program
            in
            let specialized =
              if engine = Finepar_machine.Engine.Compiled then
                Some (Finepar_machine.Sim.specialize sim)
              else None
            in
            Gc.full_major ();
            let t0 = Unix.gettimeofday () in
            (match Finepar_machine.Sim.run ~engine ?specialized sim with
            | c -> rep_cycles := !rep_cycles + c
            | exception Finepar_machine.Sim.Stuck _ -> ());
            rep_t := !rep_t +. (Unix.gettimeofday () -. t0))
          cases;
        cycles := !cycles + !rep_cycles;
        let rate = float_of_int !rep_cycles /. !rep_t in
        if rate > !best then best := rate
      done;
      (!best, !cycles)
    in
    (* One row per engine, all measured in this one run; every non-cycle
       engine gets a speedup over the reference stepper's rate, and all
       engines must simulate the identical cycle total (cycle-exactness
       leaves nothing else to agree on here). *)
    let rows =
      List.map
        (fun engine -> (engine, measure engine))
        Finepar_machine.Engine.all
    in
    let cyc_rate, total =
      List.assoc Finepar_machine.Engine.Cycle rows
    in
    List.iter (fun (_, (_, total')) -> assert (total = total')) rows;
    Fmt.pr "%-8s %14s %18s@." "engine" "sim cycles" "cycles/second";
    List.iter
      (fun (engine, (rate, _)) ->
        Fmt.pr "%-8s %14d %18.0f@."
          (Finepar_machine.Engine.to_string engine)
          total rate)
      rows;
    List.iter
      (fun (engine, (rate, _)) ->
        if engine <> Finepar_machine.Engine.Cycle then
          Fmt.pr "%s-engine sim-throughput speedup: %.2fx (%d corpus cases x \
                  %d reps)@."
            (Finepar_machine.Engine.to_string engine)
            (rate /. cyc_rate) (List.length cases) reps)
      rows;
    collect ctx "engines"
      (J.Obj
         ([
            ("cases", J.Int (List.length cases));
            ("reps", J.Int reps);
            ("simulated_cycles", J.Int total);
          ]
         @ List.map
             (fun (engine, (rate, _)) ->
               ( Finepar_machine.Engine.to_string engine
                 ^ "_cycles_per_second",
                 J.Float rate ))
             rows
         @ List.filter_map
             (fun (engine, (rate, _)) ->
               if engine = Finepar_machine.Engine.Cycle then None
               else
                 Some
                   ( Finepar_machine.Engine.to_string engine ^ "_speedup",
                     J.Float (rate /. cyc_rate) ))
             rows))

(* ------------------------------------------------------------------ *)
(* Compile-and-simulate service throughput: a registry subset crossed   *)
(* with every engine, served cold (fresh store — every request is a     *)
(* compile + simulate) and warm (identical second batch — every request *)
(* is a store read), at one and four domains.  The responses are        *)
(* asserted byte-identical cold-vs-warm and -j1-vs-j4 (the service's    *)
(* determinism contract); only the wall time differs.  Warm passes use  *)
(* best-of-reps like the engines section: timing noise is one-sided.    *)
(* The numbers are machine-dependent, so the CI gate never compares     *)
(* them exactly — it gates meta.min_service_warm_speedup against the    *)
(* warm_speedup this section reports (warm rps / cold rps at -j1).      *)

let service ctx =
  section "service"
    "compile-and-simulate service (requests/second, cold vs warm store)";
  let module Wire = Finepar_service.Wire in
  let module Cache = Finepar_service.Cache in
  let module Server = Finepar_service.Server in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let entries =
    List.filteri (fun i _ -> i < 6) Finepar_kernels.Registry.all
  in
  let reqs =
    List.concat_map
      (fun (e : Finepar_kernels.Registry.entry) ->
        let job =
          {
            Wire.kernel = e.Finepar_kernels.Registry.kernel;
            config = Compiler.default_config ~cores:4 ();
            sequential = false;
            placement = Finepar_fuzz.Gen.Identity;
            workload = Wire.Explicit e.Finepar_kernels.Registry.workload;
            profile_counters = [];
          }
        in
        List.map
          (fun engine -> Result.ok (Wire.Run { job; engine }))
          Finepar_machine.Engine.all)
      entries
  in
  let n = List.length reqs in
  let measure ~jobs =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "finepar-bench-svc-%d-j%d" (Unix.getpid ()) jobs)
    in
    let pool = if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None in
    let server = Server.create ?pool ~cache:(Cache.create dir) () in
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let cold = Server.handle_requests server reqs in
    let t_cold = Unix.gettimeofday () -. t0 in
    let reps = 5 in
    let t_warm = ref infinity in
    for _ = 1 to reps do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      let warm = Server.handle_requests server reqs in
      let t = Unix.gettimeofday () -. t0 in
      assert (warm = cold);
      if t < !t_warm then t_warm := t
    done;
    rm_rf dir;
    (cold, float_of_int n /. t_cold, float_of_int n /. !t_warm)
  in
  let cold_j1, cold_rps_j1, warm_rps_j1 = measure ~jobs:1 in
  let cold_j4, cold_rps_j4, warm_rps_j4 = measure ~jobs:4 in
  assert (cold_j1 = cold_j4);
  let warm_speedup = warm_rps_j1 /. cold_rps_j1 in
  Fmt.pr "%-8s %14s %14s@." "domains" "cold req/s" "warm req/s";
  Fmt.pr "%-8d %14.1f %14.1f@." 1 cold_rps_j1 warm_rps_j1;
  Fmt.pr "%-8d %14.1f %14.1f@." 4 cold_rps_j4 warm_rps_j4;
  Fmt.pr
    "warm-store speedup: %.1fx over cold (%d requests: %d kernels x %d \
     engines; responses byte-identical cold-vs-warm and -j1-vs-j4)@."
    warm_speedup n (List.length entries)
    (List.length Finepar_machine.Engine.all);
  collect ctx "service"
    (J.Obj
       [
         ("requests", J.Int n);
         ("cold_rps_j1", J.Float cold_rps_j1);
         ("warm_rps_j1", J.Float warm_rps_j1);
         ("cold_rps_j4", J.Float cold_rps_j4);
         ("warm_rps_j4", J.Float warm_rps_j4);
         ("warm_speedup", J.Float warm_speedup);
       ])

(* ------------------------------------------------------------------ *)
(* Autotune search coverage and throughput: the generational beam       *)
(* search (lib/tune) over a registry subset, on the compiled engine     *)
(* (cycle counts are engine-invariant, so the rows match any engine).   *)
(* The per-kernel rows and every count are deterministic and compared   *)
(* exactly by the CI gate; configs_per_second is machine-dependent and  *)
(* stripped before the comparison (and reported in the job summary).    *)

let autotune ctx =
  section "autotune" "generational autotune search (lib/tune coverage)";
  let module Search = Finepar_tune.Search in
  let targets =
    List.filteri (fun i _ -> i < 6) (Search.registry_targets ())
  in
  let params =
    { Search.default_params with Search.generations = 2; budget = 12 }
  in
  let evaluator =
    Search.direct ?pool:ctx.pool ~engine:Finepar_machine.Engine.Compiled ()
  in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let rows = Search.run params evaluator targets in
  let dt = Unix.gettimeofday () -. t0 in
  let evaluated =
    List.fold_left
      (fun a (r : Search.row) -> a + r.Search.r_evaluated)
      0 rows
  in
  let cps = if dt > 0. then float_of_int evaluated /. dt else 0. in
  Fmt.pr "%a" Search.pp_table rows;
  Fmt.pr "throughput: %.1f configs evaluated/second (%d in %.2fs)@." cps
    evaluated dt;
  let deterministic =
    match Search.to_json ~params rows with J.Obj kvs -> kvs | _ -> []
  in
  collect ctx "autotune"
    (J.Obj (deterministic @ [ ("configs_per_second", J.Float cps) ]))

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks of the toolchain itself.             *)

let wallclock ctx =
  section "wallclock" "toolchain wall-clock benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let e = Option.get (Finepar_kernels.Registry.find "lammps-3") in
  let kernel = e.Finepar_kernels.Registry.kernel in
  let workload = e.Finepar_kernels.Registry.workload in
  let compiled =
    Compiler.compile (Compiler.default_config ~cores:4 ()) kernel
  in
  let tests =
    Test.make_grouped ~name:"finepar"
      [
        Test.make ~name:"compile lammps-3 (4 cores)"
          (Staged.stage (fun () ->
               ignore
                 (Compiler.compile (Compiler.default_config ~cores:4 ()) kernel)));
        Test.make ~name:"simulate lammps-3 (4 cores, 256 iters)"
          (Staged.stage (fun () ->
               ignore (Runner.run ~check:false ~workload compiled)));
        Test.make ~name:"reference evaluator lammps-3"
          (Staged.stage (fun () ->
               ignore (Finepar_ir.Eval.run_result ~workload kernel)));
        Test.make ~name:"classify 51-loop corpus"
          (Staged.stage (fun () -> ignore (Experiments.characterization ())));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, est) -> Fmt.pr "%-55s %14.1f ns/run@." name est)
    rows;
  collect ctx "wallclock"
    (J.List
       (List.map
          (fun (name, est) ->
            J.Obj [ ("name", J.String name); ("ns_per_run", J.Float est) ])
          rows))

let all_sections =
  [
    ("table1", table1);
    ( "fig12",
      fun ctx ->
        let rows = fig12 ctx in
        table2 ctx rows );
    ("table3", table3);
    ("fig11", fig11);
    ("fig13", fig13);
    ("fig14", fig14);
    ("ablation_throughput", ablation_throughput);
    ("ablation_multipair", ablation_multipair);
    ("ablation_comm", ablation_comm);
    ("ablation_issue_width", ablation_issue_width);
    ("ablation_overhead", ablation_overhead);
    ("ablation_queue", ablation_queue);
    ("extension_smt", extension_smt);
    ("extension_queue_limit", extension_queue_limit);
    ("extension_cores", extension_cores);
    ("extension_simd", extension_simd);
    ("characterization", characterization);
    ("engines", engines);
    ("service", service);
    ("wallclock", wallclock);
    ("autotune", autotune);
  ]

(* -j N, -jN or --jobs=N; --trace-out=FILE, --profile[=FILE] and
   --history=FILE ('none' disables the default bench/history.jsonl);
   anything else is a section-name prefix or a --json=FILE output
   request. *)
type opts = {
  json_out : string option;
  jobs : int option;
  wanted : string list;
  trace_out : string option;
  profile : string option;  (** "-" = text to stdout, else JSON file *)
  history : string option;
}

let parse_args args =
  let json_out = ref None
  and jobs = ref None
  and wanted = ref []
  and trace_out = ref None
  and profile = ref None
  and history = ref (Some "bench/history.jsonl") in
  let cut ~prefix a = String.sub a (String.length prefix)
      (String.length a - String.length prefix)
  in
  let rec go = function
    | [] -> ()
    | "-j" :: n :: rest ->
      jobs := int_of_string_opt n;
      go rest
    | a :: rest ->
      (if String.starts_with ~prefix:"--json=" a then
         json_out := Some (cut ~prefix:"--json=" a)
       else if String.starts_with ~prefix:"--jobs=" a then
         jobs := int_of_string_opt (cut ~prefix:"--jobs=" a)
       else if String.starts_with ~prefix:"--trace-out=" a then
         trace_out := Some (cut ~prefix:"--trace-out=" a)
       else if String.equal "--profile" a then profile := Some "-"
       else if String.starts_with ~prefix:"--profile=" a then
         profile := Some (cut ~prefix:"--profile=" a)
       else if String.starts_with ~prefix:"--history=" a then begin
         match cut ~prefix:"--history=" a with
         | "none" -> history := None
         | file -> history := Some file
       end
       else if String.starts_with ~prefix:"-j" a && String.length a > 2 then
         jobs := int_of_string_opt (String.sub a 2 (String.length a - 2))
       else wanted := a :: !wanted);
      go rest
  in
  go args;
  {
    json_out = !json_out;
    jobs = !jobs;
    wanted = List.rev !wanted;
    trace_out = !trace_out;
    profile = !profile;
    history = !history;
  }

let pool_metrics (p : Pool.stats) =
  [
    ("pool.tasks", float_of_int p.Pool.tasks);
    ("pool.steals", float_of_int p.Pool.steals);
    ("pool.steal_failures", float_of_int p.Pool.steal_failures);
    ("pool.busy_seconds", p.Pool.busy_seconds);
    ("pool.idle_seconds", p.Pool.idle_seconds);
    ("pool.imbalance", p.Pool.imbalance);
  ]

let pool_json (p : Pool.stats) =
  J.Obj
    [
      ("domains", J.Int p.Pool.domains);
      ("runs", J.Int p.Pool.runs);
      ("tasks", J.Int p.Pool.tasks);
      ("steals", J.Int p.Pool.steals);
      ("steal_failures", J.Int p.Pool.steal_failures);
      ("busy_seconds", J.Float p.Pool.busy_seconds);
      ("idle_seconds", J.Float p.Pool.idle_seconds);
      ("imbalance", J.Float p.Pool.imbalance);
    ]

let () =
  let module Tracer = Finepar_telemetry.Tracer in
  let t_start = Unix.gettimeofday () in
  let opts = parse_args (List.tl (Array.to_list Sys.argv)) in
  let tracing = opts.trace_out <> None || opts.profile <> None in
  let tracer =
    if tracing then begin
      let t = Tracer.create () in
      Tracer.install t;
      Some t
    end
    else None
  in
  let pool = Pool.create ?domains:opts.jobs () in
  Fmt.epr "using %d domain(s); output is -j invariant@." (Pool.domains pool);
  let ctx = { pool = Some pool; collected = [] } in
  let matches name w =
    String.length w > 0 && String.length name >= String.length w
    && String.sub name 0 (String.length w) = w
  in
  List.iter
    (fun (name, f) ->
      if opts.wanted = [] || List.exists (matches name) opts.wanted then
        Tracer.with_span ~cat:"bench" ("bench:" ^ name) (fun () -> f ctx))
    all_sections;
  Tracer.uninstall ();
  let stats = Pool.stats pool in
  let wall = Unix.gettimeofday () -. t_start in
  (* Scheduling-dependent, so stderr (the CI diffs stdout and the
     --json file across -j): the load-imbalance line the bench workflow
     scrapes into its job summary. *)
  Fmt.epr
    "pool: %d domains, %d tasks, %d steals (%d failed), busy %.3fs, idle \
     %.3fs, imbalance %.2f@."
    stats.Pool.domains stats.Pool.tasks stats.Pool.steals
    stats.Pool.steal_failures stats.Pool.busy_seconds stats.Pool.idle_seconds
    stats.Pool.imbalance;
  let sections = J.Obj [ ("sections", J.Obj (List.rev ctx.collected)) ] in
  (match opts.json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    (* The "pool" object is opt-in (tracing flags) so the default
       --json document stays byte-identical at every -j. *)
    let doc =
      if tracing then
        match sections with
        | J.Obj kvs -> J.Obj (kvs @ [ ("pool", pool_json stats) ])
        | other -> other
      else sections
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        J.to_channel oc doc;
        output_char oc '\n');
    Fmt.epr "metrics written to %s@." file);
  (* Every run appends one line of scalar metrics to the history file;
     finepar perf-report and check_bench --history read it back. *)
  (match opts.history with
  | None -> ()
  | Some path ->
    let module History = Finepar_telemetry.History in
    let metrics =
      History.summarize_sections sections
      @ [ ("wall_seconds", wall) ]
      @ pool_metrics stats
    in
    History.append ~path
      (History.entry ~time:t_start ~label:"bench" ~jobs:(Pool.domains pool)
         ~metrics);
    Fmt.epr "history appended to %s@." path);
  (match tracer with
  | None -> ()
  | Some t ->
    (match opts.trace_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Finepar_telemetry.Chrome_trace.to_channel oc (Tracer.to_chrome t));
      Fmt.epr "trace written to %s@." file);
    match opts.profile with
    | None -> ()
    | Some dest ->
      let tree = Finepar_telemetry.Profile_tree.of_spans (Tracer.spans t) in
      if String.equal dest "-" then
        Fmt.pr "@.%a@."
          (fun ppf tr -> Finepar_telemetry.Profile_tree.pp ppf tr)
          tree
      else begin
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            J.to_channel oc (Finepar_telemetry.Profile_tree.to_json tree);
            output_char oc '\n');
        Fmt.epr "profile written to %s@." dest
      end);
  rule ();
  print_endline "done."
