#!/usr/bin/env sh
# Refresh bench/baseline.json (the CI bench-gate reference).
#
# Records:
#   - every bench section (including bechamel wallclock) at -j1, as the
#     exact-match / tolerance reference;
#   - the wall-clock of the deterministic sections at -j1 and -j4, as
#     the harness-speedup reference (meaningful only on >= 4 cores).
#
# Run from the repository root:  sh bench/record_baseline.sh
set -eu

DET_SECTIONS="table fig ablation extension characterization"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
# Sim-throughput gates for the engines section, one per non-cycle
# engine.  Both the recorded speedup and the gate land in meta in the
# same run, so check_bench never meets an engine the baseline has not
# heard of.
MIN_EVENT_SPEEDUP="${MIN_EVENT_SPEEDUP:-2.0}"
# The compiled gate sat at 10x while the corpus was all queue-mode;
# shared-cache reproducers spin on valid flags, and a spinning core
# issues every cycle, so fast-forward engines get no quiescent windows
# to skip on those entries (~6.7x compiled / ~2.4x event on the
# recording host).  The gate follows the honest mixed-corpus number.
MIN_COMPILED_SPEEDUP="${MIN_COMPILED_SPEEDUP:-5.0}"
# Warm-over-cold throughput gate for the compile-and-simulate service
# section (requests answered from the content-addressed store vs
# computed fresh).  Same recording discipline as the engine gates.
MIN_SERVICE_WARM_SPEEDUP="${MIN_SERVICE_WARM_SPEEDUP:-5.0}"

dune build bench/main.exe

now_ns() { date +%s%N; }

t0=$(now_ns)
dune exec --no-build bench/main.exe -- $DET_SECTIONS -j1 \
  --json=/dev/null --history=none >/dev/null
t1=$(now_ns)
SEQ=$(python3 -c "print(($t1-$t0)/1e9)")

t0=$(now_ns)
dune exec --no-build bench/main.exe -- $DET_SECTIONS -j4 \
  --json=/dev/null --history=none >/dev/null
t1=$(now_ns)
PAR=$(python3 -c "print(($t1-$t0)/1e9)")

dune exec --no-build bench/main.exe -- -j1 --json=bench/baseline.json --history=none \
  >/dev/null

SEQ="$SEQ" PAR="$PAR" MIN_SPEEDUP="$MIN_SPEEDUP" \
MIN_EVENT_SPEEDUP="$MIN_EVENT_SPEEDUP" \
MIN_COMPILED_SPEEDUP="$MIN_COMPILED_SPEEDUP" \
MIN_SERVICE_WARM_SPEEDUP="$MIN_SERVICE_WARM_SPEEDUP" python3 - <<'EOF'
import json, os
d = json.load(open('bench/baseline.json'))
seq, par = float(os.environ['SEQ']), float(os.environ['PAR'])
meta = {
    'recorded_cores': os.cpu_count(),
    'jobs': 4,
    'seq_seconds': round(seq, 2),
    'par_seconds': round(par, 2),
    'recorded_speedup': round(seq / par, 3),
    'min_speedup': float(os.environ['MIN_SPEEDUP']),
}
# Per-engine sim-throughput speedups, read back from the engines section
# this same run just measured.  The recorded_* numbers document the
# recording host; the min_* numbers are the CI gates check_bench
# enforces (it fails when an engine has a speedup but no gate, so a new
# engine cannot land without re-running this script).
engines = d.get('sections', {}).get('engines', {})
mins = {'event': float(os.environ['MIN_EVENT_SPEEDUP']),
        'compiled': float(os.environ['MIN_COMPILED_SPEEDUP'])}
for key, value in sorted(engines.items()):
    if not key.endswith('_speedup'):
        continue
    name = key[:-len('_speedup')]
    if name not in mins:
        raise SystemExit(f'engines section has {key} but record_baseline.sh '
                         f'defines no MIN_{name.upper()}_SPEEDUP default; '
                         f'teach it about the new engine first')
    meta[f'recorded_{name}_speedup'] = round(value, 2)
    meta[f'min_{name}_speedup'] = mins[name]
# The service section's warm-over-cold gate, read back the same way.
# check_bench fails when the section and the gate disagree about each
# other's existence, so the pair must land together.
service = d.get('sections', {}).get('service')
if service is None:
    raise SystemExit('bench produced no service section; the baseline '
                     'would gate a section that does not exist')
meta['recorded_service_warm_speedup'] = round(service['warm_speedup'], 1)
meta['min_service_warm_speedup'] = float(os.environ['MIN_SERVICE_WARM_SPEEDUP'])
meta['note'] = (
    'sections = bench --json at -j1 (deterministic; exact gate). '
    'seq/par_seconds = deterministic sections at -j1/-j4 on the '
    'recording host; refresh with bench/record_baseline.sh when '
    'paper-accuracy numbers legitimately change.')
d['meta'] = meta
json.dump(d, open('bench/baseline.json', 'w'), indent=1)
open('bench/baseline.json', 'a').write('\n')
EOF

echo "recorded: seq=${SEQ}s par=${PAR}s -> bench/baseline.json"
