#!/usr/bin/env sh
# Refresh bench/baseline.json (the CI bench-gate reference).
#
# Records:
#   - every bench section (including bechamel wallclock) at -j1, as the
#     exact-match / tolerance reference;
#   - the wall-clock of the deterministic sections at -j1 and -j4, as
#     the harness-speedup reference (meaningful only on >= 4 cores).
#
# Run from the repository root:  sh bench/record_baseline.sh
set -eu

DET_SECTIONS="table fig ablation extension characterization"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"

dune build bench/main.exe

now_ns() { date +%s%N; }

t0=$(now_ns)
dune exec --no-build bench/main.exe -- $DET_SECTIONS -j1 \
  --json=/dev/null --history=none >/dev/null
t1=$(now_ns)
SEQ=$(python3 -c "print(($t1-$t0)/1e9)")

t0=$(now_ns)
dune exec --no-build bench/main.exe -- $DET_SECTIONS -j4 \
  --json=/dev/null --history=none >/dev/null
t1=$(now_ns)
PAR=$(python3 -c "print(($t1-$t0)/1e9)")

dune exec --no-build bench/main.exe -- -j1 --json=bench/baseline.json --history=none \
  >/dev/null

SEQ="$SEQ" PAR="$PAR" MIN_SPEEDUP="$MIN_SPEEDUP" python3 - <<'EOF'
import json, os
d = json.load(open('bench/baseline.json'))
seq, par = float(os.environ['SEQ']), float(os.environ['PAR'])
d['meta'] = {
    'recorded_cores': os.cpu_count(),
    'jobs': 4,
    'seq_seconds': round(seq, 2),
    'par_seconds': round(par, 2),
    'recorded_speedup': round(seq / par, 3),
    'min_speedup': float(os.environ['MIN_SPEEDUP']),
    'note': ('sections = bench --json at -j1 (deterministic; exact gate). '
             'seq/par_seconds = deterministic sections at -j1/-j4 on the '
             'recording host; refresh with bench/record_baseline.sh when '
             'paper-accuracy numbers legitimately change.'),
}
json.dump(d, open('bench/baseline.json', 'w'), indent=1)
open('bench/baseline.json', 'a').write('\n')
EOF

echo "recorded: seq=${SEQ}s par=${PAR}s -> bench/baseline.json"
