(* Pipelined execution of a loop body across 3 cores — the paper's Fig. 2,
   which shows a loop from lammps transformed so its body executes in a
   pipelined fashion across three cores with four SEND-RECV pairs.

   We compile the lammps-1 kernel for 3 cores, print which core owns each
   fiber and the communication schedule, then demonstrate the pipelining:
   the parallel version's cycle count is far below (per-core work x 3),
   because iterations overlap across the cores through the queues.

   Run with: dune exec examples/pipelined_loop.exe *)

open Finepar_ir
open Finepar_kernels

let () =
  let e = Option.get (Registry.find "lammps-1") in
  let kernel = e.Registry.kernel in
  let config = Finepar.Compiler.default_config ~cores:3 () in
  let c = Finepar.Compiler.compile config kernel in

  Fmt.pr "=== fiber placement over 3 cores ===========================@.";
  List.iter
    (fun (s : Region.sstmt) ->
      Fmt.pr "core %d | %a@." c.Finepar.Compiler.cluster_of.(s.Region.id)
        Region.pp_sstmt s)
    c.Finepar.Compiler.region.Region.stmts;

  Fmt.pr "@.=== communication (SEND -> RECV pairs per iteration) =======@.";
  let region = c.Finepar.Compiler.region in
  let deps = c.Finepar.Compiler.deps in
  let order = c.Finepar.Compiler.order in
  let comm =
    Finepar_transform.Comm.compute ~region ~deps
      ~cluster_of:c.Finepar.Compiler.cluster_of ~order ~queue_len:20
  in
  List.iter
    (fun (tr : Finepar_transform.Comm.transfer) ->
      Fmt.pr "  SEND(%s, core %d -> core %d)@." tr.Finepar_transform.Comm.var
        tr.Finepar_transform.Comm.src_core tr.Finepar_transform.Comm.dst_core)
    comm.Finepar_transform.Comm.transfers;

  Fmt.pr "@.=== pipelining effect =======================================@.";
  let workload = e.Registry.workload in
  let seq, par, s = Finepar.Runner.speedup ~workload ~cores:3 kernel in
  Fmt.pr "sequential:        %7d cycles@." seq.Finepar.Runner.cycles;
  Fmt.pr "3-core pipelined:  %7d cycles  (speedup %.2f)@."
    par.Finepar.Runner.cycles s;
  Fmt.pr
    "cores overlap successive iterations through the hardware queues: a@.\
     producer core may run several iterations ahead (up to the queue@.\
     capacity of %d slots) before a slow consumer backs it up.@."
    Finepar_machine.Config.default.Finepar_machine.Config.queue_len
