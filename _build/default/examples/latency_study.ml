(* Latency and queue-capacity study (Fig. 11 / Fig. 13 mechanics).

   Two kernels with opposite communication structure:

   - a *feed-forward* kernel: values flow one way between the partitions,
     so the queues pipeline successive iterations and the transfer latency
     is almost entirely hidden;
   - a *round-trip* kernel: values flow core A -> core B -> core A within
     one iteration, so an in-order core cannot start the next iteration
     before the round trip completes, and the transfer latency lands on
     the critical path — the paper's "high sensitivity to communication
     latency".

   Run with: dune exec examples/latency_study.exe *)

open Finepar_ir
open Builder

let n = 256

let feed_forward =
  kernel ~name:"feed-forward" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "a" n; farr "b" n; farr "out" n ]
    ~scalars:[ fscalar "acc" ]
    ~live_out:[ "acc" ]
    [
      set "x1" (sqrt_ (ld "a" (v "i") +: f 1.0));
      set "x2" (v "x1" *: ld "b" (v "i"));
      set "x3" (v "x2" /: (v "x1" +: f 2.0));
      set "acc" (v "acc" +: v "x3");
      store "out" (v "i") (v "x2");
    ]

let round_trip =
  kernel ~name:"round-trip" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "a" n; farr "b" n; farr "out" n; farr "out2" n ]
    ~scalars:[]
    [
      set "x1" (ld "a" (v "i") *: ld "b" (v "i") +: f 0.5);
      set "y1" (sqrt_ (v "x1") +: ld "b" (v "i"));
      set "x2" (v "y1" *: v "x1");
      set "y2" (v "x2" /: (v "y1" +: f 1.0));
      set "x3" (v "y2" +: v "x2" *: f 0.25);
      store "out" (v "i") (v "x3");
      store "out2" (v "i") (v "y2");
    ]

let sweep k =
  let workload = Finepar_kernels.Workload.default k in
  Fmt.pr "%-14s" k.Kernel.name;
  List.iter
    (fun latency ->
      let machine =
        Finepar_machine.Config.(with_transfer_latency latency default)
      in
      let _, _, s = Finepar.Runner.speedup ~machine ~workload ~cores:4 k in
      Fmt.pr "  lat=%-3d %5.2f" latency s)
    [ 5; 20; 50; 100 ];
  Fmt.pr "@."

let capacity k =
  let workload = Finepar_kernels.Workload.default k in
  Fmt.pr "%-14s" k.Kernel.name;
  List.iter
    (fun queue_len ->
      let machine =
        {
          Finepar_machine.Config.default with
          Finepar_machine.Config.queue_len;
          transfer_latency = 50;
        }
      in
      let _, _, s = Finepar.Runner.speedup ~machine ~workload ~cores:4 k in
      Fmt.pr "  qlen=%-3d %5.2f" queue_len s)
    [ 1; 2; 4; 8; 20 ];
  Fmt.pr "@."

let () =
  Fmt.pr "speedup on 4 cores as queue transfer latency grows:@.";
  sweep feed_forward;
  sweep round_trip;
  Fmt.pr
    "@.the feed-forward pipeline hides latency behind queue buffering;@.\
     the round-trip kernel pays it on every iteration.@.@.";
  Fmt.pr "speedup at 50-cycle latency as queue capacity grows:@.";
  capacity feed_forward;
  capacity round_trip;
  Fmt.pr
    "@.capacity buys the feed-forward pipeline its tolerance; the@.\
     round-trip kernel cannot use extra slots.@."
