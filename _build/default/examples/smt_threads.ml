(* SMT placement of fine-grained threads (Section II future work).

   The paper: "Our technique can also be applied to multiple hardware
   threads on the same core, but we have not experimented with this option
   yet."  Here we do: the same 4-partition code runs with its threads
   packed onto one physical core, split 2+2, and spread one per core.
   Threads on a shared core arbitrate for its single issue slot round-robin
   and share its L1.

   Run with: dune exec examples/smt_threads.exe *)

open Finepar_kernels

let () =
  let e = Option.get (Registry.find "lammps-5") in
  let kernel = e.Registry.kernel and workload = e.Registry.workload in
  let seq = Finepar.Compiler.compile_sequential kernel in
  let seq_cycles = (Finepar.Runner.run ~workload seq).Finepar.Runner.cycles in
  let par =
    Finepar.Compiler.compile (Finepar.Compiler.default_config ~cores:4 ()) kernel
  in
  let threads = par.Finepar.Compiler.stats.Finepar.Compiler.n_partitions in
  let measure name core_map =
    let r = Finepar.Runner.run ~workload ~core_map par in
    Fmt.pr "%-28s %8d cycles  (%.2fx over 1 thread / 1 core)@." name
      r.Finepar.Runner.cycles
      (float_of_int seq_cycles /. float_of_int r.Finepar.Runner.cycles)
  in
  Fmt.pr "kernel %s, %d fine-grained threads@.@." kernel.Finepar_ir.Kernel.name
    threads;
  Fmt.pr "%-28s %8d cycles@." "1 thread, 1 core (sequential)" seq_cycles;
  measure "4 threads packed on 1 core" (Array.make threads 0);
  measure "2 + 2 threads on 2 cores" (Array.init threads (fun t -> t mod 2));
  measure "1 thread per core (paper)" (Array.init threads Fun.id);
  Fmt.pr
    "@.even with no extra issue bandwidth, the packed placement wins:@.\
     decoupled partitions fill each other's latency stalls through the@.\
     shared issue slot — classic SMT latency hiding, obtained from the@.\
     same compiled code by changing only the thread placement.@."
