(* Quickstart: write a small loop in the kernel DSL, compile it for two
   cores, inspect every stage, and check the simulated result against the
   reference evaluator.

   The kernel is the paper's introductory example (Fig. 1): a handful of
   multiplies and adds over shared arrays, with enough independence that
   two cores can split the work, plus the Fig. 4 expression
   (p2 % 7) + a[i] * (p1 % 13) to show fiber partitioning.

   Run with: dune exec examples/quickstart.exe *)

open Finepar_ir
open Builder

let n = 64

(* x = a*b; y = c*d; z = x + y + e  — the Fig. 1 flavour, plus the Fig. 4
   expression tree as a second statement. *)
let kernel =
  Builder.kernel ~name:"quickstart" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [
        farr "a" n; farr "b" n; farr "c" n; farr "d" n; farr "e" n;
        farr "z_out" n; iarr "p1" n; iarr "p2" n; iarr "q_out" n;
      ]
    ~scalars:[]
    [
      set "x" (ld "a" (v "i") *: ld "b" (v "i"));
      set "y" (ld "c" (v "i") *: ld "d" (v "i"));
      store "z_out" (v "i") (v "x" +: v "y" +: ld "e" (v "i"));
      (* Fig. 4: (p2 % 7) + a[...] * (p1 % 13), on the integer side. *)
      store "q_out" (v "i")
        ((ld "p2" (v "i") %: i 7)
        +: (ld "p1" (v "i") %: i 13) *: ld "p1" (v "i"));
    ]

let () =
  Fmt.pr "=== the kernel =============================================@.";
  Fmt.pr "%a@.@." Kernel.pp kernel;

  Fmt.pr "=== flattened, predicated region ===========================@.";
  let region = Region.of_kernel kernel in
  Fmt.pr "%a@.@." Region.pp region;

  Fmt.pr "=== after fiber partitioning (Section III-A) ===============@.";
  let fibers, stats = Finepar_fiber.Fiber.split region in
  Fmt.pr "%a@." Region.pp fibers;
  Fmt.pr "(%d statements became %d fibers)@.@." stats.Finepar_fiber.Fiber.statements_in
    stats.Finepar_fiber.Fiber.initial_fibers;

  Fmt.pr "=== partition onto 2 cores (Section III-B) =================@.";
  let config = Finepar.Compiler.default_config ~cores:2 () in
  let c = Finepar.Compiler.compile config kernel in
  List.iter
    (fun (s : Region.sstmt) ->
      Fmt.pr "core %d | %a@." c.Finepar.Compiler.cluster_of.(s.Region.id)
        Region.pp_sstmt s)
    c.Finepar.Compiler.region.Region.stmts;
  Fmt.pr "@.";

  Fmt.pr "=== run on the simulator ===================================@.";
  let workload = Finepar_kernels.Workload.default kernel in
  let seq, par, s = Finepar.Runner.speedup ~workload ~cores:2 kernel in
  Fmt.pr "sequential: %d cycles@." seq.Finepar.Runner.cycles;
  Fmt.pr "2 cores:    %d cycles  (speedup %.2f)@." par.Finepar.Runner.cycles s;
  Fmt.pr "outputs verified bit-exact against the reference evaluator.@."
