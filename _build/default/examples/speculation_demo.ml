(* Control-flow speculation (Section III-H / Fig. 10).

   The recurring pattern the paper targets:

       if (CND) { ptrVar = Func2(...); } else { ptrVar = Func3(...); }

   where both arms are independent and side-effect free.  The rollback-free
   transformation executes both arms ahead of the condition and commits
   with a select, so neither arm waits for the (possibly remote) condition
   value.

   Run with: dune exec examples/speculation_demo.exe *)

open Finepar_ir
open Builder

let n = 128

(* cnd comes from a long dependence chain; each arm is a moderately
   expensive, pure function of independent inputs — exactly the situation
   where executing the arms ahead of the condition pays off. *)
let kernel =
  Builder.kernel ~name:"spec-demo" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "a" n; farr "b" n; farr "c" n; farr "out" n ]
    ~scalars:[ fscalar ~init:0.8 "thr" ]
    [
      set "chain1" (ld "a" (v "i") *: ld "b" (v "i"));
      set "chain2" (sqrt_ (v "chain1" +: f 1.0));
      set "chain3" (v "chain2" /: (v "chain1" +: f 0.5));
      set "cnd" (v "chain3" >: v "thr");
      if_ (v "cnd")
        [ set "r" (sqrt_ (ld "b" (v "i") *: f 2.0) +: ld "c" (v "i")) ]
        [ set "r" ((ld "c" (v "i") /: (ld "b" (v "i") +: f 1.0)) *: f 3.0) ];
      store "out" (v "i") (v "r");
    ]

let () =
  Fmt.pr "=== original kernel ========================================@.";
  Fmt.pr "%a@.@." Kernel.pp kernel;

  let speculated, count = Finepar_transform.Speculate.apply kernel in
  Fmt.pr "=== after control-flow speculation (%d conditional) ========@." count;
  Fmt.pr "%a@.@." Kernel.pp speculated;

  let workload = Finepar_kernels.Workload.default kernel in
  let run speculation =
    let config =
      { (Finepar.Compiler.default_config ~cores:4 ()) with
        Finepar.Compiler.speculation }
    in
    Finepar.Runner.speedup ~config ~workload ~cores:4 kernel
  in
  let _, par_base, s_base = run false in
  let _, par_spec, s_spec = run true in
  Fmt.pr "=== effect on 4 cores ======================================@.";
  Fmt.pr "without speculation: %6d cycles  (speedup %.2f)@."
    par_base.Finepar.Runner.cycles s_base;
  Fmt.pr "with speculation:    %6d cycles  (speedup %.2f)@."
    par_spec.Finepar.Runner.cycles s_spec;
  Fmt.pr
    "both versions produce bit-identical results: the speculation is@.\
     rollback-free by construction (both arms are pure), so every@.\
     enqueue still pairs statically with a dequeue.@."
