examples/speculation_demo.mli:
