examples/speculation_demo.ml: Builder Finepar Finepar_ir Finepar_kernels Finepar_transform Fmt Kernel
