examples/quickstart.ml: Array Builder Finepar Finepar_fiber Finepar_ir Finepar_kernels Fmt Kernel List Region
