examples/latency_study.ml: Builder Finepar Finepar_ir Finepar_kernels Finepar_machine Fmt Kernel List
