examples/smt_threads.mli:
