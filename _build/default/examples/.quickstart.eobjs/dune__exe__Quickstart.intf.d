examples/quickstart.mli:
