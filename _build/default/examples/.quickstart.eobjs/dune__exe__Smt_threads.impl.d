examples/smt_threads.ml: Array Finepar Finepar_ir Finepar_kernels Fmt Fun Option Registry
