examples/pipelined_loop.ml: Array Finepar Finepar_ir Finepar_kernels Finepar_machine Finepar_transform Fmt List Option Region Registry
