examples/pipelined_loop.mli:
