lib/fiber/fiber.mli: Finepar_ir
