lib/fiber/fiber.ml: Expr Finepar_ir Fun Hashtbl Int List Printf Region
