(** Fiber partitioning (Section III-A).

    A fiber is "a sequence of instructions without any control flow or
    memory carried dependences among its instructions".  The partitioning
    algorithm works individually on the expression tree of each statement:

    - leaves (memory loads, literals, scalar reads) are live-ins and
      always remain unassigned;
    - post-order over internal nodes:
      - all children unassigned (i.e. leaves): start a new fiber;
      - all assigned children in the same fiber: continue that fiber;
      - children in more than one fiber: start a new fiber.

    The result, for the paper's Fig. 4 expression
    [(p2 % 7) + a[...] * (p1 % 13)], is three fibers: [{C}], [{D, B}] and
    [{A}] — reproduced as a unit test.

    We materialize each fiber as one flat statement whose right-hand side
    is the fused subtree, with cut edges replaced by fresh boundary
    temporaries.  The output is therefore another {!Region.t} with exactly
    one statement per fiber, which the dependence analysis and code graph
    then treat as the graph nodes. *)

open Finepar_ir

type stats = {
  initial_fibers : int;  (** Table III, "Initial Fibers" *)
  statements_in : int;
}

(** Partition one expression tree.  Returns the list of
    [(fiber_expr, is_root)] in creation (topological) order; the last
    element is the root fiber's expression.  [fresh] allocates boundary
    temporaries. *)
let partition_expr ~fresh e =
  (* Rebuilt expression per fiber, in creation order. *)
  let fibers : (int, Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let temp_of : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let new_fiber e =
    let f = !next in
    incr next;
    Hashtbl.replace fibers f e;
    f
  in
  let fiber_value f =
    match Hashtbl.find_opt temp_of f with
    | Some t -> Expr.Var t
    | None ->
      let t = fresh () in
      Hashtbl.replace temp_of f t;
      Expr.Var t
  in
  (* Returns [None] for leaves, [Some fiber_id] for internal nodes. *)
  let rec visit e =
    match e with
    | Expr.Const _ | Expr.Var _ | Expr.Load _ -> None
    | Expr.Unop (op, a) -> join e (fun parts -> Expr.Unop (op, List.nth parts 0)) [ a ]
    | Expr.Binop (op, a, b) ->
      join e (fun parts -> Expr.Binop (op, List.nth parts 0, List.nth parts 1)) [ a; b ]
    | Expr.Select (c, t, f) ->
      join e
        (fun parts ->
          Expr.Select (List.nth parts 0, List.nth parts 1, List.nth parts 2))
        [ c; t; f ]
  and join _e rebuild children =
    let assigned = List.map visit children in
    let internal = List.filter_map Fun.id assigned in
    match internal with
    | [] ->
      (* All children are leaves: start a new fiber. *)
      Some (new_fiber (rebuild children))
    | f :: rest when List.for_all (Int.equal f) rest ->
      (* Continue fiber [f]: splice children's rebuilt expressions in. *)
      let parts =
        List.map2
          (fun child fid ->
            match fid with
            | Some g when g = f -> Hashtbl.find fibers g
            | Some g -> fiber_value g
            | None -> child)
          children assigned
      in
      Hashtbl.replace fibers f (rebuild parts);
      Some f
    | _ ->
      (* Children span several fibers: start a new fiber consuming their
         boundary values. *)
      let parts =
        List.map2
          (fun child fid ->
            match fid with Some g -> fiber_value g | None -> child)
          children assigned
      in
      Some (new_fiber (rebuild parts))
  in
  let root = visit e in
  let out = ref [] in
  for f = !next - 1 downto 0 do
    let is_root = root = Some f in
    let lhs = if is_root then None else Hashtbl.find_opt temp_of f in
    (* A fiber with no consumer and not the root is impossible in a tree. *)
    out := (lhs, Hashtbl.find fibers f, is_root) :: !out
  done;
  (!out, root)

(** Split every statement of a region into fibers.  The resulting region
    has one statement per fiber; boundary temporaries are named
    ["%f<n>"]. *)
let split (r : Region.t) : Region.t * stats =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "%%f%d" !counter
  in
  let out = ref [] in
  let next_id = ref 0 in
  let emit ~line ~preds lhs rhs =
    let id = !next_id in
    incr next_id;
    out := { Region.id; line; preds; lhs; rhs } :: !out
  in
  List.iter
    (fun (s : Region.sstmt) ->
      let pieces, root = partition_expr ~fresh s.Region.rhs in
      match root with
      | None ->
        (* The right-hand side is a single leaf: the whole statement is
           one fiber. *)
        emit ~line:s.Region.line ~preds:s.Region.preds s.Region.lhs s.Region.rhs
      | Some _ ->
        List.iter
          (fun (lhs, e, is_root) ->
            if is_root then
              emit ~line:s.Region.line ~preds:s.Region.preds s.Region.lhs e
            else
              match lhs with
              | Some t ->
                emit ~line:s.Region.line ~preds:s.Region.preds
                  (Region.Lscalar t) e
              | None ->
                (* Unconsumed non-root fiber: cannot happen in a tree. *)
                assert false)
          pieces)
    r.Region.stmts;
  let stmts = List.rev !out in
  ( { r with Region.stmts },
    {
      initial_fibers = List.length stmts;
      statements_in = List.length r.Region.stmts;
    } )
