(** Fiber partitioning (Section III-A).

    A fiber is "a sequence of instructions without any control flow or
    memory carried dependences among its instructions".  The partitioning
    algorithm works individually on the expression tree of each statement:

    - leaves (memory loads, literals, scalar reads) are live-ins and
      always remain unassigned;
    - post-order over internal nodes:
      - all children unassigned (i.e. leaves): start a new fiber;
      - all assigned children in the same fiber: continue that fiber;
      - children in more than one fiber: start a new fiber.

    The result, for the paper's Fig. 4 expression
    [(p2 % 7) + a[...] * (p1 % 13)], is three fibers: [{C}], [{D, B}] and
    [{A}] — reproduced as a unit test.

    We materialize each fiber as one flat statement whose right-hand side
    is the fused subtree, with cut edges replaced by fresh boundary
    temporaries.  The output is therefore another {!Region.t} with exactly
    one statement per fiber, which the dependence analysis and code graph
    then treat as the graph nodes. *)

type stats = { initial_fibers : int; statements_in : int; }
val partition_expr :
  fresh:(unit -> string) ->
  Finepar_ir.Expr.t ->
  (string option * Finepar_ir.Expr.t * bool) list * int option
val split : Finepar_ir.Region.t -> Finepar_ir.Region.t * stats
