lib/codegen/lower.ml: Array Comm Cost Deps Expr Finepar_analysis Finepar_ir Finepar_machine Finepar_transform Format Hashtbl Int64 Isa Kernel List Program Region Set String Types
