lib/codegen/lower.mli: Finepar_analysis Finepar_ir Finepar_machine Finepar_transform Format Hashtbl Set String
