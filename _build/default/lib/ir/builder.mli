(** A small combinator DSL for writing kernels.

    All 18 evaluation kernels and the characterization corpus are written
    with these combinators; see [lib/kernels].  Operators are suffixed
    with [:] to avoid shadowing the standard arithmetic ones. *)

val i : int -> Expr.t
val f : float -> Expr.t
val v : string -> Expr.t
val ld : string -> Expr.t -> Expr.t
val ( +: ) : Expr.t -> Expr.t -> Expr.t
val ( -: ) : Expr.t -> Expr.t -> Expr.t
val ( *: ) : Expr.t -> Expr.t -> Expr.t
val ( /: ) : Expr.t -> Expr.t -> Expr.t
val ( %: ) : Expr.t -> Expr.t -> Expr.t
val ( <: ) : Expr.t -> Expr.t -> Expr.t
val ( <=: ) : Expr.t -> Expr.t -> Expr.t
val ( >: ) : Expr.t -> Expr.t -> Expr.t
val ( >=: ) : Expr.t -> Expr.t -> Expr.t
val ( ==: ) : Expr.t -> Expr.t -> Expr.t
val ( <>: ) : Expr.t -> Expr.t -> Expr.t
val ( &&: ) : Expr.t -> Expr.t -> Expr.t
val ( ||: ) : Expr.t -> Expr.t -> Expr.t
val min_ : Expr.t -> Expr.t -> Expr.t
val max_ : Expr.t -> Expr.t -> Expr.t
val neg : Expr.t -> Expr.t
val not_ : Expr.t -> Expr.t
val sqrt_ : Expr.t -> Expr.t
val abs_ : Expr.t -> Expr.t
val exp_ : Expr.t -> Expr.t
val log_ : Expr.t -> Expr.t
val to_f : Expr.t -> Expr.t
val to_i : Expr.t -> Expr.t
val select :
  Expr.t ->
  Expr.t -> Expr.t -> Expr.t
val set : string -> Expr.t -> Stmt.t
val store :
  string -> Expr.t -> Expr.t -> Stmt.t
val if_ :
  Expr.t ->
  Stmt.t list -> Stmt.t list -> Stmt.t
val when_ : Expr.t -> Stmt.t list -> Stmt.t
val farr : string -> int -> Kernel.array_decl
val iarr : string -> int -> Kernel.array_decl
val fscalar : ?init:float -> string -> Kernel.scalar_decl
val iscalar : ?init:int -> string -> Kernel.scalar_decl
val kernel :
  name:string ->
  index:string ->
  lo:int ->
  hi:int ->
  arrays:Kernel.array_decl list ->
  scalars:Kernel.scalar_decl list ->
  ?live_out:string list -> Stmt.t list -> Kernel.t
