(** A small combinator DSL for writing kernels.

    All 18 evaluation kernels and the characterization corpus are written
    with these combinators; see [lib/kernels].  Operators are suffixed
    with [:] to avoid shadowing the standard arithmetic ones. *)

open Types

let i n = Expr.Const (VInt n)
let f x = Expr.Const (VFloat x)
let v name = Expr.Var name
let ld arr idx = Expr.Load (arr, idx)

let ( +: ) a b = Expr.Binop (Add, a, b)
let ( -: ) a b = Expr.Binop (Sub, a, b)
let ( *: ) a b = Expr.Binop (Mul, a, b)
let ( /: ) a b = Expr.Binop (Div, a, b)
let ( %: ) a b = Expr.Binop (Rem, a, b)
let ( <: ) a b = Expr.Binop (Lt, a, b)
let ( <=: ) a b = Expr.Binop (Le, a, b)
let ( >: ) a b = Expr.Binop (Gt, a, b)
let ( >=: ) a b = Expr.Binop (Ge, a, b)
let ( ==: ) a b = Expr.Binop (Eq, a, b)
let ( <>: ) a b = Expr.Binop (Ne, a, b)
let ( &&: ) a b = Expr.Binop (And, a, b)
let ( ||: ) a b = Expr.Binop (Or, a, b)
let min_ a b = Expr.Binop (Min, a, b)
let max_ a b = Expr.Binop (Max, a, b)
let neg e = Expr.Unop (Neg, e)
let not_ e = Expr.Unop (Not, e)
let sqrt_ e = Expr.Unop (Sqrt, e)
let abs_ e = Expr.Unop (Abs, e)
let exp_ e = Expr.Unop (Exp, e)
let log_ e = Expr.Unop (Log, e)
let to_f e = Expr.Unop (To_float, e)
let to_i e = Expr.Unop (To_int, e)
let select c t f = Expr.Select (c, t, f)

let set var e = Stmt.Assign (var, e)
let store arr idx e = Stmt.Store (arr, idx, e)
let if_ c t e = Stmt.If (c, t, e)
let when_ c t = Stmt.If (c, t, [])

(** Declarations. *)
let farr name len = { Kernel.a_name = name; a_ty = F64; a_len = len }
let iarr name len = { Kernel.a_name = name; a_ty = I64; a_len = len }
let fscalar ?(init = 0.0) name =
  { Kernel.s_name = name; s_ty = F64; s_init = VFloat init }
let iscalar ?(init = 0) name =
  { Kernel.s_name = name; s_ty = I64; s_init = VInt init }

let kernel ~name ~index ~lo ~hi ~arrays ~scalars ?(live_out = []) body =
  Kernel.validate
    { Kernel.name; index; lo; hi; arrays; scalars; body; live_out }
