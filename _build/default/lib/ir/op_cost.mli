(** Default operation latencies, in cycles.

    These model a simple in-order core in the spirit of the Blue Gene/Q A2:
    1-cycle integer ALU, a 6-cycle floating-point pipeline, long-latency
    divides and special functions.  Both the compiler's static cost model
    (Section III-B, heuristic 2) and the machine simulator default to this
    table; the simulator's table is configurable independently, which is
    exactly the imprecision the paper calls out in Section III-I (the
    compiler cannot predict execution time exactly). *)

val unop_latency : Types.unop -> Types.ty -> int
val binop_latency : Types.binop -> Types.ty -> int
val select_latency : int
