(** Flattened, predicated loop-body regions.

    This is the compiler's working representation.  Two things happen when
    a kernel body is converted to a region:

    - Compound expressions are split into multiple statements to bound the
      expression-tree height (the pre-processing of Section III-A that
      "makes it possible to detect even more fine-grained parallelism").
    - Structured conditionals are dissolved into per-statement
      control-flow predicates (Section III-E: "a conditional variable
      paired with a value such that the statement can be executed only if
      the variable has the corresponding value").

    A region is a flat list of single-assignment-style statements, each
    carrying its predicate context and the source line of the original
    statement it came from (used by the proximity merge heuristic). *)

open Types
module String_set = Set.Make (String)
module String_map = Map.Make (String)

type pred = { cnd : string; want : bool }

let pred_equal p q = String.equal p.cnd q.cnd && p.want = q.want

let preds_equal ps qs =
  List.length ps = List.length qs && List.for_all2 pred_equal ps qs

(** [ps] is a prefix of [qs]. *)
let rec preds_prefix ps qs =
  match (ps, qs) with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: ps', q :: qs' -> pred_equal p q && preds_prefix ps' qs'

let pp_pred ppf p = Fmt.pf ppf "%s%s" (if p.want then "" else "!") p.cnd

let pp_preds ppf = function
  | [] -> ()
  | ps -> Fmt.pf ppf "@[[%a]@] " Fmt.(list ~sep:comma pp_pred) ps

type lhs =
  | Lscalar of string
  | Lstore of string * Expr.t  (** array and (simple) index expression *)

type sstmt = {
  id : int;  (** position in the region, program order *)
  line : int;  (** original source statement index, for proximity *)
  preds : pred list;  (** outermost-first control-flow predicates *)
  lhs : lhs;
  rhs : Expr.t;
}

type t = {
  kernel : Kernel.t;  (** header: iteration space, declarations, live-outs *)
  stmts : sstmt list;
  temp_prefix : string;
}

let pp_sstmt ppf s =
  match s.lhs with
  | Lscalar v -> Fmt.pf ppf "%a%s = %a" pp_preds s.preds v Expr.pp s.rhs
  | Lstore (a, i) ->
    Fmt.pf ppf "%a%s[%a] = %a" pp_preds s.preds a Expr.pp i Expr.pp s.rhs

let pp ppf r =
  Fmt.pf ppf "@[<v>region %s:@,%a@]" r.kernel.Kernel.name
    Fmt.(list ~sep:(any "@,") pp_sstmt)
    r.stmts

let default_max_height = 2

(** An index expression is "simple" when it is a constant or a variable;
    anything else is hoisted to a temporary so loads stay leaves. *)
let is_simple = function Expr.Const _ | Expr.Var _ -> true | _ -> false

let of_kernel ?(max_height = default_max_height) (k : Kernel.t) =
  let counter = ref 0 in
  let temp_prefix = "%t" in
  let fresh () =
    incr counter;
    Printf.sprintf "%s%d" temp_prefix !counter
  in
  let out = ref [] in
  let next_id = ref 0 in
  let emit ~line ~preds lhs rhs =
    let id = !next_id in
    incr next_id;
    out := { id; line; preds; lhs; rhs } :: !out
  in
  let line = ref (-1) in
  (* Reduce an expression to height <= max_height, emitting temporaries for
     extracted subtrees.  Returns the residual expression and its height. *)
  let rec reduce preds e =
    match e with
    | Expr.Const _ | Expr.Var _ -> (e, 0)
    | Expr.Load (a, idx) ->
      let idx', _ = reduce preds idx in
      let idx' =
        if is_simple idx' then idx'
        else begin
          let t = fresh () in
          emit ~line:!line ~preds (Lscalar t) idx';
          Expr.Var t
        end
      in
      (Expr.Load (a, idx'), 0)
    | Expr.Unop (op, a) ->
      let a' = reduce_child preds a in
      clamp preds (Expr.Unop (op, fst a')) (1 + snd a')
    | Expr.Binop (op, a, b) ->
      let a' = reduce_child preds a and b' = reduce_child preds b in
      clamp preds
        (Expr.Binop (op, fst a', fst b'))
        (1 + max (snd a') (snd b'))
    | Expr.Select (c, t, f) ->
      let c' = reduce_child preds c
      and t' = reduce_child preds t
      and f' = reduce_child preds f in
      clamp preds
        (Expr.Select (fst c', fst t', fst f'))
        (1 + max (snd c') (max (snd t') (snd f')))
  (* Children may have height at most max_height - 1 so the parent fits. *)
  and reduce_child preds e =
    let e', h = reduce preds e in
    if h <= max_height - 1 then (e', h)
    else begin
      let t = fresh () in
      emit ~line:!line ~preds (Lscalar t) e';
      (Expr.Var t, 0)
    end
  and clamp _preds e h =
    (* reduce_child guarantees h <= max_height here. *)
    (e, h)
  in
  let reduce_top preds e = fst (reduce preds e) in
  let hoist_cond preds c =
    match reduce_top preds c with
    | Expr.Var v -> v
    | c' ->
      let t = fresh () in
      emit ~line:!line ~preds (Lscalar t) c';
      t
  in
  let rec walk preds s =
    incr line;
    let this_line = !line in
    match s with
    | Stmt.Assign (v, e) ->
      let e' = reduce_top preds e in
      line := this_line;
      emit ~line:this_line ~preds (Lscalar v) e'
    | Stmt.Store (a, idx, e) ->
      let idx' = reduce_top preds idx in
      let idx' =
        if is_simple idx' then idx'
        else begin
          let t = fresh () in
          emit ~line:this_line ~preds (Lscalar t) idx';
          Expr.Var t
        end
      in
      let e' = reduce_top preds e in
      emit ~line:this_line ~preds (Lstore (a, idx')) e'
    | Stmt.If (c, t, f) ->
      let cv = hoist_cond preds c in
      List.iter (walk (preds @ [ { cnd = cv; want = true } ])) t;
      List.iter (walk (preds @ [ { cnd = cv; want = false } ])) f
  in
  List.iter (walk []) k.Kernel.body;
  { kernel = k; stmts = List.rev !out; temp_prefix }

(** Whether a variable is a flattening temporary (single-assignment by
    construction). *)
let is_temp r v =
  String.length v >= String.length r.temp_prefix
  && String.sub v 0 (String.length r.temp_prefix) = r.temp_prefix

(** Evaluate a region directly (used to validate that flattening preserves
    kernel semantics). *)
let eval ?(workload = []) (r : t) =
  let k = r.kernel in
  let st = Eval.init_state k workload in
  let pred_holds p =
    match Hashtbl.find_opt st.Eval.scalars p.cnd with
    | Some v -> Types.value_is_true v = p.want
    | None -> Eval.runtime_error "predicate %s undefined" p.cnd
  in
  for i = k.Kernel.lo to k.Kernel.hi - 1 do
    Hashtbl.replace st.Eval.scalars k.Kernel.index (VInt i);
    List.iter
      (fun s ->
        if List.for_all pred_holds s.preds then
          match s.lhs with
          | Lscalar v ->
            Hashtbl.replace st.Eval.scalars v (Eval.eval_expr st s.rhs)
          | Lstore (a, idx) -> (
            let arr = Eval.get_array st a in
            match Eval.eval_expr st idx with
            | VInt n ->
              Eval.check_bounds a arr n;
              arr.(n) <- Eval.eval_expr st s.rhs
            | VFloat _ -> Eval.runtime_error "f64 store index"))
      r.stmts
  done;
  Eval.result_of_state k st

(** Scalar variables read by one flat statement, including loads' index
    variables but excluding predicate variables. *)
let sstmt_uses s =
  let from_rhs = Expr.vars s.rhs in
  match s.lhs with
  | Lscalar _ -> from_rhs
  | Lstore (_, idx) -> String_set.union from_rhs (Expr.vars idx)

(** The scalar defined by a flat statement, if any. *)
let sstmt_def s = match s.lhs with Lscalar v -> Some v | Lstore _ -> None

(** Predicate variables a statement's execution depends on. *)
let sstmt_pred_vars s =
  List.fold_left (fun acc p -> String_set.add p.cnd acc) String_set.empty
    s.preds

(** Total compute ops in the region. *)
let op_count r =
  List.fold_left (fun acc s -> acc + Expr.op_count s.rhs +
    (match s.lhs with Lstore (_, i) -> Expr.op_count i | Lscalar _ -> 0))
    0 r.stmts
