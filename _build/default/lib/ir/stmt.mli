(** Statements of a loop body: scalar assignments, array stores, and
    structured conditionals.  Loop bodies are straight-line code with
    (possibly nested) if-then-else; inner loops are fully unrolled or
    hoisted when a kernel is extracted, mirroring the paper's focus on
    innermost loop bodies with all calls inlined (Section V). *)

module String_set : Set.S with type elt = String.t and type t = Set.Make(String).t
type t =
    Assign of string * Expr.t
  | Store of string * Expr.t * Expr.t
  | If of Expr.t * t list * t list
val pp : t Fmt.t
val pp_block : Format.formatter -> t list -> unit
val iter : (t -> unit) -> t -> unit
val iter_block : (t -> unit) -> t list -> unit
val exprs : t -> Expr.t list
val vars_written : t list -> String_set.t
val vars_read : t list -> String_set.t
val arrays_written : t list -> String_set.t
val arrays_read : t list -> String_set.t
val op_count : t list -> int
