(** Reference evaluator: ground-truth sequential semantics for kernels.

    Every compiled/simulated configuration is checked bit-for-bit against
    this evaluator (see the end-to-end test suite), which is what makes the
    compiler pipeline trustworthy without the paper's production compiler. *)

open Types

(** Initial array contents for one kernel run. *)
type workload = (string * value array) list

exception Runtime_error of string

let runtime_error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type state = {
  scalars : (string, value) Hashtbl.t;
  arrays : (string, value array) Hashtbl.t;
}

let init_state (k : Kernel.t) (w : workload) =
  let scalars = Hashtbl.create 16 and arrays = Hashtbl.create 16 in
  List.iter
    (fun (d : Kernel.scalar_decl) -> Hashtbl.replace scalars d.s_name d.s_init)
    k.scalars;
  List.iter
    (fun (d : Kernel.array_decl) ->
      let contents =
        match List.assoc_opt d.a_name w with
        | Some c ->
          if Array.length c <> d.a_len then
            runtime_error "workload for %s has length %d, expected %d"
              d.a_name (Array.length c) d.a_len;
          Array.copy c
        | None -> Array.make d.a_len (zero_of_ty d.a_ty)
      in
      Hashtbl.replace arrays d.a_name contents)
    k.arrays;
  { scalars; arrays }

let get_scalar st v =
  match Hashtbl.find_opt st.scalars v with
  | Some x -> x
  | None -> runtime_error "read of undefined scalar %s" v

let get_array st a =
  match Hashtbl.find_opt st.arrays a with
  | Some x -> x
  | None -> runtime_error "unknown array %s" a

let check_bounds a arr idx =
  if idx < 0 || idx >= Array.length arr then
    runtime_error "array %s index %d out of bounds [0, %d)" a idx
      (Array.length arr)

let rec eval_expr st e =
  match e with
  | Expr.Const v -> v
  | Expr.Var v -> get_scalar st v
  | Expr.Load (a, idx) -> (
    let arr = get_array st a in
    match eval_expr st idx with
    | VInt i ->
      check_bounds a arr i;
      arr.(i)
    | VFloat _ -> runtime_error "array %s indexed by f64" a)
  | Expr.Unop (op, a) -> apply_unop op (eval_expr st a)
  | Expr.Binop (op, a, b) -> apply_binop op (eval_expr st a) (eval_expr st b)
  | Expr.Select (c, t, f) ->
    (* Both arms evaluated: matches the speculation lowering. *)
    let vc = eval_expr st c in
    let vt = eval_expr st t and vf = eval_expr st f in
    if value_is_true vc then vt else vf

let rec exec_stmt st s =
  match s with
  | Stmt.Assign (v, e) -> Hashtbl.replace st.scalars v (eval_expr st e)
  | Stmt.Store (a, i, e) -> (
    let arr = get_array st a in
    match eval_expr st i with
    | VInt idx ->
      check_bounds a arr idx;
      arr.(idx) <- eval_expr st e
    | VFloat _ -> runtime_error "store to %s indexed by f64" a)
  | Stmt.If (c, t, f) ->
    if value_is_true (eval_expr st c) then List.iter (exec_stmt st) t
    else List.iter (exec_stmt st) f

(** Run the kernel loop to completion and return the final state. *)
let run ?(workload = []) (k : Kernel.t) =
  let st = init_state k workload in
  for i = k.lo to k.hi - 1 do
    Hashtbl.replace st.scalars k.index (VInt i);
    List.iter (exec_stmt st) k.body
  done;
  st

(** Observable result of a run: live-out scalars plus all arrays that the
    kernel writes.  Two runs are equivalent iff their results are equal. *)
type result = {
  live_out : (string * value) list;
  arrays_out : (string * value array) list;
}

let result_of_state (k : Kernel.t) st =
  let written = Stmt.arrays_written k.body in
  {
    live_out = List.map (fun v -> (v, get_scalar st v)) k.live_out;
    arrays_out =
      List.filter_map
        (fun (d : Kernel.array_decl) ->
          if Stmt.String_set.mem d.a_name written then
            Some (d.a_name, get_array st d.a_name)
          else None)
        k.arrays;
  }

let run_result ?workload k = result_of_state k (run ?workload k)

let result_equal r1 r2 =
  let scalar_eq (n1, v1) (n2, v2) = String.equal n1 n2 && value_equal v1 v2 in
  let array_eq (n1, a1) (n2, a2) =
    String.equal n1 n2
    && Array.length a1 = Array.length a2
    && Array.for_all2 value_equal a1 a2
  in
  List.length r1.live_out = List.length r2.live_out
  && List.for_all2 scalar_eq r1.live_out r2.live_out
  && List.length r1.arrays_out = List.length r2.arrays_out
  && List.for_all2 array_eq r1.arrays_out r2.arrays_out

let pp_result ppf r =
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list (pair ~sep:(any " = ") string pp_value))
    r.live_out
    Fmt.(
      list (pair ~sep:(any ": ") string (brackets (array ~sep:comma pp_value))))
    (List.map (fun (n, a) -> (n, Array.sub a 0 (min 8 (Array.length a)))) r.arrays_out)
