(** Default operation latencies, in cycles.

    These model a simple in-order core in the spirit of the Blue Gene/Q A2:
    1-cycle integer ALU, a 6-cycle floating-point pipeline, long-latency
    divides and special functions.  Both the compiler's static cost model
    (Section III-B, heuristic 2) and the machine simulator default to this
    table; the simulator's table is configurable independently, which is
    exactly the imprecision the paper calls out in Section III-I (the
    compiler cannot predict execution time exactly). *)

open Types

let unop_latency op ty =
  match (op, ty) with
  | Neg, I64 -> 1
  | Neg, F64 -> 6
  | Not, _ -> 1
  | Abs, I64 -> 1
  | Abs, F64 -> 6
  | Sqrt, _ -> 40
  | Exp, _ -> 64
  | Log, _ -> 64
  | To_float, _ -> 6
  | To_int, _ -> 6

let binop_latency op ty =
  match (op, ty) with
  | (Add | Sub), I64 -> 1
  | (Add | Sub), F64 -> 6
  | Mul, I64 -> 4
  | Mul, F64 -> 6
  | Div, I64 -> 24
  | Div, F64 -> 30
  | Rem, _ -> 24
  | (Min | Max), I64 -> 1
  | (Min | Max), F64 -> 6
  | (And | Or | Xor | Shl | Shr), _ -> 1
  | (Lt | Le | Gt | Ge | Eq | Ne), I64 -> 1
  | (Lt | Le | Gt | Ge | Eq | Ne), F64 -> 2

(** Latency of a select (conditional move): cheap, single ALU pass. *)
let select_latency = 2
