(** Statements of a loop body: scalar assignments, array stores, and
    structured conditionals.  Loop bodies are straight-line code with
    (possibly nested) if-then-else; inner loops are fully unrolled or
    hoisted when a kernel is extracted, mirroring the paper's focus on
    innermost loop bodies with all calls inlined (Section V). *)

module String_set = Set.Make (String)

type t =
  | Assign of string * Expr.t
  | Store of string * Expr.t * Expr.t  (** [Store (a, idx, value)] *)
  | If of Expr.t * t list * t list

let rec pp ppf = function
  | Assign (v, e) -> Fmt.pf ppf "%s = %a" v Expr.pp e
  | Store (a, i, e) -> Fmt.pf ppf "%s[%a] = %a" a Expr.pp i Expr.pp e
  | If (c, t, f) ->
    Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,}" Expr.pp c pp_block t;
    if f <> [] then Fmt.pf ppf "@[<v 2> else {@,%a@]@,}" pp_block f

and pp_block ppf stmts = Fmt.(list ~sep:(any "@,") pp) ppf stmts

(** Apply [f] to every statement, recursing into conditionals. *)
let rec iter f s =
  f s;
  match s with
  | Assign _ | Store _ -> ()
  | If (_, t, e) ->
    List.iter (iter f) t;
    List.iter (iter f) e

let iter_block f stmts = List.iter (iter f) stmts

(** All expressions appearing in a statement (not recursing into nested
    statements). *)
let exprs = function
  | Assign (_, e) -> [ e ]
  | Store (_, i, e) -> [ i; e ]
  | If (c, _, _) -> [ c ]

(** Scalar variables written anywhere in a block of statements. *)
let vars_written stmts =
  let acc = ref String_set.empty in
  iter_block
    (fun s ->
      match s with
      | Assign (v, _) -> acc := String_set.add v !acc
      | Store _ | If _ -> ())
    stmts;
  !acc

(** Scalar variables read anywhere in a block of statements. *)
let vars_read stmts =
  let acc = ref String_set.empty in
  iter_block
    (fun s ->
      List.iter (fun e -> acc := String_set.union (Expr.vars e) !acc) (exprs s))
    stmts;
  !acc

(** Arrays written anywhere in a block. *)
let arrays_written stmts =
  let acc = ref String_set.empty in
  iter_block
    (fun s ->
      match s with
      | Store (a, _, _) -> acc := String_set.add a !acc
      | Assign _ | If _ -> ())
    stmts;
  !acc

(** Arrays read anywhere in a block. *)
let arrays_read stmts =
  let acc = ref String_set.empty in
  iter_block
    (fun s ->
      List.iter
        (fun e -> acc := String_set.union (Expr.arrays_read e) !acc)
        (exprs s))
    stmts;
  !acc

(** Total compute-operator count in a block. *)
let op_count stmts =
  let acc = ref 0 in
  iter_block
    (fun s -> List.iter (fun e -> acc := !acc + Expr.op_count e) (exprs s))
    stmts;
  !acc
