(** Kernels: a single innermost loop extracted from an application,
    together with its data environment — exactly the experimental unit of
    the paper's Section V ("Each loop is extracted into a separate kernel
    program, together with the necessary initialization code"). *)

module String_set : Set.S with type elt = String.t and type t = Set.Make(String).t
type array_decl = {
  a_name : string;
  a_ty : Types.ty;
  a_len : int;
}
type scalar_decl = {
  s_name : string;
  s_ty : Types.ty;
  s_init : Types.value;
}
type t = {
  name : string;
  index : string;
  lo : int;
  hi : int;
  arrays : array_decl list;
  scalars : scalar_decl list;
  body : Stmt.t list;
  live_out : string list;
}
exception Invalid of string
val invalid : ('a, Format.formatter, unit, 'b) format4 -> 'a
val find_array : t -> String.t -> array_decl option
val find_scalar : t -> String.t -> scalar_decl option
val tenv : t -> Expr.tenv
val trip_count : t -> int
val validate : t -> t
val pp : Format.formatter -> t -> unit
