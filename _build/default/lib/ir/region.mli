(** Flattened, predicated loop-body regions.

    This is the compiler's working representation.  Two things happen when
    a kernel body is converted to a region:

    - Compound expressions are split into multiple statements to bound the
      expression-tree height (the pre-processing of Section III-A that
      "makes it possible to detect even more fine-grained parallelism").
    - Structured conditionals are dissolved into per-statement
      control-flow predicates (Section III-E: "a conditional variable
      paired with a value such that the statement can be executed only if
      the variable has the corresponding value").

    A region is a flat list of single-assignment-style statements, each
    carrying its predicate context and the source line of the original
    statement it came from (used by the proximity merge heuristic). *)

module String_set : Set.S with type elt = String.t and type t = Set.Make(String).t
module String_map : Map.S with type key = String.t and type +'a t = 'a Map.Make(String).t
type pred = { cnd : string; want : bool; }
val pred_equal : pred -> pred -> bool
val preds_equal : pred list -> pred list -> bool
val preds_prefix : pred list -> pred list -> bool
val pp_pred : Format.formatter -> pred -> unit
val pp_preds : Format.formatter -> pred list -> unit
type lhs = Lscalar of string | Lstore of string * Expr.t
type sstmt = {
  id : int;
  line : int;
  preds : pred list;
  lhs : lhs;
  rhs : Expr.t;
}
type t = {
  kernel : Kernel.t;
  stmts : sstmt list;
  temp_prefix : string;
}
val pp_sstmt : Format.formatter -> sstmt -> unit
val pp : Format.formatter -> t -> unit
val default_max_height : int
val is_simple : Expr.t -> bool
val of_kernel : ?max_height:int -> Kernel.t -> t
val is_temp : t -> string -> bool
val eval : ?workload:Eval.workload -> t -> Eval.result
val sstmt_uses : sstmt -> Expr.String_set.t
val sstmt_def : sstmt -> string option
val sstmt_pred_vars : sstmt -> String_set.t
val op_count : t -> int
