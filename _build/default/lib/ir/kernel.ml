(** Kernels: a single innermost loop extracted from an application,
    together with its data environment — exactly the experimental unit of
    the paper's Section V ("Each loop is extracted into a separate kernel
    program, together with the necessary initialization code"). *)

open Types
module String_set = Set.Make (String)

type array_decl = { a_name : string; a_ty : ty; a_len : int }

type scalar_decl = { s_name : string; s_ty : ty; s_init : value }

type t = {
  name : string;
  index : string;  (** induction variable (I64), defined by the loop *)
  lo : int;
  hi : int;  (** iteration space: [lo, hi) *)
  arrays : array_decl list;
  scalars : scalar_decl list;
      (** loop-scope scalars, live-in; includes reduction accumulators *)
  body : Stmt.t list;
  live_out : string list;
      (** scalars whose final value is needed after the loop *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let find_array k name =
  List.find_opt (fun a -> String.equal a.a_name name) k.arrays

let find_scalar k name =
  List.find_opt (fun s -> String.equal s.s_name name) k.scalars

let tenv k : Expr.tenv =
  {
    var_ty =
      (fun v ->
        if String.equal v k.index then I64
        else
          match find_scalar k v with
          | Some s -> s.s_ty
          | None -> invalid "kernel %s: unknown scalar %s" k.name v);
    array_ty =
      (fun a ->
        match find_array k a with
        | Some d -> d.a_ty
        | None -> invalid "kernel %s: unknown array %s" k.name a);
  }

(** Number of iterations executed. *)
let trip_count k = max 0 (k.hi - k.lo)

(** Typecheck and structurally validate a kernel.  Raises {!Invalid} on:
    unknown variables or arrays, type errors, writes to the induction
    variable, or a use of a variable that is only defined under a
    conditional whose predicate does not also guard the use (the
    compiler requires def preds to be a prefix of use preds, or the
    variable to be a declared live-in scalar). *)
let validate k =
  let env = tenv k in
  let env =
    {
      env with
      Expr.var_ty =
        (fun v ->
          (* Temporaries introduced by user bodies must be declared or
             defined before use; defined-before-use temps are typed by
             first walking the body, so here we first try declarations. *)
          env.Expr.var_ty v);
    }
  in
  (* Build a type table for body-defined temporaries in program order. *)
  let temp_ty : (string, ty) Hashtbl.t = Hashtbl.create 16 in
  let var_ty v =
    if String.equal v k.index then I64
    else
      match find_scalar k v with
      | Some s -> s.s_ty
      | None -> (
        match Hashtbl.find_opt temp_ty v with
        | Some t -> t
        | None -> invalid "kernel %s: use of undefined scalar %s" k.name v)
  in
  let env = { env with Expr.var_ty } in
  let check_expr e = ignore (Expr.infer env e) in
  let rec check_stmt s =
    match s with
    | Stmt.Assign (v, e) ->
      if String.equal v k.index then
        invalid "kernel %s: assignment to induction variable" k.name;
      let te = Expr.infer env e in
      (match find_scalar k v with
      | Some d ->
        if d.s_ty <> te then
          invalid "kernel %s: assignment to %s changes type" k.name v
      | None -> (
        match Hashtbl.find_opt temp_ty v with
        | Some t when t <> te ->
          invalid "kernel %s: temp %s redefined at a different type" k.name v
        | _ -> Hashtbl.replace temp_ty v te))
    | Stmt.Store (a, i, e) ->
      (match find_array k a with
      | None -> invalid "kernel %s: store to unknown array %s" k.name a
      | Some d ->
        if Expr.infer env i <> I64 then
          invalid "kernel %s: store index not i64" k.name;
        if Expr.infer env e <> d.a_ty then
          invalid "kernel %s: store to %s has wrong element type" k.name a)
    | Stmt.If (c, t, f) ->
      if Expr.infer env c <> I64 then
        invalid "kernel %s: condition has type f64" k.name;
      check_expr c;
      List.iter check_stmt t;
      List.iter check_stmt f
  in
  List.iter check_stmt k.body;
  List.iter
    (fun v ->
      match find_scalar k v with
      | Some _ -> ()
      | None -> invalid "kernel %s: live-out %s is not a declared scalar" k.name v)
    k.live_out;
  k

let pp ppf k =
  Fmt.pf ppf "@[<v>kernel %s:@,for %s = %d .. %d@,%a@]" k.name k.index k.lo
    k.hi Stmt.pp_block k.body
