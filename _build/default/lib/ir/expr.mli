(** Expression trees.

    Statements carry one expression tree each; the fiber-partitioning
    algorithm of Section III-A works directly on these trees.  Leaves are
    constants, scalar variable reads, and array loads; internal nodes are
    arithmetic/logic operators and selects. *)

module String_set : Set.S with type elt = String.t and type t = Set.Make(String).t
type t =
    Const of Types.value
  | Var of string
  | Load of string * t
  | Unop of Types.unop * t
  | Binop of Types.binop * t * t
  | Select of t * t * t
val pp : Format.formatter -> t -> unit
val children : t -> t list
val iter : (t -> unit) -> t -> unit
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val vars : t -> String_set.t
val arrays_read : t -> String_set.t
val loads : t -> (string * t) list
val op_count : t -> int
val height : t -> int
val compute_latency : (t -> Types.ty) -> t -> int
type tenv = {
  var_ty : string -> Types.ty;
  array_ty : string -> Types.ty;
}
val infer : tenv -> t -> Types.ty
val equal : t -> t -> bool
val subst : (string -> t option) -> t -> t
