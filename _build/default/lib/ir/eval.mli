(** Reference evaluator: ground-truth sequential semantics for kernels.

    Every compiled/simulated configuration is checked bit-for-bit against
    this evaluator (see the end-to-end test suite), which is what makes the
    compiler pipeline trustworthy without the paper's production compiler. *)

type workload = (string * Types.value array) list
exception Runtime_error of string
val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
type state = {
  scalars : (string, Types.value) Hashtbl.t;
  arrays : (string, Types.value array) Hashtbl.t;
}
val init_state : Kernel.t -> workload -> state
val get_scalar : state -> string -> Types.value
val get_array : state -> string -> Types.value array
val check_bounds : string -> 'a array -> int -> unit
val eval_expr : state -> Expr.t -> Types.value
val exec_stmt : state -> Stmt.t -> unit
val run : ?workload:workload -> Kernel.t -> state
type result = {
  live_out : (string * Types.value) list;
  arrays_out : (string * Types.value array) list;
}
val result_of_state : Kernel.t -> state -> result
val run_result : ?workload:workload -> Kernel.t -> result
val result_equal : result -> result -> bool
val pp_result : Format.formatter -> result -> unit
