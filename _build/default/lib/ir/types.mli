(** Scalar types, runtime values, and operator semantics.

    These definitions are shared by the reference evaluator ({!Eval}) and
    the machine simulator ({!Finepar_machine.Sim}), so that both execute
    bit-identical arithmetic.  All operators are total: integer division
    and remainder by zero yield zero (documented substitution for a
    trapping machine; the kernels never rely on it). *)

type ty = I64 | F64
type value = VInt of int | VFloat of float
exception Type_error of string
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val ty_of_value : value -> ty
val pp_ty : Format.formatter -> ty -> unit
val pp_value : Format.formatter -> value -> unit
val pp_value_human : Format.formatter -> value -> unit
val value_equal : value -> value -> bool
type unop = Neg | Not | Sqrt | Abs | Exp | Log | To_float | To_int
type binop =
    Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
val unop_name : unop -> string
val binop_name : binop -> string
val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit
val is_comparison : binop -> bool
val unop_result_ty : unop -> ty -> ty
val binop_result_ty : binop -> ty -> ty
val bool_value : bool -> value
val apply_unop : unop -> value -> value
val apply_binop : binop -> value -> value -> value
val value_is_true : value -> bool
val zero_of_ty : ty -> value
