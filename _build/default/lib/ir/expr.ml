(** Expression trees.

    Statements carry one expression tree each; the fiber-partitioning
    algorithm of Section III-A works directly on these trees.  Leaves are
    constants, scalar variable reads, and array loads; internal nodes are
    arithmetic/logic operators and selects. *)

open Types

module String_set = Set.Make (String)

type t =
  | Const of value
  | Var of string
  | Load of string * t  (** [Load (a, idx)]: read element [idx] of array [a] *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of t * t * t
      (** [Select (c, t, f)]: value of [t] if [c] is true else [f]; both
          arms are evaluated (this is what rollback-free control-flow
          speculation lowers to, Section III-H) *)

let rec pp ppf = function
  | Const v -> pp_value_human ppf v
  | Var v -> Fmt.string ppf v
  | Load (a, idx) -> Fmt.pf ppf "%s[%a]" a pp idx
  | Unop (op, e) -> Fmt.pf ppf "%a(%a)" pp_unop op pp e
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_binop op pp b
  | Select (c, t, f) -> Fmt.pf ppf "(%a ? %a : %a)" pp c pp t pp f

let children = function
  | Const _ | Var _ -> []
  | Load (_, idx) -> [ idx ]
  | Unop (_, e) -> [ e ]
  | Binop (_, a, b) -> [ a; b ]
  | Select (c, t, f) -> [ c; t; f ]

let rec iter f e =
  f e;
  List.iter (iter f) (children e)

let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

(** Scalar variables read anywhere in the expression. *)
let vars e =
  fold
    (fun acc e ->
      match e with Var v -> String_set.add v acc | _ -> acc)
    String_set.empty e

(** Arrays read anywhere in the expression. *)
let arrays_read e =
  fold
    (fun acc e ->
      match e with Load (a, _) -> String_set.add a acc | _ -> acc)
    String_set.empty e

(** Loads appearing in the expression, with their index expressions. *)
let loads e =
  List.rev
    (fold
       (fun acc e -> match e with Load (a, i) -> (a, i) :: acc | _ -> acc)
       [] e)

(** Number of compute operators (unops, binops, selects). *)
let op_count e =
  fold
    (fun acc e ->
      match e with
      | Unop _ | Binop _ | Select _ -> acc + 1
      | Const _ | Var _ | Load _ -> acc)
    0 e

(** Height of the compute tree.  Leaves (constants, variables, loads) have
    height 0; a load's index expression does contribute height, since index
    arithmetic is real computation. *)
let rec height = function
  | Const _ | Var _ -> 0
  | Load (_, idx) -> height idx
  | Unop (_, e) -> 1 + height e
  | Binop (_, a, b) -> 1 + max (height a) (height b)
  | Select (c, t, f) -> 1 + max (height c) (max (height t) (height f))

(** Static latency estimate (sum of operator latencies, no memory). *)
let rec compute_latency ty_of e =
  match e with
  | Const _ | Var _ -> 0
  | Load (_, idx) -> compute_latency ty_of idx
  | Unop (op, a) -> Op_cost.unop_latency op (ty_of e) + compute_latency ty_of a
  | Binop (op, a, b) ->
    Op_cost.binop_latency op (ty_of a)
    + compute_latency ty_of a + compute_latency ty_of b
  | Select (c, t, f) ->
    Op_cost.select_latency
    + compute_latency ty_of c + compute_latency ty_of t
    + compute_latency ty_of f

(** Type environment: scalar types and array element types. *)
type tenv = { var_ty : string -> ty; array_ty : string -> ty }

let rec infer env e =
  match e with
  | Const v -> ty_of_value v
  | Var v -> env.var_ty v
  | Load (a, idx) ->
    (match infer env idx with
    | I64 -> env.array_ty a
    | F64 -> type_error "array %s indexed with f64 expression" a)
  | Unop (op, a) -> unop_result_ty op (infer env a)
  | Binop (op, a, b) ->
    let ta = infer env a and tb = infer env b in
    if ta <> tb then
      type_error "binop %s: operand types %a and %a differ" (binop_name op)
        pp_ty ta pp_ty tb
    else binop_result_ty op ta
  | Select (c, t, f) ->
    (match infer env c with
    | I64 ->
      let tt = infer env t and tf = infer env f in
      if tt <> tf then type_error "select: arm types differ" else tt
    | F64 -> type_error "select: condition has type f64")

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> value_equal x y
  | Var x, Var y -> String.equal x y
  | Load (ax, ix), Load (ay, iy) -> String.equal ax ay && equal ix iy
  | Unop (ox, x), Unop (oy, y) -> ox = oy && equal x y
  | Binop (ox, x1, x2), Binop (oy, y1, y2) ->
    ox = oy && equal x1 y1 && equal x2 y2
  | Select (c1, t1, f1), Select (c2, t2, f2) ->
    equal c1 c2 && equal t1 t2 && equal f1 f2
  | (Const _ | Var _ | Load _ | Unop _ | Binop _ | Select _), _ -> false

(** Substitute variables by expressions (capture-free: expressions have no
    binders). *)
let rec subst map e =
  match e with
  | Const _ -> e
  | Var v -> (match map v with Some e' -> e' | None -> e)
  | Load (a, idx) -> Load (a, subst map idx)
  | Unop (op, a) -> Unop (op, subst map a)
  | Binop (op, a, b) -> Binop (op, subst map a, subst map b)
  | Select (c, t, f) -> Select (subst map c, subst map t, subst map f)
