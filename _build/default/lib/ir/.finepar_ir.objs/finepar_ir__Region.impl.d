lib/ir/region.ml: Array Eval Expr Fmt Hashtbl Kernel List Map Printf Set Stmt String Types
