lib/ir/expr.mli: Format Set String Types
