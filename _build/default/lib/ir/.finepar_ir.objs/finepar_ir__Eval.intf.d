lib/ir/eval.mli: Expr Format Hashtbl Kernel Stmt Types
