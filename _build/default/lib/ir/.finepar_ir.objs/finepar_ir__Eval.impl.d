lib/ir/eval.ml: Array Expr Fmt Format Hashtbl Kernel List Stmt String Types
