lib/ir/op_cost.mli: Types
