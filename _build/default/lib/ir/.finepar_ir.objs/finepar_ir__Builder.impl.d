lib/ir/builder.ml: Expr Kernel Stmt Types
