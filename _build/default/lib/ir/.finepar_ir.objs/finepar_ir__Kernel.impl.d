lib/ir/kernel.ml: Expr Fmt Format Hashtbl List Set Stmt String Types
