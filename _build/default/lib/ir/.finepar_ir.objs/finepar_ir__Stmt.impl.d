lib/ir/stmt.ml: Expr Fmt List Set String
