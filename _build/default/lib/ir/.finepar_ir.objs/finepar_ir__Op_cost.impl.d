lib/ir/op_cost.ml: Types
