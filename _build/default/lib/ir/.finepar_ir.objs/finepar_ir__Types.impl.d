lib/ir/types.ml: Float Fmt Format Int64
