lib/ir/region.mli: Eval Expr Format Kernel Map Set String
