lib/ir/kernel.mli: Expr Format Set Stmt String Types
