lib/ir/stmt.mli: Expr Fmt Format Set String
