lib/ir/builder.mli: Expr Kernel Stmt
