lib/ir/expr.ml: Fmt List Op_cost Set String Types
