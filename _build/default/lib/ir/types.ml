(** Scalar types, runtime values, and operator semantics.

    These definitions are shared by the reference evaluator ({!Eval}) and
    the machine simulator ({!Finepar_machine.Sim}), so that both execute
    bit-identical arithmetic.  All operators are total: integer division
    and remainder by zero yield zero (documented substitution for a
    trapping machine; the kernels never rely on it). *)

type ty = I64 | F64

type value = VInt of int | VFloat of float

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let ty_of_value = function VInt _ -> I64 | VFloat _ -> F64

let pp_ty ppf = function
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"

let pp_value ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.pf ppf "%h" f

let pp_value_human ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.float ppf f

let value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y ->
    (* Bit-level equality so that NaNs compare equal to themselves and
       +0. differs from -0.: the parallel code must reproduce the exact
       sequential bits. *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | VInt _, VFloat _ | VFloat _, VInt _ -> false

type unop = Neg | Not | Sqrt | Abs | Exp | Log | To_float | To_int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

let unop_name = function
  | Neg -> "neg"
  | Not -> "not"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Exp -> "exp"
  | Log -> "log"
  | To_float -> "to_float"
  | To_int -> "to_int"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let pp_unop ppf op = Fmt.string ppf (unop_name op)
let pp_binop ppf op = Fmt.string ppf (binop_name op)

let is_comparison = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | Add | Sub | Mul | Div | Rem | Min | Max | And | Or | Xor | Shl | Shr ->
    false

(** Result type of a unary operator applied to an operand of type [ty]. *)
let unop_result_ty op ty =
  match (op, ty) with
  | Neg, t -> t
  | Abs, t -> t
  | Not, I64 -> I64
  | (Sqrt | Exp | Log), F64 -> F64
  | To_float, I64 -> F64
  | To_int, F64 -> I64
  | Not, F64 -> type_error "not applied to f64"
  | (Sqrt | Exp | Log), I64 -> type_error "%s applied to i64" (unop_name op)
  | To_float, F64 -> type_error "to_float applied to f64"
  | To_int, I64 -> type_error "to_int applied to i64"

(** Result type of a binary operator applied to two operands of type [ty]
    (both operands must have the same type). *)
let binop_result_ty op ty =
  match (op, ty) with
  | (Add | Sub | Mul | Div | Min | Max), t -> t
  | Rem, I64 -> I64
  | (And | Or | Xor | Shl | Shr), I64 -> I64
  | (Lt | Le | Gt | Ge | Eq | Ne), _ -> I64
  | Rem, F64 -> type_error "rem applied to f64"
  | (And | Or | Xor | Shl | Shr), F64 ->
    type_error "%s applied to f64" (binop_name op)

let bool_value b = VInt (if b then 1 else 0)

let apply_unop op v =
  match (op, v) with
  | Neg, VInt i -> VInt (-i)
  | Neg, VFloat f -> VFloat (-.f)
  | Not, VInt i -> VInt (if i = 0 then 1 else 0)
  | Abs, VInt i -> VInt (abs i)
  | Abs, VFloat f -> VFloat (Float.abs f)
  | Sqrt, VFloat f -> VFloat (sqrt f)
  | Exp, VFloat f -> VFloat (exp f)
  | Log, VFloat f -> VFloat (log f)
  | To_float, VInt i -> VFloat (float_of_int i)
  | To_int, VFloat f -> VInt (int_of_float f)
  | Not, VFloat _ | (Sqrt | Exp | Log), VInt _
  | To_float, VFloat _
  | To_int, VInt _ ->
    type_error "apply_unop %s: bad operand type" (unop_name op)

let apply_binop op a b =
  match (op, a, b) with
  | Add, VInt x, VInt y -> VInt (x + y)
  | Add, VFloat x, VFloat y -> VFloat (x +. y)
  | Sub, VInt x, VInt y -> VInt (x - y)
  | Sub, VFloat x, VFloat y -> VFloat (x -. y)
  | Mul, VInt x, VInt y -> VInt (x * y)
  | Mul, VFloat x, VFloat y -> VFloat (x *. y)
  | Div, VInt x, VInt y -> VInt (if y = 0 then 0 else x / y)
  | Div, VFloat x, VFloat y -> VFloat (x /. y)
  | Rem, VInt x, VInt y -> VInt (if y = 0 then 0 else x mod y)
  | Min, VInt x, VInt y -> VInt (min x y)
  | Min, VFloat x, VFloat y -> VFloat (Float.min x y)
  | Max, VInt x, VInt y -> VInt (max x y)
  | Max, VFloat x, VFloat y -> VFloat (Float.max x y)
  | And, VInt x, VInt y -> VInt (x land y)
  | Or, VInt x, VInt y -> VInt (x lor y)
  | Xor, VInt x, VInt y -> VInt (x lxor y)
  | Shl, VInt x, VInt y -> VInt (x lsl (y land 63))
  | Shr, VInt x, VInt y -> VInt (x asr (y land 63))
  | Lt, VInt x, VInt y -> bool_value (x < y)
  | Lt, VFloat x, VFloat y -> bool_value (x < y)
  | Le, VInt x, VInt y -> bool_value (x <= y)
  | Le, VFloat x, VFloat y -> bool_value (x <= y)
  | Gt, VInt x, VInt y -> bool_value (x > y)
  | Gt, VFloat x, VFloat y -> bool_value (x > y)
  | Ge, VInt x, VInt y -> bool_value (x >= y)
  | Ge, VFloat x, VFloat y -> bool_value (x >= y)
  | Eq, VInt x, VInt y -> bool_value (x = y)
  | Eq, VFloat x, VFloat y -> bool_value (x = y)
  | Ne, VInt x, VInt y -> bool_value (x <> y)
  | Ne, VFloat x, VFloat y -> bool_value (x <> y)
  | _, _, _ ->
    type_error "apply_binop %s: operand type mismatch (%a, %a)"
      (binop_name op) pp_ty (ty_of_value a) pp_ty (ty_of_value b)

(** Truthiness of a predicate value: any nonzero integer is true. *)
let value_is_true = function
  | VInt i -> i <> 0
  | VFloat _ -> type_error "predicate value has type f64"

let zero_of_ty = function I64 -> VInt 0 | F64 -> VFloat 0.0
