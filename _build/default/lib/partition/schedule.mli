(** Global fiber schedule.

    Produces one topological order of all fibers; each core's code is the
    restriction of this order to its own fibers.  Using a single global
    order guarantees that, for every pair of cores, enqueue and dequeue
    sequences are mutually consistent (FIFO queues never cross values) and
    that the cross-core wait graph is acyclic.

    Priorities implement Section III-B's intra-core code motion:
    "instructions producing values to be communicated to other cores
    execute as early as possible, and instructions that depend on values
    obtained from other cores execute as late as possible", and
    Section III-E's constraint that "statements that share the same
    control flow predicate remain grouped together". *)

val order :
  Code_graph.t -> cluster_of:int array -> int list
