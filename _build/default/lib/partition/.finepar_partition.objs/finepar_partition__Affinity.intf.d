lib/partition/affinity.mli:
