lib/partition/schedule.mli: Code_graph
