lib/partition/code_graph.mli: Finepar_analysis Finepar_ir Format
