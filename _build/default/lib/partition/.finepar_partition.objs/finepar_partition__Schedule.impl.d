lib/partition/schedule.ml: Array Code_graph Deps Finepar_analysis Finepar_ir List Region
