lib/partition/merge.mli: Affinity Code_graph Map Seq
