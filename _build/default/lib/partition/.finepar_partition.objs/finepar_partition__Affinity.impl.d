lib/partition/affinity.ml:
