lib/partition/merge.ml: Affinity Array Code_graph Deps Finepar_analysis Fun Hashtbl List Map Option
