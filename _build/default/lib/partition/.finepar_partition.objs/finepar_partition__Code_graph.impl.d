lib/partition/code_graph.ml: Array Cost Deps Expr Finepar_analysis Finepar_ir Fmt List Profile Region
