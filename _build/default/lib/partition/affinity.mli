(** Merge-affinity heuristics (Section III-B).

    "Multiple individual heuristics are weighted and combined to compute an
    affinity value for each node pair":

    - higher affinity to pairs with more dependence edges between them;
    - higher affinity to pairs with smaller (combined) compute time;
    - higher affinity to pairs whose code sections are close in the serial
      source (line numbers). *)

type weights = { w_dep : float; w_time : float; w_prox : float; }
val default : weights
type cluster = {
  id : int;
  est : int;
  ops : int;
  line_lo : int;
  line_hi : int;
}
val line_distance : cluster -> cluster -> int
val score :
  weights:weights ->
  edges:int ->
  max_edges:int -> max_pair_est:int -> cluster -> cluster -> float
