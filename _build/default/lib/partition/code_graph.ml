(** The code graph of Section III-B: one node per fiber, edges for data and
    control dependences between the code sections the fibers represent. *)

open Finepar_ir
open Finepar_analysis

type node = {
  fid : int;  (** fiber id = statement id in the fiber-split region *)
  stmt : Region.sstmt;
  ops : int;  (** compute operators in the fiber *)
  est : int;  (** static cycle estimate (latencies + profiled memory) *)
  line : int;  (** original source line, for the proximity heuristic *)
}

type t = {
  nodes : node array;
  deps : Deps.t;
  out_edges : Deps.edge list array;
  in_edges : Deps.edge list array;
}

let build ~(profile : Profile.t) (r : Region.t) (deps : Deps.t) =
  let tenv = Cost.region_tenv r in
  let nodes =
    Array.of_list
      (List.map
         (fun (s : Region.sstmt) ->
           {
             fid = s.Region.id;
             stmt = s;
             ops =
               Expr.op_count s.Region.rhs
               + (match s.Region.lhs with
                 | Region.Lstore (_, i) -> Expr.op_count i
                 | Region.Lscalar _ -> 0);
             est = Cost.sstmt_cycles ~tenv ~profile s;
             line = s.Region.line;
           })
         r.Region.stmts)
  in
  let n = Array.length nodes in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun (e : Deps.edge) ->
      out_edges.(e.Deps.src) <- e :: out_edges.(e.Deps.src);
      in_edges.(e.Deps.dst) <- e :: in_edges.(e.Deps.dst))
    (Deps.sorted_edges deps);
  { nodes; deps; out_edges; in_edges }

let n_nodes t = Array.length t.nodes

(** Edges whose endpoints lie in different entries of [cluster_of] and that
    carry a value at run time (data or control). *)
let cross_value_edges t (cluster_of : int array) =
  List.filter
    (fun (e : Deps.edge) ->
      cluster_of.(e.Deps.src) <> cluster_of.(e.Deps.dst)
      &&
      match e.Deps.kind with
      | Deps.Data _ | Deps.Control _ -> true
      | Deps.Anti _ | Deps.Mem _ -> false)
    t.deps.Deps.edges

let pp ppf t =
  Fmt.pf ppf "@[<v>code graph: %d nodes@,%a@]" (n_nodes t)
    Fmt.(
      list ~sep:(any "@,") (fun ppf n ->
          Fmt.pf ppf "f%d (ops=%d est=%d line=%d): %a" n.fid n.ops n.est
            n.line Region.pp_sstmt n.stmt))
    (Array.to_list t.nodes)
