(** The code graph of Section III-B: one node per fiber, edges for data and
    control dependences between the code sections the fibers represent. *)

type node = {
  fid : int;
  stmt : Finepar_ir.Region.sstmt;
  ops : int;
  est : int;
  line : int;
}
type t = {
  nodes : node array;
  deps : Finepar_analysis.Deps.t;
  out_edges : Finepar_analysis.Deps.edge list array;
  in_edges : Finepar_analysis.Deps.edge list array;
}
val build :
  profile:Finepar_analysis.Profile.t ->
  Finepar_ir.Region.t -> Finepar_analysis.Deps.t -> t
val n_nodes : t -> int
val cross_value_edges : t -> int array -> Finepar_analysis.Deps.edge list
val pp : Format.formatter -> t -> unit
