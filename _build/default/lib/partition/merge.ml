(** Graph transformation: merge fibers until one node remains per hardware
    core (Section III-B).

    Three variants are implemented, all from the paper:

    - [`Greedy]: merge the single highest-affinity pair at each step and
      recompute affinities (the baseline algorithm);
    - [`Multi_pair]: merge several disjoint high-affinity pairs per step
      ("allows faster compilation ... useful when there are a large number
      of fibers");
    - the *throughput heuristic* (optional, [throughput:true]): after each
      step, find cycles between current nodes and merge every cycle into a
      single node, so the final partitions have only unidirectional
      dependences (the paper measured an 11% average slowdown from this —
      we reproduce that ablation).

    Must-merge constraints from {!Finepar_analysis.Deps} are applied before
    any heuristic merging. *)

open Finepar_analysis

type algorithm = [ `Greedy | `Multi_pair ]

type result = {
  cluster_of : int array;  (** fiber id -> partition id, compacted 0..k-1 *)
  n_clusters : int;
  merge_steps : int;
}

module Int_pair = struct
  type t = int * int

  let compare = compare
end

module PM = Map.Make (Int_pair)

(* Union-find over fiber ids. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let r = go i in
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let run ?(algorithm = `Greedy) ?(throughput = false) ?max_queue_pairs
    ?(weights = Affinity.default) ~cores (g : Code_graph.t) =
  let n = Code_graph.n_nodes g in
  let parent = Array.init n Fun.id in
  let steps = ref 0 in
  let info =
    Array.map
      (fun (nd : Code_graph.node) ->
        {
          Affinity.id = nd.Code_graph.fid;
          est = nd.Code_graph.est;
          ops = nd.Code_graph.ops;
          line_lo = nd.Code_graph.line;
          line_hi = nd.Code_graph.line;
        })
      g.Code_graph.nodes
  in
  let union a b =
    let ra = find parent a and rb = find parent b in
    if ra = rb then ()
    else begin
      incr steps;
      let keep, gone = if ra < rb then (ra, rb) else (rb, ra) in
      parent.(gone) <- keep;
      let ik = info.(keep) and ig = info.(gone) in
      info.(keep) <-
        {
          ik with
          Affinity.est = ik.Affinity.est + ig.Affinity.est;
          ops = ik.Affinity.ops + ig.Affinity.ops;
          line_lo = min ik.Affinity.line_lo ig.Affinity.line_lo;
          line_hi = max ik.Affinity.line_hi ig.Affinity.line_hi;
        }
    end
  in
  List.iter (fun (a, b) -> union a b) g.Code_graph.deps.Deps.must_merge;
  let roots () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if find parent i = i then acc := i :: !acc
    done;
    !acc
  in
  (* Dependence-edge counts between current clusters (data+control only,
     matching "number of dependence edges between them"). *)
  let pair_edges () =
    List.fold_left
      (fun acc (e : Deps.edge) ->
        match e.Deps.kind with
        | Deps.Data _ | Deps.Control _ ->
          let a = find parent e.Deps.src and b = find parent e.Deps.dst in
          if a = b then acc
          else
            let key = (min a b, max a b) in
            PM.update key
              (function None -> Some 1 | Some c -> Some (c + 1))
              acc
        | Deps.Anti _ | Deps.Mem _ -> acc)
      PM.empty g.Code_graph.deps.Deps.edges
  in
  (* Merge every cycle among current clusters into a single cluster. *)
  let merge_cycles () =
    let rec fixpoint () =
      let rs = roots () in
      let index = Hashtbl.create 16 in
      List.iteri (fun i r -> Hashtbl.replace index r i) rs;
      let m = List.length rs in
      let adj = Array.make m [] in
      List.iter
        (fun (e : Deps.edge) ->
          match e.Deps.kind with
          | Deps.Data _ | Deps.Control _ ->
            let a = Hashtbl.find index (find parent e.Deps.src)
            and b = Hashtbl.find index (find parent e.Deps.dst) in
            if a <> b then adj.(a) <- b :: adj.(a)
          | Deps.Anti _ | Deps.Mem _ -> ())
        g.Code_graph.deps.Deps.edges;
      (* Tarjan SCC. *)
      let idx = Array.make m (-1)
      and low = Array.make m 0
      and on_stack = Array.make m false in
      let stack = ref [] and counter = ref 0 in
      let merged_any = ref false in
      let rs_arr = Array.of_list rs in
      let rec strongconnect v =
        idx.(v) <- !counter;
        low.(v) <- !counter;
        incr counter;
        stack := v :: !stack;
        on_stack.(v) <- true;
        List.iter
          (fun w ->
            if idx.(w) = -1 then begin
              strongconnect w;
              low.(v) <- min low.(v) low.(w)
            end
            else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
          adj.(v);
        if low.(v) = idx.(v) then begin
          let rec pop acc =
            match !stack with
            | w :: rest ->
              stack := rest;
              on_stack.(w) <- false;
              if w = v then w :: acc else pop (w :: acc)
            | [] -> acc
          in
          let scc = pop [] in
          match scc with
          | first :: (_ :: _ as rest) ->
            List.iter (fun w -> union rs_arr.(first) rs_arr.(w)) rest;
            merged_any := true
          | _ -> ()
        end
      in
      for v = 0 to m - 1 do
        if idx.(v) = -1 then strongconnect v
      done;
      if !merged_any then fixpoint ()
    in
    fixpoint ()
  in
  if throughput then merge_cycles ();
  let count_clusters () = List.length (roots ()) in
  (* One heuristic step: merge the best pair (or the best disjoint pairs
     for the multi-pair variant).  Returns false when no merge happened. *)
  let step () =
    let current = count_clusters () in
    if current <= cores then false
    else begin
      let pe = pair_edges () in
      let rs = roots () in
      let max_edges = PM.fold (fun _ c acc -> max c acc) pe 0 in
      let max_pair_est =
        let ests = List.map (fun r -> info.(r).Affinity.est) rs in
        let sorted = List.sort (fun a b -> compare b a) ests in
        match sorted with a :: b :: _ -> a + b | _ -> 0
      in
      (* Balance cap: avoid growing any partition past its fair share of
         the total estimated time (with some slack), falling back to
         unconstrained pairs when nothing fits.  Without this, the
         dependence-edge heuristic snowballs one giant partition. *)
      let total_est =
        List.fold_left (fun acc r -> acc + info.(r).Affinity.est) 0 rs
      in
      let est_limit = total_est * 5 / (4 * cores) + 1 in
      let pairs = ref [] and capped_pairs = ref [] in
      let rec all_pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              let edges =
                Option.value ~default:0 (PM.find_opt (min a b, max a b) pe)
              in
              let s =
                Affinity.score ~weights ~edges ~max_edges ~max_pair_est
                  info.(a) info.(b)
              in
              if info.(a).Affinity.est + info.(b).Affinity.est <= est_limit
              then capped_pairs := (s, a, b) :: !capped_pairs
              else pairs := (s, a, b) :: !pairs)
            rest;
          all_pairs rest
      in
      all_pairs rs;
      let pairs = if !capped_pairs <> [] then capped_pairs else pairs in
      let sorted =
        List.sort
          (fun (s1, a1, b1) (s2, a2, b2) ->
            match compare s2 s1 with 0 -> compare (a1, b1) (a2, b2) | c -> c)
          !pairs
      in
      match sorted with
      | [] -> false
      | _ ->
        let budget =
          match algorithm with
          | `Greedy -> 1
          | `Multi_pair -> max 1 ((current - cores + 1) / 2)
        in
        let used = Hashtbl.create 16 in
        let merged = ref 0 in
        List.iter
          (fun (_, a, b) ->
            if
              !merged < budget
              && (not (Hashtbl.mem used a))
              && not (Hashtbl.mem used b)
            then begin
              Hashtbl.replace used a ();
              Hashtbl.replace used b ();
              union a b;
              incr merged
            end)
          sorted;
        if throughput then merge_cycles ();
        !merged > 0
    end
  in
  while step () do
    ()
  done;
  (* Queue-count constraint (Section II): "when the number of available
     queues is limited, we can constrain the partitioning so that code
     uses at most a specific number of queues".  Each directed
     cross-partition (src, dst) pair needs its own queue; while too many
     are in use, merge the partition pair exchanging the most values. *)
  (match max_queue_pairs with
  | None -> ()
  | Some limit ->
    let rec reduce () =
      let directed = Hashtbl.create 16 and undirected = Hashtbl.create 16 in
      List.iter
        (fun (e : Deps.edge) ->
          match e.Deps.kind with
          | Deps.Data _ | Deps.Control _ ->
            let a = find parent e.Deps.src and b = find parent e.Deps.dst in
            if a <> b then begin
              Hashtbl.replace directed (a, b) ();
              let key = (min a b, max a b) in
              Hashtbl.replace undirected key
                (1 + Option.value ~default:0 (Hashtbl.find_opt undirected key))
            end
          | Deps.Anti _ | Deps.Mem _ -> ())
        g.Code_graph.deps.Deps.edges;
      if Hashtbl.length directed > limit then begin
        let best =
          Hashtbl.fold
            (fun pair count acc ->
              match acc with
              | Some (_, c) when c >= count -> acc
              | _ -> Some (pair, count))
            undirected None
        in
        match best with
        | Some ((a, b), _) ->
          union a b;
          reduce ()
        | None -> ()
      end
    in
    reduce ());
  (* Compact cluster ids in order of first member. *)
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  let cluster_of =
    Array.init n (fun i ->
        let r = find parent i in
        match Hashtbl.find_opt mapping r with
        | Some c -> c
        | None ->
          let c = !next in
          incr next;
          Hashtbl.replace mapping r c;
          c)
  in
  { cluster_of; n_clusters = !next; merge_steps = !steps }

(** Compute ops per cluster; used for the Table III "Load Balance" column
    (max ops in a partition / min ops in a partition). *)
let ops_per_cluster (g : Code_graph.t) (res : result) =
  let ops = Array.make res.n_clusters 0 in
  Array.iter
    (fun (nd : Code_graph.node) ->
      let c = res.cluster_of.(nd.Code_graph.fid) in
      ops.(c) <- ops.(c) + nd.Code_graph.ops)
    g.Code_graph.nodes;
  ops

let load_balance (g : Code_graph.t) (res : result) =
  let ops = ops_per_cluster g res in
  let mx = Array.fold_left max 0 ops and mn = Array.fold_left min max_int ops in
  float_of_int mx /. float_of_int (max 1 mn)
