(** Global fiber schedule.

    Produces one topological order of all fibers; each core's code is the
    restriction of this order to its own fibers.  Using a single global
    order guarantees that, for every pair of cores, enqueue and dequeue
    sequences are mutually consistent (FIFO queues never cross values) and
    that the cross-core wait graph is acyclic.

    Priorities implement Section III-B's intra-core code motion:
    "instructions producing values to be communicated to other cores
    execute as early as possible, and instructions that depend on values
    obtained from other cores execute as late as possible", and
    Section III-E's constraint that "statements that share the same
    control flow predicate remain grouped together". *)

open Finepar_ir
open Finepar_analysis

(** [order g ~cluster_of] returns fiber ids in scheduled order. *)
let order (g : Code_graph.t) ~(cluster_of : int array) =
  let n = Code_graph.n_nodes g in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun dst es ->
      indeg.(dst) <-
        List.length (List.filter (fun (e : Deps.edge) -> e.Deps.src <> dst) es))
    g.Code_graph.in_edges;
  (* Communication pressure per fiber: values sent to / received from other
     clusters (data and control edges only). *)
  let remote_sends = Array.make n 0 and remote_recvs = Array.make n 0 in
  List.iter
    (fun (e : Deps.edge) ->
      match e.Deps.kind with
      | Deps.Data _ | Deps.Control _ ->
        if cluster_of.(e.Deps.src) <> cluster_of.(e.Deps.dst) then begin
          remote_sends.(e.Deps.src) <- remote_sends.(e.Deps.src) + 1;
          remote_recvs.(e.Deps.dst) <- remote_recvs.(e.Deps.dst) + 1
        end
      | Deps.Anti _ | Deps.Mem _ -> ())
    g.Code_graph.deps.Deps.edges;
  let scheduled = Array.make n false in
  let out = ref [] in
  let last_preds = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    (* Pick among ready fibers. *)
    let best = ref None in
    for i = n - 1 downto 0 do
      if (not scheduled.(i)) && indeg.(i) = 0 then begin
        let nd = g.Code_graph.nodes.(i) in
        let same_preds =
          Region.preds_equal nd.Code_graph.stmt.Region.preds !last_preds
        in
        let key =
          ( (if same_preds then 1 else 0),
            remote_sends.(i) - remote_recvs.(i),
            -i )
        in
        match !best with
        | Some (bkey, _) when compare bkey key >= 0 -> ()
        | _ -> best := Some (key, i)
      end
    done;
    match !best with
    | None ->
      (* A cycle in the fiber graph would be a bug: all edges point
         forward in program order by construction. *)
      invalid_arg "Schedule.order: dependence cycle among fibers"
    | Some (_, i) ->
      scheduled.(i) <- true;
      decr remaining;
      last_preds := g.Code_graph.nodes.(i).Code_graph.stmt.Region.preds;
      out := i :: !out;
      List.iter
        (fun (e : Deps.edge) ->
          if e.Deps.src <> e.Deps.dst then
            indeg.(e.Deps.dst) <- indeg.(e.Deps.dst) - 1)
        g.Code_graph.out_edges.(i)
  done;
  List.rev !out
