(** Graph transformation: merge fibers until one node remains per hardware
    core (Section III-B).

    Three variants are implemented, all from the paper:

    - [`Greedy]: merge the single highest-affinity pair at each step and
      recompute affinities (the baseline algorithm);
    - [`Multi_pair]: merge several disjoint high-affinity pairs per step
      ("allows faster compilation ... useful when there are a large number
      of fibers");
    - the *throughput heuristic* (optional, [throughput:true]): after each
      step, find cycles between current nodes and merge every cycle into a
      single node, so the final partitions have only unidirectional
      dependences (the paper measured an 11% average slowdown from this —
      we reproduce that ablation).

    Must-merge constraints from {!Finepar_analysis.Deps} are applied before
    any heuristic merging. *)

type algorithm = [ `Greedy | `Multi_pair ]
type result = {
  cluster_of : int array;
  n_clusters : int;
  merge_steps : int;
}
module Int_pair : sig type t = int * int val compare : 'a -> 'a -> int end
module PM :
  sig
    type key = Int_pair.t
    type 'a t = 'a Map.Make(Int_pair).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
val find : int array -> int -> int
val run :
  ?algorithm:[< `Greedy | `Multi_pair > `Greedy ] ->
  ?throughput:bool ->
  ?max_queue_pairs:int ->
  ?weights:Affinity.weights ->
  cores:int -> Code_graph.t -> result
val ops_per_cluster : Code_graph.t -> result -> int array
val load_balance : Code_graph.t -> result -> float
