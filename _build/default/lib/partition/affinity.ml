(** Merge-affinity heuristics (Section III-B).

    "Multiple individual heuristics are weighted and combined to compute an
    affinity value for each node pair":

    - higher affinity to pairs with more dependence edges between them;
    - higher affinity to pairs with smaller (combined) compute time;
    - higher affinity to pairs whose code sections are close in the serial
      source (line numbers). *)

type weights = { w_dep : float; w_time : float; w_prox : float }

let default = { w_dep = 0.45; w_time = 0.35; w_prox = 0.20 }

(** Summary of one cluster, as maintained incrementally by {!Merge}. *)
type cluster = {
  id : int;  (** representative fiber id *)
  est : int;  (** summed static cycle estimate *)
  ops : int;
  line_lo : int;
  line_hi : int;
}

(** Distance between the source-line intervals of two clusters. *)
let line_distance a b =
  if a.line_lo > b.line_hi then a.line_lo - b.line_hi
  else if b.line_lo > a.line_hi then b.line_lo - a.line_hi
  else 0

(** Affinity of merging [a] and [b].

    [edges] is the number of dependence edges between the two clusters;
    [max_edges] and [max_pair_est] normalize the terms across all live
    pairs at this merge step. *)
let score ~weights ~edges ~max_edges ~max_pair_est a b =
  let dep_term =
    if max_edges = 0 then 0.0
    else float_of_int edges /. float_of_int max_edges
  in
  let time_term =
    if max_pair_est = 0 then 0.0
    else 1.0 -. (float_of_int (a.est + b.est) /. float_of_int max_pair_est)
  in
  let prox_term = 1.0 /. (1.0 +. (float_of_int (line_distance a b) /. 4.0)) in
  (weights.w_dep *. dep_term)
  +. (weights.w_time *. time_term)
  +. (weights.w_prox *. prox_term)
