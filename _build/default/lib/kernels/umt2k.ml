(** Kernels modeled on the umt2k hot loops of Table I.

    umt2k is an unstructured-mesh photon transport (Sn) sweep; all six hot
    loops come from [snswp3d.f90, snswp3d].  The family spans the paper's
    interesting extremes: dense angular-flux updates (umt2k-1, -4, -5),
    reduction-only conditional bodies with terrible load balance
    (umt2k-2, -3), and the conditional-chained loop that slows down under
    fine-grained parallelization (umt2k-6). *)

open Finepar_ir
open Builder

let n = 256

let gather_zone =
  [
    set "z" (ld "zone" (v "i"));
    set "afp" (ld "a_fp" (v "z"));
    set "aez" (ld "a_ez" (v "z"));
  ]

let base_arrays =
  [ iarr "zone" n; farr "a_fp" n; farr "a_ez" n; farr "psi" n ]

let workload ?(seed = 13) (k : Kernel.t) =
  let r = Workload.rng seed in
  List.map
    (fun (d : Kernel.array_decl) ->
      match d.Kernel.a_ty with
      | Types.I64 -> (d.Kernel.a_name, Workload.iarray_indices r d.Kernel.a_len ~bound:n)
      | Types.F64 -> (d.Kernel.a_name, Workload.farray r d.Kernel.a_len))
    k.Kernel.arrays

(** umt2k-1: corner flux update (snswp3d:96, 5.5%).  A small dense body:
    gather zone data, form the upstream/downstream combination, store. *)
let umt2k_1 =
  kernel ~name:"umt2k-1" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (base_arrays
      @ [ farr "sigt" n; farr "q" n; farr "psi_out" n; farr "q2_out" n; farr "w_out" n ])
    ~scalars:[ fscalar ~init:0.7 "mu" ]
    (gather_zone
    @ [
        set "den" (ld "sigt" (v "z") +: (v "mu" *: v "afp") +: f 1.0e-9);
        set "src" (ld "q" (v "z") +: (v "aez" *: ld "psi" (v "i")));
        set "xtr" ((v "afp" -: v "aez") *: ld "q" (v "z"));
        set "xtr2" (v "xtr" *: v "xtr" +: (v "mu" *: v "xtr"));
        set "wgt" (sqrt_ ((v "aez" *: v "aez") +: (v "mu" *: v "mu")));
        set "psi_v" (v "src" /: v "den");
        (* Negative-flux fixup: pure value selection, the Fig. 10 pattern. *)
        if_ (v "psi_v" >: f 0.0)
          [ set "psi_f" (v "psi_v") ]
          [ set "psi_f" (v "src" *: f 0.01) ];
        store "psi_out" (v "i") (v "psi_f");
        store "q2_out" (v "i") (v "xtr2" +: ld "sigt" (v "z"));
        store "w_out" (v "i") (v "wgt" *: f 0.5);
      ])

(** umt2k-2: scalar-flux accumulation (snswp3d:117, 8.0%).  The loop body
    is nothing but reduction statements inside conditionals; both arms
    update the same accumulator, so everything serializes onto one thread
    and the load balance collapses (the paper reports a 87.5 ratio and a
    speedup of 1.01). *)
let umt2k_2 =
  kernel ~name:"umt2k-2" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [ farr "a_fp" n; farr "a_ez" n; farr "psi" n; farr "w" n; farr "chk" n ]
    ~scalars:[ fscalar "phi"; fscalar ~init:0.9 "thr" ]
    ~live_out:[ "phi" ]
    [
      (* Nothing but reduction statements within conditionals, and the
         conditions read the accumulator being updated: every fiber
         touches phi, so the whole body collapses onto one thread.  The
         lone independent bookkeeping store is all the other threads get,
         hence the pathological load-balance ratio. *)
      set "inflow" (ld "a_fp" (v "i") >: (v "phi" *: f 0.004));
      when_ (v "inflow") [ set "phi" (v "phi" +: ld "psi" (v "i")) ];
      set "outflow" (ld "a_ez" (v "i") >: (v "phi" *: f 0.003));
      when_ (v "outflow") [ set "phi" (v "phi" +: ld "w" (v "i")) ];
      store "chk" (v "i") (f 1.0);
    ]

(** umt2k-3: boundary-current accumulation (snswp3d:145, 5.2%).  Same
    pathology as umt2k-2 with slightly larger conditional expressions. *)
let umt2k_3 =
  kernel ~name:"umt2k-3" ~index:"i" ~lo:0 ~hi:n
    ~arrays:[ farr "a_fp" n; farr "a_ez" n; farr "psi" n; farr "w" n; farr "area" n ]
    ~scalars:[ fscalar "leak"; fscalar ~init:1.0 "thr" ]
    ~live_out:[ "leak" ]
    [
      set "flux" (ld "w" (v "i") *: ld "psi" (v "i"));
      set "scalev" (ld "a_fp" (v "i") *: ld "a_ez" (v "i"));
      (* Same accumulator-in-the-condition pathology as umt2k-2, with a
         slightly wider body. *)
      set "escaping" (v "scalev" >: (v "thr" +: (v "leak" *: f 0.0001)));
      when_ (v "escaping")
        [ set "leak" (v "leak" +: (v "flux" *: ld "area" (v "i"))) ];
      when_ (not_ (v "escaping"))
        [ set "leak" (v "leak" +: (v "flux" *: f 0.5)) ];
    ]

(** umt2k-4: the main angular-flux solve (snswp3d:158, 22.6%).  Dense and
    wide: several coupled product chains with a final division — high
    dependence count, high speedup. *)
let umt2k_4 =
  kernel ~name:"umt2k-4" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      (base_arrays
      @ [
          farr "sigt" n; farr "qc" n; farr "ql" n; farr "vol" n;
          farr "psi_out" n; farr "phic" n; farr "aux_out" n;
        ])
    ~scalars:[ fscalar ~init:0.58 "mu"; fscalar ~init:0.33 "eta" ]
    (gather_zone
    @ [
        set "sv" (ld "sigt" (v "z") *: ld "vol" (v "z"));
        set "qq" (ld "qc" (v "z") +: (ld "ql" (v "z") *: v "eta"));
        set "gain" ((v "afp" *: v "mu") +: (v "aez" *: v "eta"));
        set "psi_in" (ld "psi" (v "i"));
        set "numer" ((v "qq" *: ld "vol" (v "z")) +: (v "gain" *: v "psi_in"));
        set "denom" (v "sv" +: v "gain" +: f 1.0e-9);
        set "psi_raw" (v "numer" /: v "denom");
        (* Upstream selection between the solved flux and the damped
           incident flux — a pure value-selection conditional. *)
        if_ (v "psi_raw" >: (v "psi_in" *: f 0.05))
          [ set "psi_new" (v "psi_raw") ]
          [ set "psi_new" ((v "psi_raw" +: v "psi_in") *: f 0.5) ];
        set "dpsi" (v "psi_new" -: v "psi_in");
        set "phi_c" ((v "psi_new" +: v "psi_in") *: f 0.5);
        (* Independent side chains: leakage estimate and edge source. *)
        set "leak" ((v "afp" *: v "afp") /: (v "sv" +: f 1.0));
        set "edge" ((ld "ql" (v "z") *: v "aez") +: (ld "qc" (v "z") *: v "mu"));
        set "edge2" (sqrt_ (v "edge" *: v "edge" +: f 1.0e-9));
        store "psi_out" (v "i") (v "psi_new" +: (v "dpsi" *: f 0.1));
        store "phic" (v "i") (v "phi_c" *: ld "vol" (v "z"));
        store "aux_out" (v "i") (v "leak" +: v "edge2");
      ])

(** umt2k-5: face-flux extrapolation (snswp3d:178, 1.0%).  A small but
    dependence-dense body: one long coupled expression chain. *)
let umt2k_5 =
  kernel ~name:"umt2k-5" ~index:"i" ~lo:0 ~hi:n
    ~arrays:(base_arrays @ [ farr "psi_out" n; farr "psi2_out" n ])
    ~scalars:[ fscalar ~init:1.2 "c1"; fscalar ~init:0.8 "c2" ]
    (gather_zone
    @ [
        set "t1" ((v "afp" *: v "c1") +: ld "psi" (v "i"));
        set "t2" ((v "t1" *: v "aez") +: (v "t1" *: v "c2"));
        set "t3" (v "t2" /: (v "t1" +: f 1.0));
        set "t4" ((v "t3" *: v "t3") -: (v "t2" *: f 0.25));
        (* A second, independent extrapolation chain. *)
        set "u1" ((v "aez" *: v "c2") -: ld "psi" (v "i"));
        set "u2" (v "u1" *: v "u1" +: (v "afp" *: f 0.125));
        set "u3" (sqrt_ (v "u2" *: v "u2" +: f 1.0e-9));
        (* Extrapolation limiter: value selection between the two chains. *)
        if_ ((v "t4" +: v "t3") >: v "u3")
          [ set "lim" (v "u3") ]
          [ set "lim" ((v "t4" +: v "t3") *: f 0.9) ];
        store "psi_out" (v "i") (v "lim");
        store "psi2_out" (v "i") (v "u3" -: v "u1");
      ])

(** umt2k-6: the exit-test loop (snswp3d:208, 5.7%).  Conditional
    variables chained read-after-write through the iteration: each block
    both consumes the previous block's result and produces the next
    condition.  Fine-grained partitions must round-trip values every
    iteration — the one kernel the paper reports slowing down (0.90). *)
let umt2k_6 =
  kernel ~name:"umt2k-6" ~index:"i" ~lo:0 ~hi:n
    ~arrays:
      [
        farr "a_fp" n; farr "a_ez" n; farr "psi" n; farr "w" n;
        farr "out1" n; farr "out2" n; farr "out3" n;
      ]
    ~scalars:
      [ fscalar ~init:0.6 "tol"; fscalar ~init:0.5 "u"; fscalar ~init:1.0 "s" ]
    ~live_out:[ "u"; "s" ]
    [
      (* A small state machine threaded through the iteration: each
         condition reads state carried from the previous block, and each
         block updates that state — read-after-write chains between the
         conditionals, nothing to overlap, plus per-iteration broadcasts
         of three condition values. *)
      set "c1" (v "u" >: v "tol");
      if_ (v "c1")
        [ set "u" ((v "u" *: f 0.5) +: ld "a_fp" (v "i")) ]
        [ set "u" (v "u" +: (ld "w" (v "i") *: f 0.25)) ];
      set "c2" (v "s" >: v "u");
      if_ (v "c2")
        [ set "s" ((v "s" *: f 0.25) +: v "u") ]
        [ set "s" (v "s" -: (v "u" *: f 0.125)) ];
      set "c3" ((v "s" +: v "u") <: (v "tol" *: f 4.0));
      if_ (v "c3")
        [ set "t" (v "s" +: ld "psi" (v "i")) ]
        [ set "t" (v "s" -: ld "psi" (v "i")) ];
      when_ (v "c1") [ store "out1" (v "i") (v "t") ];
      when_ (v "c2") [ store "out2" (v "i") (v "u") ];
      when_ (v "c3") [ store "out3" (v "i") (v "s") ];
    ]

let all = [ umt2k_1; umt2k_2; umt2k_3; umt2k_4; umt2k_5; umt2k_6 ]
